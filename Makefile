# Convenience targets; everything is plain dune underneath.

.PHONY: all build test lint analyze bench examples doc clean outputs

all: build

build:
	dune build @all

test:
	dune runtest

# Repo-invariant static analysis (rules R1-R7, doc/LINT.md); CI runs this
# on both compiler versions and fails on any unsuppressed hit or on a
# suppression-count increase versus tools/lint/allow_baseline.txt.
lint:
	dune build @lint

# Whole-program analysis (passes A1-A4, doc/LINT.md): call-graph passes
# for determinism taint, cancellation-poll coverage, domain safety, and
# failure-taxonomy reachability, gated per pass against
# tools/analysis/allow_baseline.txt.
analyze:
	dune build @analyze

bench:
	dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/datacenter_bandwidth.exe
	dune exec examples/cloud_tasks.exe
	dune exec examples/router_memory.exe
	dune exec examples/trace_analysis.exe
	dune exec examples/power_capping.exe

# The captured artifacts referenced by EXPERIMENTS.md.
outputs:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

clean:
	dune clean
