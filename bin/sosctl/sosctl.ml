(* sosctl — command-line front end for the Sharing-is-Caring scheduler.

   Subcommands: generate instances, solve them with any of the implemented
   algorithms, run quick ratio experiments, pack bins, schedule task sets,
   and demo the hardness reduction. `sosctl <cmd> --help` for details. *)

open Cmdliner

let read_input = function
  | "-" -> In_channel.input_all stdin
  | path -> In_channel.with_open_text path In_channel.input_all

(* Exit-code discipline (doc/ROBUSTNESS.md): 0 success, 1 batch completed
   with per-task failures, 2 usage error / invalid input, 3 a solver
   produced an invalid schedule, 130 interrupted (SIGINT, cooperative
   cancel). [Usage] carries the message for code 2. *)
exception Usage of string

let invalid_input reason =
  Printf.eprintf "sosctl: invalid input: %s\n"
    (Robust.Failure.invalid_to_string reason);
  2

(* Load an instance through the strict validator (doc/ROBUSTNESS.md);
   [window] additionally requires m >= 3, the Theorem 3.3 precondition. *)
let load_instance ?(window = false) file k =
  match read_input file with
  | exception Sys_error msg -> invalid_input (Robust.Failure.Malformed msg)
  | text -> (
      match Sos.Instance.of_string_checked ~window text with
      | Ok inst -> k inst
      | Error reason -> invalid_input reason)

(* ------------------------------------------------------- observability *)

(* Shared --metrics[=PATH] / --trace=PATH flags (doc/OBSERVABILITY.md).
   [with_obs] enables the requested sinks, runs the subcommand, then dumps:
   metrics go to stderr by default (stdout stays byte-identical — the batch
   determinism contract) or to PATH (JSON when PATH ends in .json,
   OpenMetrics when it ends in .prom, text otherwise); the trace is always
   a Chrome trace-event JSON file. *)

let obs_flags =
  let metrics =
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "metrics" ] ~docv:"PATH"
          ~doc:
            "Record telemetry counters/timers/histograms during the run and dump \
             a snapshot: to stderr ($(b,--metrics) alone), or to $(docv) (JSON if \
             it ends in .json, OpenMetrics exposition if it ends in .prom, text \
             otherwise).")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"PATH"
          ~doc:
            "Record wall-clock spans and write a Chrome trace-event JSON timeline \
             to $(docv) (open in chrome://tracing or ui.perfetto.dev).")
  in
  Term.(const (fun metrics trace -> (metrics, trace)) $ metrics $ trace)

let with_obs (metrics, trace) run =
  if metrics <> None then Obs.Metrics.enable ();
  if trace <> None then begin
    Obs.Trace.start ();
    Obs.Trace.set_thread_name ~tid:0 "main"
  end;
  let code = run () in
  (match trace with
  | Some path ->
      Obs.Trace.stop ();
      Obs.Trace.write path
  | None -> ());
  (match metrics with
  | Some "-" -> prerr_string (Obs.Metrics.snapshot ())
  | Some path ->
      let body =
        if Filename.check_suffix path ".json" then Obs.Metrics.snapshot_json ()
        else if Filename.check_suffix path ".prom" then Obs.Metrics.to_openmetrics ()
        else Obs.Metrics.snapshot ()
      in
      Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc body)
  | None -> ());
  code

let family_of_name name =
  match
    List.find_opt
      (fun f -> f.Workload.Sos_gen.name = name)
      (Workload.Sos_gen.all_families
      @ List.map Workload.Sos_gen.unit_of Workload.Sos_gen.all_families)
  with
  | Some f -> Ok f
  | None ->
      Error
        (Printf.sprintf "unknown family %s (try: %s, or append -unit)" name
           (String.concat ", "
              (List.map (fun f -> f.Workload.Sos_gen.name) Workload.Sos_gen.all_families)))

let algo_assoc =
  [
    ("window", `Window); ("listing1", `Listing1); ("unit", `Unit);
    ("unit-np", `Unit_np);
    ("list-sched", `List_sched); ("greedy", `Greedy);
    ("naive-fracture", `Naive); ("no-move", `No_move); ("literal", `Literal);
    ("preemptive", `Preemptive); ("fixed-assignment", `Fixed);
  ]

let algo_conv = Arg.enum algo_assoc
let algo_name algo = fst (List.find (fun (_, a) -> a = algo) algo_assoc)

(* Algorithms in the window family carry the Theorem 3.3 guarantee and its
   m >= 3 precondition; the strict validator enforces it for these. *)
let window_algo = function
  | `Window | `Literal | `Listing1 | `Naive | `No_move -> true
  | `Unit | `Unit_np | `List_sched | `Greedy | `Preemptive | `Fixed -> false

(* One (preemptive?, schedule) dispatch for solve/analyze/batch; `-w trace`
   in `export` keeps its own traced-run special case. *)
let run_algo ?(check = false) algo inst =
  match algo with
  | `Window -> (false, Sos.Fast.run inst)
  | `Listing1 -> (false, Sos.Listing1.run ~check inst)
  | `Literal -> (false, Sos.Fast.run ~variant:`Literal inst)
  | `Unit -> (true, Sos.Splittable.run inst)
  | `Unit_np -> (false, Sos.Splittable.run_nonpreemptive inst)
  | `List_sched -> (false, Baselines.List_scheduling.run inst)
  | `Greedy -> (false, Baselines.Greedy_fair.run inst)
  | `Naive -> (false, Sos.Ablation.run_naive_fracture inst)
  | `No_move -> (false, Sos.Ablation.run_no_move inst)
  | `Preemptive -> (true, Sos.Preemptive.run inst)
  | `Fixed -> (false, Baselines.Fixed_assignment.run inst)

(* ------------------------------------------------------------------ gen *)

let gen_cmd =
  let run family n m seed scale =
    match family_of_name family with
    | Error msg ->
        prerr_endline msg;
        1
    | Ok family ->
        if m < 2 then invalid_input (Robust.Failure.Too_few_processors { m; need = 2 })
        else if scale < 1 then invalid_input (Robust.Failure.Bad_scale scale)
        else if n < 0 then invalid_input (Robust.Failure.Malformed "n must be >= 0")
        else begin
          let rng = Prelude.Rng.create seed in
          let inst = Workload.Sos_gen.generate rng family ~n ~m ~scale () in
          match Sos.Instance.validate inst with
          | Ok _ ->
              print_string (Sos.Instance.to_string inst);
              0
          | Error reason -> invalid_input reason
        end
  in
  let family =
    Arg.(value & opt string "bimodal" & info [ "family"; "f" ] ~doc:"Workload family.")
  in
  let n = Arg.(value & opt int 50 & info [ "n" ] ~doc:"Number of jobs.") in
  let m = Arg.(value & opt int 8 & info [ "m" ] ~doc:"Number of processors.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  let scale =
    Arg.(
      value
      & opt int Workload.Sos_gen.default_scale
      & info [ "scale" ] ~doc:"Resource units per time step.")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a random SoS instance (text format on stdout).")
    Term.(const run $ family $ n $ m $ seed $ scale)

(* ---------------------------------------------------------------- solve *)

let solve_cmd =
  let run obs algo file gantt quiet =
    with_obs obs @@ fun () ->
    load_instance ~window:(window_algo algo) file @@ fun inst ->
    let preemptive, sched =
      Obs.Trace.with_span ~cat:"cli" "solve" (fun () -> run_algo ~check:true algo inst)
    in
    (match
       Obs.Trace.with_span ~cat:"cli" "validate" (fun () ->
           Sos.Schedule.validate ~preemption_ok:preemptive sched)
     with
    | Ok () -> ()
    | Error v ->
        Printf.eprintf "INVALID schedule at step %d: %s\n" v.Sos.Schedule.at_step
          v.Sos.Schedule.reason;
        exit 3);
    let lb = Sos.Bounds.lower_bound inst in
    Printf.printf "jobs        : %d\n" (Sos.Instance.n inst);
    Printf.printf "processors  : %d\n" inst.Sos.Instance.m;
    Printf.printf "makespan    : %d\n" sched.Sos.Schedule.makespan;
    Printf.printf "lower bound : %d\n" lb;
    Printf.printf "ratio vs LB : %.4f\n"
      (Sos.Bounds.theorem_3_3_bound inst ~makespan:sched.Sos.Schedule.makespan);
    Printf.printf "wasted res. : %d units (%.2f steps worth)\n"
      (Sos.Schedule.total_waste sched)
      (float_of_int (Sos.Schedule.total_waste sched)
      /. float_of_int inst.Sos.Instance.scale);
    if inst.Sos.Instance.m >= 3 then
      Printf.printf "Thm 3.3 bnd : %.4f\n"
        (Sos.Bounds.guarantee_general ~m:inst.Sos.Instance.m);
    if (not quiet) && gantt && not preemptive then begin
      print_newline ();
      print_string (Sos.Schedule.render_gantt sched)
    end;
    0
  in
  let algo =
    Arg.(value & opt algo_conv `Window & info [ "algo"; "a" ] ~doc:"Algorithm.")
  in
  let file =
    Arg.(value & pos 0 string "-" & info [] ~docv:"FILE" ~doc:"Instance file or - for stdin.")
  in
  let gantt = Arg.(value & flag & info [ "gantt" ] ~doc:"Render an ASCII Gantt chart.") in
  let quiet = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Summary only.") in
  Cmd.v
    (Cmd.info "solve" ~doc:"Solve an SoS instance and validate the schedule.")
    Term.(const run $ obs_flags $ algo $ file $ gantt $ quiet)

(* -------------------------------------------------------------- analyze *)

let analyze_cmd =
  let run obs algo file =
    with_obs obs @@ fun () ->
    load_instance ~window:(window_algo algo) file @@ fun inst ->
    let preemptive, sched =
      Obs.Trace.with_span ~cat:"cli" "solve" (fun () -> run_algo algo inst)
    in
    (match
       Obs.Trace.with_span ~cat:"cli" "validate" (fun () ->
           Sos.Schedule.validate ~preemption_ok:preemptive sched)
     with
    | Ok () -> ()
    | Error v ->
        Printf.eprintf "INVALID schedule at step %d: %s\n" v.Sos.Schedule.at_step
          v.Sos.Schedule.reason;
        exit 3);
    (* Everything below reads the RLE blocks / step-function profiles:
       safe on huge-volume instances whose makespan is in the millions. *)
    let u = Obs.Trace.with_span ~cat:"cli" "analytics" (fun () -> Sos.Schedule.utilization sched) in
    let seg_stats (p : float Sos.Schedule.profile) =
      Array.fold_left
        (fun (peak, sum) (_, len, v) -> (max peak v, sum +. (float_of_int len *. v)))
        (0.0, 0.0) p
    in
    let peak, area = seg_stats u in
    let jobs = Sos.Schedule.jobs_per_step sched in
    let peak_jobs = Array.fold_left (fun acc (_, _, k) -> max acc k) 0 jobs in
    Printf.printf "jobs            : %d\n" (Sos.Instance.n inst);
    Printf.printf "processors      : %d\n" inst.Sos.Instance.m;
    Printf.printf "makespan        : %d\n" sched.Sos.Schedule.makespan;
    Printf.printf "RLE blocks      : %d\n" (List.length sched.Sos.Schedule.steps);
    Printf.printf "profile segments: %d (utilization), %d (jobs)\n" (Array.length u)
      (Array.length jobs);
    Printf.printf "lower bound     : %d\n" (Sos.Bounds.lower_bound inst);
    Printf.printf "mean completion : %.2f\n" (Sos.Schedule.mean_completion_time sched);
    Printf.printf "utilization     : peak %.4f, mean %.4f\n" peak
      (if sched.Sos.Schedule.makespan = 0 then 0.0
       else area /. float_of_int sched.Sos.Schedule.makespan);
    Printf.printf "peak jobs/step  : %d\n" peak_jobs;
    Printf.printf "wasted resource : %d units (%.2f steps worth)\n"
      (Sos.Schedule.total_waste sched)
      (float_of_int (Sos.Schedule.total_waste sched)
      /. float_of_int inst.Sos.Instance.scale);
    0
  in
  let algo =
    Arg.(value & opt algo_conv `Window & info [ "algo"; "a" ] ~doc:"Algorithm.")
  in
  let file =
    Arg.(value & pos 0 string "-" & info [] ~docv:"FILE" ~doc:"Instance file or - for stdin.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Solve and report RLE-native analytics (strongly polynomial: safe for \
             huge processing volumes).")
    Term.(const run $ obs_flags $ algo $ file)

(* ---------------------------------------------------------------- ratio *)

let ratio_cmd =
  let run obs family n m reps seed =
    with_obs obs @@ fun () ->
    match family_of_name family with
    | Error msg ->
        prerr_endline msg;
        1
    | Ok family ->
        let ratios =
          Array.init reps (fun rep ->
              let rng = Prelude.Rng.create (seed + rep) in
              let inst = Workload.Sos_gen.generate rng family ~n ~m () in
              let s = Sos.Fast.run inst in
              Sos.Bounds.theorem_3_3_bound inst ~makespan:s.Sos.Schedule.makespan)
        in
        let s = Prelude.Stats.summarize ratios in
        Printf.printf "family=%s n=%d m=%d reps=%d\n" family.Workload.Sos_gen.name n m reps;
        Printf.printf "ratio vs LB: mean=%.4f p50=%.4f max=%.4f\n" s.Prelude.Stats.mean
          s.Prelude.Stats.p50 s.Prelude.Stats.max;
        if m >= 3 then
          Printf.printf "proven bound: %.4f\n" (Sos.Bounds.guarantee_general ~m);
        0
  in
  let family = Arg.(value & opt string "bimodal" & info [ "family"; "f" ]) in
  let n = Arg.(value & opt int 100 & info [ "n" ]) in
  let m = Arg.(value & opt int 8 & info [ "m" ]) in
  let reps = Arg.(value & opt int 20 & info [ "reps" ]) in
  let seed = Arg.(value & opt int 1 & info [ "seed" ]) in
  Cmd.v
    (Cmd.info "ratio" ~doc:"Quick approximation-ratio experiment on a workload family.")
    Term.(const run $ obs_flags $ family $ n $ m $ reps $ seed)

(* -------------------------------------------------------------- binpack *)

let binpack_cmd =
  let run obs k capacity sizes show optimal =
    with_obs obs @@ fun () ->
    let sizes = List.map int_of_string (String.split_on_char ',' sizes) in
    let inst = Binpack.Packing.instance ~k ~capacity sizes in
    let packing = Binpack.Algorithms.window inst in
    Binpack.Packing.assert_valid inst packing;
    Printf.printf "items       : %d\n" (List.length sizes);
    Printf.printf "bins used   : %d\n" (Binpack.Packing.bins_used packing);
    Printf.printf "lower bound : %d\n" (Binpack.Packing.lower_bound inst);
    Printf.printf "fragments   : %d\n" (Binpack.Packing.fragments packing);
    (match Exact.Binpack_exact.optimum ~node_limit:500_000 inst with
    | Some opt -> Printf.printf "exact OPT   : %d\n" opt
    | None -> Printf.printf "exact OPT   : (search limit exceeded)\n");
    if show then begin
      Printf.printf "\nwindow packing:\n";
      Format.printf "%a" Binpack.Packing.pp packing
    end;
    if optimal then begin
      match Exact.Binpack_exact.optimum_packing ~node_limit:500_000 inst with
      | Some (opt, witness) ->
          Binpack.Packing.assert_valid inst witness;
          Printf.printf "\noptimal packing (%d bins):\n" opt;
          Format.printf "%a" Binpack.Packing.pp witness
      | None -> Printf.printf "\noptimal packing: (search limit exceeded)\n"
    end;
    0
  in
  let k = Arg.(value & opt int 3 & info [ "k" ] ~doc:"Cardinality constraint.") in
  let capacity = Arg.(value & opt int 1000 & info [ "capacity"; "c" ]) in
  let sizes =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SIZES" ~doc:"Comma-separated item sizes (in capacity units).")
  in
  let show = Arg.(value & flag & info [ "show" ] ~doc:"Print the window packing.") in
  let optimal =
    Arg.(value & flag & info [ "optimal" ] ~doc:"Also print an exact optimal packing.")
  in
  Cmd.v
    (Cmd.info "binpack"
       ~doc:"Pack splittable items under a cardinality constraint (Corollary 3.9).")
    Term.(const run $ obs_flags $ k $ capacity $ sizes $ show $ optimal)

(* ------------------------------------------------------------------ sas *)

let sas_cmd =
  let run obs profile k m seed =
    with_obs obs @@ fun () ->
    let profile =
      List.find_opt
        (fun p -> p.Workload.Sas_gen.name = profile)
        Workload.Sas_gen.all_profiles
    in
    match profile with
    | None ->
        Printf.eprintf "unknown profile (try: %s)\n"
          (String.concat ", "
             (List.map (fun p -> p.Workload.Sas_gen.name) Workload.Sas_gen.all_profiles));
        1
    | Some profile ->
        let rng = Prelude.Rng.create seed in
        let inst = Workload.Sas_gen.generate rng profile ~k ~m () in
        let report = Sas.Combined.run inst in
        Printf.printf "tasks          : %d (T1: %d, T2: %d)\n" k
          report.Sas.Combined.t1_count report.Sas.Combined.t2_count;
        Printf.printf "sum completions: %d\n" report.Sas.Combined.sum_completions;
        Printf.printf "avg completion : %.2f\n"
          (float_of_int report.Sas.Combined.sum_completions /. float_of_int k);
        Printf.printf "makespan       : %d\n" report.Sas.Combined.makespan;
        Printf.printf "lower bound    : %d\n" report.Sas.Combined.lower_bound;
        Printf.printf "ratio vs LB    : %.4f\n" (Sas.Combined.ratio report);
        Printf.printf "Thm 4.8 bound  : %.4f (+ o(1))\n" (Sas.Bounds.guarantee ~m);
        0
  in
  let profile = Arg.(value & opt string "cloud-mix" & info [ "profile"; "p" ]) in
  let k = Arg.(value & opt int 20 & info [ "k" ] ~doc:"Number of tasks.") in
  let m = Arg.(value & opt int 8 & info [ "m" ]) in
  let seed = Arg.(value & opt int 1 & info [ "seed" ]) in
  Cmd.v
    (Cmd.info "sas"
       ~doc:"Schedule a task set for average completion time (Theorem 4.8).")
    Term.(const run $ obs_flags $ profile $ k $ m $ seed)

(* --------------------------------------------------------------- export *)

let export_cmd =
  let run file what algo specs_bin =
    match specs_bin with
    | Some out ->
        (* Corpus converter, not an instance exporter: FILE is a text spec
           corpus for `sosctl batch`, compiled to the compact binary form
           (strict — any malformed or @PATH spec aborts the conversion). *)
        if file = "-" then begin
          prerr_endline "sosctl export: --specs-bin needs a spec FILE (not stdin)";
          2
        end
        else begin
          match Workload.Specs.convert_to_binary ~src:file ~dst:out with
          | Ok n ->
              Printf.printf "wrote %d specs to %s\n" n out;
              0
          | Error msg ->
              prerr_endline ("sosctl export: --specs-bin: " ^ msg);
              2
        end
    | None ->
    load_instance file @@ fun inst ->
    (match what with
    | `Instance -> print_string (Sos.Export.instance_to_csv inst)
    | `Schedule | `Schedule_rle | `Utilization | `Trace | `Svg -> begin
        let sched, trace =
          match algo with
          (* Only -w trace needs the step-by-step traced reference run; the
             CSV/SVG writers are RLE-native, so give them the fast solver's
             compressed schedule and stay strongly polynomial. *)
          | `Window when what <> `Trace -> (Sos.Fast.run inst, [])
          | `Listing1 | `Window | `Literal -> Sos.Listing1.run_traced inst
          | `Unit -> (Sos.Splittable.run inst, [])
          | `Unit_np -> (Sos.Splittable.run_nonpreemptive inst, [])
          | `List_sched -> (Baselines.List_scheduling.run inst, [])
          | `Greedy -> (Baselines.Greedy_fair.run inst, [])
          | `Naive -> (Sos.Ablation.run_naive_fracture inst, [])
          | `No_move -> (Sos.Ablation.run_no_move inst, [])
          | `Preemptive -> (Sos.Preemptive.run inst, [])
          | `Fixed -> (Baselines.Fixed_assignment.run inst, [])
        in
        match what with
        | `Schedule -> print_string (Sos.Export.schedule_to_csv sched)
        | `Schedule_rle -> print_string (Sos.Export.schedule_to_csv_rle sched)
        | `Utilization -> print_string (Sos.Export.utilization_to_csv sched)
        | `Trace -> print_string (Sos.Export.trace_to_csv trace inst)
        | `Svg -> print_string (Sos.Svg.render ~title:"sosctl schedule" sched)
        | `Instance -> assert false
      end);
    0
  in
  let what =
    Arg.(
      value
      & opt
          (enum
             [
               ("schedule", `Schedule); ("schedule-rle", `Schedule_rle);
               ("instance", `Instance);
               ("utilization", `Utilization); ("trace", `Trace); ("svg", `Svg);
             ])
          `Schedule
      & info [ "what"; "w" ] ~doc:"What to export (CSV, or an SVG Gantt chart).")
  in
  let algo = Arg.(value & opt algo_conv `Listing1 & info [ "algo"; "a" ]) in
  let file = Arg.(value & pos 0 string "-" & info [] ~docv:"FILE") in
  let specs_bin =
    Arg.(
      value
      & opt (some string) None
      & info [ "specs-bin" ]
          ~doc:
            "Convert the batch spec corpus $(i,FILE) (text, one $(i,FAMILY N M \
             [SCALE]) per line) to the compact binary form at $(docv) — 16 bytes \
             per spec, autodetected by $(b,sosctl batch). Strict: malformed or \
             \\@PATH specs abort the conversion."
          ~docv:"OUT")
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Export instances, schedules, traces as CSV; compile spec corpora to binary.")
    Term.(const run $ file $ what $ algo $ specs_bin)

(* ---------------------------------------------------------------- batch *)

(* Solve many instances on the Engine domain pool. Specs come from a
   corpus file — newline-delimited text or the compact binary form, both
   read through the autodetecting streaming reader (Workload.Specs) —
   and results stream to stdout in spec order as they complete, one line
   per instance, with no timing in the lines: the output is byte-identical
   at every -j (the acceptance check CI runs) and identical between the
   materialized and --stream paths. Determinism discipline: spec i's
   generator on attempt a is seeded by (--seed, i, a), never by the domain
   that happens to solve it.

   Two execution paths share every moving part (solve, emit, journal):
   - default: materialize the spec array, window = batch size (workers are
     never throttled by a slow consumer);
   - --stream: pull specs off the reader through Engine.Batch.stream_seq
     under a bounded in-flight window (--window, default 4 x domains x
     chunk), so a million-spec corpus runs in O(window) memory.

   Resilience (doc/ROBUSTNESS.md): per-spec failures become structured
   `<idx> error <class> line <l>: <msg>` lines; --retries/--task-timeout
   map onto Engine.Batch's bounded deterministic retry and cooperative
   deadlines; --checkpoint journals every emitted line (sharded over
   --shards files, flushed per --sync-every) so a killed run resumed with
   --resume replays the completed prefix byte-identically; --chaos arms
   the seeded fault injector; SIGINT cancels the batch-wide token and
   exits 130. *)

(* What a batch task hands back: a freshly solved instance, or a marker
   that its output line was already journaled by the interrupted run and
   will be replayed verbatim at emit time (never recomputed — even an
   armed chaos rule on the task site cannot change a replayed line). *)
type batch_result =
  | Solved of string * Sos.Instance.t * Sos.Schedule.t
  | Replayed

let payload_is_error line =
  match String.split_on_char ' ' line with _ :: "error" :: _ -> true | _ -> false

(* Streamed aggregation for --summary: per-line stdout is suppressed and
   every emitted line (fresh or replayed — so an interrupted-and-resumed
   run summarizes identically to an uninterrupted one) is folded into a
   ratio histogram, per-family means, and an error-class table, all in
   O(families + classes) memory. Rendering sorts every table, so the
   summary is deterministic at any -j. *)
module Summary = struct
  type fam = { mutable count : int; mutable ratio_sum : float; mutable mks_sum : float }

  type t = {
    mutable ok : int;
    mutable err : int;
    mutable timeouts : int; (* the deadline subset of err, reported separately *)
    hist : int array; (* 20 buckets [1.00,2.00) step 0.05, + the >= 2 tail *)
    fams : (string, fam) Hashtbl.t;
    errs : (string, int ref) Hashtbl.t;
  }

  let create () =
    {
      ok = 0;
      err = 0;
      timeouts = 0;
      hist = Array.make 21 0;
      fams = Hashtbl.create 16;
      errs = Hashtbl.create 8;
    }

  (* Pull "key=value" out of a result line (the same fixed format emit
     writes), so the aggregator needs no second result representation. *)
  let field line key =
    let pat = " " ^ key ^ "=" in
    let plen = String.length pat in
    let llen = String.length line in
    let rec find i =
      if i + plen > llen then None
      else if String.sub line i plen = pat then begin
        let start = i + plen in
        let stop =
          match String.index_from_opt line start ' ' with Some j -> j | None -> llen
        in
        Some (String.sub line start (stop - start))
      end
      else find (i + 1)
    in
    find 0

  let float_field line key = Option.bind (field line key) float_of_string_opt

  let add st line =
    match String.split_on_char ' ' line with
    | _ :: "ok" :: label :: _ ->
        st.ok <- st.ok + 1;
        let ratio = Option.value (float_field line "ratio") ~default:1.0 in
        let mks = Option.value (float_field line "makespan") ~default:0.0 in
        let b =
          if ratio >= 2.0 then 20
          else if ratio < 1.0 then 0
          else int_of_float ((ratio -. 1.0) /. 0.05)
        in
        st.hist.(min b 20) <- st.hist.(min b 20) + 1;
        let fam =
          match Hashtbl.find_opt st.fams label with
          | Some f -> f
          | None ->
              let f = { count = 0; ratio_sum = 0.0; mks_sum = 0.0 } in
              Hashtbl.add st.fams label f;
              f
        in
        fam.count <- fam.count + 1;
        fam.ratio_sum <- fam.ratio_sum +. ratio;
        fam.mks_sum <- fam.mks_sum +. mks
    | _ :: "error" :: cls :: _ -> (
        st.err <- st.err + 1;
        if cls = "deadline" then st.timeouts <- st.timeouts + 1;
        match Hashtbl.find_opt st.errs cls with
        | Some r -> incr r
        | None -> Hashtbl.add st.errs cls (ref 1))
    | _ -> ()

  let sorted_bindings tbl = List.sort compare (List.of_seq (Hashtbl.to_seq tbl))

  let render st =
    Printf.printf "specs  %d\nok     %d\nerrors %d\n" (st.ok + st.err) st.ok st.err;
    if st.timeouts > 0 then Printf.printf "timeouts %d\n" st.timeouts;
    if st.ok > 0 then begin
      print_string "ratio histogram (Theorem 3.3 bound):\n";
      let peak = Array.fold_left max 1 st.hist in
      Array.iteri
        (fun b count ->
          if count > 0 then begin
            let label =
              if b = 20 then ">=2.00        "
              else
                Printf.sprintf "[%.2f,%.2f)   "
                  (1.0 +. (0.05 *. float_of_int b))
                  (1.0 +. (0.05 *. float_of_int (b + 1)))
            in
            Printf.printf "  %s %-8d %s\n" label count
              (String.make (max 1 (count * 40 / peak)) '#')
          end)
        st.hist;
      print_string "per-family:\n";
      List.iter
        (fun (name, f) ->
          Printf.printf "  %-20s %-8d mean-ratio %.4f  mean-makespan %.1f\n" name f.count
            (f.ratio_sum /. float_of_int f.count)
            (f.mks_sum /. float_of_int f.count))
        (sorted_bindings st.fams)
    end;
    if st.err > 0 then begin
      print_string "error classes:\n";
      List.iter
        (fun (cls, r) -> Printf.printf "  %-20s %d\n" cls !r)
        (sorted_bindings st.errs)
    end;
    flush stdout
end

let batch_cmd =
  let run obs file jobs seed out_dir algo retries task_timeout backoff_base checkpoint
      resume verbose_errors chaos chaos_seed stream_mode summary shards sync_every chunk
      win_opt progress =
    with_obs obs @@ fun () ->
    try
      if jobs < 1 then raise (Usage "-j must be >= 1");
      if retries < 0 then raise (Usage "--retries must be >= 0");
      (match task_timeout with
      | Some t when t <= 0.0 -> raise (Usage "--task-timeout must be > 0")
      | _ -> ());
      if backoff_base < 0.0 then raise (Usage "--backoff-base must be >= 0");
      (* 0.0 disables backoff entirely (immediate retries, the pre-backoff
         behaviour); any positive base yields capped jittered delays keyed
         on (--seed, index, attempt), byte-identical at any -j. *)
      let backoff =
        if backoff_base > 0.0 then Some (Robust.Backoff.policy ~base:backoff_base ~seed ())
        else None
      in
      if resume && checkpoint = None then
        raise (Usage "--resume requires --checkpoint PATH");
      if shards < 1 then raise (Usage "--shards must be >= 1");
      if sync_every < 1 then raise (Usage "--sync-every must be >= 1");
      if chunk < 1 then raise (Usage "--chunk must be >= 1");
      (match win_opt with
      | Some w when w < 1 -> raise (Usage "--window must be >= 1")
      | _ -> ());
      if stream_mode && checkpoint <> None && file = "-" then
        raise
          (Usage
             "--stream with --checkpoint needs a spec FILE: the journal header digest \
              takes a pass over the corpus before solving, and stdin cannot be re-read");
      (* Backtraces are only captured by the runtime when recording is on;
         --verbose-errors implies it so Task_exn backtraces are real. *)
      if verbose_errors then Printexc.record_backtrace true;
      (match
         (match chaos with Some s -> Some s | None -> Sys.getenv_opt "SOS_CHAOS")
       with
      | None -> ()
      | Some spec ->
          let cseed =
            match chaos_seed with
            | Some s -> s
            | None -> (
                match Sys.getenv_opt "SOS_CHAOS_SEED" with
                | Some s -> Option.value (int_of_string_opt s) ~default:0
                | None -> 0)
          in
          (match Robust.Chaos.arm ~seed:cseed spec with
          | Ok () -> ()
          | Error msg -> raise (Usage ("bad chaos spec: " ^ msg))));
      (match out_dir with
      | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
      | _ -> ());
      let window = window_algo algo in
      let open_source () =
        match file with
        | "-" -> (
            match Workload.Specs.of_channel stdin with
            | Ok s -> s
            | Error msg -> raise (Usage msg))
        | path -> (
            match Workload.Specs.open_path path with
            | Ok s -> s
            | Error msg -> raise (Usage msg))
      in
      let solve idx (r : Workload.Specs.record) =
        let open Robust.Failure in
        let label, inst =
          match r.payload with
          | Workload.Specs.Bad msg -> raise (Invalid (Malformed msg))
          | Workload.Specs.File path -> begin
              let text =
                match In_channel.with_open_text path In_channel.input_all with
                | exception Sys_error msg -> raise (Invalid (Malformed msg))
                | text -> text
              in
              match Sos.Instance.of_string_checked ~window text with
              | Ok inst -> (path, inst)
              | Error reason -> raise (Invalid reason)
            end
          | Workload.Specs.Gen { family; n; m; scale } ->
              let need = if window then 3 else 2 in
              if m < need then raise (Invalid (Too_few_processors { m; need }));
              let family =
                match family_of_name family with
                | Ok f -> f
                | Error msg -> raise (Invalid (Malformed msg))
              in
              let scale = Option.value scale ~default:Workload.Sos_gen.default_scale in
              (* (--seed, index, attempt): a retried attempt re-derives
                 its randomness deterministically at any -j. *)
              let rng = Prelude.Rng.create3 seed idx (Robust.Context.attempt ()) in
              let inst = Workload.Sos_gen.generate rng family ~n ~m ~scale () in
              (match Sos.Instance.validate ~window inst with
              | Ok _ -> ()
              | Error reason -> raise (Invalid reason));
              (family.Workload.Sos_gen.name, inst)
        in
        Obs.Trace.flow_step ~id:idx "spec";
        let preemptive, sched = run_algo algo inst in
        (match Sos.Schedule.validate ~preemption_ok:preemptive sched with
        | Ok () -> ()
        | Error v ->
            Robust.Failure.internal_error "invalid schedule at step %d: %s"
              v.Sos.Schedule.at_step v.Sos.Schedule.reason);
        Solved (label, inst, sched)
      in
      (* The checkpoint header binds the journal to one run configuration:
         resuming under a different seed, algorithm, or spec corpus must be
         refused, not silently mixed. The digest is the chained canonical
         record digest (Workload.Specs), identical for a text corpus and
         its binary conversion. *)
      let header_of digest =
        Printf.sprintf "sosj1 seed=%d algo=%s specs=%s" seed (algo_name algo) digest
      in
      let open_journal header =
        match checkpoint with
        | None -> None
        | Some path ->
            if resume then begin
              match
                Robust.Journal.Sharded.resume ~path ~shards ~sync_every ~header ()
              with
              | Error msg -> raise (Usage ("cannot resume: " ^ msg))
              | Ok j -> Some j
            end
            else Some (Robust.Journal.Sharded.start ~path ~shards ~sync_every ~header ())
      in
      let batch_token = Robust.Cancel.create () in
      let prev_sigint =
        Sys.signal Sys.sigint
          (Sys.Signal_handle (fun _ -> Robust.Cancel.cancel batch_token))
      in
      (* SIGTERM (the service-manager stop signal) behaves exactly like
         SIGINT — cancel, drain in-flight work, close the journal — but is
         distinguishable in the exit code (143 vs 130) so supervisors can
         tell "operator interrupt" from "orchestrated stop". *)
      let term_seen = ref false in
      let prev_sigterm =
        Sys.signal Sys.sigterm
          (Sys.Signal_handle
             (fun _ ->
               term_seen := true;
               Robust.Cancel.cancel batch_token))
      in
      let failures = ref 0 in
      let summary_state = if summary then Some (Summary.create ()) else None in
      (* --progress heartbeats: ticked on the caller thread after each
         ordered emission, so they cost the workers nothing, write only to
         stderr (stdout byte-identity holds), and need no domains. *)
      let emitted = ref 0 in
      let produced = ref 0 in
      let progress_state : Obs.Progress.t option ref = ref None in
      let after_emit idx =
        incr emitted;
        Obs.Trace.flow_end ~id:idx "spec";
        match !progress_state with
        | None -> ()
        | Some p ->
            Obs.Progress.tick p ~done_:!emitted ~errors:!failures
              ?occupancy:(if stream_mode then Some (!produced - !emitted) else None)
              ()
      in
      let emit_line ~journal ~fresh idx line =
        (match summary_state with
        | Some st -> Summary.add st line
        | None ->
            print_endline line;
            flush stdout);
        if fresh then
          match journal with
          | Some j -> Robust.Journal.Sharded.append j ~index:idx ~payload:line
          | None -> ()
      in
      let emit ~journal ~recno_of idx (outcome : batch_result Engine.Batch.outcome) =
        match outcome with
        | Ok Replayed -> (
            match journal with
            | None -> ()
            | Some j -> (
                match Robust.Journal.Sharded.replay j idx with
                | None ->
                    (* The resume bitset says this index completed, yet no
                       shard holds its entry: the checkpoint lost data.
                       Emitting nothing would silently break byte-identical
                       resume, so surface it as a failure. Not journalled —
                       the corrupt journal should not gain an error entry
                       for an index it claims succeeded. *)
                    incr failures;
                    emit_line ~journal ~fresh:false idx
                      (Printf.sprintf
                         "%d error task-exn line %d: checkpoint entry missing on replay \
                          (corrupt journal; re-run without --resume)"
                         idx (recno_of idx))
                | Some payload ->
                    if payload_is_error payload then incr failures;
                    emit_line ~journal ~fresh:false idx payload))
        | Ok (Solved (label, inst, sched)) ->
            (match out_dir with
            | Some dir ->
                Out_channel.with_open_text
                  (Printf.sprintf "%s/batch-%04d.csv" dir idx)
                  (fun oc ->
                    Out_channel.output_string oc (Sos.Export.schedule_to_csv_rle sched))
            | None -> ());
            let line =
              Printf.sprintf "%d ok %s n=%d m=%d makespan=%d lb=%d ratio=%.4f blocks=%d"
                idx label (Sos.Instance.n inst) inst.Sos.Instance.m
                sched.Sos.Schedule.makespan
                (Sos.Bounds.lower_bound inst)
                (Sos.Bounds.theorem_3_3_bound inst ~makespan:sched.Sos.Schedule.makespan)
                (List.length sched.Sos.Schedule.steps)
            in
            emit_line ~journal ~fresh:true idx line
        | Error (e : Engine.Batch.error) -> (
            match e.failure with
            | Robust.Failure.Cancelled ->
                (* Interrupted, not failed: no line, no journal entry —
                   --resume re-runs it. *)
                ()
            | failure ->
                incr failures;
                let message =
                  String.map (function '\n' | '\r' -> ' ' | c -> c) e.message
                in
                let line =
                  Printf.sprintf "%d error %s line %d: %s" idx
                    (Robust.Failure.class_name failure) (recno_of idx) message
                in
                emit_line ~journal ~fresh:true idx line;
                if verbose_errors then begin
                  Printf.eprintf "batch: task %d (line %d) failed after %d attempt%s: %s\n"
                    idx (recno_of idx) e.attempts
                    (if e.attempts = 1 then "" else "s")
                    (Robust.Failure.to_string failure);
                  if e.backtrace <> "" then prerr_string e.backtrace;
                  flush stderr
                end)
      in
      let replayed journal i =
        match journal with Some j -> Robust.Journal.Sharded.mem j i | None -> false
      in
      let journal_ref = ref None in
      if stream_mode then begin
        (* Constant-memory path: the corpus is never materialized. The
           journal header digest (when checkpointing) is one extra
           streaming pass over the file before solving begins. *)
        let header =
          match checkpoint with
          | None -> header_of ""
          | Some _ -> (
              match Workload.Specs.digest_of_path file with
              | Ok d -> header_of d
              | Error msg -> raise (Usage msg))
        in
        let journal = open_journal header in
        journal_ref := Some journal;
        let src = open_source () in
        Fun.protect
          ~finally:(fun () -> Workload.Specs.close src)
          (fun () ->
            let win =
              match win_opt with
              | Some w -> max chunk w
              | None -> max 1 (4 * jobs * chunk)
            in
            (match progress with
            | Some interval ->
                progress_state := Some (Obs.Progress.create ~interval ~window_cap:win ())
            | None -> ());
            (* Bound the trace buffer on the streamed path: a million-spec
               run with --trace keeps the newest 64k events instead of all
               of them, preserving the constant-memory contract (the export
               reports the overwritten count as "droppedEvents"). *)
            if Obs.Trace.active () then Obs.Trace.set_ring (Some 65536);
            (* recnos ring: written by the producer, read by emit — both on
               the calling thread, at most [win] indices apart. *)
            let recnos = Array.make win 0 in
            let producer i =
              if Robust.Cancel.cancelled batch_token then None
              else
                match Workload.Specs.read src with
                | None -> None
                | Some r ->
                    recnos.(i mod win) <- r.Workload.Specs.recno;
                    incr produced;
                    Obs.Trace.flow_start ~id:i "spec";
                    let skip = replayed journal i in
                    Some (fun () -> if skip then Replayed else solve i r)
            in
            Obs.Trace.with_span ~cat:"cli" "batch"
              ~args:[ ("domains", Obs.Trace.I jobs); ("window", Obs.Trace.I win) ]
              (fun () ->
                Engine.Pool.with_pool ~domains:jobs (fun pool ->
                    ignore
                      (Engine.Batch.stream_seq pool ~chunk ~window:win ~retries
                         ?task_timeout ?backoff ~cancel:batch_token producer
                         ~f:(fun idx outcome ->
                           emit ~journal
                             ~recno_of:(fun idx -> recnos.(idx mod win))
                             idx outcome;
                           after_emit idx)))))
      end
      else begin
        (* Materialized path: collect the records (computing the digest in
           the same pass) and run with window = batch size, so workers are
           never throttled by a slow consumer. *)
        let records, digest =
          let src = open_source () in
          Fun.protect
            ~finally:(fun () -> Workload.Specs.close src)
            (fun () ->
              let st = Workload.Specs.digest_create () in
              let acc = ref [] in
              let rec go () =
                match Workload.Specs.read src with
                | None -> ()
                | Some r ->
                    Workload.Specs.digest_line st (Workload.Specs.canonical r);
                    acc := r :: !acc;
                    go ()
              in
              go ();
              (Array.of_list (List.rev !acc), Workload.Specs.digest_finish st))
        in
        let journal = open_journal (header_of digest) in
        journal_ref := Some journal;
        let n = Array.length records in
        (match progress with
        | Some interval ->
            progress_state := Some (Obs.Progress.create ~interval ~total:n ())
        | None -> ());
        let producer i =
          if i >= n then None
          else begin
            let r = records.(i) in
            Obs.Trace.flow_start ~id:i "spec";
            let skip = replayed journal i in
            Some (fun () -> if skip then Replayed else solve i r)
          end
        in
        Obs.Trace.with_span ~cat:"cli" "batch"
          ~args:[ ("specs", Obs.Trace.I n); ("domains", Obs.Trace.I jobs) ]
          (fun () ->
            Engine.Pool.with_pool ~domains:jobs (fun pool ->
                ignore
                  (Engine.Batch.stream_seq pool ~chunk ~window:(max n 1) ~retries
                     ?task_timeout ?backoff ~cancel:batch_token producer
                     ~f:(fun idx outcome ->
                       emit ~journal
                         ~recno_of:(fun idx -> records.(idx).Workload.Specs.recno)
                         idx outcome;
                       after_emit idx))))
      end;
      Sys.set_signal Sys.sigint prev_sigint;
      Sys.set_signal Sys.sigterm prev_sigterm;
      (match !journal_ref with
      | Some (Some j) -> Robust.Journal.Sharded.close j
      | _ -> ());
      Robust.Chaos.disarm ();
      (match summary_state with Some st -> Summary.render st | None -> ());
      (match !progress_state with
      | Some p -> Obs.Progress.finish p ~done_:!emitted ~errors:!failures
      | None -> ());
      if Robust.Cancel.cancelled batch_token then if !term_seen then 143 else 130
      else if !failures > 0 then 1
      else 0
    with Usage msg ->
      prerr_endline ("sosctl batch: " ^ msg);
      2
  in
  let file =
    Arg.(
      value & pos 0 string "-"
      & info [] ~docv:"SPECS"
          ~doc:
            "Instance spec corpus (file or - for stdin): newline-delimited text — \
             each line $(i,FAMILY N M [SCALE]), generated deterministically from \
             (--seed, record index, attempt), or $(i,@PATH), an instance file; \
             blank lines and # comments are skipped — or the compact binary form \
             written by $(b,sosctl export --specs-bin) (autodetected by magic).")
  in
  let jobs =
    Arg.(
      value
      & opt int (Engine.Pool.recommended_domain_count ())
      & info [ "j"; "domains" ]
          ~doc:
            "Worker domains. Output is byte-identical for any value; only wall \
             time changes.")
  in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Base PRNG seed for generated specs.") in
  let out_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "out-dir" ]
          ~doc:"Also write each schedule as RLE CSV to $(docv)/batch-NNNN.csv."
          ~docv:"DIR")
  in
  let algo = Arg.(value & opt algo_conv `Window & info [ "algo"; "a" ] ~doc:"Algorithm.") in
  let retries =
    Arg.(
      value & opt int 0
      & info [ "retries" ]
          ~doc:
            "Re-run a failed spec up to $(docv) extra times (transient failures \
             only: task exceptions and deadline expiry — never invalid input). \
             Attempt $(i,a) of spec $(i,i) derives its randomness from (--seed, \
             i, a), so retried runs stay byte-identical at any -j."
          ~docv:"N")
  in
  let task_timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "task-timeout" ]
          ~doc:
            "Cooperative per-spec deadline in seconds; an attempt that exceeds it \
             fails with class $(b,deadline) (and is retried if --retries allows)."
          ~docv:"SECS")
  in
  let backoff_base =
    Arg.(
      value & opt float 0.01
      & info [ "backoff-base" ]
          ~doc:
            "First-retry delay in seconds; attempt $(i,a) of spec $(i,i) sleeps a \
             jittered, capped (1s) exponential delay derived from (--seed, \
             $(i,i), $(i,a)) before re-running, so retried runs stay \
             byte-identical at any -j. 0 disables backoff (immediate retries)."
          ~docv:"SECS")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ]
          ~doc:
            "Append every emitted result line to a journal at $(docv) (sharded \
             over --shards files, flushed per --sync-every), enabling --resume \
             after a crash or kill."
          ~docv:"PATH")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Replay results journaled at --checkpoint $(i,PATH) verbatim and solve \
             only the remaining specs; the concatenated stdout of the killed run \
             and this one is byte-identical to an uninterrupted run. Refused if \
             the journal header (seed, algorithm, spec digest, shard count) does \
             not match.")
  in
  let verbose_errors =
    Arg.(
      value & flag
      & info [ "verbose-errors" ]
          ~doc:
            "For each failed spec, also print the failure class, attempt count, \
             and the backtrace captured at the raise site to stderr (stdout stays \
             byte-identical).")
  in
  let chaos =
    Arg.(
      value
      & opt (some string) None
      & info [ "chaos" ]
          ~doc:
            "Arm the seeded fault injector with $(docv) (see doc/ROBUSTNESS.md; \
             e.g. $(b,sos.fast.run\\@3,19:attempts=1) or $(b,engine.pool.worker~0.1)). \
             Defaults to $(b,\\$SOS_CHAOS) when set."
          ~docv:"SPEC")
  in
  let chaos_seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos-seed" ]
          ~doc:"Seed for probabilistic chaos draws (default $(b,\\$SOS_CHAOS_SEED) or 0)."
          ~docv:"N")
  in
  let stream_mode =
    Arg.(
      value & flag
      & info [ "stream" ]
          ~doc:
            "Constant-memory pipeline: pull specs off the corpus reader through a \
             bounded in-flight window instead of materializing them, so peak RSS \
             is independent of corpus size. Output is byte-identical to the \
             default path at any -j.")
  in
  let summary =
    Arg.(
      value & flag
      & info [ "summary" ]
          ~doc:
            "Suppress per-spec result lines and print an aggregate instead: ratio \
             histogram, per-family counts/means, error-class table. Aggregation \
             streams (O(1) memory) and includes replayed lines, so a resumed run \
             summarizes identically to an uninterrupted one.")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ]
          ~doc:
            "Shard the checkpoint journal over $(docv) files ($(i,PATH.k), entry i \
             in shard i mod $(docv); 1 = the single-file format). A journal must \
             be resumed with the shard count it was written with."
          ~docv:"N")
  in
  let sync_every =
    Arg.(
      value & opt int 1
      & info [ "sync-every" ]
          ~doc:
            "Flush each journal shard every $(docv) appends (default 1 = every \
             entry). Larger values trade up to $(docv)-1 re-run specs per shard \
             after a kill for sequential-write throughput."
          ~docv:"K")
  in
  let chunk =
    Arg.(
      value & opt int 1
      & info [ "chunk" ]
          ~doc:
            "Consecutive specs per queued unit of pool work (default 1). Larger \
             chunks amortize queue synchronization for sub-millisecond specs; \
             output bytes never change."
          ~docv:"C")
  in
  let win_opt =
    Arg.(
      value
      & opt (some int) None
      & info [ "window" ]
          ~doc:
            "With --stream: max specs in flight between producer and ordered \
             emission (default 4 x domains x chunk). Peak RSS grows with \
             $(docv); output bytes never change."
          ~docv:"W")
  in
  let progress =
    Arg.(
      value
      & opt ~vopt:(Some 2.0) (some float) None
      & info [ "progress" ]
          ~doc:
            "Emit a heartbeat line to stderr every $(docv) seconds (default 2): \
             done count (with total and ETA when the corpus size is known), \
             specs/s, error count, streaming-window occupancy, and peak RSS; a \
             final line summarizes the whole run. Driven from the caller-thread \
             pull loop — stdout stays byte-identical."
          ~docv:"SECS")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Solve a stream of instances on the multicore pool (results stream in \
          input order; deterministic at any -j; per-spec failures become \
          structured error lines; --stream for constant-memory million-spec \
          corpora).")
    Term.(
      const run $ obs_flags $ file $ jobs $ seed $ out_dir $ algo $ retries
      $ task_timeout $ backoff_base $ checkpoint $ resume $ verbose_errors $ chaos
      $ chaos_seed $ stream_mode $ summary $ shards $ sync_every $ chunk $ win_opt
      $ progress)

(* ---------------------------------------------------------------- serve *)

(* Unix-socket transport: connections are served one at a time on the
   caller thread — replies across connections share one request-index
   stream and one write-ahead log, so concurrent connections would race
   the journal ordering. accept(2) is where stop signals land as EINTR,
   so the accept step runs under Robust.Supervise: an interrupted accept
   classifies as a transient failure, is retried after a deterministic
   backoff, and every retry re-checks the drain/abort flags first. *)
let serve_socket srv ~pool ~cancel ~should_drain ~should_abort ?backoff path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      let stop () = Serve.Server.stopped srv || should_abort () || should_drain () in
      let rec loop () =
        if stop () then ()
        else begin
          let outcome =
            Robust.Supervise.run ~restarts:4 ?backoff (fun () ->
                if stop () then ()
                else begin
                  let conn, _ = Unix.accept sock in
                  Fun.protect
                    ~finally:(fun () ->
                      try Unix.close conn with Unix.Unix_error _ -> ())
                    (fun () ->
                      Serve.Server.serve srv ~pool
                        ~input:(Unix.in_channel_of_descr conn)
                        ~output:(Unix.out_channel_of_descr conn)
                        ~cancel ~should_drain ~should_abort ())
                end)
          in
          (match outcome.Robust.Supervise.result with
          | Ok () -> ()
          | Error f ->
              Printf.eprintf "serve: connection failed: %s\n%!"
                (Robust.Failure.to_string f));
          loop ()
        end
      in
      loop ())

let serve_cmd =
  let run obs jobs seed max_sessions max_jobs max_volume deadline retries backoff_base
      checkpoint resume shards sync_every socket chaos chaos_seed =
    with_obs obs @@ fun () ->
    try
      if jobs < 1 then raise (Usage "-j must be >= 1");
      if max_sessions < 1 then raise (Usage "--max-sessions must be >= 1");
      if max_jobs < 1 then raise (Usage "--max-jobs must be >= 1");
      if max_volume < 1 then raise (Usage "--max-volume must be >= 1");
      (match deadline with
      | Some d when d <= 0.0 -> raise (Usage "--deadline must be > 0")
      | _ -> ());
      if retries < 0 then raise (Usage "--retries must be >= 0");
      if backoff_base < 0.0 then raise (Usage "--backoff-base must be >= 0");
      if resume && checkpoint = None then
        raise (Usage "--resume requires --checkpoint PATH");
      if shards < 1 then raise (Usage "--shards must be >= 1");
      if sync_every < 1 then raise (Usage "--sync-every must be >= 1");
      (match
         (match chaos with Some s -> Some s | None -> Sys.getenv_opt "SOS_CHAOS")
       with
      | None -> ()
      | Some spec ->
          let cseed =
            match chaos_seed with
            | Some s -> s
            | None -> (
                match Sys.getenv_opt "SOS_CHAOS_SEED" with
                | Some s -> Option.value (int_of_string_opt s) ~default:0
                | None -> 0)
          in
          (match Robust.Chaos.arm ~seed:cseed spec with
          | Ok () -> ()
          | Error msg -> raise (Usage ("bad chaos spec: " ^ msg))));
      let backoff =
        if backoff_base > 0.0 then Some (Robust.Backoff.policy ~base:backoff_base ~seed ())
        else None
      in
      let cfg =
        {
          Serve.Server.max_sessions;
          max_jobs;
          max_volume;
          deadline;
          retries;
          backoff;
          checkpoint;
          resume;
          shards;
          sync_every;
        }
      in
      match Serve.Server.create cfg with
      | Error msg -> raise (Usage ("cannot open checkpoint: " ^ msg))
      | Ok srv ->
          (* First SIGTERM drains (stop admitting, finish in-flight,
             checkpoint, exit 0); a second SIGTERM — or any SIGINT — hard
             cancels: in-flight solves unwind as Cancelled and the loop
             stops at the next request boundary with code 130. *)
          let cancel = Robust.Cancel.create () in
          let terms = ref 0 in
          let ints = ref 0 in
          let prev_sigterm =
            Sys.signal Sys.sigterm
              (Sys.Signal_handle
                 (fun _ ->
                   incr terms;
                   if !terms >= 2 then Robust.Cancel.cancel cancel))
          in
          let prev_sigint =
            Sys.signal Sys.sigint
              (Sys.Signal_handle
                 (fun _ ->
                   incr ints;
                   Robust.Cancel.cancel cancel))
          in
          let should_drain () = !terms >= 1 in
          let should_abort () = !ints >= 1 || !terms >= 2 in
          Engine.Pool.with_pool ~domains:jobs (fun pool ->
              match socket with
              | None ->
                  Serve.Server.serve srv ~pool ~input:stdin ~output:stdout ~cancel
                    ~should_drain ~should_abort ()
              | Some path ->
                  serve_socket srv ~pool ~cancel ~should_drain ~should_abort ?backoff
                    path);
          Sys.set_signal Sys.sigterm prev_sigterm;
          Sys.set_signal Sys.sigint prev_sigint;
          Robust.Chaos.disarm ();
          let s = Serve.Server.finish srv in
          let rss =
            match Obs.Progress.vmhwm_kb () with
            | Some kb -> string_of_int kb
            | None -> "-"
          in
          Printf.eprintf
            "serve: requests=%d replayed=%d overloads=%d stale=%d errors=%d \
             sessions=%d peak-rss-kb=%s\n\
             %!"
            s.Serve.Server.requests s.replayed s.overloads s.stale s.errors s.sessions
            rss;
          s.exit_code
    with Usage msg ->
      prerr_endline ("sosctl serve: " ^ msg);
      2
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "domains" ]
          ~doc:
            "Worker domains for placement queries. Reply bytes are identical at \
             any value; only latency changes.")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~doc:"Base PRNG seed for deterministic retry-backoff jitter.")
  in
  let max_sessions =
    Arg.(
      value & opt int 64
      & info [ "max-sessions" ]
          ~doc:
            "Session-table bound: an $(b,open) past it is refused with an \
             $(b,overload) reply instead of growing memory."
          ~docv:"N")
  in
  let max_jobs =
    Arg.(
      value & opt int 10_000
      & info [ "max-jobs" ]
          ~doc:"Per-session job budget; a $(b,submit) past it is shed as $(b,overload)."
          ~docv:"N")
  in
  let max_volume =
    Arg.(
      value & opt int 1_000_000
      & info [ "max-volume" ]
          ~doc:
            "Per-session volume budget (sum of job sizes); a $(b,submit) that \
             would exceed it is shed as $(b,overload)."
          ~docv:"V")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ]
          ~doc:
            "Default per-query deadline in seconds (a request-level \
             $(b,deadline=) overrides it). A query that exceeds its deadline \
             degrades to the tenant's last good schedule, marked $(b,stale) — \
             or an $(b,error deadline) reply when none exists yet."
          ~docv:"SECS")
  in
  let retries =
    Arg.(
      value & opt int 0
      & info [ "retries" ]
          ~doc:"Extra solve attempts per query on transient failure."
          ~docv:"N")
  in
  let backoff_base =
    Arg.(
      value & opt float 0.01
      & info [ "backoff-base" ]
          ~doc:
            "First-retry delay in seconds (jittered, capped exponential, derived \
             deterministically from --seed and the request index); 0 disables."
          ~docv:"SECS")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ]
          ~doc:
            "Write-ahead log path: every accepted request's reply is journalled \
             (sharded over --shards, flushed per --sync-every) before it is \
             emitted, so a killed server resumed with --resume over the same \
             input replays a byte-identical transcript."
          ~docv:"PATH")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Reopen the --checkpoint WAL of a killed run: as the input stream is \
             re-driven, journalled indices are answered verbatim from the log \
             (nothing is re-solved) and their state transitions re-applied; a \
             re-driven request that no longer matches its journalled digest is \
             refused (exit 4).")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~doc:"WAL shard count (must match on resume)." ~docv:"N")
  in
  let sync_every =
    Arg.(
      value & opt int 1
      & info [ "sync-every" ]
          ~doc:"Flush each WAL shard every $(docv) appends (default 1 = every reply)."
          ~docv:"K")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ]
          ~doc:
            "Listen on a unix domain socket at $(docv) instead of stdin/stdout; \
             connections are served sequentially, sharing one request-index \
             stream and one WAL."
          ~docv:"PATH")
  in
  let chaos =
    Arg.(
      value
      & opt (some string) None
      & info [ "chaos" ]
          ~doc:
            "Arm the seeded fault injector (sites $(b,serve.request), \
             $(b,serve.journal), $(b,sos.online.run); see doc/ROBUSTNESS.md). \
             Defaults to $(b,\\$SOS_CHAOS) when set."
          ~docv:"SPEC")
  in
  let chaos_seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos-seed" ]
          ~doc:"Seed for probabilistic chaos draws (default $(b,\\$SOS_CHAOS_SEED) or 0)."
          ~docv:"N")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the scheduling service: a line protocol of per-tenant sessions \
          (open/submit/query/close) with admission control and overload \
          shedding, per-query deadlines degrading to last-good schedules, a \
          write-ahead log for crash-safe --resume, and graceful drain on \
          SIGTERM (see doc/SERVE.md).")
    Term.(
      const run $ obs_flags $ jobs $ seed $ max_sessions $ max_jobs $ max_volume
      $ deadline $ retries $ backoff_base $ checkpoint $ resume $ shards $ sync_every
      $ socket $ chaos $ chaos_seed)

(* ------------------------------------------------------------- hardness *)

let hardness_cmd =
  let run numbers =
    let numbers = List.map int_of_string (String.split_on_char ',' numbers) in
    let tp = Exact.Three_partition.create numbers in
    let yes = Exact.Three_partition.solvable tp in
    let q = Exact.Three_partition.yes_gap tp in
    Printf.printf "3-partition  : %s\n" (if yes then "YES" else "NO");
    Printf.printf "q (threshold): %d\n" q;
    (match
       Exact.Binpack_exact.optimum ~node_limit:5_000_000
         (Exact.Three_partition.to_binpack tp)
     with
    | Some opt ->
        Printf.printf "packing OPT  : %d\n" opt;
        Printf.printf "gap holds    : %b\n" (if yes then opt = q else opt > q)
    | None -> Printf.printf "packing OPT  : (search limit exceeded)\n");
    let sched = Sos.Splittable.run (Exact.Three_partition.to_sos tp) in
    Printf.printf "window steps : %d\n" sched.Sos.Schedule.makespan;
    0
  in
  let numbers =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NUMBERS" ~doc:"Comma-separated 3-Partition numbers (3q of them).")
  in
  Cmd.v
    (Cmd.info "hardness" ~doc:"Run the Theorem 2.1 reduction on a 3-Partition instance.")
    Term.(const run $ numbers)

(* --------------------------------------------------------------- corpus *)

let corpus_cmd =
  let run name =
    match name with
    | None ->
        List.iter
          (fun e ->
            Printf.printf "%-18s n=%-4d m=%-2d  %s\n" e.Workload.Corpus.name
              (Sos.Instance.n e.Workload.Corpus.instance)
              e.Workload.Corpus.instance.Sos.Instance.m e.Workload.Corpus.note)
          Workload.Corpus.all;
        0
    | Some name -> begin
        match Workload.Corpus.find name with
        | None ->
            Printf.eprintf "unknown corpus entry %S\n" name;
            1
        | Some e ->
            let inst = e.Workload.Corpus.instance in
            Printf.printf "%s: %s\n\n" e.Workload.Corpus.name e.Workload.Corpus.note;
            let lb = Sos.Bounds.lower_bound inst in
            Printf.printf "  %-22s %d\n" "lower bound" lb;
            (match e.Workload.Corpus.exact_opt with
            | Some opt -> Printf.printf "  %-22s %d\n" "exact optimum" opt
            | None -> ());
            List.iter
              (fun (label, f) ->
                Printf.printf "  %-22s %d\n" label (f inst).Sos.Schedule.makespan)
              [
                ("window", Sos.Fast.run ?variant:None);
                ("literal grow-left", Sos.Fast.run ~variant:`Literal);
                ("naive fracture", Sos.Ablation.run_naive_fracture);
                ("no move-right", Sos.Ablation.run_no_move);
                ("list scheduling", fun i -> Baselines.List_scheduling.run i);
                ("greedy fair", Baselines.Greedy_fair.run);
              ];
            0
      end
  in
  let entry_name =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Entry to run.")
  in
  Cmd.v
    (Cmd.info "corpus" ~doc:"List or run the fixed regression corpus.")
    Term.(const run $ entry_name)

(* ------------------------------------------------------------- obs-diff *)

(* Snapshot comparator: parse two Obs.Metrics snapshots (text, JSON, or
   OpenMetrics — Obs.Snapshot autodetects), join them on the flat key
   space, and report added/removed/changed scalars. With
   --max-regression-pct it becomes a CI gate: exit 1 when any compared
   metric moved by more than P percent (P = 0 demands exact equality —
   the right setting for deterministic-class counters over a fixed
   corpus). *)
let obs_diff_cmd =
  let run a_path b_path max_reg only cls =
    try
      let load path =
        match Obs.Snapshot.load path with
        | exception Sys_error msg -> raise (Usage msg)
        | entries -> entries
      in
      let has_prefix p s =
        String.length s >= String.length p && String.sub s 0 (String.length p) = p
      in
      let wanted (e : Obs.Snapshot.entry) =
        (match only with None -> true | Some p -> has_prefix p e.key)
        && match cls with None -> true | Some c -> e.cls = Some c
      in
      let to_map path =
        let m =
          load path |> List.filter wanted
          |> List.map (fun (e : Obs.Snapshot.entry) -> (e.key, e.v))
          |> List.sort_uniq compare
        in
        if m = [] then
          raise
            (Usage
               (path
              ^ ": no metrics matched (wrong format? --class on a text snapshot, which \
                 records no class?)"));
        m
      in
      let a = to_map a_path and b = to_map b_path in
      let compared = ref 0
      and changed = ref 0
      and added = ref 0
      and removed = ref 0
      and worst = ref 0.0 in
      let pct va vb =
        if va = vb then 0.0
        else if va = 0.0 then infinity
        else abs_float ((vb -. va) /. va) *. 100.0
      in
      let rec go xs ys =
        match (xs, ys) with
        | [], [] -> ()
        | (k, v) :: tx, [] ->
            incr removed;
            Printf.printf "  - %-44s %.6g\n" k v;
            go tx []
        | [], (k, v) :: ty ->
            incr added;
            Printf.printf "  + %-44s %.6g\n" k v;
            go [] ty
        | ((ka, va) :: tx as xs'), ((kb, vb) :: ty as ys') ->
            if ka < kb then begin
              incr removed;
              Printf.printf "  - %-44s %.6g\n" ka va;
              go tx ys'
            end
            else if kb < ka then begin
              incr added;
              Printf.printf "  + %-44s %.6g\n" kb vb;
              go xs' ty
            end
            else begin
              incr compared;
              let p = pct va vb in
              if p > 0.0 then begin
                incr changed;
                if p > !worst then worst := p;
                Printf.printf "  ~ %-44s %.6g -> %.6g  (%.2f%%)\n" ka va vb p
              end;
              go tx ty
            end
      in
      go a b;
      Printf.printf "obs-diff: %d compared, %d changed, %d added, %d removed" !compared
        !changed !added !removed;
      if !changed > 0 then Printf.printf "; worst %.2f%%" !worst;
      print_newline ();
      match max_reg with
      | Some limit when !worst > limit ->
          Printf.eprintf "obs-diff: regression %.2f%% exceeds --max-regression-pct %g\n"
            !worst limit;
          1
      | Some _ | None -> 0
    with Usage msg ->
      prerr_endline ("sosctl obs-diff: " ^ msg);
      2
  in
  let a_path =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"A" ~doc:"Baseline snapshot (text, JSON, or OpenMetrics).")
  in
  let b_path =
    Arg.(
      required & pos 1 (some string) None
      & info [] ~docv:"B" ~doc:"Candidate snapshot to compare against $(i,A).")
  in
  let max_reg =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-regression-pct" ]
          ~doc:
            "Exit 1 if any compared metric differs from $(i,A) by more than $(docv) \
             percent (0 demands exact equality). Without this flag the diff is \
             informational and always exits 0."
          ~docv:"P")
  in
  let only =
    Arg.(
      value
      & opt (some string) None
      & info [ "only" ]
          ~doc:"Restrict the comparison to metrics whose key starts with $(docv)."
          ~docv:"PREFIX")
  in
  let cls =
    Arg.(
      value
      & opt (some (enum [ ("det", "det"); ("runtime", "runtime") ])) None
      & info [ "class" ]
          ~doc:
            "Restrict to one determinism class (JSON and OpenMetrics snapshots record \
             it; plain-text snapshots do not). $(b,det) with \
             --max-regression-pct 0 is the deterministic trajectory gate."
          ~docv:"CLASS")
  in
  Cmd.v
    (Cmd.info "obs-diff"
       ~doc:
         "Compare two telemetry snapshots (text/JSON/OpenMetrics) and optionally \
          fail on regressions — the CI replacement for ad-hoc greps over \
          BENCH_metrics.json.")
    Term.(const run $ a_path $ b_path $ max_reg $ only $ cls)

let () =
  let doc = "Multiprocessor scheduling with a sharable resource (SPAA 2017)" in
  let info = Cmd.info "sosctl" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            gen_cmd; solve_cmd; analyze_cmd; ratio_cmd; binpack_cmd; sas_cmd;
            export_cmd; corpus_cmd; hardness_cmd; batch_cmd; serve_cmd; obs_diff_cmd;
          ]))
