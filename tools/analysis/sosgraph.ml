(* sosgraph — whole-program static analysis for sharing-is-caring.

   soslint (tools/lint) checks each file in isolation; the invariants it
   cannot see are the interprocedural ones: a helper three calls deep
   reads the wall clock and the value flows into a deterministic solver,
   a hot loop is cancellable only because a callee polls, a module-level
   Hashtbl is touched from a pool worker, an exception escapes a sosctl
   subcommand without a Robust.Failure class. sosgraph parses every .ml
   under lib/ bin/ bench/ (and test/ when asked) with ppxlib — parse
   only, no typing — builds a whole-repo call graph with conservative
   per-module open/alias resolution (a call into a repo module whose
   definition cannot be found is treated as tainted), and runs four
   passes over it:

   - A1 determinism-taint: wall-clock, unseeded RNG, Domain.DLS, and
     environment reads must not flow into det-class Obs registration
     sites or into Sos.*/Sas.* solver entry points.
   - A2 cancellation-poll-coverage: every while/rec loop reachable from
     the solver entries, the pool workers, and the serve request loop
     must reach a Robust.Context.poll / Robust.Chaos.point /
     Robust.Cancel.check site in its body, directly or via callees.
   - A3 domain-safety: module-toplevel mutable state reachable from
     pool worker code must be Atomic, Tls/DLS, or explicitly allowed.
   - A4 failure-taxonomy-reachability: every raise/failwith reachable
     from a sosctl subcommand must map to a Robust.Failure class (or be
     an in-file-handled control-flow exception).

   Suppression uses the same [@sos.allow "An: reason"] attribute (and
   the same committed-baseline ratchet) as soslint; see doc/LINT.md.
   Output is deterministic: sorted file:line listings, byte-identical
   across runs and compiler versions (the scan reads the source tree,
   never _build, and always analyses the multicore pool/tls variants). *)

open Ppxlib

let starts_with = Lintkit.starts_with
let json_escape = Lintkit.json_escape
let flatten = Lintkit.flatten

(* ------------------------------------------------------------ pass set *)

let pass_ids = [ "A1"; "A2"; "A3"; "A4" ]

let pass_title = function
  | "A1" -> "determinism-taint"
  | "A2" -> "cancellation-poll-coverage"
  | "A3" -> "domain-safety"
  | "A4" -> "failure-taxonomy-reachability"
  | _ -> "allow-syntax"

(* ------------------------------------------------------- configuration *)

(* Det-class Obs registration entry points: a module-toplevel binding
   whose body calls one of these is a det-class registration site, and a
   tainted function updating such a binding is an A1 violation. *)
let det_reg_fns = [ "Obs.Metrics.counter"; "Obs.Metrics.hist"; "Obs.Hist.create" ]

(* Cooperative-cancellation sites credited by A2. *)
let poll_fns = [ "Robust.Context.poll"; "Robust.Chaos.point"; "Robust.Cancel.check" ]

(* A1 sinks: deterministic solver entry points. *)
let solver_entry id =
  match String.split_on_char '.' id with
  | [ ("Sos" | "Sas"); _; "run" ] -> true
  | _ -> false

(* A2 roots: the run loops whose cancellability the service story needs. *)
let a2_root id =
  id = "Sos.Fast.run" || id = "Sas.Combined.run"
  || starts_with ~prefix:"Engine.Pool." id
  || starts_with ~prefix:"Engine.Batch." id
  || starts_with ~prefix:"Serve.Server." id

(* A3 roots: code that executes on pool worker domains — the pool/batch
   machinery itself plus everything a batch task closure calls (solver
   entries and the incremental session layer). *)
let a3_root id =
  starts_with ~prefix:"Engine.Pool." id
  || starts_with ~prefix:"Engine.Batch." id
  || starts_with ~prefix:"Sos.Online." id
  || id = "Sos.Fast.run" || id = "Sos.Listing1.run" || id = "Sos.Preemptive.run"
  || id = "Sos.Ablation.run" || id = "Sas.Combined.run"

(* A4: the Robust.Failure taxonomy carriers (plus the chaos injector),
   matched on the last constructor component so [open Robust.Failure] /
   [module F = Robust.Failure] raises are recognised too. *)
let taxonomy_ctor name =
  List.mem name
    [ "Invalid"; "Deadline"; "Cancel_requested"; "Pool_down"; "Internal"; "Injected" ]

(* Mutable-state constructors recognised by A3 at module toplevel.
   [Atomic.make] and [Tls.new_key] are the sanctioned forms and are not
   listed. Plain arrays are left out: toplevel arrays in this repo are
   precomputed constant tables. *)
let mutable_ctor parts =
  match parts with
  | [ "ref" ] -> Some "ref"
  | [ "Hashtbl"; "create" ] -> Some "Hashtbl.t"
  | [ "Buffer"; "create" ] -> Some "Buffer.t"
  | [ "Queue"; "create" ] -> Some "Queue.t"
  | [ "Stack"; "create" ] -> Some "Stack.t"
  | [ "Bytes"; ("create" | "make") ] -> Some "Bytes.t"
  | _ -> None

(* A1 taint seeds among unresolvable (external) paths. [rel] scopes the
   chokepoints: Prelude.Rng may use stdlib Random internals (it is the
   seeded wrapper), but Prelude.Clock does NOT get a pass — Clock.now is
   wall-clock by definition, so callers on deterministic paths must
   carry an explicit allow at the call site. *)
let seed_of_external ~rel parts =
  match parts with
  | [ "Unix"; ("gettimeofday" | "time") ] | [ "Sys"; "time" ] ->
      Some ("wall-clock " ^ String.concat "." parts)
  | "Random" :: _ when rel <> "lib/prelude/rng.ml" ->
      Some ("unseeded RNG " ^ String.concat "." parts)
  | [ "Sys"; ("getenv" | "getenv_opt" | "unsafe_getenv") ]
  | [ "Unix"; ("getenv" | "getenv_opt" | "environment") ] ->
      Some ("environment read " ^ String.concat "." parts)
  | "Domain" :: "DLS" :: _ -> Some ("domain-local state " ^ String.concat "." parts)
  | [ "Domain"; "self" ] -> Some "domain identity Domain.self"
  | _ -> None

(* --------------------------------------------------------- module space *)

(* Each scanned file lives in a namespace ("space") of sibling modules:
   one per library directory (where the dune wrapping module is the
   capitalized directory name) and one per executable directory. The
   engine/robust compile-time variant copies map to their wrapped names:
   pool_multicore.ml is Engine.Pool and tls_multicore.ml is Robust.Tls
   (the *_sequential fallbacks and the pool.ml/tls.ml build copies are
   excluded — the analysis models the multicore build, and the scan must
   not depend on compiler version or build state). *)

let module_name_of_base base =
  let base =
    if Filename.check_suffix base "_multicore" then
      Filename.chop_suffix base "_multicore"
    else base
  in
  String.capitalize_ascii base

let space_of_rel rel =
  match String.split_on_char '/' rel with
  | [ "lib"; libdir; base ] ->
      Some
        ( "lib:" ^ libdir,
          [
            String.capitalize_ascii libdir;
            module_name_of_base (Filename.chop_extension base);
          ] )
  | [ "bin"; dir; base ] ->
      Some ("bin:" ^ dir, [ module_name_of_base (Filename.chop_extension base) ])
  | [ "bench"; base ] ->
      Some ("bench", [ module_name_of_base (Filename.chop_extension base) ])
  | [ "test"; base ] ->
      Some ("test", [ module_name_of_base (Filename.chop_extension base) ])
  | _ -> None

(* ------------------------------------------------------- found objects *)

type allow_site = {
  a_file : string;
  a_line : int;
  a_rule : string;
  a_reason : string;
  mutable a_uses : int;
}

type seed = { s_line : int; s_desc : string; s_allow : allow_site option }
type redge = { r_target : string; r_allow : allow_site option }
type unres = { u_path : string; u_allow : allow_site option }

type loop_info = {
  l_line : int;
  l_kind : string; (* "while" | "rec" *)
  mutable l_refs : string list;
  l_allow : allow_site option;
  l_parents : loop_info list; (* enclosing loops, innermost first *)
}

type raise_info = {
  x_line : int;
  x_desc : string;
  x_ctor : string option; (* last ctor component; None for failwith *)
  x_allow : allow_site option;
}

type dinfo = {
  d_id : string;
  d_file : string;
  d_line : int;
  mutable d_refs : redge list;
  mutable d_unres : unres list;
  mutable d_seeds : seed list;
  mutable d_loops : loop_info list;
  mutable d_raises : raise_info list;
  mutable d_mutable : (string * allow_site option) option;
  mutable d_rec_group : string list; (* ids of the let-rec group, [] if none *)
  mutable d_a2_allow : allow_site option; (* binding-level allow for rec defs *)
}

type violation = { v_file : string; v_line : int; v_pass : string; v_msg : string }

let defs : (string, dinfo) Hashtbl.t = Hashtbl.create 512
let modset : (string, unit) Hashtbl.t = Hashtbl.create 64

(* (space, Mod) -> fully qualified top module id *)
let siblings : (string * string, string) Hashtbl.t = Hashtbl.create 64
let wraps : (string, unit) Hashtbl.t = Hashtbl.create 16 (* "Sos", "Prelude", ... *)
let allows : allow_site list ref = ref []
let parse_errors : string list ref = ref []
let violations : violation list ref = ref []
let suppressed : (string * string * int) list ref = ref [] (* pass, file, line *)

let add_violation ~file ~line ~pass ~msg =
  violations := { v_file = file; v_line = line; v_pass = pass; v_msg = msg } :: !violations

let suppress ~pass ~(a : allow_site) ~file ~line =
  a.a_uses <- a.a_uses + 1;
  suppressed := (pass, file, line) :: !suppressed

let find_def id = Hashtbl.find_opt defs id

let new_def ~file ~line id =
  match Hashtbl.find_opt defs id with
  | Some d -> d
  | None ->
      let d =
        {
          d_id = id;
          d_file = file;
          d_line = line;
          d_refs = [];
          d_unres = [];
          d_seeds = [];
          d_loops = [];
          d_raises = [];
          d_mutable = None;
          d_rec_group = [];
          d_a2_allow = None;
        }
      in
      Hashtbl.replace defs id d;
      d

(* ------------------------------------------------- per-file front info *)

type finfo = {
  f_rel : string;
  f_space : string;
  f_top : string list;
  f_ast : structure;
  mutable f_aliases : (string * string list) list;
  mutable f_handled : string list; (* exception ctors appearing in handlers *)
}

let files : finfo list ref = ref []

(* -------------------------------------------------- [@sos.allow] sites *)

let allow_of_attribute ~rel (a : attribute) : allow_site option =
  let loc = a.attr_loc in
  let bad msg =
    add_violation ~file:rel ~line:loc.loc_start.pos_lnum ~pass:"A0"
      ~msg:(Printf.sprintf "malformed [@sos.allow]: %s" msg)
  in
  match Lintkit.allow_attr_payload a with
  | None -> None
  | Some (Error msg) ->
      bad msg;
      None
  | Some (Ok s) -> (
      match Lintkit.parse_allow_payload ~valid_ids:pass_ids ~expected:"A1..A4" s with
      | Ok (id, reason) ->
          let site =
            {
              a_file = rel;
              a_line = loc.loc_start.pos_lnum;
              a_rule = id;
              a_reason = reason;
              a_uses = 0;
            }
          in
          allows := site :: !allows;
          Some site
      | Error msg ->
          (* An R-rule payload belongs to soslint and is not ours to
             police; only a payload neither tool recognises is malformed
             from sosgraph's side. *)
          (match
             Lintkit.parse_allow_payload
               ~valid_ids:[ "R1"; "R2"; "R3"; "R4"; "R5"; "R6"; "R7" ]
               ~expected:"R1..R7" s
           with
          | Ok _ -> ()
          | Error _ -> bad msg);
          None)

(* ---------------------------------------------------- phase 1: collect *)

let pat_vars p =
  let acc = ref [] in
  let rec go p =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> acc := txt :: !acc
    | Ppat_alias (p, { txt; _ }) ->
        acc := txt :: !acc;
        go p
    | Ppat_tuple ps | Ppat_array ps -> List.iter go ps
    | Ppat_construct (_, Some (_, p)) -> go p
    | Ppat_variant (_, Some p) -> go p
    | Ppat_record (fs, _) -> List.iter (fun (_, p) -> go p) fs
    | Ppat_or (a, b) ->
        go a;
        go b
    | Ppat_constraint (p, _) | Ppat_lazy p | Ppat_open (_, p) | Ppat_exception p -> go p
    | _ -> ()
  in
  go p;
  !acc

let def_names_of_vb vb =
  match pat_vars vb.pvb_pat with
  | [] -> [ Printf.sprintf "(entry:%d)" vb.pvb_loc.loc_start.pos_lnum ]
  | names -> List.rev names

let register_modpath path = Hashtbl.replace modset (String.concat "." path) ()

let rec module_structure me =
  match me.pmod_desc with
  | Pmod_structure st -> Some st
  | Pmod_constraint (me, _) | Pmod_functor (_, me) -> module_structure me
  | _ -> None

let rec collect_structure (f : finfo) path st =
  register_modpath path;
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              let line = vb.pvb_loc.loc_start.pos_lnum in
              List.iter
                (fun name ->
                  ignore (new_def ~file:f.f_rel ~line (String.concat "." (path @ [ name ]))))
                (def_names_of_vb vb))
            vbs
      | Pstr_primitive vd ->
          ignore
            (new_def ~file:f.f_rel ~line:vd.pval_loc.loc_start.pos_lnum
               (String.concat "." (path @ [ vd.pval_name.txt ])))
      | Pstr_module mb -> collect_module f path mb
      | Pstr_recmodule mbs -> List.iter (collect_module f path) mbs
      | _ -> ())
    st

and collect_module f path mb =
  match mb.pmb_name.txt with
  | None -> ()
  | Some name -> (
      match mb.pmb_expr.pmod_desc with
      | Pmod_ident { txt; _ } -> f.f_aliases <- (name, flatten txt) :: f.f_aliases
      | _ -> (
          match module_structure mb.pmb_expr with
          | Some st -> collect_structure f (path @ [ name ]) st
          | None -> ()))

(* --------------------------------------------------------- resolution *)

let expand_aliases (f : finfo) parts =
  let rec go fuel parts =
    match parts with
    | head :: rest when fuel > 0 -> (
        match List.assoc_opt head f.f_aliases with
        | Some target when target <> parts -> go (fuel - 1) (target @ rest)
        | _ -> parts)
    | _ -> parts
  in
  go 8 parts

type target =
  | Internal of string
  | Unresolved of string (* inside the repo, but no such definition *)
  | External of string list

(* Candidate qualified ids for [parts] written inside module context
   [ctx] with [opens] active. First candidate naming a known def wins;
   otherwise the first whose module prefix is a known repo module is an
   unresolved-internal call (conservatively tainted); otherwise the path
   is external (stdlib or similar). *)
let resolve (f : finfo) ~ctx ~opens parts =
  let parts = expand_aliases f parts in
  let ctx_candidates =
    (* innermost module first: ctx [Sos; Online] yields Sos.Online.x
       then Sos.x *)
    let rec prefixes acc = function
      | [] -> acc
      | path ->
          prefixes (path :: acc) (List.filteri (fun i _ -> i < List.length path - 1) path)
    in
    prefixes [] ctx |> List.rev
    |> List.map (fun base -> String.concat "." (base @ parts))
  in
  let sibling =
    match parts with
    | head :: rest when rest <> [] -> (
        match Hashtbl.find_opt siblings (f.f_space, head) with
        | Some top -> [ String.concat "." (String.split_on_char '.' top @ rest) ]
        | None -> [])
    | _ -> []
  in
  let direct =
    match parts with
    | head :: _ :: _ when Hashtbl.mem wraps head -> [ String.concat "." parts ]
    | _ -> []
  in
  let open_candidates =
    List.concat_map
      (fun o ->
        let o = expand_aliases f o in
        match o with
        | [ head ] when not (Hashtbl.mem wraps head) -> (
            match Hashtbl.find_opt siblings (f.f_space, head) with
            | Some top -> [ String.concat "." (String.split_on_char '.' top @ parts) ]
            | None -> [ String.concat "." (o @ parts) ])
        | _ -> [ String.concat "." (o @ parts) ])
      opens
  in
  let candidates = ctx_candidates @ sibling @ direct @ open_candidates in
  match List.find_opt (fun id -> Hashtbl.mem defs id) candidates with
  | Some id -> Internal id
  | None -> (
      (* Unqualified names that are neither local nor defs are stdlib
         (max, incr, ...) — external, never unresolved-internal. *)
      match parts with
      | [ _ ] -> External parts
      | _ -> (
          let module_prefix id =
            match String.rindex_opt id '.' with
            | None -> ""
            | Some i -> String.sub id 0 i
          in
          match
            List.find_opt
              (fun id -> module_prefix id <> "" && Hashtbl.mem modset (module_prefix id))
              (sibling @ direct @ open_candidates)
          with
          | Some id -> Unresolved id
          | None -> External parts))

(* --------------------------------------------------- phase 2: traverse *)

module SSet = Set.Make (String)

type wstate = {
  w_f : finfo;
  mutable w_active : allow_site list; (* allow stack, innermost first *)
  mutable w_opens : string list list;
  mutable w_loops : loop_info list; (* enclosing loop stack *)
}

let active_allow w pass = List.find_opt (fun a -> a.a_rule = pass) w.w_active

let current_ctx (d : dinfo) =
  match String.rindex_opt d.d_id '.' with
  | None -> []
  | Some i -> String.split_on_char '.' (String.sub d.d_id 0 i)

let record_ref w (d : dinfo) target =
  match target with
  | Internal id ->
      d.d_refs <- { r_target = id; r_allow = active_allow w "A1" } :: d.d_refs;
      List.iter (fun l -> l.l_refs <- id :: l.l_refs) w.w_loops
  | Unresolved path -> d.d_unres <- { u_path = path; u_allow = active_allow w "A1" } :: d.d_unres
  | External parts ->
      (* Poll fns live in Robust, which is internal to this repo — but a
         fixture mini-repo without a lib/robust resolves them as external.
         Record them under their canonical name so the A2 closure sees the
         edge either way. *)
      let path = String.concat "." parts in
      if List.mem path [ "Robust.Context.poll"; "Robust.Chaos.point"; "Robust.Cancel.check" ]
      then begin
        d.d_refs <- { r_target = path; r_allow = active_allow w "A1" } :: d.d_refs;
        List.iter (fun l -> l.l_refs <- path :: l.l_refs) w.w_loops
      end

(* Exception constructors a case list handles. With [~exn_only], only
   [exception P] sub-patterns count (match cases); a try handler counts
   all its constructor heads. *)
let handler_ctors ~exn_only cases =
  let out = ref [] in
  let rec heads ~in_exn p =
    match p.ppat_desc with
    | Ppat_construct ({ txt; _ }, _) when in_exn || not exn_only -> (
        match List.rev (flatten txt) with name :: _ -> out := name :: !out | [] -> ())
    | Ppat_exception p -> heads ~in_exn:true p
    | Ppat_alias (p, _) | Ppat_constraint (p, _) -> heads ~in_exn p
    | Ppat_or (a, b) ->
        heads ~in_exn a;
        heads ~in_exn b
    | _ -> ()
  in
  List.iter (fun c -> heads ~in_exn:false c.pc_lhs) cases;
  !out

let rec strip_construct e =
  match e.pexp_desc with
  | Pexp_construct ({ txt; _ }, payload) -> Some (flatten txt, payload)
  | Pexp_constraint (e, _) -> strip_construct e
  | _ -> None

let add_pat_vars locals pat =
  List.fold_left (fun acc v -> SSet.add v acc) locals (pat_vars pat)

(* detect an unqualified reference to any of [names] (recursion check
   for let-rec groups). *)
let refs_any_of e names =
  let flag = ref false in
  let iter =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt = Lident n; _ } when List.mem n names -> flag := true
        | _ -> ());
        super#expression e
    end
  in
  iter#expression e;
  !flag

let rec walk_expr w (d : dinfo) locals e =
  let added = List.filter_map (allow_of_attribute ~rel:w.w_f.f_rel) e.pexp_attributes in
  let saved_active = w.w_active in
  w.w_active <- added @ w.w_active;
  let line = e.pexp_loc.loc_start.pos_lnum in
  (match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      let parts = flatten txt in
      match parts with
      | [ name ] when SSet.mem name locals -> ()
      | _ -> (
          match resolve w.w_f ~ctx:(current_ctx d) ~opens:w.w_opens parts with
          | External ext -> (
              match seed_of_external ~rel:w.w_f.f_rel ext with
              | Some desc ->
                  d.d_seeds <-
                    { s_line = line; s_desc = desc; s_allow = active_allow w "A1" }
                    :: d.d_seeds
              | None -> record_ref w d (External ext))
          | t -> record_ref w d t))
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident "failwith"; _ }; _ }, args)
    when not (SSet.mem "failwith" locals) ->
      d.d_raises <-
        { x_line = line; x_desc = "failwith"; x_ctor = None; x_allow = active_allow w "A4" }
        :: d.d_raises;
      List.iter (fun (_, a) -> walk_expr w d locals a) args
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Lident ("raise" | "raise_notrace"); _ }; _ },
        [ (_, arg) ] ) -> (
      match strip_construct arg with
      | Some (ctor_parts, payload) ->
          let name = List.nth ctor_parts (List.length ctor_parts - 1) in
          d.d_raises <-
            {
              x_line = line;
              x_desc = "raise " ^ String.concat "." ctor_parts;
              x_ctor = Some name;
              x_allow = active_allow w "A4";
            }
            :: d.d_raises;
          Option.iter (walk_expr w d locals) payload
      | None ->
          (* re-raise of a caught exception value: class-preserving *)
          walk_expr w d locals arg)
  | Pexp_while (cond, body) ->
      let loop =
        {
          l_line = line;
          l_kind = "while";
          l_refs = [];
          l_allow = active_allow w "A2";
          l_parents = w.w_loops;
        }
      in
      d.d_loops <- loop :: d.d_loops;
      w.w_loops <- loop :: w.w_loops;
      walk_expr w d locals cond;
      walk_expr w d locals body;
      w.w_loops <- List.tl w.w_loops
  | Pexp_let (rf, vbs, body) ->
      let bound =
        List.fold_left (fun acc vb -> add_pat_vars acc vb.pvb_pat) locals vbs
      in
      let inner = if rf = Recursive then bound else locals in
      let names = List.concat_map (fun vb -> pat_vars vb.pvb_pat) vbs in
      let loop =
        if rf = Recursive then
          Some
            {
              l_line = line;
              l_kind = "rec";
              l_refs = [];
              l_allow = active_allow w "A2";
              l_parents = w.w_loops;
            }
        else None
      in
      (match loop with Some l -> w.w_loops <- l :: w.w_loops | None -> ());
      let saw_self = ref false in
      List.iter
        (fun vb ->
          let vadd = List.filter_map (allow_of_attribute ~rel:w.w_f.f_rel) vb.pvb_attributes in
          let saved = w.w_active in
          w.w_active <- vadd @ w.w_active;
          if rf = Recursive && refs_any_of vb.pvb_expr names then saw_self := true;
          walk_expr w d inner vb.pvb_expr;
          w.w_active <- saved)
        vbs;
      (match loop with
      | Some l ->
          w.w_loops <- List.tl w.w_loops;
          if !saw_self then d.d_loops <- l :: d.d_loops
      | None -> ());
      walk_expr w d bound body
  | Pexp_function (params, _, body) ->
      let bound =
        List.fold_left
          (fun acc p ->
            match p.pparam_desc with
            | Pparam_val (_, default, pat) ->
                Option.iter (walk_expr w d acc) default;
                add_pat_vars acc pat
            | Pparam_newtype _ -> acc)
          locals params
      in
      (match body with
      | Pfunction_body e -> walk_expr w d bound e
      | Pfunction_cases (cases, _, _) -> walk_cases w d bound cases)
  | Pexp_match (scrut, cases) ->
      w.w_f.f_handled <- handler_ctors ~exn_only:true cases @ w.w_f.f_handled;
      walk_expr w d locals scrut;
      walk_cases w d locals cases
  | Pexp_try (scrut, cases) ->
      w.w_f.f_handled <- handler_ctors ~exn_only:false cases @ w.w_f.f_handled;
      walk_expr w d locals scrut;
      walk_cases w d locals cases
  | Pexp_apply (fn, args) ->
      walk_expr w d locals fn;
      List.iter (fun (_, a) -> walk_expr w d locals a) args
  | Pexp_tuple es | Pexp_array es -> List.iter (walk_expr w d locals) es
  | Pexp_construct (_, eo) | Pexp_variant (_, eo) -> Option.iter (walk_expr w d locals) eo
  | Pexp_record (fs, base) ->
      Option.iter (walk_expr w d locals) base;
      List.iter (fun (_, e) -> walk_expr w d locals e) fs
  | Pexp_field (e, _) -> walk_expr w d locals e
  | Pexp_setfield (a, _, b) | Pexp_sequence (a, b) ->
      walk_expr w d locals a;
      walk_expr w d locals b
  | Pexp_ifthenelse (c, t, eo) ->
      walk_expr w d locals c;
      walk_expr w d locals t;
      Option.iter (walk_expr w d locals) eo
  | Pexp_for (pat, lo, hi, _, body) ->
      walk_expr w d locals lo;
      walk_expr w d locals hi;
      walk_expr w d (add_pat_vars locals pat) body
  | Pexp_constraint (e, _)
  | Pexp_coerce (e, _, _)
  | Pexp_lazy e
  | Pexp_assert e
  | Pexp_newtype (_, e)
  | Pexp_poly (e, _) ->
      walk_expr w d locals e
  | Pexp_open (od, body) ->
      let saved = w.w_opens in
      (match od.popen_expr.pmod_desc with
      | Pmod_ident { txt; _ } -> w.w_opens <- flatten txt :: w.w_opens
      | _ -> ());
      walk_expr w d locals body;
      w.w_opens <- saved
  | Pexp_letmodule (name, me, body) ->
      (match (name.txt, me.pmod_desc) with
      | Some n, Pmod_ident { txt; _ } -> w.w_f.f_aliases <- (n, flatten txt) :: w.w_f.f_aliases
      | _ -> ());
      walk_expr w d locals body
  | Pexp_letexception (_, body) -> walk_expr w d locals body
  | Pexp_letop { let_; ands; body } ->
      walk_expr w d locals let_.pbop_exp;
      List.iter (fun b -> walk_expr w d locals b.pbop_exp) ands;
      let bound =
        List.fold_left
          (fun acc b -> add_pat_vars acc b.pbop_pat)
          (add_pat_vars locals let_.pbop_pat)
          ands
      in
      walk_expr w d bound body
  | _ -> ());
  w.w_active <- saved_active

and walk_cases w d locals cases =
  List.iter
    (fun c ->
      let bound = add_pat_vars locals c.pc_lhs in
      Option.iter (walk_expr w d bound) c.pc_guard;
      walk_expr w d bound c.pc_rhs)
    cases

let rec mutable_root e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) -> mutable_root e
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> mutable_ctor (flatten txt)
  | _ -> None

(* Structure walk with floor allows, module nesting, and opens. *)
let rec analyze_structure (f : finfo) w path st =
  let floor =
    List.filter_map
      (function
        | { pstr_desc = Pstr_attribute a; _ } -> allow_of_attribute ~rel:f.f_rel a
        | _ -> None)
      st
  in
  let saved_active = w.w_active and saved_opens = w.w_opens in
  w.w_active <- floor @ w.w_active;
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_open od -> (
          match od.popen_expr.pmod_desc with
          | Pmod_ident { txt; _ } -> w.w_opens <- flatten txt :: w.w_opens
          | _ -> ())
      | Pstr_value (rf, vbs) ->
          let group_ids =
            List.concat_map def_names_of_vb vbs
            |> List.map (fun n -> String.concat "." (path @ [ n ]))
          in
          List.iter
            (fun vb ->
              let primary = List.hd (def_names_of_vb vb) in
              let id = String.concat "." (path @ [ primary ]) in
              let d =
                match find_def id with
                | Some d -> d
                | None -> new_def ~file:f.f_rel ~line:vb.pvb_loc.loc_start.pos_lnum id
              in
              let added =
                List.filter_map (allow_of_attribute ~rel:f.f_rel) vb.pvb_attributes
              in
              let saved = w.w_active in
              w.w_active <- added @ w.w_active;
              if rf = Recursive then begin
                d.d_rec_group <- group_ids;
                d.d_a2_allow <- active_allow w "A2"
              end;
              (if starts_with ~prefix:"lib/" f.f_rel then
                 match mutable_root vb.pvb_expr with
                 | Some ctor -> d.d_mutable <- Some (ctor, active_allow w "A3")
                 | None -> ());
              walk_expr w d SSet.empty vb.pvb_expr;
              w.w_active <- saved)
            vbs
      | Pstr_module mb -> analyze_module f w path mb
      | Pstr_recmodule mbs -> List.iter (analyze_module f w path) mbs
      | Pstr_eval (e, attrs) ->
          let id =
            String.concat "."
              (path @ [ Printf.sprintf "(entry:%d)" item.pstr_loc.loc_start.pos_lnum ])
          in
          let d = new_def ~file:f.f_rel ~line:item.pstr_loc.loc_start.pos_lnum id in
          let added = List.filter_map (allow_of_attribute ~rel:f.f_rel) attrs in
          let saved = w.w_active in
          w.w_active <- added @ w.w_active;
          walk_expr w d SSet.empty e;
          w.w_active <- saved
      | _ -> ())
    st;
  w.w_active <- saved_active;
  w.w_opens <- saved_opens

and analyze_module f w path mb =
  match mb.pmb_name.txt with
  | None -> ()
  | Some name -> (
      match mb.pmb_expr.pmod_desc with
      | Pmod_ident _ -> ()
      | _ -> (
          match module_structure mb.pmb_expr with
          | Some st ->
              let added = List.filter_map (allow_of_attribute ~rel:f.f_rel) mb.pmb_attributes in
              let saved = w.w_active in
              w.w_active <- added @ w.w_active;
              analyze_structure f w (path @ [ name ]) st;
              w.w_active <- saved
          | None -> ()))

(* ------------------------------------------------------ graph analyses *)

let sorted_internal_refs d =
  d.d_refs |> List.map (fun r -> r.r_target) |> List.sort_uniq compare

let all_ids () = Hashtbl.fold (fun id _ acc -> id :: acc) defs [] |> List.sort compare

(* Forward reachability from [roots] over reference edges; returns for
   every reachable id the root it was first discovered from
   (deterministic: level-synchronous BFS with sorted frontiers). *)
let reach ~roots =
  let info : (string, string) Hashtbl.t = Hashtbl.create 256 in
  let frontier = ref (List.sort_uniq compare roots) in
  List.iter (fun r -> Hashtbl.replace info r r) !frontier;
  while !frontier <> [] do
    let next = ref [] in
    List.iter
      (fun id ->
        match find_def id with
        | None -> ()
        | Some d ->
            let root = Hashtbl.find info id in
            List.iter
              (fun t ->
                if not (Hashtbl.mem info t) then begin
                  Hashtbl.replace info t root;
                  next := t :: !next
                end)
              (sorted_internal_refs d))
      !frontier;
    frontier := List.sort_uniq compare !next
  done;
  info

(* Least fixpoint of "is, or references (directly or transitively), a
   base id". *)
let closure_towards ~base =
  let ok : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace ok id ()) base;
  let ids = all_ids () in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun id ->
        if not (Hashtbl.mem ok id) then
          match find_def id with
          | Some d when List.exists (fun t -> Hashtbl.mem ok t) (sorted_internal_refs d) ->
              Hashtbl.replace ok id ();
              changed := true
          | _ -> ())
      ids
  done;
  ok

(* ----------------------------------------------------------- pass A1 *)

let run_a1 () =
  let ids = all_ids () in
  (* Taint: multi-source BFS over reverse edges from seeded defs,
     ignoring severed ([@sos.allow "A1"]) references. *)
  let rev : (string, string list) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun id ->
      match find_def id with
      | None -> ()
      | Some d ->
          List.iter
            (fun r ->
              if r.r_allow = None then
                Hashtbl.replace rev r.r_target
                  (id :: Option.value ~default:[] (Hashtbl.find_opt rev r.r_target)))
            d.d_refs)
    ids;
  let origin : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let parent : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let seeds0 =
    List.filter_map
      (fun id ->
        match find_def id with
        | None -> None
        | Some d -> (
            let live_seeds =
              List.filter (fun s -> s.s_allow = None) d.d_seeds
              |> List.sort (fun a b -> compare (a.s_line, a.s_desc) (b.s_line, b.s_desc))
            in
            let live_unres =
              List.filter_map (fun u -> if u.u_allow = None then Some u.u_path else None) d.d_unres
              |> List.sort_uniq compare
            in
            match (live_seeds, live_unres) with
            | s :: _, _ -> Some (id, Printf.sprintf "%s (%s:%d)" s.s_desc d.d_file s.s_line)
            | [], u :: _ -> Some (id, Printf.sprintf "unresolved call %s" u)
            | [], [] -> None))
      ids
  in
  List.iter (fun (id, why) -> Hashtbl.replace origin id why) seeds0;
  let frontier = ref (List.sort compare (List.map fst seeds0)) in
  while !frontier <> [] do
    let next = ref [] in
    List.iter
      (fun id ->
        List.sort compare (Option.value ~default:[] (Hashtbl.find_opt rev id))
        |> List.iter (fun caller ->
               if not (Hashtbl.mem origin caller) then begin
                 Hashtbl.replace origin caller (Hashtbl.find origin id);
                 Hashtbl.replace parent caller id;
                 next := caller :: !next
               end))
      !frontier;
    frontier := List.sort_uniq compare !next
  done;
  let tainted id = Hashtbl.mem origin id in
  let describe id =
    let rec chain acc id =
      match Hashtbl.find_opt parent id with
      | Some p when List.length acc < 12 -> chain (id :: acc) p
      | _ -> id :: acc
    in
    let path = List.rev (chain [] id) in
    let why = Hashtbl.find origin id in
    if List.length path <= 1 then Printf.sprintf "seed %s" why
    else Printf.sprintf "via %s; seed %s" (String.concat " -> " path) why
  in
  (* A binding whose own body calls a det-class creator is a det-class
     registration site; the sink check skips lib/obs itself (the
     registry internals wire det and runtime classes side by side). *)
  let det_reg_binding id =
    List.mem id det_reg_fns
    ||
    match find_def id with
    | None -> false
    | Some d -> List.exists (fun r -> List.mem r.r_target det_reg_fns) d.d_refs
  in
  List.iter
    (fun id ->
      match find_def id with
      | None -> ()
      | Some d ->
          if tainted id then
            if solver_entry id then
              add_violation ~file:d.d_file ~line:d.d_line ~pass:"A1"
                ~msg:
                  (Printf.sprintf
                     "det-class solver entry %s is wall-clock/RNG/DLS/env tainted: %s" id
                     (describe id))
            else if
              (not (starts_with ~prefix:"lib/obs/" d.d_file)) && not (det_reg_binding id)
            then (
              match List.filter det_reg_binding (sorted_internal_refs d) with
              | t :: _ ->
                  add_violation ~file:d.d_file ~line:d.d_line ~pass:"A1"
                    ~msg:
                      (Printf.sprintf "%s updates det-class telemetry (%s) while tainted: %s"
                         id t (describe id))
              | [] -> ()))
    ids;
  (* suppressed-hit accounting: allowed seeds always count; severed
     references count when they actually blocked a tainted or
     unresolved callee. *)
  List.iter
    (fun id ->
      match find_def id with
      | None -> ()
      | Some d ->
          List.iter
            (fun s ->
              match s.s_allow with
              | Some a -> suppress ~pass:"A1" ~a ~file:d.d_file ~line:s.s_line
              | None -> ())
            d.d_seeds;
          List.iter
            (fun u ->
              match u.u_allow with
              | Some a -> suppress ~pass:"A1" ~a ~file:d.d_file ~line:d.d_line
              | None -> ())
            d.d_unres;
          List.iter
            (fun r ->
              match r.r_allow with
              | Some a when tainted r.r_target ->
                  suppress ~pass:"A1" ~a ~file:d.d_file ~line:d.d_line
              | _ -> ())
            d.d_refs)
    ids

(* ----------------------------------------------------------- pass A2 *)

let run_a2 () =
  let ids = all_ids () in
  let reachable = reach ~roots:(List.filter a2_root ids) in
  let polls = closure_towards ~base:poll_fns in
  let polling l = List.exists (fun t -> Hashtbl.mem polls t) (List.sort_uniq compare l.l_refs) in
  (* a loop nested inside a polling loop of the same def is covered by
     its ancestor: the outer loop polls between re-entries *)
  let loop_ok l = polling l || List.exists polling l.l_parents in
  (* A def is poll-guarded when it only runs beneath a loop that polls
     every iteration: anything called from inside a polling loop, plus
     the forward closure of those callees. A bounded helper recursion
     (list walk, gcd) under Fast.run's polling main loop is covered —
     cancellation latency is one outer iteration. The driving loops
     themselves (roots with no polling ancestor) still must poll. *)
  let guarded =
    let base = ref [] in
    List.iter
      (fun id ->
        match find_def id with
        | None -> ()
        | Some d ->
            List.iter
              (fun l -> if polling l then base := List.sort_uniq compare l.l_refs @ !base)
              d.d_loops)
      ids;
    let g = reach ~roots:!base in
    fun id -> Hashtbl.mem g id
  in
  List.iter
    (fun id ->
      match find_def id with
      | None -> ()
      | Some d -> (
          match Hashtbl.find_opt reachable id with
          | None -> ()
          | Some root when not (guarded id) ->
              List.iter
                (fun l ->
                  if not (loop_ok l) then
                    match l.l_allow with
                    | Some a -> suppress ~pass:"A2" ~a ~file:d.d_file ~line:l.l_line
                    | None ->
                        add_violation ~file:d.d_file ~line:l.l_line ~pass:"A2"
                          ~msg:
                            (Printf.sprintf
                               "%s loop in %s (reachable from %s) never reaches \
                                Robust.Context.poll/Chaos.point — un-cancellable" l.l_kind
                               id root))
                (List.sort (fun a b -> compare a.l_line b.l_line) d.d_loops);
              (* structure-level recursion: the function itself is the
                 loop; it passes if it reaches a poll site at all. *)
              let refs = sorted_internal_refs d in
              let self_rec =
                d.d_rec_group <> [] && List.exists (fun g -> List.mem g refs) d.d_rec_group
              in
              if self_rec && not (Hashtbl.mem polls id) then (
                match d.d_a2_allow with
                | Some a -> suppress ~pass:"A2" ~a ~file:d.d_file ~line:d.d_line
                | None ->
                    add_violation ~file:d.d_file ~line:d.d_line ~pass:"A2"
                      ~msg:
                        (Printf.sprintf
                           "recursive %s (reachable from %s) never reaches \
                            Robust.Context.poll/Chaos.point — un-cancellable" id root))
          | Some _ -> ()))
    ids

(* ----------------------------------------------------------- pass A3 *)

let run_a3 () =
  let ids = all_ids () in
  let reachable = reach ~roots:(List.filter a3_root ids) in
  List.iter
    (fun id ->
      match find_def id with
      | None -> ()
      | Some m -> (
          match m.d_mutable with
          | None -> ()
          | Some (ctor, allow) -> (
              let referers =
                List.filter
                  (fun rid ->
                    rid <> id && Hashtbl.mem reachable rid
                    &&
                    match find_def rid with
                    | Some rd -> List.mem id (sorted_internal_refs rd)
                    | None -> false)
                  ids
              in
              match referers with
              | [] -> ()
              | r :: _ -> (
                  let root = Hashtbl.find reachable r in
                  match allow with
                  | Some a -> suppress ~pass:"A3" ~a ~file:m.d_file ~line:m.d_line
                  | None ->
                      add_violation ~file:m.d_file ~line:m.d_line ~pass:"A3"
                        ~msg:
                          (Printf.sprintf
                             "module-toplevel mutable state %s (%s) is used by %s, which \
                              runs on pool workers (reachable from %s): use Atomic, Tls, \
                              or an explicit allow" id ctor r root)))))
    ids

(* ----------------------------------------------------------- pass A4 *)

let run_a4 () =
  let ids = all_ids () in
  let reachable =
    reach ~roots:(List.filter (fun id -> starts_with ~prefix:"Sosctl." id) ids)
  in
  let handled_in rel =
    match List.find_opt (fun f -> f.f_rel = rel) !files with
    | Some f -> f.f_handled
    | None -> []
  in
  List.iter
    (fun id ->
      match find_def id with
      | None -> ()
      | Some d -> (
          match Hashtbl.find_opt reachable id with
          | None -> ()
          | Some root ->
              List.iter
                (fun x ->
                  let ok =
                    match x.x_ctor with
                    | Some name ->
                        taxonomy_ctor name
                        || List.mem name [ "Invalid_argument"; "Assert_failure" ]
                        || List.mem name (handled_in d.d_file)
                    | None -> false
                  in
                  if not ok then
                    match x.x_allow with
                    | Some a -> suppress ~pass:"A4" ~a ~file:d.d_file ~line:x.x_line
                    | None ->
                        add_violation ~file:d.d_file ~line:x.x_line ~pass:"A4"
                          ~msg:
                            (Printf.sprintf
                               "%s in %s is reachable from sosctl (%s) but maps to no \
                                Robust.Failure class" x.x_desc id root))
                (List.sort (fun a b -> compare (a.x_line, a.x_desc) (b.x_line, b.x_desc))
                   d.d_raises)))
    ids

(* ------------------------------------------------------------- output *)

let edge_count () =
  List.fold_left
    (fun acc id ->
      match find_def id with
      | None -> acc
      | Some d -> acc + List.length (sorted_internal_refs d))
    0 (all_ids ())

let json_summary ~files_checked ~open_v ~sup =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"files_checked\": %d,\n" files_checked);
  Buffer.add_string buf (Printf.sprintf "  \"functions\": %d,\n" (Hashtbl.length defs));
  Buffer.add_string buf (Printf.sprintf "  \"edges\": %d,\n" (edge_count ()));
  Buffer.add_string buf (Printf.sprintf "  \"violations\": %d,\n" (List.length open_v));
  Buffer.add_string buf (Printf.sprintf "  \"suppressed\": %d,\n" (List.length sup));
  Buffer.add_string buf (Printf.sprintf "  \"allow_sites\": %d,\n" (List.length !allows));
  Buffer.add_string buf "  \"passes\": [\n";
  let pass_row id =
    let v = List.length (List.filter (fun v -> v.v_pass = id) open_v) in
    let s = List.length (List.filter (fun (p, _, _) -> p = id) sup) in
    Printf.sprintf
      "    {\"id\": \"%s\", \"name\": \"%s\", \"violations\": %d, \"suppressed\": %d}" id
      (pass_title id) v s
  in
  Buffer.add_string buf (String.concat ",\n" (List.map pass_row pass_ids));
  Buffer.add_string buf "\n  ],\n  \"violations_list\": [\n";
  let v_row v =
    Printf.sprintf "    {\"file\": \"%s\", \"line\": %d, \"pass\": \"%s\", \"message\": \"%s\"}"
      (json_escape v.v_file) v.v_line v.v_pass (json_escape v.v_msg)
  in
  Buffer.add_string buf (String.concat ",\n" (List.map v_row open_v));
  Buffer.add_string buf "\n  ],\n  \"allows\": [\n";
  let a_row a =
    Printf.sprintf
      "    {\"file\": \"%s\", \"line\": %d, \"pass\": \"%s\", \"reason\": \"%s\", \"uses\": %d}"
      (json_escape a.a_file) a.a_line a.a_rule (json_escape a.a_reason) a.a_uses
  in
  let sorted_allows =
    List.sort (fun a b -> compare (a.a_file, a.a_line) (b.a_file, b.a_line)) !allows
  in
  Buffer.add_string buf (String.concat ",\n" (List.map a_row sorted_allows));
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let baseline_counts sup =
  List.map (fun id -> (id, List.length (List.filter (fun (p, _, _) -> p = id) sup))) pass_ids

(* --------------------------------------------------------------- main *)

let usage =
  "sosgraph [--root DIR] [--json PATH] [--baseline PATH] [--write-baseline PATH] [--exclude \
   REL]... [--exclude-dir REL]... [DIR]..."

let () =
  let root = ref "." in
  let json_out = ref None in
  let baseline = ref None in
  let write_base = ref None in
  let excludes = ref [] in
  let exclude_dirs = ref [] in
  let dirs = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--root" :: v :: rest ->
        root := v;
        parse_args rest
    | "--json" :: v :: rest ->
        json_out := Some v;
        parse_args rest
    | "--baseline" :: v :: rest ->
        baseline := Some v;
        parse_args rest
    | "--write-baseline" :: v :: rest ->
        write_base := Some v;
        parse_args rest
    | "--exclude" :: v :: rest ->
        excludes := v :: !excludes;
        parse_args rest
    | "--exclude-dir" :: v :: rest ->
        exclude_dirs := v :: !exclude_dirs;
        parse_args rest
    | ("--help" | "-h") :: _ ->
        print_endline usage;
        exit 0
    | flag :: _ when starts_with ~prefix:"--" flag ->
        prerr_endline ("sosgraph: unknown flag " ^ flag);
        prerr_endline usage;
        exit 2
    | d :: rest ->
        dirs := d :: !dirs;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let dirs = if !dirs = [] then [ "lib"; "bin"; "bench" ] else List.rev !dirs in
  let scan =
    Lintkit.scan_files ~root:!root ~dirs
      ~excludes:
        ([
           "lib/engine/pool.ml";
           "lib/engine/pool_sequential.ml";
           "lib/robust/tls.ml";
           "lib/robust/tls_sequential.ml";
         ]
        @ !excludes)
      ~exclude_dirs:!exclude_dirs
    |> List.filter (fun rel -> Filename.check_suffix rel ".ml")
  in
  let parsed =
    List.filter_map
      (fun rel ->
        match space_of_rel rel with
        | None -> None
        | Some (space, top) -> (
            match Lintkit.parse_file ~root:!root rel with
            | Ok (Lintkit.Impl st) ->
                Some
                  {
                    f_rel = rel;
                    f_space = space;
                    f_top = top;
                    f_ast = st;
                    f_aliases = [];
                    f_handled = [];
                  }
            | Ok (Lintkit.Intf _) -> None
            | Error msg ->
                parse_errors := msg :: !parse_errors;
                None))
      scan
  in
  (match !parse_errors with
  | [] -> ()
  | errs ->
      List.iter prerr_endline (List.sort compare errs);
      exit 2);
  files := parsed;
  (* phase 1: defs, module set, sibling spaces, wrapper names *)
  List.iter
    (fun f ->
      (match f.f_top with
      | [ wrapname; modname ] ->
          Hashtbl.replace wraps wrapname ();
          Hashtbl.replace siblings (f.f_space, modname) (wrapname ^ "." ^ modname)
      | [ modname ] -> Hashtbl.replace siblings (f.f_space, modname) modname
      | _ -> ());
      collect_structure f f.f_top f.f_ast)
    parsed;
  (* phase 2: per-file reference/seed/loop/raise collection *)
  List.iter
    (fun f ->
      let w = { w_f = f; w_active = []; w_opens = []; w_loops = [] } in
      analyze_structure f w f.f_top f.f_ast)
    parsed;
  (* phase 3: the four passes *)
  run_a1 ();
  run_a2 ();
  run_a3 ();
  run_a4 ();
  (* an exemption that exempts nothing is itself a defect *)
  List.iter
    (fun a ->
      if a.a_uses = 0 then
        add_violation ~file:a.a_file ~line:a.a_line ~pass:"A0"
          ~msg:
            (Printf.sprintf "unused [@sos.allow \"%s: ...\"]: it suppresses no finding" a.a_rule))
    (List.sort (fun a b -> compare (a.a_file, a.a_line) (b.a_file, b.a_line)) !allows);
  let open_v =
    List.sort_uniq
      (fun a b ->
        compare (a.v_file, a.v_line, a.v_pass, a.v_msg) (b.v_file, b.v_line, b.v_pass, b.v_msg))
      !violations
  in
  List.iter (fun v -> Printf.printf "%s:%d %s %s\n" v.v_file v.v_line v.v_pass v.v_msg) open_v;
  let sup = !suppressed in
  let baseline_failures =
    match !baseline with
    | Some p -> Lintkit.check_baseline ~hint:"tools/analysis" p (baseline_counts sup)
    | None -> []
  in
  List.iter print_endline baseline_failures;
  (match !write_base with
  | Some p -> Lintkit.write_baseline p (baseline_counts sup)
  | None -> ());
  (match !json_out with
  | Some p ->
      let oc = open_out p in
      output_string oc (json_summary ~files_checked:(List.length scan) ~open_v ~sup);
      close_out oc
  | None -> ());
  Printf.printf
    "sosgraph: %d files, %d functions, %d edges, %d violations, %d suppressed hits via %d \
     [@sos.allow] sites\n"
    (List.length scan) (Hashtbl.length defs) (edge_count ()) (List.length open_v)
    (List.length sup) (List.length !allows);
  if open_v <> [] || baseline_failures <> [] then exit 1
