(* soslint — repo-invariant static analysis for sharing-is-caring.

   The repo's reproducibility guarantee (byte-identical solver output and
   deterministic telemetry snapshots at any -j) rests on conventions that
   the compiler cannot check: seeded randomness only, one wall-clock
   chokepoint, Atomic-not-Mutex in libraries, stdout purity, ordered
   Hashtbl emission, the Robust.Failure taxonomy on hot paths, and no
   polymorphic compare on floats. This tool parses every .ml/.mli under
   lib/ bin/ bench/ with ppxlib (parse only — no typing, so it runs in
   milliseconds and needs no build) and enforces rules R1-R7; see
   doc/LINT.md for the catalogue and the suppression policy.

   A hit is suppressible only by an explicit attribute carrying the rule
   id and a reason:

     let[@sos.allow "R5: zeroing is order-insensitive"] reset () = ...
     [@@@sos.allow "R3: this file is the sanctioned blocking queue"]

   Suppressed hits are counted, reported in the JSON summary, and checked
   against a committed baseline so suppressions cannot creep in silently. *)

open Ppxlib

(* The ppxlib frontend (file walk, parsing, [@sos.allow] payload grammar,
   JSON escaping, baseline cycle) lives in Lintkit and is shared with
   sosgraph (tools/analysis/), the whole-program companion to this
   per-file pass. *)

let starts_with = Lintkit.starts_with
let json_escape = Lintkit.json_escape
let flatten = Lintkit.flatten

(* ------------------------------------------------------------ rule set *)

let rule_ids = [ "R1"; "R2"; "R3"; "R4"; "R5"; "R6"; "R7" ]

let rule_title = function
  | "R1" -> "seeded-rng-only"
  | "R2" -> "wall-clock-chokepoint"
  | "R3" -> "atomic-not-mutex"
  | "R4" -> "stdout-purity"
  | "R5" -> "ordered-hashtbl-emission"
  | "R6" -> "failure-taxonomy"
  | "R7" -> "explicit-float-compare"
  | _ -> "allow-syntax"

(* Path helpers. Relative paths always use '/' and are relative to
   --root, so rule scoping and output are machine-independent. *)

let in_lib rel = starts_with ~prefix:"lib/" rel

(* R6 applies where the Robust.Failure taxonomy is the error contract:
   the engine and resilience layers in full, plus the solver run loops.
   Structure modules (State, Window, Assign, ...) keep [invalid_arg] as
   their documented API contract and are out of scope; see doc/LINT.md. *)
let r6_hot rel =
  starts_with ~prefix:"lib/engine/" rel
  || starts_with ~prefix:"lib/robust/" rel
  || List.mem rel
       [
         "lib/sos/fast.ml";
         "lib/sos/listing1.ml";
         "lib/sos/online.ml";
         "lib/sos/ablation.ml";
         "lib/sos/preemptive.ml";
       ]

let rule_in_scope rule rel =
  match rule with
  | "R1" -> rel <> "lib/prelude/rng.ml" && rel <> "lib/prelude/rng.mli"
  | "R2" -> rel <> "lib/prelude/clock.ml" && rel <> "lib/prelude/clock.mli"
  | "R3" | "R4" -> in_lib rel
  | "R5" -> true
  | "R6" -> r6_hot rel
  | "R7" -> starts_with ~prefix:"lib/sos/" rel || starts_with ~prefix:"lib/sas/" rel
  | _ -> true

(* ------------------------------------------------------- found objects *)

type hit = {
  h_file : string;
  h_line : int;
  h_col : int;
  h_rule : string;
  h_msg : string;
  mutable h_suppressed : bool;
}

type allow_site = {
  a_file : string;
  a_line : int;
  a_rule : string;
  a_reason : string;
  mutable a_uses : int;
}

let hits : hit list ref = ref []
let allows : allow_site list ref = ref []
let parse_errors : string list ref = ref []

let add_hit ~rel ~loc ~rule ~msg ~active =
  if rule_in_scope rule rel then begin
    let h =
      {
        h_file = rel;
        h_line = loc.loc_start.pos_lnum;
        h_col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
        h_rule = rule;
        h_msg = msg;
        h_suppressed = false;
      }
    in
    (match List.find_opt (fun a -> a.a_rule = rule) active with
    | Some a ->
        a.a_uses <- a.a_uses + 1;
        h.h_suppressed <- true
    | None -> ());
    hits := h :: !hits
  end

(* ------------------------------------------------- attribute handling *)

(* [@sos.allow "Rn: reason"] — exactly one rule id, nonempty reason.
   Anything else under the sos.allow name is itself reported (rule R0)
   so a typo cannot silently suppress nothing. *)

let allow_of_attribute ~rel (a : attribute) : allow_site option =
  let loc = a.attr_loc in
  let bad msg =
    add_hit ~rel ~loc ~rule:"R0"
      ~msg:(Printf.sprintf "malformed [@sos.allow]: %s" msg)
      ~active:[];
    None
  in
  match Lintkit.allow_attr_payload a with
  | None -> None
  | Some (Error msg) -> bad msg
  | Some (Ok s) -> (
      match Lintkit.parse_allow_payload ~valid_ids:rule_ids ~expected:"R1..R7" s with
      | Ok (id, reason) ->
          let site =
            {
              a_file = rel;
              a_line = loc.loc_start.pos_lnum;
              a_rule = id;
              a_reason = reason;
              a_uses = 0;
            }
          in
          allows := site :: !allows;
          Some site
      | Error msg -> (
          (* An A-pass payload belongs to sosgraph (tools/analysis) and
             is not ours to police; only a payload neither tool
             recognises is malformed from soslint's side. *)
          match
            Lintkit.parse_allow_payload ~valid_ids:[ "A1"; "A2"; "A3"; "A4" ]
              ~expected:"A1..A4" s
          with
          | Ok _ -> None
          | Error _ -> bad msg))

(* --------------------------------------------------- syntactic checks *)

(* Module aliases: [module U = Unix] lets [U.time ()] evade a path match,
   so every file's alias bindings are collected up front (including inside
   nested modules — parse-only, no scoping subtleties honoured) and ident
   paths are expanded through them before rule matching. Chains
   ([module A = U]) resolve through a bounded walk. *)

let collect_aliases st =
  let aliases : (string, string list) Hashtbl.t = Hashtbl.create 8 in
  let iter =
    object
      inherit Ast_traverse.iter as super

      method! module_binding mb =
        (match (mb.pmb_name.txt, mb.pmb_expr.pmod_desc) with
        | Some name, Pmod_ident { txt; _ } -> Hashtbl.replace aliases name (flatten txt)
        | _ -> ());
        super#module_binding mb
    end
  in
  iter#structure st;
  aliases

let expand_aliases aliases parts =
  let rec go fuel parts =
    match parts with
    | head :: rest when fuel > 0 -> (
        match Hashtbl.find_opt aliases head with
        | Some target when target <> parts -> go (fuel - 1) (target @ rest)
        | _ -> parts)
    | _ -> parts
  in
  go 8 parts

let ident_rule parts =
  match parts with
  | [ "Random" ] | "Random" :: _ ->
      Some ("R1", "stdlib Random is global mutable state; use Prelude.Rng (seeded, splittable)")
  | [ "Unix"; "gettimeofday" ] | [ "Unix"; "time" ] | [ "Sys"; "time" ] ->
      Some
        ( "R2",
          Printf.sprintf "%s: wall-clock reads go through Prelude.Clock only"
            (String.concat "." parts) )
  | "Mutex" :: _ | "Condition" :: _ ->
      Some
        ( "R3",
          Printf.sprintf "%s: libraries are Atomic-only (deterministic, 4.14-safe)"
            (String.concat "." parts) )
  | [ p ]
    when List.mem p
           [
             "print_string";
             "print_endline";
             "print_newline";
             "print_int";
             "print_float";
             "print_char";
             "print_bytes";
           ] ->
      Some ("R4", p ^ ": stdout belongs to sosctl results, not library code")
  | [ "Printf"; "printf" ] | [ "Format"; "printf" ] | [ "Format"; "print_string" ]
  | [ "Format"; "print_newline" ] | [ "Format"; "print_float" ] | [ "Format"; "print_int" ] ->
      Some
        ( "R4",
          String.concat "." parts ^ ": stdout belongs to sosctl results, not library code" )
  | [ "stdout" ] -> Some ("R4", "stdout handle used from library code")
  | [ "Hashtbl"; "iter" ] | [ "Hashtbl"; "fold" ] ->
      Some
        ( "R5",
          String.concat "." parts
          ^ ": iteration order is unspecified; sort keys before any emission/digest" )
  | [ "failwith" ] ->
      Some ("R6", "failwith: hot paths raise Robust.Failure carriers (or Failure.internal_error)")
  | [ "invalid_arg" ] ->
      Some ("R6", "invalid_arg: hot paths raise Robust.Failure carriers")
  | _ -> None

(* R7: a syntactic float-bearing expression — float literal, float
   arithmetic, a float stdlib constant, or int->float conversion
   anywhere in the subtree. Parse-only analysis cannot see types, so
   float->int conversions ([int_of_float], [truncate], [Float.to_int],
   [Float.compare], ...) are barriers: their result is not a float even
   though their arguments are. The heuristic has no false positives on
   this repo and catches the patterns that actually bite (nan-unsafe
   [=], boxed polymorphic [compare]/[min]). *)
let rec float_bearing e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_ident { txt = Lident ("nan" | "infinity" | "neg_infinity" | "epsilon_float" | "max_float" | "min_float"); _ } ->
      true
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident ("int_of_float" | "truncate"); _ }; _ }, _) ->
      false
  | Pexp_apply
      ( {
          pexp_desc =
            Pexp_ident
              {
                txt =
                  Ldot
                    ( Lident "Float",
                      ( "to_int" | "compare" | "equal" | "is_nan" | "is_finite" | "is_integer"
                      | "sign_bit" | "to_string" ) );
                _;
              };
          _;
        },
        _ ) ->
      false
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident ("+." | "-." | "*." | "/." | "**" | "~-."); _ }; _ }, _) ->
      true
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident "float_of_int"; _ }; _ }, _) -> true
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Ldot (Lident "Float", _); _ }; _ }, args) ->
      List.exists (fun (_, a) -> float_bearing a) args
  | Pexp_apply (f, args) -> float_bearing f || List.exists (fun (_, a) -> float_bearing a) args
  | Pexp_tuple es -> List.exists float_bearing es
  | Pexp_construct (_, Some e) -> float_bearing e
  | Pexp_field (e, _) -> float_bearing e
  | _ -> false

let poly_cmp_ops = [ "="; "<>"; "compare"; "min"; "max" ]

(* ------------------------------------------------------- the traversal *)

let lint_structure ~rel st =
  let aliases = collect_aliases st in
  let floor_allows =
    List.filter_map
      (function
        | { pstr_desc = Pstr_attribute a; _ } -> allow_of_attribute ~rel a
        | _ -> None)
      st
  in
  let iter =
    object (self)
      inherit Ast_traverse.iter as super
      val mutable active : allow_site list = floor_allows

      method with_attrs : 'a. attributes -> ('a -> unit) -> 'a -> unit =
        fun attrs k x ->
          let added = List.filter_map (allow_of_attribute ~rel) attrs in
          let saved = active in
          active <- added @ active;
          k x;
          active <- saved

      method hit loc rule msg = add_hit ~rel ~loc ~rule ~msg ~active

      method check_expr e =
        (match e.pexp_desc with
        | Pexp_ident { txt; loc } -> (
            let parts = flatten txt in
            let expanded = expand_aliases aliases parts in
            match ident_rule expanded with
            | Some (rule, msg) ->
                let msg =
                  if expanded == parts then msg
                  else Printf.sprintf "%s (via module alias %s)" msg (List.hd parts)
                in
                self#hit loc rule msg
            | None -> ())
        | Pexp_apply
            ( { pexp_desc = Pexp_ident { txt = Lident "raise"; _ }; _ },
              [ (_, { pexp_desc = Pexp_construct ({ txt = Lident "Exit"; loc }, None); _ }) ] )
          ->
            self#hit loc "R6" "raise Exit: hot paths raise Robust.Failure carriers"
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident op; loc }; _ }, args)
          when List.mem op poly_cmp_ops && List.exists (fun (_, a) -> float_bearing a) args ->
            self#hit loc "R7"
              (Printf.sprintf
                 "polymorphic %s on a float-bearing expression; use Float.equal/Float.compare"
                 op)
        | _ -> ())

      method! expression e =
        self#with_attrs e.pexp_attributes
          (fun e ->
            self#check_expr e;
            super#expression e)
          e

      method! value_binding vb =
        self#with_attrs vb.pvb_attributes super#value_binding vb

      method! core_type t =
        self#with_attrs t.ptyp_attributes
          (fun t ->
            (match t.ptyp_desc with
            | Ptyp_constr ({ txt; loc }, _) -> (
                match flatten txt with
                | ("Mutex" | "Condition") :: _ ->
                    self#hit loc "R3"
                      (String.concat "." (flatten txt)
                      ^ ": libraries are Atomic-only (deterministic, 4.14-safe)")
                | _ -> ())
            | _ -> ());
            super#core_type t)
          t

      (* Floor attributes were pre-collected; skip them here so each
         site registers exactly once. *)
      method! structure_item it =
        match it.pstr_desc with
        | Pstr_attribute _ -> ()
        | _ -> super#structure_item it
    end
  in
  iter#structure st

let lint_signature ~rel sg =
  let floor_allows =
    List.filter_map
      (function
        | { psig_desc = Psig_attribute a; _ } -> allow_of_attribute ~rel a
        | _ -> None)
      sg
  in
  let iter =
    object
      inherit Ast_traverse.iter as super
      val mutable active : allow_site list = floor_allows

      method! core_type t =
        let added = List.filter_map (allow_of_attribute ~rel) t.ptyp_attributes in
        let saved = active in
        active <- added @ active;
        (match t.ptyp_desc with
        | Ptyp_constr ({ txt; loc }, _) -> (
            match flatten txt with
            | ("Mutex" | "Condition") :: _ ->
                add_hit ~rel ~loc ~rule:"R3"
                  ~msg:
                    (String.concat "." (flatten txt)
                    ^ ": libraries are Atomic-only (deterministic, 4.14-safe)")
                  ~active
            | _ -> ())
        | _ -> ());
        super#core_type t;
        active <- saved

      method! signature_item it =
        match it.psig_desc with
        | Psig_attribute _ -> ()
        | _ -> super#signature_item it
    end
  in
  iter#signature sg

(* ------------------------------------------------------------ file IO *)

let lint_file ~root rel =
  match Lintkit.parse_file ~root rel with
  | Ok (Lintkit.Impl st) -> lint_structure ~rel st
  | Ok (Lintkit.Intf sg) -> lint_signature ~rel sg
  | Error msg -> parse_errors := msg :: !parse_errors

(* ------------------------------------------------------------- output *)

let by_rule xs keyf =
  List.map (fun id -> (id, List.length (List.filter (fun x -> keyf x = id) xs))) rule_ids

let json_summary ~files ~open_hits ~suppressed =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"files_checked\": %d,\n" files);
  Buffer.add_string buf (Printf.sprintf "  \"violations\": %d,\n" (List.length open_hits));
  Buffer.add_string buf (Printf.sprintf "  \"suppressed\": %d,\n" (List.length suppressed));
  Buffer.add_string buf (Printf.sprintf "  \"allow_sites\": %d,\n" (List.length !allows));
  Buffer.add_string buf "  \"rules\": [\n";
  let rule_row id =
    let v = List.length (List.filter (fun h -> h.h_rule = id) open_hits) in
    let s = List.length (List.filter (fun h -> h.h_rule = id) suppressed) in
    Printf.sprintf
      "    {\"id\": \"%s\", \"name\": \"%s\", \"violations\": %d, \"suppressed\": %d}" id
      (rule_title id) v s
  in
  Buffer.add_string buf (String.concat ",\n" (List.map rule_row rule_ids));
  Buffer.add_string buf "\n  ],\n  \"violations_list\": [\n";
  let hit_row h =
    Printf.sprintf "    {\"file\": \"%s\", \"line\": %d, \"rule\": \"%s\", \"message\": \"%s\"}"
      (json_escape h.h_file) h.h_line h.h_rule (json_escape h.h_msg)
  in
  Buffer.add_string buf (String.concat ",\n" (List.map hit_row open_hits));
  Buffer.add_string buf "\n  ],\n  \"allows\": [\n";
  let allow_row a =
    Printf.sprintf
      "    {\"file\": \"%s\", \"line\": %d, \"rule\": \"%s\", \"reason\": \"%s\", \"uses\": %d}"
      (json_escape a.a_file) a.a_line a.a_rule (json_escape a.a_reason) a.a_uses
  in
  let sorted_allows =
    List.sort (fun a b -> compare (a.a_file, a.a_line) (b.a_file, b.a_line)) !allows
  in
  Buffer.add_string buf (String.concat ",\n" (List.map allow_row sorted_allows));
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

(* ------------------------------------------------------------ baseline *)

let baseline_counts suppressed = by_rule suppressed (fun h -> h.h_rule)

let write_baseline path suppressed = Lintkit.write_baseline path (baseline_counts suppressed)

let check_baseline path suppressed =
  Lintkit.check_baseline ~hint:"tools/lint" path (baseline_counts suppressed)

(* --------------------------------------------------------------- main *)

let usage =
  "soslint [--root DIR] [--json PATH] [--baseline PATH] [--write-baseline PATH] [--exclude \
   REL]... [--exclude-dir REL]... [DIR]..."

let () =
  let root = ref "." in
  let json_out = ref None in
  let baseline = ref None in
  let write_base = ref None in
  let excludes = ref [] in
  let exclude_dirs = ref [] in
  let dirs = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--root" :: v :: rest ->
        root := v;
        parse_args rest
    | "--json" :: v :: rest ->
        json_out := Some v;
        parse_args rest
    | "--baseline" :: v :: rest ->
        baseline := Some v;
        parse_args rest
    | "--write-baseline" :: v :: rest ->
        write_base := Some v;
        parse_args rest
    | "--exclude" :: v :: rest ->
        excludes := v :: !excludes;
        parse_args rest
    | "--exclude-dir" :: v :: rest ->
        exclude_dirs := v :: !exclude_dirs;
        parse_args rest
    | ("--help" | "-h") :: _ ->
        print_endline usage;
        exit 0
    | flag :: _ when String.length flag > 2 && starts_with ~prefix:"--" flag ->
        prerr_endline ("soslint: unknown flag " ^ flag);
        prerr_endline usage;
        exit 2
    | d :: rest ->
        dirs := d :: !dirs;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let dirs = if !dirs = [] then [ "lib"; "bin"; "bench" ] else List.rev !dirs in
  let files =
    Lintkit.scan_files ~root:!root ~dirs ~excludes:!excludes ~exclude_dirs:!exclude_dirs
  in
  List.iter (lint_file ~root:!root) files;
  (match !parse_errors with
  | [] -> ()
  | errs ->
      List.iter prerr_endline (List.sort compare errs);
      exit 2);
  let all =
    List.sort
      (fun a b ->
        compare (a.h_file, a.h_line, a.h_col, a.h_rule) (b.h_file, b.h_line, b.h_col, b.h_rule))
      !hits
  in
  let open_hits = List.filter (fun h -> not h.h_suppressed) all in
  let suppressed = List.filter (fun h -> h.h_suppressed) all in
  (* An allow that suppresses nothing is itself a defect: it documents an
     exemption that does not exist (stale after a refactor, or a typo'd
     rule id) and would silently mask a future regression. *)
  let unused_allows =
    List.filter (fun a -> a.a_uses = 0 && rule_in_scope a.a_rule a.a_file) !allows
  in
  let unused_hits =
    List.map
      (fun a ->
        {
          h_file = a.a_file;
          h_line = a.a_line;
          h_col = 0;
          h_rule = "R0";
          h_msg = Printf.sprintf "unused [@sos.allow \"%s: ...\"]: it suppresses no hit" a.a_rule;
          h_suppressed = false;
        })
      unused_allows
  in
  let open_hits =
    List.sort
      (fun a b ->
        compare (a.h_file, a.h_line, a.h_col, a.h_rule) (b.h_file, b.h_line, b.h_col, b.h_rule))
      (open_hits @ unused_hits)
  in
  List.iter
    (fun h -> Printf.printf "%s:%d %s %s\n" h.h_file h.h_line h.h_rule h.h_msg)
    open_hits;
  let baseline_failures =
    match !baseline with Some p -> check_baseline p suppressed | None -> []
  in
  List.iter print_endline baseline_failures;
  (match !write_base with Some p -> write_baseline p suppressed | None -> ());
  (match !json_out with
  | Some p ->
      let oc = open_out p in
      output_string oc (json_summary ~files:(List.length files) ~open_hits ~suppressed);
      close_out oc
  | None -> ());
  Printf.printf "soslint: %d files, %d violations, %d suppressed hits via %d [@sos.allow] sites\n"
    (List.length files) (List.length open_hits) (List.length suppressed)
    (List.length !allows);
  if open_hits <> [] || baseline_failures <> [] then exit 1
