(* Lintkit — the frontend shared by the repo's static-analysis tools.

   Both soslint (per-file syntactic rules R1-R7, PR 5) and sosgraph
   (whole-program passes A1-A4, tools/analysis/) parse the same source
   tree with ppxlib, honour the same [@sos.allow "Xn: reason"]
   suppression attribute, and gate suppression counts against a
   committed per-rule baseline. This module holds that common ground:
   deterministic file discovery, parsing, the allow-payload grammar,
   JSON escaping, and the baseline read/write/check cycle. Everything
   here is machine-independent: relative paths use '/' and every listing
   a tool derives from these helpers sorts identically on any host. *)

open Ppxlib

(* ------------------------------------------------------------- strings *)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* ------------------------------------------------------------- file IO *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Every .ml/.mli under [rel], as root-relative '/'-separated paths.
   Dotfiles and _build are skipped so the walk is independent of build
   state; the caller sorts the combined list. *)
let rec walk ~root rel acc =
  let path = if rel = "" then root else Filename.concat root rel in
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if entry = "" || entry.[0] = '.' || entry = "_build" then acc
        else walk ~root (if rel = "" then entry else rel ^ "/" ^ entry) acc)
      acc (Sys.readdir path)
  else if Filename.check_suffix rel ".ml" || Filename.check_suffix rel ".mli" then rel :: acc
  else acc

(* Collect the scan set: [dirs] that exist under [root], minus exact
   [excludes] and minus anything under an [exclude_dirs] prefix (fixture
   mini-repos inside test/ carry intentional violations). *)
let scan_files ~root ~dirs ~excludes ~exclude_dirs =
  let under_excluded rel =
    List.exists (fun d -> starts_with ~prefix:(d ^ "/") rel || rel = d) exclude_dirs
  in
  dirs
  |> List.concat_map (fun d ->
         if Sys.file_exists (Filename.concat root d) then walk ~root d [] else [])
  |> List.filter (fun rel -> not (List.mem rel excludes) && not (under_excluded rel))
  |> List.sort_uniq compare

type parsed = Impl of structure | Intf of signature

(* Parse one file; [Error msg] on a syntax error (the tools report these
   collectively and exit 2 — an unparsable tree must fail the gate, not
   silently shrink the scan). *)
let parse_file ~root rel =
  let src = read_file (Filename.concat root rel) in
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf rel;
  try
    if Filename.check_suffix rel ".mli" then Ok (Intf (Parse.interface lexbuf))
    else Ok (Impl (Parse.implementation lexbuf))
  with exn -> Error (Printf.sprintf "%s: parse error: %s" rel (Printexc.to_string exn))

(* ------------------------------------------------------------ longident *)

let flatten lid =
  match Longident.flatten_exn lid with
  | "Stdlib" :: rest -> rest
  | parts -> parts

(* ------------------------------------------------- [@sos.allow] grammar *)

(* [@sos.allow "Xn: reason"] — exactly one rule id from the tool's
   vocabulary, nonempty reason. [valid_ids] is the tool's rule set and
   [expected] names it in diagnostics ("R1..R7", "A1..A4"). *)
let parse_allow_payload ~valid_ids ~expected s =
  let s = String.trim s in
  match String.index_opt s ':' with
  | None -> Error "missing ':' — expected \"Rn: reason\""
  | Some i ->
      let id = String.trim (String.sub s 0 i) in
      let reason = String.trim (String.sub s (i + 1) (String.length s - i - 1)) in
      if not (List.mem id valid_ids) then
        Error (Printf.sprintf "unknown rule id %S — expected %s" id expected)
      else if reason = "" then Error "empty reason"
      else Ok (id, reason)

(* Classify an attribute: [None] when it is not [sos.allow] at all;
   [Some (Ok s)] for a well-shaped string payload (still to be parsed
   against the rule vocabulary); [Some (Error msg)] for a malformed
   payload shape. *)
let allow_attr_payload (a : attribute) : (string, string) result option =
  if a.attr_name.txt <> "sos.allow" then None
  else
    match a.attr_payload with
    | PStr
        [
          {
            pstr_desc =
              Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
            _;
          };
        ] ->
        Some (Ok s)
    | _ -> Some (Error "payload must be a string literal \"Rn: reason\"")

(* ------------------------------------------------------------ baseline *)

(* The baseline file is one "<id> <count>" row per rule: the number of
   suppressed hits the repo is allowed to carry. A scan may come in
   under the baseline (suppressions were removed — ratchet down by
   regenerating) but never over it. *)

let write_baseline path counts =
  let oc = open_out path in
  List.iter (fun (id, n) -> Printf.fprintf oc "%s %d\n" id n) counts;
  close_out oc

let check_baseline ~hint path counts =
  let ic = open_in path in
  let table = Hashtbl.create 8 in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" then Scanf.sscanf line "%s %d" (fun id n -> Hashtbl.replace table id n)
     done
   with End_of_file -> ());
  close_in ic;
  List.filter_map
    (fun (id, n) ->
      let allowed = Option.value ~default:0 (Hashtbl.find_opt table id) in
      if n > allowed then
        Some
          (Printf.sprintf
             "%s: %d suppressed hits exceed the committed baseline of %d (%s: update the \
              baseline only with a reviewed reason)"
             id n allowed hint)
      else None)
    counts
