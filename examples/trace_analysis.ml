(* Trace analysis: drive the reference algorithm with tracing on, inspect
   the window trajectory (the objects the paper's proofs talk about), and
   export everything as CSV for external tooling.

   Run with: dune exec examples/trace_analysis.exe [--csv] *)

let () =
  let want_csv = Array.exists (fun a -> a = "--csv") Sys.argv in
  let rng = Prelude.Rng.create 20170724 (* SPAA'17, day one *) in
  let inst =
    Workload.Sos_gen.generate rng Workload.Sos_gen.bimodal ~n:36 ~m:5 ()
  in
  let sched, trace = Sos.Listing1.run_traced ~check:true inst in

  if want_csv then begin
    (* Machine-readable: paste into your plotting tool of choice. *)
    print_string (Sos.Export.trace_to_csv trace inst);
    exit 0
  end;

  Printf.printf "bimodal instance: n=%d, m=%d, makespan %d (LB %d)\n\n"
    (Sos.Instance.n inst) inst.Sos.Instance.m sched.Sos.Schedule.makespan
    (Sos.Bounds.lower_bound inst);

  (* The analysis of Theorem 3.3 revolves around two phase boundaries:
     T_L (window first smaller than m−1) and T_R (window requirement first
     below the budget). Recover both from the trace. *)
  let m = inst.Sos.Instance.m and scale = inst.Sos.Instance.scale in
  let t_l =
    List.find_opt (fun i -> List.length i.Sos.Listing1.window < m - 1) trace
  and t_r = List.find_opt (fun i -> i.Sos.Listing1.window_rsum < scale) trace in
  let time = function Some i -> string_of_int i.Sos.Listing1.time | None -> "-" in
  Printf.printf "T_L (first |W| < m-1)   : step %s\n" (time t_l);
  Printf.printf "T_R (first r(W) < 1)    : step %s\n" (time t_r);
  let full_steps =
    List.length (List.filter (fun i -> i.Sos.Listing1.window_rsum >= scale) trace)
  in
  Printf.printf "full-resource steps     : %d of %d\n" full_steps (List.length trace);
  let case1 =
    List.length (List.filter (fun i -> i.Sos.Listing1.case = Sos.Assign.Case_full) trace)
  in
  Printf.printf "case-1 / case-2 steps   : %d / %d\n" case1 (List.length trace - case1);
  let extras =
    List.length (List.filter (fun i -> i.Sos.Listing1.extra <> None) trace)
  in
  Printf.printf "m-th processor used     : %d times\n\n" extras;

  let sizes =
    Array.of_list
      (List.map (fun i -> float_of_int (List.length i.Sos.Listing1.window)) trace)
  in
  print_string
    (Prelude.Ascii_plot.series ~height:6 ~title:"window size over time"
       ~x_label:"step" ~y_label:"|W|" sizes);
  let rsums =
    Array.of_list
      (List.map
         (fun i -> float_of_int i.Sos.Listing1.window_rsum /. float_of_int scale)
         trace)
  in
  print_string
    (Prelude.Ascii_plot.series ~height:6 ~title:"window requirement r(W) over time"
       ~x_label:"step" ~y_label:"r(W)" rsums);
  print_newline ();
  print_endline "Gantt (first 100 steps):";
  print_string (Sos.Schedule.render_gantt ~max_width:100 sched);
  print_newline ();
  print_endline "re-run with --csv for the machine-readable trace."
