(* Power capping — the second resource the paper's introduction names:
   a rack of servers shares a power budget. Batch jobs arrive during the
   day; each has a power draw it wants (its requirement) and degrades
   linearly when capped below it. The operator schedules online: jobs are
   unknown until they arrive.

   Uses the online extension (Sos.Online): a window-style greedy admitting
   the thriftiest released jobs while the non-largest draws fit the cap.

   Run with: dune exec examples/power_capping.exe *)

module Rng = Prelude.Rng

let watts = 1 (* resource units are watts; cap = 12_000 W *)
let cap = 12_000 * watts

let workday rng =
  (* Three waves: overnight batch (release 0), morning surge (~step 60),
     afternoon stragglers (~step 140). *)
  let job release_lo release_hi =
    let release = Rng.int_in rng release_lo release_hi in
    match Rng.int rng 3 with
    | 0 ->
        (* training job: 2–6 kW draw, long *)
        { Sos.Online.release; size = Rng.int_in rng 8 20; req = Rng.int_in rng 2_000 6_000 }
    | 1 ->
        (* CI batch: ~1 kW, medium *)
        { Sos.Online.release; size = Rng.int_in rng 3 10; req = Rng.int_in rng 600 1_500 }
    | _ ->
        (* housekeeping: 100–400 W *)
        { Sos.Online.release; size = Rng.int_in rng 2 6; req = Rng.int_in rng 100 400 }
  in
  List.concat
    [
      List.init 25 (fun _ -> job 0 0);
      List.init 30 (fun _ -> job 50 80);
      List.init 20 (fun _ -> job 130 160);
    ]

let () =
  let rng = Rng.create 88 in
  let arrivals = workday rng in
  let m = 16 in
  Printf.printf "%d jobs over the day on %d servers under a %d W rack cap\n\n"
    (List.length arrivals) m cap;
  let r = Sos.Online.run ~m ~scale:cap arrivals in
  let lb = Sos.Online.lower_bound ~m ~scale:cap arrivals in
  (match Sos.Schedule.validate r.Sos.Online.schedule with
  | Ok () -> ()
  | Error v -> failwith v.Sos.Schedule.reason);
  assert (Sos.Online.respects_releases r arrivals);
  Printf.printf "all jobs done at step : %d\n" r.Sos.Online.makespan;
  Printf.printf "clairvoyant bound     : %d\n" lb;
  Printf.printf "online/clairvoyant    : %.4f\n\n"
    (float_of_int r.Sos.Online.makespan /. float_of_int lb);
  let u =
    Sos.Schedule.to_dense ~default:0.0 (Sos.Schedule.utilization r.Sos.Online.schedule)
  in
  print_endline "rack power draw over the day (fraction of cap):";
  print_endline ("  " ^ Prelude.Ascii_plot.sparkline u);
  let jobs =
    Array.map float_of_int
      (Sos.Schedule.to_dense ~default:0
         (Sos.Schedule.jobs_per_step r.Sos.Online.schedule))
  in
  print_endline "servers busy:";
  print_endline ("  " ^ Prelude.Ascii_plot.sparkline jobs);
  print_newline ();
  print_endline
    "The greedy keeps the rack at the cap through each wave and drains the\n\
     thrifty jobs between waves; big training jobs absorb the leftover watts."
