(* Datacenter bandwidth sharing — the motivating scenario of the paper's
   introduction: m worker nodes share one top-of-rack uplink. Jobs range
   from bandwidth-saturating shuffles to CPU-bound analytics that barely
   touch the network. The scheduler decides both placement and how the
   uplink is divided, re-dividing every step.

   We compare the paper's sliding-window algorithm against Garey–Graham
   list scheduling (which must reserve a job's full bandwidth for its whole
   run — the classical "no fractional shares" model) and a fair-share
   scheduler, on a realistic mix.

   Run with: dune exec examples/datacenter_bandwidth.exe *)

module Rng = Prelude.Rng
module Table = Prelude.Table

(* Requirements in MiB/s of a 1024 MiB/s uplink: scale = 1024. *)
let make_cluster ~seed ~jobs =
  let rng = Rng.create seed in
  let job _ =
    match Rng.int rng 10 with
    | 0 | 1 ->
        (* shuffle: wants 40–90% of the uplink, 2–6 work units *)
        (Rng.int_in rng 2 6, Rng.int_in rng 400 920)
    | 2 | 3 | 4 ->
        (* ingest: 5–20% of the uplink, longer *)
        (Rng.int_in rng 4 12, Rng.int_in rng 50 200)
    | _ ->
        (* analytics: trickle of telemetry, ~0.1–2% *)
        (Rng.int_in rng 5 20, Rng.int_in rng 1 20)
  in
  Sos.Instance.create ~m:12 ~scale:1024 (List.init jobs job)

let () =
  let inst = make_cluster ~seed:42 ~jobs:120 in
  Printf.printf
    "Cluster: %d jobs on %d workers sharing a 1 GiB/s uplink (scale=%d)\n"
    (Sos.Instance.n inst) inst.Sos.Instance.m inst.Sos.Instance.scale;
  Printf.printf "aggregate demand: %.1f uplink-seconds of traffic, %d work units\n\n"
    (float_of_int (Sos.Instance.total_requirement inst)
    /. float_of_int inst.Sos.Instance.scale)
    (Sos.Instance.total_volume inst);

  let lb = Sos.Bounds.lower_bound inst in
  let t =
    Table.create
      [
        ("scheduler", Table.Left); ("makespan", Table.Right); ("vs LB", Table.Right);
        ("wasted uplink (steps)", Table.Right);
      ]
  in
  let row name sched =
    Table.add_row t
      [
        name;
        Table.fmt_int sched.Sos.Schedule.makespan;
        Table.fmt_ratio
          (float_of_int sched.Sos.Schedule.makespan /. float_of_int lb);
        Table.fmt_float
          (float_of_int (Sos.Schedule.total_waste sched) /. 1024.0);
      ]
  in
  row "sliding window (paper)" (Sos.Fast.run inst);
  row "list scheduling (GG75)" (Baselines.List_scheduling.run inst);
  row "fair share" (Baselines.Greedy_fair.run inst);
  Table.add_row t [ "lower bound (Eq. 1)"; Table.fmt_int lb; "1.0000"; "-" ];
  Table.print t;

  print_endline "uplink utilization under the window algorithm:";
  let sched = Sos.Listing1.run inst in
  let dense s = Sos.Schedule.to_dense ~default:0.0 (Sos.Schedule.utilization s) in
  print_endline ("  " ^ Prelude.Ascii_plot.sparkline (dense sched));
  print_endline "and under list scheduling (reserved full shares):";
  let ls = Baselines.List_scheduling.run inst in
  print_endline ("  " ^ Prelude.Ascii_plot.sparkline (dense ls));
  print_newline ();
  print_endline
    "The window algorithm packs partial shares around the big shuffles; list\n\
     scheduling leaves the uplink idle whenever the next job's full demand\n\
     does not fit."
