(* Quickstart: the 60-second tour of the public API.
   Run with: dune exec examples/quickstart.exe *)

let () =
  (* An instance: 4 processors sharing one resource. Resource amounts are
     exact fixed-point — with scale = 100, a requirement of 25 means "25%
     of the resource finishes one unit of work per step". Each job is
     (size, requirement). *)
  let inst =
    Sos.Instance.create ~m:4 ~scale:100
      [
        (3, 25);  (* three units of work at a quarter of the resource     *)
        (3, 25);
        (2, 60);  (* data-hungry job: 60% of the resource per work unit   *)
        (5, 10);  (* long but frugal                                      *)
        (1, 100); (* needs the whole resource for its single unit         *)
      ]
  in

  (* The paper's sliding-window algorithm (Theorem 3.3), polynomial-time
     implementation. *)
  let schedule = Sos.Fast.run inst in

  Printf.printf "makespan      : %d steps\n" schedule.Sos.Schedule.makespan;
  Printf.printf "lower bound   : %d steps (Equation (1))\n" (Sos.Bounds.lower_bound inst);
  Printf.printf "proven ratio  : <= %.3f (= 2 + 1/(m-2))\n"
    (Sos.Bounds.guarantee_general ~m:4);

  (* Every schedule can be validated independently: resource never overused,
     at most m jobs per step, non-preemptive, work conserved. *)
  (match Sos.Schedule.validate schedule with
  | Ok () -> print_endline "validation    : ok"
  | Error v -> Printf.printf "validation    : FAILED at %d: %s\n" v.Sos.Schedule.at_step v.Sos.Schedule.reason);

  (* Inspect it. *)
  print_newline ();
  print_endline "Gantt chart (rows = processors, letters = jobs):";
  print_string (Sos.Schedule.render_gantt schedule);
  print_newline ();
  print_endline "resource utilization per step:";
  print_endline
    ("  "
    ^ Prelude.Ascii_plot.sparkline
        (Sos.Schedule.to_dense ~default:0.0 (Sos.Schedule.utilization schedule)))
