(* Composed cloud services (Section 4 of the paper): users submit
   applications (tasks) made of many parallel jobs — a response is ready
   only when every job of the application finished. The operator cares
   about the average response time across applications, not the makespan.

   The Theorem 4.8 algorithm splits applications into bandwidth-heavy (T1)
   and fan-out-heavy (T2) classes and schedules the classes on separate
   halves of the cluster with fixed resource budgets. We compare its sum of
   completion times against the Lemma 4.3 lower bound and against a naive
   "run applications one after another" policy.

   Run with: dune exec examples/cloud_tasks.exe *)

module Rng = Prelude.Rng
module Table = Prelude.Table

let scale = Workload.Sos_gen.default_scale

let make_applications ~seed ~count =
  let rng = Rng.create seed in
  let application i =
    match i mod 3 with
    | 0 ->
        (* ETL pipeline: 3–6 stages, each wants 30–70% of the bandwidth *)
        List.init (Rng.int_in rng 3 6) (fun _ ->
            Rng.int_in rng (3 * scale / 10) (7 * scale / 10))
    | 1 ->
        (* map fan-out: 20–60 mappers, each a sliver *)
        List.init (Rng.int_in rng 20 60) (fun _ -> Rng.int_in rng 1 (scale / 100))
    | _ ->
        (* mixed microservice graph *)
        List.init (Rng.int_in rng 5 15) (fun _ -> Rng.int_in rng (scale / 200) (scale / 5))
  in
  Sas.Sas_instance.create ~m:10 ~scale (List.init count application)

let () =
  let inst = make_applications ~seed:7 ~count:30 in
  let k = Sas.Sas_instance.k inst in
  Printf.printf "%d applications, %d jobs total, %d workers\n\n" k
    (Sas.Sas_instance.total_jobs inst) inst.Sas.Sas_instance.m;

  let report = Sas.Combined.run inst in
  (* Naive operator policy: applications one after another (shortest total
     demand first), each on the whole machine. *)
  let _, serial = Sas.Serial.run inst in

  Printf.printf "class split: %d bandwidth-heavy (T1), %d fan-out (T2)\n"
    report.Sas.Combined.t1_count report.Sas.Combined.t2_count;
  let t =
    Table.create
      [
        ("policy", Table.Left); ("sum of completions", Table.Right);
        ("avg response", Table.Right); ("vs lower bound", Table.Right);
      ]
  in
  let lb = float_of_int report.Sas.Combined.lower_bound in
  Table.add_row t
    [
      "Theorem 4.8 (split T1/T2)";
      Table.fmt_int report.Sas.Combined.sum_completions;
      Table.fmt_float (float_of_int report.Sas.Combined.sum_completions /. float_of_int k);
      Table.fmt_ratio (float_of_int report.Sas.Combined.sum_completions /. lb);
    ];
  Table.add_row t
    [
      "serial (one app at a time)";
      Table.fmt_int serial;
      Table.fmt_float (float_of_int serial /. float_of_int k);
      Table.fmt_ratio (float_of_int serial /. lb);
    ];
  Table.add_row t
    [ "lower bound (Lemma 4.3)"; Table.fmt_int report.Sas.Combined.lower_bound; "-"; "1.0000" ];
  Table.print t;
  Printf.printf "proven guarantee: (2 + 4/(m-3)) + o(1) = %.4f + o(1)\n"
    (Sas.Bounds.guarantee ~m:inst.Sas.Sas_instance.m);

  (* The merged schedule is a real schedule: validate it. *)
  match Sos.Schedule.validate ~preemption_ok:true report.Sas.Combined.schedule with
  | Ok () -> print_endline "merged schedule validated: resource and processor feasible"
  | Error v ->
      Printf.printf "validation FAILED at %d: %s\n" v.Sos.Schedule.at_step v.Sos.Schedule.reason
