(* Pipelined router forwarding engines — the original motivation of the bin
   packing problem (Chung, Graham, Mao, Varghese 2006) that Corollary 3.9
   improves on: forwarding tables (items) must be distributed over memory
   banks (bins). A table may be split across banks, but each bank can serve
   at most k lookup pipelines, i.e. hold parts of at most k tables. Goal:
   as few memory banks as possible.

   Run with: dune exec examples/router_memory.exe *)

module Rng = Prelude.Rng
module Table = Prelude.Table
module P = Binpack.Packing
module A = Binpack.Algorithms

let () =
  (* Banks of 256 MB; 28 forwarding tables between 16 MB and 480 MB. *)
  let capacity = 256 in
  let rng = Rng.create 2024 in
  let sizes = List.init 28 (fun _ -> Rng.int_in rng 16 480) in
  Printf.printf "28 forwarding tables, %d MB total, banks of %d MB\n\n"
    (List.fold_left ( + ) 0 sizes) capacity;

  let t =
    Table.create
      [
        ("k (pipelines/bank)", Table.Right); ("lower bound", Table.Right);
        ("window (Cor 3.9)", Table.Right); ("next-fit", Table.Right);
        ("splits (window)", Table.Right); ("guarantee", Table.Right);
      ]
  in
  List.iter
    (fun k ->
      let inst = P.instance ~k ~capacity sizes in
      let w = A.window inst in
      let nf = A.next_fit inst in
      P.assert_valid inst w;
      P.assert_valid inst nf;
      Table.add_row t
        [
          Table.fmt_int k;
          Table.fmt_int (P.lower_bound inst);
          Table.fmt_int (P.bins_used w);
          Table.fmt_int (P.bins_used nf);
          Table.fmt_int (P.fragments w);
          Printf.sprintf "1+1/(k-1) = %.3f" (A.guarantee_window ~k);
        ])
    [ 2; 3; 4; 6; 8 ];
  Table.print t;

  (* Show one concrete bank layout. *)
  let inst = P.instance ~k:3 ~capacity sizes in
  let packing = A.window inst in
  Printf.printf "bank layout for k = 3 (%d banks):\n" (P.bins_used packing);
  List.iteri
    (fun b bin ->
      if b < 8 then begin
        let parts =
          List.map (fun (item, mb) -> Printf.sprintf "t%02d:%dMB" item mb) bin
        in
        let used = List.fold_left (fun acc (_, mb) -> acc + mb) 0 bin in
        Printf.printf "  bank %2d [%3d/%3d MB] %s\n" b used capacity
          (String.concat " " parts)
      end)
    packing;
  if P.bins_used packing > 8 then
    Printf.printf "  ... (%d more banks)\n" (P.bins_used packing - 8)
