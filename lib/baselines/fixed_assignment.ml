open Sos

type strategy = Round_robin | By_volume

let assign strategy inst =
  let n = Instance.n inst and m = inst.Instance.m in
  let queues = Array.make m [] in
  (match strategy with
  | Round_robin ->
      for i = n - 1 downto 0 do
        queues.(i mod m) <- i :: queues.(i mod m)
      done
  | By_volume ->
      let ids = Array.init n Fun.id in
      Array.sort
        (fun a b -> compare (Job.s (Instance.job inst b), a) (Job.s (Instance.job inst a), b))
        ids;
      let load = Array.make m 0 in
      Array.iter
        (fun j ->
          let p = ref 0 in
          for q = 1 to m - 1 do
            if load.(q) < load.(!p) then p := q
          done;
          load.(!p) <- load.(!p) + Job.s (Instance.job inst j);
          queues.(!p) <- j :: queues.(!p))
        ids;
      Array.iteri (fun p q -> queues.(p) <- List.rev q) queues);
  queues

(* Water-fill the budget over the head jobs, smallest requirement first,
   each capped at min(r_j, s_j left). Heads that already started must keep
   receiving at least one unit per step (non-preemption), so they are
   served first with a floor of 1; unstarted heads may be starved (they
   simply have not begun yet). *)
let water_fill inst s budget heads =
  let req j = (Instance.job inst j).Job.req in
  let started j = s.(j) < Job.s (Instance.job inst j) in
  let by_req = List.sort (fun a b -> compare (req a, a) (req b, b)) in
  let first, second = List.partition started heads in
  let rec go ~floor left count acc = function
    | [] -> (acc, left, count)
    | j :: rest ->
        let fair = left / count in
        let give = min (min (req j) (max floor fair)) (min s.(j) left) in
        go ~floor (left - give) (count - 1) ((j, give) :: acc) rest
  in
  let total = List.length heads in
  let acc, left, count = go ~floor:1 budget total [] (by_req first) in
  let acc, _, _ = go ~floor:0 left count acc (by_req second) in
  acc

let run ?(strategy = Round_robin) inst =
  let queues = assign strategy inst in
  let s = Array.init (Instance.n inst) (fun i -> Job.s (Instance.job inst i)) in
  let budget = inst.Instance.scale in
  let steps = ref [] in
  let fuel = ref (Instance.total_requirement inst + 1) in
  let heads () =
    Array.to_list queues |> List.filter_map (function j :: _ -> Some j | [] -> None)
  in
  let rec pop_finished () =
    Array.iteri
      (fun p q -> match q with j :: rest when s.(j) = 0 -> queues.(p) <- rest | _ -> ())
      queues;
    if Array.exists (function j :: _ -> s.(j) = 0 | [] -> false) queues then
      pop_finished ()
  in
  while heads () <> [] do
    decr fuel;
    if !fuel < 0 then Robust.Failure.internal_error "Fixed_assignment.run: no progress";
    let shares = water_fill inst s budget (heads ()) in
    let allocs =
      List.filter_map
        (fun (j, give) ->
          if give <= 0 then None
          else begin
            s.(j) <- s.(j) - give;
            Some { Schedule.job = j; assigned = give; consumed = give }
          end)
        shares
    in
    (* Guarantee progress even when water-filling starves every head (can
       only happen when budget < #heads): give one unit to the smallest. *)
    let allocs =
      if allocs <> [] then allocs
      else begin
        match heads () with
        | j :: _ ->
            s.(j) <- s.(j) - 1;
            [ { Schedule.job = j; assigned = 1; consumed = 1 } ]
        | [] -> assert false
      end
    in
    steps := { Schedule.allocs; repeat = 1 } :: !steps;
    pop_finished ()
  done;
  Schedule.make inst (List.rev !steps)
