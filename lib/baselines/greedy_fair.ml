open Sos

type running = { job : int; req : int; mutable remaining : int }

(* Integer water-filling: jobs ascending by requirement; each gets
   min(req, fair share of what is left). *)
let water_fill budget jobs =
  let jobs = List.sort (fun a b -> compare (a.req, a.job) (b.req, b.job)) jobs in
  let rec go budget count acc = function
    | [] -> List.rev acc
    | r :: rest ->
        let fair = budget / count in
        let give = min r.req fair in
        go (budget - give) (count - 1) ((r, give) :: acc) rest
  in
  go budget (List.length jobs) [] jobs

let run inst =
  let n = Instance.n inst in
  let scale = inst.Instance.scale and m = inst.Instance.m in
  let next = ref 0 in
  let running = ref [] in
  let steps = ref [] in
  (* Admit at most min(m, scale) jobs so water-filling can always hand every
     running job at least one unit (keeps runs contiguous). *)
  let slots = min m scale in
  let admit () =
    while !next < n && List.length !running < slots do
      let job = Instance.job inst !next in
      running := { job = !next; req = min job.Job.req scale; remaining = Job.s job } :: !running;
      incr next
    done
  in
  admit ();
  while !running <> [] do
    let shares = water_fill scale !running in
    (* The allocation is constant until the next completion: jump there. *)
    let k =
      List.fold_left
        (fun acc (r, give) ->
          if give <= 0 then acc else min acc (((r.remaining - 1) / give) + 1))
        max_int shares
    in
    let k = if k = max_int then 1 else k in
    if k > 1 then begin
      let allocs =
        List.filter_map
          (fun (r, give) ->
            if give <= 0 then None
            else Some { Schedule.job = r.job; assigned = give; consumed = give })
          shares
      in
      steps := { Schedule.allocs; repeat = k - 1 } :: !steps;
      List.iter (fun (r, give) -> r.remaining <- r.remaining - ((k - 1) * give)) shares
    end;
    let allocs =
      List.filter_map
        (fun (r, give) ->
          if give <= 0 then None
          else begin
            let consumed = min give r.remaining in
            r.remaining <- r.remaining - consumed;
            Some { Schedule.job = r.job; assigned = give; consumed }
          end)
        shares
    in
    steps := { Schedule.allocs; repeat = 1 } :: !steps;
    running := List.filter (fun r -> r.remaining > 0) !running;
    admit ()
  done;
  Schedule.make inst (List.rev !steps)
