(** Garey–Graham resource-constrained list scheduling (1975), the classical
    baseline the paper cites: every job must receive its {e full} resource
    requirement in every step of its execution (no linear slowdown), so a
    job [j] holds [min(r_j, 1)] of the resource for
    [⌈s_j / min(r_j, scale)⌉] consecutive steps. At every step the list is
    scanned in order and any job that fits (a free processor and enough
    unreserved resource) is started. For a single resource the ratio is
    [3 − 3/m]; the sliding-window algorithm beats it whenever fractional
    shares help.

    Requirements larger than the whole resource are clamped to it (the
    original model assumes [r_j ≤ 1]). *)

type order =
  | By_requirement  (** instance order: non-decreasing [r_j] *)
  | By_volume_desc  (** longest processing time first *)
  | By_total_req_desc  (** largest total requirement [s_j] first *)

val run : ?order:order -> Sos.Instance.t -> Sos.Schedule.t
(** Non-preemptive, run-length-encoded. Default order {!By_requirement}. *)

val guarantee : m:int -> float
(** [3 − 3/m]. *)
