(** The predecessor model of Brinkmann, Kling, Meyer auf der Heide, Nagel,
    Riechers, Süß (SPAA 2014), which the paper extends: jobs are {e already
    assigned} to processors, in a {e fixed order} per processor, and only
    the resource assignment is free. Comparing the full algorithm against
    this setting measures what the paper's joint job-and-resource
    optimization buys (extension experiment E2).

    The resource policy here is per-step water-filling over the m head
    jobs, each capped at its requirement — the natural combinatorial rule
    (Brinkmann et al. analyze a greedy of this flavour at ratio 2 − 1/m in
    their restricted setting). *)

type strategy =
  | Round_robin  (** job i → processor i mod m, requirement order *)
  | By_volume  (** LPT-style: longest total requirement first onto the
                   least-loaded processor *)

val assign : strategy -> Sos.Instance.t -> int list array
(** Per-processor job queues (front = first executed). *)

val run : ?strategy:strategy -> Sos.Instance.t -> Sos.Schedule.t
(** Execute the fixed assignment with water-filling resource shares.
    Non-preemptive and migration-free by construction. *)
