(** A naive "fair scheduler" baseline: keep up to [m] jobs running (admitted
    in requirement order, each staying until finished), and in every step
    split the resource among them by water-filling — repeatedly give the
    smallest-requirement job [min(r_j, budget/‖left‖)] — so no job gets more
    than its requirement and the resource is used as evenly as possible.

    This is what a fair-share OS scheduler would do with linear slowdown;
    it has no approximation guarantee (the window structure is what earns
    the paper's ratio) and serves as the "no algorithmics" comparison. *)

val run : Sos.Instance.t -> Sos.Schedule.t
(** Non-preemptive, run-length-encoded. *)
