open Sos

type order = By_requirement | By_volume_desc | By_total_req_desc

type running = {
  job : int;
  hold : int;  (* resource held every step: min(r_j, scale) *)
  mutable steps_left : int;
  mutable remaining : int;  (* s_j still to consume *)
}

let guarantee ~m =
  if m < 1 then invalid_arg "List_scheduling.guarantee: need m >= 1";
  3.0 -. (3.0 /. float_of_int m)

let run ?(order = By_requirement) inst =
  let n = Instance.n inst in
  let scale = inst.Instance.scale and m = inst.Instance.m in
  let ids = Array.init n Fun.id in
  (match order with
  | By_requirement -> ()
  | By_volume_desc ->
      Array.sort
        (fun a b ->
          compare
            ((Instance.job inst b).Job.size, a)
            ((Instance.job inst a).Job.size, b))
        ids
  | By_total_req_desc ->
      Array.sort
        (fun a b ->
          compare (Job.s (Instance.job inst b), a) (Job.s (Instance.job inst a), b))
        ids);
  let next = ref 0 in
  let running : running list ref = ref [] in
  let free_procs = ref m in
  let free_res = ref scale in
  let steps = ref [] in
  let try_start () =
    (* Scan the list head: start every not-yet-started job that fits. The
       list is a queue here (strict list scheduling starts jobs in order but
       may skip over jobs that do not fit). *)
    let rec scan i skipped =
      if i >= n then List.rev skipped
      else begin
        let j = ids.(i) in
        let job = Instance.job inst j in
        let hold = min job.Job.req scale in
        if !free_procs >= 1 && hold <= !free_res then begin
          free_procs := !free_procs - 1;
          free_res := !free_res - hold;
          let s = Job.s job in
          let d = ((s - 1) / hold) + 1 in
          running := { job = j; hold; steps_left = d; remaining = s } :: !running;
          scan (i + 1) skipped
        end
        else scan (i + 1) (j :: skipped)
      end
    in
    (* Compact the not-yet-started jobs (in list order) at the tail. *)
    let pending = scan !next [] in
    let arr = Array.of_list pending in
    next := n - Array.length arr;
    Array.blit arr 0 ids !next (Array.length arr)
  in
  let emit_block reps =
    let allocs =
      List.rev_map
        (fun r ->
          { Schedule.job = r.job; assigned = r.hold; consumed = min r.hold r.remaining })
        !running
    in
    steps := { Schedule.allocs; repeat = reps } :: !steps;
    List.iter
      (fun r ->
        r.remaining <- r.remaining - (reps * min r.hold r.remaining);
        r.steps_left <- r.steps_left - reps)
      !running
  in
  try_start ();
  while !running <> [] do
    let k = List.fold_left (fun acc r -> min acc r.steps_left) max_int !running in
    (* Jump to just before the next completion, then take the finishing
       step on its own so under-consumption only happens there. *)
    if k > 1 then emit_block (k - 1);
    emit_block 1;
    let finished, alive = List.partition (fun r -> r.steps_left = 0) !running in
    List.iter
      (fun r ->
        assert (r.remaining = 0);
        free_procs := !free_procs + 1;
        free_res := !free_res + r.hold)
      finished;
    running := alive;
    try_start ()
  done;
  Schedule.make inst (List.rev !steps)
