(** Seeded SoS instance generators: the workload families used by the tests
    and by every table in the benchmark harness. *)

type family = {
  name : string;
  req : Distributions.t;  (** requirement, in units of [1/scale] *)
  size : Distributions.t;  (** processing volume [p_j] *)
}

val default_scale : int
(** 720720 = lcm(2..16): keeps budgets like [(⌊m/2⌋−1)/(m−1)] exact for all
    [m ≤ 17] without rescaling. *)

val generate :
  Prelude.Rng.t -> family -> n:int -> m:int -> ?scale:int -> unit -> Sos.Instance.t
(** Draw [n] jobs from the family (default scale {!default_scale}). *)

(* Named families (requirements as fractions of the resource): *)

val uniform_wide : family
(** requirements uniform in (0, 1], sizes 1–20. *)

val uniform_small : family
(** requirements uniform in (0, 1/4], sizes 1–20: many jobs fit per step. *)

val bimodal : family
(** 80% tiny (≤ 5%), 20% large (50–95%): the bandwidth scenario from the
    paper's introduction. *)

val heavy_tail : family
(** Pareto(1.3) requirements: few dominant jobs. *)

val near_one : family
(** requirements in (1/2, 1]: at most one job per window fits fully. *)

val tiny : family
(** requirements ≤ 1/(4m) for m ≤ 16: processor-bound regime. *)

val unit_of : family -> family
(** Same requirements, all sizes forced to 1. *)

val all_families : family list
(** The families above (sized variants). *)

val generate_correlated :
  Prelude.Rng.t -> n:int -> m:int -> ?scale:int -> unit -> Sos.Instance.t
(** Jobs whose requirement grows with their volume (big jobs move big
    data): [p ~ U(1,20)], [r ≈ p/20 · scale · U(0.5, 1.5)], clamped to
    [1..scale]. Families with independent draws miss this regime; used by
    dedicated tests. *)

val random_instance :
  Prelude.Rng.t -> ?max_n:int -> ?max_m:int -> ?max_size:int -> ?scale:int -> unit ->
  Sos.Instance.t
(** Fully random instance for property-based tests: random m in [2, max_m],
    n in [1, max_n], requirements uniform over the full range, sizes in
    [1, max_size]. Uses a small random scale to exercise rescaling and
    boundary arithmetic. *)
