module Rng = Prelude.Rng
module D = Distributions

type family = { name : string; req : D.t; size : D.t }

let default_scale = 720720

let generate rng family ~n ~m ?(scale = default_scale) () =
  let specs =
    List.init n (fun _ ->
        let size = max 1 (D.sample rng family.size) in
        let req = max 1 (D.sample rng family.req) in
        (size, req))
  in
  Sos.Instance.create ~m ~scale specs

let sizes_1_20 = D.Uniform { lo = 1; hi = 20 }
let s = default_scale

let uniform_wide = { name = "uniform-wide"; req = D.Uniform { lo = 1; hi = s }; size = sizes_1_20 }

let uniform_small =
  { name = "uniform-small"; req = D.Uniform { lo = 1; hi = s / 4 }; size = sizes_1_20 }

let bimodal =
  {
    name = "bimodal";
    req =
      D.Bimodal
        { lo1 = 1; hi1 = s / 20; lo2 = s / 2; hi2 = s * 19 / 20; p2 = 0.2 };
    size = sizes_1_20;
  }

let heavy_tail =
  {
    name = "heavy-tail";
    req = D.Pareto { alpha = 1.3; xmin = s / 100; cap = s };
    size = sizes_1_20;
  }

let near_one =
  { name = "near-one"; req = D.Uniform { lo = (s / 2) + 1; hi = s }; size = sizes_1_20 }

let tiny = { name = "tiny"; req = D.Uniform { lo = 1; hi = s / 64 }; size = sizes_1_20 }

let unit_of family = { family with name = family.name ^ "-unit"; size = D.Constant 1 }

let all_families = [ uniform_wide; uniform_small; bimodal; heavy_tail; near_one; tiny ]

let generate_correlated rng ~n ~m ?(scale = default_scale) () =
  let specs =
    List.init n (fun _ ->
        let p = Rng.int_in rng 1 20 in
        let noise = 0.5 +. Rng.float rng 1.0 in
        let r =
          int_of_float (float_of_int p /. 20.0 *. float_of_int scale *. noise)
        in
        (p, max 1 (min scale r)))
  in
  Sos.Instance.create ~m ~scale specs

let random_instance rng ?(max_n = 40) ?(max_m = 10) ?(max_size = 8) ?scale () =
  let scale = match scale with Some c -> c | None -> Rng.int_in rng 3 240 in
  let m = Rng.int_in rng 2 max_m in
  let n = Rng.int_in rng 1 max_n in
  let specs =
    List.init n (fun _ ->
        (Rng.int_in rng 1 max_size, Rng.int_in rng 1 (scale * 5 / 4)))
  in
  Sos.Instance.create ~m ~scale specs
