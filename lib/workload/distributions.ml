module Rng = Prelude.Rng

type t =
  | Uniform of { lo : int; hi : int }
  | Bimodal of { lo1 : int; hi1 : int; lo2 : int; hi2 : int; p2 : float }
  | Pareto of { alpha : float; xmin : int; cap : int }
  | Exponential of { mean : float; lo : int; hi : int }
  | Choice of int array
  | Constant of int

let clamp lo hi x = if x < lo then lo else if x > hi then hi else x

let sample rng = function
  | Uniform { lo; hi } -> Rng.int_in rng lo hi
  | Bimodal { lo1; hi1; lo2; hi2; p2 } ->
      if Rng.float rng 1.0 < p2 then Rng.int_in rng lo2 hi2 else Rng.int_in rng lo1 hi1
  | Pareto { alpha; xmin; cap } ->
      let u = 1.0 -. Rng.float rng 1.0 in
      let x = float_of_int xmin /. (u ** (1.0 /. alpha)) in
      clamp xmin cap (int_of_float x)
  | Exponential { mean; lo; hi } ->
      let u = 1.0 -. Rng.float rng 1.0 in
      clamp lo hi (int_of_float (-.mean *. log u))
  | Choice values -> Rng.choose rng values
  | Constant c -> c

let describe = function
  | Uniform { lo; hi } -> Printf.sprintf "uniform[%d,%d]" lo hi
  | Bimodal { lo1; hi1; lo2; hi2; p2 } ->
      Printf.sprintf "bimodal[%d,%d]/[%d,%d]@%.2f" lo1 hi1 lo2 hi2 p2
  | Pareto { alpha; xmin; cap } -> Printf.sprintf "pareto(a=%.2f,min=%d,cap=%d)" alpha xmin cap
  | Exponential { mean; lo; hi } -> Printf.sprintf "exp(mean=%.1f)[%d,%d]" mean lo hi
  | Choice _ -> "choice"
  | Constant c -> Printf.sprintf "const(%d)" c
