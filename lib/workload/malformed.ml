(* Seeded generators of malformed instance descriptions, paired with the
   Robust.Failure.invalid class the strict validators must reject them
   with. The test suite wraps [sample] in a qcheck generator over seeds;
   keeping the drawing logic here (on Prelude.Rng, like Sos_gen) means
   the library carries no qcheck dependency and a failing seed replays
   exactly. *)

module Rng = Prelude.Rng
module F = Robust.Failure

type case =
  | Ints of { window : bool; m : int; scale : int; specs : (int * int) list }
  | Floats of { m : int; scale : int; shares : (int * float) list }

type expect =
  | Nonpositive_req
  | Nonpositive_size
  | Too_few_processors
  | Bad_scale
  | Not_finite
  | Overflow

let expect_name = function
  | Nonpositive_req -> "nonpositive-req"
  | Nonpositive_size -> "nonpositive-size"
  | Too_few_processors -> "too-few-processors"
  | Bad_scale -> "bad-scale"
  | Not_finite -> "not-finite"
  | Overflow -> "overflow"

let matches expect (reason : F.invalid) =
  match (expect, reason) with
  | Nonpositive_req, F.Nonpositive_req _ -> true
  | Nonpositive_size, F.Nonpositive_size _ -> true
  | Too_few_processors, F.Too_few_processors _ -> true
  | Bad_scale, F.Bad_scale _ -> true
  | Not_finite, F.Not_finite _ -> true
  | Overflow, F.Overflow _ -> true
  | _ -> false

(* A small well-formed spec list the corruptions start from, so rejection
   is attributable to the one planted flaw. *)
let base_specs rng =
  let n = Rng.int_in rng 1 8 in
  List.init n (fun _ -> (Rng.int_in rng 1 10, Rng.int_in rng 1 64))

let plant rng specs bad =
  let specs = Array.of_list specs in
  specs.(Rng.int_in rng 0 (Array.length specs - 1)) <- bad specs;
  Array.to_list specs

let sample rng =
  let m = Rng.int_in rng 3 12 in
  let scale = Rng.int_in rng 8 256 in
  match Rng.int_in rng 0 5 with
  | 0 ->
      let specs =
        plant rng (base_specs rng) (fun a ->
            (fst a.(0), Rng.int_in rng (-5) 0))
      in
      (Nonpositive_req, Ints { window = false; m; scale; specs })
  | 1 ->
      let specs =
        plant rng (base_specs rng) (fun a ->
            (Rng.int_in rng (-5) 0, snd a.(0)))
      in
      (Nonpositive_size, Ints { window = false; m; scale; specs })
  | 2 ->
      (* m < 3 violates the window algorithm's Theorem 3.3 precondition
         (m < 2 is rejected by every constructor). *)
      let m = Rng.int_in rng 0 2 in
      (Too_few_processors, Ints { window = true; m; scale; specs = base_specs rng })
  | 3 ->
      let scale = Rng.int_in rng (-3) 0 in
      (Bad_scale, Ints { window = false; m; scale; specs = base_specs rng })
  | 4 ->
      let bad =
        match Rng.int_in rng 0 2 with
        | 0 -> Float.nan
        | 1 -> Float.infinity
        | _ -> Float.neg_infinity
      in
      let shares =
        let n = Rng.int_in rng 1 6 in
        let at = Rng.int_in rng 0 (n - 1) in
        List.init n (fun i ->
            (Rng.int_in rng 1 10, if i = at then bad else Rng.float rng 1.0 +. 0.01))
      in
      (Not_finite, Floats { m; scale; shares })
  | _ ->
      (* Huge p_j: either one job whose p_j·r_j wraps, or two jobs whose
         Σ p_j ≈ max_int overflows the volume sum — both must surface as
         Overflow rather than a silently negative Equation (1) bound. *)
      let specs =
        if Rng.bool rng then [ ((max_int / 2) + 1, 2) ]
        else [ ((max_int / 2) + 1, 1); ((max_int / 2) + 1, 1) ]
      in
      (Overflow, Ints { window = false; m; scale; specs })

let run = function
  | Ints { window; m; scale; specs } ->
      Sos.Instance.create_checked ~window ~m ~scale specs
  | Floats { m; scale; shares } ->
      Sos.Instance.of_floats_checked ~m ~scale shares

let describe = function
  | Ints { window; m; scale; specs } ->
      Printf.sprintf "ints window=%b m=%d scale=%d specs=[%s]" window m scale
        (String.concat "; "
           (List.map (fun (p, r) -> Printf.sprintf "%d,%d" p r) specs))
  | Floats { m; scale; shares } ->
      Printf.sprintf "floats m=%d scale=%d shares=[%s]" m scale
        (String.concat "; "
           (List.map (fun (p, f) -> Printf.sprintf "%d,%h" p f) shares))
