(** Hand-crafted instance families that stress specific design choices of
    the algorithm (ablation table A1) and the baselines (table T6). *)

val giant_and_dust : m:int -> dust:int -> scale:int -> Sos.Instance.t
(** One job with [r = scale] (needs the whole resource) and a long volume,
    plus [dust] tiny unit jobs. List scheduling serializes behind the
    giant; the window algorithm overlaps the dust. *)

val epsilon_pairs : pairs:int -> m:int -> scale:int -> Sos.Instance.t
(** Unit jobs with requirements [scale/2 + 1] and [scale/2 − 1] in equal
    numbers: NextFit-style packings waste almost half of every bin unless
    pairs are matched; must have [scale ≥ 4]. *)

val footnote_fracture : m:int -> scale:int -> Sos.Instance.t
(** The footnote-1 scenario: m−1 jobs whose volumes conspire so that a
    naive assignment (always giving the leftover to max W without the
    un-fracture swap) accumulates many fractured jobs, wasting resource. *)

val staircase : n:int -> m:int -> scale:int -> Sos.Instance.t
(** Requirements [scale/n, 2·scale/n, …]: windows must slide continuously. *)

val worst_case_ratio_family : m:int -> scale:int -> Sos.Instance.t
(** A family tuned to push the algorithm toward its 2 + 1/(m−2) bound:
    a block of jobs that keeps exactly m−2 processors saturated with full
    requirements, followed by resource-hungry stragglers. *)
