(** Streaming spec corpus reader/writer for [sosctl batch].

    A spec corpus is a sequence of records, each describing one instance
    to solve: a generator request ([Gen]: family, [n], [m], optional
    scale) or an instance file reference ([File]). Two encodings are
    autodetected by a single reader:

    - {b text}: the historical newline-delimited form, one
      [FAMILY N M [SCALE]] or [@PATH] per line, blank lines and [#]
      comments skipped (but still counted, so [recno] is the 1-based
      {e physical} line number, locatable in an editor);
    - {b binary}: magic ["sosbin1\n"], a family-name table
      (u32-LE count, then length-prefixed names), then fixed-width
      16-byte records (u32-LE family index, n, m, scale; scale 0 = use
      the family default). [recno] is the 1-based record ordinal.
      Produced by {!convert_to_binary} / {!Writer} (e.g.
      [sosctl export --specs-bin]).

    Reads stream in O(buffer) memory whatever the corpus size, and a
    malformed line or torn trailing binary record becomes a [Bad] record
    carrying the exact diagnostic — the reader never raises on bad
    input. *)

type payload =
  | Gen of { family : string; n : int; m : int; scale : int option }
      (** generate from the named family (validated downstream) *)
  | File of string  (** [@PATH]: read an instance file *)
  | Bad of string  (** malformed spec; the error message to report *)

type record = {
  recno : int;  (** 1-based line (text) / record (binary) number *)
  raw : string;  (** the spec as written (trimmed), for diagnostics *)
  payload : payload;
}

val parse_line : string -> payload
(** Parse one trimmed, non-blank, non-comment text spec. Integer fields
    must be >= 1; violations and arity errors yield [Bad] with the
    historical `sosctl batch` message. Family names are {e not} resolved
    here (the valid set and the [m] floor depend on the consumer). *)

val canonical : record -> string
(** The canonical text form of a record — whitespace-normalized, identical
    whether the record was read from text or binary. This is the digest
    alphabet: corpora with equal record streams have equal digests. *)

val family_names : unit -> string list
(** The generator families a binary corpus can name, in table order:
    {!Sos_gen.all_families} then their [-unit] variants. *)

(** {2 Streaming digest}

    Chained MD5 over the canonical record stream, folded in fixed
    1024-record blocks — O(1) memory, invariant under reader buffering,
    and equal for a text corpus and its binary conversion. Used to bind
    checkpoint journals to their spec input. *)

type digest_state

val digest_create : unit -> digest_state
val digest_line : digest_state -> string -> unit
val digest_finish : digest_state -> string
(** Hex digest of the lines fed so far (the state is spent afterwards). *)

val digest_of_path : string -> (string, string) result
(** One streaming pass over a corpus file: the digest of its canonical
    record stream. [Error] if the file cannot be opened or its binary
    header is corrupt. *)

(** {2 Reading} *)

type source

val open_path : string -> (source, string) result
(** Open a corpus file, sniffing the encoding from the first 8 bytes.
    [Error] on I/O failure or a corrupt binary family table. *)

val of_channel : In_channel.t -> (source, string) result
(** Same autodetection over an existing channel (e.g. stdin); the channel
    is not closed by {!close}. *)

val is_binary : source -> bool

val read : source -> record option
(** Next record, or [None] at end of input. Text blank/comment lines are
    skipped. Never raises on malformed input (see [Bad]). *)

val close : source -> unit

(** {2 Writing binary corpora} *)

module Writer : sig
  type t

  val create : Out_channel.t -> t
  (** Write the magic and the {!family_names} table; the channel is the
      caller's to close. *)

  val add : t -> family:string -> n:int -> m:int -> ?scale:int -> unit -> (unit, string) result
  (** Append one 16-byte record. [Error] on an unknown family or
      out-of-range field (nothing is written then). *)
end

val convert_to_binary : src:string -> dst:string -> (int, string) result
(** Convert a corpus (usually text) to binary at [dst], streaming both
    sides; returns the record count. Strict: a [Bad] record, an [@PATH]
    spec, or an unknown family aborts with an [Error] naming the record —
    a converted corpus is guaranteed to replay identically. *)
