(** Integer-valued sampling distributions for workload generation.

    All samplers return values clamped to [[lo, hi]] (inclusive), so every
    generated requirement/size is positive and representable. *)

type t =
  | Uniform of { lo : int; hi : int }
  | Bimodal of { lo1 : int; hi1 : int; lo2 : int; hi2 : int; p2 : float }
      (** with probability [p2] sample from the second (large) mode *)
  | Pareto of { alpha : float; xmin : int; cap : int }
      (** heavy-tailed; [P(X > x) = (xmin/x)^alpha], capped at [cap] *)
  | Exponential of { mean : float; lo : int; hi : int }
  | Choice of int array  (** uniform over a fixed set of values *)
  | Constant of int

val sample : Prelude.Rng.t -> t -> int
val describe : t -> string
