(** Seeded malformed-instance generators for the validator tests
    (doc/ROBUSTNESS.md). Each draw pairs a corrupted instance description
    with the {!Robust.Failure.invalid} class the strict constructors must
    reject it with. *)

type case =
  | Ints of { window : bool; m : int; scale : int; specs : (int * int) list }
      (** Routed through {!Sos.Instance.create_checked}. *)
  | Floats of { m : int; scale : int; shares : (int * float) list }
      (** Routed through {!Sos.Instance.of_floats_checked}. *)

type expect =
  | Nonpositive_req
  | Nonpositive_size
  | Too_few_processors
  | Bad_scale
  | Not_finite
  | Overflow

val sample : Prelude.Rng.t -> expect * case
(** Draw one malformed case: non-positive [r_j]/[p_j], [m < 3] under the
    window precondition, non-positive scale, NaN/infinite float shares,
    or [p_j] huge enough to overflow the Equation (1) sums. *)

val run : case -> (Sos.Instance.t, Robust.Failure.invalid) result
(** Feed the case to the matching checked constructor. *)

val matches : expect -> Robust.Failure.invalid -> bool
(** Does the rejection reason carry the expected class? *)

val expect_name : expect -> string

val describe : case -> string
(** One-line rendering for counterexample reports. *)
