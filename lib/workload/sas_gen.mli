(** Seeded SAS task-set generators. *)

type profile = {
  name : string;
  jobs_per_task : Distributions.t;
  req : Distributions.t;  (** per-job requirement, units of [1/scale] *)
}

val generate :
  Prelude.Rng.t -> profile -> k:int -> m:int -> ?scale:int -> unit -> Sas.Sas_instance.t
(** [k] tasks on [m ≥ 4] processors (default scale {!Sos_gen.default_scale}). *)

val cloud_mix : profile
(** The composed-cloud-services scenario of the paper's introduction: task
    sizes 2–30 jobs, 70% tiny requirements (≤ 2%) and 30% mid/large. *)

val high_requirement : profile
(** Few jobs per task, large requirements: lands (mostly) in [T1]. *)

val low_requirement : profile
(** Many jobs per task, tiny requirements: lands in [T2]. *)

val all_profiles : profile list

val pure_t1 : Prelude.Rng.t -> k:int -> m:int -> ?scale:int -> unit -> Sas.Task.t list
(** Tasks that each satisfy the Lemma 4.1 precondition
    [r(T)/|T| > R/(m−1)] for the Listing 3 configuration (budget
    [(⌊m/2⌋−1)/(m−1)] on [⌊m/2⌋] processors) — used to test Lemma 4.1
    directly. The returned tasks carry ids 0..k−1. *)

val pure_t2 : Prelude.Rng.t -> k:int -> m:int -> ?scale:int -> unit -> Sas.Task.t list
(** Tasks that each satisfy the Lemma 4.2 precondition
    [r(T)/|T| ≤ R/(m−1)] for the Listing 4 configuration (budget 1/2 on
    [⌈m/2⌉] processors). *)

val random_instance : Prelude.Rng.t -> ?max_k:int -> ?max_m:int -> unit -> Sas.Sas_instance.t
(** Fully random small SAS instance for property tests. *)
