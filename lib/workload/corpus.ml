type entry = {
  name : string;
  instance : Sos.Instance.t;
  note : string;
  exact_opt : int option;
}

let lemma_3_7_stall =
  {
    name = "lemma-3.7-stall";
    instance =
      Sos.Instance.create ~m:7 ~scale:127
        [ (2, 6); (4, 6); (4, 14); (3, 14); (6, 30); (8, 31); (7, 33); (8, 52);
          (7, 52); (8, 56); (8, 63); (7, 64); (1, 70); (3, 76); (1, 81); (4, 86);
          (1, 88); (4, 90); (5, 97); (2, 101); (8, 103); (6, 106); (1, 106);
          (3, 108); (2, 110); (7, 114); (6, 117); (3, 121); (3, 124); (5, 129);
          (8, 137); (6, 143); (3, 148) ];
    note =
      "Literal GrowWindowLeft stalls behind the surviving max (strict Lemma 3.7 \
       fails); the (b)-preserving rule does not.";
    exact_opt = None;
  }

let footnote_one =
  {
    name = "footnote-1";
    instance = Adversarial.footnote_fracture ~m:6 ~scale:1000;
    note = "Fracture-accumulation stress: naive leftover assignment wastes resource.";
    exact_opt = None;
  }

let three_tight =
  {
    name = "three-tight";
    instance = Sos.Instance.create ~m:4 ~scale:90 [ (5, 30); (5, 30); (5, 30) ];
    note = "Three jobs exactly filling the resource every step: optimum = 5.";
    exact_opt = Some 5;
  }

let reduction_yes =
  {
    name = "reduction-yes-q2";
    instance =
      Sos.Instance.create ~m:3 ~scale:400
        (List.map (fun a -> (1, 100 + a)) [ 26; 35; 39; 30; 30; 40 ]);
    note = "YES 3-Partition through the k = 3 gadget: preemptive optimum = q = 2.";
    exact_opt = Some 2;
  }

let giant_dust =
  {
    name = "giant-dust";
    instance = Adversarial.giant_and_dust ~m:8 ~dust:200 ~scale:720720;
    note = "One full-resource job plus dust: overlap is everything (ablation A1).";
    exact_opt = None;
  }

let eps_pairs =
  {
    name = "eps-pairs";
    instance = Adversarial.epsilon_pairs ~pairs:60 ~m:4 ~scale:720720;
    note = "Half±ε unit jobs: pairing matters; naive fracture handling loses 50%.";
    exact_opt = None;
  }

let all =
  [ lemma_3_7_stall; footnote_one; three_tight; reduction_yes; giant_dust; eps_pairs ]

let find name = List.find_opt (fun e -> e.name = name) all
