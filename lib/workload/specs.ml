(* Streaming instance-spec reader/writer for `sosctl batch`.

   One spec per record: either a generator request (family, n, m, optional
   scale) or an @PATH instance file. Two on-disk encodings share one
   reader: the historical newline-delimited text form, and a compact
   versioned binary form (26x smaller per record, no parsing on the hot
   path) autodetected by magic. Everything streams: a million-spec corpus
   is read in O(buffer) memory. *)

type payload =
  | Gen of { family : string; n : int; m : int; scale : int option }
  | File of string
  | Bad of string

type record = { recno : int; raw : string; payload : payload }

(* Exactly the diagnostics the batch CLI has always produced for malformed
   text specs (pinned by the CI acceptance smoke): the message is carried
   in [Bad] and surfaced as an invalid-instance failure at solve time. *)
let parse_line spec =
  if String.starts_with ~prefix:"@" spec then
    File (String.sub spec 1 (String.length spec - 1))
  else begin
    let fields = String.split_on_char ' ' spec |> List.filter (fun s -> s <> "") in
    match fields with
    | family :: n :: m :: rest ->
        let int_field what s k =
          match int_of_string_opt s with
          | Some v when v >= 1 -> k v
          | _ -> Bad (Printf.sprintf "bad %s %S in spec %S" what s spec)
        in
        int_field "n" n (fun n ->
            int_field "m" m (fun m ->
                match rest with
                | [] -> Gen { family; n; m; scale = None }
                | [ s ] ->
                    int_field "scale" s (fun s -> Gen { family; n; m; scale = Some s })
                | _ -> Bad (Printf.sprintf "trailing fields in spec %S" spec)))
    | _ ->
        Bad
          (Printf.sprintf "bad spec %S (want: <family> <n> <m> [scale], or @<file>)" spec)
  end

let canonical_gen family n m scale =
  match scale with
  | None -> Printf.sprintf "%s %d %d" family n m
  | Some s -> Printf.sprintf "%s %d %d %d" family n m s

let canonical r =
  match r.payload with
  | Gen { family; n; m; scale } -> canonical_gen family n m scale
  | File path -> "@" ^ path
  | Bad _ -> r.raw

let family_names () =
  List.map
    (fun f -> f.Sos_gen.name)
    (Sos_gen.all_families @ List.map Sos_gen.unit_of Sos_gen.all_families)

(* ------------------------------------------------------------- digest *)

(* Chained MD5 over the canonical record stream, folded in blocks of
   [digest_block] records: h_{k+1} = md5(h_k ++ block_k). Block boundaries
   are counted in records, never in reader buffer sizes, so the digest is
   invariant under reader chunking and identical for a text corpus and its
   binary conversion — it is what binds a checkpoint journal to its spec
   input without ever holding the whole corpus in memory. *)
let digest_block = 1024

type digest_state = { mutable h : Digest.t; buf : Buffer.t; mutable pending : int }

let digest_create () = { h = Digest.string ""; buf = Buffer.create 4096; pending = 0 }

let digest_flush st =
  if st.pending > 0 then begin
    st.h <- Digest.string (st.h ^ Buffer.contents st.buf);
    Buffer.clear st.buf;
    st.pending <- 0
  end

let digest_line st line =
  Buffer.add_string st.buf line;
  Buffer.add_char st.buf '\n';
  st.pending <- st.pending + 1;
  if st.pending >= digest_block then digest_flush st

let digest_finish st =
  digest_flush st;
  Digest.to_hex st.h

(* ------------------------------------------------------------- reader *)

let magic = "sosbin1\n"
let record_bytes = 16
let max_families = 65536

type mode = Text | Binary of { names : string array; mutable recno : int }

type source = {
  ic : In_channel.t;
  owns : bool;
  buf : Bytes.t;
  mutable pos : int;
  mutable len : int;
  mutable eof : bool;
  mutable lineno : int;
  mutable finished : bool;
  rec_buf : Bytes.t;
  mutable mode : mode;
}

let refill s =
  if s.pos >= s.len && not s.eof then begin
    let k = In_channel.input s.ic s.buf 0 (Bytes.length s.buf) in
    s.pos <- 0;
    s.len <- k;
    if k = 0 then s.eof <- true
  end

(* Top up the buffer without consuming, for the magic sniff at open time
   (the buffer is empty then, so compaction is never needed). *)
let fill_at_least s k =
  let continue = ref true in
  while s.len < k && !continue do
    let got = In_channel.input s.ic s.buf s.len (Bytes.length s.buf - s.len) in
    if got = 0 then begin
      s.eof <- true;
      continue := false
    end
    else s.len <- s.len + got
  done

let read_exact s out k =
  let got = ref 0 in
  let continue = ref true in
  while !got < k && !continue do
    refill s;
    if s.pos >= s.len then continue := false
    else begin
      let take = min (k - !got) (s.len - s.pos) in
      Bytes.blit s.buf s.pos out !got take;
      s.pos <- s.pos + take;
      got := !got + take
    end
  done;
  !got

(* Next physical line (terminator stripped; the final unterminated line is
   still returned), scanning the buffer in place and only allocating the
   crossing-a-refill case through a Buffer. *)
let read_line s =
  refill s;
  if s.pos >= s.len then None
  else begin
    let b = Buffer.create 80 in
    let fin = ref false in
    while not !fin do
      if s.pos >= s.len then begin
        refill s;
        if s.pos >= s.len then fin := true
      end
      else begin
        match Bytes.index_from_opt s.buf s.pos '\n' with
        | Some i when i < s.len ->
            Buffer.add_subbytes b s.buf s.pos (i - s.pos);
            s.pos <- i + 1;
            fin := true
        | _ ->
            Buffer.add_subbytes b s.buf s.pos (s.len - s.pos);
            s.pos <- s.len
      end
    done;
    Some (Buffer.contents b)
  end

let u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF

let read_binary_header s =
  let b4 = Bytes.create 4 in
  if read_exact s b4 4 <> 4 then Error "corrupt binary spec file: truncated family table"
  else begin
    let count = u32 b4 0 in
    if count > max_families then
      Error (Printf.sprintf "corrupt binary spec file: %d families" count)
    else begin
      let names = Array.make count "" in
      let b1 = Bytes.create 1 in
      let err = ref None in
      (try
         for i = 0 to count - 1 do
           if read_exact s b1 1 <> 1 then raise Exit;
           let len = Char.code (Bytes.get b1 0) in
           let nb = Bytes.create len in
           if read_exact s nb len <> len then raise Exit;
           names.(i) <- Bytes.to_string nb
         done
       with Exit -> err := Some "corrupt binary spec file: truncated family table")
      [@sos.allow "R6: local loop exit inside the header parser, caught two lines down"];
      match !err with Some e -> Error e | None -> Ok names
    end
  end

let make_source ic ~owns =
  let s =
    {
      ic;
      owns;
      buf = Bytes.create 65536;
      pos = 0;
      len = 0;
      eof = false;
      lineno = 0;
      finished = false;
      rec_buf = Bytes.create record_bytes;
      mode = Text;
    }
  in
  fill_at_least s (String.length magic);
  if s.len >= String.length magic && Bytes.sub_string s.buf 0 (String.length magic) = magic
  then begin
    s.pos <- String.length magic;
    match read_binary_header s with
    | Error _ as e -> e
    | Ok names ->
        s.mode <- Binary { names; recno = 0 };
        Ok s
  end
  else Ok s

let of_channel ic = make_source ic ~owns:false

let open_path path =
  match In_channel.open_bin path with
  | exception Sys_error msg -> Error msg
  | ic -> (
      match make_source ic ~owns:true with
      | Error _ as e ->
          In_channel.close ic;
          e
      | Ok _ as ok -> ok)

let is_binary s = match s.mode with Binary _ -> true | Text -> false

let close s = if s.owns then In_channel.close s.ic

let rec read s =
  if s.finished then None
  else
    match s.mode with
    | Text -> (
        match read_line s with
        | None -> None
        | Some line ->
            s.lineno <- s.lineno + 1;
            let t = String.trim line in
            if t = "" || String.starts_with ~prefix:"#" t then read s
            else Some { recno = s.lineno; raw = t; payload = parse_line t })
    | Binary b -> (
        match read_exact s s.rec_buf record_bytes with
        | 0 -> None
        | got when got < record_bytes ->
            (* a kill mid-write can leave a torn trailing record; surface it
               as one malformed spec instead of dying *)
            b.recno <- b.recno + 1;
            s.finished <- true;
            Some
              {
                recno = b.recno;
                raw = "";
                payload =
                  Bad
                    (Printf.sprintf "truncated record %d (%d of %d bytes)" b.recno got
                       record_bytes);
              }
        | _ ->
            b.recno <- b.recno + 1;
            let fi = u32 s.rec_buf 0 in
            let n = u32 s.rec_buf 4 in
            let m = u32 s.rec_buf 8 in
            let sc = u32 s.rec_buf 12 in
            if fi >= Array.length b.names then
              Some
                {
                  recno = b.recno;
                  raw = "";
                  payload =
                    Bad (Printf.sprintf "bad family index %d in record %d" fi b.recno);
                }
            else begin
              let raw =
                canonical_gen b.names.(fi) n m (if sc = 0 then None else Some sc)
              in
              Some { recno = b.recno; raw; payload = parse_line raw }
            end)

let digest_of_path path =
  match open_path path with
  | Error _ as e -> e
  | Ok s ->
      let st = digest_create () in
      let rec go () =
        match read s with
        | None -> ()
        | Some r ->
            digest_line st (canonical r);
            go ()
      in
      go ();
      close s;
      Ok (digest_finish st)

(* ------------------------------------------------------------- writer *)

module Writer = struct
  type t = { oc : Out_channel.t; index : (string * int) list; b : Bytes.t }

  let put_u32 t v = Bytes.set_int32_le t.b 0 (Int32.of_int v)

  let create oc =
    let names = family_names () in
    Out_channel.output_string oc magic;
    let t = { oc; index = List.mapi (fun i name -> (name, i)) names; b = Bytes.create 4 } in
    put_u32 t (List.length names);
    Out_channel.output_bytes oc t.b;
    List.iter
      (fun name ->
        Out_channel.output_char oc (Char.chr (String.length name));
        Out_channel.output_string oc name)
      names;
    t

  let out_u32 t v =
    put_u32 t v;
    Out_channel.output_bytes t.oc t.b

  let add t ~family ~n ~m ?scale () =
    match List.assoc_opt family t.index with
    | None -> Error (Printf.sprintf "unknown family %s" family)
    | Some _ when n < 1 || m < 1 ->
        Error (Printf.sprintf "bad n=%d m=%d (must be >= 1)" n m)
    | Some _ when (match scale with Some s -> s < 1 | None -> false) ->
        Error "bad scale (must be >= 1)"
    | Some fi ->
        out_u32 t fi;
        out_u32 t n;
        out_u32 t m;
        out_u32 t (match scale with None -> 0 | Some s -> s);
        Ok ()
end

let convert_to_binary ~src ~dst =
  match open_path src with
  | Error _ as e -> e
  | Ok s ->
      Fun.protect
        ~finally:(fun () -> close s)
        (fun () ->
          Out_channel.with_open_bin dst (fun oc ->
              let w = Writer.create oc in
              let count = ref 0 in
              let rec go () =
                match read s with
                | None -> Ok !count
                | Some r -> (
                    match r.payload with
                    | Bad msg -> Error (Printf.sprintf "record %d: %s" r.recno msg)
                    | File _ ->
                        Error
                          (Printf.sprintf
                             "record %d: @FILE specs cannot be converted to binary" r.recno)
                    | Gen { family; n; m; scale } -> (
                        match Writer.add w ~family ~n ~m ?scale () with
                        | Error msg -> Error (Printf.sprintf "record %d: %s" r.recno msg)
                        | Ok () ->
                            incr count;
                            go ()))
              in
              go ()))
