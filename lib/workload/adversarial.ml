let giant_and_dust ~m ~dust ~scale =
  let specs = (8 * m, scale) :: List.init dust (fun _ -> (1, max 1 (scale / (8 * m)))) in
  Sos.Instance.create ~m ~scale specs

let epsilon_pairs ~pairs ~m ~scale =
  if scale < 4 then invalid_arg "Adversarial.epsilon_pairs: need scale >= 4";
  let specs =
    List.concat
      (List.init pairs (fun _ -> [ (1, (scale / 2) + 1); (1, (scale / 2) - 1) ]))
  in
  Sos.Instance.create ~m ~scale specs

let footnote_fracture ~m ~scale =
  if m < 3 then invalid_arg "Adversarial.footnote_fracture: need m >= 3";
  (* m−1 jobs of requirement just over scale/(m−1) with large volumes, plus a
     stream of slightly smaller jobs: every step the naive rule fractures the
     current max a little further. *)
  let base = (scale / (m - 1)) + 1 in
  let heavy = List.init (m - 1) (fun i -> (6, base + i)) in
  let filler = List.init (3 * m) (fun i -> (2, max 1 (base - 1 - (i mod 3)))) in
  Sos.Instance.create ~m ~scale (heavy @ filler)

let staircase ~n ~m ~scale =
  if n < 1 then invalid_arg "Adversarial.staircase: need n >= 1";
  let specs = List.init n (fun i -> (2, max 1 ((i + 1) * scale / n))) in
  Sos.Instance.create ~m ~scale specs

let worst_case_ratio_family ~m ~scale =
  if m < 3 then invalid_arg "Adversarial.worst_case_ratio_family: need m >= 3";
  (* Tiny-requirement long jobs that occupy the m−1 window without using the
     resource, then jobs that each need the full resource. *)
  let tiny = List.init (2 * (m - 1)) (fun _ -> (4 * m, 1)) in
  let hungry = List.init (m - 1) (fun _ -> (2, scale)) in
  Sos.Instance.create ~m ~scale (tiny @ hungry)
