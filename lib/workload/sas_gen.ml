module Rng = Prelude.Rng
module D = Distributions

type profile = {
  name : string;
  jobs_per_task : D.t;
  req : D.t;
}

let default_scale = Sos_gen.default_scale

let generate rng profile ~k ~m ?(scale = default_scale) () =
  let task _ =
    let jobs = max 1 (D.sample rng profile.jobs_per_task) in
    List.init jobs (fun _ -> max 1 (D.sample rng profile.req))
  in
  Sas.Sas_instance.create ~m ~scale (List.init k task)

let s = default_scale

let cloud_mix =
  {
    name = "cloud-mix";
    jobs_per_task = D.Uniform { lo = 2; hi = 30 };
    req = D.Bimodal { lo1 = 1; hi1 = s / 50; lo2 = s / 10; hi2 = s / 2; p2 = 0.3 };
  }

let high_requirement =
  {
    name = "high-req";
    jobs_per_task = D.Uniform { lo = 1; hi = 6 };
    req = D.Uniform { lo = s / 4; hi = s };
  }

let low_requirement =
  {
    name = "low-req";
    jobs_per_task = D.Uniform { lo = 10; hi = 60 };
    req = D.Uniform { lo = 1; hi = s / 100 };
  }

let all_profiles = [ cloud_mix; high_requirement; low_requirement ]

let pure_t1 rng ~k ~m ?(scale = default_scale) () =
  if scale mod (m - 1) <> 0 then invalid_arg "Sas_gen.pure_t1: (m-1) must divide scale";
  let threshold = scale / (m - 1) in
  List.init k (fun id ->
      let jobs = Rng.int_in rng 1 8 in
      Sas.Task.v ~id
        (List.init jobs (fun _ -> Rng.int_in rng (threshold + 1) scale)))

let pure_t2 rng ~k ~m ?(scale = default_scale) () =
  if scale mod (m - 1) <> 0 then invalid_arg "Sas_gen.pure_t2: (m-1) must divide scale";
  let threshold = scale / (m - 1) in
  List.init k (fun id ->
      let jobs = Rng.int_in rng 4 40 in
      Sas.Task.v ~id (List.init jobs (fun _ -> Rng.int_in rng 1 threshold)))

let random_instance rng ?(max_k = 12) ?(max_m = 12) () =
  let m = Rng.int_in rng 4 max_m in
  let scale = Rng.int_in rng 2 60 * 2 * (m - 1) in
  let k = Rng.int_in rng 1 max_k in
  let task _ =
    let jobs = Rng.int_in rng 1 12 in
    List.init jobs (fun _ -> Rng.int_in rng 1 (scale + (scale / 4)))
  in
  Sas.Sas_instance.create ~m ~scale (List.init k task)
