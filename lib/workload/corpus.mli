(** A fixed corpus of named instances with known/expected behaviour, shared
    by regression tests and documentation. Each entry records the instance
    plus ground truth where available (the exact optimum for small unit-size
    cases, otherwise the Eq. (1) lower bound). *)

type entry = {
  name : string;
  instance : Sos.Instance.t;
  note : string;
  exact_opt : int option;
      (** exact (preemptive) optimum where the branch & bound can certify
          one — unit-size instances only *)
}

val all : entry list

val lemma_3_7_stall : entry
(** The distilled DESIGN.md §6 instance: literal GrowWindowLeft violates
    strict Lemma 3.7, the fixed rule does not. *)

val footnote_one : entry
(** Footnote 1's warning: fracture accumulation wastes resource under the
    naive assignment. *)

val three_tight : entry
(** Three equal jobs that exactly fill the resource: makespan = p. *)

val reduction_yes : entry
(** A YES 3-Partition instance through the k = 3 reduction: the unit-size
    optimum is exactly q = 2. *)

val giant_dust : entry
(** One full-resource job plus many tiny ones (ablation A1's headline). *)

val eps_pairs : entry
(** Unit jobs of scale/2 ± 1: fracture handling decides between LB and
    1.5×LB. *)

val find : string -> entry option
