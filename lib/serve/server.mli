(** The scheduling service behind [sosctl serve] (doc/SERVE.md).

    One server holds a table of per-tenant {!Sos.Online.Session}s and
    answers the {!Protocol} line protocol over any channel pair: requests
    are read one line at a time, handled strictly in order, and answered
    with exactly one reply line each. Placement queries run on the given
    {!Engine.Pool} through {!Engine.Batch} — inheriting its per-request
    deadline, bounded retry, and deterministic backoff machinery — while
    mutations are applied inline. The reply bytes for a given request
    stream are identical at any [-j]: scheduling work is deterministic
    ({!Sos.Online.Session}'s tested property) and only wall-clock effects
    (deadline expiry answering [stale]) can differ between runs.

    {b Admission control.} The session table is bounded ([max_sessions]),
    and each session carries hard job-count and volume budgets. Work past
    a bound is refused with an explicit [overload] reply — the server
    sheds load instead of growing without bound, so peak RSS is a
    function of the caps, not of how abusive the client is.

    {b Crash safety.} With a checkpoint configured, every reply is
    appended to a {!Robust.Journal.Sharded} write-ahead log {e before} it
    is emitted, keyed by request index and bound to a digest of the
    canonical request. [resume = true] reopens the log and, as the input
    is re-driven, answers journalled indices verbatim from the log
    (re-applying their state transitions, re-solving nothing) and refuses
    a request that no longer matches its journalled digest. A daemon
    killed mid-stream and restarted with [--resume] over the same input
    therefore produces a byte-identical reply transcript. A journal write
    or integrity failure is fail-stop: the WAL is the source of truth, so
    the server reports [error journal]/[error resume-mismatch] and exits
    with code 4 rather than continue unjournalled.

    {b Graceful drain.} Once draining (the [drain] request, or the
    caller's [should_drain] — wired to SIGTERM by [sosctl serve]) the
    server stops admitting mutations ([reject draining]) but still
    answers queries and [close]; at end of input it flushes and reports
    exit code 0. [should_abort] (second signal) stops at the next request
    boundary with code 130. *)

type config = {
  max_sessions : int;  (** session-table bound; [open] past it → overload *)
  max_jobs : int;  (** per-session job budget *)
  max_volume : int;  (** per-session [Σ size] budget *)
  deadline : float option;  (** default per-query deadline, seconds *)
  retries : int;  (** extra solve attempts on transient failure *)
  backoff : Robust.Backoff.policy option;  (** retry delays (none = immediate) *)
  checkpoint : string option;  (** WAL path; [None] = no crash safety *)
  resume : bool;  (** reopen an interrupted run's WAL *)
  shards : int;  (** WAL shard count *)
  sync_every : int;  (** WAL appends between flushes, per shard *)
}

val default : config
(** 64 sessions, 10_000 jobs and 1_000_000 volume per session, no
    deadline, no retries, no checkpoint, 1 shard, flush every entry. *)

val header : config -> string
(** The WAL header line. It binds the admission caps (they shape which
    requests were accepted) but not deadlines, retries, or domain counts
    (they shape only timing). *)

type t
(** A running server: session table, WAL, drain state, reply counters. *)

val create : config -> (t, string) result
(** [Error] when the WAL cannot be started or resumed (header mismatch,
    unreadable shard). *)

type summary = {
  requests : int;  (** lines handled, including replayed ones *)
  replayed : int;  (** replies answered verbatim from the WAL *)
  overloads : int;  (** [overload] replies *)
  stale : int;  (** deadline-degraded [stale] replies *)
  errors : int;  (** [error] replies (parse errors included) *)
  sessions : int;  (** sessions still open *)
  exit_code : int;  (** 0 done/drained, 130 aborted, 4 WAL failure *)
}

val serve :
  t ->
  pool:Engine.Pool.t ->
  input:in_channel ->
  output:out_channel ->
  ?cancel:Robust.Cancel.t ->
  ?should_drain:(unit -> bool) ->
  ?should_abort:(unit -> bool) ->
  unit ->
  unit
(** Handle requests from [input] until end of input, a [shutdown]
    request, [should_abort], or a WAL failure. Each reply is flushed as
    written. May be called again with another channel pair (the unix
    socket accept loop does); request indices keep counting across
    calls. [cancel] is the parent of every solve's deadline token —
    cancelling it makes in-flight solves unwind as [Cancelled]. *)

val stopped : t -> bool
(** The server decided to stop ([shutdown], abort, or WAL failure);
    callers running an accept loop must stop offering it connections. *)

val draining : t -> bool

val finish : t -> summary
(** Flush and close the WAL and return the final counters. The server
    must not be used afterwards. *)
