(** The [sosctl serve] line protocol (doc/SERVE.md).

    One request per line, one reply line per request, in order. Requests
    are indexed by their 0-based position in the input stream; every reply
    starts with that index, so a client can correlate replies even when it
    pipelines requests. The grammar:

    {[
      open <tenant> [m=<int>] [scale=<int>]
      submit <tenant> <release> <size> <req>
      query <tenant> [job=<int>] [deadline=<seconds>]
      close <tenant>
      stats
      drain
      shutdown
    ]}

    Tenant names are [[A-Za-z0-9_.-]+], at most 64 bytes. Unknown
    commands, malformed integers, and bad tenant names are parse errors —
    the server answers [<idx> error parse <reason>] and keeps going.

    {!canonical} renders a parsed command in normalized form. The journal
    stores a digest of the canonical request next to each reply, binding
    the recovery log to the request stream: on [--resume], a replayed
    index whose incoming request no longer matches is refused rather than
    silently answered with another request's reply. [deadline] is
    deliberately {e excluded} from the canonical form — it tunes how long
    a solve may take, never what the reply says, so a resumed run may
    tighten or drop deadlines without breaking the binding. *)

type command =
  | Open of { tenant : string; m : int; scale : int }
  | Submit of { tenant : string; arrival : Sos.Online.arrival }
  | Query of { tenant : string; job : int option; deadline : float option }
  | Close of { tenant : string }
  | Stats
  | Drain
  | Shutdown

val default_m : int
(** Processor count when [open] omits [m=] (4). *)

val default_scale : int
(** Resource scale when [open] omits [scale=] (100). *)

val parse : string -> (command, string) result
(** Parse one request line (leading/trailing/repeated blanks tolerated).
    The error string is deterministic — it becomes part of the reply, and
    replies must be byte-stable across resumes. *)

val canonical : command -> string
(** Normalized single-line rendering: defaults filled in, [deadline]
    dropped, exactly one space between tokens. Newline-free. *)
