module Online = Sos.Online
module Session = Sos.Online.Session
module Journal = Robust.Journal

type config = {
  max_sessions : int;
  max_jobs : int;
  max_volume : int;
  deadline : float option;
  retries : int;
  backoff : Robust.Backoff.policy option;
  checkpoint : string option;
  resume : bool;
  shards : int;
  sync_every : int;
}

let default =
  {
    max_sessions = 64;
    max_jobs = 10_000;
    max_volume = 1_000_000;
    deadline = None;
    retries = 0;
    backoff = None;
    checkpoint = None;
    resume = false;
    shards = 1;
    sync_every = 1;
  }

(* The header binds the WAL to the knobs that shape reply bytes (the
   admission caps) and deliberately omits the ones that shape only timing
   (deadline, retries, backoff, -j): a resumed run may change the latter
   and still replay byte-identically. *)
let header cfg =
  Printf.sprintf "sosv1 serve max-sessions=%d max-jobs=%d max-volume=%d"
    cfg.max_sessions cfg.max_jobs cfg.max_volume

(* serve.requests is input-driven; everything else depends on drain/abort
   timing or deadline expiry and is honestly runtime-class
   (doc/OBSERVABILITY.md). *)
let c_requests = Obs.Metrics.counter "serve.requests"
let c_accepted = Obs.Metrics.runtime_counter "serve.accepted"
let c_overload = Obs.Metrics.runtime_counter "serve.rejected.overload"
let c_draining = Obs.Metrics.runtime_counter "serve.rejected.draining"
let c_replayed = Obs.Metrics.runtime_counter "serve.replayed"
let c_stale = Obs.Metrics.runtime_counter "serve.replies.stale"
let c_errors = Obs.Metrics.runtime_counter "serve.errors"
let c_err_deadline = Obs.Metrics.runtime_counter "serve.errors.deadline"
let c_solve_full = Obs.Metrics.runtime_counter "serve.solve.full"
let c_solve_extended = Obs.Metrics.runtime_counter "serve.solve.extended"
let c_solve_cached = Obs.Metrics.runtime_counter "serve.solve.cached"
let c_journal_entries = Obs.Metrics.runtime_counter "serve.journal.entries"
let h_solve_seconds = Obs.Hist.runtime "serve.solve.seconds"

let h_query_ratio =
  Obs.Hist.runtime
    ~bounds:(Obs.Hist.linear_bounds ~lo:1.0 ~hi:4.0 ~step:0.1)
    "serve.query.ratio"

type t = {
  cfg : config;
  sessions : (string, Session.t) Hashtbl.t;
  journal : Journal.Sharded.t option;
  mutable next_index : int;
  mutable draining : bool;
  mutable stop_code : int option;
  mutable n_replayed : int;
  mutable n_overload : int;
  mutable n_stale : int;
  mutable n_errors : int;
}

type summary = {
  requests : int;
  replayed : int;
  overloads : int;
  stale : int;
  errors : int;
  sessions : int;
  exit_code : int;
}

(* WAL problems are fail-stop (doc/SERVE.md): carrying on with a recovery
   log that lost or contradicts an entry would make --resume lie. *)
exception Wal_failure of string
exception Resume_mismatch of string

let create cfg =
  let fresh journal =
    {
      cfg;
      sessions = Hashtbl.create 16;
      journal;
      next_index = 0;
      draining = false;
      stop_code = None;
      n_replayed = 0;
      n_overload = 0;
      n_stale = 0;
      n_errors = 0;
    }
  in
  match cfg.checkpoint with
  | None -> Ok (fresh None)
  | Some path ->
      let header = header cfg in
      if cfg.resume then begin
        match
          Journal.Sharded.resume ~path ~shards:cfg.shards
            ~sync_every:cfg.sync_every ~header ()
        with
        | Ok j -> Ok (fresh (Some j))
        | Error e -> Error e
      end
      else
        Ok
          (fresh
             (Some
                (Journal.Sharded.start ~path ~shards:cfg.shards
                   ~sync_every:cfg.sync_every ~header ())))

let stopped t = t.stop_code <> None
let draining t = t.draining

(* Run [f] inside an ambient scope carrying the request index, so chaos
   site rules like [serve.request@7:attempts=1] target protocol requests
   the way batch rules target task indices. *)
let in_request_scope ~index f =
  Robust.Context.with_ctx
    (Robust.Context.make ~index ~attempt:0 ~cancel:Robust.Cancel.none)
    f

let reply_class reply =
  match String.split_on_char ' ' reply with _ :: cls :: _ -> cls | _ -> ""

let reply_detail reply =
  match String.split_on_char ' ' reply with _ :: _ :: d :: _ -> d | _ -> ""

(* ------------------------------------------------------------- queries *)

let find_id_of_position inst pos =
  let original = inst.Sos.Instance.original in
  let id = ref (-1) in
  Array.iteri (fun i p -> if p = pos then id := i) original;
  !id

let format_solved ~index ~tenant session (r : Online.result) job =
  let n = Sos.Instance.n r.Online.instance in
  match job with
  | None ->
      let lb =
        Online.lower_bound ~m:(Session.m session) ~scale:(Session.scale session)
          (Session.arrivals session)
      in
      if lb > 0 then
        Obs.Hist.observe h_query_ratio
          (float_of_int r.Online.makespan /. float_of_int lb);
      Printf.sprintf "%d ok schedule tenant=%s jobs=%d makespan=%d lb=%d" index
        tenant n r.Online.makespan lb
  | Some k ->
      if k >= n then
        Printf.sprintf "%d error invalid job %d out of range (have %d)" index k n
      else
        Printf.sprintf "%d ok job tenant=%s job=%d start=%d" index tenant k
          r.Online.start_times.(find_id_of_position r.Online.instance k)

let format_stale ~index ~tenant (r : Online.result) job =
  let n = Sos.Instance.n r.Online.instance in
  match job with
  | None ->
      Printf.sprintf "%d stale schedule tenant=%s jobs=%d makespan=%d" index
        tenant n r.Online.makespan
  | Some k ->
      if k >= n then
        Printf.sprintf "%d error deadline job %d not in last-good schedule (has %d)"
          index k n
      else
        Printf.sprintf "%d stale job tenant=%s job=%d start=%d" index tenant k
          r.Online.start_times.(find_id_of_position r.Online.instance k)

let handle_query (t : t) pool cancel ~index ~tenant ~job ~deadline =
  match Hashtbl.find_opt t.sessions tenant with
  | None -> Printf.sprintf "%d error no-session tenant %s" index tenant
  | Some session ->
      let task_timeout =
        match deadline with Some d -> Some d | None -> t.cfg.deadline
      in
      (* The solve runs as a one-task batch on the server's pool: it
         inherits the engine's deadline token, bounded retry, and
         deterministic backoff. Inside, the scope is re-keyed to the
         request index (keeping the engine's token and attempt), so chaos
         rules and Rng derivation see protocol-level indices. *)
      let task () =
        let attempt = Robust.Context.attempt () in
        let token =
          match Robust.Context.current () with
          | Some c -> c.Robust.Context.cancel
          | None -> Robust.Cancel.none
        in
        Robust.Context.with_ctx
          (Robust.Context.make ~index ~attempt ~cancel:token)
          (fun () ->
            Robust.Chaos.point "serve.request";
            Session.solve session)
      in
      let before = Session.stats session in
      let t0 =
        (Prelude.Clock.now () [@sos.allow "A1: runtime-class request-latency sample; h_solve_seconds is a runtime histogram, never digested"])
      in
      let out =
        Engine.Batch.map_pool pool ~retries:t.cfg.retries ?task_timeout ?cancel
          ?backoff:t.cfg.backoff
          [| task |]
      in
      Obs.Hist.observe h_solve_seconds
        ((Prelude.Clock.now () [@sos.allow "A1: runtime-class request-latency sample; h_solve_seconds is a runtime histogram, never digested"])
        -. t0);
      let after = Session.stats session in
      let d a b = max 0 (a - b) in
      Obs.Metrics.add c_solve_full
        (d after.Session.full_solves before.Session.full_solves);
      Obs.Metrics.add c_solve_extended
        (d after.Session.extended_solves before.Session.extended_solves);
      Obs.Metrics.add c_solve_cached
        (d after.Session.cached_hits before.Session.cached_hits);
      (match out.(0) with
      | Ok r -> format_solved ~index ~tenant session r job
      | Error err -> begin
          match err.Engine.Batch.failure with
          | Robust.Failure.Deadline_exceeded _ -> begin
              (* Structured degradation: answer with the last committed
                 schedule, marked stale, rather than nothing. *)
              match Session.peek session with
              | Some r -> format_stale ~index ~tenant r job
              | None ->
                  Printf.sprintf "%d error deadline %s" index
                    err.Engine.Batch.message
            end
          | f ->
              Printf.sprintf "%d error %s %s" index
                (Robust.Failure.class_name f) err.Engine.Batch.message
        end)

(* ----------------------------------------------------------- mutations *)

let sorted_sessions (t : t) =
  Hashtbl.to_seq t.sessions |> List.of_seq
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let process (t : t) pool cancel ~index (cmd : Protocol.command) =
  match cmd with
  | Protocol.Query { tenant; job; deadline } ->
      handle_query t pool cancel ~index ~tenant ~job ~deadline
  | _ -> begin
      try
        in_request_scope ~index (fun () ->
            Robust.Chaos.point "serve.request";
            match cmd with
            | Protocol.Query _ -> assert false
            | Protocol.Open { tenant; m; scale } ->
                if t.draining then Printf.sprintf "%d reject draining" index
                else if Hashtbl.mem t.sessions tenant then
                  Printf.sprintf "%d error exists tenant %s already open" index
                    tenant
                else if Hashtbl.length t.sessions >= t.cfg.max_sessions then
                  Printf.sprintf "%d overload sessions cap=%d" index
                    t.cfg.max_sessions
                else begin
                  Hashtbl.replace t.sessions tenant
                    (Session.create ~max_jobs:t.cfg.max_jobs
                       ~max_volume:t.cfg.max_volume ~m ~scale ());
                  Printf.sprintf "%d ok open tenant=%s m=%d scale=%d" index
                    tenant m scale
                end
            | Protocol.Submit { tenant; arrival } -> begin
                if t.draining then Printf.sprintf "%d reject draining" index
                else
                  match Hashtbl.find_opt t.sessions tenant with
                  | None ->
                      Printf.sprintf "%d error no-session tenant %s" index
                        tenant
                  | Some session -> begin
                      match Session.add session arrival with
                      | Ok pos ->
                          Printf.sprintf "%d ok submit tenant=%s job=%d" index
                            tenant pos
                      | Error (Session.Jobs_budget { cap }) ->
                          Printf.sprintf "%d overload jobs tenant=%s cap=%d"
                            index tenant cap
                      | Error (Session.Volume_budget { cap; volume }) ->
                          Printf.sprintf
                            "%d overload volume tenant=%s cap=%d held=%d" index
                            tenant cap volume
                      | Error (Session.Bad_arrival _ as r) ->
                          Printf.sprintf "%d error invalid %s" index
                            (Session.reject_message r)
                    end
              end
            | Protocol.Close { tenant } -> begin
                match Hashtbl.find_opt t.sessions tenant with
                | None ->
                    Printf.sprintf "%d error no-session tenant %s" index tenant
                | Some session ->
                    Hashtbl.remove t.sessions tenant;
                    Printf.sprintf "%d ok close tenant=%s jobs=%d" index tenant
                      (Session.jobs session)
              end
            | Protocol.Stats ->
                let jobs, volume =
                  List.fold_left
                    (fun (j, v) (_, s) -> (j + Session.jobs s, v + Session.volume s))
                    (0, 0) (sorted_sessions t)
                in
                Printf.sprintf
                  "%d ok stats sessions=%d jobs=%d volume=%d draining=%d" index
                  (Hashtbl.length t.sessions) jobs volume
                  (if t.draining then 1 else 0)
            | Protocol.Drain ->
                t.draining <- true;
                Printf.sprintf "%d ok drain" index
            | Protocol.Shutdown ->
                t.stop_code <- Some 0;
                Printf.sprintf "%d ok shutdown" index)
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        let f = Robust.Failure.of_exn e bt in
        Printf.sprintf "%d error %s %s" index (Robust.Failure.class_name f)
          (Robust.Failure.message f)
    end

(* ----------------------------------------------------- WAL and replay *)

let emit output reply =
  Out_channel.output_string output reply;
  Out_channel.output_char output '\n';
  Out_channel.flush output

(* Journal-then-emit: the entry is the write-ahead record of the reply,
   so it must be durable (per the sync_every policy) before the client
   can observe the reply. *)
let deliver (t : t) output ~index ~binding reply =
  (match t.journal with
  | None -> ()
  | Some j -> begin
      try
        in_request_scope ~index (fun () -> Robust.Chaos.point "serve.journal");
        Journal.Sharded.append j ~index ~payload:(binding ^ " " ^ reply);
        Obs.Metrics.incr c_journal_entries
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        raise (Wal_failure (Robust.Failure.to_string (Robust.Failure.of_exn e bt)))
    end);
  emit output reply

let try_replay (t : t) ~index ~binding =
  match t.journal with
  | Some j when Journal.Sharded.mem j index -> begin
      match Journal.Sharded.replay j index with
      | None ->
          raise (Wal_failure (Printf.sprintf "journal lost entry %d" index))
      | Some payload -> begin
          match String.index_opt payload ' ' with
          | None ->
              raise
                (Wal_failure (Printf.sprintf "journal entry %d malformed" index))
          | Some sp ->
              let stored = String.sub payload 0 sp in
              let reply =
                String.sub payload (sp + 1) (String.length payload - sp - 1)
              in
              if not (String.equal stored binding) then
                raise
                  (Resume_mismatch
                     (Printf.sprintf
                        "request %d diverged from the journalled request" index))
              else Some reply
        end
    end
  | _ -> None

(* Re-apply a journalled request's state transition without re-solving:
   the journalled reply says whether it was accepted, and accepted
   mutations must leave the session table exactly as the original run
   did so post-replay requests answer identically. *)
let apply_replayed (t : t) (cmd : Protocol.command) reply =
  if String.equal (reply_class reply) "ok" then
    match cmd with
    | Protocol.Open { tenant; m; scale } ->
        Hashtbl.replace t.sessions tenant
          (Session.create ~max_jobs:t.cfg.max_jobs ~max_volume:t.cfg.max_volume
             ~m ~scale ())
    | Protocol.Submit { tenant; arrival } -> begin
        match Hashtbl.find_opt t.sessions tenant with
        | Some session -> begin
            match Session.add session arrival with
            | Ok _ -> ()
            | Error r ->
                raise
                  (Wal_failure
                     (Printf.sprintf
                        "replayed submit %s rejected on re-application: %s"
                        tenant (Session.reject_message r)))
          end
        | None ->
            raise
              (Wal_failure
                 (Printf.sprintf "replayed submit for unopened tenant %s" tenant))
      end
    | Protocol.Close { tenant } -> Hashtbl.remove t.sessions tenant
    | Protocol.Drain -> t.draining <- true
    | Protocol.Shutdown -> t.stop_code <- Some 0
    | Protocol.Query _ | Protocol.Stats -> ()

(* ----------------------------------------------------------- main loop *)

let count_reply (t : t) reply =
  match reply_class reply with
  | "ok" -> Obs.Metrics.incr c_accepted
  | "stale" ->
      t.n_stale <- t.n_stale + 1;
      Obs.Metrics.incr c_stale
  | "overload" ->
      t.n_overload <- t.n_overload + 1;
      Obs.Metrics.incr c_overload
  | "reject" -> Obs.Metrics.incr c_draining
  | "error" ->
      t.n_errors <- t.n_errors + 1;
      Obs.Metrics.incr c_errors;
      if String.equal (reply_detail reply) "deadline" then
        Obs.Metrics.incr c_err_deadline
  | _ -> ()

let handle_line (t : t) pool cancel output ~index line =
  let parsed = Protocol.parse line in
  let binding =
    Journal.digest
      (match parsed with
      | Ok cmd -> Protocol.canonical cmd
      | Error _ -> String.trim line)
  in
  match try_replay t ~index ~binding with
  | Some reply ->
      t.n_replayed <- t.n_replayed + 1;
      Obs.Metrics.incr c_replayed;
      (match parsed with Ok cmd -> apply_replayed t cmd reply | Error _ -> ());
      (* Already in the WAL — emit verbatim, never re-append. *)
      emit output reply
  | None ->
      let reply =
        match parsed with
        | Error msg -> Printf.sprintf "%d error parse %s" index msg
        | Ok cmd -> process t pool cancel ~index cmd
      in
      count_reply t reply;
      deliver t output ~index ~binding reply

let serve (t : t) ~pool ~input ~output ?cancel ?(should_drain = fun () -> false)
    ?(should_abort = fun () -> false) () =
  let rec loop () =
    if t.stop_code <> None then ()
    else if should_abort () then t.stop_code <- Some 130
    else begin
      if should_drain () then t.draining <- true;
      match In_channel.input_line input with
      | None -> ()
      | Some line when should_abort () ->
          (* The abort signal landed while we were blocked in the read
             (the runtime retries the interrupted read, so the line still
             arrives): stop at this request boundary without handling it. *)
          ignore line;
          t.stop_code <- Some 130
      | Some line ->
          (* Likewise a drain signal that interrupted the read must take
             effect on the very line that unblocked it, not one later. *)
          if should_drain () then t.draining <- true;
          let index = t.next_index in
          t.next_index <- index + 1;
          Obs.Metrics.incr c_requests;
          (try handle_line t pool cancel output ~index line with
          | Wal_failure msg ->
              let reply = Printf.sprintf "%d error journal %s" index msg in
              count_reply t reply;
              emit output reply;
              t.stop_code <- Some 4
          | Resume_mismatch msg ->
              let reply = Printf.sprintf "%d error resume-mismatch %s" index msg in
              count_reply t reply;
              emit output reply;
              t.stop_code <- Some 4);
          loop ()
    end
  in
  loop ()

let finish (t : t) =
  (match t.journal with
  | Some j -> begin
      try Journal.Sharded.close j
      with _ -> if t.stop_code = None then t.stop_code <- Some 4
    end
  | None -> ());
  {
    requests = t.next_index;
    replayed = t.n_replayed;
    overloads = t.n_overload;
    stale = t.n_stale;
    errors = t.n_errors;
    sessions = Hashtbl.length t.sessions;
    exit_code = (match t.stop_code with Some c -> c | None -> 0);
  }
