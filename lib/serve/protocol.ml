type command =
  | Open of { tenant : string; m : int; scale : int }
  | Submit of { tenant : string; arrival : Sos.Online.arrival }
  | Query of { tenant : string; job : int option; deadline : float option }
  | Close of { tenant : string }
  | Stats
  | Drain
  | Shutdown

let default_m = 4
let default_scale = 100

let tenant_ok name =
  let n = String.length name in
  n >= 1 && n <= 64
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '.' || c = '-')
       name

let tokens line =
  String.split_on_char ' ' line |> List.filter (fun t -> t <> "")

(* key=value option arguments; every key at most once, unknown keys are
   errors (a typo'd [scle=] silently ignored would be worse). *)
let parse_kvs ~keys kvs =
  let seen = ref [] in
  let rec go acc = function
    | [] -> Ok acc
    | kv :: rest -> begin
        match String.index_opt kv '=' with
        | None -> Error (Printf.sprintf "expected key=value, got %S" kv)
        | Some i ->
            let k = String.sub kv 0 i in
            let v = String.sub kv (i + 1) (String.length kv - i - 1) in
            if not (List.mem k keys) then
              Error (Printf.sprintf "unknown option %S" k)
            else if List.mem k !seen then
              Error (Printf.sprintf "duplicate option %S" k)
            else begin
              seen := k :: !seen;
              go ((k, v) :: acc) rest
            end
      end
  in
  go [] kvs

let int_kv kvs key ~default ~min_value =
  match List.assoc_opt key kvs with
  | None -> Ok default
  | Some v -> begin
      match int_of_string_opt v with
      | Some i when i >= min_value -> Ok i
      | Some i -> Error (Printf.sprintf "%s=%d below minimum %d" key i min_value)
      | None -> Error (Printf.sprintf "%s is not an integer" key)
    end

let parse line =
  match tokens line with
  | [] -> Error "empty request"
  | verb :: rest -> begin
      let with_tenant rest k =
        match rest with
        | [] -> Error (verb ^ " needs a tenant")
        | tenant :: rest ->
            if tenant_ok tenant then k tenant rest
            else Error (Printf.sprintf "bad tenant name %S" tenant)
      in
      match verb with
      | "open" ->
          with_tenant rest (fun tenant rest ->
              match parse_kvs ~keys:[ "m"; "scale" ] rest with
              | Error e -> Error e
              | Ok kvs -> begin
                  match
                    ( int_kv kvs "m" ~default:default_m ~min_value:2,
                      int_kv kvs "scale" ~default:default_scale ~min_value:1 )
                  with
                  | Ok m, Ok scale -> Ok (Open { tenant; m; scale })
                  | Error e, _ | _, Error e -> Error e
                end)
      | "submit" ->
          with_tenant rest (fun tenant rest ->
              match rest with
              | [ r; s; q ] -> begin
                  match
                    (int_of_string_opt r, int_of_string_opt s, int_of_string_opt q)
                  with
                  | Some release, Some size, Some req ->
                      Ok (Submit { tenant; arrival = { Sos.Online.release; size; req } })
                  | _ -> Error "submit needs three integers: release size req"
                end
              | _ -> Error "submit needs three integers: release size req")
      | "query" ->
          with_tenant rest (fun tenant rest ->
              match parse_kvs ~keys:[ "job"; "deadline" ] rest with
              | Error e -> Error e
              | Ok kvs -> begin
                  let job =
                    match List.assoc_opt "job" kvs with
                    | None -> Ok None
                    | Some v -> begin
                        match int_of_string_opt v with
                        | Some i when i >= 0 -> Ok (Some i)
                        | Some _ -> Error "job must be >= 0"
                        | None -> Error "job is not an integer"
                      end
                  in
                  let deadline =
                    match List.assoc_opt "deadline" kvs with
                    | None -> Ok None
                    | Some v -> begin
                        match float_of_string_opt v with
                        | Some f when Float.is_finite f && f > 0.0 -> Ok (Some f)
                        | Some _ -> Error "deadline must be positive"
                        | None -> Error "deadline is not a number"
                      end
                  in
                  match (job, deadline) with
                  | Ok job, Ok deadline -> Ok (Query { tenant; job; deadline })
                  | Error e, _ | _, Error e -> Error e
                end)
      | "close" ->
          with_tenant rest (fun tenant rest ->
              match rest with
              | [] -> Ok (Close { tenant })
              | _ -> Error "close takes no arguments")
      | "stats" -> if rest = [] then Ok Stats else Error "stats takes no arguments"
      | "drain" -> if rest = [] then Ok Drain else Error "drain takes no arguments"
      | "shutdown" ->
          if rest = [] then Ok Shutdown else Error "shutdown takes no arguments"
      | _ -> Error (Printf.sprintf "unknown command %S" verb)
    end

let canonical = function
  | Open { tenant; m; scale } -> Printf.sprintf "open %s m=%d scale=%d" tenant m scale
  | Submit { tenant; arrival = { Sos.Online.release; size; req } } ->
      Printf.sprintf "submit %s %d %d %d" tenant release size req
  | Query { tenant; job; deadline = _ } -> begin
      match job with
      | None -> Printf.sprintf "query %s" tenant
      | Some k -> Printf.sprintf "query %s job=%d" tenant k
    end
  | Close { tenant } -> Printf.sprintf "close %s" tenant
  | Stats -> "stats"
  | Drain -> "drain"
  | Shutdown -> "shutdown"
