type instance = { k : int; capacity : int; sizes : int array }

let instance ~k ~capacity sizes =
  if k < 1 then invalid_arg "Packing.instance: need k >= 1";
  if capacity < 1 then invalid_arg "Packing.instance: need capacity >= 1";
  List.iter
    (fun s -> if s <= 0 then invalid_arg "Packing.instance: non-positive item size")
    sizes;
  { k; capacity; sizes = Array.of_list sizes }

type packing = (int * int) list list

let validate inst packing =
  let n = Array.length inst.sizes in
  let packed = Array.make n 0 in
  let rec check_bins idx = function
    | [] -> Ok ()
    | bin :: rest ->
        let total = List.fold_left (fun acc (_, a) -> acc + a) 0 bin in
        let items = List.map fst bin in
        let distinct = List.sort_uniq compare items in
        if List.exists (fun (_, a) -> a <= 0) bin then
          Error (Printf.sprintf "bin %d: non-positive part" idx)
        else if List.length distinct <> List.length items then
          Error (Printf.sprintf "bin %d: item split within one bin" idx)
        else if total > inst.capacity then
          Error (Printf.sprintf "bin %d: overfull (%d > %d)" idx total inst.capacity)
        else if List.length bin > inst.k then
          Error
            (Printf.sprintf "bin %d: cardinality violated (%d > k=%d)" idx
               (List.length bin) inst.k)
        else if List.exists (fun (i, _) -> i < 0 || i >= n) bin then
          Error (Printf.sprintf "bin %d: unknown item" idx)
        else begin
          List.iter (fun (i, a) -> packed.(i) <- packed.(i) + a) bin;
          check_bins (idx + 1) rest
        end
  in
  match check_bins 0 packing with
  | Error _ as e -> e
  | Ok () ->
      let rec check_items i =
        if i >= n then Ok ()
        else if packed.(i) <> inst.sizes.(i) then
          Error
            (Printf.sprintf "item %d: packed %d of %d units" i packed.(i) inst.sizes.(i))
        else check_items (i + 1)
      in
      check_items 0

let assert_valid inst packing =
  match validate inst packing with
  | Ok () -> ()
  | Error msg -> Robust.Failure.internal_error "%s" msg

let bins_used = List.length

let ceil_div a b = if a <= 0 then 0 else ((a - 1) / b) + 1

let lower_bound inst =
  let total = Array.fold_left ( + ) 0 inst.sizes in
  max (ceil_div total inst.capacity) (ceil_div (Array.length inst.sizes) inst.k)

let fragments packing =
  let parts = List.fold_left (fun acc bin -> acc + List.length bin) 0 packing in
  let items =
    List.sort_uniq compare (List.concat_map (List.map fst) packing) |> List.length
  in
  parts - items

let pp ppf packing =
  List.iteri
    (fun i bin ->
      Format.fprintf ppf "bin %d:" i;
      List.iter (fun (item, a) -> Format.fprintf ppf " %d:%d" item a) bin;
      Format.fprintf ppf "@.")
    packing
