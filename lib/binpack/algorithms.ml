(* Entry-point telemetry for the Corollary 3.9 window packer
   (doc/OBSERVABILITY.md). *)
let c_runs = Obs.Metrics.counter "binpack.window.runs"
let c_items = Obs.Metrics.counter "binpack.window.items"
let c_bins = Obs.Metrics.counter "binpack.window.bins"
let t_pack = Obs.Metrics.timer "binpack.window.pack"

let next_fit_order order inst =
  let items = Array.mapi (fun i s -> (i, s)) inst.Packing.sizes in
  let items = Array.to_list items in
  let items =
    match order with
    | `Input -> items
    | `Decreasing -> List.sort (fun (_, a) (_, b) -> compare b a) items
    | `Increasing -> List.sort (fun (_, a) (_, b) -> compare a b) items
  in
  let capacity = inst.Packing.capacity and k = inst.Packing.k in
  (* bins built in reverse; the open bin is carried as (parts, used). *)
  let close bins bin = if bin = [] then bins else List.rev bin :: bins in
  let rec pour bins bin used parts item remaining =
    if remaining = 0 then (bins, bin, used, parts)
    else begin
      let room = capacity - used in
      if room = 0 || parts = k then
        pour (close bins bin) [] 0 0 item remaining
      else begin
        let amount = min room remaining in
        pour bins ((item, amount) :: bin) (used + amount) (parts + 1) item
          (remaining - amount)
      end
    end
  in
  let bins, bin, _, _ =
    List.fold_left
      (fun (bins, bin, used, parts) (item, size) ->
        let bins, bin, used, parts = pour bins bin used parts item size in
        (bins, bin, used, parts))
      ([], [], 0, 0) items
  in
  List.rev (close bins bin)

let next_fit inst = next_fit_order `Input inst
let next_fit_decreasing inst = next_fit_order `Decreasing inst
let next_fit_increasing inst = next_fit_order `Increasing inst

let first_fit_order order inst =
  let items = Array.to_list (Array.mapi (fun i s -> (i, s)) inst.Packing.sizes) in
  let items =
    match order with
    | `Input -> items
    | `Decreasing -> List.sort (fun (_, a) (_, b) -> compare b a) items
  in
  let capacity = inst.Packing.capacity and k = inst.Packing.k in
  (* bins as a growable array of (rev parts, used, count). *)
  let bins = ref [||] in
  let grow () =
    bins := Array.append !bins [| ([], 0, 0) |];
    Array.length !bins - 1
  in
  let place item remaining =
    let rec go b remaining =
      if remaining = 0 then ()
      else if b >= Array.length !bins then go (grow ()) remaining
      else begin
        let parts, used, count = !bins.(b) in
        let room = capacity - used in
        if room = 0 || count = k then go (b + 1) remaining
        else begin
          let amount = min room remaining in
          !bins.(b) <- ((item, amount) :: parts, used + amount, count + 1);
          go (b + 1) (remaining - amount)
        end
      end
    in
    go 0 remaining
  in
  List.iter (fun (item, size) -> place item size) items;
  Array.to_list (Array.map (fun (parts, _, _) -> List.rev parts) !bins)

let first_fit inst = first_fit_order `Input inst
let first_fit_decreasing inst = first_fit_order `Decreasing inst

let window inst =
  Obs.Metrics.time t_pack @@ fun () ->
  Obs.Metrics.incr c_runs;
  Obs.Metrics.add c_items (Array.length inst.Packing.sizes);
  let items =
    Array.to_list
      (Array.mapi (fun i s -> { Sos.Splittable.id = i; size = s }) inst.Packing.sizes)
  in
  let packing = Sos.Splittable.pack items ~size:inst.Packing.k ~budget:inst.Packing.capacity in
  Obs.Metrics.add c_bins (List.length packing);
  packing

let of_unit_schedule (sched : Sos.Schedule.t) =
  (* Schedules address jobs by their sorted position; packings address the
     caller's original item order — translate via the instance's
     permutation. *)
  let original = sched.Sos.Schedule.inst.Sos.Instance.original in
  List.concat_map
    (fun (st : Sos.Schedule.step) ->
      let bin =
        List.filter_map
          (fun (a : Sos.Schedule.alloc) ->
            if a.consumed > 0 then Some (original.(a.job), a.consumed) else None)
          st.allocs
      in
      List.init st.repeat (fun _ -> bin))
    sched.Sos.Schedule.steps

let guarantee_window ~k =
  if k < 2 then invalid_arg "Algorithms.guarantee_window: need k >= 2";
  1.0 +. (1.0 /. float_of_int (k - 1))

let guarantee_next_fit ~k =
  if k < 1 then invalid_arg "Algorithms.guarantee_next_fit: need k >= 1";
  2.0 -. (1.0 /. float_of_int k)
