(** Packing algorithms: the paper's window algorithm via the SoS reduction
    (Corollary 3.9), plus the classical baselines it is compared against. *)

val next_fit : Packing.instance -> Packing.packing
(** NextFit for splittable items with cardinality constraints, in input
    order: keep one open bin; pour the current item into it; when the bin
    reaches capacity or its k-th part, close it and open a new one. The
    simple baseline of Chung et al. (asymptotic ratio 3/2 for k = 2, and
    2 − 1/k in general — approaching 2 for large k). *)

val next_fit_decreasing : Packing.instance -> Packing.packing
(** NextFit on items sorted by non-increasing size. *)

val next_fit_increasing : Packing.instance -> Packing.packing
(** NextFit on items sorted by non-decreasing size. Equivalent to the
    window algorithm without the cardinality-aware sliding — the ablation
    baseline. *)

val first_fit : Packing.instance -> Packing.packing
(** First-Fit for splittable items: pour each item (input order) into the
    earliest bins that still have both capacity and a cardinality slot,
    opening a new bin when none fits. Unlike NextFit, old bins stay open. *)

val first_fit_decreasing : Packing.instance -> Packing.packing

val window : Packing.instance -> Packing.packing
(** Corollary 3.9: the m-maximal sliding-window algorithm ({!Sos.Splittable})
    with [k] in the processor role. Asymptotic ratio [1 + 1/(k−1)], running
    time [O((k+n)·n)]. *)

val of_unit_schedule : Sos.Schedule.t -> Packing.packing
(** Interpret a unit-size SoS schedule as a packing (time steps = bins,
    consumed shares = part sizes) — the inverse of the {!window} reduction.
    Zero-consumption allocations are dropped. *)

val guarantee_window : k:int -> float
(** [1 + 1/(k−1)] (requires k ≥ 2). *)

val guarantee_next_fit : k:int -> float
(** [2 − 1/k], the best known fast-algorithm guarantee cited by the paper. *)
