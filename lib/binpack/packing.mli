(** Bin packing with cardinality constraints and splittable items
    (Chung, Graham, Mao, Varghese 2006; Corollary 3.9 of the paper).

    Items of arbitrary positive size must be packed into a minimum number of
    bins of capacity 1; items may be split across bins, but a bin may
    contain (parts of) at most [k] different items. Sizes are exact
    fixed-point: an instance fixes [capacity] (the number of units in one
    bin) and item sizes are integer unit counts.

    This problem is exactly unit-size SoS with preemption: bins = time
    steps, cardinality [k] = processors, item size = resource requirement. *)

type instance = private {
  k : int;  (** cardinality constraint, ≥ 1 *)
  capacity : int;  (** units per bin, ≥ 1 *)
  sizes : int array;  (** positive; item [i] has size [sizes.(i)] *)
}

val instance : k:int -> capacity:int -> int list -> instance
(** Raises [Invalid_argument] on [k < 1], [capacity < 1] or a non-positive
    size. *)

type packing = (int * int) list list
(** Bins in order; each bin lists [(item, amount)] parts, amounts positive. *)

val validate : instance -> packing -> (unit, string) result
(** Checks capacity, cardinality, positive part sizes, and that every item
    is packed exactly. *)

val assert_valid : instance -> packing -> unit

val bins_used : packing -> int

val lower_bound : instance -> int
(** [max(⌈Σ sizes / capacity⌉, ⌈n/k⌉)] — volume and cardinality bounds,
    both valid for the optimum. *)

val fragments : packing -> int
(** Total number of parts minus number of items: how many extra cuts the
    packing makes (0 = no item split). *)

val pp : Format.formatter -> packing -> unit
