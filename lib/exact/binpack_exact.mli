(** Exact optimum for bin packing with cardinality constraints and
    splittable items, by branch and bound over a normal form. Intended for
    small instances (n ≲ 10); used by the benchmark tables to measure true
    approximation ratios, and by the tests as ground truth.

    Normal form (standard exchange arguments): an optimal packing can be
    assumed to have (i) a forest-shaped item/bin incidence graph — a cycle
    of split items lets mass be shifted around the cycle until one part
    vanishes — and (ii) every bin that contains a part of an item completed
    later is filled to capacity — otherwise mass from the item's later part
    can be pulled forward. Ordering each tree's bins in DFS post-order,
    every bin then consists of items receiving their final part plus at
    most one "continuing" item that takes exactly the bin's leftover
    capacity. The search branches over exactly these bin shapes, memoizing
    on the multiset of remaining sizes. *)

val optimum : ?node_limit:int -> Binpack.Packing.instance -> int option
(** Minimal number of bins, or [None] if the search exceeds [node_limit]
    (default 2_000_000) expanded nodes. [Some 0] for the empty instance. *)

val optimum_exn : ?node_limit:int -> Binpack.Packing.instance -> int
(** Raises [Failure] instead of returning [None]. *)

val optimum_packing :
  ?node_limit:int -> Binpack.Packing.instance -> (int * Binpack.Packing.packing) option
(** Like {!optimum} but also reconstructs a witness packing realizing the
    optimum (re-running the search along the optimal choices). The witness
    validates against the instance and uses exactly [optimum] bins. *)

val unit_sos_optimum : ?node_limit:int -> Sos.Instance.t -> int option
(** Optimal preemptive makespan of a unit-size SoS instance (= the bin
    packing optimum with [k = m]); a lower bound on the non-preemptive
    optimum. Raises [Invalid_argument] on non-unit sizes. *)
