(** 3-Partition and its reduction to splittable bin packing / unit-size SoS
    (the Theorem 2.1 strong-NP-hardness demonstrator).

    A 3-Partition instance is a multiset of [3q] positive integers summing
    to [q·target] with every element in (target/4, target/2); it is a YES
    instance iff the numbers partition into [q] triples each summing to
    [target].

    Reduction (this repo's variant, for cardinality k = 3): map number
    [a_i] to an item of size [target + a_i] with bin capacity [4·target].
    Any packing into [q] bins has at most [3q] parts for [3q] items, so no
    item is split; each bin then holds exactly 3 whole items of total
    ≤ 4·target, and since the grand total is [4·target·q] every bin sums to
    exactly [4·target] — i.e. the triples solve 3-Partition. Conversely a
    3-Partition solution packs each triple into one bin. Hence the packing
    optimum is [q] iff YES (and ≥ q+1 otherwise), which makes splittable
    bin packing with k = 3 — equivalently unit-size SoS with m = 3 and
    preemption — strongly NP-hard. (The paper's Theorem 2.1 states hardness
    already for m = 2 via the more intricate reduction of Chung et al.; the
    k = 3 variant keeps the equivalence checkable by the exact solver.) *)

type t = private { numbers : int array; target : int; q : int }

val create : int list -> t
(** Raises [Invalid_argument] unless the multiset has [3q] elements summing
    to [q·target] for integral [target] with all elements in
    (target/4, target/2) — i.e. it is a well-formed 3-Partition instance. *)

val solvable : t -> bool
(** Exhaustive search with pruning (exponential; fine for q ≤ 5). *)

val to_binpack : t -> Binpack.Packing.instance
(** The reduction above: k = 3, capacity [4·target], sizes
    [target + a_i]. *)

val to_binpack_k2 : t -> Binpack.Packing.instance
(** A cardinality-2 gadget (Theorem 2.1 claims hardness already for m = 2;
    the paper defers the proof to its full version — this is an independent
    reconstruction, verified against the exact solver): number [a_i] maps
    to an item of size [4·target + 6·a_i] with bin capacity [9·target].
    The optimum is [2q] bins iff the 3-Partition instance is YES:

    - item sizes lie in (5.5·target, 7·target), so two whole items exceed a
      bin and one item never fills it — every component of the (forest)
      item/bin incidence graph uses ≥ 2 bins;
    - a component with [b] bins holds at most [b+1] items (≤ 2 parts per
      bin, forest), and in a [2q]-bin packing the total item mass
      [Σ(4t+6a_i) = 18·t·q] equals the total capacity, so all bins are
      full; counting forces exactly [q] components of 2 bins / 3 whole
      items each, and such a component is full iff its numbers sum to
      [target];
    - conversely a YES triple {i,j,k} packs as [i + part of j | rest of j
      + k]. *)

val k2_gap : t -> int
(** [2q]: the bin threshold for {!to_binpack_k2}. *)

val to_sos : t -> Sos.Instance.t
(** Unit-size SoS instance with m = 3, scale = [4·target]. *)

val yes_gap : t -> int
(** [q]: the bin/makespan threshold — optimum = q iff the instance is
    solvable. *)

val random_yes : Prelude.Rng.t -> q:int -> target:int -> t
(** A random YES instance: draws [q] triples summing to [target] with parts
    in the legal range. [target] must be ≥ 8 and divisible enough to admit
    triples; raises [Invalid_argument] if no legal triple exists. *)
