module Rng = Prelude.Rng

type t = { numbers : int array; target : int; q : int }

let in_range target a = 4 * a > target && 2 * a < target

let create numbers_list =
  let numbers = Array.of_list numbers_list in
  let n = Array.length numbers in
  if n = 0 || n mod 3 <> 0 then
    invalid_arg "Three_partition.create: need 3q elements";
  let q = n / 3 in
  let sum = Array.fold_left ( + ) 0 numbers in
  if sum mod q <> 0 then invalid_arg "Three_partition.create: sum not divisible by q";
  let target = sum / q in
  Array.iter
    (fun a ->
      if not (in_range target a) then
        invalid_arg "Three_partition.create: element outside (target/4, target/2)")
    numbers;
  { numbers; target; q }

let solvable t =
  (* Take the largest unused number, try all pairs completing its triple. *)
  let numbers = Array.copy t.numbers in
  Array.sort (fun a b -> compare b a) numbers;
  let n = Array.length numbers in
  let used = Array.make n false in
  let rec solve remaining =
    if remaining = 0 then true
    else begin
      let first =
        let rec find i = if used.(i) then find (i + 1) else i in
        find 0
      in
      used.(first) <- true;
      let need = t.target - numbers.(first) in
      let rec pairs i =
        if i >= n then false
        else if used.(i) then pairs (i + 1)
        else begin
          let rec partner j =
            if j >= n then false
            else if used.(j) || numbers.(i) + numbers.(j) <> need then partner (j + 1)
            else begin
              used.(i) <- true;
              used.(j) <- true;
              let ok = solve (remaining - 3) in
              used.(i) <- false;
              used.(j) <- false;
              ok
            end
          in
          if numbers.(i) < need && partner (i + 1) then true else pairs (i + 1)
        end
      in
      let ok = pairs (first + 1) in
      used.(first) <- false;
      ok
    end
  in
  solve n

let to_binpack t =
  Binpack.Packing.instance ~k:3 ~capacity:(4 * t.target)
    (Array.to_list (Array.map (fun a -> t.target + a) t.numbers))

let to_binpack_k2 t =
  Binpack.Packing.instance ~k:2 ~capacity:(9 * t.target)
    (Array.to_list (Array.map (fun a -> (4 * t.target) + (6 * a)) t.numbers))

let k2_gap t = 2 * t.q

let to_sos t =
  Sos.Instance.create ~m:3 ~scale:(4 * t.target)
    (Array.to_list (Array.map (fun a -> (1, t.target + a)) t.numbers))

let yes_gap t = t.q

let random_yes rng ~q ~target =
  if target < 8 then invalid_arg "Three_partition.random_yes: target too small";
  let lo = (target / 4) + 1 in
  let hi = ((target + 1) / 2) - 1 in
  if lo > hi then invalid_arg "Three_partition.random_yes: empty range";
  let rec triple attempts =
    if attempts > 10_000 then
      invalid_arg "Three_partition.random_yes: no legal triple found"
    else begin
      let a = Rng.int_in rng lo hi and b = Rng.int_in rng lo hi in
      let c = target - a - b in
      if c >= lo && c <= hi then [ a; b; c ] else triple (attempts + 1)
    end
  in
  let numbers = List.concat (List.init q (fun _ -> triple 0)) in
  create numbers
