exception Limit

let ceil_div a b = if a <= 0 then 0 else ((a - 1) / b) + 1

(* All subsets of positions 0..n-1 with 1..k elements, each exactly once,
   skipping size-multiset duplicates: [sizes] is sorted, and within a run of
   equal sizes the chosen positions must form a prefix of the run. Subsets
   are returned as index lists in descending position order. *)
let subsets sizes k =
  let n = Array.length sizes in
  let acc = ref [] in
  let rec go idx current count =
    if idx = n then begin
      if count > 0 then acc := current :: !acc
    end
    else begin
      let duplicate_skipped =
        idx > 0
        && sizes.(idx - 1) = sizes.(idx)
        && not (match current with c :: _ -> c = idx - 1 | [] -> false)
      in
      if count < k && not duplicate_skipped then go (idx + 1) (idx :: current) (count + 1);
      go (idx + 1) current count
    end
  in
  go 0 [] 0;
  !acc

(* The bin shapes of the normal form, from a sorted remaining multiset:
   either a subset completed outright, or a subset with one designated
   member continuing after taking the bin's leftover capacity. Returns
   [(consumed parts as (index, amount)), leftover-of-continuer option]. *)
type shape = {
  subset : int list;  (* indices into the sorted remaining list *)
  continuer : int option;  (* index of the member taking the leftover *)
  amount : int;  (* the continuer's amount (its full size if none) *)
}

let shapes sizes k capacity =
  List.concat_map
    (fun subset ->
      let sum = List.fold_left (fun acc i -> acc + sizes.(i)) 0 subset in
      let complete = if sum <= capacity then [ { subset; continuer = None; amount = 0 } ] else [] in
      let rec conts seen acc = function
        | [] -> acc
        | x :: tl ->
            let sx = sizes.(x) in
            if List.mem sx seen then conts seen acc tl
            else begin
              let amount = capacity - (sum - sx) in
              if amount >= 1 && amount < sx then
                conts (sx :: seen) ({ subset; continuer = Some x; amount } :: acc) tl
              else conts (sx :: seen) acc tl
            end
      in
      complete @ conts [] [] subset)
    (subsets sizes k)

let apply_shape remaining shape =
  let sizes = Array.of_list remaining in
  let rest = List.filteri (fun i _ -> not (List.mem i shape.subset)) remaining in
  match shape.continuer with
  | None -> rest
  | Some x -> List.merge compare [ sizes.(x) - shape.amount ] rest

(* A memoized solver over sorted remaining multisets. [solve remaining ub]
   may report any value >= ub as ub; values strictly below ub are exact. *)
let make_solver inst node_limit =
  let capacity = inst.Binpack.Packing.capacity and k = inst.Binpack.Packing.k in
  let nodes = ref 0 in
  let memo : (int list, int) Hashtbl.t = Hashtbl.create 4096 in
  let rec solve remaining ub =
    match remaining with
    | [] -> 0
    | _ ->
        incr nodes;
        if !nodes > node_limit then raise Limit;
        let total = List.fold_left ( + ) 0 remaining in
        let count = List.length remaining in
        let lb = max (ceil_div total capacity) (ceil_div count k) in
        if lb >= ub then ub
        else begin
          match Hashtbl.find_opt memo remaining with
          | Some v -> min v ub
          | None ->
              let sizes = Array.of_list remaining in
              let best = ref ub in
              List.iter
                (fun shape ->
                  if !best > lb then begin
                    let v = 1 + solve (apply_shape remaining shape) (!best - 1) in
                    if v < !best then best := v
                  end)
                (shapes sizes k capacity);
              if !best < ub then Hashtbl.replace memo remaining !best;
              !best
        end
  in
  solve

let optimum ?(node_limit = 2_000_000) inst =
  let sizes = Array.to_list inst.Binpack.Packing.sizes in
  if sizes = [] then Some 0
  else begin
    let ub = Binpack.Packing.bins_used (Binpack.Algorithms.window inst) in
    let solve = make_solver inst node_limit in
    match solve (List.sort compare sizes) (ub + 1) with
    | v -> Some (min v ub)
    | exception Limit -> None
  end

let optimum_exn ?node_limit inst =
  match optimum ?node_limit inst with
  | Some v -> v
  | None -> failwith "Binpack_exact.optimum: node limit exceeded"

let optimum_packing ?(node_limit = 2_000_000) inst =
  match optimum ~node_limit inst with
  | None -> None
  | Some 0 -> Some (0, [])
  | Some best -> begin
      let capacity = inst.Binpack.Packing.capacity and k = inst.Binpack.Packing.k in
      (* Walk the optimal choices, tracking concrete item identities:
         the pool pairs each remaining size with (item id, remaining). *)
      let solve = make_solver inst (8 * node_limit) in
      let pool =
        List.sort compare
          (Array.to_list (Array.mapi (fun id s -> (s, id)) inst.Binpack.Packing.sizes))
      in
      try
        let rec reconstruct pool target acc =
          if pool = [] then List.rev acc
          else begin
            let remaining = List.map fst pool in
            let sizes = Array.of_list remaining in
            let candidates = shapes sizes k capacity in
            let rec pick = function
              | [] -> Robust.Failure.internal_error "Binpack_exact.optimum_packing: no optimal shape"
              | shape :: rest_shapes ->
                  let rest = apply_shape remaining shape in
                  if 1 + solve rest (target - 1 + 1) = target then (shape, rest)
                  else pick rest_shapes
            in
            let shape, _ = pick candidates in
            let arr = Array.of_list pool in
            let bin =
              List.map
                (fun i ->
                  let size, id = arr.(i) in
                  match shape.continuer with
                  | Some x when x = i -> (id, shape.amount)
                  | _ -> (id, size))
                shape.subset
            in
            let rest_pool =
              List.filteri (fun i _ -> not (List.mem i shape.subset)) pool
            in
            let rest_pool =
              match shape.continuer with
              | None -> rest_pool
              | Some x ->
                  let size, id = arr.(x) in
                  List.merge compare [ (size - shape.amount, id) ] rest_pool
            in
            reconstruct rest_pool (target - 1) (bin :: acc)
          end
        in
        Some (best, reconstruct pool best [])
      with Limit -> None
    end

let unit_sos_optimum ?node_limit inst =
  if not (Sos.Instance.unit_size inst) then
    invalid_arg "Binpack_exact.unit_sos_optimum: non-unit sizes";
  let sizes =
    List.init (Sos.Instance.n inst) (fun i -> (Sos.Instance.job inst i).Sos.Job.req)
  in
  if sizes = [] then Some 0
  else
    optimum ?node_limit
      (Binpack.Packing.instance ~k:inst.Sos.Instance.m
         ~capacity:inst.Sos.Instance.scale sizes)
