exception Injected of string

type rule =
  | Fail_indices of { indices : int list; attempts : int }
  | Fail_prob of float
  | Delay of { seconds : float; prob : float }

let () =
  Printexc.register_printer (function
    | Injected site -> Some (Printf.sprintf "chaos: injected fault at %s" site)
    | _ -> None)

let c_injected = Obs.Metrics.runtime_counter "robust.chaos.injected"
let c_delays = Obs.Metrics.runtime_counter "robust.chaos.delays"

(* The whole configuration swaps atomically so [point] never sees a torn
   state; readers take one [Atomic.get]. *)
let state : (int * (string * rule) list) option Atomic.t = Atomic.make None

let armed () = Atomic.get state <> None
let arm_rules ?(seed = 0) rules = Atomic.set state (Some (seed, rules))
let disarm () = Atomic.set state None

(* Out-of-scope probabilistic draws (the pool's worker site): one
   process-wide stream under a spinlock. Scheduling-dependent by design. *)
let global_lock = Atomic.make false

let global_rng : Prelude.Rng.t option ref = ref None
[@@sos.allow
  "A3: the out-of-scope chaos stream is process-wide and scheduling-dependent by design; \
   guarded by the [global_lock] spinlock"]

let global_draw seed =
  while not (Atomic.compare_and_set global_lock false true) do () done;
  let rng =
    match !global_rng with
    | Some r -> r
    | None ->
        let r = Prelude.Rng.create (seed lxor 0x0C4A05) in
        global_rng := Some r;
        r
  in
  let v = Prelude.Rng.float rng 1.0 in
  Atomic.set global_lock false;
  v

(* In-scope draws are a pure function of (seed, site, index, attempt, hit):
   deterministic at any domain count. *)
let scoped_draw seed site (ctx : Context.t) =
  let hit = try Hashtbl.find ctx.hits site with Not_found -> 0 in
  Hashtbl.replace ctx.hits site (hit + 1);
  let rng = Prelude.Rng.create3 (seed lxor Hashtbl.hash site) ctx.index ((ctx.attempt * 0x10001) + hit) in
  Prelude.Rng.float rng 1.0

let draw seed site =
  match Context.current () with
  | Some ctx -> scoped_draw seed site ctx
  | None -> global_draw seed

let inject site =
  Obs.Metrics.incr c_injected;
  raise (Injected site)

let apply seed site = function
  | Fail_indices { indices; attempts } -> begin
      match Context.current () with
      | Some ctx when List.mem ctx.Context.index indices && ctx.Context.attempt < attempts ->
          inject site
      | _ -> ()
    end
  | Fail_prob p -> if draw seed site < p then inject site
  | Delay { seconds; prob } ->
      if prob >= 1.0 || draw seed site < prob then begin
        Obs.Metrics.incr c_delays;
        Unix.sleepf seconds
      end

let point site =
  match Atomic.get state with
  | None -> ()
  | Some (seed, rules) ->
      List.iter (fun (s, rule) -> if String.equal s site then apply seed site rule) rules

(* ------------------------------------------------------------- spec DSL *)

let parse_clause clause =
  let clause = String.trim clause in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let float_of s = float_of_string_opt s in
  match String.index_opt clause '@' with
  | Some at -> begin
      let site = String.sub clause 0 at in
      let rest = String.sub clause (at + 1) (String.length clause - at - 1) in
      let indices_s, attempts =
        match String.index_opt rest ':' with
        | None -> (rest, max_int)
        | Some colon ->
            let opt = String.sub rest (colon + 1) (String.length rest - colon - 1) in
            let n =
              match String.split_on_char '=' opt with
              | [ "attempts"; n ] -> int_of_string_opt n
              | _ -> None
            in
            (String.sub rest 0 colon, Option.value n ~default:(-1))
      in
      (* attempts=0 would be a no-op rule; reject it as a spec typo. *)
      if attempts < 1 then fail "bad attempts bound in %S" clause
      else
        let indices = String.split_on_char ',' indices_s |> List.map int_of_string_opt in
        if List.exists Option.is_none indices || indices = [] then
          fail "bad task-index list in %S" clause
        else Ok (site, Fail_indices { indices = List.filter_map Fun.id indices; attempts })
    end
  | None -> begin
      match String.index_opt clause '+' with
      | Some plus -> begin
          let site = String.sub clause 0 plus in
          let rest = String.sub clause (plus + 1) (String.length clause - plus - 1) in
          let secs_s, prob =
            match String.index_opt rest '~' with
            | None -> (rest, Some 1.0)
            | Some tld ->
                ( String.sub rest 0 tld,
                  float_of (String.sub rest (tld + 1) (String.length rest - tld - 1)) )
          in
          match (float_of secs_s, prob) with
          | Some seconds, Some prob when seconds >= 0.0 && prob >= 0.0 && prob <= 1.0 ->
              Ok (site, Delay { seconds; prob })
          | _ -> fail "bad delay clause %S (want SITE+SECS[~P])" clause
        end
      | None -> begin
          match String.index_opt clause '~' with
          | Some tld -> begin
              let site = String.sub clause 0 tld in
              match float_of (String.sub clause (tld + 1) (String.length clause - tld - 1)) with
              | Some p when p >= 0.0 && p <= 1.0 -> Ok (site, Fail_prob p)
              | _ -> fail "bad probability in %S" clause
            end
          | None -> fail "bad chaos clause %S (want SITE@IDXS[:attempts=N], SITE~P, or SITE+SECS[~P])" clause
        end
    end

let parse spec =
  let clauses =
    String.split_on_char ';' spec |> List.map String.trim |> List.filter (fun c -> c <> "")
  in
  if clauses = [] then Error "empty chaos spec"
  else
    List.fold_left
      (fun acc clause ->
        match (acc, parse_clause clause) with
        | Error _, _ -> acc
        | _, (Error _ as e) -> e
        | Ok rules, Ok rule -> Ok (rule :: rules))
      (Ok []) clauses
    |> Result.map List.rev

let arm ?seed spec =
  match parse spec with
  | Error _ as e -> e
  | Ok rules ->
      arm_rules ?seed rules;
      Ok ()
