type 'a outcome = {
  result : ('a, Failure.t) result;
  attempts : int;
}

let run ?(restarts = 0) ?backoff ?(index = 0) ?(should_restart = Failure.transient)
    ?(on_restart = fun ~attempt:_ _ -> ()) body =
  let restarts = max 0 restarts in
  let rec go attempt =
    match body () with
    | v -> { result = Ok v; attempts = attempt }
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        let failure = Failure.of_exn e bt in
        if attempt <= restarts && should_restart failure then begin
          on_restart ~attempt failure;
          (match backoff with
          | Some policy -> Backoff.sleep (Backoff.delay policy ~index ~attempt)
          | None -> ());
          go (attempt + 1)
        end
        else { result = Error failure; attempts = attempt }
  in
  go 1
