(** Append-only checkpoint journal for batch runs.

    A journal records, per completed task, its submission index and the
    exact output payload the run emitted for it, so a killed run can be
    resumed and replay the completed prefix byte-identically instead of
    re-solving it (`sosctl batch --checkpoint PATH --resume`).

    {b File format} (line-oriented text, doc/ROBUSTNESS.md):
    {[
      <header line>                      e.g. "sosj1 seed=7 algo=window specs=<md5>"
      <index> <md5-of-payload> <payload>
      ...
    ]}
    The header binds the journal to one run configuration; {!load} refuses
    a journal whose header differs (resuming under a different seed,
    algorithm, or spec list would silently mix outputs). Each entry line is
    flushed when appended, and {!load} drops any entry whose digest does
    not match its payload — a process killed mid-append leaves at most one
    torn trailing line, which is simply re-run on resume. Payloads must be
    newline-free (enforced by {!append}). *)

type entry = { index : int; payload : string }

val digest : string -> string
(** MD5 hex of a string (also used by callers to fingerprint the spec list
    into the header). *)

val load : path:string -> header:string -> (entry list, string) result
(** Entries in file order ([Ok []] if the file does not exist). [Error] if
    the file exists but its header line differs from [header]. Torn or
    corrupt entry lines are skipped silently. *)

val create : path:string -> header:string -> Out_channel.t
(** Truncate/create the journal, write the header, flush, and return the
    channel for {!append}. *)

val reopen : path:string -> Out_channel.t
(** Open an existing journal for appending (after {!load}). A torn final
    line left by a kill mid-append is truncated away first, so the next
    {!append} starts on a fresh line. *)

val append : Out_channel.t -> index:int -> payload:string -> unit
(** Append one entry and flush. Raises [Invalid_argument] if [payload]
    contains a newline. *)
