(** Append-only checkpoint journal for batch runs.

    A journal records, per completed task, its submission index and the
    exact output payload the run emitted for it, so a killed run can be
    resumed and replay the completed prefix byte-identically instead of
    re-solving it (`sosctl batch --checkpoint PATH --resume`).

    {b File format} (line-oriented text, doc/ROBUSTNESS.md):
    {[
      <header line>                      e.g. "sosj1 seed=7 algo=window specs=<md5>"
      <index> <md5-of-payload> <payload>
      ...
    ]}
    The header binds the journal to one run configuration; {!load} refuses
    a journal whose header differs (resuming under a different seed,
    algorithm, or spec list would silently mix outputs). Each entry line is
    flushed when appended, and {!load} drops any entry whose digest does
    not match its payload — a process killed mid-append leaves at most one
    torn trailing line, which is simply re-run on resume. Payloads must be
    newline-free (enforced by {!append}).

    All reads stream line-by-line: loading or resuming a journal costs
    O(longest line) memory, never O(file). For streaming resume over very
    large batches, use {!Sharded}. *)

type entry = { index : int; payload : string }

val digest : string -> string
(** MD5 hex of a string (also used by callers to fingerprint the spec list
    into the header). *)

val load : path:string -> header:string -> (entry list, string) result
(** Entries in file order ([Ok []] if the file does not exist). [Error] if
    the file exists but its header line differs from [header]. Torn or
    corrupt entry lines are skipped silently. *)

val fold_entries :
  path:string -> header:string -> init:'a -> f:('a -> entry -> 'a) -> ('a, string) result
(** Stream-fold over the valid entries without materializing them —
    {!load} in O(1) memory. Same missing-file / header semantics. *)

val create : path:string -> header:string -> Out_channel.t
(** Truncate/create the journal, write the header, flush, and return the
    channel for {!append}. *)

val reopen : path:string -> Out_channel.t
(** Open an existing journal for appending (after {!load}). A torn final
    line left by a kill mid-append is truncated away first (found by a
    chunked O(1)-memory scan), so the next {!append} starts on a fresh
    line. *)

val append : Out_channel.t -> index:int -> payload:string -> unit
(** Append one entry and flush. Raises [Invalid_argument] if [payload]
    contains a newline. *)

(** Sharded journal for streaming batches (`sosctl batch --stream`).

    The journal is split over [shards] files — entry [index] lands in
    shard [index mod shards], file [PATH.k] (or [PATH] itself when
    [shards = 1], byte-compatible with the single-file format above).
    Every shard carries the same configuration-binding header, suffixed
    with [" shard=k/N"] when [N > 1] so a journal can never be resumed
    under a different shard count.

    Sharding buys two things for million-spec runs: resume compacts and
    scans shards independently (each is 1/N of the data), and appends can
    be batched behind a [sync_every] flush policy per shard — an fsync'd
    line every K entries instead of every entry, trading at most
    [K - 1] re-run tasks per shard on a kill for sequential-write
    throughput.

    Resume never materializes entries: each shard is streamed line-by-line
    into a {e bitset} of completed indices (125 KB per million tasks)
    while being {e compacted} — torn or corrupt lines dropped, the clean
    file atomically renamed into place — and replayed payloads are read
    back on demand through a forward-only cursor per shard. *)
module Sharded : sig
  type t

  val start : path:string -> ?shards:int -> ?sync_every:int -> header:string -> unit -> t
  (** Create a fresh journal: truncates all [shards] (default 1) shard
      files and writes their headers. [sync_every] (default 1 = flush
      every entry) is the per-shard append count between flushes; both are
      clamped up to 1. *)

  val resume :
    path:string ->
    ?shards:int ->
    ?sync_every:int ->
    header:string ->
    unit ->
    (t, string) result
  (** Reopen an interrupted run's journal: verifies every shard's header
      (mismatch → [Error]), compacts each shard in one streaming pass
      (invalid lines dropped, atomic rename), and records the surviving
      indices in the resume bitset. A missing or empty shard file is
      recreated fresh. *)

  val mem : t -> int -> bool
  (** Did the interrupted run complete this index? (Always [false] on a
      {!start}-ed journal; fresh {!append}s do not set it.) *)

  val completed : t -> int
  (** Number of indices recorded by the interrupted run. *)

  val replay : t -> int -> string option
  (** The payload the interrupted run journalled for this index, or [None]
      if {!mem} is false. Must be called in increasing index order (the
      ordered-emission order): each shard is read through a forward
      cursor with one entry of pushback, so in-order entries cost O(1)
      reads. An entry lying {e behind} the cursor (a shard left
      index-unsorted by a prior resume appending re-run gap indices after
      higher ones) is still found, via a full-shard rescan. [None] with
      {!mem} true therefore means the journal lost the entry — callers
      must treat it as a failure, not as silence. *)

  val append : t -> index:int -> payload:string -> unit
  (** Journal one fresh entry into shard [index mod shards], flushing per
      the [sync_every] policy. Raises [Invalid_argument] on newline
      payloads, as {!append}. *)

  val flush : t -> unit
  (** Force out any appends still buffered behind [sync_every]. *)

  val close : t -> unit
  (** Flush and close every shard channel and replay cursor. *)

  val shards : t -> int

  val paths : t -> string array
  (** The shard file paths, in shard order. *)
end
