(** Seeded fault injector ("chaos") for resilience testing.

    Named sites in the solvers and the engine call {!point}; when armed, a
    site may raise {!Injected} or inject a wall-clock delay according to
    the armed rules. Disarmed (the default) a site costs one atomic load —
    the same discipline as [Obs.Metrics].

    {b Site registry} (documented in doc/ROBUSTNESS.md):
    ["sos.fast.run"], ["sos.fast.step"], ["sas.combined.run"],
    ["engine.batch.task"], ["engine.pool.worker"].

    {b Determinism.} Rules that target task indices, and probabilistic
    draws made inside a task scope, are pure functions of
    [(seed, site, task index, attempt, hit counter)] — never of domain
    identity — so an armed chaos configuration perturbs a batch
    identically at any [-j]. Draws outside any task scope (the pool's
    worker site) come from one process-wide seeded stream and are
    scheduling-dependent; they model genuinely asynchronous worker
    failures.

    {b Spec grammar} (for [--chaos] / [$SOS_CHAOS]): clauses separated by
    [;]:
    - [SITE@I1,I2,...] — raise at the listed task indices, every attempt;
    - [SITE@I1,...:attempts=N] — only on attempts [0..N-1] (so a task
      retried [>= N] times recovers);
    - [SITE~P] — raise with probability [P] per hit;
    - [SITE+SECS] — delay every hit by [SECS] seconds;
    - [SITE+SECS~P] — delay with probability [P]. *)

exception Injected of string  (** carries the site name *)

type rule =
  | Fail_indices of { indices : int list; attempts : int }
  | Fail_prob of float
  | Delay of { seconds : float; prob : float }

val parse : string -> ((string * rule) list, string) result
(** Parse the spec grammar above. *)

val arm : ?seed:int -> string -> (unit, string) result
(** [parse] then {!arm_rules}. *)

val arm_rules : ?seed:int -> (string * rule) list -> unit
val disarm : unit -> unit
val armed : unit -> bool

val point : string -> unit
(** Fault-injection site: no-op unless armed with a rule for this site.
    May raise {!Injected} or sleep. *)
