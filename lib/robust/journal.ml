type entry = { index : int; payload : string }

let digest s = Digest.to_hex (Digest.string s)

let parse_entry line =
  (* "<index> <digest> <payload>"; the payload may itself contain spaces. *)
  match String.index_opt line ' ' with
  | None -> None
  | Some sp1 -> begin
      match String.index_from_opt line (sp1 + 1) ' ' with
      | None -> None
      | Some sp2 -> begin
          let idx = int_of_string_opt (String.sub line 0 sp1) in
          let dg = String.sub line (sp1 + 1) (sp2 - sp1 - 1) in
          let payload = String.sub line (sp2 + 1) (String.length line - sp2 - 1) in
          match idx with
          | Some index when index >= 0 && String.equal dg (digest payload) ->
              Some { index; payload }
          | _ -> None
        end
    end

let load ~path ~header =
  if not (Sys.file_exists path) then Ok []
  else begin
    let body = In_channel.with_open_text path In_channel.input_all in
    match String.split_on_char '\n' body with
    | [] | [ "" ] -> Ok []
    | got_header :: entries ->
        if not (String.equal got_header header) then
          Error
            (Printf.sprintf
               "checkpoint %s was written by a different run configuration (header %S, \
                expected %S)"
               path got_header header)
        else Ok (List.filter_map parse_entry entries)
  end

let create ~path ~header =
  let oc = Out_channel.open_text path in
  Out_channel.output_string oc (header ^ "\n");
  Out_channel.flush oc;
  oc

let reopen ~path =
  (* A process killed mid-append can leave a torn final line with no
     newline; appending straight after it would glue the next entry onto
     the torn one and corrupt both. Trim back to the last complete line
     before appending. *)
  (match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error _ -> ()
  | body ->
      let len = String.length body in
      if len > 0 && body.[len - 1] <> '\n' then
        let keep = match String.rindex_opt body '\n' with Some i -> i + 1 | None -> 0 in
        Unix.truncate path keep);
  Out_channel.open_gen [ Open_append; Open_text ] 0o644 path

let append oc ~index ~payload =
  if String.contains payload '\n' then
    invalid_arg "Robust.Journal.append: payload contains newline"
    [@sos.allow
      "R6: caller-side framing contract (suite_robust pins it); a taxonomy failure here would \
       be journalled into the very file whose framing the check protects"];
  Out_channel.output_string oc (Printf.sprintf "%d %s %s\n" index (digest payload) payload);
  Out_channel.flush oc
