type entry = { index : int; payload : string }

let digest s = Digest.to_hex (Digest.string s)

let parse_entry line =
  (* "<index> <digest> <payload>"; the payload may itself contain spaces. *)
  match String.index_opt line ' ' with
  | None -> None
  | Some sp1 -> begin
      match String.index_from_opt line (sp1 + 1) ' ' with
      | None -> None
      | Some sp2 -> begin
          let idx = int_of_string_opt (String.sub line 0 sp1) in
          let dg = String.sub line (sp1 + 1) (sp2 - sp1 - 1) in
          let payload = String.sub line (sp2 + 1) (String.length line - sp2 - 1) in
          match idx with
          | Some index when index >= 0 && String.equal dg (digest payload) ->
              Some { index; payload }
          | _ -> None
        end
    end

let header_mismatch path got expected =
  Printf.sprintf
    "checkpoint %s was written by a different run configuration (header %S, expected %S)" path
    got expected

(* Stream [f] over the entry lines (everything after the header), one line
   at a time — a journal is loaded in O(longest line) memory no matter how
   many entries it holds. *)
let fold_entries ~path ~header ~init ~f =
  if not (Sys.file_exists path) then Ok init
  else
    In_channel.with_open_text path (fun ic ->
        match In_channel.input_line ic with
        | None -> Ok init (* empty file: nothing recorded yet *)
        | Some got when not (String.equal got header) -> Error (header_mismatch path got header)
        | Some _ ->
            let rec go acc =
              match In_channel.input_line ic with
              | None -> Ok acc
              | Some line -> (
                  match parse_entry line with Some e -> go (f acc e) | None -> go acc)
            in
            go init)

let load ~path ~header =
  Result.map List.rev (fold_entries ~path ~header ~init:[] ~f:(fun acc e -> e :: acc))

let create ~path ~header =
  let oc = Out_channel.open_text path in
  Out_channel.output_string oc (header ^ "\n");
  Out_channel.flush oc;
  oc

(* A process killed mid-append can leave a torn final line with no newline;
   appending straight after it would glue the next entry onto the torn one
   and corrupt both. Scan forward in fixed-size chunks tracking the offset
   just past the last newline — O(1) memory on journals of any size — and
   trim back to the last complete line. *)
let truncate_torn_tail path =
  match
    In_channel.with_open_bin path (fun ic ->
        let buf = Bytes.create 65536 in
        let keep = ref 0 in
        let pos = ref 0 in
        (let rec go () =
           let k = In_channel.input ic buf 0 (Bytes.length buf) in
           if k > 0 then begin
             for i = 0 to k - 1 do
               if Bytes.get buf i = '\n' then keep := !pos + i + 1
             done;
             pos := !pos + k;
             go ()
           end
         in
         go ())
        [@sos.allow
          "A2: startup-recovery scan, bounded by the journal size on disk; runs before any \
           task is admitted, so there is no cancellation context to poll"];
        (!keep, !pos))
  with
  | exception Sys_error _ -> ()
  | keep, total -> if total > keep then Unix.truncate path keep

let reopen ~path =
  truncate_torn_tail path;
  Out_channel.open_gen [ Open_append; Open_text ] 0o644 path

let output_entry oc ~index ~payload =
  if String.contains payload '\n' then
    invalid_arg "Robust.Journal.append: payload contains newline"
    [@sos.allow
      "R6: caller-side framing contract (suite_robust pins it); a taxonomy failure here would \
       be journalled into the very file whose framing the check protects"];
  Out_channel.output_string oc (Printf.sprintf "%d %s %s\n" index (digest payload) payload)

let append oc ~index ~payload =
  output_entry oc ~index ~payload;
  Out_channel.flush oc

module Sharded = struct
  (* Journal latency distributions (runtime class, PR 8): how long one
     append takes — including any flush it triggers, so `--sync-every`
     batching shows up as a bimodal append distribution — and how long
     each channel flush takes on its own. *)
  let h_append = Obs.Hist.runtime "robust.journal.append_s"
  let h_fsync = Obs.Hist.runtime "robust.journal.fsync_s"

  let timed h f =
    if Obs.Metrics.enabled () then begin
      let t0 =
        (Prelude.Clock.now () [@sos.allow "A1: runtime-class journal-I/O latency sample; the histogram is runtime-class, never digested"])
      in
      let r = f () in
      Obs.Hist.observe h
        ((Prelude.Clock.now () [@sos.allow "A1: runtime-class journal-I/O latency sample; the histogram is runtime-class, never digested"])
        -. t0);
      r
    end
    else f ()

  (* Growable bitset over task indices; one bit per completed index. A
     million-spec journal resumes into 125 KB, not a million-entry list. *)
  module Bitset = struct
    type t = { mutable bits : Bytes.t; mutable count : int }

    let make () = { bits = Bytes.create 0; count = 0 }

    let mem t i =
      let byte = i lsr 3 in
      byte < Bytes.length t.bits && Char.code (Bytes.get t.bits byte) land (1 lsl (i land 7)) <> 0

    let add t i =
      let byte = i lsr 3 in
      let len = Bytes.length t.bits in
      if byte >= len then begin
        let bits = Bytes.make (max (byte + 1) ((2 * len) + 64)) '\000' in
        Bytes.blit t.bits 0 bits 0 len;
        t.bits <- bits
      end;
      let b = Char.code (Bytes.get t.bits byte) in
      if b land (1 lsl (i land 7)) = 0 then begin
        Bytes.set t.bits byte (Char.chr (b lor (1 lsl (i land 7))));
        t.count <- t.count + 1
      end
  end

  (* A replay cursor holds at most one entry of pushback: when the forward
     scan reads past the index it was looking for, the overshot entry is
     parked here instead of being lost, so the next (higher-index) replay
     still sees it. *)
  type cursor = { ic : In_channel.t; mutable pushback : entry option }

  type t = {
    base : string;
    shards : int;
    sync_every : int;
    outs : Out_channel.t array;
    pending : int array; (* unflushed appends per shard *)
    done_ : Bitset.t; (* indices completed by the interrupted run *)
    cursors : cursor option array; (* lazy per-shard replay readers *)
  }

  let shard_path base k shards = if shards = 1 then base else Printf.sprintf "%s.%d" base k

  let shard_header header k shards =
    if shards = 1 then header else Printf.sprintf "%s shard=%d/%d" header k shards

  let shards t = t.shards
  let paths t = Array.init t.shards (fun k -> shard_path t.base k t.shards)
  let mem t index = index >= 0 && Bitset.mem t.done_ index
  let completed t = t.done_.Bitset.count

  let start ~path ?(shards = 1) ?(sync_every = 1) ~header () =
    let shards = max 1 shards in
    {
      base = path;
      shards;
      sync_every = max 1 sync_every;
      outs =
        Array.init shards (fun k ->
            create ~path:(shard_path path k shards) ~header:(shard_header header k shards));
      pending = Array.make shards 0;
      done_ = Bitset.make ();
      cursors = Array.make shards None;
    }

  let resume ~path ?(shards = 1) ?(sync_every = 1) ~header () =
    let shards = max 1 shards in
    let done_ = Bitset.make () in
    (* Compact one shard: stream it line-by-line through a temp file,
       keeping the header and only the entries whose digest checks out
       (torn or corrupt lines — a kill -9 mid-append leaves at most one per
       shard — are dropped), recording each kept index in the bitset. The
       rename is atomic, so a second kill during compaction loses nothing. *)
    let compact_shard k =
      let p = shard_path path k shards in
      let h = shard_header header k shards in
      if not (Sys.file_exists p) then Ok (create ~path:p ~header:h)
      else begin
        let tmp = p ^ ".compact" in
        let res =
          In_channel.with_open_text p (fun ic ->
              match In_channel.input_line ic with
              | None -> Ok false (* truncated to nothing: restart the shard *)
              | Some got when not (String.equal got h) -> Error (header_mismatch p got h)
              | Some _ ->
                  Out_channel.with_open_text tmp (fun oc ->
                      Out_channel.output_string oc (h ^ "\n");
                      (let rec go () =
                         match In_channel.input_line ic with
                         | None -> ()
                         | Some line ->
                             (match parse_entry line with
                             | Some e ->
                                 Bitset.add done_ e.index;
                                 Out_channel.output_string oc line;
                                 Out_channel.output_char oc '\n'
                             | None -> ());
                             go ()
                       in
                       go ())
                      [@sos.allow
                        "A2: compaction replay, bounded by the shard size on disk; runs \
                         during recovery before tasks are admitted"];
                      (* The rename below is only crash-safe if the temp
                         file's data has reached disk first — otherwise a
                         power loss can leave a truncated compacted shard
                         in place of the entries it replaced. *)
                      Out_channel.flush oc;
                      Unix.fsync (Unix.descr_of_out_channel oc));
                  Ok true)
        in
        match res with
        | Error _ as e -> e
        | Ok false -> Ok (create ~path:p ~header:h)
        | Ok true ->
            Sys.rename tmp p;
            (* Persist the rename itself (the directory entry); best-effort
               since some filesystems refuse fsync on a directory fd. *)
            (try
               let dfd = Unix.openfile (Filename.dirname p) [ Unix.O_RDONLY ] 0 in
               Fun.protect
                 ~finally:(fun () -> Unix.close dfd)
                 (fun () -> Unix.fsync dfd)
             with Unix.Unix_error _ -> ());
            Ok (reopen ~path:p)
      end
    in
    let outs = Array.make shards None in
    let err = ref None in
    for k = 0 to shards - 1 do
      if !err = None then
        match compact_shard k with
        | Ok oc -> outs.(k) <- Some oc
        | Error e -> err := Some e
    done;
    match !err with
    | Some e ->
        Array.iter (function Some oc -> Out_channel.close oc | None -> ()) outs;
        Error e
    | None ->
        Ok
          {
            base = path;
            shards;
            sync_every = max 1 sync_every;
            outs = Array.map Option.get outs;
            pending = Array.make shards 0;
            done_;
            cursors = Array.make shards None;
          }

  let append t ~index ~payload =
    timed h_append @@ fun () ->
    let k = index mod t.shards in
    output_entry t.outs.(k) ~index ~payload;
    t.pending.(k) <- t.pending.(k) + 1;
    if t.pending.(k) >= t.sync_every then begin
      timed h_fsync (fun () -> Out_channel.flush t.outs.(k));
      t.pending.(k) <- 0
    end

  let flush t =
    Array.iteri
      (fun k oc ->
        if t.pending.(k) > 0 then begin
          timed h_fsync (fun () -> Out_channel.flush oc);
          t.pending.(k) <- 0
        end)
      t.outs

  (* Slow path: the forward cursor overshot [index], so the entry — which
     the resume bitset saw during compaction — sits {e behind} the cursor.
     That happens when a shard is not index-sorted: an interrupted run
     journals nothing for a cancelled index while later in-flight tasks
     are journalled, and the first resume appends the re-run gap index
     after them. Rescan the whole shard with a fresh reader; O(shard) per
     out-of-order entry, and such entries are bounded by the gaps of prior
     interrupted runs. *)
  let rescan t k index =
    In_channel.with_open_text
      (shard_path t.base k t.shards)
      (fun ic ->
        ignore (In_channel.input_line ic : string option) (* skip the header *);
        let rec go () =
          match In_channel.input_line ic with
          | None -> None
          | Some line -> (
              match parse_entry line with
              | Some e when e.index = index -> Some e.payload
              | _ -> go ())
        in
        go ())

  let replay t index =
    if not (mem t index) then None
    else begin
      let k = index mod t.shards in
      let cur =
        match t.cursors.(k) with
        | Some cur -> cur
        | None ->
            let ic = In_channel.open_text (shard_path t.base k t.shards) in
            ignore (In_channel.input_line ic : string option) (* skip the header *);
            let cur = { ic; pushback = None } in
            t.cursors.(k) <- Some cur;
            cur
      in
      (* Replay is driven by ordered emission and shards are appended in
         emission order, so the common case is a strictly forward scan:
         O(1) reads per entry. An entry that lands {e behind} the cursor
         (out-of-order shard, see [rescan]) must not cost the entries
         ahead of it — the overshot line is pushed back, never consumed. *)
      let rec go () =
        match In_channel.input_line cur.ic with
        | None -> rescan t k index
        | Some line -> (
            match parse_entry line with
            | Some e when e.index = index -> Some e.payload
            | Some e when e.index > index ->
                cur.pushback <- Some e;
                rescan t k index
            | _ -> go ())
      in
      match cur.pushback with
      | Some e when e.index = index ->
          cur.pushback <- None;
          Some e.payload
      | Some e when e.index > index -> rescan t k index
      | _ ->
          cur.pushback <- None;
          go ()
    end

  let close t =
    Array.iter Out_channel.close t.outs;
    Array.iter (function Some cur -> In_channel.close cur.ic | None -> ()) t.cursors
end
