(** Cooperative cancellation tokens with optional deadlines.

    Worker domains cannot be killed, so cancellation in this codebase is
    cooperative: long-running code polls a token ({!check}, or
    {!Context.poll} for the ambient one) at loop boundaries and unwinds
    via {!Failure.Cancel_requested} / {!Failure.Deadline} when it has
    fired. The batch engine arms one token per task attempt (carrying the
    [--task-timeout] deadline) with the batch-wide token as its parent, so
    a single {!cancel} on the parent stops every polling task. Tokens are
    domain-safe: {!cancel} from any domain is visible to all pollers. *)

type t

val none : t
(** A token that never fires. *)

val create : ?timeout:float -> ?parent:t -> unit -> t
(** [create ~timeout ~parent ()] makes a token whose deadline is
    [timeout] seconds from now (none if omitted) and which also fires
    whenever [parent] does. Raises [Invalid_argument] if
    [timeout <= 0]. *)

val cancel : t -> unit
(** Fire the token (idempotent). Parents are not affected. *)

val cancelled : t -> bool
(** The token or an ancestor has been cancelled ({e not} deadline
    expiry — that is only observed by {!check}, which knows the clock). *)

val check : t -> unit
(** Raise {!Failure.Cancel_requested} if the token or an ancestor was
    cancelled, {!Failure.Deadline} if a deadline (own or ancestral) has
    passed; otherwise return. Cost when armed: one atomic load per chain
    link, plus a clock read per deadline. *)
