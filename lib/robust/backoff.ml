type policy = { seed : int; base : float; cap : float }

let policy ?(base = 0.01) ?(cap = 1.0) ~seed () =
  (* Clamp rather than raise: a backoff policy is timing advice, and the
     retry machinery must never fail because of it. *)
  let base = if Float.is_finite base && base > 1e-6 then base else 1e-6 in
  let cap = if Float.is_finite cap && cap > base then cap else base in
  { seed; base; cap }

let delay t ~index ~attempt =
  if attempt <= 0 then 0.0
  else begin
    (* d doubles per attempt, saturating at cap. The shift count is
       capped before the [lsl] rather than special-cased after it: OCaml
       ints carry 62 value bits, and base >= 1e-6 puts [base * 2^61]
       beyond 2e12 seconds — past any finite cap a policy can mean — so
       saturating the exponent at 61 keeps the shift defined for
       unbounded attempt counts without changing any reachable delay. *)
    let d =
      let e = min (attempt - 1) 61 in
      Float.min t.cap (t.base *. float_of_int (1 lsl e))
    in
    let rng = Prelude.Rng.create3 t.seed index attempt in
    (* Equal jitter: uniform in [d/2, d). *)
    (d /. 2.0) +. Prelude.Rng.float rng (d /. 2.0)
  end

let sleep seconds = if seconds > 0.0 then Unix.sleepf seconds
