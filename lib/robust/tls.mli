(** Domain-local storage with a portable interface.

    On OCaml >= 5.0 this is [Domain.DLS] (each pool worker domain gets its
    own slot); on 4.x — where the engine's pool is the sequential fallback
    and everything runs on one thread — a plain ref cell provides the same
    interface. Used by {!Context} to give each in-flight batch task an
    ambient (index, attempt, cancel-token) scope without threading it
    through every solver signature. *)

type 'a key

val new_key : (unit -> 'a) -> 'a key
(** [new_key init] allocates a slot; [init] produces the per-domain
    initial value. *)

val get : 'a key -> 'a
val set : 'a key -> 'a -> unit
