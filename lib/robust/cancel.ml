type t = {
  flag : bool Atomic.t;
  timeout : float option;  (* the armed duration, for the error payload *)
  deadline : float option;  (* absolute wall-clock expiry *)
  parent : t option;
}

let none = { flag = Atomic.make false; timeout = None; deadline = None; parent = None }

let create ?timeout ?parent () =
  (match timeout with
  | Some s when s <= 0.0 ->
      (invalid_arg "Robust.Cancel.create: timeout <= 0"
      [@sos.allow
        "R6: token-construction argument contract; the Failure taxonomy describes task \
         outcomes, not misuse of the resilience API itself"])
  | _ -> ());
  let deadline =
    Option.map
      (fun s ->
        (Prelude.Clock.now () [@sos.allow "A1: deadline arming reads the wall clock by design; cancellation timing never reaches solver output"])
        +. s)
      timeout
  in
  { flag = Atomic.make false; timeout; deadline; parent }

let cancel t = Atomic.set t.flag true

let rec cancelled t =
  Atomic.get t.flag || match t.parent with Some p -> cancelled p | None -> false

let rec check t =
  if Atomic.get t.flag then raise Failure.Cancel_requested;
  (match t.deadline with
  | Some d
    when (Prelude.Clock.now () [@sos.allow "A1: deadline check reads the wall clock by design; cancellation timing never reaches solver output"])
         > d ->
      raise (Failure.Deadline (Option.value t.timeout ~default:0.0))
  | _ -> ());
  match t.parent with Some p -> check p | None -> ()
