type invalid =
  | Nonpositive_req of { job : int; req : int }
  | Nonpositive_size of { job : int; size : int }
  | Too_few_processors of { m : int; need : int }
  | Bad_scale of int
  | Not_finite of { job : int; value : float }
  | Overflow of string
  | Malformed of string

type t =
  | Invalid_instance of invalid
  | Task_exn of exn * Printexc.raw_backtrace
  | Deadline_exceeded of float
  | Cancelled
  | Pool_crashed of string

exception Invalid of invalid
exception Deadline of float
exception Cancel_requested
exception Pool_down of string
exception Internal of string

let internal_error fmt = Printf.ksprintf (fun s -> raise (Internal s)) fmt

let invalid_to_string = function
  | Nonpositive_req { job; req } ->
      Printf.sprintf "job %d: resource requirement must be >= 1 unit (got %d)" job req
  | Nonpositive_size { job; size } ->
      Printf.sprintf "job %d: processing time must be >= 1 (got %d)" job size
  | Too_few_processors { m; need } ->
      Printf.sprintf "need m >= %d processors%s (got m = %d)" need
        (if need >= 3 then " for the window algorithm (Theorem 3.3)" else "")
        m
  | Bad_scale scale -> Printf.sprintf "resource scale must be >= 1 (got %d)" scale
  | Not_finite { job; value } ->
      Printf.sprintf "job %d: resource share must be finite (got %h)" job value
  | Overflow what -> Printf.sprintf "lower-bound overflow: %s" what
  | Malformed what -> what

let of_exn e bt =
  match e with
  | Invalid reason -> Invalid_instance reason
  | Deadline timeout -> Deadline_exceeded timeout
  | Cancel_requested -> Cancelled
  | Pool_down what -> Pool_crashed what
  | e -> Task_exn (e, bt)

let transient = function
  | Task_exn _ | Deadline_exceeded _ -> true
  | Invalid_instance _ | Cancelled | Pool_crashed _ -> false

let class_name = function
  | Invalid_instance _ -> "invalid-instance"
  | Task_exn _ -> "task-exn"
  | Deadline_exceeded _ -> "deadline"
  | Cancelled -> "cancelled"
  | Pool_crashed _ -> "pool-crashed"

let message = function
  | Invalid_instance reason -> invalid_to_string reason
  | Task_exn (e, _) -> Printexc.to_string e
  | Deadline_exceeded timeout -> Printf.sprintf "task exceeded its %gs deadline" timeout
  | Cancelled -> "cancelled before completion"
  | Pool_crashed what -> what

let to_string t = class_name t ^ ": " ^ message t

let backtrace_string = function
  | Task_exn (_, bt) -> Printexc.raw_backtrace_to_string bt
  | _ -> ""

(* Registered so that a [Invalid]/[Deadline] escaping to a generic
   [Printexc.to_string] consumer still prints a real message rather than a
   constructor dump. *)
let () =
  Printexc.register_printer (function
    | Invalid reason -> Some ("invalid instance: " ^ invalid_to_string reason)
    | Deadline timeout -> Some (Printf.sprintf "deadline exceeded (%gs)" timeout)
    | Cancel_requested -> Some "cancelled"
    | Pool_down what -> Some ("pool crashed: " ^ what)
    | Internal what -> Some ("internal invariant violated: " ^ what)
    | _ -> None)
