(** Small supervision helper: run a body, restart it on transient failure.

    This is the process-level sibling of {!Engine.Batch}'s per-task retry:
    a long-lived component (the scheduling service's per-connection
    handler, a worker loop) is run under a restart budget, and a crash
    that {!Failure.transient} classifies as retryable restarts the body
    after a deterministic {!Backoff} delay instead of taking the daemon
    down. Permanent failures (invalid input, cancellation, a crashed
    pool) are never restarted — restarting them would loop forever on the
    same answer.

    The helper is synchronous and single-threaded: it supervises the body
    it is given on the calling thread, nothing more. Determinism: which
    attempts run depends only on what the body raises; the backoff delays
    are pure functions of [(policy.seed, index, attempt)]. *)

type 'a outcome = {
  result : ('a, Failure.t) result;
      (** the first success, or the failure that exhausted the budget /
          was permanent *)
  attempts : int;  (** bodies started (1 = no restart happened) *)
}

val run :
  ?restarts:int ->
  ?backoff:Backoff.policy ->
  ?index:int ->
  ?should_restart:(Failure.t -> bool) ->
  ?on_restart:(attempt:int -> Failure.t -> unit) ->
  (unit -> 'a) ->
  'a outcome
(** [run body] evaluates [body ()] and returns its value; if it raises,
    the exception is classified ({!Failure.of_exn}) and the body is
    restarted — up to [restarts] extra times (default 0, negatives
    clamped), only while [should_restart] (default {!Failure.transient})
    accepts the failure, sleeping [Backoff.delay backoff ~index ~attempt]
    before each restart (no sleep if [backoff] is omitted). [on_restart]
    is called just before each restart with the 1-based attempt that
    failed. [index] (default 0) only keys the backoff jitter. *)
