(* Domain-local storage on OCaml >= 5.0. See tls.mli; the 4.x build
   substitutes tls_sequential.ml for this file. *)

[@@@sos.allow
"A1: Robust.Tls is the sanctioned DLS chokepoint; keys hold per-domain scratch (RNG splits, \
 trace buffers) that is re-derived deterministically per task, never from domain identity"]

type 'a key = 'a Domain.DLS.key

let new_key init = Domain.DLS.new_key init
let get = Domain.DLS.get
let set = Domain.DLS.set
