(* Domain-local storage on OCaml >= 5.0. See tls.mli; the 4.x build
   substitutes tls_sequential.ml for this file. *)

type 'a key = 'a Domain.DLS.key

let new_key init = Domain.DLS.new_key init
let get = Domain.DLS.get
let set = Domain.DLS.set
