(** Deterministic jittered backoff between retry attempts.

    Immediate retry hammers whatever made the first attempt fail — a
    transient-fault site, a congested resource — so the batch engine and
    the scheduling service space their retries out. The delay schedule is
    {e seeded}, not sampled from ambient randomness: attempt [a] of task
    [index] under a policy seeded with [seed] always sleeps the same
    duration, derived from [Rng.create3 (seed, index, attempt)] — never
    from domain identity or the wall clock — so a retried batch remains
    byte-identical at any [-j] and a retry trace is reproducible from the
    seed alone.

    The schedule is capped exponential with equal jitter: attempt [a]
    (1-based: the first retry is attempt 1) draws uniformly from
    [[d/2, d)] where [d = min cap (base * 2^(a-1))]. *)

type policy = private { seed : int; base : float; cap : float }

val policy : ?base:float -> ?cap:float -> seed:int -> unit -> policy
(** [policy ~seed ()] with [base] the first-retry delay ceiling in seconds
    (default 0.01) and [cap] the largest delay any attempt may draw
    (default 1.0). Out-of-range values are clamped, not rejected:
    [base] up to [1e-6], [cap] up to [base]. *)

val delay : policy -> index:int -> attempt:int -> float
(** The deterministic sleep before retry [attempt] (>= 1) of task
    [index], in seconds. A pure function of
    [(policy.seed, index, attempt)]. [attempt <= 0] yields [0.]. *)

val sleep : float -> unit
(** Sleep that many wall seconds ([<= 0.] is a no-op). *)
