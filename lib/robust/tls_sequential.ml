(* Single-threaded fallback for OCaml < 5.0 (no Domain module): one ref
   cell per key. The engine's pool is sequential on 4.x, so there is only
   ever one "domain". *)

type 'a key = 'a ref

let new_key init = ref (init ())
let get = ( ! )
let set k v = k := v
