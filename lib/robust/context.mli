(** Ambient per-task scope for the resilient batch engine.

    The engine wraps every task attempt in {!with_ctx}, which publishes
    the task's (submission index, retry attempt, cancel token) in
    domain-local storage. Library code deep inside a solver can then:

    - poll for cooperative cancellation / deadlines ({!poll}) without a
      token parameter threaded through every signature, and
    - derive deterministic per-attempt randomness or fault-injection
      decisions from [(index, attempt)] — never from domain identity — so
      runs stay byte-identical at any domain count.

    Outside any scope all reads are cheap no-ops: {!poll} is one atomic
    load when no scope is active anywhere in the process. *)

type t = private {
  index : int;  (** the task's submission index in its batch *)
  attempt : int;  (** 0-based retry attempt *)
  cancel : Cancel.t;
  hits : (string, int) Hashtbl.t;
      (** per-attempt chaos-site hit counters (see {!Chaos}); owned by the
          executing domain, never shared *)
}

val make : index:int -> attempt:int -> cancel:Cancel.t -> t

val with_ctx : t -> (unit -> 'a) -> 'a
(** Run the thunk with [t] as the current scope (restored on exit, also on
    exception; scopes nest). *)

val current : unit -> t option

val index : unit -> int
(** Current task index, [-1] outside any scope. *)

val attempt : unit -> int
(** Current retry attempt, [0] outside any scope. *)

val poll : unit -> unit
(** {!Cancel.check} on the current scope's token; no-op outside a scope.
    Cheap enough for a solver's per-step loop. *)
