(** Structured failure taxonomy for the resilient batch engine.

    Every way a batch task can fail is one of five classes, so entry points
    (sosctl, bench, the engine) report failures uniformly instead of
    stringifying whatever exception happened to escape:

    - {!Invalid_instance}: the input is ill-posed — rejected up front by
      the strict validator ({!Sos.Instance.validate}) with a machine-
      readable {!invalid} reason. Permanent: never retried.
    - {!Task_exn}: the task raised; the raw backtrace is captured at the
      raise site. Transient: eligible for bounded retry.
    - {!Deadline_exceeded}: the task tripped its cooperative per-task
      deadline (see {!Cancel}). Transient.
    - {!Cancelled}: the batch (or the task) was cooperatively cancelled.
      Permanent.
    - {!Pool_crashed}: the pool machinery itself is unusable (e.g. a batch
      submitted after shutdown). Permanent.

    The [Invalid], [Deadline], [Cancel_requested], and [Pool_down]
    exceptions are the raise-side carriers for the non-[Task_exn] classes;
    {!of_exn} maps any exception back onto the taxonomy. *)

(** Why an instance is ill-posed. [job] indices refer to the caller's spec
    order (0-based). *)
type invalid =
  | Nonpositive_req of { job : int; req : int }
      (** [r_j <= 0]: the paper requires every resource requirement to be
          a positive fraction of the shared resource. *)
  | Nonpositive_size of { job : int; size : int }  (** [p_j < 1]. *)
  | Too_few_processors of { m : int; need : int }
      (** [m < need]: [need = 2] structurally, [need = 3] when the window
          algorithm's Theorem 3.3 guarantee is required. *)
  | Bad_scale of int  (** resource resolution [scale < 1]. *)
  | Not_finite of { job : int; value : float }
      (** NaN or infinite resource share in a float spec. *)
  | Overflow of string
      (** An Equation (1) quantity ([Σ p_j], [Σ s_j = Σ p_j r_j], or
          [Σ r_j]) exceeds [max_int]; the lower bound would be silently
          negative. *)
  | Malformed of string  (** unparsable spec text. *)

type t =
  | Invalid_instance of invalid
  | Task_exn of exn * Printexc.raw_backtrace
  | Deadline_exceeded of float  (** the timeout that was exceeded, s. *)
  | Cancelled
  | Pool_crashed of string

exception Invalid of invalid
exception Deadline of float
exception Cancel_requested
exception Pool_down of string

exception Internal of string
(** A solver invariant broke (fuel exhausted, no progress, budget
    overrun): always a bug, never the workload's fault. Classified as
    {!Task_exn} by {!of_exn} so the batch engine reports it per-task
    like any other crash. Raise via {!internal_error}; hot paths must
    not use bare [failwith] (lint rule R6, doc/LINT.md). *)

val internal_error : ('a, unit, string, 'b) format4 -> 'a
(** [internal_error fmt ...] raises {!Internal} with the formatted
    message. *)

val of_exn : exn -> Printexc.raw_backtrace -> t
(** Classify a caught exception (pair it with
    [Printexc.get_raw_backtrace ()] taken immediately at the catch). *)

val transient : t -> bool
(** Eligible for bounded retry: [Task_exn] and [Deadline_exceeded].
    Invalid input, cancellation, and a crashed pool are permanent. *)

val class_name : t -> string
(** Stable one-token class label for structured output lines:
    ["invalid-instance"], ["task-exn"], ["deadline"], ["cancelled"],
    ["pool-crashed"]. *)

val invalid_to_string : invalid -> string

val message : t -> string
(** Human-readable detail without the class prefix. *)

val to_string : t -> string
(** [class_name ^ ": " ^ message]. *)

val backtrace_string : t -> string
(** The captured backtrace of a [Task_exn] (may be [""] when backtrace
    recording is off); [""] for every other class. *)
