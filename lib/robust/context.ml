type t = {
  index : int;
  attempt : int;
  cancel : Cancel.t;
  hits : (string, int) Hashtbl.t;
}

let key : t option Tls.key = Tls.new_key (fun () -> None)

(* Process-wide count of live scopes: lets [poll]/[current] short-circuit
   to a single atomic load when no batch is running anywhere. *)
let active = Atomic.make 0

let make ~index ~attempt ~cancel = { index; attempt; cancel; hits = Hashtbl.create 4 }

let with_ctx ctx f =
  let prev = Tls.get key in
  Tls.set key (Some ctx);
  Atomic.incr active;
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr active;
      Tls.set key prev)
    f

let current () = if Atomic.get active = 0 then None else Tls.get key

let index () = match current () with Some c -> c.index | None -> -1
let attempt () = match current () with Some c -> c.attempt | None -> 0

let poll () =
  if Atomic.get active > 0 then
    match Tls.get key with None -> () | Some c -> Cancel.check c.cancel
