type order = Submission | Shortest_first

let run ?(order = Shortest_first) inst =
  let tasks = Array.to_list inst.Sas_instance.tasks in
  let tasks =
    match order with
    | Submission -> tasks
    | Shortest_first ->
        List.sort
          (fun a b -> compare (Task.total_req a, a.Task.id) (Task.total_req b, b.Task.id))
          tasks
  in
  let completions = Array.make (Sas_instance.k inst) 0 in
  let clock = ref 0 in
  List.iter
    (fun task ->
      let jobs = Array.to_list (Array.map (fun r -> (1, r)) task.Task.reqs) in
      let sub =
        Sos.Instance.create ~m:inst.Sas_instance.m ~scale:inst.Sas_instance.scale jobs
      in
      let sched = Sos.Fast.run sub in
      clock := !clock + sched.Sos.Schedule.makespan;
      completions.(task.Task.id) <- !clock)
    tasks;
  (completions, Array.fold_left ( + ) 0 completions)
