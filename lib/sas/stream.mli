(** The budgeted task-stream scheduler underlying Listings 3 and 4.

    Tasks are processed strictly in the given order (the caller sorts: by
    non-decreasing total requirement for [T1]/Listing 3, by non-decreasing
    job count for [T2]/Listing 4). In each time step the scheduler

    + first completes whole tasks as long as the next task's remaining
      requirement fits in the leftover budget and its remaining jobs fit on
      the leftover processors (the transition loop of Listing 3/4, lines
      2–4);
    + then runs the sliding-window step of the unit-size engine on the
      first task that does not fit entirely, with processor count capped at
      [min(procs_left, ⌊budget_left·(m−1)/budget⌋ + 1)] (line 5 of
      Listing 4) and the leftover budget.

    Completion time of a task = the step in which its last job finishes. *)

type alloc = { task : int; item : int; amount : int }
(** [task] = position in the input order; [item] = job index within the
    task; [amount] in resource units. *)

type result = {
  completions : int array;  (** per input-order task position, ≥ 1 *)
  steps : alloc list list;  (** per time step *)
  makespan : int;
}

val run : m:int -> budget:int -> Task.t list -> result
(** Raises [Invalid_argument] if [m < 2] or [budget < 1]. Tasks are taken
    in list order. *)

val sum_completions : result -> int

val check : m:int -> budget:int -> Task.t list -> result -> (unit, string) Stdlib.result
(** Independent audit of a result against the model: per step at most
    [budget] resource and [m] jobs, a job allocated at most once per step,
    work conserved per (task, job), tasks touched in order (no allocation
    to task [i+1] in a step before task [i]'s completion step), and the
    recorded completion of every task equals the last step that allocates
    to it. *)
