(** A SAS problem instance: [m] processors, one shared resource with
    fixed-point [scale], and a set of tasks of unit-size jobs. The objective
    is the sum (equivalently average) of task completion times. *)

type t = private {
  m : int;  (** ≥ 4 so that both halves of the split get ≥ 2 processors *)
  scale : int;
  tasks : Task.t array;  (** task [i] has [id = i] *)
}

val create : m:int -> scale:int -> int list list -> t
(** [create ~m ~scale reqss] builds one task per inner list of per-job
    requirements (in units of [1/scale]). Raises [Invalid_argument] if
    [m < 4], [scale < 1], or any task is malformed. *)

val k : t -> int
(** Number of tasks. *)

val total_jobs : t -> int

val partition : t -> Task.t list * Task.t list
(** [(T1, T2)]: high-requirement tasks (avg job requirement > 1/(m−1))
    and the rest (Section 4.2). *)

val normalize_scale : t -> t
(** Rescales so that [scale] is divisible by [2·(m−1)], making the
    combined algorithm's budgets [(⌊m/2⌋−1)/(m−1)] and [1/2] exact. *)

val flat_sos : t -> Sos.Instance.t
(** All jobs of all tasks as one unit-size SoS instance (used to validate
    merged schedules); job order = task-major. *)

val pp : Format.formatter -> t -> unit
