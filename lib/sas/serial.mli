(** Naive SAS baseline: run one task at a time on the full machine with the
    SoS window engine, in a chosen task order. The obvious operator policy
    the Theorem 4.8 split improves on (no cross-task parallelism, so small
    tasks wait behind big ones unless sorted — and even sorted, half the
    machine idles on low-requirement tasks). *)

type order =
  | Submission  (** task id order *)
  | Shortest_first  (** by total requirement, then id — SPT-style *)

val run : ?order:order -> Sas_instance.t -> int array * int
(** [(completions per task id, sum of completions)]. Default
    {!Shortest_first} (the strongest serial policy). *)
