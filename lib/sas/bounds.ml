let ceil_div a b = if a <= 0 then 0 else ((a - 1) / b) + 1

let prefix_sum_bound values divisor =
  let sorted = List.sort compare values in
  let _, total =
    List.fold_left
      (fun (prefix, acc) v ->
        let prefix = prefix + v in
        (prefix, acc + ceil_div prefix divisor))
      (0, 0) sorted
  in
  total

let resource_order_bound ~scale tasks =
  prefix_sum_bound (List.map Task.total_req tasks) scale

let count_order_bound ~m tasks = prefix_sum_bound (List.map Task.size tasks) m

let lower_bound ~m ~scale tasks =
  let k = List.length tasks in
  max k (max (resource_order_bound ~scale tasks) (count_order_bound ~m tasks))

let guarantee ~m =
  if m < 4 then invalid_arg "Sas.Bounds.guarantee: need m >= 4";
  2.0 +. (4.0 /. float_of_int (m - 3))

let prefix_bounds values divisor =
  let acc = ref 0 in
  Array.of_list
    (List.map
       (fun v ->
         acc := !acc + v;
         ceil_div !acc divisor)
       values)

let listing3_completion_bounds ~budget tasks =
  prefix_bounds (List.map Task.total_req tasks) budget

let listing4_completion_bounds ~m tasks =
  prefix_bounds (List.map Task.size tasks) (m - 1)
