type t = { id : int; reqs : int array }

let v ~id reqs =
  if reqs = [] then invalid_arg "Task.v: empty task";
  List.iter (fun r -> if r <= 0 then invalid_arg "Task.v: non-positive requirement") reqs;
  { id; reqs = Array.of_list reqs }

let size t = Array.length t.reqs
let total_req t = Array.fold_left ( + ) 0 t.reqs

(* |T| / r(T) < m−1  ⇔  |T| · scale < (m−1) · r(T), with r(T) in units. *)
let is_high t ~m ~scale = size t * scale < (m - 1) * total_req t

let pp ppf t =
  Format.fprintf ppf "task%d(|T|=%d, r(T)=%d)" t.id (size t) (total_req t)
