(** Lower bounds on the optimal sum of completion times (Lemma 4.3) and the
    guarantee formulas of Section 4. *)

val resource_order_bound : scale:int -> Task.t list -> int
(** Lemma 4.3 (a): with tasks sorted by non-decreasing total requirement,
    [OPT ≥ Σ_i ⌈Σ_{l≤i} r(T_l)⌉] — the resource delivers at most 1 per
    step, and sorting minimizes the prefix sums. (The input need not be
    sorted; this function sorts.) *)

val count_order_bound : m:int -> Task.t list -> int
(** Lemma 4.3 (b): with tasks sorted by non-decreasing job count,
    [OPT ≥ Σ_i ⌈(Σ_{l≤i} |T_l|) / m⌉] — at most [m] jobs finish per step. *)

val lower_bound : m:int -> scale:int -> Task.t list -> int
(** [max] of the two bounds above and the trivial [k] (every completion
    time is ≥ 1). *)

val guarantee : m:int -> float
(** Theorem 4.8's factor [2 + 4/(m−3)] (requires m ≥ 4; the o(1) additive
    term vanishes with the number of tasks). *)

val listing3_completion_bounds : budget:int -> Task.t list -> int array
(** Lemma 4.1: in input order (sorted by the caller), task [i]'s completion
    time is claimed ≤ [⌈Σ_{l≤i} r(T_l) / R⌉]. Returned per input position. *)

val listing4_completion_bounds : m:int -> Task.t list -> int array
(** Lemma 4.2: task [i]'s completion time is claimed ≤
    [⌈Σ_{l≤i} |T_l| / (m−1)⌉]. *)
