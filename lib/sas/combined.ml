(* Entry-point telemetry for the Theorem 4.8 combined scheduler
   (doc/OBSERVABILITY.md). *)
let c_runs = Obs.Metrics.counter "sas.combined.runs"
let c_t1 = Obs.Metrics.counter "sas.combined.t1_tasks"
let c_t2 = Obs.Metrics.counter "sas.combined.t2_tasks"
let t_run = Obs.Metrics.timer "sas.combined.run"

type report = {
  instance : Sas_instance.t;
  completions : int array;
  sum_completions : int;
  makespan : int;
  lower_bound : int;
  t1_count : int;
  t2_count : int;
  schedule : Sos.Schedule.t;
}

let sort_for_listing3 tasks =
  List.sort
    (fun a b -> compare (Task.total_req a, a.Task.id) (Task.total_req b, b.Task.id))
    tasks

let sort_for_listing4 tasks =
  List.sort (fun a b -> compare (Task.size a, a.Task.id) (Task.size b, b.Task.id)) tasks

let run_listing3 ~m ~budget tasks = Stream.run ~m ~budget (sort_for_listing3 tasks)
let run_listing4 ~m ~budget tasks = Stream.run ~m ~budget (sort_for_listing4 tasks)

let run raw =
  Obs.Metrics.time t_run @@ fun () ->
  Obs.Metrics.incr c_runs;
  Robust.Context.poll ();
  Robust.Chaos.point "sas.combined.run";
  let inst = Sas_instance.normalize_scale raw in
  let m = inst.Sas_instance.m and scale = inst.Sas_instance.scale in
  let t1, t2 = Sas_instance.partition inst in
  Obs.Metrics.add c_t1 (List.length t1);
  Obs.Metrics.add c_t2 (List.length t2);
  let m1 = m / 2 in
  let m2 = m - m1 in
  let budget1 = (m1 - 1) * scale / (m - 1) in
  let budget2 = scale / 2 in
  let t1_sorted = sort_for_listing3 t1 in
  let t2_sorted = sort_for_listing4 t2 in
  let r1 = Stream.run ~m:m1 ~budget:budget1 t1_sorted in
  let r2 = Stream.run ~m:m2 ~budget:budget2 t2_sorted in
  let k = Sas_instance.k inst in
  let completions = Array.make k 0 in
  List.iteri
    (fun pos task -> completions.(task.Task.id) <- r1.Stream.completions.(pos))
    t1_sorted;
  List.iteri
    (fun pos task -> completions.(task.Task.id) <- r2.Stream.completions.(pos))
    t2_sorted;
  (* Merge the two parallel step sequences into one global schedule over the
     flattened unit-job instance. *)
  let flat = Sas_instance.flat_sos inst in
  let offsets = Array.make k 0 in
  let (_ : int) =
    Array.fold_left
      (fun acc task ->
        offsets.(task.Task.id) <- acc;
        acc + Task.size task)
      0 inst.Sas_instance.tasks
  in
  let sorted_pos = Array.make (Sos.Instance.n flat) 0 in
  Array.iteri (fun s orig -> sorted_pos.(orig) <- s) flat.Sos.Instance.original;
  let ids_of order = Array.of_list (List.map (fun task -> task.Task.id) order) in
  let t1_ids = ids_of t1_sorted and t2_ids = ids_of t2_sorted in
  let global_alloc ids (a : Stream.alloc) =
    let caller_pos = offsets.(ids.(a.Stream.task)) + a.Stream.item in
    { Sos.Schedule.job = sorted_pos.(caller_pos); assigned = a.Stream.amount;
      consumed = a.Stream.amount }
  in
  let rec merge s1 s2 acc =
    Robust.Context.poll ();
    match (s1, s2) with
    | [], [] -> List.rev acc
    | a1 :: r1', s2 ->
        let a2, r2' = (match s2 with a :: r -> (a, r) | [] -> ([], [])) in
        let allocs =
          List.map (global_alloc t1_ids) a1 @ List.map (global_alloc t2_ids) a2
        in
        merge r1' r2' ({ Sos.Schedule.allocs; repeat = 1 } :: acc)
    | [], a2 :: r2' ->
        let allocs = List.map (global_alloc t2_ids) a2 in
        merge [] r2' ({ Sos.Schedule.allocs; repeat = 1 } :: acc)
  in
  let steps = merge r1.Stream.steps r2.Stream.steps [] in
  let schedule = Sos.Schedule.make flat steps in
  {
    instance = inst;
    completions;
    sum_completions = Array.fold_left ( + ) 0 completions;
    makespan = max r1.Stream.makespan r2.Stream.makespan;
    lower_bound =
      Bounds.lower_bound ~m ~scale (Array.to_list inst.Sas_instance.tasks);
    t1_count = List.length t1;
    t2_count = List.length t2;
    schedule;
  }

let ratio report =
  if report.lower_bound = 0 then
    if report.sum_completions = 0 then 1.0 else infinity
  else float_of_int report.sum_completions /. float_of_int report.lower_bound
