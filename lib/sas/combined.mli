(** The Theorem 4.8 algorithm: split the tasks into [T1] (high average
    requirement) and [T2], schedule [T1] with Listing 3 on [⌊m/2⌋]
    processors and resource budget [(⌊m/2⌋−1)/(m−1)], ordered by
    non-decreasing total requirement, and [T2] with Listing 4 on [⌈m/2⌉]
    processors and budget [1/2], ordered by non-decreasing job count — in
    parallel. Guarantee: sum of completion times
    ≤ ((2 + 4/(m−3)) + o(1)) · OPT, the o(1) in the number of tasks. *)

type report = {
  instance : Sas_instance.t;  (** normalized (scale divisible by 2(m−1)) *)
  completions : int array;  (** per original task id *)
  sum_completions : int;
  makespan : int;
  lower_bound : int;  (** Lemma 4.3 on the full task set *)
  t1_count : int;
  t2_count : int;
  schedule : Sos.Schedule.t;  (** merged, against {!Sas_instance.flat_sos} *)
}

val run : Sas_instance.t -> report
(** Raises [Invalid_argument] if [m < 4] (enforced by {!Sas_instance}). *)

val ratio : report -> float
(** [sum_completions / lower_bound]. *)

val sort_for_listing3 : Task.t list -> Task.t list
(** Non-decreasing total requirement (Lemma 4.1's order). *)

val sort_for_listing4 : Task.t list -> Task.t list
(** Non-decreasing job count (Lemma 4.2's order). *)

val run_listing3 : m:int -> budget:int -> Task.t list -> Stream.result
(** Listing 3 alone: the given tasks sorted by non-decreasing [r(T)]. *)

val run_listing4 : m:int -> budget:int -> Task.t list -> Stream.result
(** Listing 4 alone: the given tasks sorted by non-decreasing [|T|]. *)
