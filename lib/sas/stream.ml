module Splittable = Sos.Splittable

type alloc = { task : int; item : int; amount : int }

type result = {
  completions : int array;
  steps : alloc list list;
  makespan : int;
}

type task_state = {
  pos : int;
  mutable items : Splittable.item list;  (* remaining jobs, sorted by size *)
}

let run ~m ~budget tasks =
  if m < 2 then invalid_arg "Stream.run: need m >= 2";
  if budget < 1 then invalid_arg "Stream.run: need budget >= 1";
  let states =
    List.mapi
      (fun pos task ->
        let items =
          Array.to_list
            (Array.mapi (fun i r -> { Splittable.id = i; size = r }) task.Task.reqs)
        in
        { pos; items = Splittable.sort_items items })
      tasks
  in
  let k = List.length states in
  let completions = Array.make k 0 in
  let steps = ref [] in
  let queue = ref states in
  let t = ref 0 in
  let total_work =
    List.fold_left (fun acc task -> acc + Task.total_req task) 0 tasks
  in
  let fuel = ref (total_work + (2 * k) + 4) in
  while !queue <> [] do
    Robust.Context.poll ();
    incr t;
    decr fuel;
    if !fuel < 0 then Robust.Failure.internal_error "Stream.run: no progress";
    let budget_left = ref budget in
    let procs_left = ref m in
    let step_allocs = ref [] in
    (* Transition loop: finish whole tasks while they fit entirely. *)
    let rec finish_whole () =
      match !queue with
      | st :: rest ->
          let total = List.fold_left (fun acc it -> acc + it.Splittable.size) 0 st.items in
          let count = List.length st.items in
          if total <= !budget_left && count <= !procs_left then begin
            List.iter
              (fun it ->
                step_allocs :=
                  { task = st.pos; item = it.Splittable.id; amount = it.Splittable.size }
                  :: !step_allocs)
              st.items;
            st.items <- [];
            budget_left := !budget_left - total;
            procs_left := !procs_left - count;
            completions.(st.pos) <- !t;
            queue := rest;
            finish_whole ()
          end
      | [] -> ()
    in
    finish_whole ();
    (* Sliding-window step on the first task that does not fit entirely. *)
    (match !queue with
    | st :: rest when !procs_left >= 1 && !budget_left >= 1 ->
        let size = min !procs_left ((!budget_left * (m - 1) / budget) + 1) in
        let allocs, items' = Splittable.step st.items ~size ~budget:!budget_left in
        List.iter
          (fun (item, amount) -> step_allocs := { task = st.pos; item; amount } :: !step_allocs)
          allocs;
        st.items <- items';
        if items' = [] then begin
          completions.(st.pos) <- !t;
          queue := rest
        end
    | _ -> ());
    steps := List.rev !step_allocs :: !steps
  done;
  { completions; steps = List.rev !steps; makespan = !t }

let sum_completions r = Array.fold_left ( + ) 0 r.completions

let check ~m ~budget tasks result =
  let k = List.length tasks in
  let reqs = Array.of_list (List.map (fun t -> Array.copy t.Task.reqs) tasks) in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let rec steps_loop t = function
    | [] ->
        let rec items_loop task =
          if task >= k then Ok ()
          else begin
            let leftover = Array.fold_left ( + ) 0 reqs.(task) in
            if leftover <> 0 then err "task %d: %d units unscheduled" task leftover
            else items_loop (task + 1)
          end
        in
        items_loop 0
    | allocs :: rest -> begin
        let used = List.fold_left (fun acc a -> acc + a.amount) 0 allocs in
        let jobs = List.length allocs in
        let keys = List.map (fun a -> (a.task, a.item)) allocs in
        if used > budget then err "step %d: budget overused (%d > %d)" t used budget
        else if jobs > m then err "step %d: %d jobs > m=%d" t jobs m
        else if List.length (List.sort_uniq compare keys) <> jobs then
          err "step %d: duplicate allocation" t
        else begin
          let bad =
            List.find_opt
              (fun a ->
                a.task < 0 || a.task >= k || a.amount <= 0
                || a.item < 0
                || a.item >= Array.length reqs.(a.task)
                || reqs.(a.task).(a.item) < a.amount)
              allocs
          in
          match bad with
          | Some a -> err "step %d: bad allocation task=%d item=%d amount=%d" t a.task a.item a.amount
          | None ->
              List.iter
                (fun a -> reqs.(a.task).(a.item) <- reqs.(a.task).(a.item) - a.amount)
                allocs;
              steps_loop (t + 1) rest
        end
      end
  in
  match steps_loop 1 result.steps with
  | Error _ as e -> e
  | Ok () ->
      (* completion = last allocating step; tasks complete in order. *)
      let last = Array.make k 0 in
      List.iteri
        (fun idx allocs -> List.iter (fun a -> last.(a.task) <- idx + 1) allocs)
        result.steps;
      let rec check_tasks i =
        if i >= k then Ok ()
        else if last.(i) <> result.completions.(i) then
          err "task %d: completion %d but last allocation at %d" i
            result.completions.(i) last.(i)
        else if i > 0 && result.completions.(i) < result.completions.(i - 1) then
          err "task %d completes before task %d (stream order violated)" i (i - 1)
        else check_tasks (i + 1)
      in
      check_tasks 0
