(** Tasks of the Shared Resource Task-Scheduling problem (Section 4).

    A task is a set of unit-size jobs, each with its own resource
    requirement; it completes when its last job completes. Requirements are
    in fixed-point units of the owning instance's scale. *)

type t = private {
  id : int;  (** position in the caller's task list *)
  reqs : int array;  (** per-job requirements, all ≥ 1; non-empty *)
}

val v : id:int -> int list -> t
(** Raises [Invalid_argument] on an empty job list or non-positive
    requirement. *)

val size : t -> int
(** [|T|]: number of jobs. *)

val total_req : t -> int
(** [r(T) = Σ_j r_j] in units. *)

val is_high : t -> m:int -> scale:int -> bool
(** Section 4.2's classification: [T ∈ T1] iff [|T| / r(T) < m − 1] with
    [r(T)] as a fraction of the resource — computed exactly in units as
    [|T| · scale < (m−1) · r(T)]. High-requirement tasks go to [T1]. *)

val pp : Format.formatter -> t -> unit
