type t = { m : int; scale : int; tasks : Task.t array }

let create ~m ~scale reqss =
  if m < 4 then invalid_arg "Sas_instance.create: need m >= 4";
  if scale < 1 then invalid_arg "Sas_instance.create: need scale >= 1";
  let tasks = List.mapi (fun id reqs -> Task.v ~id reqs) reqss in
  { m; scale; tasks = Array.of_list tasks }

let k t = Array.length t.tasks
let total_jobs t = Array.fold_left (fun acc task -> acc + Task.size task) 0 t.tasks

let partition t =
  let high, low =
    List.partition
      (fun task -> Task.is_high task ~m:t.m ~scale:t.scale)
      (Array.to_list t.tasks)
  in
  (high, low)

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
[@@sos.allow "A2: Euclid's algorithm terminates in O(log min(a,b)) divisions; no poll needed"]

let normalize_scale t =
  let want = 2 * (t.m - 1) in
  let factor = want / gcd t.scale want in
  if factor = 1 then t
  else
    {
      t with
      scale = t.scale * factor;
      tasks =
        Array.map
          (fun task ->
            Task.v ~id:task.Task.id
              (Array.to_list (Array.map (fun r -> r * factor) task.Task.reqs)))
          t.tasks;
    }

let flat_sos t =
  let specs =
    Array.to_list t.tasks
    |> List.concat_map (fun task ->
           Array.to_list (Array.map (fun r -> (1, r)) task.Task.reqs))
  in
  Sos.Instance.create ~m:t.m ~scale:t.scale specs

let pp ppf t =
  Format.fprintf ppf "@[<v>sas m=%d scale=%d k=%d@," t.m t.scale (k t);
  Array.iter (fun task -> Format.fprintf ppf "  %a@," Task.pp task) t.tasks;
  Format.fprintf ppf "@]"
