type alloc = { job : int; assigned : int; consumed : int }
type step = { allocs : alloc list; repeat : int }
type t = { inst : Instance.t; steps : step list; makespan : int }

let make inst steps =
  let makespan =
    List.fold_left
      (fun acc st ->
        if st.repeat <= 0 then invalid_arg "Schedule.make: non-positive repeat";
        acc + st.repeat)
      0 steps
  in
  { inst; steps; makespan }

let empty inst = { inst; steps = []; makespan = 0 }

let of_blocks inst blocks ~len =
  if len < 0 || len > Array.length blocks then
    invalid_arg "Schedule.of_blocks: len out of range";
  (* One backward pass: builds the step list in time order and sums the
     makespan without an intermediate reversed list. *)
  let makespan = ref 0 in
  let steps = ref [] in
  for i = len - 1 downto 0 do
    let st = blocks.(i) in
    if st.repeat <= 0 then invalid_arg "Schedule.of_blocks: non-positive repeat";
    makespan := !makespan + st.repeat;
    steps := st :: !steps
  done;
  { inst; steps = !steps; makespan = !makespan }

(* ------------------------------------------------------- RLE iteration *)

(* Everything below is built on these two: one pass over the run-length
   encoded blocks, O(|allocs|) work per block, never per expanded step.
   [t0] is the expanded time index of the block's first step. *)

let fold_segments t ~init ~f =
  let acc, _ =
    List.fold_left
      (fun (acc, t0) st -> (f acc ~t0 ~repeat:st.repeat st.allocs, t0 + st.repeat))
      (init, 0) t.steps
  in
  acc

let segments t =
  let rec go t0 steps () =
    match steps with
    | [] -> Seq.Nil
    | st :: rest -> Seq.Cons ((t0, st.repeat, st.allocs), go (t0 + st.repeat) rest)
  in
  go 0 t.steps

(* ----------------------------------------------------------- validation *)

type violation = { at_step : int; reason : string }

let violation at_step fmt = Format.kasprintf (fun reason -> { at_step; reason }) fmt

exception Bad of violation

let validate ?(preemption_ok = false) t =
  let inst = t.inst in
  let n = Instance.n inst in
  let remaining = Array.init n (fun i -> Job.s (Instance.job inst i)) in
  let first_seen = Array.make n (-1) in
  let last_seen = Array.make n (-1) in
  let steps_seen = Array.make n 0 in
  try
    fold_segments t ~init:() ~f:(fun () ~t0 ~repeat allocs ->
        let seen = Hashtbl.create 8 in
        let count = ref 0 in
        let total_assigned =
          List.fold_left
            (fun acc a ->
              incr count;
              if a.job < 0 || a.job >= n then
                raise (Bad (violation t0 "allocation for unknown job %d" a.job));
              if Hashtbl.mem seen a.job then
                raise (Bad (violation t0 "job %d allocated twice in one step" a.job));
              Hashtbl.add seen a.job ();
              if a.assigned < 0 then
                raise (Bad (violation t0 "job %d: negative assignment" a.job));
              if a.consumed < 0 then
                raise (Bad (violation t0 "job %d: negative consumption" a.job));
              let r = (Instance.job inst a.job).Job.req in
              let cap = min a.assigned r in
              if a.consumed > cap then
                raise
                  (Bad
                     (violation t0 "job %d: consumed %d > min(assigned=%d, r=%d)"
                        a.job a.consumed a.assigned r));
              let used = repeat * a.consumed in
              if used > remaining.(a.job) then
                raise
                  (Bad
                     (violation t0 "job %d: over-consumed (%d > remaining %d)" a.job
                        used remaining.(a.job)));
              remaining.(a.job) <- remaining.(a.job) - used;
              if a.consumed < cap && (repeat > 1 || remaining.(a.job) <> 0) then
                raise
                  (Bad
                     (violation t0
                        "job %d: under-consumed (%d < %d) outside its finishing step"
                        a.job a.consumed cap));
              if first_seen.(a.job) < 0 then first_seen.(a.job) <- t0;
              last_seen.(a.job) <- t0 + repeat - 1;
              steps_seen.(a.job) <- steps_seen.(a.job) + repeat;
              acc + a.assigned)
            0 allocs
        in
        if total_assigned > inst.Instance.scale then
          raise
            (Bad
               (violation t0 "resource overused: %d > scale %d" total_assigned
                  inst.Instance.scale));
        if !count > inst.Instance.m then
          raise
            (Bad (violation t0 "too many jobs in one step: %d > m=%d" !count inst.Instance.m)));
    for j = 0 to n - 1 do
      if remaining.(j) <> 0 then
        raise (Bad (violation (-1) "job %d not finished: %d units left" j remaining.(j)));
      if (not preemption_ok) && steps_seen.(j) <> last_seen.(j) - first_seen.(j) + 1
      then
        raise
          (Bad
             (violation (-1) "job %d preempted: present %d of steps [%d..%d]" j
                steps_seen.(j) first_seen.(j) last_seen.(j)))
    done;
    Ok ()
  with Bad v -> Error v

let assert_valid ?preemption_ok t =
  match validate ?preemption_ok t with
  | Ok () -> ()
  | Error v -> failwith (Printf.sprintf "invalid schedule at step %d: %s" v.at_step v.reason)

let processor_assignment =
  let full_validate = validate in
  fun ?(validate = true) t ->
  (if validate then
     match full_validate t with
     | Ok () -> ()
     | Error v ->
         Robust.Failure.internal_error "processor_assignment: invalid schedule at %d: %s"
           v.at_step v.reason);
  let inst = t.inst in
  let n = Instance.n inst in
  let proc_of = Array.make n (-1) in
  let free = Queue.create () in
  for p = inst.Instance.m - 1 downto 0 do
    Queue.push p free
  done;
  let remaining = Array.init n (fun i -> Job.s (Instance.job inst i)) in
  let result = ref [] in
  fold_segments t ~init:() ~f:(fun () ~t0 ~repeat allocs ->
      (* Assign processors to jobs appearing for the first time. *)
      List.iter
        (fun a ->
          if proc_of.(a.job) < 0 then begin
            if Queue.is_empty free then
              Robust.Failure.internal_error "processor_assignment: no free processor";
            let p = Queue.pop free in
            proc_of.(a.job) <- p;
            result := (a.job, p, t0) :: !result
          end)
        allocs;
      (* Release processors of jobs that finish within this block. *)
      List.iter
        (fun a ->
          remaining.(a.job) <- remaining.(a.job) - (repeat * a.consumed);
          if remaining.(a.job) = 0 then Queue.push proc_of.(a.job) free)
        allocs);
  List.rev !result

let expand t =
  {
    t with
    steps =
      List.concat_map
        (fun st -> List.init st.repeat (fun _ -> { st with repeat = 1 }))
        t.steps;
  }

let job_spans t =
  let n = Instance.n t.inst in
  let first = Array.make n (-1) and last = Array.make n (-1) in
  fold_segments t ~init:() ~f:(fun () ~t0 ~repeat allocs ->
      List.iter
        (fun a ->
          if first.(a.job) < 0 then first.(a.job) <- t0;
          last.(a.job) <- t0 + repeat - 1)
        allocs);
  List.filter_map
    (fun j -> if first.(j) >= 0 then Some (j, first.(j), last.(j)) else None)
    (List.init n Fun.id)

let completion_times t =
  let n = Instance.n t.inst in
  let remaining = Array.init n (fun i -> Job.s (Instance.job t.inst i)) in
  let completion = Array.make n 0 in
  fold_segments t ~init:() ~f:(fun () ~t0 ~repeat allocs ->
      List.iter
        (fun a ->
          if a.consumed > 0 && remaining.(a.job) > 0 then begin
            let before = remaining.(a.job) in
            remaining.(a.job) <- before - (repeat * a.consumed);
            if remaining.(a.job) <= 0 then begin
              (* finished within this block: at its ⌈before/consumed⌉-th
                 repetition *)
              let reps = ((before - 1) / a.consumed) + 1 in
              completion.(a.job) <- t0 + reps
            end
          end)
        allocs);
  Array.iteri
    (fun j c ->
      if c = 0 && Job.s (Instance.job t.inst j) > 0 then
        invalid_arg "Schedule.completion_times: job never completes")
    completion;
  completion

let sum_completion_times t = Array.fold_left ( + ) 0 (completion_times t)

let mean_completion_time t =
  let n = Instance.n t.inst in
  if n = 0 then 0.0 else float_of_int (sum_completion_times t) /. float_of_int n

(* -------------------------------------------------- step-function views *)

type 'a profile = (int * int * 'a) array

let profile_make t f =
  (* One value per RLE block, adjacent equal values merged: |profile| ≤
     |steps|, and often much smaller (long constant phases). *)
  let segs = ref [] and count = ref 0 in
  fold_segments t ~init:() ~f:(fun () ~t0 ~repeat allocs ->
      let v = f allocs in
      match !segs with
      | (pt0, plen, pv) :: rest when pv = v && pt0 + plen = t0 ->
          segs := (pt0, plen + repeat, v) :: rest
      | _ ->
          segs := (t0, repeat, v) :: !segs;
          incr count);
  let out = Array.make !count (0, 0, f []) in
  List.iteri (fun i seg -> out.(!count - 1 - i) <- seg) !segs;
  out

let profile_length (p : _ profile) =
  match Array.length p with
  | 0 -> 0
  | k ->
      let t0, len, _ = p.(k - 1) in
      t0 + len

let to_dense ?cap ~default (p : 'a profile) =
  let total = profile_length p in
  let n = match cap with Some c -> min (max c 0) total | None -> total in
  let out = Array.make n default in
  Array.iter
    (fun (t0, len, v) ->
      for i = t0 to min (t0 + len) n - 1 do
        out.(i) <- v
      done)
    p;
  out

let utilization t =
  let scale = float_of_int t.inst.Instance.scale in
  profile_make t (fun allocs ->
      float_of_int (List.fold_left (fun acc a -> acc + a.consumed) 0 allocs) /. scale)

let assigned_utilization t =
  let scale = float_of_int t.inst.Instance.scale in
  profile_make t (fun allocs ->
      float_of_int (List.fold_left (fun acc a -> acc + a.assigned) 0 allocs) /. scale)

let jobs_per_step t = profile_make t List.length

let total_waste t =
  fold_segments t ~init:0 ~f:(fun acc ~t0:_ ~repeat allocs ->
      acc + (repeat * List.fold_left (fun acc a -> acc + (a.assigned - a.consumed)) 0 allocs))

(* -------------------------------------------------------------- display *)

let job_glyph j =
  let letters = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ" in
  letters.[j mod String.length letters]

let render_gantt ?(max_width = 120) t =
  let m = t.inst.Instance.m in
  let width = min t.makespan max_width in
  let grid = Array.make_matrix m width '.' in
  let proc_of = Array.make (Instance.n t.inst) (-1) in
  List.iter (fun (j, p, _) -> proc_of.(j) <- p) (processor_assignment ~validate:false t);
  (* Only the blocks that intersect the visible columns are walked: the
     render cost is O(m·max_width), independent of the makespan. *)
  Seq.iter
    (fun (t0, repeat, allocs) ->
      let hi = min (t0 + repeat) width - 1 in
      List.iter
        (fun a ->
          if proc_of.(a.job) >= 0 then
            for i = t0 to hi do
              grid.(proc_of.(a.job)).(i) <- job_glyph a.job
            done)
        allocs)
    (Seq.take_while (fun (t0, _, _) -> t0 < width) (segments t));
  let buf = Buffer.create ((m + 1) * (width + 8)) in
  for p = 0 to m - 1 do
    Buffer.add_string buf (Printf.sprintf "p%-2d " p);
    Array.iter (Buffer.add_char buf) grid.(p);
    if t.makespan > width then Buffer.add_string buf " ...";
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf "schedule(makespan=%d, steps=%d, waste=%d)" t.makespan
    (List.length t.steps) (total_waste t)
