(** Machine-readable exports of instances and schedules (CSV), for external
    analysis/plotting toolchains. {!schedule_to_csv_rle} and
    {!utilization_to_csv} emit one row per run-length-encoded block
    (strongly polynomial, safe for huge-volume instances);
    {!schedule_to_csv} is the expanded one-row-per-time-step escape hatch
    for moderate makespans. *)

val schedule_to_csv : Schedule.t -> string
(** Columns: [step,job,assigned,consumed] — one row per allocation per
    expanded time step; resource amounts in units of [1/scale]. Θ(makespan)
    rows: export only schedules of moderate makespan. *)

val schedule_to_csv_rle : Schedule.t -> string
(** Columns: [t0,repeat,job,assigned,consumed] — one row per allocation per
    RLE block (the block covers steps [t0 .. t0+repeat−1]). O(Σ|allocs|)
    rows regardless of makespan. *)

val instance_to_csv : Instance.t -> string
(** Columns: [job,original_position,size,req,scale,m]. *)

val utilization_to_csv : Schedule.t -> string
(** Columns: [t0,len,assigned,consumed,jobs] — one row per RLE block
    ([assigned]/[consumed] as fractions of the resource); [Σ len] equals
    the makespan. *)

val trace_to_csv : Listing1.step_info list -> Instance.t -> string
(** Columns: [time,window_size,window_rsum,case,extra,left_border,
    right_border,finished] — the Listing 1 trace ([rsum] as a fraction). *)
