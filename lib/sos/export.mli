(** Machine-readable exports of instances and schedules (CSV), for external
    analysis/plotting toolchains. All times are expanded (one row per time
    step), so export only schedules of moderate makespan. *)

val schedule_to_csv : Schedule.t -> string
(** Columns: [step,job,assigned,consumed] — one row per allocation per
    expanded time step; resource amounts in units of [1/scale]. *)

val instance_to_csv : Instance.t -> string
(** Columns: [job,original_position,size,req,scale,m]. *)

val utilization_to_csv : Schedule.t -> string
(** Columns: [step,assigned,consumed,jobs] — per expanded time step, as
    fractions of the resource. *)

val trace_to_csv : Listing1.step_info list -> Instance.t -> string
(** Columns: [time,window_size,window_rsum,case,extra,left_border,
    right_border,finished] — the Listing 1 trace ([rsum] as a fraction). *)
