(** Online SoS: jobs arrive over time (release dates) and the scheduler
    learns of a job only at its release. The paper treats the offline
    problem; this module is the natural online extension (window-style
    greedy), kept as an explicitly heuristic variant — no competitive ratio
    is claimed, the benchmark measures it against the clairvoyant lower
    bound.

    Policy, per time step: the active set keeps every started-unfinished
    job (non-preemption), then admits released jobs by smallest requirement
    while fewer than m−1 jobs are active and the active set without its
    largest member stays below the full resource (the window algorithm's
    properties (b)/(e) in spirit). Assignment mirrors Listing 1: everyone
    except the largest active job gets its full requirement, the largest
    the leftover. *)

type arrival = { release : int; size : int; req : int }
(** [release ≥ 0] in time steps; [size], [req] as in {!Instance}. *)

type result = {
  instance : Instance.t;  (** the jobs, as an offline instance *)
  schedule : Schedule.t;  (** over the offline instance's job ids *)
  start_times : int array;  (** 0-based first step of each job *)
  makespan : int;
}

val run : m:int -> scale:int -> arrival list -> result
(** Raises [Invalid_argument] on a negative release or malformed job. *)

val lower_bound : m:int -> scale:int -> arrival list -> int
(** Clairvoyant bound: [max(Eq.(1) on all jobs, max_j (release_j + p_j))]. *)

val respects_releases : result -> arrival list -> bool
(** Every job starts no earlier than its release (the schedule validator
    knows nothing about releases, so this is checked separately). *)
