(** Online SoS: jobs arrive over time (release dates) and the scheduler
    learns of a job only at its release. The paper treats the offline
    problem; this module is the natural online extension (window-style
    greedy), kept as an explicitly heuristic variant — no competitive ratio
    is claimed, the benchmark measures it against the clairvoyant lower
    bound.

    Policy, per time step: the active set keeps every started-unfinished
    job (non-preemption), then admits released jobs by smallest requirement
    while fewer than m−1 jobs are active and the active set without its
    largest member stays below the full resource (the window algorithm's
    properties (b)/(e) in spirit). Assignment mirrors Listing 1: everyone
    except the largest active job gets its full requirement, the largest
    the leftover.

    Two entry points share one engine. {!run} is the one-shot form.
    {!Session} is the incremental form behind [sosctl serve]: jobs are
    submitted one at a time under optional job-count and volume budgets,
    and each [solve] reuses the committed simulation when it can —
    answering from cache when nothing changed, extending the finished
    simulation when every new job is released at or after its frontier,
    and only re-simulating from scratch when a new arrival rewrites
    history. All three paths produce results byte-identical to {!run} on
    the materialized job set (tested property). *)

type arrival = { release : int; size : int; req : int }
(** [release ≥ 0] in time steps; [size], [req] as in {!Instance}. *)

type result = {
  instance : Instance.t;  (** the jobs, as an offline instance *)
  schedule : Schedule.t;  (** over the offline instance's job ids *)
  start_times : int array;  (** 0-based first step of each job *)
  makespan : int;
}

(** Incremental sessions: one tenant's arrival stream, solved on demand. *)
module Session : sig
  type t

  type reject =
    | Bad_arrival of Robust.Failure.invalid
        (** malformed job: negative release, non-positive size or req *)
    | Jobs_budget of { cap : int }  (** session already holds [cap] jobs *)
    | Volume_budget of { cap : int; volume : int }
        (** admitting the job would push total size past [cap] *)

  val reject_message : reject -> string
  (** One-line human-readable form, stable for protocol error lines. *)

  val create :
    ?max_jobs:int -> ?max_volume:int -> m:int -> scale:int -> unit -> t
  (** A fresh empty session. Budgets are enforced by {!add}; omitted means
      unlimited. [m]/[scale] are validated when the first result is
      materialized, exactly as {!run} validates them. *)

  val add : t -> arrival -> (int, reject) Stdlib.result
  (** Admit one job; [Ok position] is its 0-based submission index.
      Rejected jobs leave the session unchanged. Never raises. *)

  val solve : t -> result
  (** The schedule for everything admitted so far — equal to
      [run ~m ~scale (arrivals t)]. May raise {!Robust.Failure.Deadline}
      (via the ambient {!Robust.Context.poll}) or a chaos-injected fault
      from the [sos.online.run] site; either way the session keeps its
      last committed state, so a later [solve] retries and {!peek} still
      answers. *)

  val peek : t -> result option
  (** The last successfully committed result, without solving. [None]
      until the first completed [solve]. The serve layer's stale answer:
      when a fresh solve misses its deadline this is what degrades to. *)

  val dirty : t -> bool
  (** [true] when {!peek}'s answer (or its absence) is stale — jobs were
      admitted after the last committed solve. *)

  val m : t -> int
  val scale : t -> int

  val jobs : t -> int
  (** Jobs admitted. *)

  val volume : t -> int
  (** [Σ size] over admitted jobs. *)

  val arrivals : t -> arrival list
  (** In submission order. *)

  type stats = { full_solves : int; extended_solves : int; cached_hits : int }

  val stats : t -> stats
  (** How the solves so far were answered: re-simulated from scratch,
      extended from the committed frontier, or served from cache. *)
end

val run : m:int -> scale:int -> arrival list -> result
(** Raises [Invalid_argument] on a negative release or malformed job. *)

val lower_bound : m:int -> scale:int -> arrival list -> int
(** Clairvoyant bound: [max(Eq.(1) on all jobs, max_j (release_j + p_j))]. *)

val respects_releases : result -> arrival list -> bool
(** Every job starts no earlier than its release (the schedule validator
    knows nothing about releases, so this is checked separately). *)
