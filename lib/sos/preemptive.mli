(** A preemptive scheduler for SoS, as a comparison point: the paper's
    lower bounds (Equation (1)) are valid for preemptive schedules too, so
    the gap between this scheduler and the non-preemptive window algorithm
    measures how much the non-preemption constraint costs in practice
    (extension experiment E1).

    Policy: {e longest-remaining-processing-time water-filling}. Every time
    step, jobs are ordered by remaining step count [⌈s_j(t)/r_j⌉]
    (descending); the first at most [m] jobs receive their full requirement
    while resource remains, the next job the leftover. This keeps the
    processor-bound side balanced (LRPT is optimal for [P | pmtn | C_max])
    while saturating the resource-bound side. No approximation guarantee is
    claimed; empirically it sits within a few percent of the lower bound. *)

val run : ?fuel:int -> Instance.t -> Schedule.t
(** The schedule is preemptive and migratory — validate with
    [~preemption_ok:true]. One simulated step per time step (no
    run-length compression): [fuel] (default 2_000_000 steps) bounds the
    run; exceeding it raises [Failure]. *)
