type t = Empty | Range of { first : int; last : int; count : int; rsum : int }

(* Registered under the sos.fast.* prefix because the step-skipping solver
   is the only hot caller; the traced reference (Listing1) shares them.
   Disabled-by-default: each increment is a flag load + branch
   (doc/OBSERVABILITY.md). *)
let c_slides = Obs.Metrics.counter "sos.fast.window_slides"
let c_refills = Obs.Metrics.counter "sos.fast.window_refills"

let empty = Empty
let is_empty = function Empty -> true | Range _ -> false
let count = function Empty -> 0 | Range r -> r.count
let rsum = function Empty -> 0 | Range r -> r.rsum
let first = function Empty -> None | Range r -> Some r.first
let last = function Empty -> None | Range r -> Some r.last
let first_idx = function Empty -> -1 | Range r -> r.first
let last_idx = function Empty -> -1 | Range r -> r.last

let mem w i =
  match w with Empty -> false | Range r -> r.first <= i && i <= r.last

let equal a b =
  match (a, b) with
  | Empty, Empty -> true
  | Range a, Range b ->
      a.first = b.first && a.last = b.last && a.count = b.count && a.rsum = b.rsum
  | _ -> false

let req = State.req

let members st w =
  match w with
  | Empty -> []
  | Range r ->
      let rec walk acc i =
        if i = r.last then List.rev (i :: acc)
        else begin
          match State.next_remaining st i with
          | Some j -> walk (i :: acc) j
          | None -> invalid_arg "Window.members: broken range"
        end
      in
      walk [] r.first

let of_members st = function
  | [] -> Empty
  | first :: _ as ms ->
      let rec check = function
        | [] -> assert false
        | [ x ] -> x
        | x :: (y :: _ as rest) ->
            if State.next_remaining st x <> Some y then
              invalid_arg "Window.of_members: not consecutive remaining jobs";
            check rest
      in
      let last = check ms in
      let rsum = List.fold_left (fun acc i -> acc + req st i) 0 ms in
      Range { first; last; count = List.length ms; rsum }

let left_neighbor st = function
  | Empty -> None
  | Range r -> State.prev_remaining st r.first

let right_neighbor st = function
  | Empty -> State.head st
  | Range r -> State.next_remaining st r.last

let add_left st w =
  match left_neighbor st w with
  | None -> invalid_arg "Window.add_left: no left neighbor"
  | Some j -> begin
      match w with
      | Empty -> assert false
      | Range r ->
          Range { r with first = j; count = r.count + 1; rsum = r.rsum + req st j }
    end

let add_right st w =
  match right_neighbor st w with
  | None -> invalid_arg "Window.add_right: no right neighbor"
  | Some j -> begin
      match w with
      | Empty -> Range { first = j; last = j; count = 1; rsum = req st j }
      | Range r ->
          Range { r with last = j; count = r.count + 1; rsum = r.rsum + req st j }
    end

let drop_left st w =
  match w with
  | Empty -> invalid_arg "Window.drop_left: empty window"
  | Range r ->
      if r.count = 1 then Empty
      else begin
        match State.next_remaining st r.first with
        | None -> invalid_arg "Window.drop_left: broken range"
        | Some j ->
            Range { r with first = j; count = r.count - 1; rsum = r.rsum - req st r.first }
      end

(* The grow/move loops below are written as top-level recursive functions
   on the sentinel-index State API: in the common no-change case (the
   event-driven solver's per-step stability probe) they allocate nothing —
   no closures, no [Some] per linked-list hop, no intermediate windows. *)

let rec grow_left_go st size budget w =
  match w with
  | Empty -> w
  | Range r ->
      if r.count < size && r.rsum < budget then begin
        let j = State.prev_idx st r.first in
        if j >= 0 then begin
          Obs.Metrics.incr c_refills;
          grow_left_go st size budget
            (Range { r with first = j; count = r.count + 1; rsum = r.rsum + req st j })
        end
        else w
      end
      else w

let grow_left st w ~size ~budget = grow_left_go st size budget w

let rec grow_left_fixed_go st size budget w =
  match w with
  | Empty -> w
  | Range r ->
      if r.count < size then begin
        let j = State.prev_idx st r.first in
        (* property (b) must survive the addition:
           r(W ∪ {j} ∖ {max W}) < budget *)
        if j >= 0 && r.rsum + req st j - req st r.last < budget then begin
          Obs.Metrics.incr c_refills;
          grow_left_fixed_go st size budget
            (Range { r with first = j; count = r.count + 1; rsum = r.rsum + req st j })
        end
        else w
      end
      else w

let grow_left_fixed st w ~size ~budget = grow_left_fixed_go st size budget w

let rec grow_right_go st size budget w =
  match w with
  | Empty ->
      let h = State.head_idx st in
      if 0 < budget && h >= 0 && 0 < size then begin
        Obs.Metrics.incr c_refills;
        grow_right_go st size budget
          (Range { first = h; last = h; count = 1; rsum = req st h })
      end
      else w
  | Range r ->
      if r.rsum < budget && r.count < size then begin
        let j = State.next_idx st r.last in
        if j >= 0 then begin
          Obs.Metrics.incr c_refills;
          grow_right_go st size budget
            (Range { r with last = j; count = r.count + 1; rsum = r.rsum + req st j })
        end
        else w
      end
      else w

let grow_right st w ~size ~budget = grow_right_go st size budget w

let rec move_right_go st budget w =
  match w with
  | Empty -> w
  | Range r ->
      if r.rsum < budget && not (State.started st r.first) then begin
        let j = State.next_idx st r.last in
        if j >= 0 then begin
          Obs.Metrics.incr c_slides;
          (* add min R, drop min W — fused *)
          let w' =
            if r.count = 1 then Range { first = j; last = j; count = 1; rsum = req st j }
            else
              Range
                {
                  first = State.next_idx st r.first;
                  last = j;
                  count = r.count;
                  rsum = r.rsum - req st r.first + req st j;
                }
          in
          move_right_go st budget w'
        end
        else w
      end
      else w

let move_right st w ~budget = move_right_go st budget w

let prune st w =
  match w with
  | Empty -> Empty
  | Range r ->
      (* Single allocation-free walk of the range, tracking the surviving
         bounds, count and requirement sum. *)
      let first = ref (-1) and last = ref (-1) in
      let count = ref 0 and rsum = ref 0 in
      let rec go i =
        if not (State.finished st i) then begin
          if !first < 0 then first := i;
          last := i;
          incr count;
          rsum := !rsum + req st i
        end;
        if i <> r.last then begin
          match State.next_remaining st i with
          | Some j -> go j
          | None -> invalid_arg "Window.prune: broken range"
        end
      in
      go r.first;
      if !count = 0 then Empty
      else Range { first = !first; last = !last; count = !count; rsum = !rsum }

(* Fold the finished jobs lying inside [lo..hi] out of (count, rsum) —
   two sentinel-int accumulators threaded through a top-level recursion,
   no refs, no closures. *)
let rec repair_count st lo hi count fs =
  match fs with
  | [] -> count
  | f :: tl -> repair_count st lo hi (if lo <= f && f <= hi then count - 1 else count) tl

let rec repair_rsum st lo hi rsum fs =
  match fs with
  | [] -> rsum
  | f :: tl ->
      repair_rsum st lo hi (if lo <= f && f <= hi then rsum - req st f else rsum) tl

let rec repair_fwd st i =
  if not (State.finished st i) then i
  else begin
    let j = State.next_idx st i in
    if j < 0 then invalid_arg "Window.repair: broken range" else repair_fwd st j
  end

let rec repair_bwd st i =
  if not (State.finished st i) then i
  else begin
    let j = State.prev_idx st i in
    if j < 0 then invalid_arg "Window.repair: broken range" else repair_bwd st j
  end

let repair st w ~finished =
  match w with
  | Empty -> Empty
  | Range r ->
      (* O(|finished|): subtract the just-finished members from the range
         totals, then advance the bounds past finished members — each hop
         passes one finished job, so the walks cost O(|finished|) combined,
         never O(|W|). *)
      let count = repair_count st r.first r.last r.count finished in
      if count = 0 then Empty
      else
        Range
          {
            first = repair_fwd st r.first;
            last = repair_bwd st r.last;
            count;
            rsum = repair_rsum st r.first r.last r.rsum finished;
          }

let stable ?(variant = `Fixed) st w ~size ~budget =
  match w with
  | Empty -> false
  | Range r ->
      (* [compute w = w] ⟺ all three loops stall immediately:
         - grow-left: count = size, no left neighbour, or the variant's
           budget condition blocks the addition;
         - grow-right: count = size, no right neighbour, or rsum ≥ budget;
         - move-right: rsum ≥ budget, no right neighbour, or min W started.
         Each test is O(1) reads of step-invariant data (links, count,
         rsum, requirements) plus started(min W), so the event-driven
         solver can certify the fixed point without replaying the loops. *)
      let left_stall =
        r.count >= size
        ||
        let p = State.prev_idx st r.first in
        p < 0
        ||
        (match variant with
        | `Fixed -> r.rsum + req st p - req st r.last >= budget
        | `Literal -> r.rsum >= budget)
      in
      left_stall
      && (r.rsum >= budget
         || State.next_idx st r.last < 0
         || (r.count >= size && State.started st r.first))

let compute ?(variant = `Fixed) st w ~size ~budget =
  let w =
    match variant with
    | `Fixed -> grow_left_fixed st w ~size ~budget
    | `Literal -> grow_left st w ~size ~budget
  in
  let w = grow_right st w ~size ~budget in
  move_right st w ~budget

let is_window st w ~budget =
  match w with
  | Empty ->
      (* Property (d): no started job may be outside the window. *)
      List.for_all (fun i -> not (State.started st i)) (State.remaining_jobs st)
  | Range r ->
      let ms = members st w in
      (* (a) holds by representation; check the range is well formed. *)
      let well_formed = List.length ms = r.count in
      (* (b) r(W \ {max W}) < budget *)
      let b = r.rsum - req st r.last < budget in
      (* (c) at most one fractured member *)
      let c = List.length (List.filter (State.fractured st) ms) <= 1 in
      (* (d) every job outside the window is unstarted *)
      let d =
        List.for_all
          (fun i -> mem w i || not (State.started st i))
          (State.remaining_jobs st)
      in
      well_formed && b && c && d

let is_k_maximal st w ~k ~budget =
  is_window st w ~budget
  && count w <= k
  && (count w >= k || left_neighbor st w = None)
  && (rsum w >= budget || right_neighbor st w = None)

let is_effectively_maximal st w ~k ~budget =
  is_window st w ~budget
  && count w <= k
  && (count w >= k || left_neighbor st w = None || rsum w >= budget)
  && (rsum w >= budget || right_neighbor st w = None)

let pp ppf = function
  | Empty -> Format.fprintf ppf "<empty window>"
  | Range r ->
      Format.fprintf ppf "[%d..%d|#%d r=%d]" r.first r.last r.count r.rsum
