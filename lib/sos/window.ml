type t = Empty | Range of { first : int; last : int; count : int; rsum : int }

(* Registered under the sos.fast.* prefix because the step-skipping solver
   is the only hot caller; the traced reference (Listing1) shares them.
   Disabled-by-default: each increment is a flag load + branch
   (doc/OBSERVABILITY.md). *)
let c_slides = Obs.Metrics.counter "sos.fast.window_slides"
let c_refills = Obs.Metrics.counter "sos.fast.window_refills"

let empty = Empty
let is_empty = function Empty -> true | Range _ -> false
let count = function Empty -> 0 | Range r -> r.count
let rsum = function Empty -> 0 | Range r -> r.rsum
let first = function Empty -> None | Range r -> Some r.first
let last = function Empty -> None | Range r -> Some r.last

let mem w i =
  match w with Empty -> false | Range r -> r.first <= i && i <= r.last

let equal a b =
  match (a, b) with
  | Empty, Empty -> true
  | Range a, Range b ->
      a.first = b.first && a.last = b.last && a.count = b.count && a.rsum = b.rsum
  | _ -> false

let req st i = (Instance.job (State.instance st) i).Job.req

let members st w =
  match w with
  | Empty -> []
  | Range r ->
      let rec walk acc i =
        if i = r.last then List.rev (i :: acc)
        else begin
          match State.next_remaining st i with
          | Some j -> walk (i :: acc) j
          | None -> invalid_arg "Window.members: broken range"
        end
      in
      walk [] r.first

let of_members st = function
  | [] -> Empty
  | first :: _ as ms ->
      let rec check = function
        | [] -> assert false
        | [ x ] -> x
        | x :: (y :: _ as rest) ->
            if State.next_remaining st x <> Some y then
              invalid_arg "Window.of_members: not consecutive remaining jobs";
            check rest
      in
      let last = check ms in
      let rsum = List.fold_left (fun acc i -> acc + req st i) 0 ms in
      Range { first; last; count = List.length ms; rsum }

let left_neighbor st = function
  | Empty -> None
  | Range r -> State.prev_remaining st r.first

let right_neighbor st = function
  | Empty -> State.head st
  | Range r -> State.next_remaining st r.last

let add_left st w =
  match left_neighbor st w with
  | None -> invalid_arg "Window.add_left: no left neighbor"
  | Some j -> begin
      match w with
      | Empty -> assert false
      | Range r ->
          Range { r with first = j; count = r.count + 1; rsum = r.rsum + req st j }
    end

let add_right st w =
  match right_neighbor st w with
  | None -> invalid_arg "Window.add_right: no right neighbor"
  | Some j -> begin
      match w with
      | Empty -> Range { first = j; last = j; count = 1; rsum = req st j }
      | Range r ->
          Range { r with last = j; count = r.count + 1; rsum = r.rsum + req st j }
    end

let drop_left st w =
  match w with
  | Empty -> invalid_arg "Window.drop_left: empty window"
  | Range r ->
      if r.count = 1 then Empty
      else begin
        match State.next_remaining st r.first with
        | None -> invalid_arg "Window.drop_left: broken range"
        | Some j ->
            Range { r with first = j; count = r.count - 1; rsum = r.rsum - req st r.first }
      end

let grow_left st w ~size ~budget =
  let rec loop w =
    if count w < size && left_neighbor st w <> None && rsum w < budget then begin
      Obs.Metrics.incr c_refills;
      loop (add_left st w)
    end
    else w
  in
  loop w

let grow_left_fixed st w ~size ~budget =
  let b_preserved w j =
    match last w with
    | None -> true
    | Some mx -> rsum w + req st j - req st mx < budget
  in
  let rec loop w =
    if count w < size then begin
      match left_neighbor st w with
      | Some j when b_preserved w j ->
          Obs.Metrics.incr c_refills;
          loop (add_left st w)
      | _ -> w
    end
    else w
  in
  loop w

let grow_right st w ~size ~budget =
  let rec loop w =
    if rsum w < budget && right_neighbor st w <> None && count w < size then begin
      Obs.Metrics.incr c_refills;
      loop (add_right st w)
    end
    else w
  in
  loop w

let move_right st w ~budget =
  let unstarted_min w =
    match first w with Some j -> not (State.started st j) | None -> false
  in
  let rec loop w =
    if rsum w < budget && right_neighbor st w <> None && unstarted_min w then begin
      Obs.Metrics.incr c_slides;
      loop (drop_left st (add_right st w))
    end
    else w
  in
  loop w

let prune st w =
  let survivors = List.filter (fun i -> not (State.finished st i)) (members st w) in
  match survivors with
  | [] -> Empty
  | first :: _ as ms ->
      let rec last_of = function
        | [ x ] -> x
        | _ :: rest -> last_of rest
        | [] -> assert false
      in
      let rsum = List.fold_left (fun acc i -> acc + req st i) 0 ms in
      Range { first; last = last_of ms; count = List.length ms; rsum }

let compute ?(variant = `Fixed) st w ~size ~budget =
  let w =
    match variant with
    | `Fixed -> grow_left_fixed st w ~size ~budget
    | `Literal -> grow_left st w ~size ~budget
  in
  let w = grow_right st w ~size ~budget in
  move_right st w ~budget

let is_window st w ~budget =
  match w with
  | Empty ->
      (* Property (d): no started job may be outside the window. *)
      List.for_all (fun i -> not (State.started st i)) (State.remaining_jobs st)
  | Range r ->
      let ms = members st w in
      (* (a) holds by representation; check the range is well formed. *)
      let well_formed = List.length ms = r.count in
      (* (b) r(W \ {max W}) < budget *)
      let b = r.rsum - req st r.last < budget in
      (* (c) at most one fractured member *)
      let c = List.length (List.filter (State.fractured st) ms) <= 1 in
      (* (d) every job outside the window is unstarted *)
      let d =
        List.for_all
          (fun i -> mem w i || not (State.started st i))
          (State.remaining_jobs st)
      in
      well_formed && b && c && d

let is_k_maximal st w ~k ~budget =
  is_window st w ~budget
  && count w <= k
  && (count w >= k || left_neighbor st w = None)
  && (rsum w >= budget || right_neighbor st w = None)

let is_effectively_maximal st w ~k ~budget =
  is_window st w ~budget
  && count w <= k
  && (count w >= k || left_neighbor st w = None || rsum w >= budget)
  && (rsum w >= budget || right_neighbor st w = None)

let pp ppf = function
  | Empty -> Format.fprintf ppf "<empty window>"
  | Range r ->
      Format.fprintf ppf "[%d..%d|#%d r=%d]" r.first r.last r.count r.rsum
