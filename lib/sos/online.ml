type arrival = { release : int; size : int; req : int }

type result = {
  instance : Instance.t;
  schedule : Schedule.t;
  start_times : int array;
  makespan : int;
}

let validate_arrival i a =
  let open Robust.Failure in
  if a.release < 0 then
    Error (Malformed (Printf.sprintf "job %d: negative release (got %d)" i a.release))
  else if a.size <= 0 then Error (Nonpositive_size { job = i; size = a.size })
  else if a.req <= 0 then Error (Nonpositive_req { job = i; req = a.req })
  else Ok ()

let to_instance ~m ~scale arrivals =
  List.iteri
    (fun i a ->
      match validate_arrival i a with
      | Ok () -> ()
      | Error inv -> raise (Robust.Failure.Invalid inv))
    arrivals;
  Instance.create ~m ~scale (List.map (fun a -> (a.size, a.req)) arrivals)

let release_table inst arrivals =
  let by_pos = Array.of_list (List.map (fun a -> a.release) arrivals) in
  Array.map (fun pos -> by_pos.(pos)) inst.Instance.original

let lower_bound ~m ~scale arrivals =
  let inst = to_instance ~m ~scale arrivals in
  let eq1 = Bounds.lower_bound inst in
  let horizon =
    List.fold_left (fun acc a -> max acc (a.release + a.size)) 0 arrivals
  in
  max eq1 horizon

(* ------------------------------------------------------ incremental core

   The simulation state below is keyed on arrival POSITIONS (the order
   jobs were submitted), not on instance ids. [Instance.create] sorts by
   [Job.compare_req], which tie-breaks on the original position, so
   instance-id order and (req, position) lexicographic order coincide:
   every comparison the id-based simulation used to make — the pending
   admission order, the "everyone but the largest" split — is reproduced
   exactly by comparing (req, position). That is what lets a session keep
   simulating as jobs arrive, without renumbering history each time the
   sorted instance would shuffle ids, and still materialize a result that
   is byte-identical to a from-scratch [run] on the final job set. *)

type sim = {
  mutable t : int;  (** steps simulated so far; the frontier *)
  mutable steps_rev : Schedule.step list;  (** allocs carry positions *)
  mutable pending : int list;  (** positions, (req, position) ascending *)
  mutable active : int list;  (** positions *)
  rem : int array;  (** remaining requirement units per position *)
  start : int array;  (** first allocated step per position, -1 *)
}

let sim_empty () =
  { t = 0; steps_rev = []; pending = []; active = []; rem = [||]; start = [||] }

let grown a n fill =
  let b = Array.make n fill in
  Array.blit a 0 b 0 (Array.length a);
  b

(* A scratch copy whose arrays are grown to [n] positions. Lists are
   immutable and shared; the copy can be simulated — and abandoned on a
   mid-solve deadline — without disturbing the committed original. *)
let sim_scratch sim n =
  {
    t = sim.t;
    steps_rev = sim.steps_rev;
    pending = sim.pending;
    active = sim.active;
    rem = grown sim.rem n 0;
    start = grown sim.start n (-1);
  }

(* Run the simulation to completion (pending and active drained). One
   cooperative cancellation poll per step keeps mid-solve deadlines
   responsive; the chaos site lets the fault suite kill whole solves. *)
let simulate ~m ~scale ~releases ~reqs sim =
  Robust.Chaos.point "sos.online.run";
  let n = Array.length releases in
  let max_release = Array.fold_left max 0 releases in
  let budget_rem =
    List.fold_left
      (fun acc p -> acc + sim.rem.(p))
      0
      (List.rev_append sim.pending sim.active)
  in
  let fuel = ref (max_release + budget_rem + n + 4) in
  while sim.pending <> [] || sim.active <> [] do
    Robust.Context.poll ();
    decr fuel;
    if !fuel < 0 then Robust.Failure.internal_error "Online.run: no progress";
    (* Admit released jobs, smallest requirement first, while the active
       set keeps property (b): everything except the largest member must
       fit below the full resource. *)
    let rec admit () =
      if List.length sim.active < m - 1 then begin
        let released, rest =
          List.partition (fun p -> releases.(p) <= sim.t) sim.pending
        in
        match released with
        | [] -> ()
        | cand :: more_released ->
            let members = cand :: sim.active in
            let sum = List.fold_left (fun acc p -> acc + reqs.(p)) 0 members in
            let mx = List.fold_left (fun acc p -> max acc reqs.(p)) 0 members in
            if sum - mx < scale then begin
              sim.active <- members;
              sim.pending <- more_released @ rest;
              admit ()
            end
      end
    in
    admit ();
    (if sim.active = [] then
       (* Idle: nothing released yet. *)
       sim.steps_rev <- { Schedule.allocs = []; repeat = 1 } :: sim.steps_rev
     else begin
       let ordered =
         List.sort (fun a b -> compare (reqs.(a), a) (reqs.(b), b)) sim.active
       in
       let rec split_last acc = function
         | [ last ] -> (List.rev acc, last)
         | x :: rest -> split_last (x :: acc) rest
         | [] -> assert false
       in
       let others, biggest = split_last [] ordered in
       let spent = ref 0 in
       let allocs_others =
         List.map
           (fun p ->
             let assigned = min reqs.(p) sim.rem.(p) in
             spent := !spent + assigned;
             { Schedule.job = p; assigned; consumed = assigned })
           others
       in
       let leftover = scale - !spent in
       let big_assigned = min (min leftover reqs.(biggest)) sim.rem.(biggest) in
       let allocs =
         allocs_others
         @ [ { Schedule.job = biggest; assigned = big_assigned; consumed = big_assigned } ]
       in
       List.iter
         (fun (a : Schedule.alloc) ->
           if sim.start.(a.job) < 0 then sim.start.(a.job) <- sim.t;
           sim.rem.(a.job) <- sim.rem.(a.job) - a.consumed)
         allocs;
       sim.steps_rev <- { Schedule.allocs; repeat = 1 } :: sim.steps_rev;
       sim.active <- List.filter (fun p -> sim.rem.(p) > 0) sim.active
     end);
    sim.t <- sim.t + 1
  done

(* Map a completed position-keyed simulation onto the offline instance:
   positions become instance ids, trailing idle steps are trimmed (none
   expected; keeps the invariant that makespan = last step with work). *)
let materialize ~m ~scale arrivals sim =
  let inst = to_instance ~m ~scale arrivals in
  let n = Instance.n inst in
  let id_of_pos = Array.make n 0 in
  Array.iteri (fun id pos -> id_of_pos.(pos) <- id) inst.Instance.original;
  let rec trim = function
    | { Schedule.allocs = []; _ } :: rest -> trim rest
    | steps -> steps
  in
  let steps =
    List.rev_map
      (fun (step : Schedule.step) ->
        {
          step with
          Schedule.allocs =
            List.map
              (fun (a : Schedule.alloc) -> { a with Schedule.job = id_of_pos.(a.job) })
              step.Schedule.allocs;
        })
      (trim sim.steps_rev)
  in
  let start_times =
    Array.init n (fun id -> sim.start.(inst.Instance.original.(id)))
  in
  let schedule = Schedule.make inst steps in
  { instance = inst; schedule; start_times; makespan = schedule.Schedule.makespan }

module Session = struct
  type reject =
    | Bad_arrival of Robust.Failure.invalid
    | Jobs_budget of { cap : int }
    | Volume_budget of { cap : int; volume : int }

  let reject_message = function
    | Bad_arrival inv -> Robust.Failure.message (Robust.Failure.Invalid_instance inv)
    | Jobs_budget { cap } -> Printf.sprintf "job budget exhausted (cap %d)" cap
    | Volume_budget { cap; volume } ->
        Printf.sprintf "volume budget exhausted (cap %d, held %d)" cap volume

  type stats = { full_solves : int; extended_solves : int; cached_hits : int }

  type t = {
    m : int;
    scale : int;
    max_jobs : int option;
    max_volume : int option;
    mutable arrivals_rev : arrival list;
    mutable count : int;
    mutable volume : int;
    (* committed: a completed simulation over the first [committed_n]
       positions, plus its materialized result. Solving never mutates it
       in place — a scratch copy is simulated and swapped in only on
       completion, so a deadline that unwinds mid-solve leaves the last
       good state (and [peek]'s answer) intact. *)
    mutable committed : sim;
    mutable committed_n : int;
    mutable last_good : result option;
    mutable full_solves : int;
    mutable extended_solves : int;
    mutable cached_hits : int;
  }

  let create ?max_jobs ?max_volume ~m ~scale () =
    {
      m;
      scale;
      max_jobs;
      max_volume;
      arrivals_rev = [];
      count = 0;
      volume = 0;
      committed = sim_empty ();
      committed_n = 0;
      last_good = None;
      full_solves = 0;
      extended_solves = 0;
      cached_hits = 0;
    }

  let m t = t.m
  let scale t = t.scale
  let jobs t = t.count
  let volume t = t.volume
  let dirty t = t.count > t.committed_n || t.last_good = None
  let arrivals t = List.rev t.arrivals_rev
  let peek t = t.last_good

  let stats t =
    {
      full_solves = t.full_solves;
      extended_solves = t.extended_solves;
      cached_hits = t.cached_hits;
    }

  let add t a =
    match validate_arrival t.count a with
    | Error inv -> Error (Bad_arrival inv)
    | Ok () -> begin
        match t.max_jobs with
        | Some cap when t.count >= cap -> Error (Jobs_budget { cap })
        | _ ->
            let cap_v =
              match t.max_volume with Some cap -> cap | None -> max_int
            in
            if a.size > cap_v - t.volume then
              Error (Volume_budget { cap = cap_v; volume = t.volume })
            else begin
              let pos = t.count in
              t.arrivals_rev <- a :: t.arrivals_rev;
              t.count <- t.count + 1;
              t.volume <- t.volume + a.size;
              Ok pos
            end
      end

  (* New positions can extend the committed simulation iff none of them
     is released before the committed frontier. The committed frontier is
     the completion time of the old job set, so at every earlier step the
     new jobs are unreleased and change nothing; from the frontier on the
     old simulation had drained, and resuming its loop with the new
     pending set replays exactly what a from-scratch run would do (idle
     until the first new release, then admit). Otherwise a new job could
     have joined a past admission decision and we must re-solve from 0. *)
  let solve t =
    let arrivals = List.rev t.arrivals_rev in
    match t.last_good with
    | Some r when t.committed_n = t.count ->
        t.cached_hits <- t.cached_hits + 1;
        r
    | _ ->
        let n = t.count in
        let releases = Array.make n 0 in
        let reqs = Array.make n 0 in
        let sizes = Array.make n 0 in
        List.iteri
          (fun p a ->
            releases.(p) <- a.release;
            reqs.(p) <- a.req;
            sizes.(p) <- a.size)
          arrivals;
        let by_req p q = compare (reqs.(p), p) (reqs.(q), q) in
        let fresh = List.init (n - t.committed_n) (fun i -> t.committed_n + i) in
        let extendable =
          t.committed_n > 0
          && List.for_all (fun p -> releases.(p) >= t.committed.t) fresh
        in
        let sim =
          if extendable then begin
            let sim = sim_scratch t.committed n in
            List.iter (fun p -> sim.rem.(p) <- sizes.(p) * reqs.(p)) fresh;
            sim.pending <- List.sort by_req (List.rev_append sim.pending fresh);
            sim
          end
          else begin
            let sim = sim_scratch (sim_empty ()) n in
            for p = 0 to n - 1 do
              sim.rem.(p) <- sizes.(p) * reqs.(p)
            done;
            sim.pending <- List.sort by_req (List.init n Fun.id);
            sim
          end
        in
        simulate ~m:t.m ~scale:t.scale ~releases ~reqs sim;
        let r = materialize ~m:t.m ~scale:t.scale arrivals sim in
        (* Commit only now: everything above may unwind on a deadline. *)
        if extendable then t.extended_solves <- t.extended_solves + 1
        else t.full_solves <- t.full_solves + 1;
        t.committed <- sim;
        t.committed_n <- n;
        t.last_good <- Some r;
        r
end

let run ~m ~scale arrivals =
  let session = Session.create ~m ~scale () in
  List.iter
    (fun a ->
      match Session.add session a with
      | Ok _ -> ()
      | Error (Session.Bad_arrival inv) -> raise (Robust.Failure.Invalid inv)
      | Error r ->
          (* Unreachable: the session has no budgets; kept total for R6. *)
          raise
            (Robust.Failure.Invalid
               (Robust.Failure.Malformed (Session.reject_message r))))
    arrivals;
  Session.solve session

let respects_releases result arrivals =
  let releases = release_table result.instance arrivals in
  let ok = ref true in
  Array.iteri
    (fun j start -> if start >= 0 && start < releases.(j) then ok := false)
    result.start_times;
  Array.iteri (fun j start -> if start < 0 && Job.s (Instance.job result.instance j) > 0 then ok := false)
    result.start_times;
  !ok
