type arrival = { release : int; size : int; req : int }

type result = {
  instance : Instance.t;
  schedule : Schedule.t;
  start_times : int array;
  makespan : int;
}

let to_instance ~m ~scale arrivals =
  List.iteri
    (fun i a ->
      let open Robust.Failure in
      if a.release < 0 then
        raise (Invalid (Malformed (Printf.sprintf "job %d: negative release (got %d)" i a.release)));
      if a.size <= 0 then raise (Invalid (Nonpositive_size { job = i; size = a.size }));
      if a.req <= 0 then raise (Invalid (Nonpositive_req { job = i; req = a.req })))
    arrivals;
  Instance.create ~m ~scale (List.map (fun a -> (a.size, a.req)) arrivals)

let release_table inst arrivals =
  let by_pos = Array.of_list (List.map (fun a -> a.release) arrivals) in
  Array.map (fun pos -> by_pos.(pos)) inst.Instance.original

let lower_bound ~m ~scale arrivals =
  let inst = to_instance ~m ~scale arrivals in
  let eq1 = Bounds.lower_bound inst in
  let horizon =
    List.fold_left (fun acc a -> max acc (a.release + a.size)) 0 arrivals
  in
  max eq1 horizon

let run ~m ~scale arrivals =
  let inst = to_instance ~m ~scale arrivals in
  let releases = release_table inst arrivals in
  let n = Instance.n inst in
  let s = Array.init n (fun i -> Job.s (Instance.job inst i)) in
  let req i = (Instance.job inst i).Job.req in
  let start_times = Array.make n (-1) in
  (* pending: not yet admitted, in requirement (= id) order. *)
  let pending = ref (List.init n Fun.id) in
  let active = ref [] in
  let steps = ref [] in
  let t = ref 0 in
  let max_release = Array.fold_left max 0 releases in
  let fuel = ref (max_release + Instance.total_requirement inst + n + 4) in
  while !pending <> [] || !active <> [] do
    decr fuel;
    if !fuel < 0 then Robust.Failure.internal_error "Online.run: no progress";
    (* Admit released jobs, smallest requirement first, while the active
       set keeps property (b): everything except the largest member must
       fit below the full resource. *)
    let rec admit () =
      if List.length !active < m - 1 then begin
        let released, rest =
          List.partition (fun j -> releases.(j) <= !t) !pending
        in
        match released with
        | [] -> ()
        | cand :: more_released ->
            let members = cand :: !active in
            let sum = List.fold_left (fun acc j -> acc + req j) 0 members in
            let mx = List.fold_left (fun acc j -> max acc (req j)) 0 members in
            if sum - mx < scale then begin
              active := members;
              pending := more_released @ rest;
              admit ()
            end
      end
    in
    admit ();
    (if !active = [] then
       (* Idle: nothing released yet. *)
       steps := { Schedule.allocs = []; repeat = 1 } :: !steps
     else begin
       let ordered = List.sort (fun a b -> compare (req a, a) (req b, b)) !active in
       let rec split_last acc = function
         | [ last ] -> (List.rev acc, last)
         | x :: rest -> split_last (x :: acc) rest
         | [] -> assert false
       in
       let others, biggest = split_last [] ordered in
       let spent = ref 0 in
       let allocs_others =
         List.map
           (fun j ->
             let assigned = min (req j) s.(j) in
             spent := !spent + assigned;
             { Schedule.job = j; assigned; consumed = assigned })
           others
       in
       let leftover = scale - !spent in
       let big_assigned = min (min leftover (req biggest)) s.(biggest) in
       let allocs =
         allocs_others
         @ [ { Schedule.job = biggest; assigned = big_assigned; consumed = big_assigned } ]
       in
       List.iter
         (fun (a : Schedule.alloc) ->
           if start_times.(a.job) < 0 then start_times.(a.job) <- !t;
           s.(a.job) <- s.(a.job) - a.consumed)
         allocs;
       steps := { Schedule.allocs; repeat = 1 } :: !steps;
       active := List.filter (fun j -> s.(j) > 0) !active
     end);
    incr t
  done;
  (* Trim trailing idle steps (none expected, but keep the invariant that
     makespan = last step with work). *)
  let rec trim = function
    | { Schedule.allocs = []; _ } :: rest -> trim rest
    | steps -> steps
  in
  let steps = List.rev (trim !steps) in
  let schedule = Schedule.make inst steps in
  { instance = inst; schedule; start_times; makespan = schedule.Schedule.makespan }

let respects_releases result arrivals =
  let releases = release_table result.instance arrivals in
  let ok = ref true in
  Array.iteri
    (fun j start -> if start >= 0 && start < releases.(j) then ok := false)
    result.start_times;
  Array.iteri (fun j start -> if start < 0 && Job.s (Instance.job result.instance j) > 0 then ok := false)
    result.start_times;
  !ok
