(** Ablation variants of the algorithm, for the A1 experiment. Each switches
    off one design choice that the paper's analysis relies on:

    - {!run_literal_grow_left} — the printed Listing 2 GrowWindowLeft
      (stalls behind a surviving max; see DESIGN.md finding 1);
    - {!run_naive_fracture} — drops the case-1 "un-fracture" swap of
      Listing 1 and always hands the leftover to [max W]. Footnote 1 of the
      paper warns that up to m−1 fractured jobs can then coexist, each
      pinning a processor while consuming almost no resource;
    - {!run_no_move} — drops MoveWindowRight, so windows stick to the left
      border and never slide toward resource-hungry jobs. *)

val run_literal_grow_left : Instance.t -> Schedule.t
(** Alias for [Fast.run ~variant:`Literal]. *)

val run_naive_fracture : Instance.t -> Schedule.t
(** Window computation as in Listing 1, but the per-step assignment is the
    naive rule: every window job except [max W] is assigned its full
    requirement (consuming [min(r_j, s_j)]), and [max W] receives the
    leftover. No fracture bookkeeping; valid but potentially wasteful. *)

val run_no_move : Instance.t -> Schedule.t
(** Listing 1 with MoveWindowRight disabled. *)
