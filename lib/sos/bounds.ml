let ceil_div a b =
  if b <= 0 then invalid_arg "Bounds.ceil_div: non-positive divisor";
  if a <= 0 then 0 else ((a - 1) / b) + 1

(* Overflow-guarded Equation (1) sums: with p_j ≈ max_int/2 the plain
   Σ p_j·r_j wraps negative and the "lower bound" silently collapses.
   [Instance.validate] performs the same checks; routing the bound
   computation itself through them means even un-validated callers get
   [Robust.Failure.Invalid (Overflow _)] instead of garbage. *)
let sum_checked f inst =
  let n = Instance.n inst in
  let rec go acc i =
    if i >= n then Some acc
    else
      let v = f (Instance.job inst i) in
      if v < 0 || acc > max_int - v then None else go (acc + v) (i + 1)
  in
  go 0 0

let total_requirement_checked inst =
  sum_checked
    (fun (j : Job.t) -> if j.size > max_int / j.req then -1 else j.size * j.req)
    inst

let total_volume_checked inst = sum_checked (fun (j : Job.t) -> j.size) inst

let resource_bound inst = ceil_div (Instance.total_requirement inst) inst.Instance.scale
let volume_bound inst = ceil_div (Instance.total_volume inst) inst.Instance.m
let longest_job_bound inst = Instance.max_size inst

let lower_bound_checked inst =
  match (total_requirement_checked inst, total_volume_checked inst) with
  | Some s, Some p ->
      Ok (max (ceil_div s inst.Instance.scale)
           (max (ceil_div p inst.Instance.m) (Instance.max_size inst)))
  | None, _ -> Error (Robust.Failure.Overflow "total requirement Σ p_j·r_j exceeds max_int")
  | _, None -> Error (Robust.Failure.Overflow "total volume Σ p_j exceeds max_int")

let lower_bound inst =
  match lower_bound_checked inst with
  | Ok lb -> lb
  | Error reason -> raise (Robust.Failure.Invalid reason)

(* Deterministic ratio histogram: every makespan-vs-Equation-(1) ratio
   computed anywhere (batch emission, the bench gate, [sosctl ratio])
   lands here, bucketed at 0.05 resolution over [1, 3] with one overflow
   bucket. The guarantees of Theorems 3.3/3.5 sit at 2 + 1/(m-2) and
   below, so the range covers every compliant algorithm with slack. *)
let h_ratio =
  Obs.Hist.create
    ~bounds:(Obs.Hist.linear_bounds ~lo:1.0 ~hi:3.0 ~step:0.05)
    "sos.bounds.ratio"

let theorem_3_3_bound inst ~makespan =
  let lb = lower_bound inst in
  let ratio =
    if lb = 0 then if makespan = 0 then 1.0 else infinity
    else float_of_int makespan /. float_of_int lb
  in
  Obs.Hist.observe h_ratio ratio;
  ratio

let guarantee_general ~m =
  if m < 3 then invalid_arg "Bounds.guarantee_general: need m >= 3";
  2.0 +. (1.0 /. float_of_int (m - 2))

let guarantee_unit ~m =
  if m < 3 then invalid_arg "Bounds.guarantee_unit: need m >= 3";
  1.0 +. (2.0 /. float_of_int (m - 2))

let guarantee_unit_modified ~m =
  if m < 2 then invalid_arg "Bounds.guarantee_unit_modified: need m >= 2";
  1.0 +. (1.0 /. float_of_int (m - 1))
