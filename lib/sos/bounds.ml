let ceil_div a b =
  if b <= 0 then invalid_arg "Bounds.ceil_div: non-positive divisor";
  if a <= 0 then 0 else ((a - 1) / b) + 1

let resource_bound inst = ceil_div (Instance.total_requirement inst) inst.Instance.scale
let volume_bound inst = ceil_div (Instance.total_volume inst) inst.Instance.m
let longest_job_bound inst = Instance.max_size inst

let lower_bound inst =
  max (resource_bound inst) (max (volume_bound inst) (longest_job_bound inst))

let theorem_3_3_bound inst ~makespan =
  let lb = lower_bound inst in
  if lb = 0 then if makespan = 0 then 1.0 else infinity
  else float_of_int makespan /. float_of_int lb

let guarantee_general ~m =
  if m < 3 then invalid_arg "Bounds.guarantee_general: need m >= 3";
  2.0 +. (1.0 /. float_of_int (m - 2))

let guarantee_unit ~m =
  if m < 3 then invalid_arg "Bounds.guarantee_unit: need m >= 3";
  1.0 +. (2.0 /. float_of_int (m - 2))

let guarantee_unit_modified ~m =
  if m < 2 then invalid_arg "Bounds.guarantee_unit_modified: need m >= 2";
  1.0 +. (1.0 /. float_of_int (m - 1))
