(** Job windows (Definition 3.1) and the auxiliary procedures of Listing 2.

    A window is a set of consecutive unfinished jobs, represented by its
    first and last member in the remaining-jobs list of a {!State.t}. The
    procedures are parameterized by [size] (maximum cardinality) and
    [budget] (available resource, in units of [1/scale]); Section 3 calls
    them with [size = m−1], [budget = scale], Section 4 with smaller values.

    All operations read neighbour information from the state; a window value
    is only meaningful against the state it was computed from. *)

type t

val empty : t
val is_empty : t -> bool
val count : t -> int
val rsum : t -> int
(** [r(W) = Σ_{j∈W} r_j] in resource units. *)

val first : t -> int option
(** [min W] — smallest requirement. *)

val last : t -> int option
(** [max W] — largest requirement. *)

val first_idx : t -> int
val last_idx : t -> int
(** {!first}/{!last} with −1 for the empty window — allocation-free
    variants for the solver hot loops. *)

val mem : t -> int -> bool
(** Index-range membership test (valid because members are consecutive). *)

val equal : t -> t -> bool
(** O(1) structural equality of the range representation
    ([first]/[last]/count/r-sum). Two equal windows over states with the
    same {!State.version} have identical member lists — a cheap
    fingerprint for "same member set" that avoids materializing
    {!members}. *)

val members : State.t -> t -> int list
(** Members in requirement order; O(|W|). *)

val of_members : State.t -> int list -> t
(** Rebuild a window from a non-empty consecutive member list (or [[]] for
    {!empty}). Raises [Invalid_argument] if the jobs are not consecutive
    unfinished jobs. *)

val left_neighbor : State.t -> t -> int option
(** [max L_t(W)]: the largest remaining job strictly left of the window;
    [None] for the empty window (since [L_t(∅) = ∅]). *)

val right_neighbor : State.t -> t -> int option
(** [min R_t(W)]: the smallest remaining job strictly right of the window;
    for the empty window, the head of the remaining list
    (since [R_t(∅) = J(t−1)]). *)

val add_left : State.t -> t -> t
(** Extend by [max L_t(W)]. Raises [Invalid_argument] if there is none. *)

val add_right : State.t -> t -> t
(** Extend by [min R_t(W)]. Raises [Invalid_argument] if there is none. *)

val drop_left : State.t -> t -> t
(** Remove [min W]. Raises [Invalid_argument] on the empty window. *)

val grow_left : State.t -> t -> size:int -> budget:int -> t
(** GrowWindowLeft, literally as printed in Listing 2:
    while [(|W| < size ∧ L_t(W) ≠ ∅) ∧ r(W) < budget] add [max L_t(W)].
    See {!grow_left_fixed} for why the printed condition is too weak. *)

val grow_left_fixed : State.t -> t -> size:int -> budget:int -> t
(** GrowWindowLeft with the condition that Claim 3.6's proof actually
    needs: add [max L_t(W)] while [|W| < size], [L_t(W) ≠ ∅] and the
    window property (b) survives the addition
    ([r(W ∪ {j} ∖ {max W}) < budget]). The literal condition [r(W) < budget]
    stalls as soon as the surviving [max W] alone pushes the total to the
    budget, parking every job left of the window behind it (measurably bad:
    see the giant+dust benchmark); the (b)-preserving condition keeps
    filling the m−2 remaining slots, which is what the analysis assumes. *)

val grow_right : State.t -> t -> size:int -> budget:int -> t
(** GrowWindowRight (Listing 2):
    while [(r(W) < budget ∧ R_t(W) ≠ ∅) ∧ |W| < size] add [min R_t(W)]. *)

val move_right : State.t -> t -> budget:int -> t
(** MoveWindowRight (Listing 2): while [(r(W) < budget ∧ R_t(W) ≠ ∅)] and
    [min W] is unstarted, slide one position right. *)

val prune : State.t -> t -> t
(** Drop finished members (line 2 of Listing 1, [W ∩ J(t−1)]). One
    allocation-free walk of the range, O(|W|). Must be called while the
    finished members are still linked in the state, i.e. before
    {!State.unlink}. *)

val repair : State.t -> t -> finished:int list -> t
(** {!prune} in O(|finished|) instead of O(|W|) for callers that already
    know the jobs that finished this step (the event-driven solver gets
    them from [Assign.apply]): subtracts the finished members lying inside
    the range from the count/requirement totals and advances the bounds
    past finished members. Finished jobs outside the range are ignored.
    Like {!prune}, must be called before {!State.unlink}; the result is
    valid after those unlinks complete (the surviving range then links
    exactly the unfinished members, in {!State.unlink} order). *)

val stable :
  ?variant:[ `Fixed | `Literal ] -> State.t -> t -> size:int -> budget:int -> bool
(** O(1) fixed-point test: [stable st w] is [true] iff [compute st w = w]
    on the current state, decided by checking that all three of
    {!compute}'s loops stall on their first test (grow-left: full, at the
    left border, or the variant's budget condition; grow-right and
    move-right: [r(W) ≥ budget] or at the right border, plus [min W]
    started for move-right). The event-driven solver calls this instead of
    replaying {!compute} when deciding whether a certified span may be
    skipped; [false] never mis-certifies, it only forfeits a skip.
    [Empty] reports [false] (on a state with remaining jobs, {!compute}
    would grow it). *)

val compute :
  ?variant:[ `Fixed | `Literal ] -> State.t -> t -> size:int -> budget:int -> t
(** Grow left, grow right, move right — lines 3–5 of Listing 1. The input
    is the pruned window carried over from the previous step ([empty]
    initially). [`Fixed] (the default) uses {!grow_left_fixed}; [`Literal]
    uses the condition as printed in the paper (kept for the ablation
    experiments). *)

val is_window : State.t -> t -> budget:int -> bool
(** Properties (a)–(d) of Definition 3.1, with the resource total
    generalized from 1 to [budget]. *)

val is_k_maximal : State.t -> t -> k:int -> budget:int -> bool
(** Properties (a)–(f): a window of size ≤ k that is at the left border or
    has exactly [k] jobs, and is at the right border or uses [r(W) ≥ budget]. *)

val is_effectively_maximal : State.t -> t -> k:int -> budget:int -> bool
(** Properties (a)–(d) plus the weakening of (e) that Listing 2 actually
    guarantees: [|W| = k ∨ L_t(W) = ∅ ∨ r(W) ≥ budget], together with (f).

    {b Reproduction finding.} Lemma 3.7 claims every processed window is
    (m−1)-maximal, and Claim 3.6's proof argues GrowWindowLeft cannot stall
    on its budget condition. That argument fails when the previous window's
    [max] job survives a step in which smaller members finish: the carried
    window can then satisfy [r(W) ≥ 1] with [|W| < m−1] while unfinished
    jobs remain on its left, so GrowWindowLeft adds nothing and property (e)
    is violated (see the regression test in [suite_algorithm.ml] for a
    concrete 7-processor instance). The makespan analysis is unaffected:
    in every such "stalled" step the full resource is distributed, so the
    step is covered by the [T_R] case of the proof of Theorem 3.3 — which is
    why the empirical ratio tests still hold. The engine's [~check] mode
    therefore asserts this predicate rather than {!is_k_maximal}. *)

val pp : Format.formatter -> t -> unit
