type case = Case_full | Case_partial

(* Per-step case mix and extra-job count (doc/OBSERVABILITY.md). *)
let c_case_full = Obs.Metrics.counter "sos.assign.case_full"
let c_case_partial = Obs.Metrics.counter "sos.assign.case_partial"
let c_extra = Obs.Metrics.counter "sos.assign.extra_allocs"

type outcome = {
  allocs : Schedule.alloc list;
  window : Window.t;
  case : case;
  extra : int option;
  repeats : int;
}

let req = State.req

(* Reusable allocation buffer: [compute] builds each step's allocations
   into it in window order and materializes the final list in one backward
   pass — no List.rev, no O(n) [@] append for the extra job. The
   event-driven solver allocates one scratch per run and passes it to
   every iteration. *)
type scratch = {
  mutable buf : Schedule.alloc array;
  mutable len : int;
  mutable iota_idx : int; (* scratch index of the fractured member, −1 if none *)
  mutable iota_job : int; (* the fractured member itself, −1 if none *)
  mutable iota_q : int; (* its q = s mod r; valid while iota_idx ≥ 0 *)
  mutable cache : Schedule.alloc array; (* per-job last allocation record *)
}

let dummy_alloc = { Schedule.job = -1; assigned = 0; consumed = 0 }

let make_scratch () =
  {
    buf = Array.make 16 dummy_alloc;
    len = 0;
    iota_idx = -1;
    iota_job = -1;
    iota_q = 0;
    cache = Array.make 16 dummy_alloc;
  }

(* Allocation records are immutable, and a plain member receives the same
   (r_j, r_j) allocation in block after block: reuse the record built last
   time instead of allocating a fresh one per block. Schedules retain
   every block's allocation list, so sharing identical records across
   blocks cuts what the GC must promote per iteration — the dominant cost
   of the solver hot loop once the stepping itself is event-driven.
   Consumers only ever read the records, so sharing is unobservable. *)
let cached sc j assigned consumed =
  if j >= Array.length sc.cache then begin
    let len = Array.length sc.cache in
    let cap = if j + 1 > 2 * len then j + 1 else 2 * len in
    let cache = Array.make cap dummy_alloc in
    Array.blit sc.cache 0 cache 0 len;
    sc.cache <- cache
  end;
  let a = sc.cache.(j) in
  if a.Schedule.assigned = assigned && a.Schedule.consumed = consumed then a
  else begin
    let a = { Schedule.job = j; assigned; consumed } in
    sc.cache.(j) <- a;
    a
  end

let push sc a =
  let cap = Array.length sc.buf in
  if sc.len = cap then begin
    let buf = Array.make (2 * cap) dummy_alloc in
    Array.blit sc.buf 0 buf 0 cap;
    sc.buf <- buf
  end;
  sc.buf.(sc.len) <- a;
  sc.len <- sc.len + 1

let list_of sc =
  let rec go i acc = if i < 0 then acc else go (i - 1) (sc.buf.(i) :: acc) in
  go (sc.len - 1) []

(* The single fused walk of the window's linked-list range (closure-free,
   top-level recursion over the raw state arrays): push every member's
   tentative full-requirement allocation, record the unique fractured
   member (index and remainder q) in the scratch, and fold the finish
   horizons of the plain members — the min over j ∉ {ι, max W} of
   [s_j/r_j − 1], the number of FURTHER steps this allocation can repeat
   before the earliest of them finishes. Every job starts at
   s_j = p_j·r_j, so a plain member's s is always a positive multiple of
   its r: it consumes exactly r per step and finishes exactly, on the
   span's own allocation (the horizon is finish-inclusive). One division
   per member computes both s/r and s mod r; ι's and max W's horizons are
   case-dependent and folded in by [compute] after the patches. *)
let rec walk_fused sc (v : State.view) mx j k_min =
  let m = v.State.v_q.(j) in
  if m <> 0 then begin
    (* The fractured member's entry is patched by the case split, and
       max W's final entry depends on the case: push a placeholder for ι,
       push nothing yet for max W — [compute] appends its entry last. *)
    if sc.iota_idx >= 0 then
      invalid_arg "Assign.compute: more than one fractured job in window";
    sc.iota_idx <- sc.len;
    sc.iota_job <- j;
    sc.iota_q <- m;
    push sc dummy_alloc
  end
  else if j <> mx then begin
    (* Plain member: s is a positive multiple of r (s_j = p_j·r_j at the
       start, and m = 0 here), so it receives and consumes exactly r. *)
    let r = v.State.v_r.(j) in
    push sc (cached sc j r r)
  end;
  let k_min =
    if m = 0 && j <> mx && v.State.v_d.(j) - 1 < k_min then v.State.v_d.(j) - 1
    else k_min
  in
  if j = mx then k_min
  else begin
    let nx = v.State.v_next.(j) in
    if nx < 0 then invalid_arg "Assign.compute: broken window range"
    else walk_fused sc v mx nx k_min
  end

(* Predictive stability: [repeats] is the largest k such that — PROVIDED
   the window is at a fixed point of Window.compute — the next k steps
   provably reproduce this exact allocation. Plain members cap k at their
   finish horizon (folded during the walk); the at-most-one receiver of a
   non-multiple amount additionally caps it at its q-event, the minimal
   i ≥ 1 with i·c ≡ q (mod r) — a linear congruence — because the case
   split changes when its remainder hits 0:

   - Case 1 with ι: repeats 0. ι receives q_ι and un-fractures; the next
     step hands it r_ι ≠ q_ι.
   - Case 1 without ι: max W receives budget − r(W∖{max W}) capped at r.
     Its q may walk, but fractured or not it is handed the same amount
     (Case 2 with ι = max W computes the identical value, and the flip
     back needs r(W) ≥ budget — automatic here). Only its finish horizon
     caps k.
   - Case 2, ι ≠ max W (or none): max W is a plain member; its horizon
     joins the min. ι's amount min(budget − r(W∖F), s_ι, r_ι) is constant
     while it stays fractured and s_ι ≥ c, so k is capped by its finish
     horizon and, when c is not a multiple of r_ι, its q-event.
   - Case 2, ι = max W: same as the previous case with max W's plain-
     member horizon replaced by ι's capped one.
   - A step that finishes a job (horizon 0), starts the Case-2 extra job
     (the window provably changes), or whose ι un-fractures repeats 0. *)
let compute ?scratch st w ~budget ~extra =
  if Window.is_empty w then invalid_arg "Assign.compute: empty window";
  let sc =
    match scratch with
    | Some sc ->
        sc.len <- 0;
        sc.iota_idx <- -1;
        sc.iota_job <- -1;
        sc
    | None -> make_scratch ()
  in
  let v = State.view st in
  let first = Window.first_idx w in
  let mx = Window.last_idx w in
  let k_walk = walk_fused sc v mx first max_int in
  let iota_idx = sc.iota_idx in
  let iota = sc.iota_job in
  let wrsum = Window.rsum w in
  let r_rest = wrsum - (if iota >= 0 then v.State.v_r.(iota) else 0) in
  if r_rest >= budget then begin
    (* Case 1. The fractured job cannot be max W here: that would give
       r(W∖F) = r(W∖{max W}) < budget by window property (b). *)
    if iota = mx then invalid_arg "Assign.compute: fractured max W in case 1";
    let iota_q = sc.iota_q in
    if iota >= 0 then sc.buf.(iota_idx) <- cached sc iota iota_q iota_q;
    (* Resource handed out before max W (pushed last, below): every other
       member's full requirement, with ι's replaced by q_ι. *)
    let r_mx = v.State.v_r.(mx) in
    let spent =
      wrsum - r_mx - (if iota >= 0 then v.State.v_r.(iota) - iota_q else 0)
    in
    (* WLOG R_i(t) ≤ r_j: cap the handed-out share. Property (b) gives
       spent < budget, so max W always receives and consumes ≥ 1. *)
    let a_mx = if budget - spent < r_mx then budget - spent else r_mx in
    let s_mx = v.State.v_s.(mx) in
    let c_mx = if a_mx < s_mx then a_mx else s_mx in
    push sc (cached sc mx a_mx c_mx);
    Obs.Metrics.incr c_case_full;
    let repeats =
      if iota >= 0 then 0
      else begin
        let s_post = s_mx - c_mx in
        if s_post = 0 then 0
        else begin
          let k = s_post / c_mx in
          if k < k_walk then k else k_walk
        end
      end
    in
    { allocs = list_of sc; window = w; case = Case_full; extra = None; repeats }
  end
  else begin
    (* Case 2: r(W∖F) < budget. *)
    let iota_amount =
      if iota < 0 then 0
      else begin
        let lim = budget - r_rest in
        let s_i = v.State.v_s.(iota) in
        let r_i = v.State.v_r.(iota) in
        let sr = if s_i < r_i then s_i else r_i in
        if lim < sr then lim else sr
      end
    in
    if iota >= 0 then sc.buf.(iota_idx) <- cached sc iota iota_amount iota_amount;
    (* max W: patched above if it is ι, a plain full-requirement receiver
       otherwise (its s is a positive multiple of its r here). *)
    if iota <> mx then begin
      let r_mx = v.State.v_r.(mx) in
      push sc (cached sc mx r_mx r_mx)
    end;
    let leftover = budget - r_rest - iota_amount in
    let extra_job = if extra && leftover > 0 then Window.right_neighbor st w else None in
    Obs.Metrics.incr c_case_partial;
    match extra_job with
    | Some x ->
        let a_x = min leftover (req st x) in
        push sc (cached sc x a_x (min a_x (State.s st x)));
        Obs.Metrics.incr c_extra;
        {
          allocs = list_of sc;
          window = Window.add_right st w;
          case = Case_partial;
          extra = Some x;
          repeats = 0;
        }
    | None ->
        let repeats =
          let k1 =
            if iota = mx then k_walk
            else begin
              let k = v.State.v_d.(mx) - 1 in
              if k < k_walk then k else k_walk
            end
          in
          if iota < 0 then k1
          else begin
            let c = iota_amount in
            let s_post = v.State.v_s.(iota) - c in
            if s_post = 0 then 0
            else begin
              let r_i = v.State.v_r.(iota) in
              let k = s_post / c in
              let k1 = if k < k1 then k else k1 in
              if c = r_i then k1 (* a multiple: ι's remainder never moves *)
              else begin
                (* q_post = (q − c) mod r without a division: 0 < c < r_i *)
                let q_post =
                  let x = sc.iota_q - c in
                  if x < 0 then x + r_i else x
                in
                if q_post = 0 then 0 (* un-fractures next step: case split flips *)
                else begin
                  match Prelude.Numth.min_congruence_solution ~c ~q:q_post ~r:r_i with
                  | None -> k1
                  | Some e -> if e < k1 then e else k1
                end
              end
            end
          end
        in
        { allocs = list_of sc; window = w; case = Case_partial; extra = None; repeats }
  end

let apply st outcome = State.consume_allocs st outcome.allocs ~reps:1

let apply_n st outcome ~reps =
  if reps < 1 then invalid_arg "Assign.apply_n: reps must be >= 1";
  State.consume_allocs st outcome.allocs ~reps
