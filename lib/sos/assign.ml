type case = Case_full | Case_partial

(* Per-step case mix and extra-job count (doc/OBSERVABILITY.md). *)
let c_case_full = Obs.Metrics.counter "sos.assign.case_full"
let c_case_partial = Obs.Metrics.counter "sos.assign.case_partial"
let c_extra = Obs.Metrics.counter "sos.assign.extra_allocs"

type outcome = {
  allocs : Schedule.alloc list;
  window : Window.t;
  case : case;
  extra : int option;
}

let req st i = (Instance.job (State.instance st) i).Job.req

(* An allocation's consumption: a job can use at most min(assigned, r_j) in
   one step, and never more than its remaining requirement. *)
let alloc st i assigned =
  let consumed = min (min assigned (req st i)) (State.s st i) in
  { Schedule.job = i; assigned; consumed }

(* Reusable allocation buffer: [compute] builds each step's allocations
   into it in window order and materializes the final list in one backward
   pass — no List.rev, no O(n) [@] append for the extra job. The
   step-skipping solver allocates one scratch per run and passes it to
   every iteration. *)
type scratch = { mutable buf : Schedule.alloc array; mutable len : int }

let dummy_alloc = { Schedule.job = -1; assigned = 0; consumed = 0 }

let make_scratch () = { buf = Array.make 16 dummy_alloc; len = 0 }

let push sc a =
  let cap = Array.length sc.buf in
  if sc.len = cap then begin
    let buf = Array.make (2 * cap) dummy_alloc in
    Array.blit sc.buf 0 buf 0 cap;
    sc.buf <- buf
  end;
  sc.buf.(sc.len) <- a;
  sc.len <- sc.len + 1

let list_of sc =
  let rec go i acc = if i < 0 then acc else go (i - 1) (sc.buf.(i) :: acc) in
  go (sc.len - 1) []

let compute ?scratch st w ~budget ~extra =
  if Window.is_empty w then invalid_arg "Assign.compute: empty window";
  let sc =
    match scratch with
    | Some sc ->
        sc.len <- 0;
        sc
    | None -> make_scratch ()
  in
  let first = match Window.first w with Some j -> j | None -> assert false in
  let mx = match Window.last w with Some j -> j | None -> assert false in
  (* One walk of the window's linked-list range per pass — the member list
     is never materialized. *)
  let iter_window f =
    let rec go j =
      f j;
      if j <> mx then
        match State.next_remaining st j with
        | Some k -> go k
        | None -> invalid_arg "Assign.compute: broken window range"
    in
    go first
  in
  let iota = ref (-1) in
  iter_window (fun j ->
      if State.fractured st j then
        if !iota < 0 then iota := j
        else invalid_arg "Assign.compute: more than one fractured job in window");
  let iota = if !iota < 0 then None else Some !iota in
  let r_rest =
    Window.rsum w - (match iota with Some i -> req st i | None -> 0)
  in
  if r_rest >= budget then begin
    (* Case 1. The fractured job cannot be max W here: that would give
       r(W∖F) = r(W∖{max W}) < budget by window property (b). *)
    (match iota with
    | Some i when i = mx -> invalid_arg "Assign.compute: fractured max W in case 1"
    | _ -> ());
    let spent = ref 0 in
    iter_window (fun j ->
        let a =
          if Some j = iota then alloc st j (State.q st j)
          else if j = mx then begin
            let rest = budget - !spent in
            (* WLOG R_i(t) ≤ r_j: cap the handed-out share. *)
            alloc st j (min rest (req st j))
          end
          else alloc st j (req st j)
        in
        spent := !spent + a.Schedule.assigned;
        push sc a);
    Obs.Metrics.incr c_case_full;
    { allocs = list_of sc; window = w; case = Case_full; extra = None }
  end
  else begin
    (* Case 2: r(W∖F) < budget. *)
    let iota_amount =
      match iota with
      | None -> 0
      | Some i -> min (budget - r_rest) (min (State.s st i) (req st i))
    in
    iter_window (fun j ->
        push sc (if Some j = iota then alloc st j iota_amount else alloc st j (req st j)));
    let leftover = budget - r_rest - iota_amount in
    let extra_job = if extra && leftover > 0 then Window.right_neighbor st w else None in
    Obs.Metrics.incr c_case_partial;
    match extra_job with
    | Some x ->
        push sc (alloc st x (min leftover (req st x)));
        Obs.Metrics.incr c_extra;
        {
          allocs = list_of sc;
          window = Window.add_right st w;
          case = Case_partial;
          extra = Some x;
        }
    | None -> { allocs = list_of sc; window = w; case = Case_partial; extra = None }
  end

let apply st outcome =
  List.filter_map
    (fun a ->
      State.consume st a.Schedule.job a.Schedule.consumed;
      if State.finished st a.Schedule.job then Some a.Schedule.job else None)
    outcome.allocs
