type case = Case_full | Case_partial

type outcome = {
  allocs : Schedule.alloc list;
  window : Window.t;
  case : case;
  extra : int option;
}

let req st i = (Instance.job (State.instance st) i).Job.req

(* An allocation's consumption: a job can use at most min(assigned, r_j) in
   one step, and never more than its remaining requirement. *)
let alloc st i assigned =
  let consumed = min (min assigned (req st i)) (State.s st i) in
  { Schedule.job = i; assigned; consumed }

let compute st w ~budget ~extra =
  if Window.is_empty w then invalid_arg "Assign.compute: empty window";
  let ms = Window.members st w in
  let iota =
    match List.filter (State.fractured st) ms with
    | [] -> None
    | [ i ] -> Some i
    | _ -> invalid_arg "Assign.compute: more than one fractured job in window"
  in
  let mx = match Window.last w with Some j -> j | None -> assert false in
  let r_rest =
    Window.rsum w - (match iota with Some i -> req st i | None -> 0)
  in
  if r_rest >= budget then begin
    (* Case 1. The fractured job cannot be max W here: that would give
       r(W∖F) = r(W∖{max W}) < budget by window property (b). *)
    (match iota with
    | Some i when i = mx -> invalid_arg "Assign.compute: fractured max W in case 1"
    | _ -> ());
    let spent = ref 0 in
    let allocs =
      List.map
        (fun j ->
          let a =
            if Some j = iota then alloc st j (State.q st j)
            else if j = mx then begin
              let rest = budget - !spent in
              (* WLOG R_i(t) ≤ r_j: cap the handed-out share. *)
              alloc st j (min rest (req st j))
            end
            else alloc st j (req st j)
          in
          spent := !spent + a.Schedule.assigned;
          a)
        ms
    in
    { allocs; window = w; case = Case_full; extra = None }
  end
  else begin
    (* Case 2: r(W∖F) < budget. *)
    let iota_amount =
      match iota with
      | None -> 0
      | Some i -> min (budget - r_rest) (min (State.s st i) (req st i))
    in
    let allocs =
      List.map
        (fun j ->
          if Some j = iota then alloc st j iota_amount else alloc st j (req st j))
        ms
    in
    let leftover = budget - r_rest - iota_amount in
    let extra_job = if extra && leftover > 0 then Window.right_neighbor st w else None in
    match extra_job with
    | Some x ->
        let a = alloc st x (min leftover (req st x)) in
        {
          allocs = allocs @ [ a ];
          window = Window.add_right st w;
          case = Case_partial;
          extra = Some x;
        }
    | None -> { allocs; window = w; case = Case_partial; extra = None }
  end

let apply st outcome =
  List.filter_map
    (fun a ->
      State.consume st a.Schedule.job a.Schedule.consumed;
      if State.finished st a.Schedule.job then Some a.Schedule.job else None)
    outcome.allocs
