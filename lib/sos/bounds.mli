(** Lower bounds on the optimal makespan (Equation (1) of the paper).

    For any schedule, including the preemptive optimum:
    [|OPT| ≥ max( ⌈Σ_j s_j⌉ , ⌈(Σ_j p_j)/m⌉ )].
    In addition every job needs [⌈s_j/r_j⌉ = p_j] dedicated steps, giving the
    (also preemption-valid) term [max_j p_j]; and the proof of Theorem 3.3
    additionally uses [r(J) ≤ Σ_j s_j ≤ OPT]. *)

val resource_bound : Instance.t -> int
(** [⌈Σ_j s_j / scale⌉] — the resource can deliver at most 1 per step. *)

val volume_bound : Instance.t -> int
(** [⌈Σ_j p_j / m⌉] — each unit of volume needs a processor-step. *)

val longest_job_bound : Instance.t -> int
(** [max_j p_j] — a job occupies one processor for at least [p_j] steps. *)

val lower_bound : Instance.t -> int
(** Maximum of the three bounds above; [0] for the empty instance. The
    sums are overflow-guarded: on an instance whose [Σ p_j] or
    [Σ p_j·r_j] exceeds [max_int] (e.g. [p_j ≈ max_int/2] with tiny
    [r_j]) this raises [Robust.Failure.Invalid (Overflow _)] instead of
    returning a silently negative bound. *)

val lower_bound_checked : Instance.t -> (int, Robust.Failure.invalid) result
(** Non-raising form of {!lower_bound} for entry points that report
    structured failures. *)

val theorem_3_3_bound : Instance.t -> makespan:int -> float
(** [makespan / lower_bound] as a float ([infinity] when the lower bound is
    0 and makespan positive, [1.0] when both are 0). *)

val guarantee_general : m:int -> float
(** The proven ratio [2 + 1/(m−2)] for general job sizes (requires m ≥ 3). *)

val guarantee_unit : m:int -> float
(** The factor [1 + 2/(m−2)] of the unit-size guarantee
    [|S| ≤ (1 + 2/(m−2))·OPT + 1] (requires m ≥ 3). *)

val guarantee_unit_modified : m:int -> float
(** The factor [1 + 1/(m−1)] of the m-maximal-window modification /
    Corollary 3.9 (requires m ≥ 2). *)
