let remaining_steps s r = ((s - 1) / r) + 1

let run ?(fuel = 2_000_000) inst =
  let n = Instance.n inst in
  let m = inst.Instance.m and budget = inst.Instance.scale in
  let s = Array.init n (fun i -> Job.s (Instance.job inst i)) in
  let req i = (Instance.job inst i).Job.req in
  let alive = ref (List.init n Fun.id) in
  let steps = ref [] in
  let fuel = ref fuel in
  while !alive <> [] do
    decr fuel;
    if !fuel < 0 then Robust.Failure.internal_error "Preemptive.run: fuel exhausted";
    (* Jobs by descending remaining step count (ties: larger requirement
       first, to drain the resource-hungry ones early). *)
    let order =
      List.sort
        (fun a b ->
          compare
            (remaining_steps s.(b) (req b), req b, a)
            (remaining_steps s.(a) (req a), req a, b))
        !alive
    in
    let rec fill chosen count left = function
      | [] -> List.rev chosen
      | _ when count = m || left = 0 -> List.rev chosen
      | j :: rest ->
          let give = min (min (req j) left) s.(j) in
          if give = 0 then List.rev chosen
          else fill ((j, give) :: chosen) (count + 1) (left - give) rest
    in
    let shares = fill [] 0 budget order in
    let allocs =
      List.map
        (fun (j, give) ->
          s.(j) <- s.(j) - give;
          { Schedule.job = j; assigned = give; consumed = give })
        shares
    in
    if allocs = [] then Robust.Failure.internal_error "Preemptive.run: no progress";
    steps := { Schedule.allocs; repeat = 1 } :: !steps;
    alive := List.filter (fun j -> s.(j) > 0) !alive
  done;
  Schedule.make inst (List.rev !steps)
