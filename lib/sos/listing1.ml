type step_info = {
  time : int;
  window : int list;
  window_rsum : int;
  case : Assign.case;
  extra : int option;
  at_left_border : bool;
  at_right_border : bool;
  finished : int list;
}

let run_traced ?(check = false) ?(variant = `Fixed) inst =
  let st = State.create inst in
  let size = inst.Instance.m - 1 in
  let budget = inst.Instance.scale in
  let steps = ref [] in
  let trace = ref [] in
  let carried = ref Window.empty in
  let fuel = ref (Instance.total_requirement inst + 1) in
  while not (State.all_finished st) do
    decr fuel;
    if !fuel < 0 then Robust.Failure.internal_error "Listing1.run: no progress";
    let w = Window.compute ~variant st !carried ~size ~budget in
    if check then assert (Window.is_effectively_maximal st w ~k:size ~budget);
    let members = Window.members st w in
    let info_left = Window.left_neighbor st w = None in
    let info_right = Window.right_neighbor st w = None in
    let outcome = Assign.compute st w ~budget ~extra:true in
    let finished = Assign.apply st outcome in
    if check then begin
      (* Observation 3.2: at most one fractured job after the step. *)
      let fractured =
        List.filter (State.fractured st) (Window.members st outcome.Assign.window)
      in
      assert (List.length fractured <= 1)
    end;
    steps := { Schedule.allocs = outcome.Assign.allocs; repeat = 1 } :: !steps;
    trace :=
      {
        time = State.now st + 1;
        window = members;
        window_rsum = Window.rsum w;
        case = outcome.Assign.case;
        extra = outcome.Assign.extra;
        at_left_border = info_left;
        at_right_border = info_right;
        finished;
      }
      :: !trace;
    let survivors = Window.prune st outcome.Assign.window in
    List.iter (State.unlink st) finished;
    carried := survivors;
    State.tick st
  done;
  (Schedule.make inst (List.rev !steps), List.rev !trace)

let run ?check ?variant inst = fst (run_traced ?check ?variant inst)
