(** Mutable execution state of the sliding-window algorithms.

    Tracks, per job [j], the remaining total resource requirement
    [s_j(t) = s_j − Σ shares received] (Section 1.1), and keeps the
    still-unfinished jobs in a doubly-linked list in requirement order so
    that window neighbours ([max L_t(W)], [min R_t(W)]) are O(1). *)

type t

val create : Instance.t -> t
(** Fresh state at time 0: [s_j(0) = s_j], no job started. *)

val copy : t -> t
val instance : t -> Instance.t
val now : t -> int
(** Number of completed time steps. *)

val tick : t -> unit
(** Advance the clock by one step. *)

val advance : t -> int -> unit
(** Advance the clock by [k ≥ 0] steps (used by the step-skipping solver). *)

val version : t -> int
(** Monotone dirty counter of membership changes: bumped by every
    {!unlink}, untouched by {!consume}/{!tick}. Two observations with the
    same version see the same remaining-jobs list (same members, same
    order), so a [(version, window-range)] pair is an O(1) fingerprint for
    "the window's member set is unchanged" without rebuilding and
    structurally comparing member lists. *)

val remaining_count : t -> int
val all_finished : t -> bool

val s : t -> int -> int
(** Remaining requirement of job [i], in resource units. *)

val started : t -> int -> bool
(** [s_i(t) < s_i]. *)

val finished : t -> int -> bool
(** [s_i(t) = 0]. *)

val fractured : t -> int -> bool
(** [s_i(t) ∉ {0, r_i, 2·r_i, …}] — Section 3's fractured predicate. *)

val q : t -> int -> int
(** [q_i(t) = s_i(t) mod r_i] (0 when unfractured). *)

val req : t -> int -> int
(** [r_i], denormalized into the state so the hot loops pay one array read
    instead of an instance lookup. *)

val head : t -> int option
(** Smallest-requirement unfinished job. *)

val next_remaining : t -> int -> int option
(** Successor among unfinished jobs; the argument must itself be unfinished. *)

val prev_remaining : t -> int -> int option

val head_idx : t -> int
(** {!head}/{!next_remaining}/{!prev_remaining} with −1 for "none" instead
    of an option — the allocation-free variants the solver hot loops use
    (a [Some] per linked-list hop is the dominant allocation otherwise). *)

val next_idx : t -> int -> int
val prev_idx : t -> int -> int

type view = {
  v_s : int array;
  v_r : int array;
  v_d : int array;  (** [s_j/r_j], maintained by every consume *)
  v_q : int array;  (** [s_j mod r_j], maintained by every consume *)
  v_next : int array;
}
(** Read-only hot view over the state's internal arrays ([s_j], [r_j], the
    cached quotient/remainder by [r_j], and the next-links with −1 for
    "none"). Shared with the state itself — callers must never write
    through it; it exists so the solver's innermost walks pay raw array
    reads instead of cross-module calls (which ocamlopt does not inline
    without flambda) and skip the 64-bit divisions entirely. Stays valid
    across {!consume}/{!unlink}: the arrays are updated in place. *)

val view : t -> view
(** O(1); the record is built once per state, not per call. *)

val consume : t -> int -> int -> unit
(** [consume t i amount] reduces [s_i] by [amount]; raises
    [Invalid_argument] if [amount < 0] or [amount > s_i]. Does not unlink. *)

val consume_allocs : t -> Schedule.alloc list -> reps:int -> int list
(** Consume [reps ≥ 1] copies of every allocation's [consumed] in one walk
    and return the jobs that reached [s = 0], in allocation order. Updates
    the cached quotient/remainder without a division for full-requirement
    receivers. Same checks as {!consume} per allocation; does not unlink
    and does not advance the clock. *)

val unlink : t -> int -> unit
(** Remove a finished job from the remaining list. Raises
    [Invalid_argument] if the job is not finished or already unlinked. *)

val remaining_jobs : t -> int list
(** Unfinished jobs in requirement order (O(n); for tests/traces). *)
