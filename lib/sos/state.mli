(** Mutable execution state of the sliding-window algorithms.

    Tracks, per job [j], the remaining total resource requirement
    [s_j(t) = s_j − Σ shares received] (Section 1.1), and keeps the
    still-unfinished jobs in a doubly-linked list in requirement order so
    that window neighbours ([max L_t(W)], [min R_t(W)]) are O(1). *)

type t

val create : Instance.t -> t
(** Fresh state at time 0: [s_j(0) = s_j], no job started. *)

val copy : t -> t
val instance : t -> Instance.t
val now : t -> int
(** Number of completed time steps. *)

val tick : t -> unit
(** Advance the clock by one step. *)

val advance : t -> int -> unit
(** Advance the clock by [k ≥ 0] steps (used by the step-skipping solver). *)

val version : t -> int
(** Monotone dirty counter of membership changes: bumped by every
    {!unlink}, untouched by {!consume}/{!tick}. Two observations with the
    same version see the same remaining-jobs list (same members, same
    order), so a [(version, window-range)] pair is an O(1) fingerprint for
    "the window's member set is unchanged" — the step-skipping solver uses
    it instead of rebuilding and structurally comparing member lists. *)

val remaining_count : t -> int
val all_finished : t -> bool

val s : t -> int -> int
(** Remaining requirement of job [i], in resource units. *)

val started : t -> int -> bool
(** [s_i(t) < s_i]. *)

val finished : t -> int -> bool
(** [s_i(t) = 0]. *)

val fractured : t -> int -> bool
(** [s_i(t) ∉ {0, r_i, 2·r_i, …}] — Section 3's fractured predicate. *)

val q : t -> int -> int
(** [q_i(t) = s_i(t) mod r_i] (0 when unfractured). *)

val head : t -> int option
(** Smallest-requirement unfinished job. *)

val next_remaining : t -> int -> int option
(** Successor among unfinished jobs; the argument must itself be unfinished. *)

val prev_remaining : t -> int -> int option

val consume : t -> int -> int -> unit
(** [consume t i amount] reduces [s_i] by [amount]; raises
    [Invalid_argument] if [amount < 0] or [amount > s_i]. Does not unlink. *)

val unlink : t -> int -> unit
(** Remove a finished job from the remaining list. Raises
    [Invalid_argument] if the job is not finished or already unlinked. *)

val remaining_jobs : t -> int list
(** Unfinished jobs in requirement order (O(n); for tests/traces). *)
