(** The m-maximal-window engine for unit-size jobs / splittable items.

    For unit-size jobs ([p_j = 1], so [s_j = r_j]) the paper's modification
    of Listing 1 treats the single started job as a fresh job whose
    requirement is its remaining [s_ι(t−1)], reordered into the requirement
    order. The reserved m-th processor is then unnecessary, windows may have
    [m] members, and the asymptotic ratio improves to [1 + 1/(m−1)]
    (Theorem 3.3, discussion; Corollary 3.9 for bin packing, where a bin is
    a time step and the cardinality constraint [k] plays the role of [m]).

    This module works on bare [(id, size)] items; one {!step} is one time
    step / one bin. Re-running a partially processed item later makes the
    induced SoS schedule preemptive, which is exactly what bin packing with
    splittable items allows; the non-preemptive unit-size guarantee is
    provided by {!Listing1} instead. *)

type item = { id : int; size : int }
(** [size] in resource units; must be positive. *)

type alloc = int * int
(** [(item id, amount)] with a positive amount. *)

val sort_items : item list -> item list
(** Non-decreasing size, ties by id. *)

val step : item list -> size:int -> budget:int -> alloc list * item list
(** [step items ~size ~budget] runs one time step on the remaining [items]
    (which must be sorted, cf. {!sort_items}): selects a window of at most
    [size] consecutive items (grow right from the left border, then slide
    right while the window's total stays below [budget]), finishes every
    window member except possibly the last, gives the last the remaining
    budget, and returns the allocations together with the remaining items
    (still sorted; the split item is re-inserted by its new size).
    With [size ≤ 0] or [budget ≤ 0] or no items, returns [([], items)]. *)

val pack : item list -> size:int -> budget:int -> alloc list list
(** Iterates {!step} until no items remain: the full bin sequence. Input
    need not be sorted. Raises [Invalid_argument] on a non-positive item
    size, or if some item can never make progress
    ([size ≤ 0] or [budget ≤ 0] with items present). *)

val run : Instance.t -> Schedule.t
(** The modified unit-size algorithm on an SoS instance (all sizes must be
    1; raises [Invalid_argument] otherwise): windows of size [m], budget =
    the full resource. The result may be preemptive — validate it with
    [~preemption_ok:true]. *)

val run_nonpreemptive : Instance.t -> Schedule.t
(** The same m-maximal modification, but keeping MoveWindowRight's
    started-job guard: the single partial job is never slid out of the
    window, so it is processed in every step from start to finish and the
    schedule is genuinely non-preemptive (plain [Schedule.validate]
    passes). The window may then stop short of the right border with
    [r(W) < 1] — exactly the situation the paper's "treat ι as a fresh
    job" reinterpretation papers over; empirically the bound
    [(1+1/(m−1))·LB + 1] still holds (tested), matching the paper's claim
    that the modification works for unit-size SoS itself. *)
