(** A job of the Shared Resource Job-Scheduling (SoS) problem.

    A job [j] has a processing volume (size) [p_j ∈ ℕ] and a resource
    requirement [r_j > 0]. Resource amounts are exact fixed-point rationals:
    an instance fixes a [scale ∈ ℕ] and every requirement/share is an integer
    count of [1/scale] units (see {!Instance}). The total resource
    requirement is [s_j = p_j · r_j] (Section 1.1 of the paper). *)

type t = {
  id : int;  (** position in the instance's non-decreasing-[r] order *)
  size : int;  (** [p_j ≥ 1] *)
  req : int;  (** [r_j] in resource units, [≥ 1]; may exceed the scale *)
}

val v : id:int -> size:int -> req:int -> t
(** Smart constructor; raises [Invalid_argument] on non-positive size/req or
    negative id. *)

val s : t -> int
(** Total resource requirement [s_j = p_j · r_j], in resource units. *)

val equal : t -> t -> bool
val compare_req : t -> t -> int
(** Order by requirement, ties broken by id (a strict total order). *)

val pp : Format.formatter -> t -> unit
