(* Deterministic counters over the solver's internal structure plus one
   wall-clock histogram; all disabled by default (doc/OBSERVABILITY.md).
   The unit counters reconcile exactly with Schedule analytics on the
   produced schedule: consumed = Σ s_j, assigned − consumed = total_waste,
   iterations + skipped_steps = makespan (tested in suite_obs). *)
let c_runs = Obs.Metrics.counter "sos.fast.runs"
let c_iters = Obs.Metrics.counter "sos.fast.iterations"
let c_blocks = Obs.Metrics.counter "sos.fast.blocks"
let c_skip_hits = Obs.Metrics.counter "sos.fast.skip_hits"
let c_skipped = Obs.Metrics.counter "sos.fast.skipped_steps"
let c_makespan = Obs.Metrics.counter "sos.fast.makespan_steps"
let c_assigned = Obs.Metrics.counter "sos.fast.assigned_units"
let c_consumed = Obs.Metrics.counter "sos.fast.consumed_units"
let c_waste = Obs.Metrics.counter "sos.fast.waste_units"
let t_run = Obs.Metrics.timer "sos.fast.run"

(* Resource accounting for one emitted RLE block ([repeat] identical
   steps): fold the allocations once, scale by the repeat count. *)
let record_block allocs repeat =
  let a = ref 0 and c = ref 0 in
  List.iter
    (fun (x : Schedule.alloc) ->
      a := !a + x.assigned;
      c := !c + x.consumed)
    allocs;
  Obs.Metrics.incr c_blocks;
  Obs.Metrics.add c_assigned (repeat * !a);
  Obs.Metrics.add c_consumed (repeat * !c);
  Obs.Metrics.add c_waste (repeat * (!a - !c))

(* Single-walk structural equality with early exit; only consulted after
   the O(1) (version, window) fingerprint check passes, so the lists are
   the same ≤ m members and usually equal. *)
let rec alloc_eq (a : Schedule.alloc list) (b : Schedule.alloc list) =
  match (a, b) with
  | [], [] -> true
  | x :: a, y :: b ->
      x.job = y.job && x.assigned = y.assigned && x.consumed = y.consumed
      && alloc_eq a b
  | _ -> false

(* How many further identical steps are provably safe to skip. Called after
   the current step's consumption has been applied. *)
let skip_length st (outcome : Assign.outcome) w =
  let inst = State.instance st in
  let budget = inst.Instance.scale in
  let allocs = outcome.Assign.allocs in
  let non_multiple =
    List.filter
      (fun (a : Schedule.alloc) ->
        a.consumed mod (Instance.job inst a.job).Job.req <> 0)
      allocs
  in
  let k_finish =
    List.fold_left
      (fun acc (a : Schedule.alloc) ->
        if a.consumed <= 0 then acc else min acc ((State.s st a.job - 1) / a.consumed))
      max_int allocs
  in
  if k_finish = max_int then 0
  else begin
    match non_multiple with
    | [] -> k_finish
    | [ x ] ->
        let is_max = Window.last w = Some x.job in
        if is_max then
          (* Remainder receiver is max W: the allocation is stable across the
             receiver's un-fracturing events iff r(W) ≥ budget (see .mli);
             the case analysis says r(W) < budget cannot give max W a
             non-multiple amount, but fall back to no-skip rather than
             crash if it ever did. *)
          if Window.rsum w >= budget then k_finish else 0
        else begin
          let r = (Instance.job inst x.job).Job.req in
          let q0 = State.s st x.job mod r in
          if q0 = 0 then 0
          else begin
            match Prelude.Numth.min_congruence_solution ~c:x.consumed ~q:q0 ~r with
            | None -> k_finish
            | Some i -> min k_finish i
          end
        end
    | _ -> 0
  end

let run_count ?(variant = `Fixed) inst =
  Obs.Metrics.time t_run @@ fun () ->
  Obs.Metrics.incr c_runs;
  Robust.Chaos.point "sos.fast.run";
  let st = State.create inst in
  let size = inst.Instance.m - 1 in
  let budget = inst.Instance.scale in
  let steps = ref [] in
  let carried = ref Window.empty in
  let prev = ref None in
  let iters = ref 0 in
  let scratch = Assign.make_scratch () in
  while not (State.all_finished st) do
    incr iters;
    Obs.Metrics.incr c_iters;
    (* Cooperative cancellation/deadline poll plus a per-step chaos site:
       both are one atomic load when nothing is armed, so the hot loop
       stays allocation-free and the bench gate's overhead budget holds. *)
    Robust.Context.poll ();
    Robust.Chaos.point "sos.fast.step";
    (* Backstop against a skip-logic regression: between two completions the
       loop simulates O(1) steps plus at most one q-event, so iterations are
       O(n); anything near this generous budget is a bug, not workload. *)
    if !iters > (100 * Instance.n inst) + 1000 then
      Robust.Failure.internal_error "Fast.run: iteration budget exceeded";
    let w = Window.compute ~variant st !carried ~size ~budget in
    let outcome = Assign.compute ~scratch st w ~budget ~extra:true in
    let finished_jobs = Assign.apply st outcome in
    State.tick st;
    let extra_reps =
      if finished_jobs <> [] then 0
      else begin
        (* Same member set iff the state saw no unlink since [prev] was
           recorded and the range fingerprint matches — O(1), replacing the
           per-iteration Window.members rebuild + list comparison. *)
        match !prev with
        | Some (pa, pw, pv)
          when pv = State.version st && Window.equal pw w
               && alloc_eq pa outcome.Assign.allocs ->
            skip_length st outcome w
        | _ -> 0
      end
    in
    if extra_reps > 0 then begin
      List.iter
        (fun (a : Schedule.alloc) ->
          State.consume st a.job (extra_reps * a.consumed))
        outcome.Assign.allocs;
      State.advance st extra_reps;
      steps := { Schedule.allocs = outcome.Assign.allocs; repeat = 1 + extra_reps } :: !steps;
      if Obs.Metrics.enabled () then begin
        Obs.Metrics.incr c_skip_hits;
        Obs.Metrics.add c_skipped extra_reps;
        record_block outcome.Assign.allocs (1 + extra_reps)
      end;
      prev := None
    end
    else begin
      steps := { Schedule.allocs = outcome.Assign.allocs; repeat = 1 } :: !steps;
      if Obs.Metrics.enabled () then record_block outcome.Assign.allocs 1;
      prev :=
        if finished_jobs = [] then Some (outcome.Assign.allocs, w, State.version st)
        else None
    end;
    let survivors = Window.prune st outcome.Assign.window in
    List.iter (State.unlink st) finished_jobs;
    carried := survivors;
    ()
  done;
  Obs.Metrics.add c_makespan (State.now st);
  (Schedule.make inst (List.rev !steps), !iters)

let run ?variant inst = fst (run_count ?variant inst)
