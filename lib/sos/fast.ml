(* Deterministic counters over the solver's internal structure plus one
   wall-clock histogram; all disabled by default (doc/OBSERVABILITY.md).
   The unit counters reconcile exactly with Schedule analytics on the
   produced schedule: consumed = Σ s_j, assigned − consumed = total_waste,
   iterations + skipped_steps = makespan (tested in suite_obs). *)
let c_runs = Obs.Metrics.counter "sos.fast.runs"
let c_iters = Obs.Metrics.counter "sos.fast.iterations"
let c_blocks = Obs.Metrics.counter "sos.fast.blocks"
let c_skip_hits = Obs.Metrics.counter "sos.fast.skip_hits"
let c_skipped = Obs.Metrics.counter "sos.fast.skipped_steps"
let c_reuses = Obs.Metrics.counter "sos.fast.window_reuses"
let c_makespan = Obs.Metrics.counter "sos.fast.makespan_steps"
let c_assigned = Obs.Metrics.counter "sos.fast.assigned_units"
let c_consumed = Obs.Metrics.counter "sos.fast.consumed_units"
let c_waste = Obs.Metrics.counter "sos.fast.waste_units"
let t_run = Obs.Metrics.timer "sos.fast.run"

(* Distribution telemetry (PR 8). The two deterministic histograms record
   per-run algorithmic values — byte-identical at any [-j] — while the
   latency histogram is runtime class: unlike the [t_run] timer's bounded
   sample ring, its buckets summarize every run of a million-spec stream
   in O(1) memory. All three cost one atomic flag load when disabled. *)
let h_iters =
  Obs.Hist.create
    ~bounds:(Obs.Hist.log_bounds ~lo:1.0 ~hi:1e6 ~per_decade:5)
    "sos.fast.iterations_per_run"

let h_blocks =
  Obs.Hist.create
    ~bounds:(Obs.Hist.log_bounds ~lo:1.0 ~hi:1e6 ~per_decade:5)
    "sos.fast.blocks_per_run"

let h_solve = Obs.Hist.runtime "sos.fast.solve_s"

(* Resource accounting for one emitted RLE block ([repeat] identical
   steps): fold the allocations once, scale by the repeat count. *)
let record_block allocs repeat =
  let a = ref 0 and c = ref 0 in
  List.iter
    (fun (x : Schedule.alloc) ->
      a := !a + x.assigned;
      c := !c + x.consumed)
    allocs;
  Obs.Metrics.incr c_blocks;
  Obs.Metrics.add c_assigned (repeat * !a);
  Obs.Metrics.add c_consumed (repeat * !c);
  Obs.Metrics.add c_waste (repeat * (!a - !c))

(* Growable RLE block buffer: the loop pushes completed blocks here and
   [Schedule.of_blocks] consumes the array directly — no per-iteration
   list consing. *)
let dummy_step = { Schedule.allocs = []; repeat = 1 }

type blocks = { mutable buf : Schedule.step array; mutable len : int }

let push_block bl allocs repeat =
  let cap = Array.length bl.buf in
  if bl.len = cap then begin
    let buf = Array.make (2 * cap) dummy_step in
    Array.blit bl.buf 0 buf 0 cap;
    bl.buf <- buf
  end;
  bl.buf.(bl.len) <- { Schedule.allocs; repeat };
  bl.len <- bl.len + 1

let run_count ?(variant = `Fixed) inst =
  Obs.Metrics.time t_run @@ fun () ->
  let solve_t0 =
    if Obs.Metrics.enabled () then
      (Prelude.Clock.now () [@sos.allow "A1: runtime-class solve-latency sample; h_solve is a runtime histogram, never digested"])
    else 0.0
  in
  Obs.Metrics.incr c_runs;
  Robust.Chaos.point "sos.fast.run";
  let st = State.create inst in
  let size = inst.Instance.m - 1 in
  let budget = inst.Instance.scale in
  let blocks = { buf = Array.make 64 dummy_step; len = 0 } in
  let carried = ref Window.empty in
  (* Window pre-computed for the next iteration (the stability probe below
     lands on exactly the window the next iteration would compute, so it is
     handed over instead of recomputed). *)
  let pre = ref Window.empty in
  let have_pre = ref false in
  let iters = ref 0 in
  let scratch = Assign.make_scratch () in
  while not (State.all_finished st) do
    incr iters;
    Obs.Metrics.incr c_iters;
    (* Cooperative cancellation/deadline poll plus a per-step chaos site:
       both are one atomic load when nothing is armed, so the hot loop
       stays allocation-free and the bench gate's overhead budget holds. *)
    Robust.Context.poll ();
    Robust.Chaos.point "sos.fast.step";
    (* Backstop against an event-logic regression: every simulated step
       either finishes a job, starts the extra job, hits a q-event, or
       opens a provably-stable span that is skipped whole, so iterations
       are O(n); anything near this budget is a bug, not workload. *)
    if !iters > (16 * Instance.n inst) + 64 then
      Robust.Failure.internal_error "Fast.run: iteration budget exceeded";
    let w =
      if !have_pre then begin
        have_pre := false;
        Obs.Metrics.incr c_reuses;
        !pre
      end
      else Window.compute ~variant st !carried ~size ~budget
    in
    let outcome = Assign.compute ~scratch st w ~budget ~extra:true in
    (* Predictive skip: Assign certified [repeats] further identical steps;
       Window.stable certifies the window is a fixed point of
       Window.compute, which the repeated steps preserve (a positive
       certificate implies no job finishes before the span's last step, so
       membership, requirements and the started-status of min W are
       untouched in between). The whole span is then paid for in this
       single iteration — one bulk apply, one RLE block. *)
    let k = outcome.Assign.repeats in
    let reps =
      if k > 0 && Window.stable ~variant st w ~size ~budget then 1 + k else 1
    in
    let finished_jobs = Assign.apply_n st outcome ~reps in
    State.advance st reps;
    push_block blocks outcome.Assign.allocs reps;
    if Obs.Metrics.enabled () then begin
      record_block outcome.Assign.allocs reps;
      if reps > 1 then begin
        Obs.Metrics.incr c_skip_hits;
        Obs.Metrics.add c_skipped (reps - 1)
      end
    end;
    (match finished_jobs with
    | [] ->
        if reps > 1 then begin
          (* The span ended without a finisher only because a non-multiple
             receiver's q-event cut it short; the state still has the same
             membership and the window is still at its fixed point, so the
             next iteration's compute would return [w] — hand it over. *)
          carried := w;
          pre := w;
          have_pre := true
        end
        else carried := outcome.Assign.window
    | fs ->
        (* O(|finished|) window repair, then unlink (repair needs the links
           still intact). *)
        let survivors = Window.repair st outcome.Assign.window ~finished:fs in
        List.iter (State.unlink st) fs;
        carried := survivors)
  done;
  Obs.Metrics.add c_makespan (State.now st);
  if Obs.Metrics.enabled () then begin
    Obs.Hist.observe_int h_iters !iters;
    Obs.Hist.observe_int h_blocks blocks.len;
    Obs.Hist.observe h_solve
      ((Prelude.Clock.now () [@sos.allow "A1: runtime-class solve-latency sample; h_solve is a runtime histogram, never digested"])
      -. solve_t0)
  end;
  (Schedule.of_blocks inst blocks.buf ~len:blocks.len, !iters)

let run ?variant inst = fst (run_count ?variant inst)
