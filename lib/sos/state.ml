type t = {
  inst : Instance.t;
  s : int array;
  next : int array;
  prev : int array;
  linked : bool array;
  mutable head : int; (* -1 when empty *)
  mutable remaining : int;
  mutable now : int;
  mutable version : int; (* membership mutations (unlinks) so far *)
}

let create inst =
  let n = Instance.n inst in
  let s = Array.init n (fun i -> Job.s (Instance.job inst i)) in
  let next = Array.init n (fun i -> if i = n - 1 then -1 else i + 1) in
  let prev = Array.init n (fun i -> i - 1) in
  {
    inst;
    s;
    next;
    prev;
    linked = Array.make n true;
    head = (if n = 0 then -1 else 0);
    remaining = n;
    now = 0;
    version = 0;
  }

let copy t =
  {
    t with
    s = Array.copy t.s;
    next = Array.copy t.next;
    prev = Array.copy t.prev;
    linked = Array.copy t.linked;
  }

let instance t = t.inst
let now t = t.now
let version t = t.version
let tick t = t.now <- t.now + 1

let advance t k =
  if k < 0 then invalid_arg "State.advance: negative step count";
  t.now <- t.now + k

let remaining_count t = t.remaining
let all_finished t = t.remaining = 0
let s t i = t.s.(i)
let started t i = t.s.(i) < Job.s (Instance.job t.inst i)
let finished t i = t.s.(i) = 0
let req t i = (Instance.job t.inst i).Job.req
let q t i = t.s.(i) mod req t i
let fractured t i = t.s.(i) > 0 && q t i <> 0
let head t = if t.head < 0 then None else Some t.head

let next_remaining t i =
  if not t.linked.(i) then invalid_arg "State.next_remaining: job not linked";
  let j = t.next.(i) in
  if j < 0 then None else Some j

let prev_remaining t i =
  if not t.linked.(i) then invalid_arg "State.prev_remaining: job not linked";
  let j = t.prev.(i) in
  if j < 0 then None else Some j

let consume t i amount =
  if amount < 0 then invalid_arg "State.consume: negative amount";
  if amount > t.s.(i) then invalid_arg "State.consume: amount exceeds remaining";
  t.s.(i) <- t.s.(i) - amount

let unlink t i =
  if not t.linked.(i) then invalid_arg "State.unlink: already unlinked";
  if t.s.(i) <> 0 then invalid_arg "State.unlink: job not finished";
  let p = t.prev.(i) and n = t.next.(i) in
  if p >= 0 then t.next.(p) <- n else t.head <- n;
  if n >= 0 then t.prev.(n) <- p;
  t.linked.(i) <- false;
  t.remaining <- t.remaining - 1;
  t.version <- t.version + 1

let remaining_jobs t =
  let rec walk acc i = if i < 0 then List.rev acc else walk (i :: acc) t.next.(i) in
  walk [] t.head
