type view = {
  v_s : int array;
  v_r : int array;
  v_d : int array;
  v_q : int array;
  v_next : int array;
}

type t = {
  inst : Instance.t;
  s : int array;
  r : int array; (* per-job requirement, denormalized for the hot loops *)
  d : int array; (* s.(i) / r.(i), maintained by every consume *)
  q : int array; (* s.(i) mod r.(i), maintained by every consume *)
  next : int array;
  prev : int array;
  linked : bool array;
  vw : view; (* aliases s/r/d/q/next; rebuilt by [copy] *)
  mutable head : int; (* -1 when empty *)
  mutable remaining : int;
  mutable now : int;
  mutable version : int; (* membership mutations (unlinks) so far *)
}

let create inst =
  let n = Instance.n inst in
  let s = Array.init n (fun i -> Job.s (Instance.job inst i)) in
  let r = Array.init n (fun i -> (Instance.job inst i).Job.req) in
  (* s_j = p_j·r_j, so initially d = p_j and q = 0 *)
  let d = Array.init n (fun i -> (Instance.job inst i).Job.size) in
  let q = Array.make n 0 in
  let next = Array.init n (fun i -> if i = n - 1 then -1 else i + 1) in
  let prev = Array.init n (fun i -> i - 1) in
  {
    inst;
    s;
    r;
    d;
    q;
    next;
    prev;
    linked = Array.make n true;
    vw = { v_s = s; v_r = r; v_d = d; v_q = q; v_next = next };
    head = (if n = 0 then -1 else 0);
    remaining = n;
    now = 0;
    version = 0;
  }

let copy t =
  let s = Array.copy t.s in
  let d = Array.copy t.d in
  let q = Array.copy t.q in
  let next = Array.copy t.next in
  {
    t with
    s;
    d;
    q;
    next;
    prev = Array.copy t.prev;
    linked = Array.copy t.linked;
    vw = { v_s = s; v_r = t.r; v_d = d; v_q = q; v_next = next };
  }

let view t = t.vw

let instance t = t.inst
let now t = t.now
let version t = t.version
let tick t = t.now <- t.now + 1

let advance t k =
  if k < 0 then invalid_arg "State.advance: negative step count";
  t.now <- t.now + k

let remaining_count t = t.remaining
let all_finished t = t.remaining = 0
let s t i = t.s.(i)
let started t i = t.s.(i) < Job.s (Instance.job t.inst i)
let finished t i = t.s.(i) = 0
let req t i = t.r.(i)
let q t i = t.q.(i)
let fractured t i = t.s.(i) > 0 && t.q.(i) <> 0
let head t = if t.head < 0 then None else Some t.head
let head_idx t = t.head

let next_remaining t i =
  if not t.linked.(i) then invalid_arg "State.next_remaining: job not linked";
  let j = t.next.(i) in
  if j < 0 then None else Some j

let prev_remaining t i =
  if not t.linked.(i) then invalid_arg "State.prev_remaining: job not linked";
  let j = t.prev.(i) in
  if j < 0 then None else Some j

let next_idx t i =
  if not t.linked.(i) then invalid_arg "State.next_idx: job not linked";
  t.next.(i)

let prev_idx t i =
  if not t.linked.(i) then invalid_arg "State.prev_idx: job not linked";
  t.prev.(i)

let consume t i amount =
  if amount < 0 then invalid_arg "State.consume: negative amount";
  if amount > t.s.(i) then invalid_arg "State.consume: amount exceeds remaining";
  let s = t.s.(i) - amount in
  t.s.(i) <- s;
  let r = t.r.(i) in
  let d = s / r in
  t.d.(i) <- d;
  t.q.(i) <- s - (d * r)

(* Fused bulk consume over one step's allocations, repeated [reps] times:
   one walk, one division-free cache update for full-requirement receivers
   (the common case — d drops by [reps], q is untouched because the amount
   is a multiple of r), one division for the at-most-two others. Returns
   the jobs that hit s = 0, in allocation (window) order. *)
let rec consume_allocs_go t reps acc allocs =
  match allocs with
  | [] -> List.rev acc
  | (a : Schedule.alloc) :: tl ->
      let i = a.job in
      let c = a.consumed in
      let amount = reps * c in
      if amount < 0 then invalid_arg "State.consume_allocs: negative amount";
      if amount > t.s.(i) then
        invalid_arg "State.consume_allocs: amount exceeds remaining";
      let s = t.s.(i) - amount in
      t.s.(i) <- s;
      let r = t.r.(i) in
      if c = r then t.d.(i) <- t.d.(i) - reps
      else begin
        let d = s / r in
        t.d.(i) <- d;
        t.q.(i) <- s - (d * r)
      end;
      if s = 0 then consume_allocs_go t reps (i :: acc) tl
      else consume_allocs_go t reps acc tl

let consume_allocs t allocs ~reps =
  if reps < 1 then invalid_arg "State.consume_allocs: reps must be >= 1";
  consume_allocs_go t reps [] allocs

let unlink t i =
  if not t.linked.(i) then invalid_arg "State.unlink: already unlinked";
  if t.s.(i) <> 0 then invalid_arg "State.unlink: job not finished";
  let p = t.prev.(i) and n = t.next.(i) in
  if p >= 0 then t.next.(p) <- n else t.head <- n;
  if n >= 0 then t.prev.(n) <- p;
  t.linked.(i) <- false;
  t.remaining <- t.remaining - 1;
  t.version <- t.version + 1

let remaining_jobs t =
  let rec walk acc i = if i < 0 then List.rev acc else walk (i :: acc) t.next.(i) in
  walk [] t.head
