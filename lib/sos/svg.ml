(* Jobs get colors by rotating the hue by the golden angle: adjacent ids are
   far apart on the wheel, and the palette is stable across renders. *)
let color_of_job j =
  let hue = float_of_int (j * 137) in
  let hue = hue -. (360.0 *. Float.of_int (int_of_float (hue /. 360.0))) in
  (* hsl → rgb with fixed s = 0.55, l = 0.62 *)
  let s = 0.55 and l = 0.62 in
  let c = (1.0 -. Float.abs ((2.0 *. l) -. 1.0)) *. s in
  let h' = hue /. 60.0 in
  let x = c *. (1.0 -. Float.abs (Float.rem h' 2.0 -. 1.0)) in
  let r, g, b =
    if h' < 1.0 then (c, x, 0.0)
    else if h' < 2.0 then (x, c, 0.0)
    else if h' < 3.0 then (0.0, c, x)
    else if h' < 4.0 then (0.0, x, c)
    else if h' < 5.0 then (x, 0.0, c)
    else (c, 0.0, x)
  in
  let m = l -. (c /. 2.0) in
  let byte v = int_of_float (255.0 *. (v +. m)) in
  Printf.sprintf "#%02x%02x%02x" (byte r) (byte g) (byte b)

let render ?(width = 960) ?(row_height = 22) ?(validate = true) ?title sched =
  let inst = sched.Schedule.inst in
  let m = inst.Instance.m in
  let makespan = max 1 sched.Schedule.makespan in
  let label_w = 36 in
  let chart_w = width - label_w - 10 in
  let x_of t = label_w + (t * chart_w / makespan) in
  let title_h = match title with Some _ -> 24 | None -> 0 in
  let strip_h = 40 in
  let height = title_h + (m * row_height) + strip_h + 30 in
  let buf = Buffer.create 16384 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        font-family=\"sans-serif\" font-size=\"11\">\n"
       width height);
  (match title with
  | Some t ->
      Buffer.add_string buf
        (Printf.sprintf "<text x=\"%d\" y=\"16\" font-size=\"14\">%s</text>\n" label_w t)
  | None -> ());
  (* Rows: one bar per (job, contiguous interval). Rebuild intervals from
     the processor assignment. *)
  let placements = Schedule.processor_assignment ~validate sched in
  let proc_of = Hashtbl.create 64 and start_of = Hashtbl.create 64 in
  List.iter
    (fun (j, p, t0) ->
      Hashtbl.replace proc_of j p;
      Hashtbl.replace start_of j t0)
    placements;
  let last_of = Hashtbl.create 64 in
  List.iter (fun (j, _, t1) -> Hashtbl.replace last_of j t1) (Schedule.job_spans sched);
  for p = 0 to m - 1 do
    let y = title_h + (p * row_height) in
    Buffer.add_string buf
      (Printf.sprintf
         "<text x=\"2\" y=\"%d\" fill=\"#555\">p%d</text>\n"
         (y + row_height - 7) p);
    Buffer.add_string buf
      (Printf.sprintf
         "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"#f4f4f4\"/>\n"
         label_w y chart_w (row_height - 2))
  done;
  (* Emit bars in ascending job-id order: Hashtbl iteration order is
     unspecified (lint rule R5) and the SVG must be byte-identical run to
     run — it is diffed as a captured artifact. *)
  let jobs = List.sort_uniq compare (List.map (fun (j, _, _) -> j) placements) in
  List.iter
    (fun j ->
      let p = Hashtbl.find proc_of j in
      let t0 = Hashtbl.find start_of j in
      let t1 = Hashtbl.find last_of j in
      let x0 = x_of t0 and x1 = x_of (t1 + 1) in
      let y = title_h + (p * row_height) in
      Buffer.add_string buf
        (Printf.sprintf
           "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"%s\" \
            stroke=\"#333\" stroke-width=\"0.5\"><title>job %d: steps %d-%d</title></rect>\n"
           x0 y (max 1 (x1 - x0)) (row_height - 2) (color_of_job j) j t0 t1);
      if x1 - x0 > 24 then
        Buffer.add_string buf
          (Printf.sprintf
             "<text x=\"%d\" y=\"%d\" fill=\"#000\">%d</text>\n"
             (x0 + 3) (y + row_height - 7) j))
    jobs;
  (* Utilization strip: one rect per step-function segment, not per time
     step — both smaller output and O(|steps|) render time. *)
  let u = Schedule.utilization sched in
  let y0 = title_h + (m * row_height) + 12 in
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"2\" y=\"%d\" fill=\"#555\" font-size=\"9\">res</text>\n"
       (y0 + strip_h - 14));
  Array.iter
    (fun (t0, len, v) ->
      let h = int_of_float (v *. float_of_int (strip_h - 12)) in
      Buffer.add_string buf
        (Printf.sprintf
           "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"#4477aa\"/>\n"
           (x_of t0)
           (y0 + (strip_h - 12) - h)
           (max 1 (x_of (t0 + len) - x_of t0))
           h))
    u;
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"%d\" y=\"%d\" fill=\"#555\" font-size=\"9\">0</text>\n\
        <text x=\"%d\" y=\"%d\" fill=\"#555\" font-size=\"9\">t = %d</text>\n"
       label_w (height - 4) (width - 60) (height - 4) makespan);
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let render_to_file path sched =
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (render sched))
