type item = { id : int; size : int }
type alloc = int * int

let compare_item a b =
  let c = compare a.size b.size in
  if c <> 0 then c else compare a.id b.id

let sort_items items = List.sort compare_item items

let insert_sorted item items =
  let rec go = function
    | [] -> [ item ]
    | x :: rest as l -> if compare_item item x <= 0 then item :: l else x :: go rest
  in
  go items

(* Select the window: grow right from the left border while |W| < size and
   r(W) < budget; then slide right while r(W) < budget and items remain.
   Returns (skipped-prefix in order, window in order, suffix). *)
let select items ~size ~budget =
  let rec grow window count rsum rest =
    match rest with
    | x :: rest' when count < size && rsum < budget ->
        grow (x :: window) (count + 1) (rsum + x.size) rest'
    | _ -> (window, rsum, rest)
  in
  let window_rev, rsum, rest = grow [] 0 0 items in
  let rec move skipped window_rev rsum rest =
    match (window_rev, rest) with
    | dropped :: _, x :: rest' when rsum < budget ->
        (* drop min W (the last element of window_rev's reverse = the FIRST
           added); window_rev is newest-first, so min W is its last. *)
        ignore dropped;
        let rec split_last acc = function
          | [ last ] -> (List.rev acc, last)
          | y :: tl -> split_last (y :: acc) tl
          | [] -> assert false
        in
        let newer, minw = split_last [] window_rev in
        move (minw :: skipped) (x :: newer) (rsum - minw.size + x.size) rest'
    | _ -> (List.rev skipped, List.rev window_rev, rsum, rest)
  in
  move [] window_rev rsum rest

let step items ~size ~budget =
  if size <= 0 || budget <= 0 then ([], items)
  else begin
    match items with
    | [] -> ([], items)
    | _ ->
        let skipped, window, _rsum, rest = select items ~size ~budget in
        let rec assign spent = function
          | [] -> ([], None)
          | [ last ] ->
              let amount = min (budget - spent) last.size in
              let leftover =
                if amount < last.size then Some { last with size = last.size - amount }
                else None
              in
              ([ (last.id, amount) ], leftover)
          | x :: rest ->
              let allocs, leftover = assign (spent + x.size) rest in
              ((x.id, x.size) :: allocs, leftover)
        in
        let allocs, leftover = assign 0 window in
        let allocs = List.filter (fun (_, a) -> a > 0) allocs in
        let remaining = skipped @ rest in
        let remaining =
          match leftover with
          | None -> remaining
          | Some it -> insert_sorted it remaining
        in
        (allocs, remaining)
  end

let pack items ~size ~budget =
  List.iter
    (fun it -> if it.size <= 0 then invalid_arg "Splittable.pack: non-positive size")
    items;
  if items <> [] && (size <= 0 || budget <= 0) then
    invalid_arg "Splittable.pack: no progress possible";
  let rec go acc items =
    match items with
    | [] -> List.rev acc
    | _ ->
        let allocs, rest = step items ~size ~budget in
        if allocs = [] then invalid_arg "Splittable.pack: no progress possible";
        go (allocs :: acc) rest
  in
  go [] (sort_items items)

(* Window selection with a pinned member (the started job): the window is
   built around it — grow left while property (b) survives, grow right,
   slide right dropping only unstarted members — so the pinned job is
   processed every step (non-preemption). Returns
   (skipped-prefix, window, suffix), all in sorted order. *)
let select_pinned items ~size ~budget ~pid =
  let rec split_at before = function
    | [] -> invalid_arg "Splittable.select_pinned: pinned job missing"
    | x :: rest when x.id = pid -> (List.rev before, x, rest)
    | x :: rest -> split_at (x :: before) rest
  in
  let lefts, pinned_item, rights = split_at [] items in
  (* Grow right first (establishes max W), then left under the (b) guard. *)
  let rec grow_right window count rsum rest =
    match rest with
    | x :: rest' when count < size && rsum < budget ->
        grow_right (window @ [ x ]) (count + 1) (rsum + x.size) rest'
    | _ -> (window, count, rsum, rest)
  in
  let window, count, rsum, rest =
    grow_right [ pinned_item ] 1 pinned_item.size rights
  in
  let max_size =
    match List.rev window with last :: _ -> last.size | [] -> assert false
  in
  let rec grow_left taken count rsum = function
    | x :: more when count < size && rsum + x.size - max_size < budget ->
        grow_left (x :: taken) (count + 1) (rsum + x.size) more
    | _ -> (taken, count, rsum)
  in
  let taken, count, rsum = grow_left [] count rsum (List.rev lefts) in
  let skipped =
    List.filter (fun x -> not (List.exists (fun y -> y.id = x.id) taken)) lefts
  in
  let window = taken @ window in
  (* Slide right while below budget, dropping only unstarted members. *)
  let rec move skipped window count rsum rest =
    match (window, rest) with
    | minw :: window', x :: rest' when rsum < budget && minw.id <> pid ->
        move (skipped @ [ minw ]) (window' @ [ x ]) count (rsum - minw.size + x.size) rest'
    | _ -> (skipped, window, rsum, rest)
  in
  let skipped, window, _rsum, rest = move skipped window count rsum rest in
  (skipped, window, rest)

let run_nonpreemptive inst =
  if not (Instance.unit_size inst) then
    invalid_arg "Splittable.run_nonpreemptive: instance has non-unit job sizes";
  let items =
    sort_items
      (List.init (Instance.n inst) (fun i ->
           { id = i; size = (Instance.job inst i).Job.req }))
  in
  let budget = inst.Instance.scale and size = inst.Instance.m in
  let steps = ref [] in
  let rec loop items pinned =
    match items with
    | [] -> ()
    | _ ->
        let skipped, window, rest =
          match pinned with
          | Some pid -> select_pinned items ~size ~budget ~pid
          | None ->
              let skipped, window, _rsum, rest = select items ~size ~budget in
              (skipped, window, rest)
        in
        let rec assign spent = function
          | [] -> ([], None)
          | [ last ] ->
              let amount = min (budget - spent) last.size in
              let leftover =
                if amount < last.size then Some { last with size = last.size - amount }
                else None
              in
              ([ (last.id, amount) ], leftover)
          | x :: tl ->
              let allocs, leftover = assign (spent + x.size) tl in
              ((x.id, x.size) :: allocs, leftover)
        in
        let allocs, leftover = assign 0 window in
        let allocs = List.filter (fun (_, a) -> a > 0) allocs in
        steps :=
          {
            Schedule.allocs =
              List.map
                (fun (id, a) -> { Schedule.job = id; assigned = a; consumed = a })
                allocs;
            repeat = 1;
          }
          :: !steps;
        let remaining = skipped @ rest in
        let remaining, pinned =
          match leftover with
          | None -> (remaining, None)
          | Some it -> (insert_sorted it remaining, Some it.id)
        in
        loop remaining pinned
  in
  loop items None;
  Schedule.make inst (List.rev !steps)

let run inst =
  if not (Instance.unit_size inst) then
    invalid_arg "Splittable.run: instance has non-unit job sizes";
  let items =
    List.init (Instance.n inst) (fun i -> { id = i; size = (Instance.job inst i).Job.req })
  in
  let bins = pack items ~size:inst.Instance.m ~budget:inst.Instance.scale in
  let steps =
    List.map
      (fun allocs ->
        {
          Schedule.allocs =
            List.map (fun (id, a) -> { Schedule.job = id; assigned = a; consumed = a }) allocs;
          repeat = 1;
        })
      bins
  in
  Schedule.make inst steps
