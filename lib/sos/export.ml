let schedule_to_csv (sched : Schedule.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "step,job,assigned,consumed\n";
  let time = ref 0 in
  List.iter
    (fun (st : Schedule.step) ->
      for rep = 0 to st.repeat - 1 do
        List.iter
          (fun (a : Schedule.alloc) ->
            Buffer.add_string buf
              (Printf.sprintf "%d,%d,%d,%d\n" (!time + rep) a.job a.assigned a.consumed))
          st.allocs
      done;
      time := !time + st.repeat)
    sched.steps;
  Buffer.contents buf

let schedule_to_csv_rle (sched : Schedule.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "t0,repeat,job,assigned,consumed\n";
  Schedule.fold_segments sched ~init:() ~f:(fun () ~t0 ~repeat allocs ->
      List.iter
        (fun (a : Schedule.alloc) ->
          Buffer.add_string buf
            (Printf.sprintf "%d,%d,%d,%d,%d\n" t0 repeat a.job a.assigned a.consumed))
        allocs);
  Buffer.contents buf

let instance_to_csv (inst : Instance.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "job,original_position,size,req,scale,m\n";
  Array.iteri
    (fun i (j : Job.t) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%d,%d,%d\n" i inst.original.(i) j.size j.req
           inst.scale inst.m))
    inst.jobs;
  Buffer.contents buf

let utilization_to_csv (sched : Schedule.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "t0,len,assigned,consumed,jobs\n";
  let scale = float_of_int sched.Schedule.inst.Instance.scale in
  Schedule.fold_segments sched ~init:() ~f:(fun () ~t0 ~repeat allocs ->
      let assigned, consumed, jobs =
        List.fold_left
          (fun (a, c, k) (al : Schedule.alloc) -> (a + al.assigned, c + al.consumed, k + 1))
          (0, 0, 0) allocs
      in
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%.6f,%.6f,%d\n" t0 repeat
           (float_of_int assigned /. scale)
           (float_of_int consumed /. scale)
           jobs));
  Buffer.contents buf

let trace_to_csv (trace : Listing1.step_info list) (inst : Instance.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "time,window_size,window_rsum,case,extra,left_border,right_border,finished\n";
  List.iter
    (fun (i : Listing1.step_info) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%.6f,%s,%s,%b,%b,%d\n" i.time
           (List.length i.window)
           (float_of_int i.window_rsum /. float_of_int inst.Instance.scale)
           (match i.case with Assign.Case_full -> "full" | Assign.Case_partial -> "partial")
           (match i.extra with Some j -> string_of_int j | None -> "")
           i.at_left_border i.at_right_border
           (List.length i.finished)))
    trace;
  Buffer.contents buf
