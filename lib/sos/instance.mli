(** An SoS problem instance (Section 1.1).

    [m] identical processors share one divisible resource of total size 1 per
    time step. The resource is represented in exact fixed-point: the instance
    fixes [scale ∈ ℕ] and "1 unit of resource" means [1/scale] of the whole;
    a full time step offers [scale] units. Jobs are stored sorted by
    non-decreasing requirement, as the paper assumes ([r_1 ≤ … ≤ r_n]); the
    permutation back to the caller's original order is retained. *)

type t = private {
  m : int;  (** number of processors, [≥ 2] *)
  scale : int;  (** resource units per time step, [≥ 1] *)
  jobs : Job.t array;  (** sorted by {!Job.compare_req}; [jobs.(i).id = i] *)
  original : int array;  (** [original.(i)] = caller position of [jobs.(i)] *)
}

val create : m:int -> scale:int -> (int * int) list -> t
(** [create ~m ~scale specs] builds an instance from [(size, req)] pairs,
    [req] in units of [1/scale]. Raises [Invalid_argument] if [m < 2],
    [scale < 1], or any size/req is non-positive. The empty job list is
    allowed. *)

val of_floats : m:int -> scale:int -> (int * float) list -> t
(** Like {!create} with requirements given as fractions of the resource;
    each is rounded to the nearest unit, clamped to at least 1 unit. *)

val n : t -> int
val job : t -> int -> Job.t
(** [job t i] for [i] in sorted order. Raises [Invalid_argument] out of
    range. *)

val total_volume : t -> int
(** [Σ_j p_j]. *)

val total_requirement : t -> int
(** [Σ_j s_j] in resource units. *)

val sum_req : t -> int
(** [r(J) = Σ_j r_j] in resource units. *)

val max_size : t -> int
(** [max_j p_j]; 0 on the empty instance. *)

val unit_size : t -> bool
(** All jobs have [p_j = 1]. *)

val rescale : t -> int -> t
(** [rescale t c] multiplies [scale] and every requirement by [c ≥ 1]. The
    instance is combinatorially identical; useful to make budgets like
    [(⌊m/2⌋−1)/(m−1)] exactly representable. *)

val restrict_m : t -> int -> t
(** Same jobs, different processor count. *)

val to_string : t -> string
(** A line-oriented text format, parsed back by {!of_string}. *)

val of_string : string -> t
(** Raises [Failure] on malformed input. *)

(** {1 Strict validation}

    [Result]-returning entry-point validators (doc/ROBUSTNESS.md): the
    CLI, the bench harness, and the batch engine route untrusted input
    through these instead of catching [Invalid_argument] from the raising
    constructors. With [~window:true] they additionally require [m >= 3],
    the precondition of the window algorithm's Theorem 3.3 guarantee. All
    of them guard the Equation (1) lower-bound quantities ([Σ p_j],
    [Σ s_j = Σ p_j·r_j], [Σ r_j]) against [int] overflow, so a huge
    [p_j ≈ max_int/2] is rejected as [Overflow] instead of producing a
    silently negative bound. *)

val validate : ?window:bool -> t -> (t, Robust.Failure.invalid) result
(** Check a constructed instance (constructors already enforce positive
    sizes/requirements; this adds the window precondition and the
    overflow guards). *)

val create_checked :
  ?window:bool -> m:int -> scale:int -> (int * int) list -> (t, Robust.Failure.invalid) result
(** {!create} with every [Invalid_argument] turned into a structured
    reason, plus {!validate}. *)

val of_floats_checked :
  ?window:bool -> m:int -> scale:int -> (int * float) list -> (t, Robust.Failure.invalid) result
(** {!of_floats} with NaN / infinite shares rejected as [Not_finite]
    and non-positive shares as [Nonpositive_req]. *)

val of_string_checked : ?window:bool -> string -> (t, Robust.Failure.invalid) result
(** {!of_string} with parse failures as [Malformed]. *)

val pp : Format.formatter -> t -> unit
