(** The per-step resource assignment of Listing 1 (lines 6–20).

    Given the (k-maximal) window for the current step, distributes the
    budget according to the paper's two cases:

    {b Case 1} [r(W∖F) ≥ budget]: every [j ∈ W∖(F∪{max W})] receives its
    full requirement [r_j], the fractured job [ι] receives exactly its
    fractional remainder [q_ι] (un-fracturing it), and [max W] receives all
    remaining resource.

    {b Case 2} [r(W∖F) < budget]: every [j ∈ W∖F] receives [r_j], [ι]
    receives [min(budget − r(W∖F), s_ι(t−1), r_ι)], and — if [extra] is
    set, resource is left over, and an unscheduled job exists to the right —
    the leftover starts [min R_t(W)] on the otherwise reserved m-th
    processor (the only situation in which Listing 1 uses all [m]
    processors). *)

type case = Case_full | Case_partial

type outcome = {
  allocs : Schedule.alloc list;  (** in window order; includes the extra job *)
  window : Window.t;  (** input window, extended by the extra job if started *)
  case : case;
  extra : int option;  (** the job started on the m-th processor, if any *)
  repeats : int;
      (** Predictive stability certificate for the event-driven solver: the
          largest [k] such that — {e provided} the window recomputed after
          applying this outcome is {!Window.equal} to the input window —
          the next [k] time steps provably reproduce this exact allocation
          (the case split of Listing 1 hands out the same amounts
          throughout; jobs may finish only on the last of them, exactly —
          every job starts at [s_j = p_j·r_j]). 0 when the step itself
          finishes a job, starts the Case-2 extra job, or stability cannot
          be certified. Derived inside {!compute}'s single walk: the
          finish-inclusive horizon [min_j ⌊(s_j − c_j)/c_j⌋] capped by the
          q-event of the single non-multiple receiver (a linear
          congruence) — see the implementation for the case analysis. *)
}

type scratch
(** Reusable allocation buffer for {!compute}: avoids re-allocating the
    intermediate per-step structures in hot solver loops. The returned
    [outcome.allocs] list is always freshly built, so reusing one scratch
    across iterations never aliases earlier outcomes. *)

val make_scratch : unit -> scratch

val compute : ?scratch:scratch -> State.t -> Window.t -> budget:int -> extra:bool -> outcome
(** Does not mutate the state. Walks the window's linked-list range
    directly in a single pass (pushing full-requirement allocations and
    locating the fractured job), then patches the fractured and max-W
    entries in place per the case split — no member-list materialization
    and no second walk. Raises [Invalid_argument] on an empty window
    (callers only invoke it while unfinished jobs remain, so the computed
    window is never empty). *)

val apply : State.t -> outcome -> int list
(** Consumes the outcome's allocations and returns the jobs that finished
    in this step (window order). Does not unlink them. *)

val apply_n : State.t -> outcome -> reps:int -> int list
(** {!apply} for [reps ≥ 1] identical steps at once: consumes
    [reps × consumed] per allocation in a single walk and returns the jobs
    that finished on the {e last} of those steps (window order). Sound
    exactly when [reps − 1 ≤ outcome.repeats] and the window is at a fixed
    point (see {!Window.stable}): the certificate guarantees no job
    finishes and the allocation repeats verbatim on every step but
    possibly the last, where full-requirement receivers may finish exactly.
    Does not unlink and does not advance the clock. Raises
    [Invalid_argument] if [reps < 1]. *)
