(** The per-step resource assignment of Listing 1 (lines 6–20).

    Given the (k-maximal) window for the current step, distributes the
    budget according to the paper's two cases:

    {b Case 1} [r(W∖F) ≥ budget]: every [j ∈ W∖(F∪{max W})] receives its
    full requirement [r_j], the fractured job [ι] receives exactly its
    fractional remainder [q_ι] (un-fracturing it), and [max W] receives all
    remaining resource.

    {b Case 2} [r(W∖F) < budget]: every [j ∈ W∖F] receives [r_j], [ι]
    receives [min(budget − r(W∖F), s_ι(t−1), r_ι)], and — if [extra] is
    set, resource is left over, and an unscheduled job exists to the right —
    the leftover starts [min R_t(W)] on the otherwise reserved m-th
    processor (the only situation in which Listing 1 uses all [m]
    processors). *)

type case = Case_full | Case_partial

type outcome = {
  allocs : Schedule.alloc list;  (** in window order; includes the extra job *)
  window : Window.t;  (** input window, extended by the extra job if started *)
  case : case;
  extra : int option;  (** the job started on the m-th processor, if any *)
}

type scratch
(** Reusable allocation buffer for {!compute}: avoids re-allocating the
    intermediate per-step structures in hot solver loops. The returned
    [outcome.allocs] list is always freshly built, so reusing one scratch
    across iterations never aliases earlier outcomes. *)

val make_scratch : unit -> scratch

val compute : ?scratch:scratch -> State.t -> Window.t -> budget:int -> extra:bool -> outcome
(** Does not mutate the state. Walks the window's linked-list range
    directly (two passes: locate the fractured job, then build the
    allocations in order) without materializing {!Window.members}. Raises
    [Invalid_argument] on an empty window (callers only invoke it while
    unfinished jobs remain, so the computed window is never empty). *)

val apply : State.t -> outcome -> int list
(** Consumes the outcome's allocations and returns the jobs that finished
    in this step (window order). Does not unlink them. *)
