(** The polynomial-time implementation of the approximation algorithm
    (proof of Theorem 3.3): identical schedules to {!Listing1}, but the
    loop is event-driven — it simulates one step per {e event} (a job
    finishing, the Case-2 extra job starting, a fractured job's remainder
    hitting 0, the window changing shape) and skips the provably identical
    steps between events in closed form, giving [O((m+n)·n)] overall
    instead of a dependence on [Σ_j p_j].

    {b Predictive skip.} {!Assign.compute} certifies on the {e first} step
    of a span how many further steps repeat the same allocation
    ([outcome.repeats]): the finish-inclusive horizon [min_j ⌊(s_j−c_j)/c_j⌋]
    capped by the q-event of the single non-multiple receiver (a linear
    congruence — see {!Assign.outcome}). The loop validates the
    certificate's premise with {!Window.stable}, the O(1) fixed-point test
    of {!Window.compute}, and then pays for the whole span with a single
    iteration — no warm-up step observing two identical allocations, no
    window recomputation. See doc/ALGORITHM.md §5a for the proof sketch
    and the iteration bound.

    {b Zero-allocation steps.} Blocks are emitted run-length encoded into
    a growable array consumed by {!Schedule.of_blocks}; the window after a
    finishing step is repaired in O(finished) ({!Window.repair}); the
    stability probe's window is handed to the next iteration instead of
    recomputed. Between events the loop allocates nothing. *)

val run : ?variant:[ `Fixed | `Literal ] -> Instance.t -> Schedule.t
(** Produces the same schedule as [Listing1.run] (same [variant]) with runs
    of identical steps run-length encoded. *)

val run_count : ?variant:[ `Fixed | `Literal ] -> Instance.t -> Schedule.t * int
(** Also returns the number of loop iterations actually simulated (the
    T7 running-time experiment reports it). *)
