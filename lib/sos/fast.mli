(** The polynomial-time implementation of the approximation algorithm
    (proof of Theorem 3.3): identical schedules to {!Listing1}, but runs of
    time steps in which no job finishes are skipped in O(m) by solving a
    linear equation, giving [O((m+n)·n)] overall instead of a dependence on
    [Σ_j p_j].

    A run of steps can be skipped once the allocation provably repeats:
    the window is unchanged, no job finished, the allocation equals the
    previous step's, and at most one allocated job (the remainder receiver)
    consumes an amount that is not a multiple of its requirement. The skip
    length is capped by (i) the first step in which some job would finish
    and (ii) — when the window's total requirement is below the budget — the
    first step in which the remainder receiver's fractional part [q] would
    hit 0, because the case split of Listing 1 changes there. Both caps are
    closed-form (a division and a linear congruence). *)

val run : ?variant:[ `Fixed | `Literal ] -> Instance.t -> Schedule.t
(** Produces the same schedule as [Listing1.run] (same [variant]) with runs
    of identical steps run-length encoded. *)

val run_count : ?variant:[ `Fixed | `Literal ] -> Instance.t -> Schedule.t * int
(** Also returns the number of loop iterations actually simulated (the
    T7 running-time experiment reports it). *)
