(** SVG rendering of schedules: a self-contained vector Gantt chart with a
    resource-utilization strip, for READMEs and papers. Pure string
    generation, no dependencies. *)

val render :
  ?width:int -> ?row_height:int -> ?validate:bool -> ?title:string ->
  Schedule.t -> string
(** An SVG document ([width] pixels wide, default 960; [row_height] per
    processor row, default 22). Jobs are colored by id (golden-angle hue
    rotation), labeled when wide enough; below the rows a strip shows the
    consumed utilization, one rect per step-function segment. Requires a
    valid non-preemptive schedule (processor assignment must exist); raises
    [Failure] otherwise. Pass [~validate:false] to skip the up-front
    validation when the schedule was already checked; either way the render
    is O(|steps|), independent of the makespan. *)

val render_to_file : string -> Schedule.t -> unit
(** [render_to_file path sched] with default options. *)
