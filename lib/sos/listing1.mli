(** The reference implementation of the paper's approximation algorithm
    (Listing 1): step-by-step, one iteration per time step, using
    (m−1)-maximal windows and the full resource as budget.

    This implementation is pseudo-polynomial (it touches every time step);
    {!Fast} is the [O((m+n)·n)] version from the proof of Theorem 3.3. Both
    produce identical schedules (tested property). Approximation guarantee
    (Theorem 3.3): makespan ≤ (2 + 1/(m−2))·|OPT| for m ≥ 3, and for unit
    size jobs ≤ (1 + 2/(m−2))·|OPT| + 1. *)

type step_info = {
  time : int;  (** 1-based time step *)
  window : int list;  (** members of the processed (m−1)-maximal window *)
  window_rsum : int;  (** r(W) in resource units *)
  case : Assign.case;
  extra : int option;  (** job started on the reserved m-th processor *)
  at_left_border : bool;  (** L_t(W) = ∅ *)
  at_right_border : bool;  (** R_t(W) = ∅ *)
  finished : int list;  (** jobs completed in this step *)
}

val run : ?check:bool -> ?variant:[ `Fixed | `Literal ] -> Instance.t -> Schedule.t
(** Runs the algorithm. With [check] (default [false]) every step asserts
    the effective maximality of the processed window (Lemma 3.7 weakened as
    explained at {!Window.is_effectively_maximal}) and Observation 3.2 (at
    most one fractured job survives the step); violations raise
    [Assert_failure]. [variant] selects the GrowWindowLeft condition
    (default [`Fixed], see {!Window.grow_left_fixed}). *)

val run_traced :
  ?check:bool -> ?variant:[ `Fixed | `Literal ] -> Instance.t ->
  Schedule.t * step_info list
(** Like {!run}, also returning the per-step trace (figure experiments F1,
    F2 and the tests of Lemma 3.8 consume it). *)
