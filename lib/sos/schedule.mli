(** Schedules: time-indexed resource/job assignments, with a full validator.

    A schedule is a run-length-encoded list of steps. Each step carries the
    allocations of one time step; [repeat] says how many consecutive time
    steps use exactly these allocations (the step-skipping solver emits
    [repeat > 1]). For every allocation, [assigned] is the resource share
    handed to the job's processor and [consumed] the amount of its remaining
    requirement actually paid for, i.e. [min(assigned, r_j, s_j(t−1))];
    [assigned − consumed] is wasted resource. *)

type alloc = { job : int; assigned : int; consumed : int }

type step = { allocs : alloc list; repeat : int }

type t = {
  inst : Instance.t;
  steps : step list;  (** in time order *)
  makespan : int;  (** [Σ repeat] *)
}

val make : Instance.t -> step list -> t
(** Computes the makespan; raises [Invalid_argument] on a non-positive
    [repeat]. *)

val empty : Instance.t -> t

type violation = {
  at_step : int;  (** expanded time index (0-based), or -1 for global *)
  reason : string;
}

val validate : ?preemption_ok:bool -> t -> (unit, violation) result
(** Checks, against the schedule's instance:
    - per step: at most [m] allocations, pairwise-distinct jobs,
      [Σ assigned ≤ scale], [0 ≤ consumed ≤ min(assigned, r_j)], and
      [consumed < min(assigned, r_j)] only in a job's finishing step;
    - per job: consumed totals exactly [s_j], never over-consumed;
    - unless [preemption_ok]: each job's allocation steps are contiguous
      (non-preemption) and a fixed-processor assignment exists
      (non-migration) — with [≤ m] jobs per step and contiguous intervals
      a greedy interval coloring always suffices, and the validator
      constructs it. *)

val assert_valid : ?preemption_ok:bool -> t -> unit
(** Raises [Failure] with the violation message. *)

val expand : t -> t
(** Replace every run-length-encoded step by [repeat] copies. Semantically
    identical; [validate] agrees on both forms (tested property). Only for
    moderate makespans. *)

val processor_assignment : t -> (int * int * int) list
(** [(job, processor, start_step)] for each job, computed by greedy interval
    coloring over the expanded timeline; requires a valid non-preemptive
    schedule. Raises [Failure] otherwise. *)

val job_spans : t -> (int * int * int) list
(** [(job, first_step, last_step)] (0-based, inclusive) for every job that
    receives an allocation, in job order. Works for preemptive schedules
    too (the span then covers the gaps). *)

val completion_times : t -> int array
(** Per job, the 1-based step in which its consumption completes [s_j]
    (0 for a job with [s_j = 0] allocations only — impossible for valid
    schedules of well-formed instances). Raises [Invalid_argument] if some
    job never completes. *)

val sum_completion_times : t -> int
val mean_completion_time : t -> float
(** 0 on the empty instance. *)

val utilization : t -> float array
(** Per expanded step, [Σ consumed / scale]. Length = makespan. Intended for
    the figure experiments; expands the RLE, so use on small schedules. *)

val assigned_utilization : t -> float array
(** Per expanded step, [Σ assigned / scale]. *)

val jobs_per_step : t -> int array
(** Per expanded step, number of allocations. *)

val total_waste : t -> int
(** [Σ (assigned − consumed)] over all steps, in resource units. *)

val render_gantt : ?max_width:int -> t -> string
(** ASCII Gantt chart (rows = processors, columns = time steps); truncated
    to [max_width] (default 120) columns. *)

val pp : Format.formatter -> t -> unit
