(** Schedules: time-indexed resource/job assignments, with a full validator.

    A schedule is a run-length-encoded list of steps. Each step carries the
    allocations of one time step; [repeat] says how many consecutive time
    steps use exactly these allocations (the step-skipping solver emits
    [repeat > 1]). For every allocation, [assigned] is the resource share
    handed to the job's processor and [consumed] the amount of its remaining
    requirement actually paid for, i.e. [min(assigned, r_j, s_j(t−1))];
    [assigned − consumed] is wasted resource.

    {b Strongly-polynomial analytics.} Every query below ([validate],
    [completion_times], [utilization], [jobs_per_step], [total_waste],
    [job_spans], [processor_assignment], [render_gantt]) is computed by a
    single fold over the RLE blocks, doing O(|allocs|) work per {e block} —
    never per expanded time step. On the [Fast] solver's output that is
    O((m+n)·n) total (Theorem 3.3's bound), independent of the processing
    volumes; a schedule with makespan 10⁷ and a few hundred blocks is
    analyzed in microseconds. Per-step views are exposed as compact step
    functions ({!profile}); {!to_dense} and {!expand} are the explicit,
    capped escape hatches back to Θ(makespan) form. *)

type alloc = { job : int; assigned : int; consumed : int }

type step = { allocs : alloc list; repeat : int }

type t = {
  inst : Instance.t;
  steps : step list;  (** in time order *)
  makespan : int;  (** [Σ repeat] *)
}

val make : Instance.t -> step list -> t
(** Computes the makespan; raises [Invalid_argument] on a non-positive
    [repeat]. *)

val empty : Instance.t -> t

val of_blocks : Instance.t -> step array -> len:int -> t
(** [of_blocks inst blocks ~len] builds a schedule from the first [len]
    entries of a block array in time order — the RLE-native entry point for
    the event-driven solver, which accumulates blocks into a growable
    scratch array instead of consing a reversed list. One backward pass;
    the array is not retained. Raises [Invalid_argument] on a non-positive
    [repeat] or [len] out of range. *)

(** {1 RLE-native iteration} *)

val fold_segments :
  t -> init:'acc -> f:('acc -> t0:int -> repeat:int -> alloc list -> 'acc) -> 'acc
(** Fold over the run-length-encoded blocks in time order. [t0] is the
    expanded time index of the block's first step; the block covers
    [t0 .. t0+repeat−1]. All analytics in this module are built on this
    (or on {!segments}) and inherit its O(Σ|allocs|) cost. *)

val segments : t -> (int * int * alloc list) Seq.t
(** The blocks as a lazy [(t0, repeat, allocs)] sequence, for consumers
    that terminate early (e.g. {!render_gantt} stops at its column cap). *)

(** {1 Validation} *)

type violation = {
  at_step : int;  (** expanded time index (0-based), or -1 for global *)
  reason : string;
}

val validate : ?preemption_ok:bool -> t -> (unit, violation) result
(** Checks, against the schedule's instance:
    - per step: at most [m] allocations, pairwise-distinct jobs,
      [Σ assigned ≤ scale], [0 ≤ consumed ≤ min(assigned, r_j)], and
      [consumed < min(assigned, r_j)] only in a job's finishing step;
    - per job: consumed totals exactly [s_j], never over-consumed;
    - unless [preemption_ok]: each job's allocation steps are contiguous
      (non-preemption) and a fixed-processor assignment exists
      (non-migration) — with [≤ m] jobs per step and contiguous intervals
      a greedy interval coloring always suffices, and the validator
      constructs it.

    One pass over the RLE blocks: O(Σ|allocs|), independent of makespan. *)

val assert_valid : ?preemption_ok:bool -> t -> unit
(** Raises [Failure] with the violation message. *)

val expand : t -> t
(** Replace every run-length-encoded step by [repeat] copies. Semantically
    identical; [validate] agrees on both forms (tested property). Only for
    moderate makespans — this is the Θ(makespan) escape hatch. *)

val processor_assignment : ?validate:bool -> t -> (int * int * int) list
(** [(job, processor, start_step)] for each job, computed by greedy interval
    coloring over the block timeline; requires a valid non-preemptive
    schedule. By default the schedule is validated first and [Failure] is
    raised otherwise; internal render/export callers pass [~validate:false]
    to avoid re-validating a schedule they already checked (the coloring
    itself still fails loudly on schedules needing more than [m]
    processors). *)

val job_spans : t -> (int * int * int) list
(** [(job, first_step, last_step)] (0-based, inclusive) for every job that
    receives an allocation, in job order. Works for preemptive schedules
    too (the span then covers the gaps). *)

val completion_times : t -> int array
(** Per job, the 1-based step in which its consumption completes [s_j]
    (0 for a job with [s_j = 0] allocations only — impossible for valid
    schedules of well-formed instances). Raises [Invalid_argument] if some
    job never completes. Completion inside a [repeat > 1] block is located
    by division, not simulation. *)

val sum_completion_times : t -> int
val mean_completion_time : t -> float
(** 0 on the empty instance. *)

(** {1 Step-function profiles}

    Per-step analytics are returned as compact step functions: a
    [(t0, len, value)] array, consecutive and gap-free, covering
    [0 .. makespan−1] with adjacent equal values merged. [|profile| ≤
    |steps|], so the representation stays proportional to the solver
    output, not to the makespan. *)

type 'a profile = (int * int * 'a) array
(** [(t0, len, value)]: the value holds on expanded steps
    [t0 .. t0+len−1]. *)

val profile_length : 'a profile -> int
(** Total covered length ([makespan] for the profiles produced here). *)

val to_dense : ?cap:int -> default:'a -> 'a profile -> 'a array
(** Expand a profile to one cell per time step, for plotting. [cap] bounds
    the array length (the profile is truncated, keeping the first [cap]
    steps); without it the full [profile_length] is materialized —
    Θ(makespan), so always pass [cap] on schedules of huge-volume
    instances. [default] fills a (never-occurring) gap and types the empty
    array. *)

val utilization : t -> float profile
(** Per step, [Σ consumed / scale], as a step function. *)

val assigned_utilization : t -> float profile
(** Per step, [Σ assigned / scale], as a step function. *)

val jobs_per_step : t -> int profile
(** Per step, number of allocations, as a step function. *)

val total_waste : t -> int
(** [Σ (assigned − consumed)] over all steps, in resource units. *)

(** {1 Rendering} *)

val render_gantt : ?max_width:int -> t -> string
(** ASCII Gantt chart (rows = processors, columns = time steps); truncated
    to [max_width] (default 120) columns. Only the blocks intersecting the
    visible columns are walked — O(m·max_width) regardless of makespan. *)

val pp : Format.formatter -> t -> unit
