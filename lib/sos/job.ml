type t = { id : int; size : int; req : int }

let v ~id ~size ~req =
  if id < 0 then invalid_arg "Job.v: negative id";
  if size <= 0 then invalid_arg "Job.v: size must be positive";
  if req <= 0 then invalid_arg "Job.v: req must be positive";
  { id; size; req }

let s j = j.size * j.req
let equal a b = a.id = b.id && a.size = b.size && a.req = b.req

let compare_req a b =
  let c = compare a.req b.req in
  if c <> 0 then c else compare a.id b.id

let pp ppf j = Format.fprintf ppf "job%d(p=%d,r=%d)" j.id j.size j.req
