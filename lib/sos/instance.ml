type t = {
  m : int;
  scale : int;
  jobs : Job.t array;
  original : int array;
}

let create ~m ~scale specs =
  if m < 2 then invalid_arg "Instance.create: need m >= 2";
  if scale < 1 then invalid_arg "Instance.create: need scale >= 1";
  let tagged =
    List.mapi (fun pos (size, req) -> (pos, Job.v ~id:pos ~size ~req)) specs
  in
  let arr = Array.of_list tagged in
  Array.sort (fun (_, a) (_, b) -> Job.compare_req a b) arr;
  let jobs =
    Array.mapi (fun i (_, j) -> Job.v ~id:i ~size:j.Job.size ~req:j.Job.req) arr
  in
  let original = Array.map fst arr in
  { m; scale; jobs; original }

let of_floats ~m ~scale specs =
  let quantize f =
    if not (Float.is_finite f) || f <= 0.0 then
      invalid_arg "Instance.of_floats: requirement must be positive and finite";
    let units = int_of_float (Float.round (f *. float_of_int scale)) in
    max 1 units
  in
  create ~m ~scale (List.map (fun (size, f) -> (size, quantize f)) specs)

let n t = Array.length t.jobs

let job t i =
  if i < 0 || i >= Array.length t.jobs then invalid_arg "Instance.job: index";
  t.jobs.(i)

let total_volume t = Array.fold_left (fun acc j -> acc + j.Job.size) 0 t.jobs
let total_requirement t = Array.fold_left (fun acc j -> acc + Job.s j) 0 t.jobs
let sum_req t = Array.fold_left (fun acc j -> acc + j.Job.req) 0 t.jobs
let max_size t = Array.fold_left (fun acc j -> max acc j.Job.size) 0 t.jobs
let unit_size t = Array.for_all (fun j -> j.Job.size = 1) t.jobs

let rescale t c =
  if c < 1 then invalid_arg "Instance.rescale: factor must be >= 1";
  {
    t with
    scale = t.scale * c;
    jobs = Array.map (fun j -> { j with Job.req = j.Job.req * c }) t.jobs;
  }

let restrict_m t m =
  if m < 2 then invalid_arg "Instance.restrict_m: need m >= 2";
  { t with m }

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "sos %d %d %d\n" t.m t.scale (n t));
  Array.iteri
    (fun i j ->
      Buffer.add_string buf
        (Printf.sprintf "%d %d %d\n" t.original.(i) j.Job.size j.Job.req))
    t.jobs;
  Buffer.contents buf

(* Shared parser behind of_string (raising) and of_string_checked
   (Result): text -> (m, scale, caller-ordered specs). *)
let parse_text str =
  let lines =
    String.split_on_char '\n' str
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [] -> Error "Instance.of_string: empty input"
  | header :: rest -> begin
      match String.split_on_char ' ' header with
      | [ "sos"; m; scale; count ] -> begin
          match (int_of_string_opt m, int_of_string_opt scale, int_of_string_opt count) with
          | Some m, Some scale, Some count ->
              if List.length rest <> count then
                Error "Instance.of_string: job count mismatch"
              else begin
                let parse_job line =
                  match String.split_on_char ' ' line with
                  | [ pos; size; req ] -> begin
                      match
                        (int_of_string_opt pos, int_of_string_opt size, int_of_string_opt req)
                      with
                      | Some pos, Some size, Some req -> Ok (pos, (size, req))
                      | _ -> Error "Instance.of_string: malformed job line"
                    end
                  | _ -> Error "Instance.of_string: malformed job line"
                in
                let rec go acc = function
                  | [] -> Ok (List.rev acc)
                  | line :: rest -> begin
                      match parse_job line with
                      | Ok j -> go (j :: acc) rest
                      | Error _ as e -> e
                    end
                in
                match go [] rest with
                | Error _ as e -> e
                | Ok by_pos ->
                    let sorted = List.sort (fun (a, _) (b, _) -> compare a b) by_pos in
                    Ok (m, scale, List.map snd sorted)
              end
          | _ -> Error "Instance.of_string: malformed header"
        end
      | _ -> Error "Instance.of_string: malformed header"
    end

let of_string str =
  match parse_text str with
  | Ok (m, scale, specs) -> create ~m ~scale specs
  | Error msg -> failwith msg

(* ------------------------------------------------- strict validation
   (doc/ROBUSTNESS.md). The checked constructors return structured
   Robust.Failure.invalid reasons instead of raising, and additionally
   guard the Equation (1) quantities against int overflow — an instance
   whose Σ p_j or Σ p_j·r_j exceeds max_int would make the lower bound
   silently negative. *)

let sum_checked f jobs =
  Array.fold_left
    (fun acc j ->
      match acc with
      | None -> None
      | Some a ->
          let v = f j in
          if v < 0 || a > max_int - v then None else Some (a + v))
    (Some 0) jobs

let validate ?(window = false) t =
  let open Robust.Failure in
  if window && t.m < 3 then Error (Too_few_processors { m = t.m; need = 3 })
  else begin
    let s_of (j : Job.t) = if j.size > max_int / j.req then -1 else j.size * j.req in
    match
      ( sum_checked (fun (j : Job.t) -> j.size) t.jobs,
        sum_checked s_of t.jobs,
        sum_checked (fun (j : Job.t) -> j.req) t.jobs )
    with
    | Some _, Some _, Some _ -> Ok t
    | None, _, _ -> Error (Overflow "total volume Σ p_j exceeds max_int")
    | _, None, _ -> Error (Overflow "total requirement Σ p_j·r_j exceeds max_int")
    | _, _, None -> Error (Overflow "Σ r_j exceeds max_int")
  end

let create_checked ?window ~m ~scale specs =
  let open Robust.Failure in
  if m < 2 then Error (Too_few_processors { m; need = 2 })
  else if scale < 1 then Error (Bad_scale scale)
  else begin
    let rec check i = function
      | [] -> Ok ()
      | (size, req) :: rest ->
          if size < 1 then Error (Nonpositive_size { job = i; size })
          else if req < 1 then Error (Nonpositive_req { job = i; req })
          else if size > max_int / req then
            Error (Overflow (Printf.sprintf "job %d: p_j·r_j = %d·%d exceeds max_int" i size req))
          else check (i + 1) rest
    in
    match check 0 specs with
    | Error _ as e -> e
    | Ok () -> validate ?window (create ~m ~scale specs)
  end

let of_floats_checked ?window ~m ~scale specs =
  let open Robust.Failure in
  let rec quantize i acc = function
    | [] -> Ok (List.rev acc)
    | (size, f) :: rest ->
        if not (Float.is_finite f) then Error (Not_finite { job = i; value = f })
        else if f <= 0.0 then
          (* the reason carries quantized units; a non-positive share is
             reported as 0 units (or min_int-safe floor would be noise) *)
          Error (Nonpositive_req { job = i; req = 0 })
        else
          let units = max 1 (int_of_float (Float.round (f *. float_of_int scale))) in
          quantize (i + 1) ((size, units) :: acc) rest
  in
  if scale < 1 then Error (Bad_scale scale)
  else
    match quantize 0 [] specs with
    | Error _ as e -> e
    | Ok q -> create_checked ?window ~m ~scale q

let of_string_checked ?window str =
  match parse_text str with
  | Ok (m, scale, specs) -> create_checked ?window ~m ~scale specs
  | Error msg -> Error (Robust.Failure.Malformed msg)

let pp ppf t =
  Format.fprintf ppf "@[<v>instance m=%d scale=%d n=%d@," t.m t.scale (n t);
  Array.iter (fun j -> Format.fprintf ppf "  %a@," Job.pp j) t.jobs;
  Format.fprintf ppf "@]"
