type t = {
  m : int;
  scale : int;
  jobs : Job.t array;
  original : int array;
}

let create ~m ~scale specs =
  if m < 2 then invalid_arg "Instance.create: need m >= 2";
  if scale < 1 then invalid_arg "Instance.create: need scale >= 1";
  let tagged =
    List.mapi (fun pos (size, req) -> (pos, Job.v ~id:pos ~size ~req)) specs
  in
  let arr = Array.of_list tagged in
  Array.sort (fun (_, a) (_, b) -> Job.compare_req a b) arr;
  let jobs =
    Array.mapi (fun i (_, j) -> Job.v ~id:i ~size:j.Job.size ~req:j.Job.req) arr
  in
  let original = Array.map fst arr in
  { m; scale; jobs; original }

let of_floats ~m ~scale specs =
  let quantize f =
    if not (Float.is_finite f) || f <= 0.0 then
      invalid_arg "Instance.of_floats: requirement must be positive and finite";
    let units = int_of_float (Float.round (f *. float_of_int scale)) in
    max 1 units
  in
  create ~m ~scale (List.map (fun (size, f) -> (size, quantize f)) specs)

let n t = Array.length t.jobs

let job t i =
  if i < 0 || i >= Array.length t.jobs then invalid_arg "Instance.job: index";
  t.jobs.(i)

let total_volume t = Array.fold_left (fun acc j -> acc + j.Job.size) 0 t.jobs
let total_requirement t = Array.fold_left (fun acc j -> acc + Job.s j) 0 t.jobs
let sum_req t = Array.fold_left (fun acc j -> acc + j.Job.req) 0 t.jobs
let max_size t = Array.fold_left (fun acc j -> max acc j.Job.size) 0 t.jobs
let unit_size t = Array.for_all (fun j -> j.Job.size = 1) t.jobs

let rescale t c =
  if c < 1 then invalid_arg "Instance.rescale: factor must be >= 1";
  {
    t with
    scale = t.scale * c;
    jobs = Array.map (fun j -> { j with Job.req = j.Job.req * c }) t.jobs;
  }

let restrict_m t m =
  if m < 2 then invalid_arg "Instance.restrict_m: need m >= 2";
  { t with m }

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "sos %d %d %d\n" t.m t.scale (n t));
  Array.iteri
    (fun i j ->
      Buffer.add_string buf
        (Printf.sprintf "%d %d %d\n" t.original.(i) j.Job.size j.Job.req))
    t.jobs;
  Buffer.contents buf

let of_string str =
  let lines =
    String.split_on_char '\n' str
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [] -> failwith "Instance.of_string: empty input"
  | header :: rest -> begin
      match String.split_on_char ' ' header with
      | [ "sos"; m; scale; count ] ->
          let m = int_of_string m and scale = int_of_string scale in
          let count = int_of_string count in
          if List.length rest <> count then
            failwith "Instance.of_string: job count mismatch";
          let by_pos =
            List.map
              (fun line ->
                match String.split_on_char ' ' line with
                | [ pos; size; req ] ->
                    (int_of_string pos, (int_of_string size, int_of_string req))
                | _ -> failwith "Instance.of_string: malformed job line")
              rest
          in
          let sorted = List.sort (fun (a, _) (b, _) -> compare a b) by_pos in
          create ~m ~scale (List.map snd sorted)
      | _ -> failwith "Instance.of_string: malformed header"
    end

let pp ppf t =
  Format.fprintf ppf "@[<v>instance m=%d scale=%d n=%d@," t.m t.scale (n t);
  Array.iter (fun j -> Format.fprintf ppf "  %a@," Job.pp j) t.jobs;
  Format.fprintf ppf "@]"
