let run_literal_grow_left inst = Fast.run ~variant:`Literal inst

let generic_run inst ~window_of ~assign =
  let st = State.create inst in
  let steps = ref [] in
  let carried = ref Window.empty in
  let fuel = ref (Instance.total_requirement inst + 1) in
  while not (State.all_finished st) do
    decr fuel;
    if !fuel < 0 then Robust.Failure.internal_error "Ablation: no progress";
    let w = window_of st !carried in
    let allocs, w' = assign st w in
    let finished =
      List.filter_map
        (fun (a : Schedule.alloc) ->
          State.consume st a.job a.consumed;
          if State.finished st a.job then Some a.job else None)
        allocs
    in
    steps := { Schedule.allocs; repeat = 1 } :: !steps;
    let survivors = Window.prune st w' in
    List.iter (State.unlink st) finished;
    carried := survivors;
    State.tick st
  done;
  Schedule.make inst (List.rev !steps)

let naive_assign st w ~budget =
  let ms = Window.members st w in
  let mx = match Window.last w with Some j -> j | None -> assert false in
  let req j = (Instance.job (State.instance st) j).Job.req in
  let spent = ref 0 in
  let allocs =
    List.map
      (fun j ->
        let assigned =
          if j = mx then min (budget - !spent) (req j) else req j
        in
        let assigned = max 0 assigned in
        spent := !spent + assigned;
        let consumed = min (min assigned (req j)) (State.s st j) in
        { Schedule.job = j; assigned; consumed })
      ms
  in
  (allocs, w)

let run_naive_fracture inst =
  let size = inst.Instance.m - 1 and budget = inst.Instance.scale in
  generic_run inst
    ~window_of:(fun st w -> Window.compute st w ~size ~budget)
    ~assign:(fun st w -> naive_assign st w ~budget)

let run_no_move inst =
  let size = inst.Instance.m - 1 and budget = inst.Instance.scale in
  let window_of st w =
    let w = Window.grow_left_fixed st w ~size ~budget in
    Window.grow_right st w ~size ~budget
  in
  (* extra:false — the soundness of starting an extra job on the m-th
     processor (single-fracture invariant) rests on MoveWindowRight, which
     this ablation removes. *)
  generic_run inst ~window_of ~assign:(fun st w ->
      let outcome = Assign.compute st w ~budget ~extra:false in
      (outcome.Assign.allocs, outcome.Assign.window))
