(* Sequential fallback for OCaml < 5.0 (no Domain module): the same
   interface as pool_multicore.ml, with every task run inline on the
   calling thread. Because the engine's determinism contract makes the
   parallel and sequential paths byte-identical, consumers need no
   version-specific code. *)

type t = { domains : int; mutable stop : bool }

(* Same deterministic counter as the multicore pool: run-indices executed
   (the runtime-class queue metrics have no sequential analogue). *)
let c_tasks = Obs.Metrics.counter "engine.pool.tasks"

(* Registered here too so both legs list the same histogram names; the
   sequential pull loop records its supply latency, while occupancy has
   no sequential analogue (at most one task is ever in flight). *)
let h_pull = Obs.Hist.runtime "engine.pool.pull_s"

let _h_occupancy =
  Obs.Hist.runtime
    ~bounds:(Obs.Hist.log_bounds ~lo:1.0 ~hi:65536.0 ~per_decade:5)
    "engine.pool.window_occupancy"

let recommended_domain_count () = 1

let create ?domains () =
  let domains =
    match domains with
    | None -> 1
    | Some d when d >= 1 -> d
    | Some d ->
        (invalid_arg (Printf.sprintf "Engine.Pool.create: domains = %d" d)
        [@sos.allow
          "R6: construction-time argument contract, outside any solve loop; suite_engine pins \
           the Invalid_argument behaviour"])
  in
  { domains; stop = false }

let domains t = t.domains

let run_ordered t ?chunk n ~run ~emit =
  ignore chunk;
  if n < 0 then
    invalid_arg "Engine.Pool.run_ordered: n < 0"
    [@sos.allow "R6: entry-point argument contract, checked before any task runs"];
  if t.stop then raise (Robust.Failure.Pool_down "Engine.Pool: run_ordered after shutdown");
  for i = 0 to n - 1 do
    Obs.Metrics.incr c_tasks;
    (try run i with _ -> ());
    emit i
  done

(* Pull-based streaming variant: on the sequential pool the window is
   irrelevant (one task is ever in flight), so it reduces to a pull, run,
   emit loop — exactly the d = 1 path of the multicore pool. *)
let run_ordered_seq t ?chunk ?window supply ~emit =
  ignore chunk;
  ignore window;
  if t.stop then
    raise (Robust.Failure.Pool_down "Engine.Pool: run_ordered_seq after shutdown");
  let rec go i =
    let obs = Obs.Metrics.enabled () in
    let t0 = if obs then Prelude.Clock.now () else 0.0 in
    let pulled = supply i in
    if obs then Obs.Hist.observe h_pull (Prelude.Clock.now () -. t0);
    match pulled with
    | None -> i
    | Some task ->
        Obs.Metrics.incr c_tasks;
        (try task () with _ -> ());
        emit i;
        go (i + 1)
  in
  go 0

let shutdown t = t.stop <- true

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
