(* Sequential fallback for OCaml < 5.0 (no Domain module): the same
   interface as pool_multicore.ml, with every task run inline on the
   calling thread. Because the engine's determinism contract makes the
   parallel and sequential paths byte-identical, consumers need no
   version-specific code. *)

type t = { domains : int }

(* Same deterministic counter as the multicore pool: run-indices executed
   (the runtime-class queue metrics have no sequential analogue). *)
let c_tasks = Obs.Metrics.counter "engine.pool.tasks"

let recommended_domain_count () = 1

let create ?domains () =
  let domains =
    match domains with
    | None -> 1
    | Some d when d >= 1 -> d
    | Some d -> invalid_arg (Printf.sprintf "Engine.Pool.create: domains = %d" d)
  in
  { domains }

let domains t = t.domains

let run_ordered _t ?chunk n ~run ~emit =
  ignore chunk;
  if n < 0 then invalid_arg "Engine.Pool.run_ordered: n < 0";
  for i = 0 to n - 1 do
    Obs.Metrics.incr c_tasks;
    (try run i with _ -> ());
    emit i
  done

let shutdown _t = ()

let with_pool ?domains f = f (create ?domains ())
