type error = { index : int; message : string }
type 'a outcome = ('a, error) result

(* Both deterministic: which tasks run and which of them raise depends
   only on the batch, never on the domain count. *)
let c_tasks = Obs.Metrics.counter "engine.batch.tasks"
let c_errors = Obs.Metrics.counter "engine.batch.errors"

let protect index task =
  Obs.Metrics.incr c_tasks;
  try Ok (task ())
  with e ->
    Obs.Metrics.incr c_errors;
    Error { index; message = Printexc.to_string e }

let map_pool pool ?chunk tasks =
  let n = Array.length tasks in
  let out = Array.make n (Error { index = -1; message = "Engine.Batch: task never ran" }) in
  Pool.run_ordered pool ?chunk n
    ~run:(fun i -> out.(i) <- protect i tasks.(i))
    ~emit:ignore;
  out

let map ?domains ?chunk tasks = Pool.with_pool ?domains (fun pool -> map_pool pool ?chunk tasks)

let stream pool ?chunk tasks ~f =
  let n = Array.length tasks in
  let slots = Array.make n None in
  Pool.run_ordered pool ?chunk n
    ~run:(fun i -> slots.(i) <- Some (protect i tasks.(i)))
    ~emit:(fun i ->
      match slots.(i) with
      | Some r ->
          slots.(i) <- None;
          f i r
      | None ->
          (* run_ordered guarantees run i completed before emit i *)
          assert false)

let map_reduce ?domains ?chunk ~reduce ~init tasks =
  Array.fold_left
    (fun acc r ->
      match (acc, r) with
      | (Error _ as e), _ -> e
      | Ok _, Error e -> Error e
      | Ok a, Ok v -> Ok (reduce a v))
    (Ok init)
    (map ?domains ?chunk tasks)
