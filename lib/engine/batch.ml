type error = {
  index : int;
  message : string;
  failure : Robust.Failure.t;
  backtrace : string;
  attempts : int;
}

type 'a outcome = ('a, error) result

(* engine.batch.tasks counts attempts and engine.batch.errors final
   failures; both are deterministic: which attempts run and which fail
   depends only on the batch (and the armed chaos configuration, itself
   keyed by task index/attempt), never on the domain count. The per-class
   failure and retry counters are runtime-class (doc/OBSERVABILITY.md). *)
let c_tasks = Obs.Metrics.counter "engine.batch.tasks"
let c_errors = Obs.Metrics.counter "engine.batch.errors"
let c_retries = Obs.Metrics.runtime_counter "engine.batch.retries"
let c_invalid = Obs.Metrics.runtime_counter "engine.batch.fail.invalid_instance"
let c_task_exn = Obs.Metrics.runtime_counter "engine.batch.fail.task_exn"
let c_deadline = Obs.Metrics.runtime_counter "engine.batch.fail.deadline"
let c_cancelled = Obs.Metrics.runtime_counter "engine.batch.fail.cancelled"

let record_failure = function
  | Robust.Failure.Invalid_instance _ -> Obs.Metrics.incr c_invalid
  | Robust.Failure.Task_exn _ -> Obs.Metrics.incr c_task_exn
  | Robust.Failure.Deadline_exceeded _ -> Obs.Metrics.incr c_deadline
  | Robust.Failure.Cancelled -> Obs.Metrics.incr c_cancelled
  | Robust.Failure.Pool_crashed _ -> ()

let error_of ~index ~attempts failure bt =
  Obs.Metrics.incr c_errors;
  {
    index;
    message = Robust.Failure.message failure;
    failure;
    backtrace = (match bt with Some b -> Printexc.raw_backtrace_to_string b | None -> "");
    attempts;
  }

let never_ran index =
  {
    index;
    message = "task never ran";
    failure = Robust.Failure.Pool_crashed "task never ran";
    backtrace = "";
    attempts = 0;
  }

(* One task: run up to [1 + retries] attempts, each inside its own ambient
   scope carrying (index, attempt, cancel token). The per-attempt token
   owns the --task-timeout deadline and chains to the batch-wide [cancel]
   parent, so cooperative pollers (Robust.Context.poll in the solvers) see
   both. Retry is bounded and deterministic: the decision depends only on
   the failure class, and a task that re-derives randomness from
   (base seed, index, Robust.Context.attempt ()) — e.g. Rng.create3 —
   reproduces the same attempt sequence at any domain count. *)
let protect ?(retries = 0) ?task_timeout ?cancel ?backoff index task =
  if retries < 0 then
    invalid_arg "Engine.Batch: retries < 0"
    [@sos.allow "R6: caller-side argument contract, rejected before the first attempt"];
  let rec go attempt =
    if match cancel with Some c -> Robust.Cancel.cancelled c | None -> false then begin
      record_failure Robust.Failure.Cancelled;
      Error (error_of ~index ~attempts:attempt Robust.Failure.Cancelled None)
    end
    else begin
      Obs.Metrics.incr c_tasks;
      let token = Robust.Cancel.create ?timeout:task_timeout ?parent:cancel () in
      let ctx = Robust.Context.make ~index ~attempt ~cancel:token in
      match
        Robust.Context.with_ctx ctx (fun () ->
            Robust.Chaos.point "engine.batch.task";
            task ())
      with
      | v -> Ok v
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          let failure = Robust.Failure.of_exn e bt in
          record_failure failure;
          if attempt < retries && Robust.Failure.transient failure then begin
            Obs.Metrics.incr c_retries;
            (* Deterministic jittered backoff before the retry: the delay
               is a pure function of (policy seed, index, attempt), so it
               never perturbs output bytes — only wall time — at any -j. *)
            (match backoff with
            | Some policy ->
                Robust.Backoff.sleep
                  (Robust.Backoff.delay policy ~index ~attempt:(attempt + 1))
            | None -> ());
            go (attempt + 1)
          end
          else Error (error_of ~index ~attempts:(attempt + 1) failure (Some bt))
    end
  in
  go 0

let map_pool pool ?chunk ?retries ?task_timeout ?cancel ?backoff tasks =
  let n = Array.length tasks in
  let out = Array.init n (fun i -> Error (never_ran i)) in
  Pool.run_ordered pool ?chunk n
    ~run:(fun i -> out.(i) <- protect ?retries ?task_timeout ?cancel ?backoff i tasks.(i))
    ~emit:ignore;
  out

let map ?domains ?chunk ?retries ?task_timeout ?cancel ?backoff tasks =
  Pool.with_pool ?domains (fun pool ->
      map_pool pool ?chunk ?retries ?task_timeout ?cancel ?backoff tasks)

(* Outcomes travel from worker to caller through a ring of [window] slots:
   task i writes slot (i mod window), emit i reads and clears it. Slot
   reuse is safe because task (i + window) is only supplied after emit i
   (the pool's in-flight bound), and the pool's completion handshake makes
   the worker's write visible to the caller. *)
let stream_seq pool ?(chunk = 1) ?window ?retries ?task_timeout ?cancel ?backoff producer ~f =
  let chunk = max 1 chunk in
  let window =
    match window with
    | None -> 4 * Pool.domains pool * chunk
    | Some w -> max chunk (max 1 w)
  in
  let slots = Array.make window None in
  Pool.run_ordered_seq pool ~chunk ~window
    (fun i ->
      match producer i with
      | None -> None
      | Some task ->
          Some
            (fun () ->
              slots.(i mod window) <-
                Some (protect ?retries ?task_timeout ?cancel ?backoff i task)))
    ~emit:(fun i ->
      match slots.(i mod window) with
      | Some r ->
          slots.(i mod window) <- None;
          f i r
      | None ->
          (* protect never raises, so the slot is always filled; this is a
             backstop for a task the pool machinery lost entirely. *)
          f i (Error (never_ran i)))

let stream pool ?chunk ?retries ?task_timeout ?cancel ?backoff tasks ~f =
  (* window = n keeps the materialized path's semantics: workers are never
     throttled by a slow consumer, exactly as before the streaming rebuild. *)
  let n = Array.length tasks in
  ignore
    (stream_seq pool ?chunk ~window:(max n 1) ?retries ?task_timeout ?cancel ?backoff
       (fun i -> if i < n then Some tasks.(i) else None)
       ~f)

let map_reduce ?domains ?chunk ?retries ?task_timeout ?cancel ?backoff ~reduce ~init tasks =
  (* Folded on the streaming path: the accumulator is threaded through emit
     in submission order, so memory stays O(window) instead of one
     materialized outcome array — only the first error is kept. *)
  let n = Array.length tasks in
  Pool.with_pool ?domains (fun pool ->
      let acc = ref (Ok init) in
      ignore
        (stream_seq pool ?chunk ?retries ?task_timeout ?cancel ?backoff
           (fun i -> if i < n then Some tasks.(i) else None)
           ~f:(fun _ r ->
             match (!acc, r) with
             | Error _, _ -> ()
             | Ok _, Error e -> acc := Error e
             | Ok a, Ok v -> acc := Ok (reduce a v)));
      !acc)
