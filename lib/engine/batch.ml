type error = {
  index : int;
  message : string;
  failure : Robust.Failure.t;
  backtrace : string;
  attempts : int;
}

type 'a outcome = ('a, error) result

(* engine.batch.tasks counts attempts and engine.batch.errors final
   failures; both are deterministic: which attempts run and which fail
   depends only on the batch (and the armed chaos configuration, itself
   keyed by task index/attempt), never on the domain count. The per-class
   failure and retry counters are runtime-class (doc/OBSERVABILITY.md). *)
let c_tasks = Obs.Metrics.counter "engine.batch.tasks"
let c_errors = Obs.Metrics.counter "engine.batch.errors"
let c_retries = Obs.Metrics.runtime_counter "engine.batch.retries"
let c_invalid = Obs.Metrics.runtime_counter "engine.batch.fail.invalid_instance"
let c_task_exn = Obs.Metrics.runtime_counter "engine.batch.fail.task_exn"
let c_deadline = Obs.Metrics.runtime_counter "engine.batch.fail.deadline"
let c_cancelled = Obs.Metrics.runtime_counter "engine.batch.fail.cancelled"

let record_failure = function
  | Robust.Failure.Invalid_instance _ -> Obs.Metrics.incr c_invalid
  | Robust.Failure.Task_exn _ -> Obs.Metrics.incr c_task_exn
  | Robust.Failure.Deadline_exceeded _ -> Obs.Metrics.incr c_deadline
  | Robust.Failure.Cancelled -> Obs.Metrics.incr c_cancelled
  | Robust.Failure.Pool_crashed _ -> ()

let error_of ~index ~attempts failure bt =
  Obs.Metrics.incr c_errors;
  {
    index;
    message = Robust.Failure.message failure;
    failure;
    backtrace = (match bt with Some b -> Printexc.raw_backtrace_to_string b | None -> "");
    attempts;
  }

let never_ran index =
  {
    index;
    message = "task never ran";
    failure = Robust.Failure.Pool_crashed "task never ran";
    backtrace = "";
    attempts = 0;
  }

(* One task: run up to [1 + retries] attempts, each inside its own ambient
   scope carrying (index, attempt, cancel token). The per-attempt token
   owns the --task-timeout deadline and chains to the batch-wide [cancel]
   parent, so cooperative pollers (Robust.Context.poll in the solvers) see
   both. Retry is bounded and deterministic: the decision depends only on
   the failure class, and a task that re-derives randomness from
   (base seed, index, Robust.Context.attempt ()) — e.g. Rng.create3 —
   reproduces the same attempt sequence at any domain count. *)
let protect ?(retries = 0) ?task_timeout ?cancel index task =
  if retries < 0 then
    invalid_arg "Engine.Batch: retries < 0"
    [@sos.allow "R6: caller-side argument contract, rejected before the first attempt"];
  let rec go attempt =
    if match cancel with Some c -> Robust.Cancel.cancelled c | None -> false then begin
      record_failure Robust.Failure.Cancelled;
      Error (error_of ~index ~attempts:attempt Robust.Failure.Cancelled None)
    end
    else begin
      Obs.Metrics.incr c_tasks;
      let token = Robust.Cancel.create ?timeout:task_timeout ?parent:cancel () in
      let ctx = Robust.Context.make ~index ~attempt ~cancel:token in
      match
        Robust.Context.with_ctx ctx (fun () ->
            Robust.Chaos.point "engine.batch.task";
            task ())
      with
      | v -> Ok v
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          let failure = Robust.Failure.of_exn e bt in
          record_failure failure;
          if attempt < retries && Robust.Failure.transient failure then begin
            Obs.Metrics.incr c_retries;
            go (attempt + 1)
          end
          else Error (error_of ~index ~attempts:(attempt + 1) failure (Some bt))
    end
  in
  go 0

let map_pool pool ?chunk ?retries ?task_timeout ?cancel tasks =
  let n = Array.length tasks in
  let out = Array.init n (fun i -> Error (never_ran i)) in
  Pool.run_ordered pool ?chunk n
    ~run:(fun i -> out.(i) <- protect ?retries ?task_timeout ?cancel i tasks.(i))
    ~emit:ignore;
  out

let map ?domains ?chunk ?retries ?task_timeout ?cancel tasks =
  Pool.with_pool ?domains (fun pool -> map_pool pool ?chunk ?retries ?task_timeout ?cancel tasks)

let stream pool ?chunk ?retries ?task_timeout ?cancel tasks ~f =
  let n = Array.length tasks in
  let slots = Array.make n None in
  Pool.run_ordered pool ?chunk n
    ~run:(fun i -> slots.(i) <- Some (protect ?retries ?task_timeout ?cancel i tasks.(i)))
    ~emit:(fun i ->
      match slots.(i) with
      | Some r ->
          slots.(i) <- None;
          f i r
      | None ->
          (* run_ordered guarantees run i completed before emit i *)
          assert false)

let map_reduce ?domains ?chunk ?retries ?task_timeout ?cancel ~reduce ~init tasks =
  Array.fold_left
    (fun acc r ->
      match (acc, r) with
      | (Error _ as e), _ -> e
      | Ok _, Error e -> Error e
      | Ok a, Ok v -> Ok (reduce a v))
    (Ok init)
    (map ?domains ?chunk ?retries ?task_timeout ?cancel tasks)
