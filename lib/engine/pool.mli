(** Fixed pool of worker domains with a bounded work queue.

    On OCaml >= 5.0 this is a real [Domain.spawn] pool: [create ~domains:d]
    spawns [d] workers that pull thunks off a [Mutex]/[Condition]-guarded
    queue of bounded capacity (submission blocks when the queue is full, so
    a huge batch never materializes as a huge queue). On OCaml 4.x the same
    interface is provided by a sequential fallback that runs every task
    inline on the calling thread.

    Determinism contract: the pool never tells a task which domain runs it
    or in which order tasks complete. Anything a task needs to vary by must
    come from its submission index (see [run_ordered]) — callers seed RNGs
    from [(base_seed, task_index)], e.g. {!Prelude.Rng.create2}, never from
    domain identity, so results are byte-identical at any domain count. *)

type t

val recommended_domain_count : unit -> int
(** [Domain.recommended_domain_count ()] on OCaml >= 5.0; [1] on the
    sequential fallback. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] makes a pool of [domains] workers (default
    {!recommended_domain_count}). [domains = 1] spawns no worker domains:
    every [run_ordered] call on such a pool takes the exact sequential
    path. Raises [Invalid_argument] if [domains < 1]. *)

val domains : t -> int
(** The domain count the pool was created with. *)

val run_ordered :
  t -> ?chunk:int -> int -> run:(int -> unit) -> emit:(int -> unit) -> unit
(** [run_ordered t ~chunk n ~run ~emit] evaluates [run i] for every
    [0 <= i < n] — on the worker domains, in chunks of [chunk] (default 1)
    consecutive indices per queued task — and calls [emit i] on the calling
    thread in increasing index order, as soon as [run 0 .. run i] have all
    completed. Returns when every task has run and been emitted, so results
    stream in submission order while later tasks are still executing.

    [run] must not raise (wrap it; {!Batch} captures exceptions per task);
    a raising [run] is swallowed so it cannot wedge the pool. [emit] runs
    on the caller and may print / write files. Memory written by [run i]
    is visible to [emit i] (the completion handshake synchronizes). *)

val run_ordered_seq :
  t ->
  ?chunk:int ->
  ?window:int ->
  (int -> (unit -> unit) option) ->
  emit:(int -> unit) ->
  int
(** [run_ordered_seq t ~chunk ~window supply ~emit] is the pull-based,
    constant-memory variant of {!run_ordered} for batches whose size is
    unknown up front (a spec file being streamed off disk). The pool calls
    [supply i] on the calling thread, strictly in increasing index order
    and exactly once per index, until it returns [None]; each supplied
    thunk runs on the worker domains ([chunk] consecutive thunks per
    queued task), and [emit i] is called on the calling thread in
    increasing index order. Returns the number of tasks supplied.

    At most [window] tasks are in flight (supplied but not yet emitted) at
    any moment — the producer is only pulled when there is window room, so
    memory stays O(window) no matter how long the stream is. [window]
    defaults to [4 * domains * chunk] and is clamped up to [chunk].

    Determinism contract as {!run_ordered}: which domain runs a task and
    when is unobservable; [supply] and [emit] both run on the caller, so a
    stateful producer (a file reader) and a stateful consumer need no
    locking. Memory written by task [i] is visible to [emit i]. *)

val shutdown : t -> unit
(** Drain the queue, stop and join all workers. Idempotent. Using the pool
    afterwards raises [Robust.Failure.Pool_down] instead of deadlocking.

    {b Fault tolerance.} The chaos site ["engine.pool.worker"] (see
    {!Robust.Chaos}) fires between dequeues and kills the worker that
    draws it — except the last live one, which refuses to die — so an
    armed worker-death rule degrades the pool gracefully down to one
    consumer and every batch still completes with ordered results. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] on a fresh pool and shuts it down
    afterwards, also on exception. *)
