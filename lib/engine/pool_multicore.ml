(* Domain.spawn worker pool (OCaml >= 5.0). See pool.mli; the 4.x build
   substitutes pool_sequential.ml for this file. *)

[@@@sos.allow
  "R3: the bounded task queue must block (producers on not_full, idle workers on not_empty); \
   Condition has no Atomic replacement short of burning a core spinning. This file is the one \
   sanctioned Mutex user — determinism is preserved because results are emitted by submission \
   index, never completion order (doc/LINT.md)."]

type task = unit -> unit

type t = {
  domains : int;
  queue : task Queue.t;
  capacity : int;
  lock : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  mutable stop : bool;
  mutable alive : int;  (* workers still in their loop; bounds chaos deaths *)
  mutable workers : unit Domain.t list;
}

(* Telemetry (doc/OBSERVABILITY.md). [engine.pool.tasks] counts run-indices
   executed — the same total at any domain count, so it is deterministic;
   queue depth, queue latency, and per-domain task counts depend on
   scheduling and are runtime-class. *)
let c_tasks = Obs.Metrics.counter "engine.pool.tasks"
let g_queue_hwm = Obs.Metrics.runtime_counter "engine.pool.queue_hwm"
let t_queue_wait = Obs.Metrics.timer "engine.pool.queue_wait"

(* Streaming-window distribution telemetry (runtime class, PR 8): how
   long each producer pull takes on the caller thread, and how full the
   in-flight window is at the moment of each pull — a window that samples
   near its capacity means the producer keeps the workers fed. *)
let h_pull = Obs.Hist.runtime "engine.pool.pull_s"

let h_occupancy =
  Obs.Hist.runtime
    ~bounds:(Obs.Hist.log_bounds ~lo:1.0 ~hi:65536.0 ~per_decade:5)
    "engine.pool.window_occupancy"

let domain_counter w = Obs.Metrics.runtime_counter (Printf.sprintf "engine.pool.d%d.tasks" w)
let g_deaths = Obs.Metrics.runtime_counter "engine.pool.worker_deaths"

let recommended_domain_count () = Domain.recommended_domain_count ()

(* Chaos site "engine.pool.worker": fires between dequeues (the worker
   holds no task), simulating an asynchronous worker death. The pool
   survives any number of injected deaths because the last live worker
   refuses to die — the queue always keeps at least one consumer, so
   run_ordered still completes and results stay ordered (tested in
   suite_robust). *)
let chaos_death t =
  match Robust.Chaos.point "engine.pool.worker" with
  | () -> false
  | exception Robust.Chaos.Injected _ ->
      Mutex.lock t.lock;
      let die = t.alive > 1 in
      if die then t.alive <- t.alive - 1;
      Mutex.unlock t.lock;
      if die then Obs.Metrics.incr g_deaths;
      die

(* [w] is the worker's index, used as the Chrome trace track id (tid w+1;
   the caller thread is track 0) and for the per-domain runtime counter. *)
let rec worker_loop t w dc =
  if Robust.Chaos.armed () && chaos_death t then ()
  else worker_iteration t w dc

and worker_iteration t w dc =
  Mutex.lock t.lock;
  (while Queue.is_empty t.queue && not t.stop do
     Condition.wait t.not_empty t.lock
   done)
  [@sos.allow
    "A2: idle wait, not work; shutdown sets [stop] under the lock and broadcasts [not_empty], \
     so the wait always wakes"];
  if Queue.is_empty t.queue then Mutex.unlock t.lock (* stopping, drained *)
  else begin
    let task = Queue.pop t.queue in
    Condition.signal t.not_full;
    Mutex.unlock t.lock;
    Obs.Metrics.incr dc;
    (try
       if Obs.Trace.active () then
         Obs.Trace.with_span ~tid:(w + 1) ~cat:"pool" "pool.task" task
       else task ()
     with _ -> ());
    worker_loop t w dc
  end

let create ?domains () =
  let domains =
    match domains with
    | None -> recommended_domain_count ()
    | Some d when d >= 1 -> d
    | Some d ->
        (invalid_arg (Printf.sprintf "Engine.Pool.create: domains = %d" d)
        [@sos.allow
          "R6: construction-time argument contract, outside any solve loop; suite_engine pins \
           the Invalid_argument behaviour"])
  in
  let t =
    {
      domains;
      queue = Queue.create ();
      capacity = 4 * domains;
      lock = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      stop = false;
      alive = 0;
      workers = [];
    }
  in
  if domains > 1 then begin
    t.alive <- domains;
    t.workers <-
      List.init domains (fun w ->
          Domain.spawn (fun () ->
              if Obs.Trace.active () then
                Obs.Trace.set_thread_name ~tid:(w + 1) (Printf.sprintf "domain-%d" w);
              worker_loop t w (domain_counter w)))
  end;
  t

let domains t = t.domains

let submit t task =
  (* Stamp the enqueue time only when someone is listening: the timer
     records how long the task sat in the bounded queue before a worker
     picked it up. *)
  let task =
    if Obs.Metrics.enabled () then begin
      let enqueued =
        (Prelude.Clock.now () [@sos.allow "A1: runtime-class queue-wait sample; t_queue_wait is a runtime timer, never digested"])
      in
      fun () ->
        Obs.Metrics.observe t_queue_wait
          ((Prelude.Clock.now () [@sos.allow "A1: runtime-class queue-wait sample; t_queue_wait is a runtime timer, never digested"])
          -. enqueued);
        task ()
    end
    else task
  in
  Mutex.lock t.lock;
  if t.stop then begin
    Mutex.unlock t.lock;
    raise (Robust.Failure.Pool_down "Engine.Pool: submit after shutdown")
  end;
  while Queue.length t.queue >= t.capacity do
    Condition.wait t.not_full t.lock
  done;
  Queue.push task t.queue;
  Obs.Metrics.record_max g_queue_hwm (Queue.length t.queue);
  Condition.signal t.not_empty;
  Mutex.unlock t.lock

(* The windowed streaming driver behind both run_ordered_seq (pull-based,
   unknown length) and run_ordered (n known, window = n reproduces the
   submit-everything-then-emit behaviour). Completion is tracked in a ring
   of [window] slots: slot [i mod window] is reused by task [i + window],
   which cannot be supplied before task [i] was emitted (the in-flight
   bound), so a cleared slot is never observed stale. *)
let run_ordered_seq t ?(chunk = 1) ?window supply ~emit =
  if t.stop then
    raise (Robust.Failure.Pool_down "Engine.Pool: run_ordered_seq after shutdown");
  let chunk = max 1 chunk in
  if t.workers = [] then begin
    (* The exact sequential path: pull, run, emit, one index at a time. *)
    let rec go i =
      match supply i with
      | None -> i
      | Some task ->
          Obs.Metrics.incr c_tasks;
          (try task () with _ -> ());
          emit i;
          go (i + 1)
    in
    go 0
  end
  else begin
    let window =
      match window with
      | None -> 4 * t.domains * chunk
      | Some w -> max chunk (max 1 w)
    in
    let completed = Array.make window false in
    let lock = Mutex.create () in
    let ready = Condition.create () in
    let mark lo hi =
      Mutex.lock lock;
      for i = lo to hi - 1 do
        completed.(i mod window) <- true
      done;
      Condition.broadcast ready;
      Mutex.unlock lock
    in
    let next_submit = ref 0 in
    let next_emit = ref 0 in
    let exhausted = ref false in
    (* Pull up to [k] thunks from the producer, caller-side. *)
    let pull k =
      let acc = ref [] in
      let cnt = ref 0 in
      while !cnt < k && not !exhausted do
        match supply (!next_submit + !cnt) with
        | None -> exhausted := true
        | Some f ->
            acc := f :: !acc;
            incr cnt
      done;
      Array.of_list (List.rev !acc)
    in
    (* Submit only when a full chunk of window space is free, and drain
       every ready completion before submitting again. Emitting one task
       per iteration would free a single slot at a time, degrading every
       steady-state pull to min(chunk, 1) = 1 thunk — chunk-fold more
       submit/lock/signal round trips than the chunking contract promises.
       [window >= chunk] (clamped above) guarantees the emit branch always
       has at least one in-flight task to wait on. *)
    while (not !exhausted) || !next_emit < !next_submit do
      let inflight = !next_submit - !next_emit in
      if (not !exhausted) && window - inflight >= chunk then begin
        let obs = Obs.Metrics.enabled () in
        if obs then Obs.Hist.observe_int h_occupancy inflight;
        let t0 =
          if obs then
            (Prelude.Clock.now () [@sos.allow "A1: runtime-class pull-latency sample; h_pull is a runtime histogram, never digested"])
          else 0.0
        in
        let thunks = pull chunk in
        if obs then
          Obs.Hist.observe h_pull
            ((Prelude.Clock.now () [@sos.allow "A1: runtime-class pull-latency sample; h_pull is a runtime histogram, never digested"])
            -. t0);
        let k = Array.length thunks in
        if k > 0 then begin
          let lo = !next_submit in
          next_submit := lo + k;
          submit t (fun () ->
              (try
                 Array.iter
                   (fun f ->
                     Obs.Metrics.incr c_tasks;
                     f ())
                   thunks
               with _ -> ());
              mark lo (lo + k))
        end
      end
      else begin
        Mutex.lock lock;
        while not completed.(!next_emit mod window) do
          Condition.wait ready lock
        done;
        Mutex.unlock lock;
        let draining = ref true in
        while !draining && !next_emit < !next_submit do
          Mutex.lock lock;
          let ready_now = completed.(!next_emit mod window) in
          if ready_now then completed.(!next_emit mod window) <- false;
          Mutex.unlock lock;
          if ready_now then begin
            emit !next_emit;
            incr next_emit
          end
          else draining := false
        done
      end
    done;
    !next_emit
  end

let run_ordered t ?chunk n ~run ~emit =
  if n < 0 then
    invalid_arg "Engine.Pool.run_ordered: n < 0"
    [@sos.allow "R6: entry-point argument contract, checked before any task is queued"];
  ignore
    (run_ordered_seq t ?chunk ~window:(max n 1)
       (fun i -> if i < n then Some (fun () -> run i) else None)
       ~emit)

let shutdown t =
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.not_empty;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
