(** Deterministic, fault-tolerant batch maps over arrays of thunks, on a
    {!Pool}.

    Results always come back in submission order, and a failing task turns
    into an [Error] for its own index instead of killing the pool or the
    batch. Combined with the per-task-index seeding contract (see
    {!Pool}), every function here returns byte-identical results at any
    domain count — [~domains:1] is the exact sequential path.

    {b Resilience} (doc/ROBUSTNESS.md). Every entry point takes:
    - [?retries]: failed attempts of {e transient} classes
      ({!Robust.Failure.transient}: task exceptions and deadline expiry)
      are re-run up to [retries] extra times. Each attempt executes inside
      an ambient {!Robust.Context} scope carrying [(index, attempt)], so a
      task re-deriving randomness via [Rng.create3 base index attempt]
      retries deterministically at any domain count.
    - [?task_timeout]: a per-attempt cooperative deadline in wall seconds.
      Tasks (the solvers do, via [Robust.Context.poll]) observe it at loop
      boundaries; an expired attempt fails with [Deadline_exceeded].
    - [?cancel]: a batch-wide {!Robust.Cancel} token. Once cancelled,
      running tasks unwind at their next poll and not-yet-started tasks
      fail immediately, all with [Cancelled]; the pool stays usable.
    - [?backoff]: a {!Robust.Backoff.policy}. When given, a retry sleeps
      [Backoff.delay policy ~index ~attempt] first — a capped, jittered,
      deterministic delay keyed on [(policy seed, index, attempt)], so
      transient-fault sites are not hammered by immediate re-runs and the
      delay schedule (like the output bytes) is identical at any domain
      count. Omitted = immediate retry, the pre-backoff behaviour. *)

type error = {
  index : int;  (** the failing task's submission index *)
  message : string;  (** {!Robust.Failure.message} of [failure] *)
  failure : Robust.Failure.t;  (** structured failure class *)
  backtrace : string;
      (** backtrace captured at the raise site of the final attempt; [""]
          unless backtrace recording is on ([Printexc.record_backtrace]) *)
  attempts : int;  (** attempts executed (1 = no retry happened) *)
}

type 'a outcome = ('a, error) result

val map :
  ?domains:int ->
  ?chunk:int ->
  ?retries:int ->
  ?task_timeout:float ->
  ?cancel:Robust.Cancel.t ->
  ?backoff:Robust.Backoff.policy ->
  (unit -> 'a) array ->
  'a outcome array
(** [map ~domains ~chunk tasks] runs every thunk on a fresh pool of
    [domains] workers (default {!Pool.recommended_domain_count}), [chunk]
    consecutive tasks per queued unit of work (default 1), and returns the
    outcomes in submission order. *)

val map_pool :
  Pool.t ->
  ?chunk:int ->
  ?retries:int ->
  ?task_timeout:float ->
  ?cancel:Robust.Cancel.t ->
  ?backoff:Robust.Backoff.policy ->
  (unit -> 'a) array ->
  'a outcome array
(** [map] on an existing pool (reusable across batches — a failed task
    leaves the pool fully usable). *)

val stream :
  Pool.t ->
  ?chunk:int ->
  ?retries:int ->
  ?task_timeout:float ->
  ?cancel:Robust.Cancel.t ->
  ?backoff:Robust.Backoff.policy ->
  (unit -> 'a) array ->
  f:(int -> 'a outcome -> unit) ->
  unit
(** [stream pool tasks ~f] calls [f i outcome_i] on the calling thread in
    increasing index order, as each prefix of the batch completes — early
    results are consumed while later tasks are still running. *)

val stream_seq :
  Pool.t ->
  ?chunk:int ->
  ?window:int ->
  ?retries:int ->
  ?task_timeout:float ->
  ?cancel:Robust.Cancel.t ->
  ?backoff:Robust.Backoff.policy ->
  (int -> (unit -> 'a) option) ->
  f:(int -> 'a outcome -> unit) ->
  int
(** [stream_seq pool producer ~f] is the pull-based, constant-memory
    batch: [producer i] is called on the calling thread, strictly in
    increasing index order and exactly once per index, until it returns
    [None] — so a producer can pull specs straight off a file reader — and
    [f i outcome_i] is called on the calling thread in increasing index
    order. Returns the number of tasks produced.

    At most [window] tasks (default [4 * domains * chunk], clamped up to
    [chunk]) are in flight between producer and consumer, so memory is
    O(window) regardless of stream length. The determinism contract is
    unchanged: task randomness keyed on the submission index (e.g.
    {!Prelude.Rng.create2}/[create3]) makes the emitted sequence
    byte-identical at any domain count, and [?retries]/[?task_timeout]/
    [?cancel] behave exactly as in {!map}. *)

val map_reduce :
  ?domains:int ->
  ?chunk:int ->
  ?retries:int ->
  ?task_timeout:float ->
  ?cancel:Robust.Cancel.t ->
  ?backoff:Robust.Backoff.policy ->
  reduce:('acc -> 'a -> 'acc) ->
  init:'acc ->
  (unit -> 'a) array ->
  ('acc, error) result
(** Parallel map folded on the streaming path — the accumulator is
    threaded through ordered emission, so memory stays O(window) instead
    of one materialized outcome array. The fold order is submission order
    (so the reduction is deterministic even when [reduce] is not
    commutative), and the first failing task's [Error] is returned. *)
