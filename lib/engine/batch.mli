(** Deterministic batch maps over arrays of thunks, on a {!Pool}.

    Results always come back in submission order, and a raising task turns
    into an [Error] for its own index instead of killing the pool or the
    batch. Combined with the per-task-index seeding contract (see
    {!Pool}), every function here returns byte-identical results at any
    domain count — [~domains:1] is the exact sequential path. *)

type error = { index : int; message : string }
(** [index] is the failing task's submission index; [message] is
    [Printexc.to_string] of the exception it raised. *)

type 'a outcome = ('a, error) result

val map : ?domains:int -> ?chunk:int -> (unit -> 'a) array -> 'a outcome array
(** [map ~domains ~chunk tasks] runs every thunk on a fresh pool of
    [domains] workers (default {!Pool.recommended_domain_count}), [chunk]
    consecutive tasks per queued unit of work (default 1), and returns the
    outcomes in submission order. *)

val map_pool : Pool.t -> ?chunk:int -> (unit -> 'a) array -> 'a outcome array
(** [map] on an existing pool (reusable across batches — a failed task
    leaves the pool fully usable). *)

val stream :
  Pool.t -> ?chunk:int -> (unit -> 'a) array -> f:(int -> 'a outcome -> unit) -> unit
(** [stream pool tasks ~f] calls [f i outcome_i] on the calling thread in
    increasing index order, as each prefix of the batch completes — early
    results are consumed while later tasks are still running. *)

val map_reduce :
  ?domains:int ->
  ?chunk:int ->
  reduce:('acc -> 'a -> 'acc) ->
  init:'acc ->
  (unit -> 'a) array ->
  ('acc, error) result
(** Parallel map, then a sequential fold in submission order (so the
    reduction is deterministic even when [reduce] is not commutative).
    The first failing task short-circuits to its [Error]. *)
