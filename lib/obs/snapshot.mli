(** Parse any {!Metrics} snapshot rendering — plain text, JSON, or
    OpenMetrics — into a flat list of scalar samples, for diffing
    ([sosctl obs-diff]).

    Keys are chosen so the text and JSON renderings of the same registry
    agree: a counter is [name]; a timer contributes [name.count],
    [name.p50_ms], [name.p95_ms], [name.max_ms]; a histogram contributes
    [name.count], [name.p50], [name.p90], [name.p99], [name.max].
    OpenMetrics samples keep their sanitized names
    ([sos_fast_runs_total]) and skip per-bucket/per-quantile series —
    compare prom against prom. [cls] is the determinism class when the
    format records one (JSON and prom do; text does not). *)

type entry = { key : string; cls : string option; v : float }

val parse : string -> entry list
(** Autodetects the format from the content: leading ['{'] is JSON,
    leading ['#'] (or a [_total{] sample) is OpenMetrics, anything else
    is the plain-text snapshot. Unparseable lines are skipped. *)

val load : string -> entry list
(** [load path] parses the file's contents. *)
