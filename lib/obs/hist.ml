(* Thin facade over the Metrics registry so callers can say [Obs.Hist.t]
   without reaching into the full registry API. The data lives in
   Metrics: histograms participate in snapshots, reset, and the
   OpenMetrics exposition like every other metric. *)

type t = Metrics.hist

let create = Metrics.hist
let runtime = Metrics.runtime_hist
let log_bounds = Metrics.log_bounds
let linear_bounds = Metrics.linear_bounds
let observe = Metrics.hist_observe
let observe_int = Metrics.hist_observe_int
let count = Metrics.hist_count
let max_value = Metrics.hist_max
let quantile = Metrics.hist_quantile
let merge_into = Metrics.hist_merge_into
