(* Parser for the three snapshot renderings Metrics can produce — plain
   text, JSON, and OpenMetrics — into one flat (key, class, value) list,
   so snapshots can be diffed regardless of how they were captured.
   Parsing is line-based and tolerant: the formats are all one entry per
   line by construction, and unknown lines are skipped rather than
   rejected (a diff tool should not fall over on a hand-edited file).

   Key scheme (chosen so text and JSON agree): a counter contributes
   [name]; a timer contributes [name.count], [name.p50_ms],
   [name.p95_ms], [name.max_ms]; a histogram contributes [name.count],
   [name.p50], [name.p90], [name.p99], [name.max]. OpenMetrics keys keep
   their sanitized metric names ([sos_fast_runs_total]) — compare prom
   against prom, not prom against JSON. *)

type entry = { key : string; cls : string option; v : float }

let is_space c = c = ' ' || c = '\t'

let find_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = if i + nn > nh then None else if String.sub hay i nn = needle then Some i else go (i + 1) in
  go 0

(* ["key": <token>] on a JSON line; token is a bare number or a quoted
   string, terminated by [,}\]]. *)
let json_field line key =
  match find_sub line (Printf.sprintf "\"%s\":" key) with
  | None -> None
  | Some i ->
      let n = String.length line in
      let j = ref (i + String.length key + 3) in
      while !j < n && is_space line.[!j] do incr j done;
      if !j >= n then None
      else if line.[!j] = '"' then begin
        let k = ref (!j + 1) in
        while !k < n && line.[!k] <> '"' do incr k done;
        Some (String.sub line (!j + 1) (!k - !j - 1))
      end
      else begin
        let k = ref !j in
        while
          !k < n && (match line.[!k] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false)
        do
          incr k
        done;
        if !k = !j then None else Some (String.sub line !j (!k - !j))
      end

let parse_json body =
  let entries = ref [] in
  let add key cls v = entries := { key; cls; v } :: !entries in
  String.split_on_char '\n' body
  |> List.iter (fun line ->
         match json_field line "name" with
         | None -> ()
         | Some name ->
             let cls = json_field line "class" in
             let num key = Option.bind (json_field line key) float_of_string_opt in
             (match num "value" with
             | Some v -> add name cls v
             | None ->
                 List.iter
                   (fun k ->
                     match num k with
                     | Some v -> add (name ^ "." ^ k) cls v
                     | None -> ())
                   [ "count"; "p50_ms"; "p95_ms"; "max_ms"; "p50"; "p90"; "p99"; "max" ]));
  List.rev !entries

let parse_prom body =
  let entries = ref [] in
  String.split_on_char '\n' body
  |> List.iter (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then ()
         else if
           (* bucket and quantile series are shape, not scalars to gate on *)
           find_sub line "le=\"" <> None || find_sub line "quantile=\"" <> None
         then ()
         else begin
           let name_end =
             match String.index_opt line '{' with
             | Some i -> i
             | None -> ( match String.index_opt line ' ' with Some i -> i | None -> 0)
           in
           if name_end > 0 then begin
             let key = String.sub line 0 name_end in
             let cls =
               match find_sub line "class=\"" with
               | None -> None
               | Some i ->
                   let s = i + 7 in
                   String.index_from_opt line s '"'
                   |> Option.map (fun e -> String.sub line s (e - s))
             in
             match String.rindex_opt line ' ' with
             | None -> ()
             | Some sp -> (
                 match float_of_string_opt (String.sub line (sp + 1) (String.length line - sp - 1)) with
                 | Some v -> entries := { key; cls; v } :: !entries
                 | None -> ())
           end
         end);
  List.rev !entries

let parse_text body =
  let entries = ref [] in
  String.split_on_char '\n' body
  |> List.iter (fun line ->
         let line = String.trim line in
         if line = "" then ()
         else
           match String.split_on_char ' ' line |> List.filter (fun t -> t <> "") with
           | [ name; v ] when float_of_string_opt v <> None ->
               entries := { key = name; cls = None; v = float_of_string v } :: !entries
           | name :: fields when fields <> [] ->
               List.iter
                 (fun tok ->
                   match String.index_opt tok '=' with
                   | None -> ()
                   | Some eq ->
                       let k = String.sub tok 0 eq in
                       let raw = String.sub tok (eq + 1) (String.length tok - eq - 1) in
                       let k, raw =
                         let n = String.length raw in
                         if n > 2 && String.sub raw (n - 2) 2 = "ms" then
                           (k ^ "_ms", String.sub raw 0 (n - 2))
                         else (k, raw)
                       in
                       (match float_of_string_opt raw with
                       | Some v -> entries := { key = name ^ "." ^ k; cls = None; v } :: !entries
                       | None -> ()))
                 fields
           | _ -> ());
  List.rev !entries

let parse body =
  let trimmed = String.trim body in
  if trimmed = "" then []
  else if trimmed.[0] = '{' then parse_json body
  else if trimmed.[0] = '#' || find_sub trimmed "_total{" <> None then parse_prom body
  else parse_text body

let load path = parse (In_channel.with_open_text path In_channel.input_all)
