(* Heartbeat reporter for long runs. Everything is driven from whatever
   thread calls [tick] — for [sosctl batch] that is the caller-thread
   pull loop, so heartbeats never touch worker domains, stdout stays
   byte-identical, and the 4.14 sequential leg needs nothing special.
   Output goes through the [out] sink, which defaults to stderr (the one
   stream the repo's purity rule leaves open for diagnostics). *)

type t = {
  interval : float;
  total : int option;
  window_cap : int option;
  out : string -> unit;
  started : float;
  mutable last_t : float;
  mutable last_done : int;
  mutable beats : int;
}

let to_stderr s =
  output_string stderr s;
  flush stderr

let vmhwm_kb () =
  match In_channel.with_open_text "/proc/self/status" In_channel.input_all with
  | exception _ -> None
  | body ->
      let prefix = "VmHWM:" in
      String.split_on_char '\n' body
      |> List.find_map (fun line ->
             if String.length line > String.length prefix
                && String.sub line 0 (String.length prefix) = prefix
             then
               String.sub line (String.length prefix)
                 (String.length line - String.length prefix)
               |> String.trim
               |> fun rest ->
               (match String.index_opt rest ' ' with
               | Some i -> int_of_string_opt (String.sub rest 0 i)
               | None -> int_of_string_opt rest)
             else None)

let create ?(interval = 2.0) ?total ?window_cap ?(out = to_stderr) () =
  let now =
    (Prelude.Clock.now () [@sos.allow "A1: progress heartbeats are runtime-class stderr visibility; never part of solver output or det-class telemetry"])
  in
  {
    interval = (if interval < 0.0 then 0.0 else interval);
    total;
    window_cap;
    out;
    started = now;
    last_t = now;
    last_done = 0;
    beats = 0;
  }

let format_line ~done_ ~total ~rate ~errors ~window ~rss_kb ~eta_s =
  let b = Buffer.create 96 in
  Buffer.add_string b (Printf.sprintf "progress %d" done_);
  (match total with
  | Some t ->
      Buffer.add_string b
        (Printf.sprintf "/%d (%.1f%%)" t (100.0 *. float_of_int done_ /. float_of_int (max 1 t)))
  | None -> ());
  Buffer.add_string b (Printf.sprintf " %.0f/s err=%d" rate errors);
  (match window with
  | Some (occ, cap) -> Buffer.add_string b (Printf.sprintf " window=%d/%d" occ cap)
  | None -> ());
  (match rss_kb with
  | Some kb -> Buffer.add_string b (Printf.sprintf " vmhwm=%dkB" kb)
  | None -> ());
  (match eta_s with
  | Some s -> Buffer.add_string b (Printf.sprintf " eta=%.0fs" s)
  | None -> ());
  Buffer.contents b

let format_final ~done_ ~total ~errors ~elapsed_s =
  let rate = if elapsed_s > 0.0 then float_of_int done_ /. elapsed_s else 0.0 in
  Printf.sprintf "progress done %d%s err=%d elapsed=%.1fs avg=%.0f/s" done_
    (match total with Some t -> Printf.sprintf "/%d" t | None -> "")
    errors elapsed_s rate

let tick t ~done_ ~errors ?occupancy () =
  let now =
    (Prelude.Clock.now () [@sos.allow "A1: progress heartbeats are runtime-class stderr visibility; never part of solver output or det-class telemetry"])
  in
  let dt = now -. t.last_t in
  if dt >= t.interval then begin
    let rate = if dt > 0.0 then float_of_int (done_ - t.last_done) /. dt else 0.0 in
    let eta_s =
      match t.total with
      | Some total when rate > 0.0 && total > done_ ->
          Some (float_of_int (total - done_) /. rate)
      | _ -> None
    in
    let window =
      match (occupancy, t.window_cap) with
      | Some occ, Some cap -> Some (occ, cap)
      | Some occ, None -> Some (occ, occ)
      | None, _ -> None
    in
    t.out
      (format_line ~done_ ~total:t.total ~rate ~errors ~window ~rss_kb:(vmhwm_kb ()) ~eta_s
      ^ "\n");
    t.last_t <- now;
    t.last_done <- done_;
    t.beats <- t.beats + 1
  end

let finish t ~done_ ~errors =
  let elapsed_s =
    (Prelude.Clock.now () [@sos.allow "A1: progress heartbeats are runtime-class stderr visibility; never part of solver output or det-class telemetry"])
    -. t.started
  in
  t.out (format_final ~done_ ~total:t.total ~errors ~elapsed_s ^ "\n");
  t.beats <- t.beats + 1

let beats t = t.beats
