(* Event buffer under the same Atomic spinlock discipline as Metrics:
   multiple domains append concurrently (the pool's workers), export runs
   on the main thread after the work is done. *)

type arg = S of string | I of int | F of float

type event = {
  name : string;
  cat : string;
  ph : char; (* 'X' complete, 'i' instant, 'C' counter, 'M' metadata *)
  ts : float; (* µs since start *)
  dur : float; (* µs; only for 'X' *)
  tid : int;
  args : (string * arg) list;
}

let on = Atomic.make false
let active () = Atomic.get on

let lock = Atomic.make false
let acquire () = while not (Atomic.compare_and_set lock false true) do () done
let release () = Atomic.set lock false

let epoch = ref 0.0
let events : event list ref = ref [] (* newest first *)

let reset () =
  acquire ();
  events := [];
  release ()

let start () =
  reset ();
  epoch := Prelude.Clock.now ();
  Atomic.set on true

let stop () = Atomic.set on false

let now_us () = (Prelude.Clock.now () -. !epoch) *. 1e6

let push e =
  acquire ();
  events := e :: !events;
  release ()

let with_span ?(tid = 0) ?(cat = "app") ?(args = []) name f =
  if not (Atomic.get on) then f ()
  else begin
    let t0 = now_us () in
    Fun.protect
      ~finally:(fun () ->
        push { name; cat; ph = 'X'; ts = t0; dur = now_us () -. t0; tid; args })
      f
  end

let instant ?(tid = 0) ?(cat = "app") ?(args = []) name =
  if Atomic.get on then
    push { name; cat; ph = 'i'; ts = now_us (); dur = 0.0; tid; args }

let counter_sample ?(tid = 0) name series =
  if Atomic.get on then
    push
      {
        name;
        cat = "counter";
        ph = 'C';
        ts = now_us ();
        dur = 0.0;
        tid;
        args = List.map (fun (k, v) -> (k, F v)) series;
      }

let set_thread_name ~tid name =
  if Atomic.get on then
    push
      {
        name = "thread_name";
        cat = "__metadata";
        ph = 'M';
        ts = 0.0;
        dur = 0.0;
        tid;
        args = [ ("name", S name) ];
      }

(* ------------------------------------------------------------- export *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let arg_json = function
  | S s -> Printf.sprintf "\"%s\"" (escape s)
  | I i -> string_of_int i
  | F f -> Printf.sprintf "%.6f" f

let event_json e =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\",\"pid\":1,\"tid\":%d,\"ts\":%.3f"
       (escape e.name) (escape e.cat) e.ph e.tid e.ts);
  if e.ph = 'X' then Buffer.add_string buf (Printf.sprintf ",\"dur\":%.3f" e.dur);
  if e.args <> [] then begin
    Buffer.add_string buf ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "\"%s\":%s" (escape k) (arg_json v)))
      e.args;
    Buffer.add_char buf '}'
  end;
  Buffer.add_char buf '}';
  Buffer.contents buf

let export () =
  acquire ();
  let evs = List.rev !events in
  release ();
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf (event_json e))
    evs;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

let write path = Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (export ()))
