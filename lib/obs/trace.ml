(* Event buffer under the same Atomic spinlock discipline as Metrics:
   multiple domains append concurrently (the pool's workers), export runs
   on the main thread after the work is done.

   The buffer is either unbounded (the default, for short diagnostic
   runs) or a fixed-capacity ring that keeps the newest events and counts
   the overwritten ones — [sosctl batch --stream --trace] arms the ring
   so a million-spec run traces in O(ring) memory, preserving the
   constant-memory contract. *)

type arg = S of string | I of int | F of float

type event = {
  name : string;
  cat : string;
  ph : char; (* 'X' complete, 'i' instant, 'C' counter, 'M' metadata,
                's'/'t'/'f' flow start/step/end *)
  ts : float; (* µs since start *)
  dur : float; (* µs; only for 'X' *)
  tid : int;
  id : int; (* flow id; -1 = none *)
  args : (string * arg) list;
}

let on = Atomic.make false
let active () = Atomic.get on

[@@@sos.allow
"A3: the trace ring (epoch/buf/head/len/cap/dropped_n) is module-global by design and every \
 mutation runs under the [lock] spinlock acquired below"]

let lock = Atomic.make false

let acquire () =
  (while not (Atomic.compare_and_set lock false true) do
     ()
   done)
  [@sos.allow "A2: bounded spinlock; holders run O(1) critical sections with no poll points"]

let release () = Atomic.set lock false

let epoch = ref 0.0

(* Ring state, all guarded by [lock]. Invariant: while the buffer has not
   wrapped, [head = 0] and events occupy [0 .. len-1]; once capped and
   full, [head] is the oldest slot and the array length equals the cap. *)
let buf : event array ref = ref [||]
let head = ref 0
let len = ref 0
let cap : int option ref = ref None
let dropped_n = ref 0

let reset () =
  acquire ();
  buf := [||];
  head := 0;
  len := 0;
  dropped_n := 0;
  release ()

let nth_oldest i = !buf.((!head + i) mod max 1 (Array.length !buf))

let set_ring c =
  acquire ();
  (match c with
  | Some k when k > 0 ->
      let keep = min !len k in
      let kept = Array.init keep (fun i -> nth_oldest (!len - keep + i)) in
      dropped_n := !dropped_n + (!len - keep);
      buf := kept;
      head := 0;
      len := keep;
      cap := Some k
  | _ ->
      (* Unbounded: linearize so the head-0 growth invariant holds. *)
      if !head <> 0 then begin
        let lin = Array.init !len nth_oldest in
        buf := lin;
        head := 0
      end;
      cap := None);
  release ()

let dropped () =
  acquire ();
  let d = !dropped_n in
  release ();
  d

let start ?ring () =
  reset ();
  set_ring ring;
  epoch :=
    (Prelude.Clock.now () [@sos.allow "A1: trace timestamps are wall-clock by definition; the Chrome trace is a runtime artefact, never digested"]);
  Atomic.set on true

let stop () = Atomic.set on false

let now_us () =
  ((Prelude.Clock.now () [@sos.allow "A1: trace timestamps are wall-clock by definition; the Chrome trace is a runtime artefact, never digested"])
  -. !epoch)
  *. 1e6

let push e =
  acquire ();
  let room = Array.length !buf in
  (match !cap with
  | Some c when room = c && !len = c ->
      (* Full ring: overwrite the oldest. *)
      !buf.(!head) <- e;
      head := (!head + 1) mod c;
      incr dropped_n
  | capv ->
      if !len = room then begin
        let target = match capv with Some c -> min c (max 64 (2 * max 1 room)) | None -> max 64 (2 * max 1 room) in
        let bigger = Array.make target e in
        Array.blit !buf 0 bigger 0 !len;
        buf := bigger
      end;
      !buf.(!len) <- e;
      incr len);
  release ()

let with_span ?(tid = 0) ?(cat = "app") ?(args = []) name f =
  if not (Atomic.get on) then f ()
  else begin
    let t0 = now_us () in
    Fun.protect
      ~finally:(fun () ->
        push { name; cat; ph = 'X'; ts = t0; dur = now_us () -. t0; tid; id = -1; args })
      f
  end

let instant ?(tid = 0) ?(cat = "app") ?(args = []) name =
  if Atomic.get on then
    push { name; cat; ph = 'i'; ts = now_us (); dur = 0.0; tid; id = -1; args }

let counter_sample ?(tid = 0) name series =
  if Atomic.get on then
    push
      {
        name;
        cat = "counter";
        ph = 'C';
        ts = now_us ();
        dur = 0.0;
        tid;
        id = -1;
        args = List.map (fun (k, v) -> (k, F v)) series;
      }

let set_thread_name ~tid name =
  if Atomic.get on then
    push
      {
        name = "thread_name";
        cat = "__metadata";
        ph = 'M';
        ts = 0.0;
        dur = 0.0;
        tid;
        id = -1;
        args = [ ("name", S name) ];
      }

let flow ph ?(tid = 0) ?(cat = "flow") ~id name =
  if Atomic.get on then
    push { name; cat; ph; ts = now_us (); dur = 0.0; tid; id; args = [] }

let flow_start = flow 's'
let flow_step = flow 't'
let flow_end = flow 'f'

(* ------------------------------------------------------------- export *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let arg_json = function
  | S s -> Printf.sprintf "\"%s\"" (escape s)
  | I i -> string_of_int i
  | F f -> Printf.sprintf "%.6f" f

let event_json e =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\",\"pid\":1,\"tid\":%d,\"ts\":%.3f"
       (escape e.name) (escape e.cat) e.ph e.tid e.ts);
  if e.ph = 'X' then Buffer.add_string buf (Printf.sprintf ",\"dur\":%.3f" e.dur);
  if e.id >= 0 then begin
    Buffer.add_string buf (Printf.sprintf ",\"id\":%d" e.id);
    (* Bind flow end to the enclosing slice, per the trace format spec. *)
    if e.ph = 'f' then Buffer.add_string buf ",\"bp\":\"e\""
  end;
  if e.args <> [] then begin
    Buffer.add_string buf ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "\"%s\":%s" (escape k) (arg_json v)))
      e.args;
    Buffer.add_char buf '}'
  end;
  Buffer.add_char buf '}';
  Buffer.contents buf

let export () =
  acquire ();
  let evs = Array.init !len nth_oldest in
  let drops = !dropped_n in
  release ();
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  Array.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf (event_json e))
    evs;
  Buffer.add_string buf
    (Printf.sprintf "\n],\"droppedEvents\":%d,\"displayTimeUnit\":\"ms\"}\n" drops);
  Buffer.contents buf

let write path = Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (export ()))
