(* The registry is guarded by a tiny spinlock built on Atomic so the
   library stays dependency-free on both OCaml 4.14 (no stdlib Mutex
   without -thread) and 5.x (real domains). Registration happens at module
   init or pool construction — contention is nil — and the hot-path
   operations (incr/add/observe) touch only their own metric's atomics. *)

type kind = Det | Runtime

type counter = { c_name : string; c_kind : kind; cell : int Atomic.t }

type timer = {
  t_name : string;
  t_lock : bool Atomic.t;
  mutable samples : float array;
  mutable len : int;
}

type entry = Counter of counter | Timer of timer

let on = Atomic.make false
let enable () = Atomic.set on true
let disable () = Atomic.set on false
let enabled () = Atomic.get on

let acquire l = while not (Atomic.compare_and_set l false true) do () done
let release l = Atomic.set l false

let reg_lock = Atomic.make false
let registry : (string, entry) Hashtbl.t = Hashtbl.create 64

let register name mk =
  acquire reg_lock;
  let e =
    match Hashtbl.find_opt registry name with
    | Some e -> e
    | None ->
        let e = mk () in
        Hashtbl.replace registry name e;
        e
  in
  release reg_lock;
  e

let counter_of_kind kind name =
  match register name (fun () -> Counter { c_name = name; c_kind = kind; cell = Atomic.make 0 }) with
  | Counter c when c.c_kind = kind -> c
  | Counter _ ->
      invalid_arg
        (Printf.sprintf "Obs.Metrics: %S already registered with another class" name)
  | Timer _ ->
      invalid_arg (Printf.sprintf "Obs.Metrics: %S already registered as a timer" name)

let counter name = counter_of_kind Det name
let runtime_counter name = counter_of_kind Runtime name

let incr c = if Atomic.get on then Atomic.incr c.cell
let add c n = if Atomic.get on then ignore (Atomic.fetch_and_add c.cell n)

let record_max c v =
  if Atomic.get on then begin
    let rec go () =
      let cur = Atomic.get c.cell in
      if v > cur && not (Atomic.compare_and_set c.cell cur v) then go ()
    in
    go ()
  end

let value c = Atomic.get c.cell

let get name =
  acquire reg_lock;
  let e = Hashtbl.find_opt registry name in
  release reg_lock;
  match e with
  | Some (Counter c) -> Atomic.get c.cell
  | Some (Timer _) ->
      invalid_arg (Printf.sprintf "Obs.Metrics.get: %S is a timer" name)
  | None -> invalid_arg (Printf.sprintf "Obs.Metrics.get: unknown counter %S" name)

let timer name =
  match
    register name (fun () ->
        Timer { t_name = name; t_lock = Atomic.make false; samples = Array.make 64 0.0; len = 0 })
  with
  | Timer t -> t
  | Counter _ ->
      invalid_arg (Printf.sprintf "Obs.Metrics: %S already registered as a counter" name)

let observe t dt =
  if Atomic.get on then begin
    acquire t.t_lock;
    if t.len = Array.length t.samples then begin
      let bigger = Array.make (2 * t.len) 0.0 in
      Array.blit t.samples 0 bigger 0 t.len;
      t.samples <- bigger
    end;
    t.samples.(t.len) <- dt;
    t.len <- t.len + 1;
    release t.t_lock
  end

let time t f =
  if not (Atomic.get on) then f ()
  else begin
    let t0 = Prelude.Clock.now () in
    Fun.protect ~finally:(fun () -> observe t (Prelude.Clock.now () -. t0)) f
  end

let[@sos.allow
     "R5: zeroing every registered cell is order-insensitive — no output or digest is derived \
      from the iteration"] reset () =
  acquire reg_lock;
  Hashtbl.iter
    (fun _ e ->
      match e with
      | Counter c -> Atomic.set c.cell 0
      | Timer t ->
          acquire t.t_lock;
          t.len <- 0;
          release t.t_lock)
    registry;
  release reg_lock

(* ------------------------------------------------------------ snapshots *)

type snapshot_class = [ `Deterministic | `Runtime | `All ]

(* A consistent view: entries sorted by name, timer samples copied out
   under their locks so a concurrent observe can't tear the percentiles. *)
let[@sos.allow
     "R5: the fold only gathers entries; every snapshot sorts them by name (List.sort below) \
      before anything is emitted"] collect cls =
  acquire reg_lock;
  let entries = Hashtbl.fold (fun _ e acc -> e :: acc) registry [] in
  release reg_lock;
  let wanted = function
    | Counter { c_kind = Det; _ } -> cls = `Deterministic || cls = `All
    | Counter { c_kind = Runtime; _ } | Timer _ -> cls = `Runtime || cls = `All
  in
  let name = function Counter c -> c.c_name | Timer t -> t.t_name in
  entries
  |> List.filter wanted
  |> List.sort (fun a b -> compare (name a) (name b))
  |> List.map (function
       | Counter c -> `C (c.c_name, Atomic.get c.cell)
       | Timer t ->
           acquire t.t_lock;
           let xs = Array.sub t.samples 0 t.len in
           release t.t_lock;
           `T (t.t_name, xs))

let timer_stats xs =
  let n = Array.length xs in
  if n = 0 then (0, 0.0, 0.0, 0.0)
  else
    ( n,
      Prelude.Stats.percentile xs 0.5,
      Prelude.Stats.percentile xs 0.95,
      Array.fold_left max neg_infinity xs )

let snapshot ?(cls = `All) () =
  let buf = Buffer.create 512 in
  List.iter
    (function
      | `C (name, v) -> Buffer.add_string buf (Printf.sprintf "%s %d\n" name v)
      | `T (name, xs) ->
          let n, p50, p95, mx = timer_stats xs in
          Buffer.add_string buf
            (Printf.sprintf "%s count=%d p50=%.3fms p95=%.3fms max=%.3fms\n" name n
               (p50 *. 1e3) (p95 *. 1e3) (mx *. 1e3)))
    (collect cls);
  Buffer.contents buf

let snapshot_json ?(cls = `All) () =
  let counters, timers =
    List.partition_map
      (function `C (n, v) -> Left (n, v) | `T (n, xs) -> Right (n, xs))
      (collect cls)
  in
  let counter_json (n, v) = Printf.sprintf "    {\"name\": %S, \"value\": %d}" n v in
  let timer_json (name, xs) =
    let n, p50, p95, mx = timer_stats xs in
    Printf.sprintf
      "    {\"name\": %S, \"count\": %d, \"p50_ms\": %.6f, \"p95_ms\": %.6f, \
       \"max_ms\": %.6f}"
      name n (p50 *. 1e3) (p95 *. 1e3) (mx *. 1e3)
  in
  Printf.sprintf "{\n  \"counters\": [\n%s\n  ],\n  \"timers\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.map counter_json counters))
    (String.concat ",\n" (List.map timer_json timers))
