(* The registry is guarded by a tiny spinlock built on Atomic so the
   library stays dependency-free on both OCaml 4.14 (no stdlib Mutex
   without -thread) and 5.x (real domains). Registration happens at module
   init or pool construction — contention is nil — and the hot-path
   operations (incr/add/observe) touch only their own metric's atomics. *)

type kind = Det | Runtime

type counter = { c_name : string; c_kind : kind; cell : int Atomic.t }

(* Timers retain a bounded ring of the most recent [timer_cap] samples:
   percentiles are computed over the ring, while [t_total]/[t_sum]/[t_max]
   cover every observation ever made. This keeps a million-spec streamed
   run at O(1) memory per timer; long-run distributions belong to
   histograms, which are bounded by construction. *)
let timer_cap = 4096

type timer = {
  t_name : string;
  t_lock : bool Atomic.t;
  mutable samples : float array;
  mutable len : int; (* retained samples *)
  mutable pos : int; (* ring write cursor once capped *)
  mutable t_total : int; (* observations ever *)
  mutable t_sum : float;
  mutable t_max : float;
}

(* Histograms: fixed strictly-increasing upper bounds plus one overflow
   bucket, each count its own atomic. Recording is a binary search and one
   fetch_and_add — lock-free and commutative, so a deterministic-class
   histogram over a fixed workload is byte-identical at any [-j]. The max
   is folded in with a CAS loop (commutative); the sum is a float CAS
   accumulator whose low bits are ordering-dependent, so it is exposed
   only through runtime-facing renderings (OpenMetrics), never through the
   deterministic snapshot. *)
type hist = {
  h_name : string;
  h_kind : kind;
  bounds : float array;
  buckets : int Atomic.t array; (* length bounds + 1; last = overflow *)
  h_max : float Atomic.t;
  h_sum : float Atomic.t;
}

type entry = Counter of counter | Timer of timer | Hist of hist

let on = Atomic.make false
let enable () = Atomic.set on true
let disable () = Atomic.set on false
let enabled () = Atomic.get on

let acquire l = while not (Atomic.compare_and_set l false true) do () done
let release l = Atomic.set l false

let reg_lock = Atomic.make false

let registry : (string, entry) Hashtbl.t = Hashtbl.create 64
[@@sos.allow
  "A3: the metric registry is the process-wide name table; every access is serialised by the \
   [reg_lock] spinlock"]

let register name mk =
  acquire reg_lock;
  let e =
    match Hashtbl.find_opt registry name with
    | Some e -> e
    | None ->
        let e = mk () in
        Hashtbl.replace registry name e;
        e
  in
  release reg_lock;
  e

let counter_of_kind kind name =
  match register name (fun () -> Counter { c_name = name; c_kind = kind; cell = Atomic.make 0 }) with
  | Counter c when c.c_kind = kind -> c
  | Counter _ ->
      invalid_arg
        (Printf.sprintf "Obs.Metrics: %S already registered with another class" name)
  | Timer _ ->
      invalid_arg (Printf.sprintf "Obs.Metrics: %S already registered as a timer" name)
  | Hist _ ->
      invalid_arg (Printf.sprintf "Obs.Metrics: %S already registered as a histogram" name)

let counter name = counter_of_kind Det name
let runtime_counter name = counter_of_kind Runtime name

let incr c = if Atomic.get on then Atomic.incr c.cell
let add c n = if Atomic.get on then ignore (Atomic.fetch_and_add c.cell n)

let record_max c v =
  if Atomic.get on then begin
    let rec go () =
      let cur = Atomic.get c.cell in
      if v > cur && not (Atomic.compare_and_set c.cell cur v) then go ()
    in
    go ()
  end

let value c = Atomic.get c.cell

let get name =
  acquire reg_lock;
  let e = Hashtbl.find_opt registry name in
  release reg_lock;
  match e with
  | Some (Counter c) -> Atomic.get c.cell
  | Some (Timer _) -> invalid_arg (Printf.sprintf "Obs.Metrics.get: %S is a timer" name)
  | Some (Hist _) ->
      invalid_arg (Printf.sprintf "Obs.Metrics.get: %S is a histogram" name)
  | None -> invalid_arg (Printf.sprintf "Obs.Metrics.get: unknown counter %S" name)

let timer name =
  match
    register name (fun () ->
        Timer
          {
            t_name = name;
            t_lock = Atomic.make false;
            samples = Array.make 64 0.0;
            len = 0;
            pos = 0;
            t_total = 0;
            t_sum = 0.0;
            t_max = neg_infinity;
          })
  with
  | Timer t -> t
  | Counter _ ->
      invalid_arg (Printf.sprintf "Obs.Metrics: %S already registered as a counter" name)
  | Hist _ ->
      invalid_arg (Printf.sprintf "Obs.Metrics: %S already registered as a histogram" name)

let observe t dt =
  if Atomic.get on then begin
    acquire t.t_lock;
    if t.len < timer_cap then begin
      if t.len = Array.length t.samples then begin
        let bigger = Array.make (min timer_cap (2 * t.len)) 0.0 in
        Array.blit t.samples 0 bigger 0 t.len;
        t.samples <- bigger
      end;
      t.samples.(t.len) <- dt;
      t.len <- t.len + 1
    end
    else begin
      t.samples.(t.pos) <- dt;
      t.pos <- (t.pos + 1) mod timer_cap
    end;
    t.t_total <- t.t_total + 1;
    t.t_sum <- t.t_sum +. dt;
    if dt > t.t_max then t.t_max <- dt;
    release t.t_lock
  end

let time t f =
  if not (Atomic.get on) then f ()
  else begin
    let t0 =
      (Prelude.Clock.now () [@sos.allow "A1: runtime-class timer read; durations land in timers/histograms, never in det-class metrics"])
    in
    Fun.protect
      ~finally:(fun () ->
        observe t
          ((Prelude.Clock.now () [@sos.allow "A1: runtime-class timer read; durations land in timers/histograms, never in det-class metrics"])
          -. t0))
      f
  end

(* ----------------------------------------------------------- histograms *)

let log_bounds ~lo ~hi ~per_decade =
  if not (lo > 0.0 && hi > lo && per_decade > 0) then
    invalid_arg "Obs.Metrics.log_bounds: need 0 < lo < hi and per_decade > 0";
  let n = int_of_float (ceil (float_of_int per_decade *. (log10 hi -. log10 lo))) in
  Array.init (n + 1) (fun i -> lo *. (10.0 ** (float_of_int i /. float_of_int per_decade)))

let linear_bounds ~lo ~hi ~step =
  if not (step > 0.0 && hi > lo) then
    invalid_arg "Obs.Metrics.linear_bounds: need step > 0 and hi > lo";
  let n = int_of_float (ceil ((hi -. lo) /. step)) in
  Array.init (n + 1) (fun i -> lo +. (float_of_int i *. step))

(* Default: 5 buckets per decade across 1e-6 .. 1e6 — wide enough for
   latencies in seconds and for iteration/block counts alike, 61 bounds. *)
let default_bounds = log_bounds ~lo:1e-6 ~hi:1e6 ~per_decade:5

let hist_of_kind kind ?(bounds = default_bounds) name =
  if Array.length bounds = 0 then invalid_arg "Obs.Metrics: histogram needs bounds";
  match
    register name (fun () ->
        Hist
          {
            h_name = name;
            h_kind = kind;
            bounds = Array.copy bounds;
            buckets = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
            h_max = Atomic.make neg_infinity;
            h_sum = Atomic.make 0.0;
          })
  with
  | Hist h when h.h_kind = kind && Array.length h.bounds = Array.length bounds -> h
  | Hist _ ->
      invalid_arg
        (Printf.sprintf "Obs.Metrics: %S already registered with another class or bucket layout"
           name)
  | Counter _ ->
      invalid_arg (Printf.sprintf "Obs.Metrics: %S already registered as a counter" name)
  | Timer _ ->
      invalid_arg (Printf.sprintf "Obs.Metrics: %S already registered as a timer" name)

let hist ?bounds name = hist_of_kind Det ?bounds name
let runtime_hist ?bounds name = hist_of_kind Runtime ?bounds name

let rec cas_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then cas_max cell v

let rec cas_add cell v =
  let cur = Atomic.get cell in
  if not (Atomic.compare_and_set cell cur (cur +. v)) then cas_add cell v

(* First bucket whose upper bound covers [v]; NaN and anything above the
   last bound land in the overflow bucket. *)
let bucket_index bounds v =
  let n = Array.length bounds in
  if not (v <= bounds.(n - 1)) then n
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if v <= bounds.(mid) then hi := mid else lo := mid + 1
    done;
    !lo
  end

let hist_observe h v =
  if Atomic.get on then begin
    ignore (Atomic.fetch_and_add h.buckets.(bucket_index h.bounds v) 1);
    cas_max h.h_max v;
    cas_add h.h_sum v
  end

let hist_observe_int h v = hist_observe h (float_of_int v)

let hist_counts h = Array.map Atomic.get h.buckets
let hist_count h = Array.fold_left (fun acc b -> acc + Atomic.get b) 0 h.buckets
let hist_sum h = Atomic.get h.h_sum

let hist_max h =
  let m = Atomic.get h.h_max in
  if m = neg_infinity then 0.0 else m

(* Quantile over bucket counts: the representative value is the matched
   bucket's upper bound, clamped to the exact observed max — a pure
   function of (counts, max), both of which are commutative, so
   deterministic-class quantiles are reproducible at any [-j]. *)
let quantile_of_counts bounds counts mx q =
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then 0.0
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let rank = max 1 (int_of_float (ceil (q *. float_of_int total))) in
    let b = ref 0 and acc = ref 0 in
    let n = Array.length counts in
    (try
       for i = 0 to n - 1 do
         acc := !acc + counts.(i);
         if !acc >= rank then begin
           b := i;
           raise Exit
         end
       done;
       b := n - 1
     with Exit -> ());
    if !b >= Array.length bounds then mx
    else begin
      let ub = bounds.(!b) in
      if mx < ub then mx else ub
    end
  end

let hist_quantile h q = quantile_of_counts h.bounds (hist_counts h) (hist_max h) q

let hist_merge_into ~into src =
  if Array.length into.bounds <> Array.length src.bounds then
    invalid_arg "Obs.Metrics.hist_merge_into: bucket layouts differ";
  Array.iteri
    (fun i b -> ignore (Atomic.fetch_and_add into.buckets.(i) (Atomic.get b)))
    src.buckets;
  cas_max into.h_max (Atomic.get src.h_max);
  cas_add into.h_sum (Atomic.get src.h_sum)

let[@sos.allow
     "R5: zeroing every registered cell is order-insensitive — no output or digest is derived \
      from the iteration"] reset () =
  acquire reg_lock;
  Hashtbl.iter
    (fun _ e ->
      match e with
      | Counter c -> Atomic.set c.cell 0
      | Timer t ->
          acquire t.t_lock;
          t.len <- 0;
          t.pos <- 0;
          t.t_total <- 0;
          t.t_sum <- 0.0;
          t.t_max <- neg_infinity;
          release t.t_lock
      | Hist h ->
          Array.iter (fun b -> Atomic.set b 0) h.buckets;
          Atomic.set h.h_max neg_infinity;
          Atomic.set h.h_sum 0.0)
    registry;
  release reg_lock

(* ------------------------------------------------------------ snapshots *)

type snapshot_class = [ `Deterministic | `Runtime | `All ]

let class_name = function Det -> "det" | Runtime -> "runtime"

(* A consistent view: entries sorted by name, timer samples copied out
   under their locks so a concurrent observe can't tear the percentiles. *)
let[@sos.allow
     "R5: the fold only gathers entries; every snapshot sorts them by name (List.sort below) \
      before anything is emitted"] collect cls =
  acquire reg_lock;
  let entries = Hashtbl.fold (fun _ e acc -> e :: acc) registry [] in
  release reg_lock;
  let det_kind = function Det -> cls = `Deterministic || cls = `All
    | Runtime -> cls = `Runtime || cls = `All
  in
  let wanted = function
    | Counter c -> det_kind c.c_kind
    | Timer _ -> cls = `Runtime || cls = `All
    | Hist h -> det_kind h.h_kind
  in
  let name = function Counter c -> c.c_name | Timer t -> t.t_name | Hist h -> h.h_name in
  entries
  |> List.filter wanted
  |> List.sort (fun a b -> compare (name a) (name b))
  |> List.map (function
       | Counter c -> `C (c.c_name, c.c_kind, Atomic.get c.cell)
       | Timer t ->
           acquire t.t_lock;
           let xs = Array.sub t.samples 0 t.len in
           let total = t.t_total and sum = t.t_sum and mx = t.t_max in
           release t.t_lock;
           `T (t.t_name, xs, total, sum, mx)
       | Hist h -> `H (h.h_name, h.h_kind, h.bounds, hist_counts h, hist_max h, hist_sum h))

let timer_stats xs =
  let n = Array.length xs in
  if n = 0 then (0, 0.0, 0.0, 0.0)
  else
    ( n,
      Prelude.Stats.percentile xs 0.5,
      Prelude.Stats.percentile xs 0.95,
      Array.fold_left max neg_infinity xs )

(* (count, p50, p90, p99, max) from a collected histogram view. *)
let hist_stats bounds counts mx =
  let total = Array.fold_left ( + ) 0 counts in
  let q p = quantile_of_counts bounds counts mx p in
  (total, q 0.5, q 0.9, q 0.99, if total = 0 then 0.0 else mx)

let snapshot ?(cls = `All) () =
  let buf = Buffer.create 512 in
  List.iter
    (function
      | `C (name, _, v) -> Buffer.add_string buf (Printf.sprintf "%s %d\n" name v)
      | `T (name, xs, total, _, mx) ->
          let _, p50, p95, _ = timer_stats xs in
          let mx = if total = 0 then 0.0 else mx in
          Buffer.add_string buf
            (Printf.sprintf "%s count=%d p50=%.3fms p95=%.3fms max=%.3fms\n" name total
               (p50 *. 1e3) (p95 *. 1e3) (mx *. 1e3))
      | `H (name, _, bounds, counts, mx, _) ->
          let total, p50, p90, p99, mx = hist_stats bounds counts mx in
          Buffer.add_string buf
            (Printf.sprintf "%s count=%d p50=%.6g p90=%.6g p99=%.6g max=%.6g\n" name total p50
               p90 p99 mx))
    (collect cls);
  Buffer.contents buf

let snapshot_json ?(cls = `All) () =
  let counters = ref [] and timers = ref [] and hists = ref [] in
  List.iter
    (function
      | `C (n, k, v) ->
          counters :=
            Printf.sprintf "    {\"name\": %S, \"class\": %S, \"value\": %d}" n (class_name k) v
            :: !counters
      | `T (name, xs, total, sum, mx) ->
          let _, p50, p95, _ = timer_stats xs in
          let mx = if total = 0 then 0.0 else mx in
          timers :=
            Printf.sprintf
              "    {\"name\": %S, \"class\": \"runtime\", \"count\": %d, \"p50_ms\": %.6f, \
               \"p95_ms\": %.6f, \"max_ms\": %.6f, \"sum_ms\": %.6f}"
              name total (p50 *. 1e3) (p95 *. 1e3) (mx *. 1e3) (sum *. 1e3)
            :: !timers
      | `H (name, k, bounds, counts, mx, _) ->
          let total, p50, p90, p99, mx = hist_stats bounds counts mx in
          let bucket_json i c =
            if c = 0 then None
            else if i >= Array.length bounds then
              Some (Printf.sprintf "{\"le\": \"+Inf\", \"n\": %d}" c)
            else Some (Printf.sprintf "{\"le\": %.9g, \"n\": %d}" bounds.(i) c)
          in
          let bs =
            Array.to_list (Array.mapi bucket_json counts) |> List.filter_map Fun.id
          in
          hists :=
            Printf.sprintf
              "    {\"name\": %S, \"class\": %S, \"count\": %d, \"p50\": %.6g, \"p90\": %.6g, \
               \"p99\": %.6g, \"max\": %.6g, \"buckets\": [%s]}"
              name (class_name k) total p50 p90 p99 mx (String.concat ", " bs)
            :: !hists)
    (collect cls);
  let section xs = String.concat ",\n" (List.rev xs) in
  Printf.sprintf
    "{\n  \"counters\": [\n%s\n  ],\n  \"timers\": [\n%s\n  ],\n  \"hists\": [\n%s\n  ]\n}\n"
    (section !counters) (section !timers) (section !hists)

(* ---------------------------------------------------------- OpenMetrics *)

(* OpenMetrics text exposition (the Prometheus scrape format): counters
   as [name_total], timers as summaries (seconds), histograms as
   cumulative [name_bucket{le=...}] families. Every sample carries a
   [class] label naming its determinism class. The output ends with
   [# EOF] as the spec requires. *)

let sanitize_metric_name name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_')
    name

let to_openmetrics ?(cls = `All) () =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (function
      | `C (name, k, v) ->
          let m = sanitize_metric_name name in
          add "# TYPE %s counter\n" m;
          add "%s_total{class=%S} %d\n" m (class_name k) v
      | `T (name, xs, total, sum, mx) ->
          let m = sanitize_metric_name name in
          let _, p50, p95, _ = timer_stats xs in
          let mx = if total = 0 then 0.0 else mx in
          add "# TYPE %s summary\n" m;
          add "%s{class=\"runtime\",quantile=\"0.5\"} %.9g\n" m p50;
          add "%s{class=\"runtime\",quantile=\"0.95\"} %.9g\n" m p95;
          add "%s{class=\"runtime\",quantile=\"1\"} %.9g\n" m mx;
          add "%s_count{class=\"runtime\"} %d\n" m total;
          add "%s_sum{class=\"runtime\"} %.9g\n" m sum
      | `H (name, k, bounds, counts, _, sum) ->
          let m = sanitize_metric_name name in
          let c = class_name k in
          add "# TYPE %s histogram\n" m;
          let cum = ref 0 in
          Array.iteri
            (fun i n ->
              cum := !cum + n;
              if i < Array.length bounds then
                add "%s_bucket{class=%S,le=\"%.9g\"} %d\n" m c bounds.(i) !cum
              else add "%s_bucket{class=%S,le=\"+Inf\"} %d\n" m c !cum)
            counts;
          add "%s_count{class=%S} %d\n" m c !cum;
          add "%s_sum{class=%S} %.9g\n" m c sum)
    (collect cls);
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf
