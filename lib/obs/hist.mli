(** Atomic fixed-bucket histograms — a facade over the {!Metrics}
    registry's histogram support.

    Buckets are strictly increasing upper bounds plus one overflow
    bucket; every bucket count is its own atomic, so recording and
    {!merge_into} are lock-free and commutative. A {e deterministic}
    histogram ({!create}) records algorithmic values — approximation
    ratios, iterations per run, RLE blocks — and snapshots
    byte-identically at any [-j]; a {e runtime} histogram ({!runtime})
    records latencies and occupancies with no reproducibility promise.
    Registered histograms appear in [Obs.Metrics] snapshots, JSON, and
    the OpenMetrics exposition under their registered name. *)

type t = Metrics.hist

val create : ?bounds:float array -> string -> t
(** Register (or look up) a deterministic-class histogram. Default
    bounds: {!log_bounds} over [1e-6 .. 1e6] at 5 buckets/decade. *)

val runtime : ?bounds:float array -> string -> t
(** Register (or look up) a runtime-class histogram. *)

val log_bounds : lo:float -> hi:float -> per_decade:int -> float array
val linear_bounds : lo:float -> hi:float -> step:float -> float array

val observe : t -> float -> unit
(** Record one value (one binary search + one atomic add when recording
    is enabled; a flag load otherwise). *)

val observe_int : t -> int -> unit

val count : t -> int
val max_value : t -> float

val quantile : t -> float -> float
(** Bucket-resolution quantile, clamped to the exact max; see
    {!Metrics.hist_quantile}. *)

val merge_into : into:t -> t -> unit
(** Lock-free merge: add the source's buckets/max/sum into [into]. The
    layouts must match. Commutative and associative. *)
