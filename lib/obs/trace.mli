(** Chrome [trace_event] recorder: span timelines loadable in
    [chrome://tracing] / Perfetto.

    Disabled by default; {!start} turns recording on (one atomic flag, so
    an inactive {!with_span} is just the call). Events carry wall-clock
    timestamps in microseconds relative to {!start} and a caller-chosen
    integer [tid] that Chrome renders as one horizontal track — the engine
    pool passes its worker-domain index so a batch shows one lane per
    domain. Timestamps are wall clock: traces are diagnostics, never part
    of any determinism contract.

    {!export} renders the standard JSON object format
    [{"traceEvents": [...]}]; every event is a complete ("ph":"X"),
    instant ("i"), counter ("C"), or metadata ("M") record. *)

val start : unit -> unit
(** Clear the buffer, set the epoch, start recording. *)

val stop : unit -> unit
(** Stop recording; the buffer is kept for {!export}. *)

val active : unit -> bool

val reset : unit -> unit
(** Drop all buffered events (does not change the active flag). *)

type arg = S of string | I of int | F of float
(** Argument values attached to an event ([args] in the trace format). *)

val with_span :
  ?tid:int -> ?cat:string -> ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk as a named span on track [tid] (default 0); the complete
    event is recorded when the thunk returns {e or raises}. Category
    defaults to ["app"]. *)

val instant : ?tid:int -> ?cat:string -> ?args:(string * arg) list -> string -> unit
(** A zero-duration marker. *)

val counter_sample : ?tid:int -> string -> (string * float) list -> unit
(** A "C" counter event: Chrome plots each series as a stacked area chart
    over time. *)

val set_thread_name : tid:int -> string -> unit
(** Metadata naming a track, e.g. ["domain-3"]. *)

val export : unit -> string
(** The buffered events as a Chrome trace JSON object. Valid whether or
    not recording is still active; the buffer is not cleared. *)

val write : string -> unit
(** [write path] saves {!export} to [path]. *)
