(** Chrome [trace_event] recorder: span timelines loadable in
    [chrome://tracing] / Perfetto.

    Disabled by default; {!start} turns recording on (one atomic flag, so
    an inactive {!with_span} is just the call). Events carry wall-clock
    timestamps in microseconds relative to {!start} and a caller-chosen
    integer [tid] that Chrome renders as one horizontal track — the engine
    pool passes its worker-domain index so a batch shows one lane per
    domain. Timestamps are wall clock: traces are diagnostics, never part
    of any determinism contract.

    {!export} renders the standard JSON object format
    [{"traceEvents": [...]}]; every event is a complete ("ph":"X"),
    instant ("i"), counter ("C"), metadata ("M"), or flow
    ("s"/"t"/"f") record.

    {b Bounded mode.} By default the buffer grows without bound — fine
    for diagnostic runs, fatal for a million-spec stream. [start
    ~ring:N ()] (or {!set_ring}) caps it at the [N] {e newest} events:
    older events are overwritten in place and counted, the count is
    reported as a top-level ["droppedEvents"] field in {!export}, and
    tracing a streamed batch runs in O(N) memory. *)

val start : ?ring:int -> unit -> unit
(** Clear the buffer, set the epoch, start recording. [ring] caps the
    buffer at that many newest events; omitted means unbounded. *)

val stop : unit -> unit
(** Stop recording; the buffer is kept for {!export}. *)

val active : unit -> bool

val reset : unit -> unit
(** Drop all buffered events and zero the dropped count (does not change
    the active flag or the ring cap). *)

val set_ring : int option -> unit
(** Change the buffer bound: [Some n] keeps only the [n] newest events
    from now on (trimming immediately, counting trimmed events as
    dropped); [None] restores unbounded growth. *)

val dropped : unit -> int
(** Events overwritten or trimmed since the last {!reset}/{!start}. *)

type arg = S of string | I of int | F of float
(** Argument values attached to an event ([args] in the trace format). *)

val with_span :
  ?tid:int -> ?cat:string -> ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk as a named span on track [tid] (default 0); the complete
    event is recorded when the thunk returns {e or raises}. Category
    defaults to ["app"]. *)

val instant : ?tid:int -> ?cat:string -> ?args:(string * arg) list -> string -> unit
(** A zero-duration marker. *)

val counter_sample : ?tid:int -> string -> (string * float) list -> unit
(** A "C" counter event: Chrome plots each series as a stacked area chart
    over time. *)

val set_thread_name : tid:int -> string -> unit
(** Metadata naming a track, e.g. ["domain-3"]. *)

(** {1 Flow events}

    Flow arrows correlate one logical item across tracks: the batch
    pipeline emits [flow_start] when the producer supplies a spec,
    [flow_step] inside the worker that solves it, and [flow_end] at
    ordered emission/journal append — all sharing [id = spec index], so
    Perfetto draws the spec's path producer → worker → journal. *)

val flow_start : ?tid:int -> ?cat:string -> id:int -> string -> unit
val flow_step : ?tid:int -> ?cat:string -> id:int -> string -> unit
val flow_end : ?tid:int -> ?cat:string -> id:int -> string -> unit

val export : unit -> string
(** The buffered events as a Chrome trace JSON object (plus a
    ["droppedEvents"] count when the ring overwrote any). Valid whether
    or not recording is still active; the buffer is not cleared. *)

val write : string -> unit
(** [write path] saves {!export} to [path]. *)
