(** Process-wide metric registry: counters, gauges, and wall-clock timers.

    Everything is disabled by default. A disabled metric operation is one
    atomic flag load and a branch — cheap enough to leave in the solver's
    hot loops — and the no-op sink is therefore the default sink. {!enable}
    turns recording on (the CLI's [--metrics] flag, the bench gate, and the
    tests do this); snapshots are rendered on demand as text or JSON.

    {b Determinism classes.} Every metric belongs to one of two classes:

    - {e deterministic} counters ({!counter}) count algorithmic events —
      window slides, skip hits, solved tasks — whose totals depend only on
      the work done, never on wall clock, domain count, or scheduling
      order. Increments are atomic and commutative, so the
      [`Deterministic] snapshot of a fixed workload is byte-identical at
      any [-j] (a property the test suite and the bench gate assert).
    - {e runtime} metrics ({!runtime_counter}, high-water marks via
      {!record_max}, and all {!timer}s) measure the execution itself —
      queue depths, per-domain task counts, latencies. They are excluded
      from the [`Deterministic] snapshot and carry no reproducibility
      promise.

    Registration is idempotent: registering an existing name returns the
    existing metric (the kind must match). Registry names are dotted paths,
    lower-case, e.g. ["sos.fast.window_slides"]; doc/OBSERVABILITY.md is
    the registry of names used by this repository. *)

(** {1 Recording switch} *)

val enable : unit -> unit
(** Start recording. Affects all metrics in the process. *)

val disable : unit -> unit
(** Stop recording (the default state). Values are retained until
    {!reset}. *)

val enabled : unit -> bool

val reset : unit -> unit
(** Zero every counter and drop every timer's samples. Registrations are
    kept (a deterministic snapshot after [reset] lists the same names,
    all zero). *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** Register (or look up) a {e deterministic} counter. Raises
    [Invalid_argument] if the name is registered with a different kind. *)

val runtime_counter : string -> counter
(** Register (or look up) a {e runtime}-class counter: same operations,
    excluded from the deterministic snapshot. *)

val incr : counter -> unit
val add : counter -> int -> unit

val record_max : counter -> int -> unit
(** High-water mark: raise the counter to [v] if [v] is larger (atomic).
    Only meaningful on runtime counters (a high-water mark over concurrent
    execution is inherently schedule-dependent). *)

val value : counter -> int
(** Current value, readable whether or not recording is enabled. *)

val get : string -> int
(** Value of a registered counter by name; [Invalid_argument] if the name
    is unknown or not a counter. Test convenience. *)

(** {1 Timers}

    Wall-clock histograms ([Prelude.Clock] seconds). Always runtime
    class. *)

type timer

val timer : string -> timer

val observe : timer -> float -> unit
(** Record one duration, in seconds. *)

val time : timer -> (unit -> 'a) -> 'a
(** Run the thunk, recording its wall duration (also on exception). When
    recording is disabled this is just the call. *)

(** {1 Snapshots} *)

type snapshot_class = [ `Deterministic | `Runtime | `All ]

val snapshot : ?cls:snapshot_class -> unit -> string
(** Plain-text snapshot, one metric per line, sorted by name:
    [name value] for counters, [name count=N p50=…ms p95=…ms max=…ms] for
    timers. Default class [`All]. With [`Deterministic] the output is a
    pure function of the recorded algorithmic events. *)

val snapshot_json : ?cls:snapshot_class -> unit -> string
(** The same data as JSON: [{"counters": [...], "timers": [...]}], sorted
    by name. *)
