(** Process-wide metric registry: counters, gauges, and wall-clock timers.

    Everything is disabled by default. A disabled metric operation is one
    atomic flag load and a branch — cheap enough to leave in the solver's
    hot loops — and the no-op sink is therefore the default sink. {!enable}
    turns recording on (the CLI's [--metrics] flag, the bench gate, and the
    tests do this); snapshots are rendered on demand as text or JSON.

    {b Determinism classes.} Every metric belongs to one of two classes:

    - {e deterministic} counters ({!counter}) count algorithmic events —
      window slides, skip hits, solved tasks — whose totals depend only on
      the work done, never on wall clock, domain count, or scheduling
      order. Increments are atomic and commutative, so the
      [`Deterministic] snapshot of a fixed workload is byte-identical at
      any [-j] (a property the test suite and the bench gate assert).
    - {e runtime} metrics ({!runtime_counter}, high-water marks via
      {!record_max}, and all {!timer}s) measure the execution itself —
      queue depths, per-domain task counts, latencies. They are excluded
      from the [`Deterministic] snapshot and carry no reproducibility
      promise.

    Registration is idempotent: registering an existing name returns the
    existing metric (the kind must match). Registry names are dotted paths,
    lower-case, e.g. ["sos.fast.window_slides"]; doc/OBSERVABILITY.md is
    the registry of names used by this repository. *)

(** {1 Recording switch} *)

val enable : unit -> unit
(** Start recording. Affects all metrics in the process. *)

val disable : unit -> unit
(** Stop recording (the default state). Values are retained until
    {!reset}. *)

val enabled : unit -> bool

val reset : unit -> unit
(** Zero every counter and drop every timer's samples. Registrations are
    kept (a deterministic snapshot after [reset] lists the same names,
    all zero). *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** Register (or look up) a {e deterministic} counter. Raises
    [Invalid_argument] if the name is registered with a different kind. *)

val runtime_counter : string -> counter
(** Register (or look up) a {e runtime}-class counter: same operations,
    excluded from the deterministic snapshot. *)

val incr : counter -> unit
val add : counter -> int -> unit

val record_max : counter -> int -> unit
(** High-water mark: raise the counter to [v] if [v] is larger (atomic).
    Only meaningful on runtime counters (a high-water mark over concurrent
    execution is inherently schedule-dependent). *)

val value : counter -> int
(** Current value, readable whether or not recording is enabled. *)

val get : string -> int
(** Value of a registered counter by name; [Invalid_argument] if the name
    is unknown or not a counter. Test convenience. *)

(** {1 Timers}

    Wall-clock samples ([Prelude.Clock] seconds). Always runtime class.
    Percentiles are computed over a bounded ring of the most recent 4096
    samples (count/sum/max cover every observation), so a timer never
    grows with the run — million-spec streams stay O(1) memory. *)

type timer

val timer : string -> timer

val observe : timer -> float -> unit
(** Record one duration, in seconds. *)

val time : timer -> (unit -> 'a) -> 'a
(** Run the thunk, recording its wall duration (also on exception). When
    recording is disabled this is just the call. *)

(** {1 Histograms}

    Fixed-bucket histograms: strictly increasing upper [bounds] plus one
    overflow bucket, each count an atomic — recording is a binary search
    and one [fetch_and_add], lock-free and commutative. A
    {e deterministic}-class histogram over a fixed workload therefore
    snapshots byte-identically at any [-j]; {e runtime}-class histograms
    (latencies, occupancy) carry no such promise. Quantiles are bucket
    upper bounds clamped to the exact observed max. *)

type hist

val hist : ?bounds:float array -> string -> hist
(** Register (or look up) a {e deterministic} histogram. Default bounds:
    {!log_bounds} over [1e-6 .. 1e6] at 5 buckets/decade. Raises
    [Invalid_argument] on a kind, type, or bucket-layout mismatch with an
    existing registration. *)

val runtime_hist : ?bounds:float array -> string -> hist
(** The runtime-class variant of {!hist}. *)

val log_bounds : lo:float -> hi:float -> per_decade:int -> float array
(** Log-scale bucket upper bounds from [lo] to at least [hi]. *)

val linear_bounds : lo:float -> hi:float -> step:float -> float array
(** Uniform bucket upper bounds from [lo] to at least [hi]. *)

val hist_observe : hist -> float -> unit
(** Record one value. NaN and values above the last bound land in the
    overflow bucket. *)

val hist_observe_int : hist -> int -> unit

val hist_count : hist -> int
(** Total observations, readable whether or not recording is enabled. *)

val hist_max : hist -> float
(** Exact largest observed value (0 when empty). *)

val hist_quantile : hist -> float -> float
(** [hist_quantile h q] for [q] in [0..1]: the upper bound of the bucket
    holding the rank-⌈q·n⌉ observation, clamped to {!hist_max}; 0 when
    empty. Deterministic for deterministic-class histograms. *)

val hist_merge_into : into:hist -> hist -> unit
(** Add [src]'s buckets/max/sum into [into] (atomic per bucket, hence
    lock-free, commutative, and associative). The two histograms must
    share a bucket layout; raises [Invalid_argument] otherwise. Works
    whether or not recording is enabled. *)

(** {1 Snapshots} *)

type snapshot_class = [ `Deterministic | `Runtime | `All ]

val snapshot : ?cls:snapshot_class -> unit -> string
(** Plain-text snapshot, one metric per line, sorted by name:
    [name value] for counters, [name count=N p50=…ms p95=…ms max=…ms] for
    timers, [name count=N p50=… p90=… p99=… max=…] for histograms.
    Default class [`All]. With [`Deterministic] the output is a pure
    function of the recorded algorithmic events. *)

val snapshot_json : ?cls:snapshot_class -> unit -> string
(** The same data as JSON:
    [{"counters": [...], "timers": [...], "hists": [...]}], sorted by
    name. Every entry carries a ["class"] field ("det" or "runtime");
    histogram entries list their non-empty buckets as
    [{"le": bound, "n": count}] (overflow bucket: ["le": "+Inf"]). *)

val to_openmetrics : ?cls:snapshot_class -> unit -> string
(** OpenMetrics text exposition (the Prometheus scrape format), sorted by
    name, terminated by [# EOF]. Counters become [name_total] counter
    families, timers become summaries in seconds (quantiles 0.5/0.95/1
    plus [_count]/[_sum]), histograms become cumulative
    [name_bucket{le="…"}] families. Metric names have non-identifier
    characters mapped to ['_'] (["sos.fast.runs"] → [sos_fast_runs]);
    every sample carries a [class="det"|"runtime"] label. Float sums are
    ordering-dependent in their low bits, so this rendering carries no
    byte-identity promise — use {!snapshot} with [`Deterministic] for
    that. *)
