(** Heartbeat reporter for long-running batches.

    A reporter is driven entirely by its caller: {!tick} on every emitted
    result (rate-limited to one line per [interval] seconds of
    [Prelude.Clock] time), {!finish} once at the end. [sosctl batch
    --progress] ticks from the caller-thread pull loop, so heartbeats
    involve no worker domains, never touch stdout (byte-identity is
    preserved), and work identically on the 4.14 sequential leg.

    Heartbeat line (key=value, one per line, written to [out] — default
    stderr):

    {v progress DONE[/TOTAL (PCT%)] RATE/s err=N [window=OCC/CAP] [vmhwm=NkB] [eta=Ss] v}

    The final line replaces the rate with the whole-run average:

    {v progress done DONE[/TOTAL] err=N elapsed=Ss avg=RATE/s v} *)

type t

val create :
  ?interval:float ->
  ?total:int ->
  ?window_cap:int ->
  ?out:(string -> unit) ->
  unit ->
  t
(** [interval] seconds between heartbeats (default 2.0; 0 means every
    tick). [total] enables the [/TOTAL] field and ETA. [window_cap] is
    the configured streaming-window capacity shown as [window=occ/cap].
    [out] receives each line including its ["\n"] (default: write and
    flush stderr). *)

val tick : t -> done_:int -> errors:int -> ?occupancy:int -> unit -> unit
(** Report progress; emits a heartbeat iff at least [interval] seconds
    have passed since the last one. [occupancy] is the current number of
    in-flight specs in the streaming window. *)

val finish : t -> done_:int -> errors:int -> unit
(** Emit the final summary line unconditionally. *)

val beats : t -> int
(** Number of lines emitted so far (tests). *)

(** {1 Pure formatting} (exposed for golden tests) *)

val format_line :
  done_:int ->
  total:int option ->
  rate:float ->
  errors:int ->
  window:(int * int) option ->
  rss_kb:int option ->
  eta_s:float option ->
  string

val format_final : done_:int -> total:int option -> errors:int -> elapsed_s:float -> string

val vmhwm_kb : unit -> int option
(** Peak RSS in kB from [/proc/self/status]; [None] where unavailable. *)
