let rec egcd a b =
  if b = 0 then (a, 1, 0)
  else begin
    let g, x, y = egcd b (a mod b) in
    (g, y, x - (a / b * y))
  end

let gcd a b =
  let g, _, _ = egcd (abs a) (abs b) in
  g

let min_congruence_solution ~c ~q ~r =
  if r < 1 then invalid_arg "Numth.min_congruence_solution: r must be >= 1";
  if q < 0 || q >= r then invalid_arg "Numth.min_congruence_solution: need 0 <= q < r";
  let c = ((c mod r) + r) mod r in
  if c = 0 then (if q = 0 then Some 1 else None)
  else begin
    let g, inv, _ = egcd c r in
    if q mod g <> 0 then None
    else begin
      let r' = r / g in
      let inv = ((inv mod r') + r') mod r' in
      let i = q / g mod r' * inv mod r' in
      Some (if i = 0 then r' else i)
    end
  end

let ceil_div a b =
  if b <= 0 then invalid_arg "Numth.ceil_div: non-positive divisor";
  if a <= 0 then 0 else ((a - 1) / b) + 1
