let rec egcd a b =
  if b = 0 then (a, 1, 0)
  else begin
    let g, x, y = egcd b (a mod b) in
    (g, y, x - (a / b * y))
  end

let gcd a b =
  let g, _, _ = egcd (abs a) (abs b) in
  g

(* Iterative extended Euclid keeping only the first Bézout coefficient:
   tail recursion over four int accumulators, no per-level tuples — this
   sits on the step-skipping solver's per-span path. Returns the answer
   directly so the whole solve allocates only the final [Some]. *)
let rec congruence_go q r g r1 inv s1 =
  if r1 <> 0 then begin
    let d = g / r1 in
    congruence_go q r r1 (g - (d * r1)) s1 (inv - (d * s1))
  end
  else if q mod g <> 0 then None
  else begin
    let r' = r / g in
    let inv = ((inv mod r') + r') mod r' in
    let i = q / g mod r' * inv mod r' in
    Some (if i = 0 then r' else i)
  end

let min_congruence_solution ~c ~q ~r =
  if r < 1 then invalid_arg "Numth.min_congruence_solution: r must be >= 1";
  if q < 0 || q >= r then invalid_arg "Numth.min_congruence_solution: need 0 <= q < r";
  let c = ((c mod r) + r) mod r in
  if c = 0 then (if q = 0 then Some 1 else None)
  else congruence_go q r c r 1 0

let ceil_div a b =
  if b <= 0 then invalid_arg "Numth.ceil_div: non-positive divisor";
  if a <= 0 then 0 else ((a - 1) / b) + 1
