let spark_chars = [| '_'; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |]

let sparkline xs =
  let n = Array.length xs in
  if n = 0 then ""
  else begin
    let mn = Array.fold_left min xs.(0) xs in
    let mx = Array.fold_left max xs.(0) xs in
    let span = mx -. mn in
    let buf = Buffer.create n in
    Array.iter
      (fun x ->
        let level =
          if span <= 0.0 then 0
          else begin
            let l = int_of_float ((x -. mn) /. span *. 9.0) in
            if l < 0 then 0 else if l > 9 then 9 else l
          end
        in
        Buffer.add_char buf spark_chars.(level))
      xs;
    Buffer.contents buf
  end

let bars ?(width = 50) ?labels xs =
  let n = Array.length xs in
  (match labels with
  | Some ls when Array.length ls <> n -> invalid_arg "Ascii_plot.bars: label arity"
  | _ -> ());
  if n = 0 then ""
  else begin
    let mx = Array.fold_left max 0.0 xs in
    let label_width =
      match labels with
      | None -> 0
      | Some ls -> Array.fold_left (fun w l -> max w (String.length l)) 0 ls
    in
    let buf = Buffer.create (n * (width + label_width + 16)) in
    Array.iteri
      (fun i x ->
        (match labels with
        | Some ls ->
            Buffer.add_string buf ls.(i);
            Buffer.add_string buf (String.make (label_width - String.length ls.(i) + 1) ' ')
        | None -> ());
        let len =
          if mx <= 0.0 then 0 else int_of_float (x /. mx *. float_of_int width)
        in
        Buffer.add_string buf (String.make len '#');
        Buffer.add_string buf (Printf.sprintf "  %.3f\n" x))
      xs;
    Buffer.contents buf
  end

let series ?(height = 10) ?title ~x_label ~y_label xs =
  let n = Array.length xs in
  let buf = Buffer.create 1024 in
  (match title with Some t -> Buffer.add_string buf (t ^ "\n") | None -> ());
  if n = 0 then Buffer.contents buf
  else begin
    let mn = Array.fold_left min xs.(0) xs in
    let mx = Array.fold_left max xs.(0) xs in
    let span = if mx -. mn <= 0.0 then 1.0 else mx -. mn in
    let grid = Array.make_matrix height n ' ' in
    Array.iteri
      (fun i x ->
        let row =
          int_of_float ((x -. mn) /. span *. float_of_int (height - 1))
        in
        let row = if row < 0 then 0 else if row >= height then height - 1 else row in
        for r = 0 to row do
          grid.(r).(i) <- (if r = row then '*' else '|')
        done)
      xs;
    Buffer.add_string buf (Printf.sprintf "%s (max=%.3f, min=%.3f)\n" y_label mx mn);
    for r = height - 1 downto 0 do
      Buffer.add_string buf "  ";
      Array.iter (fun c -> Buffer.add_char buf c) grid.(r);
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf "  ";
    Buffer.add_string buf (String.make n '-');
    Buffer.add_char buf '\n';
    Buffer.add_string buf ("  " ^ x_label ^ " ->\n");
    Buffer.contents buf
  end
