let now () = Unix.gettimeofday ()

let time_it f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

let best_of ~k f =
  if k < 1 then invalid_arg "Clock.best_of: k < 1";
  let r0, t0 = time_it f in
  let best = ref t0 in
  for _ = 2 to k do
    let _, t = time_it f in
    best := min !best t
  done;
  (r0, !best)
