(** Small number-theory helpers used by the step-skipping solver. *)

val egcd : int -> int -> int * int * int
(** [egcd a b = (g, x, y)] with [g = gcd(a,b)] and [a·x + b·y = g].
    For non-negative inputs (not both zero) [g > 0]. *)

val gcd : int -> int -> int

val min_congruence_solution : c:int -> q:int -> r:int -> int option
(** Minimal [i ≥ 1] with [i·c ≡ q (mod r)], or [None] if no solution.
    Requires [r ≥ 1] and [0 ≤ q < r]. For [q = 0] this is the smallest
    positive [i] with [i·c ≡ 0]: [r / gcd(c mod r, r)], or [1] when
    [c ≡ 0 (mod r)]. *)

val ceil_div : int -> int -> int
(** [⌈a/b⌉] for [a ≥ 0], [b ≥ 1]; 0 for [a ≤ 0]. *)
