(** Wall-clock timing helpers for the benchmark harness.

    All times are wall seconds ([Unix.gettimeofday]), not CPU time: the
    multicore engine makes the two diverge, and wall time is what the
    throughput experiments measure. *)

val now : unit -> float
(** Current wall time in seconds. *)

val time_it : (unit -> 'a) -> 'a * float
(** [time_it f] is [(f (), wall seconds f took)]. *)

val best_of : k:int -> (unit -> 'a) -> 'a * float
(** [best_of ~k f] runs [f] [k] times and returns the first run's result
    with the *minimum* wall time over the [k] runs — the standard
    noise-resistant repetition for sub-millisecond measurements (the
    minimum estimates the undisturbed run; means absorb scheduler noise).
    Requires [k >= 1]; [f] is assumed deterministic. *)
