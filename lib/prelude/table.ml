type align = Left | Right

type row = Cells of string list | Sep

type t = {
  title : string option;
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ?title headers =
  {
    title;
    headers = List.map fst headers;
    aligns = List.map snd headers;
    rows = [];
  }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.fold_left
      (fun widths row ->
        match row with
        | Sep -> widths
        | Cells cells -> List.map2 (fun w c -> max w (String.length c)) widths cells)
      (List.map String.length t.headers)
      rows
  in
  let buf = Buffer.create 1024 in
  let rule () =
    let parts = List.map (fun w -> String.make w '-') widths in
    Buffer.add_string buf (String.concat "-+-" parts);
    Buffer.add_char buf '\n'
  in
  let line cells =
    let parts = List.map2 (fun (a, w) c -> pad a w c) (List.combine t.aligns widths) cells in
    Buffer.add_string buf (String.concat " | " parts);
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | Some title ->
      Buffer.add_string buf ("== " ^ title ^ " ==");
      Buffer.add_char buf '\n'
  | None -> ());
  line t.headers;
  rule ();
  List.iter (function Sep -> rule () | Cells cells -> line cells) rows;
  Buffer.contents buf

let[@sos.allow
     "R4: Table.print is the one explicit stdout sink in prelude, called only by bench/ and \
      examples/ whose stdout IS the result; library emitters use render"] print t =
  print_string (render t);
  print_newline ()

let fmt_float ?(digits = 3) x = Printf.sprintf "%.*f" digits x
let fmt_ratio x = Printf.sprintf "%.4f" x
let fmt_int = string_of_int
let fmt_bool_ok b = if b then "ok" else "VIOLATED"
