type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (acc /. float_of_int (n - 1))
  end

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0.0 || p > 1.0 then invalid_arg "Stats.percentile: p outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let pos = p *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) in
  let hi = int_of_float (ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty array";
  let mn = Array.fold_left min xs.(0) xs in
  let mx = Array.fold_left max xs.(0) xs in
  {
    count = n;
    mean = mean xs;
    stddev = stddev xs;
    min = mn;
    max = mx;
    p50 = percentile xs 0.5;
    p90 = percentile xs 0.9;
    p99 = percentile xs 0.99;
  }

let geometric_mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let acc =
      Array.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Stats.geometric_mean: non-positive sample";
          acc +. log x)
        0.0 xs
    in
    exp (acc /. float_of_int n)
  end

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4f sd=%.4f min=%.4f p50=%.4f p90=%.4f p99=%.4f max=%.4f"
    s.count s.mean s.stddev s.min s.p50 s.p90 s.p99 s.max
