(** Fixed-width plain-text table rendering for the benchmark harness.

    All experiment tables in [bench/main.exe] are printed through this module
    so that the output is aligned, greppable, and diffable across runs. *)

type align = Left | Right

type t

val create : ?title:string -> (string * align) list -> t
(** [create ~title headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Appends a row. Raises [Invalid_argument] if the arity differs from the
    header arity. *)

val add_sep : t -> unit
(** Appends a horizontal separator line. *)

val render : t -> string
(** Renders the whole table, including title and rules. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

(** Cell formatting helpers. *)

val fmt_float : ?digits:int -> float -> string
val fmt_ratio : float -> string
(** Ratio with 4 digits, e.g. ["1.0833"]. *)

val fmt_int : int -> string
val fmt_bool_ok : bool -> string
(** ["ok"] / ["VIOLATED"]. *)
