(** Deterministic, splittable pseudo-random number generator.

    A thin splitmix64 implementation. Every experiment in this repository is
    seeded explicitly so that all tables and tests are reproducible bit for
    bit, independent of the OCaml stdlib [Random] state. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val create2 : int -> int -> t
(** [create2 base index] makes a generator from a (base seed, task index)
    pair; distinct pairs give independent streams. This is the seeding
    discipline of the batch engine: deriving each task's randomness from
    its submission index (never from domain identity or completion order)
    keeps batch output byte-identical at any domain count. *)

val create3 : int -> int -> int -> t
(** [create3 base index attempt] extends {!create2} with a retry-attempt
    coordinate: the resilient batch engine seeds attempt [a] of task [i]
    from [(base, i, a)], so a retried task draws fresh randomness while the
    whole run — including every retry — stays byte-identical at any domain
    count. Distinct triples give independent streams. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future outputs). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [lo, hi] inclusive; requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
