type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let create2 seed index =
  (* Injective in (seed mod 2^64, index mod 2^64): mix64 is a bijection and
     golden_gamma is odd, so distinct (base, task-index) pairs land on
     distinct streams. Used by the batch engine to seed each task from its
     submission index — never from domain identity or completion order. *)
  let s = mix64 (Int64.of_int seed) in
  { state = mix64 (Int64.add s (Int64.mul golden_gamma (Int64.of_int index))) }

let create3 seed index attempt =
  (* Chained create2: injective in the triple for the same reason, used by
     the resilient batch engine so a retried attempt draws a fresh but
     reproducible stream — (base seed, task index, attempt) never depends
     on domain identity, so retried runs stay byte-identical at any -j. *)
  let s = mix64 (Int64.of_int seed) in
  let s = mix64 (Int64.add s (Int64.mul golden_gamma (Int64.of_int index))) in
  { state = mix64 (Int64.add s (Int64.mul golden_gamma (Int64.of_int attempt))) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }
let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: 62 positive bits modulo bound. The
     modulo bias is < bound / 2^62, negligible for workload generation. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
