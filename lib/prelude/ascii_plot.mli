(** Tiny ASCII charting for the "figure" experiments (F1, F2).

    Renders time series as sparklines or filled bar charts using plain ASCII
    so output survives any terminal and the captured bench_output.txt. *)

val sparkline : float array -> string
(** One-line sparkline; values are scaled to the series min/max. Empty string
    on the empty array. *)

val bars : ?width:int -> ?labels:string array -> float array -> string
(** Horizontal bar chart, one row per value, scaled to the series max.
    [labels] (if given) must have the same length as the data. *)

val series :
  ?height:int -> ?title:string -> x_label:string -> y_label:string ->
  float array -> string
(** A small line/column chart of [height] rows (default 10). The x axis is
    the array index. *)
