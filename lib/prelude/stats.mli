(** Descriptive statistics over float samples, used by the benchmark tables. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator), 0 if n < 2 *)
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val stddev : float array -> float
(** Sample standard deviation; 0 if fewer than two samples. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,1]; linear interpolation between order
    statistics. Raises [Invalid_argument] on the empty array. *)

val summarize : float array -> summary
(** Full summary. Raises [Invalid_argument] on the empty array. *)

val geometric_mean : float array -> float
(** Geometric mean of strictly positive samples; 0 on the empty array. *)

val pp_summary : Format.formatter -> summary -> unit
