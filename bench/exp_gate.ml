(* GATE — the reproducible perf gate: fast solver + RLE-native analytics on
   fixed-seed instances, written to BENCH_fast.json so every future PR has
   a wall-clock trajectory to regress against. The instances are exactly
   the T7a shapes (n = 100..1600, m = 16, p_max = 20) plus two T7b
   volume-scaling shapes, including the huge-volume one (p_max = 10^7)
   whose analytics would take minutes if anything expanded the RLE.

   t7c is the batch-throughput section: a fixed 512-instance corpus solved
   on the Engine pool at domains ∈ {1, 2, 4, max}, recording wall time and
   speedup (and asserting the results are identical at every domain count —
   the engine's determinism contract, checked on every gate run).

   Run: `dune exec bench/main.exe -- gate` (a few seconds). CI uploads the
   JSON as an artifact; EXPERIMENTS.md explains how to read/refresh it. *)

module Table = Prelude.Table
module Clock = Prelude.Clock
open Exp_common

(* (name, n, m, pmax, seed) — seeds match Exp_perf's T7a/T7b rows so the
   gate numbers are directly comparable with the Bechamel tables. *)
let shapes =
  [
    ("t7a-n100", 100, 16, 20, 3 * 100);
    ("t7a-n200", 200, 16, 20, 3 * 200);
    ("t7a-n400", 400, 16, 20, 3 * 400);
    ("t7a-n800", 800, 16, 20, 3 * 800);
    ("t7a-n1600", 1600, 16, 20, 3 * 1600);
    ("t7b-n50-p1e7", 50, 8, 10_000_000, 7 * 50 * 10_000_000);
    ("t7b-n3200-p1e5", 3200, 8, 100_000, 7 * 3200 * 100_000);
  ]

let reps = 3

(* The full downstream pipeline on the solver output: everything here must
   stay proportional to |steps|, not makespan. *)
let analytics sched =
  (match Sos.Schedule.validate sched with
  | Ok () -> ()
  | Error v -> failwith ("gate: invalid schedule: " ^ v.Sos.Schedule.reason));
  ignore (Sos.Schedule.completion_times sched);
  ignore (Sos.Schedule.utilization sched);
  ignore (Sos.Schedule.assigned_utilization sched);
  ignore (Sos.Schedule.jobs_per_step sched);
  ignore (Sos.Schedule.total_waste sched);
  ignore (Sos.Schedule.processor_assignment ~validate:false sched);
  ignore (Sos.Schedule.render_gantt ~max_width:100 sched);
  ignore (Sos.Export.utilization_to_csv sched)

type row = {
  name : string;
  n : int;
  m : int;
  pmax : int;
  wall_s : float;
  iters : int;
  steps : int;
  makespan : int;
  analytics_s : float;
}

(* Existing field names are stable for trajectory comparison across PRs;
   [domains]/[best_of] make each row self-describing across machines (the
   single-instance rows are always solved on 1 domain, best-of-[reps]). *)
let json_of_row r =
  Printf.sprintf
    "  {\"name\": %S, \"n\": %d, \"m\": %d, \"pmax\": %d, \"wall_s\": %.6f, \
     \"iters\": %d, \"steps\": %d, \"makespan\": %d, \"analytics_s\": %.6f, \
     \"domains\": 1, \"best_of\": %d}"
    r.name r.n r.m r.pmax r.wall_s r.iters r.steps r.makespan r.analytics_s reps

type t7c_row = { domains : int; wall_s : float; speedup : float }

let t7c_instances = 512

(* [cores_available] makes the t7c speedups interpretable across machines:
   Domain.recommended_domain_count on OCaml >= 5.0, 1 on the 4.14
   sequential fallback (see Engine.Pool.recommended_domain_count). *)
let json_of_t7c (r : t7c_row) =
  Printf.sprintf
    "  {\"name\": \"t7c-d%d\", \"section\": \"t7c\", \"domains\": %d, \
     \"cores_available\": %d, \"best_of\": %d, \"instances\": %d, \
     \"wall_s\": %.6f, \"speedup\": %.3f}"
    r.domains r.domains
    (Engine.Pool.recommended_domain_count ())
    reps t7c_instances r.wall_s r.speedup

let write_json path lines =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc "[\n";
      Out_channel.output_string oc (String.concat ",\n" lines);
      Out_channel.output_string oc "\n]\n")

(* --------------------------------------------------------- t7c corpus *)

(* A fixed mixed corpus: family and size rotate with the task index, and
   each instance's RNG is seeded by (base, index) — the engine's
   determinism discipline, so the corpus is independent of who solves it. *)
let t7c_corpus () =
  let families = Array.of_list Workload.Sos_gen.all_families in
  Array.init t7c_instances (fun i ->
      let rng = Prelude.Rng.create2 (base_seed + 0x7C3) i in
      let family = families.(i mod Array.length families) in
      let n = 100 + (50 * (i mod 5)) in
      Exp_common.checked (Workload.Sos_gen.generate rng family ~n ~m:16 ()))

(* Makespan fingerprint of a whole batch: order-sensitive, so it also
   catches result-reordering bugs, not just wrong makespans. *)
let fingerprint outcomes =
  Array.fold_left
    (fun acc r ->
      match r with
      | Ok mk -> ((acc * 31) + mk) land max_int
      | Error (e : Engine.Batch.error) -> failwith ("t7c solve failed: " ^ e.message))
    17 outcomes

let t7c () =
  let corpus = t7c_corpus () in
  let tasks =
    Array.map (fun inst () -> (Sos.Fast.run inst).Sos.Schedule.makespan) corpus
  in
  let solve_all d = fingerprint (Engine.Batch.map ~domains:d ~chunk:4 tasks) in
  let dmax = Engine.Pool.recommended_domain_count () in
  let ds = List.sort_uniq compare [ 1; 2; 4; dmax ] in
  let measured =
    List.map (fun d -> (d, Clock.best_of ~k:reps (fun () -> solve_all d))) ds
  in
  let fp1 =
    match measured with (_, (fp, _)) :: _ -> fp | [] -> assert false
  in
  List.iter
    (fun (d, (fp, _)) ->
      if fp <> fp1 then
        failwith
          (Printf.sprintf
             "t7c: batch results at %d domains differ from 1 domain (determinism \
              violation)" d))
    measured;
  let base_wall = match measured with (_, (_, w)) :: _ -> w | [] -> assert false in
  List.map
    (fun (d, (_, wall_s)) -> { domains = d; wall_s; speedup = base_wall /. wall_s })
    measured

(* ------------------------------------------------------------ t7d *)

(* Streaming-batch throughput: a binary spec corpus streamed off disk
   through Workload.Specs -> Engine.Batch.stream_seq under the bounded
   window — the same constant-memory pipeline as `sosctl batch --stream`.
   Rows record specs/s and peak RSS for 1e5 and 1e6 specs: the two RSS
   numbers being (nearly) equal at a 10x corpus-size gap is the
   constant-memory acceptance check, preserved in BENCH_fast.json. The
   chunk size is autotuned per machine (best of {64, 256, 1024} on a 32k
   warm-up slice) because the sync-cost/batching tradeoff moves with core
   count and allocator behaviour. *)

type t7d_row = {
  t7d_name : string;
  t7d_specs : int;
  t7d_chunk : int;
  t7d_domains : int;
  t7d_wall_s : float;
  specs_per_s : float;
  peak_rss_kb : int;
  rss_before_kb : int;
}

let json_of_t7d r =
  Printf.sprintf
    "  {\"name\": %S, \"section\": \"t7d\", \"specs\": %d, \"chunk\": %d, \
     \"domains\": %d, \"cores_available\": %d, \"best_of\": 1, \"wall_s\": %.6f, \
     \"specs_per_s\": %.0f, \"peak_rss_kb\": %d, \"rss_before_kb\": %d}"
    r.t7d_name r.t7d_specs r.t7d_chunk r.t7d_domains
    (Engine.Pool.recommended_domain_count ())
    r.t7d_wall_s r.specs_per_s r.peak_rss_kb r.rss_before_kb

(* "VmHWM:   123456 kB" out of /proc/self/status; None off-Linux (the row
   then records 0 and only specs/s is meaningful). *)
let proc_status_kb key =
  match In_channel.with_open_text "/proc/self/status" In_channel.input_all with
  | exception Sys_error _ -> None
  | body ->
      String.split_on_char '\n' body
      |> List.find_map (fun line ->
             if String.starts_with ~prefix:(key ^ ":") line then
               match
                 String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
               with
               | _ :: v :: _ -> int_of_string_opt v
               | _ -> None
             else None)

(* Writing "5" resets the peak-RSS watermark so VmHWM measures this
   section, not whatever t7a..t7c peaked at earlier; best effort (some
   kernels refuse), which is why rows also record rss_before_kb. *)
let reset_peak_rss () =
  match
    Out_channel.with_open_text "/proc/self/clear_refs" (fun oc ->
        Out_channel.output_string oc "5")
  with
  | () -> ()
  | exception Sys_error _ -> ()

let t7d_family = Workload.Sos_gen.uniform_small

let t7d_write_corpus path count =
  Out_channel.with_open_bin path (fun oc ->
      let w = Workload.Specs.Writer.create oc in
      for _ = 1 to count do
        match
          Workload.Specs.Writer.add w ~family:t7d_family.Workload.Sos_gen.name ~n:4 ~m:4 ()
        with
        | Ok () -> ()
        | Error msg -> failwith ("t7d: " ^ msg)
      done)

(* One streaming pass: pull records off the reader, solve each exactly as
   `sosctl batch` does — randomness from (seed, index, attempt 0) — and
   fold the makespans into the order-sensitive fingerprint on ordered
   emission. Returns (count, fingerprint). *)
let t7d_run path ~domains ~chunk =
  let src =
    match Workload.Specs.open_path path with
    | Ok s -> s
    | Error msg -> failwith ("t7d: " ^ msg)
  in
  Fun.protect
    ~finally:(fun () -> Workload.Specs.close src)
    (fun () ->
      let fp = ref 17 in
      let count =
        Engine.Pool.with_pool ~domains (fun pool ->
            Engine.Batch.stream_seq pool ~chunk
              (fun i ->
                match Workload.Specs.read src with
                | None -> None
                | Some r ->
                    Some
                      (fun () ->
                        match r.Workload.Specs.payload with
                        | Workload.Specs.Gen { n; m; _ } ->
                            let rng = Prelude.Rng.create3 (base_seed + 0x7D4) i 0 in
                            let inst =
                              Workload.Sos_gen.generate rng t7d_family ~n ~m ()
                            in
                            (Sos.Fast.run inst).Sos.Schedule.makespan
                        | _ -> failwith "t7d: unexpected record"))
              ~f:(fun _ -> function
                | Ok mk -> fp := ((!fp * 31) + mk) land max_int
                | Error (e : Engine.Batch.error) ->
                    failwith ("t7d solve failed: " ^ e.message)))
      in
      (count, !fp))

let t7d_warmup_specs = 32_768
let t7d_chunk_candidates = [ 64; 256; 1024 ]

let t7d () =
  let dmax = Engine.Pool.recommended_domain_count () in
  let tmp = Filename.temp_file "sos-t7d" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      t7d_write_corpus tmp t7d_warmup_specs;
      let tune =
        List.map
          (fun c ->
            let _, w = Clock.best_of ~k:1 (fun () -> t7d_run tmp ~domains:dmax ~chunk:c) in
            (c, w))
          t7d_chunk_candidates
      in
      let chunk, _ =
        List.fold_left
          (fun (bc, bw) (c, w) -> if w < bw then (c, w) else (bc, bw))
          (match tune with x :: _ -> x | [] -> assert false)
          tune
      in
      let fp_1e5 = ref 0 in
      let rows =
        List.map
          (fun (name, count) ->
            t7d_write_corpus tmp count;
            let rss_before = Option.value (proc_status_kb "VmRSS") ~default:0 in
            reset_peak_rss ();
            let (got, fp), wall_s =
              Clock.best_of ~k:1 (fun () -> t7d_run tmp ~domains:dmax ~chunk)
            in
            if got <> count then
              failwith (Printf.sprintf "t7d: streamed %d of %d specs" got count);
            if count = 100_000 then fp_1e5 := fp;
            {
              t7d_name = name;
              t7d_specs = count;
              t7d_chunk = chunk;
              t7d_domains = dmax;
              t7d_wall_s = wall_s;
              specs_per_s = float_of_int count /. wall_s;
              peak_rss_kb = Option.value (proc_status_kb "VmHWM") ~default:0;
              rss_before_kb = rss_before;
            })
          [ ("t7d-stream-1e5", 100_000); ("t7d-stream-1e6", 1_000_000) ]
      in
      (* Determinism cross-check on the streamed path: the 1e5 corpus at 1
         domain must fingerprint identically to the dmax run above. *)
      t7d_write_corpus tmp 100_000;
      let (_, fp1), _ = Clock.best_of ~k:1 (fun () -> t7d_run tmp ~domains:1 ~chunk) in
      if fp1 <> !fp_1e5 then
        failwith
          "t7d: streamed batch results at 1 domain differ from the parallel run \
           (determinism violation)";
      (chunk, tune, rows))

(* ------------------------------------------------------------- obs row *)

(* Telemetry overhead gate (doc/OBSERVABILITY.md). Two measurements on the
   t7a-n200 solver row:

   - [vs_prev_pct] — the disabled-sink check: this build (instrumentation
     compiled in, sinks off, the default) against the wall_s recorded in
     the previous BENCH_fast.json. If GATE_MAX_REGRESSION_PCT is set (CI
     sets 2 on the 5.1 leg) the gate fails when the regression exceeds it.
     Cross-run wall clock is noisy; best-of-[reps] minima keep this stable
     on an otherwise idle machine.
   - [counters_overhead_pct] — same shape with counters recording, an
     upper bound on what --metrics costs. Both sides of this comparison
     are measured back-to-back here, after explicit warm-up runs and with
     a higher best-of than the trajectory rows: comparing against the
     trajectory row's wall_s (measured much earlier in the gate run, on a
     colder process) once produced a nonsense −38% "overhead".

   The snapshot section re-solves the 512-instance t7c corpus with
   counters on at 1 and 2 domains, asserts the deterministic snapshot is
   byte-identical (the tentpole's core promise), and writes it to
   BENCH_metrics.json (a CI artifact). *)

let obs_shape_name = "t7a-n200"

(* Previous value of [field] for row [name] in the committed
   BENCH_fast.json: each row is one line, so a line-based scan is enough —
   no JSON parser needed. *)
let prev_field path name field =
  if not (Sys.file_exists path) then None
  else begin
    let contents = In_channel.with_open_text path In_channel.input_all in
    let needle = Printf.sprintf "\"name\": %S" name in
    let field = Printf.sprintf "\"%s\": " field in
    String.split_on_char '\n' contents
    |> List.find_map (fun line ->
           let contains s =
             let n = String.length s and l = String.length line in
             let rec go i = i + n <= l && (String.sub line i n = s || go (i + 1)) in
             go 0
           in
           let index_after s =
             let n = String.length s and l = String.length line in
             let rec go i = if i + n > l then None
               else if String.sub line i n = s then Some (i + n) else go (i + 1)
             in
             go 0
           in
           if not (contains needle) then None
           else
             match index_after field with
             | None -> None
             | Some start ->
                 let stop = ref start in
                 while !stop < String.length line && line.[!stop] <> ',' && line.[!stop] <> '}' do
                   incr stop
                 done;
                 float_of_string_opt (String.sub line start (!stop - start)))
  end

let prev_wall path name = prev_field path name "wall_s"

type obs_row = {
  wall_disabled_s : float;
  wall_counters_s : float;
  counters_overhead_pct : float;
  vs_prev_pct : float option;
}

(* Best-of for the two overhead measurements: overheads of a few percent
   need tighter minima than the trajectory rows' wall clocks. *)
let obs_reps = 3 * reps
let obs_warmup = 3

let json_of_obs r =
  Printf.sprintf
    "  {\"name\": \"obs-%s\", \"section\": \"obs\", \"best_of\": %d, \
     \"wall_disabled_s\": %.6f, \"wall_counters_s\": %.6f, \
     \"counters_overhead_pct\": %.2f, \"vs_prev_pct\": %s}"
    obs_shape_name obs_reps r.wall_disabled_s r.wall_counters_s
    r.counters_overhead_pct
    (match r.vs_prev_pct with Some p -> Printf.sprintf "%.2f" p | None -> "null")

let obs_overhead rows =
  let row = List.find (fun r -> r.name = obs_shape_name) rows in
  let prev = prev_wall "BENCH_fast.json" obs_shape_name in
  let inst = Exp_perf.make_instance ~n:row.n ~m:row.m ~pmax:row.pmax (3 * row.n) in
  (* Warm up code paths and allocator state before either measurement. *)
  for _ = 1 to obs_warmup do ignore (Sos.Fast.run inst) done;
  let _, wall_disabled_s =
    Clock.best_of ~k:obs_reps (fun () -> Sos.Fast.run_count inst)
  in
  Obs.Metrics.enable ();
  Obs.Metrics.reset ();
  let _, wall_counters_s =
    Clock.best_of ~k:obs_reps (fun () -> Sos.Fast.run_count inst)
  in
  Obs.Metrics.disable ();
  let pct a b = (a -. b) /. b *. 100.0 in
  {
    wall_disabled_s;
    wall_counters_s;
    counters_overhead_pct = pct wall_counters_s wall_disabled_s;
    vs_prev_pct = Option.map (pct row.wall_s) prev;
  }

let check_regression r =
  match (Sys.getenv_opt "GATE_MAX_REGRESSION_PCT", r.vs_prev_pct) with
  | Some threshold, Some pct ->
      let threshold = float_of_string threshold in
      if pct > threshold then
        failwith
          (Printf.sprintf
             "gate: disabled-sink solver wall time on %s regressed %.2f%% vs the \
              previous BENCH_fast.json (threshold %.2f%%)"
             obs_shape_name pct threshold)
  | _ -> ()

let metrics_snapshot_path = "BENCH_metrics.json"

(* Handles onto the library-registered distribution histograms (PR 8):
   the registry dedupes by name, so these resolve to the instruments the
   solver and bound modules observe into. Solve latency is runtime-class
   (quoted in the gate notes only); the ratio histogram is deterministic
   and therefore part of the byte-identity assertion below. *)
let h_solve = Obs.Hist.runtime "sos.fast.solve_s"

let h_ratio =
  Obs.Hist.create
    ~bounds:(Obs.Hist.linear_bounds ~lo:1.0 ~hi:3.0 ~step:0.05)
    "sos.bounds.ratio"

let obs_snapshot () =
  let corpus = t7c_corpus () in
  (* Each task also rates its makespan against the Equation-(1) lower
     bound, so BENCH_metrics.json carries the approximation-ratio
     distribution of the whole corpus next to the Theorem 3.3 guarantee. *)
  let tasks =
    Array.map
      (fun inst () ->
        let makespan = (Sos.Fast.run inst).Sos.Schedule.makespan in
        ignore (Sos.Bounds.theorem_3_3_bound inst ~makespan);
        makespan)
      corpus
  in
  Obs.Metrics.enable ();
  let snap d =
    Obs.Metrics.reset ();
    ignore (Engine.Batch.map ~domains:d ~chunk:4 tasks);
    Obs.Metrics.snapshot ~cls:`Deterministic ()
  in
  let s1 = snap 1 in
  let s2 = snap 2 in
  if s1 <> s2 then
    failwith "gate: deterministic counter snapshot differs between -j 1 and -j 2";
  (* The last (-j 2) run's full snapshot, runtime metrics included, is the
     artifact; its deterministic section equals the -j 1 one just checked. *)
  let json = Obs.Metrics.snapshot_json ~cls:`All () in
  Obs.Metrics.disable ();
  Out_channel.with_open_text metrics_snapshot_path (fun oc ->
      Out_channel.output_string oc json);
  note
    "corpus solve latency: p50 %.1f us, p99 %.1f us, max %.1f us (%d solves, \
     runtime class)"
    (Obs.Hist.quantile h_solve 0.50 *. 1e6)
    (Obs.Hist.quantile h_solve 0.99 *. 1e6)
    (Obs.Hist.max_value h_solve *. 1e6)
    (Obs.Hist.count h_solve);
  note
    "corpus makespan/lower-bound ratio: p50 %.3f, p99 %.3f, max %.3f over %d \
     instances (deterministic; Theorem 3.3 guarantees <= 2 + 1/(m-2))"
    (Obs.Hist.quantile h_ratio 0.50)
    (Obs.Hist.quantile h_ratio 0.99)
    (Obs.Hist.max_value h_ratio)
    (Obs.Hist.count h_ratio);
  s1

(* ------------------------------------------------------------- --check *)

(* `gate --check` (set from bench/main.ml): after measuring the solver
   rows, compare each t7a/t7b wall_s against the committed BENCH_fast.json
   and exit 1 on any regression beyond GATE_MAX_REGRESSION_PCT (default
   10%% when the variable is unset). Regressions under [check_slack_s]
   absolute are never failures: the sub-100µs rows flap by tens of percent
   run-to-run from scheduling noise alone, and the percentage threshold
   only means something once the delta clears the noise floor. CI runs
   the gate in this mode on the 5.1 leg so a hot-loop regression fails
   the build, not just the artifact trajectory. *)
let check_mode = ref false
let check_slack_s = 50e-6

let gate_threshold () =
  match Sys.getenv_opt "GATE_MAX_REGRESSION_PCT" with
  | Some v -> (
      match float_of_string_opt v with
      | Some t -> t
      | None ->
          Printf.eprintf "gate --check: bad GATE_MAX_REGRESSION_PCT %S\n" v;
          exit 2)
  | None -> 10.0

let check_rows rows =
  let threshold = gate_threshold () in
  let failures =
    List.filter_map
      (fun r ->
        match prev_wall "BENCH_fast.json" r.name with
        | None -> None
        | Some prev ->
            let pct = (r.wall_s -. prev) /. prev *. 100.0 in
            if pct > threshold && r.wall_s -. prev > check_slack_s then
              Some (r.name, prev, r.wall_s, pct)
            else None)
      rows
  in
  match failures with
  | [] ->
      note
        "--check: no solver row regressed more than %.2f%% vs the committed \
         BENCH_fast.json"
        threshold
  | fs ->
      List.iter
        (fun (name, prev, now, pct) ->
          Printf.eprintf
            "gate --check: %s wall_s regressed %+.2f%% (%.6f s -> %.6f s, \
             threshold %.2f%%)\n"
            name pct prev now threshold)
        fs;
      exit 1

(* Streaming-throughput regression check on the t7d rows. Throughput is
   far noisier than the microsecond solver rows (disk cache state, CI
   neighbours — ~20%% swings between back-to-back local runs), so the
   threshold is relaxed to a 40%% floor: it catches the gross failures
   this section exists for (a 2x slowdown, memory thrash) without
   flapping on load noise. A missing committed row (first run on a
   machine) is never a failure. *)
let check_t7d rows =
  let threshold = Float.max 40.0 (3.0 *. gate_threshold ()) in
  let failures =
    List.filter_map
      (fun r ->
        match prev_field "BENCH_fast.json" r.t7d_name "specs_per_s" with
        | None -> None
        | Some prev ->
            let pct = (prev -. r.specs_per_s) /. prev *. 100.0 in
            if pct > threshold then Some (r.t7d_name, prev, r.specs_per_s, pct)
            else None)
      rows
  in
  match failures with
  | [] ->
      note
        "--check: no streaming row lost more than %.0f%% specs/s vs the committed \
         BENCH_fast.json"
        threshold
  | fs ->
      List.iter
        (fun (name, prev, now, pct) ->
          Printf.eprintf
            "gate --check: %s specs_per_s regressed %.2f%% (%.0f -> %.0f, threshold \
             %.0f%%)\n"
            name pct prev now threshold)
        fs;
      exit 1

(* ---------------------------------------------------------------- gate *)

let gate () =
  section "GATE — fast solver + RLE analytics perf gate (fixed seeds)";
  let rows =
    List.map
      (fun (name, n, m, pmax, seed) ->
        let inst = Exp_perf.make_instance ~n ~m ~pmax seed in
        let (sched, iters), wall_s =
          Clock.best_of ~k:reps (fun () -> Sos.Fast.run_count inst)
        in
        let (), analytics_s = Clock.best_of ~k:reps (fun () -> analytics sched) in
        {
          name; n; m; pmax; wall_s; iters;
          steps = List.length sched.Sos.Schedule.steps;
          makespan = sched.Sos.Schedule.makespan;
          analytics_s;
        })
      shapes
  in
  let t =
    Table.create
      [
        ("shape", Table.Left); ("n", Table.Right); ("max p_j", Table.Right);
        ("makespan", Table.Right); ("iters", Table.Right); ("blocks", Table.Right);
        ("solve", Table.Right); ("analytics", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.name; Table.fmt_int r.n; Table.fmt_int r.pmax; Table.fmt_int r.makespan;
          Table.fmt_int r.iters; Table.fmt_int r.steps;
          Printf.sprintf "%.2f ms" (r.wall_s *. 1e3);
          Printf.sprintf "%.2f ms" (r.analytics_s *. 1e3);
        ])
    rows;
  Table.print t;
  section
    (Printf.sprintf
       "GATE t7c — batch throughput: %d-instance corpus on the Engine pool \
        (this machine recommends %d domains)"
       t7c_instances
       (Engine.Pool.recommended_domain_count ()));
  let t7c_rows = t7c () in
  let t2 =
    Table.create
      [ ("domains", Table.Right); ("wall", Table.Right); ("speedup", Table.Right) ]
  in
  List.iter
    (fun r ->
      Table.add_row t2
        [
          Table.fmt_int r.domains;
          Printf.sprintf "%.1f ms" (r.wall_s *. 1e3);
          Printf.sprintf "%.2fx" r.speedup;
        ])
    t7c_rows;
  Table.print t2;
  note "batch results byte-identical at every domain count: ok";
  section
    "GATE t7d — streaming batch: binary corpus through the bounded window \
     (constant memory)";
  let t7d_chunk, t7d_tune, t7d_rows = t7d () in
  note "chunk autotune on a %d-spec warm-up slice: %s -> picked %d" t7d_warmup_specs
    (String.concat ", "
       (List.map (fun (c, w) -> Printf.sprintf "%d=%.0fms" c (w *. 1e3)) t7d_tune))
    t7d_chunk;
  let t3 =
    Table.create
      [
        ("corpus", Table.Left); ("specs", Table.Right); ("chunk", Table.Right);
        ("domains", Table.Right); ("wall", Table.Right); ("specs/s", Table.Right);
        ("peak RSS", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row t3
        [
          r.t7d_name; Table.fmt_int r.t7d_specs; Table.fmt_int r.t7d_chunk;
          Table.fmt_int r.t7d_domains;
          Printf.sprintf "%.2f s" r.t7d_wall_s;
          Printf.sprintf "%.0f" r.specs_per_s;
          (if r.peak_rss_kb = 0 then "n/a"
           else Printf.sprintf "%d kB" r.peak_rss_kb);
        ])
    t7d_rows;
  Table.print t3;
  note "streamed results byte-identical at 1 domain and %d domains: ok"
    (Engine.Pool.recommended_domain_count ());
  section "GATE obs — telemetry overhead + deterministic snapshot";
  let obs_row = obs_overhead rows in
  note "solver %s: disabled sinks %.2f ms, counters on %.2f ms (%+.2f%%)"
    obs_shape_name
    (obs_row.wall_disabled_s *. 1e3)
    (obs_row.wall_counters_s *. 1e3)
    obs_row.counters_overhead_pct;
  (match obs_row.vs_prev_pct with
  | Some pct ->
      note "disabled-sink wall vs previous BENCH_fast.json: %+.2f%%" pct
  | None -> note "no previous BENCH_fast.json row to regress against");
  let det_snapshot = obs_snapshot () in
  note
    "deterministic counter snapshot of the %d-instance corpus byte-identical at \
     -j 1 and -j 2 (%d counters): ok; wrote %s"
    t7c_instances
    (List.length (String.split_on_char '\n' (String.trim det_snapshot)))
    metrics_snapshot_path;
  if !check_mode then begin
    check_rows rows;
    check_t7d t7d_rows
  end;
  check_regression obs_row;
  let path = "BENCH_fast.json" in
  write_json path
    (List.map json_of_row rows @ List.map json_of_t7c t7c_rows
    @ List.map json_of_t7d t7d_rows
    @ [ json_of_obs obs_row ]);
  note
    "wrote %s (best of %d runs per shape/config; analytics = validate + \
     completions + profiles + waste + proc-assignment + gantt + csv, all \
     RLE-native; t7c = %d instances solved on the domain pool)"
    path reps t7c_instances
