(* GATE — the reproducible perf gate: fast solver + RLE-native analytics on
   fixed-seed instances, written to BENCH_fast.json so every future PR has
   a wall-clock trajectory to regress against. The instances are exactly
   the T7a shapes (n = 100..1600, m = 16, p_max = 20) plus two T7b
   volume-scaling shapes, including the huge-volume one (p_max = 10^7)
   whose analytics would take minutes if anything expanded the RLE.

   Run: `dune exec bench/main.exe -- gate` (a few seconds). CI uploads the
   JSON as an artifact; EXPERIMENTS.md explains how to read/refresh it. *)

module Table = Prelude.Table
open Exp_common

(* (name, n, m, pmax, seed) — seeds match Exp_perf's T7a/T7b rows so the
   gate numbers are directly comparable with the Bechamel tables. *)
let shapes =
  [
    ("t7a-n100", 100, 16, 20, 3 * 100);
    ("t7a-n200", 200, 16, 20, 3 * 200);
    ("t7a-n400", 400, 16, 20, 3 * 400);
    ("t7a-n800", 800, 16, 20, 3 * 800);
    ("t7a-n1600", 1600, 16, 20, 3 * 1600);
    ("t7b-n50-p1e7", 50, 8, 10_000_000, 7 * 50 * 10_000_000);
    ("t7b-n3200-p1e5", 3200, 8, 100_000, 7 * 3200 * 100_000);
  ]

let reps = 3

let best_of f =
  let result = ref None and dt = ref infinity in
  for _ = 1 to reps do
    let r, t = time_it f in
    result := Some r;
    dt := min !dt t
  done;
  (Option.get !result, !dt)

(* The full downstream pipeline on the solver output: everything here must
   stay proportional to |steps|, not makespan. *)
let analytics sched =
  (match Sos.Schedule.validate sched with
  | Ok () -> ()
  | Error v -> failwith ("gate: invalid schedule: " ^ v.Sos.Schedule.reason));
  ignore (Sos.Schedule.completion_times sched);
  ignore (Sos.Schedule.utilization sched);
  ignore (Sos.Schedule.assigned_utilization sched);
  ignore (Sos.Schedule.jobs_per_step sched);
  ignore (Sos.Schedule.total_waste sched);
  ignore (Sos.Schedule.processor_assignment ~validate:false sched);
  ignore (Sos.Schedule.render_gantt ~max_width:100 sched);
  ignore (Sos.Export.utilization_to_csv sched)

type row = {
  name : string;
  n : int;
  m : int;
  pmax : int;
  wall_s : float;
  iters : int;
  steps : int;
  makespan : int;
  analytics_s : float;
}

let json_of_row r =
  Printf.sprintf
    "  {\"name\": %S, \"n\": %d, \"m\": %d, \"pmax\": %d, \"wall_s\": %.6f, \
     \"iters\": %d, \"steps\": %d, \"makespan\": %d, \"analytics_s\": %.6f}"
    r.name r.n r.m r.pmax r.wall_s r.iters r.steps r.makespan r.analytics_s

let write_json path rows =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc "[\n";
      Out_channel.output_string oc (String.concat ",\n" (List.map json_of_row rows));
      Out_channel.output_string oc "\n]\n")

let gate () =
  section "GATE — fast solver + RLE analytics perf gate (fixed seeds)";
  let rows =
    List.map
      (fun (name, n, m, pmax, seed) ->
        let inst = Exp_perf.make_instance ~n ~m ~pmax seed in
        let (sched, iters), wall_s = best_of (fun () -> Sos.Fast.run_count inst) in
        let (), analytics_s = best_of (fun () -> analytics sched) in
        {
          name; n; m; pmax; wall_s; iters;
          steps = List.length sched.Sos.Schedule.steps;
          makespan = sched.Sos.Schedule.makespan;
          analytics_s;
        })
      shapes
  in
  let t =
    Table.create
      [
        ("shape", Table.Left); ("n", Table.Right); ("max p_j", Table.Right);
        ("makespan", Table.Right); ("iters", Table.Right); ("blocks", Table.Right);
        ("solve", Table.Right); ("analytics", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.name; Table.fmt_int r.n; Table.fmt_int r.pmax; Table.fmt_int r.makespan;
          Table.fmt_int r.iters; Table.fmt_int r.steps;
          Printf.sprintf "%.2f ms" (r.wall_s *. 1e3);
          Printf.sprintf "%.2f ms" (r.analytics_s *. 1e3);
        ])
    rows;
  Table.print t;
  let path = "BENCH_fast.json" in
  write_json path rows;
  note "wrote %s (best of %d runs per shape; analytics = validate + completions \
        + profiles + waste + proc-assignment + gantt + csv, all RLE-native)"
    path reps
