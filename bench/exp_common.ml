(* Shared helpers for the experiment tables. *)

module Rng = Prelude.Rng
module Table = Prelude.Table
module Stats = Prelude.Stats
module Clock = Prelude.Clock

let base_seed = 0xCA51E

let section title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n"

let note fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n" s) fmt

(* Measured/claimed comparison cell: "1.2345 <= 2.5000 ok". *)
let vs measured bound =
  Printf.sprintf "%s %s" (Table.fmt_ratio measured)
    (if measured <= bound +. 1e-9 then "ok" else "VIOLATED")

let ratios_summary (xs : float array) =
  let s = Stats.summarize xs in
  (s.Stats.mean, s.Stats.max)

let time_it = Clock.time_it

(* Domain count for the parallel sweeps; `bench/main.exe -j N` overrides. *)
let domains = ref (Engine.Pool.recommended_domain_count ())

(* Parallel map over independent experiment cells, results in submission
   order. Cells must be self-contained: compute only (no printing) and
   derive all randomness from their own parameters via explicit
   [Rng.create]/[Rng.create2] seeds — never from execution order — so the
   tables are byte-identical at any [-j]. *)
let par_map f xs =
  let tasks = Array.map (fun x () -> f x) xs in
  Engine.Batch.map ~domains:!domains tasks
  |> Array.map (function
       | Ok v -> v
       | Error e ->
           failwith
             (Printf.sprintf "experiment cell %d failed: %s" e.Engine.Batch.index
                e.Engine.Batch.message))

(* Strict-validate a generated instance before benchmarking it: a gated
   timing run over an ill-posed instance would measure garbage
   (doc/ROBUSTNESS.md). *)
let checked inst =
  match Sos.Instance.validate inst with
  | Ok inst -> inst
  | Error reason ->
      failwith
        ("bench: generated instance failed validation: "
        ^ Robust.Failure.invalid_to_string reason)

(* The (a × b) cell grid flattened row-major, for sweeps over two axes. *)
let grid xs ys = Array.of_list (List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs)
