(* Shared helpers for the experiment tables. *)

module Rng = Prelude.Rng
module Table = Prelude.Table
module Stats = Prelude.Stats

let base_seed = 0xCA51E

let section title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n"

let note fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n" s) fmt

(* Measured/claimed comparison cell: "1.2345 <= 2.5000 ok". *)
let vs measured bound =
  Printf.sprintf "%s %s" (Table.fmt_ratio measured)
    (if measured <= bound +. 1e-9 then "ok" else "VIOLATED")

let ratios_summary (xs : float array) =
  let s = Stats.summarize xs in
  (s.Stats.mean, s.Stats.max)

let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)
