(* SoS experiments: T1 (general ratio), T2 (unit size), T6 (baseline
   crossover), F1/F2 (figures), A1 (ablations). *)

module Rng = Prelude.Rng
module Table = Prelude.Table
open Exp_common

let reps = 10

(* T1: Theorem 3.3 ratio for general job sizes, across m and families. *)
let t1 () =
  section
    "T1 — Theorem 3.3: makespan of the sliding-window algorithm vs the Eq.(1) \
     lower bound (general job sizes)";
  note
    "ratio = makespan / LB where LB = max(⌈Σs_j⌉, ⌈Σp_j/m⌉, max p_j); the proven \
     bound is 2+1/(m−2). %d instances per cell, n = 200." reps;
  let t =
    Table.create
      [
        ("family", Table.Left); ("m", Table.Right); ("mean ratio", Table.Right);
        ("max ratio", Table.Right); ("bound", Table.Right); ("within", Table.Left);
      ]
  in
  let ms = [ 4; 8; 16; 32; 64 ] in
  let rows =
    par_map
      (fun (family, m) ->
        let ratios =
          Array.init reps (fun rep ->
              let rng = Rng.create (base_seed + (1000 * rep) + m) in
              let inst = Workload.Sos_gen.generate rng family ~n:200 ~m () in
              let s = Sos.Fast.run inst in
              Sos.Bounds.theorem_3_3_bound inst ~makespan:s.Sos.Schedule.makespan)
        in
        let mean, mx = ratios_summary ratios in
        let bound = Sos.Bounds.guarantee_general ~m in
        [
          family.Workload.Sos_gen.name; Table.fmt_int m; Table.fmt_ratio mean;
          Table.fmt_ratio mx; Table.fmt_ratio bound;
          Table.fmt_bool_ok (mx <= bound +. 1e-9);
        ])
      (grid Workload.Sos_gen.all_families ms)
  in
  Array.iteri
    (fun i row ->
      Table.add_row t row;
      if (i + 1) mod List.length ms = 0 then Table.add_sep t)
    rows;
  Table.print t

(* T2: unit-size jobs — reserved-processor Listing 1 vs the m-maximal
   (splittable) modification. *)
let t2 () =
  section
    "T2 — Theorem 3.3 (unit sizes): Listing 1 ((m−1)-windows, bound \
     (1+2/(m−2))·OPT+1) vs the m-maximal modification (bound (1+1/(m−1))·OPT+1)";
  note "ratios vs the Eq.(1) lower bound; %d instances per cell, n = 300." reps;
  let t =
    Table.create
      [
        ("family", Table.Left); ("m", Table.Right);
        ("listing1 max", Table.Right); ("bound1", Table.Right);
        ("m-maximal max", Table.Right); ("non-preempt max", Table.Right);
        ("bound2", Table.Right); ("within", Table.Left);
      ]
  in
  let ms = [ 4; 8; 16 ] in
  let rows =
    par_map
      (fun (base_family, m) ->
        let family = Workload.Sos_gen.unit_of base_family in
        let r1 = ref [] and r2 = ref [] and r3 = ref [] in
        let ok = ref true in
        for rep = 0 to reps - 1 do
          let rng = Rng.create (base_seed + (2000 * rep) + m) in
          let inst = Workload.Sos_gen.generate rng family ~n:300 ~m () in
          let lbi = Sos.Bounds.lower_bound inst in
          let lb = float_of_int lbi in
          let s1 = Sos.Fast.run inst in
          let s2 = Sos.Splittable.run inst in
          let s3 = Sos.Splittable.run_nonpreemptive inst in
          (* Subtract the +1 additive term before forming the display
             ratio; the pass/fail check uses the guarantees' own additive
             form, makespan ≤ factor·LB + 1 (rounded up). *)
          r1 := (float_of_int (s1.Sos.Schedule.makespan - 1) /. lb) :: !r1;
          r2 := (float_of_int (s2.Sos.Schedule.makespan - 1) /. lb) :: !r2;
          r3 := (float_of_int (s3.Sos.Schedule.makespan - 1) /. lb) :: !r3;
          let within factor (s : Sos.Schedule.t) =
            s.Sos.Schedule.makespan
            <= int_of_float (ceil (factor *. float_of_int lbi)) + 1
          in
          let b1 = Sos.Bounds.guarantee_unit ~m in
          let b2 = Sos.Bounds.guarantee_unit_modified ~m in
          if not (within b1 s1 && within b2 s2 && within b2 s3) then ok := false
        done;
        let _, mx1 = ratios_summary (Array.of_list !r1) in
        let _, mx2 = ratios_summary (Array.of_list !r2) in
        let _, mx3 = ratios_summary (Array.of_list !r3) in
        let b1 = Sos.Bounds.guarantee_unit ~m in
        let b2 = Sos.Bounds.guarantee_unit_modified ~m in
        [
          family.Workload.Sos_gen.name; Table.fmt_int m; Table.fmt_ratio mx1;
          Table.fmt_ratio b1; Table.fmt_ratio mx2; Table.fmt_ratio mx3;
          Table.fmt_ratio b2; Table.fmt_bool_ok !ok;
        ])
      (grid
         [ Workload.Sos_gen.uniform_wide; Workload.Sos_gen.bimodal; Workload.Sos_gen.heavy_tail ]
         ms)
  in
  Array.iteri
    (fun i row ->
      Table.add_row t row;
      if (i + 1) mod List.length ms = 0 then Table.add_sep t)
    rows;
  Table.print t;
  note
    "non-preempt = the m-maximal modification with the started job pinned in the \
     window (a strictly non-preemptive schedule; this repo's construction — the \
     paper's reinterpretation leaves preemption possible, see DESIGN.md)."

(* T6: who wins — window algorithm vs Garey–Graham list scheduling vs the
   greedy fair-share baseline, sweeping resource scarcity. *)
let t6 () =
  section
    "T6 — crossover: sliding window vs Garey–Graham list scheduling vs greedy \
     fair-share, as resource scarcity sweeps";
  note
    "scarcity = expected total requirement per step if all m processors were \
     busy (E[r_j]·m as a multiple of the resource). n = 150, m = 8, sizes 1–20, \
     %d instances per cell; mean makespans." reps;
  let t =
    Table.create
      [
        ("scarcity", Table.Right); ("window", Table.Right); ("list-sched", Table.Right);
        ("greedy-fair", Table.Right); ("LB", Table.Right); ("winner", Table.Left);
        ("avgC win", Table.Right); ("avgC list", Table.Right);
      ]
  in
  let m = 8 and n = 150 in
  let scale = Workload.Sos_gen.default_scale in
  let rows =
    par_map
      (fun scarcity ->
        (* E[r] = scarcity/m; requirements uniform in (0, 2·E[r]]. *)
        let hi = max 2 (int_of_float (scarcity /. float_of_int m *. 2.0 *. float_of_int scale)) in
        let family =
          {
            Workload.Sos_gen.name = "sweep";
            req = Workload.Distributions.Uniform { lo = 1; hi = min hi (2 * scale) };
            size = Workload.Distributions.Uniform { lo = 1; hi = 20 };
          }
        in
        let acc_w = ref 0.0 and acc_l = ref 0.0 and acc_g = ref 0.0 and acc_lb = ref 0.0 in
        let acc_cw = ref 0.0 and acc_cl = ref 0.0 in
        for rep = 0 to reps - 1 do
          let rng = Rng.create (base_seed + (3000 * rep) + int_of_float (scarcity *. 100.)) in
          let inst = Workload.Sos_gen.generate rng family ~n ~m ~scale () in
          let sw = Sos.Fast.run inst in
          let sl = Baselines.List_scheduling.run inst in
          acc_w := !acc_w +. float_of_int sw.Sos.Schedule.makespan;
          acc_l := !acc_l +. float_of_int sl.Sos.Schedule.makespan;
          acc_cw := !acc_cw +. Sos.Schedule.mean_completion_time sw;
          acc_cl := !acc_cl +. Sos.Schedule.mean_completion_time sl;
          acc_g := !acc_g +. float_of_int (Baselines.Greedy_fair.run inst).Sos.Schedule.makespan;
          acc_lb := !acc_lb +. float_of_int (Sos.Bounds.lower_bound inst)
        done;
        let w = !acc_w /. float_of_int reps
        and l = !acc_l /. float_of_int reps
        and g = !acc_g /. float_of_int reps in
        let winner =
          if w <= l && w <= g then "window"
          else if l <= w && l <= g then "list-sched"
          else "greedy-fair"
        in
        [
          Printf.sprintf "%.2f" scarcity; Table.fmt_float w; Table.fmt_float l;
          Table.fmt_float g; Table.fmt_float (!acc_lb /. float_of_int reps); winner;
          Table.fmt_float (!acc_cw /. float_of_int reps);
          Table.fmt_float (!acc_cl /. float_of_int reps);
        ])
      [| 0.25; 0.5; 1.0; 2.0; 4.0; 8.0; 16.0 |]
  in
  Array.iter (Table.add_row t) rows;
  Table.print t;
  note
    "avgC = mean job completion time (flow-time view): the window algorithm's \
     makespan advantage does not come at a completion-time cost."

(* F1: utilization profile over time on one instance. *)
let f1 () =
  section
    "F1 — resource utilization over time: the T_L/T_R phase structure of the \
     analysis (full-resource phase, then the left-border tail)";
  let rng = Rng.create (base_seed + 77) in
  let inst = Workload.Sos_gen.generate rng Workload.Sos_gen.bimodal ~n:60 ~m:6 () in
  let sched = Sos.Listing1.run inst in
  let u = Sos.Schedule.to_dense ~default:0.0 (Sos.Schedule.utilization sched) in
  note "instance: bimodal, n=60, m=6; makespan %d, LB %d, waste %d units"
    sched.Sos.Schedule.makespan (Sos.Bounds.lower_bound inst)
    (Sos.Schedule.total_waste sched);
  print_string
    (Prelude.Ascii_plot.series ~height:8 ~title:"resource utilization per step"
       ~x_label:"time step" ~y_label:"utilization" u);
  let jobs =
    Array.map float_of_int
      (Sos.Schedule.to_dense ~default:0 (Sos.Schedule.jobs_per_step sched))
  in
  print_string
    (Prelude.Ascii_plot.series ~height:8 ~title:"jobs scheduled per step"
       ~x_label:"time step" ~y_label:"#jobs" jobs)

(* F2: window trajectory: size, r(W) and border flags per step. *)
let f2 () =
  section "F2 — window trajectory: Lemma 3.8's border monotonicity in action";
  let rng = Rng.create (base_seed + 78) in
  let inst = Workload.Sos_gen.generate rng Workload.Sos_gen.uniform_wide ~n:40 ~m:6 () in
  let _, trace = Sos.Listing1.run_traced inst in
  let sizes = Array.of_list (List.map (fun i -> float_of_int (List.length i.Sos.Listing1.window)) trace) in
  let rsums =
    Array.of_list
      (List.map
         (fun i ->
           float_of_int i.Sos.Listing1.window_rsum /. float_of_int inst.Sos.Instance.scale)
         trace)
  in
  print_string
    (Prelude.Ascii_plot.series ~height:6 ~title:"window size |W_t|" ~x_label:"time step"
       ~y_label:"|W|" sizes);
  print_string
    (Prelude.Ascii_plot.series ~height:6 ~title:"window requirement r(W_t)"
       ~x_label:"time step" ~y_label:"r(W)" rsums);
  let first_left =
    List.find_opt (fun i -> i.Sos.Listing1.at_left_border) trace
    |> Option.map (fun i -> i.Sos.Listing1.time)
  in
  let first_right =
    List.find_opt (fun i -> i.Sos.Listing1.at_right_border) trace
    |> Option.map (fun i -> i.Sos.Listing1.time)
  in
  let fmt = function Some t -> string_of_int t | None -> "never" in
  note "first step at left border (T_L-ish): %s; first at right border: %s; makespan %d"
    (fmt first_left) (fmt first_right) (List.length trace)

(* F3: measured ratio vs the proven bound as m grows. *)
let f3 () =
  section
    "F3 — the guarantee curve: measured worst ratio vs the proven 2+1/(m−2) as m \
     grows (uniform-small family, n = 200, 6 instances per point)";
  let ms = [ 3; 4; 5; 6; 8; 10; 12; 16; 24; 32; 48; 64 ] in
  let measured =
    List.map
      (fun m ->
        let worst = ref 0.0 in
        for rep = 0 to 5 do
          let rng = Rng.create (base_seed + (500 * rep) + m) in
          let inst = Workload.Sos_gen.generate rng Workload.Sos_gen.uniform_small ~n:200 ~m () in
          let s = Sos.Fast.run inst in
          worst := max !worst (Sos.Bounds.theorem_3_3_bound inst ~makespan:s.Sos.Schedule.makespan)
        done;
        !worst)
      ms
  in
  let t =
    Table.create
      [ ("m", Table.Right); ("measured worst", Table.Right); ("bound 2+1/(m-2)", Table.Right) ]
  in
  List.iter2
    (fun m w ->
      Table.add_row t
        [ Table.fmt_int m; Table.fmt_ratio w; Table.fmt_ratio (Sos.Bounds.guarantee_general ~m) ])
    ms measured;
  Table.print t;
  print_string
    (Prelude.Ascii_plot.series ~height:7 ~title:"measured worst ratio by m (index over the m list above)"
       ~x_label:"m index" ~y_label:"ratio" (Array.of_list measured))

(* E1: how much does the non-preemption constraint cost? The paper's lower
   bounds are preemption-valid, so this is a well-posed comparison. *)
let e1 () =
  section
    "E1 (extension) — the price of non-preemption: window algorithm vs an LRPT \
     water-filling preemptive scheduler, both vs the (preemption-valid) Eq.(1) LB";
  let t =
    Table.create
      [
        ("family", Table.Left); ("m", Table.Right); ("window/LB", Table.Right);
        ("preemptive/LB", Table.Right); ("gap", Table.Right);
      ]
  in
  let rows =
    par_map
      (fun (family, m) ->
        let w = ref 0.0 and p = ref 0.0 in
        for rep = 0 to reps - 1 do
          let rng = Rng.create (base_seed + (6000 * rep) + m) in
          let inst = Workload.Sos_gen.generate rng family ~n:120 ~m () in
          let lb = float_of_int (Sos.Bounds.lower_bound inst) in
          w := !w +. (float_of_int (Sos.Fast.run inst).Sos.Schedule.makespan /. lb);
          p := !p +. (float_of_int (Sos.Preemptive.run inst).Sos.Schedule.makespan /. lb)
        done;
        let w = !w /. float_of_int reps and p = !p /. float_of_int reps in
        [
          family.Workload.Sos_gen.name; Table.fmt_int m; Table.fmt_ratio w;
          Table.fmt_ratio p; Printf.sprintf "%+.1f%%" ((w /. p -. 1.0) *. 100.0);
        ])
      (grid
         [ Workload.Sos_gen.uniform_small; Workload.Sos_gen.bimodal; Workload.Sos_gen.heavy_tail ]
         [ 4; 16 ])
  in
  Array.iter (Table.add_row t) rows;
  Table.print t

(* E2: what does joint job+resource optimization buy over the predecessor
   model (fixed assignment, Brinkmann et al. 2014)? *)
let e2 () =
  section
    "E2 (extension) — joint assignment vs the fixed-assignment predecessor model \
     (Brinkmann et al., SPAA 2014): the window algorithm chooses placements, the \
     baseline water-fills a fixed placement";
  let t =
    Table.create
      [
        ("family", Table.Left); ("m", Table.Right); ("window", Table.Right);
        ("fixed RR", Table.Right); ("fixed LPT", Table.Right); ("LB", Table.Right);
      ]
  in
  let rows =
    par_map
      (fun (family, m) ->
        let acc = Array.make 4 0.0 in
        for rep = 0 to reps - 1 do
          let rng = Rng.create (base_seed + (7000 * rep) + m) in
          let inst = Workload.Sos_gen.generate rng family ~n:120 ~m () in
          let add i v = acc.(i) <- acc.(i) +. float_of_int v in
          add 0 (Sos.Fast.run inst).Sos.Schedule.makespan;
          add 1
            (Baselines.Fixed_assignment.run ~strategy:Baselines.Fixed_assignment.Round_robin
               inst)
              .Sos.Schedule.makespan;
          add 2
            (Baselines.Fixed_assignment.run ~strategy:Baselines.Fixed_assignment.By_volume
               inst)
              .Sos.Schedule.makespan;
          add 3 (Sos.Bounds.lower_bound inst)
        done;
        family.Workload.Sos_gen.name :: Table.fmt_int m
        :: List.map (fun i -> Table.fmt_float (acc.(i) /. float_of_int reps)) [ 0; 1; 2; 3 ])
      (grid
         [ Workload.Sos_gen.uniform_small; Workload.Sos_gen.bimodal; Workload.Sos_gen.heavy_tail ]
         [ 4; 16 ])
  in
  Array.iter (Table.add_row t) rows;
  Table.print t

(* E3: online arrivals — load sweep against the clairvoyant lower bound. *)
let e3 () =
  section
    "E3 (extension) — online arrivals: window-style greedy vs the clairvoyant \
     lower bound max(Eq.(1), release+p), sweeping arrival intensity";
  note
    "n = 120 jobs on m = 8, sizes 1–6, uniform requirements; releases uniform in \
     [0, horizon] where horizon = load-factor · (work / capacity). %d instances \
     per cell." reps;
  let t =
    Table.create
      [
        ("load", Table.Left); ("mean ratio", Table.Right); ("max ratio", Table.Right);
        ("mean makespan", Table.Right); ("mean LB", Table.Right);
      ]
  in
  let scale = 10_000 in
  let rows =
    par_map
      (fun (label, load) ->
        let ratios = ref [] and mk = ref 0.0 and lbs = ref 0.0 in
        for rep = 0 to reps - 1 do
        let rng = Rng.create (base_seed + (9000 * rep) + int_of_float (load *. 10.0)) in
        let base =
          List.init 120 (fun _ ->
              (Rng.int_in rng 1 6, Rng.int_in rng 1 scale))
        in
        let work =
          List.fold_left (fun acc (p, r) -> acc + (p * r)) 0 base
        in
        let horizon =
          max 1 (int_of_float (load *. float_of_int work /. float_of_int scale))
        in
        let arrivals =
          List.map
            (fun (size, req) ->
              { Sos.Online.release = Rng.int_in rng 0 horizon; size; req })
            base
        in
        let r = Sos.Online.run ~m:8 ~scale arrivals in
        let lb = Sos.Online.lower_bound ~m:8 ~scale arrivals in
        ratios := (float_of_int r.Sos.Online.makespan /. float_of_int lb) :: !ratios;
        mk := !mk +. float_of_int r.Sos.Online.makespan;
        lbs := !lbs +. float_of_int lb
      done;
        let mean, mx = ratios_summary (Array.of_list !ratios) in
        [
          label; Table.fmt_ratio mean; Table.fmt_ratio mx;
          Table.fmt_float (!mk /. float_of_int reps);
          Table.fmt_float (!lbs /. float_of_int reps);
        ])
      [|
        ("burst (0)", 0.0); ("heavy (0.5)", 0.5); ("critical (1.0)", 1.0);
        ("light (2.0)", 2.0);
      |]
  in
  Array.iter (Table.add_row t) rows;
  Table.print t

(* E4: stability — how sensitive is the makespan to misestimated
   requirements? Perturb every r_j by ±p% and compare. *)
let e4 () =
  section
    "E4 (extension) — input stability: relative makespan change when every \
     requirement is independently perturbed by ±p% (20 perturbations per cell, \
     bimodal n = 120, m = 8)";
  let t =
    Table.create
      [
        ("p", Table.Left); ("window mean |Δ|", Table.Right);
        ("window max |Δ|", Table.Right); ("list-sched mean |Δ|", Table.Right);
        ("list-sched max |Δ|", Table.Right);
      ]
  in
  let base_rng = Rng.create (base_seed + 404) in
  let inst = Workload.Sos_gen.generate base_rng Workload.Sos_gen.bimodal ~n:120 ~m:8 () in
  let base_w = float_of_int (Sos.Fast.run inst).Sos.Schedule.makespan in
  let base_l =
    float_of_int (Baselines.List_scheduling.run inst).Sos.Schedule.makespan
  in
  let rows =
    par_map
      (fun pct ->
        let dw = ref [] and dl = ref [] in
        for rep = 1 to 20 do
          let rng = Rng.create (base_seed + (100 * rep) + int_of_float (pct *. 100.0)) in
          let specs =
            List.init (Sos.Instance.n inst) (fun i ->
                let j = Sos.Instance.job inst i in
                let noise =
                  1.0 +. ((Rng.float rng 2.0 -. 1.0) *. pct)
                in
                let req = max 1 (int_of_float (float_of_int j.Sos.Job.req *. noise)) in
                (j.Sos.Job.size, req))
          in
          let pert = Sos.Instance.create ~m:8 ~scale:inst.Sos.Instance.scale specs in
          let w = float_of_int (Sos.Fast.run pert).Sos.Schedule.makespan in
          let l = float_of_int (Baselines.List_scheduling.run pert).Sos.Schedule.makespan in
          dw := Float.abs ((w /. base_w) -. 1.0) :: !dw;
          dl := Float.abs ((l /. base_l) -. 1.0) :: !dl
        done;
        let mw, xw = ratios_summary (Array.of_list !dw) in
        let ml, xl = ratios_summary (Array.of_list !dl) in
        let pc x = Printf.sprintf "%.2f%%" (100.0 *. x) in
        [ Printf.sprintf "±%.0f%%" (100.0 *. pct); pc mw; pc xw; pc ml; pc xl ])
      [| 0.01; 0.05; 0.1; 0.25 |]
  in
  Array.iter (Table.add_row t) rows;
  Table.print t;
  note
    "the window algorithm's makespan tracks total work (smooth in the inputs); \
     list scheduling's packing decisions flip discretely."

(* A1: ablations on adversarial families. *)
let a1 () =
  section
    "A1 — ablation: default (fixed GrowWindowLeft) vs literal Listing 2 vs naive \
     fracture handling vs no MoveWindowRight, plus list scheduling for reference";
  note "makespans; lower is better. LB = Eq.(1) bound.";
  let t =
    Table.create
      [
        ("instance", Table.Left); ("LB", Table.Right); ("window", Table.Right);
        ("literal-growL", Table.Right); ("naive-fracture", Table.Right);
        ("no-move-right", Table.Right); ("list-sched", Table.Right);
      ]
  in
  let scale = Workload.Sos_gen.default_scale in
  let cases =
    [
      ("giant+dust m=8", Workload.Adversarial.giant_and_dust ~m:8 ~dust:200 ~scale);
      ("eps-pairs m=4", Workload.Adversarial.epsilon_pairs ~pairs:60 ~m:4 ~scale);
      ("fracture m=6", Workload.Adversarial.footnote_fracture ~m:6 ~scale);
      ("staircase m=6", Workload.Adversarial.staircase ~n:48 ~m:6 ~scale);
      ("hungry m=6", Workload.Adversarial.worst_case_ratio_family ~m:6 ~scale);
      ( "bimodal m=8",
        Workload.Sos_gen.generate (Rng.create (base_seed + 5)) Workload.Sos_gen.bimodal
          ~n:120 ~m:8 () );
    ]
  in
  List.iter
    (fun (name, inst) ->
      let mk f = (f inst).Sos.Schedule.makespan in
      Table.add_row t
        [
          name;
          Table.fmt_int (Sos.Bounds.lower_bound inst);
          Table.fmt_int (mk Sos.Fast.run);
          Table.fmt_int (mk Sos.Ablation.run_literal_grow_left);
          Table.fmt_int (mk Sos.Ablation.run_naive_fracture);
          Table.fmt_int (mk Sos.Ablation.run_no_move);
          Table.fmt_int (mk Baselines.List_scheduling.run);
        ])
    cases;
  Table.print t
