(* SAS experiments: T4 (Theorem 4.8 ratio and its o(1) decay) and T5
   (the per-task guarantees of Lemmas 4.1 and 4.2). *)

module Rng = Prelude.Rng
module Table = Prelude.Table
open Exp_common

let reps = 8

(* T4: sum of completion times vs the Lemma 4.3 lower bound. *)
let t4 () =
  section
    "T4 — Theorem 4.8: sum of task completion times of the combined T1/T2 \
     algorithm vs the Lemma 4.3 lower bound";
  note
    "guarantee (2+4/(m−3)) + o(1), the o(1) in the number of tasks k — the \
     measured ratio should approach/stay below the bound as k grows. %d \
     instances per cell, cloud-mix profile." reps;
  let t =
    Table.create
      [
        ("m", Table.Right); ("k tasks", Table.Right); ("mean ratio", Table.Right);
        ("max ratio", Table.Right); ("2+4/(m-3)", Table.Right);
        ("serial-SPT mean", Table.Right); ("|T1|/|T2| (avg)", Table.Left);
      ]
  in
  let ks = [ 10; 40; 160 ] in
  let rows =
    par_map
      (fun (m, k) ->
        let ratios = ref [] and serial_ratios = ref [] in
        let t1s = ref 0 and t2s = ref 0 in
        for rep = 0 to reps - 1 do
          let rng = Rng.create (base_seed + (4000 * rep) + (10 * k) + m) in
          let inst = Workload.Sas_gen.generate rng Workload.Sas_gen.cloud_mix ~k ~m () in
          let report = Sas.Combined.run inst in
          ratios := Sas.Combined.ratio report :: !ratios;
          let _, serial_sum = Sas.Serial.run report.Sas.Combined.instance in
          serial_ratios :=
            (float_of_int serial_sum /. float_of_int report.Sas.Combined.lower_bound)
            :: !serial_ratios;
          t1s := !t1s + report.Sas.Combined.t1_count;
          t2s := !t2s + report.Sas.Combined.t2_count
        done;
        let mean, mx = ratios_summary (Array.of_list !ratios) in
        let serial_mean, _ = ratios_summary (Array.of_list !serial_ratios) in
        let bound = Sas.Bounds.guarantee ~m in
        [
          Table.fmt_int m; Table.fmt_int k; Table.fmt_ratio mean; Table.fmt_ratio mx;
          Table.fmt_ratio bound; Table.fmt_ratio serial_mean;
          Printf.sprintf "%.1f/%.1f"
            (float_of_int !t1s /. float_of_int reps)
            (float_of_int !t2s /. float_of_int reps);
        ])
      (grid [ 8; 12; 16 ] ks)
  in
  Array.iteri
    (fun i row ->
      Table.add_row t row;
      if (i + 1) mod List.length ks = 0 then Table.add_sep t)
    rows;
  Table.print t

(* T5: the per-task completion bounds of Lemmas 4.1 and 4.2. *)
let t5 () =
  section
    "T5 — Lemmas 4.1/4.2: per-task completion times of Listings 3 and 4 against \
     their claimed prefix bounds (max over tasks of f_i / bound_i; must be ≤ 1)";
  let t =
    Table.create
      [
        ("lemma", Table.Left); ("m", Table.Right); ("k", Table.Right);
        ("worst f_i/bound_i", Table.Right); ("holds", Table.Left);
        ("Σf (alg)", Table.Right); ("Σbound", Table.Right);
      ]
  in
  let scale = Workload.Sos_gen.default_scale in
  List.iter
    (fun m ->
      List.iter
        (fun k ->
          (* Lemma 4.1 / Listing 3 on pure-T1 sets. *)
          let rng = Rng.create (base_seed + (7 * k) + m) in
          let m1 = m / 2 in
          let budget = (m1 - 1) * scale / (m - 1) in
          let tasks = Workload.Sas_gen.pure_t1 rng ~k ~m ~scale () in
          let sorted = Sas.Combined.sort_for_listing3 tasks in
          let r = Sas.Combined.run_listing3 ~m:m1 ~budget sorted in
          let bounds = Sas.Bounds.listing3_completion_bounds ~budget sorted in
          let worst = ref 0.0 and sum_b = ref 0 in
          Array.iteri
            (fun i f ->
              sum_b := !sum_b + bounds.(i);
              worst := max !worst (float_of_int f /. float_of_int bounds.(i)))
            r.Sas.Stream.completions;
          Table.add_row t
            [
              "4.1 (Listing 3)"; Table.fmt_int m; Table.fmt_int k; Table.fmt_ratio !worst;
              Table.fmt_bool_ok (!worst <= 1.0 +. 1e-9);
              Table.fmt_int (Sas.Stream.sum_completions r); Table.fmt_int !sum_b;
            ];
          (* Lemma 4.2 / Listing 4 on pure-T2 sets. *)
          let rng = Rng.create (base_seed + (11 * k) + m) in
          let m2 = m - (m / 2) in
          let budget = scale / 2 in
          let tasks = Workload.Sas_gen.pure_t2 rng ~k ~m ~scale () in
          let sorted = Sas.Combined.sort_for_listing4 tasks in
          let r = Sas.Combined.run_listing4 ~m:m2 ~budget sorted in
          let bounds = Sas.Bounds.listing4_completion_bounds ~m:m2 sorted in
          let worst = ref 0.0 and sum_b = ref 0 in
          Array.iteri
            (fun i f ->
              sum_b := !sum_b + bounds.(i);
              worst := max !worst (float_of_int f /. float_of_int bounds.(i)))
            r.Sas.Stream.completions;
          Table.add_row t
            [
              "4.2 (Listing 4)"; Table.fmt_int m; Table.fmt_int k; Table.fmt_ratio !worst;
              Table.fmt_bool_ok (!worst <= 1.0 +. 1e-9);
              Table.fmt_int (Sas.Stream.sum_completions r); Table.fmt_int !sum_b;
            ])
        [ 8; 32 ];
      Table.add_sep t)
    [ 6; 10; 16 ];
  Table.print t
