(* The benchmark harness: regenerates every experiment table/figure of
   EXPERIMENTS.md. Run everything: `dune exec bench/main.exe`; a subset:
   `dune exec bench/main.exe -- t1 t4 f1`. `-j N` sets the domain count for
   the parallel sweeps (default: all recommended domains); the tables are
   byte-identical at any -j — parallelism only moves wall clock. *)

let all : (string * string * (unit -> unit)) list =
  [
    ("t1", "Theorem 3.3 ratio, general sizes", Exp_sos.t1);
    ("t2", "Theorem 3.3 ratio, unit sizes + m-maximal variant", Exp_sos.t2);
    ( "t3", "Corollary 3.9 bin packing (exact + at scale)",
      fun () ->
        Exp_binpack.t3_small ();
        Exp_binpack.t3_large () );
    ("t4", "Theorem 4.8 SAS ratio", Exp_sas.t4);
    ("t5", "Lemmas 4.1/4.2 per-task bounds", Exp_sas.t5);
    ("t6", "crossover vs baselines", Exp_sos.t6);
    ( "t7", "running time (Bechamel + scaling)",
      fun () ->
        Exp_perf.t7_bechamel ();
        Exp_perf.t7_scaling () );
    ("gate", "perf gate: solver + RLE analytics → BENCH_fast.json", Exp_gate.gate);
    ("f1", "utilization profile figure", Exp_sos.f1);
    ("f2", "window trajectory figure", Exp_sos.f2);
    ("f3", "guarantee curve figure", Exp_sos.f3);
    ("a1", "ablations", Exp_sos.a1);
    ("e1", "extension: price of non-preemption", Exp_sos.e1);
    ("e2", "extension: joint vs fixed assignment", Exp_sos.e2);
    ("e3", "extension: online arrivals", Exp_sos.e3);
    ("e4", "extension: input stability", Exp_sos.e4);
    ("h1", "Theorem 2.1 hardness reduction demo", Exp_binpack.h1);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec strip_j acc = function
    | [] -> List.rev acc
    | ("-j" | "--domains") :: v :: rest ->
        (match int_of_string_opt v with
        | Some d when d >= 1 -> Exp_common.domains := d
        | _ ->
            Printf.eprintf "-j expects a positive integer (got %S)\n" v;
            exit 2);
        strip_j acc rest
    | a :: rest -> strip_j (a :: acc) rest
  in
  let args = strip_j [] args in
  (* `gate --check`: regression-check the solver rows against the committed
     BENCH_fast.json (exit 1 past GATE_MAX_REGRESSION_PCT) — the CI mode. *)
  if List.mem "--check" args then Exp_gate.check_mode := true;
  let args =
    List.filter
      (fun a -> a <> "--" && a <> "--table" && a <> "--figure" && a <> "--check")
      args
  in
  let selected =
    if args = [] then all
    else
      List.filter_map
        (fun a ->
          match List.find_opt (fun (id, _, _) -> id = a) all with
          | Some exp -> Some exp
          | None ->
              Printf.eprintf "unknown experiment %S (known: %s)\n" a
                (String.concat " " (List.map (fun (id, _, _) -> id) all));
              exit 2)
        args
  in
  Printf.printf
    "Sharing is Caring (SPAA 2017) — experiment harness\n\
     paper: Kling, Maecker, Riechers, Skopalik. All bounds refer to DESIGN.md /\n\
     EXPERIMENTS.md; every table is deterministic (fixed seeds).\n";
  let t0 = Prelude.Clock.now () in
  List.iter (fun (_, _, run) -> run ()) selected;
  Printf.printf "\ntotal: %.1f s\n" (Prelude.Clock.now () -. t0)
