(* Bin packing experiments: T3 (Corollary 3.9 vs baselines and exact
   optimum) and H1 (the Theorem 2.1 hardness reduction demo). *)

module Rng = Prelude.Rng
module Table = Prelude.Table
module P = Binpack.Packing
module A = Binpack.Algorithms
open Exp_common

(* T3a: true ratios against the exact optimum on small instances. *)
let t3_small () =
  section
    "T3a — bin packing with splittable items & cardinality constraint k: true \
     ratios vs the exact optimum (small instances, n = 9)";
  note
    "window = Corollary 3.9 algorithm (asymptotic 1+1/(k−1)); next-fit = Chung et \
     al.'s simple baseline (2−1/k). 40 instances per cell, item sizes uniform in \
     (0, 2] bins.";
  let t =
    Table.create
      [
        ("k", Table.Right); ("window mean", Table.Right); ("window max", Table.Right);
        ("1+1/(k-1)", Table.Right); ("next-fit mean", Table.Right);
        ("next-fit max", Table.Right); ("2-1/k", Table.Right);
      ]
  in
  List.iter
    (fun k ->
      let win = ref [] and nf = ref [] in
      for rep = 0 to 39 do
        let rng = Rng.create (base_seed + (100 * rep) + k) in
        let capacity = 1000 in
        let sizes = List.init 9 (fun _ -> Rng.int_in rng 1 (2 * capacity)) in
        let inst = P.instance ~k ~capacity sizes in
        match Exact.Binpack_exact.optimum ~node_limit:1_500_000 inst with
        | None -> ()
        | Some opt ->
            let opt = float_of_int opt in
            win := (float_of_int (P.bins_used (A.window inst)) /. opt) :: !win;
            nf := (float_of_int (P.bins_used (A.next_fit inst)) /. opt) :: !nf
      done;
      let wmean, wmax = ratios_summary (Array.of_list !win) in
      let nmean, nmax = ratios_summary (Array.of_list !nf) in
      Table.add_row t
        [
          Table.fmt_int k; Table.fmt_ratio wmean; Table.fmt_ratio wmax;
          Table.fmt_ratio (A.guarantee_window ~k); Table.fmt_ratio nmean;
          Table.fmt_ratio nmax; Table.fmt_ratio (A.guarantee_next_fit ~k);
        ])
    [ 2; 3; 4; 8 ];
  Table.print t

(* T3b: large instances vs the lower bound: the 1+1/(k−1) vs 2−1/k shape —
   the window algorithm keeps improving with k while NextFit approaches 2
   on its bad families. *)
let t3_large () =
  section
    "T3b — bin packing at scale (n = 400): bins used vs lower bound; \
     adversarial half-capacity items (NextFit's bad case) and uniform items";
  let t =
    Table.create
      [
        ("family", Table.Left); ("k", Table.Right); ("LB", Table.Right);
        ("window", Table.Right); ("w/LB", Table.Right); ("next-fit", Table.Right);
        ("nf/LB", Table.Right); ("nf-decr", Table.Right); ("first-fit", Table.Right);
      ]
  in
  let capacity = 720720 in
  let families =
    [
      ( "uniform(0,1]",
        fun rng -> List.init 400 (fun _ -> Rng.int_in rng 1 capacity) );
      ( "half±eps",
        fun rng ->
          List.init 400 (fun i ->
              if i mod 2 = 0 then (capacity / 2) + 1 + Rng.int rng 3
              else (capacity / 2) - 1 - Rng.int rng 3) );
      ( "tiny+big mix",
        fun rng ->
          List.init 400 (fun _ ->
              if Rng.float rng 1.0 < 0.8 then Rng.int_in rng 1 (capacity / 50)
              else Rng.int_in rng (capacity / 2) capacity) );
    ]
  in
  List.iter
    (fun (name, gen) ->
      List.iter
        (fun k ->
          let rng = Rng.create (base_seed + (17 * k)) in
          let inst = P.instance ~k ~capacity (gen rng) in
          let lb = P.lower_bound inst in
          let w = P.bins_used (A.window inst) in
          let nf = P.bins_used (A.next_fit inst) in
          let nfd = P.bins_used (A.next_fit_decreasing inst) in
          let ff = P.bins_used (A.first_fit inst) in
          Table.add_row t
            [
              name; Table.fmt_int k; Table.fmt_int lb; Table.fmt_int w;
              Table.fmt_ratio (float_of_int w /. float_of_int lb); Table.fmt_int nf;
              Table.fmt_ratio (float_of_int nf /. float_of_int lb); Table.fmt_int nfd;
              Table.fmt_int ff;
            ])
        [ 2; 4; 8; 16 ];
      Table.add_sep t)
    families;
  Table.print t

(* H1: the hardness reduction in action. *)
let h1 () =
  section
    "H1 — Theorem 2.1 demo: 3-Partition ↔ splittable bin packing (k = 3): the \
     packing optimum equals q exactly on YES instances and exceeds it on NO \
     instances";
  let t =
    Table.create
      [
        ("numbers", Table.Left); ("q", Table.Right); ("3-partition", Table.Left);
        ("packing OPT", Table.Right); ("gap holds", Table.Left);
        ("window bins", Table.Right);
      ]
  in
  let cases =
    [
      [ 26; 35; 39; 30; 30; 40 ];
      [ 30; 30; 45; 26; 35; 34 ];
      [ 27; 38; 35; 28; 33; 39 ];
      [ 33; 33; 34; 26; 37; 37; 30; 31; 39 ];
      [ 26; 26; 48; 27; 28; 45; 30; 35; 35 ];
      [ 30; 30; 45; 26; 35; 34; 33; 33; 34 ];
    ]
  in
  List.iter
    (fun numbers ->
      let tp = Exact.Three_partition.create numbers in
      let yes = Exact.Three_partition.solvable tp in
      let q = Exact.Three_partition.yes_gap tp in
      let opt =
        Exact.Binpack_exact.optimum_exn ~node_limit:5_000_000
          (Exact.Three_partition.to_binpack tp)
      in
      let win =
        P.bins_used (A.window (Exact.Three_partition.to_binpack tp))
      in
      let holds = if yes then opt = q else opt > q in
      Table.add_row t
        [
          String.concat "," (List.map string_of_int numbers); Table.fmt_int q;
          (if yes then "YES" else "NO"); Table.fmt_int opt; Table.fmt_bool_ok holds;
          Table.fmt_int win;
        ])
    cases;
  Table.print t;
  note
    "and the cardinality-2 gadget (this repo's reconstruction of the full-version \
     m = 2 hardness; item a → 4t+6a, capacity 9t, threshold 2q):";
  let t2 =
    Table.create
      [
        ("numbers", Table.Left); ("2q", Table.Right); ("3-partition", Table.Left);
        ("packing OPT (k=2)", Table.Right); ("gap holds", Table.Left);
      ]
  in
  List.iter
    (fun numbers ->
      let tp = Exact.Three_partition.create numbers in
      let yes = Exact.Three_partition.solvable tp in
      let gap = Exact.Three_partition.k2_gap tp in
      let opt =
        Exact.Binpack_exact.optimum_exn ~node_limit:8_000_000
          (Exact.Three_partition.to_binpack_k2 tp)
      in
      let holds = if yes then opt = gap else opt > gap in
      Table.add_row t2
        [
          String.concat "," (List.map string_of_int numbers); Table.fmt_int gap;
          (if yes then "YES" else "NO"); Table.fmt_int opt; Table.fmt_bool_ok holds;
        ])
    [
      [ 26; 35; 39; 30; 30; 40 ];
      [ 30; 30; 45; 26; 35; 34 ];
      [ 27; 38; 35; 28; 33; 39 ];
    ];
  Table.print t2
