(* T7: the running-time claims. Theorem 3.3: O((m+n)·n), independent of the
   processing volumes; the step-by-step Listing 1 is pseudo-polynomial.
   Bechamel measures wall time; the iteration counter of Fast.run_count
   shows the combinatorial work directly. *)

module Rng = Prelude.Rng
module Table = Prelude.Table
module Clock = Prelude.Clock
open Exp_common
open Bechamel
open Toolkit

let make_instance ~n ~m ~pmax seed =
  let rng = Rng.create (base_seed + seed) in
  let scale = 720720 in
  let specs =
    List.init n (fun _ -> (Rng.int_in rng 1 pmax, Rng.int_in rng 1 scale))
  in
  Sos.Instance.create ~m ~scale specs

let bechamel_run tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  Analyze.merge ols instances results

let t7_bechamel () =
  section "T7a — wall-clock per run (Bechamel, monotonic clock)";
  note
    "the window algorithm (Fast) across n at m = 16; Listing 1 (step-by-step) and \
     the baselines at n = 200 for comparison. Volumes 1–20.";
  let named =
    List.concat_map
      (fun n ->
        let inst = make_instance ~n ~m:16 ~pmax:20 (3 * n) in
        [ (Printf.sprintf "fast n=%4d" n, fun () -> ignore (Sos.Fast.run inst)) ])
      [ 100; 200; 400; 800; 1600 ]
    @ (let inst = make_instance ~n:200 ~m:16 ~pmax:20 999 in
       [
         ("listing1 n= 200", fun () -> ignore (Sos.Listing1.run inst));
         ("list-sched n= 200", fun () -> ignore (Baselines.List_scheduling.run inst));
         ("greedy n= 200", fun () -> ignore (Baselines.Greedy_fair.run inst));
         ("splittable(unit) n= 200",
          fun () ->
            ignore
              (Sos.Splittable.run
                 (Workload.Sos_gen.generate (Rng.create 4)
                    (Workload.Sos_gen.unit_of Workload.Sos_gen.uniform_wide)
                    ~n:200 ~m:16 ())));
       ])
  in
  let tests =
    Test.make_grouped ~name:"t7"
      (List.map (fun (name, fn) -> Test.make ~name (Staged.stage fn)) named)
  in
  let results = bechamel_run tests in
  let t =
    Table.create [ ("benchmark", Table.Left); ("time/run", Table.Right) ]
  in
  let clock = Measure.label Instance.monotonic_clock in
  let tbl = Hashtbl.find results clock in
  (* Sort rows by benchmark name before they ever reach the table:
     bechamel hands results back as a Hashtbl whose iteration order is
     unspecified (lint rule R5). *)
  let rows =
    (Hashtbl.fold
    [@sos.allow "R5: the fold only gathers (name, estimate) pairs; they are sorted by name \
                 below before any row is rendered"])
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with Some (x :: _) -> x | _ -> nan
        in
        (name, ns) :: acc)
      tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, ns) ->
      let cell =
        if Float.is_nan ns then "n/a"
        else if ns > 1e6 then Printf.sprintf "%8.3f ms" (ns /. 1e6)
        else Printf.sprintf "%8.3f us" (ns /. 1e3)
      in
      Table.add_row t [ name; cell ])
    rows;
  Table.print t

let t7_scaling () =
  section
    "T7b — O((m+n)·n) in practice: simulated loop iterations of the fast solver \
     are independent of the processing volumes (pseudo-polynomial Listing 1 is \
     not)";
  let t =
    Table.create
      [
        ("n", Table.Right); ("max p_j", Table.Right); ("makespan", Table.Right);
        ("fast iterations", Table.Right); ("fast time", Table.Right);
        ("listing1 time", Table.Right);
      ]
  in
  List.iter
    (fun (n, pmax) ->
      let inst = make_instance ~n ~m:8 ~pmax (7 * n * pmax) in
      let (sched, iters), fast_time = Clock.time_it (fun () -> Sos.Fast.run_count inst) in
      let listing1_time =
        if Sos.Instance.total_volume inst <= 50_000 then begin
          let _, dt = Clock.time_it (fun () -> Sos.Listing1.run inst) in
          Printf.sprintf "%.3f s" dt
        end
        else "skipped (pseudo-poly)"
      in
      Table.add_row t
        [
          Table.fmt_int n; Table.fmt_int pmax; Table.fmt_int sched.Sos.Schedule.makespan;
          Table.fmt_int iters; Printf.sprintf "%.3f s" fast_time; listing1_time;
        ])
    [
      (50, 10); (50, 1000); (50, 100_000); (50, 10_000_000);
      (200, 10); (200, 100_000);
      (800, 10); (800, 100_000);
      (3200, 100_000);
    ];
  Table.print t;
  note
    "fast iterations track n (not Σp_j): the jump rule of the proof of Theorem \
     3.3 compresses every no-completion run of steps."
