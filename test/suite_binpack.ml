(* Tests for splittable bin packing with cardinality constraints:
   validator, baselines, the Corollary 3.9 window algorithm, and the exact
   solver as ground truth. *)

module P = Binpack.Packing
module A = Binpack.Algorithms
module Rng = Prelude.Rng

let check_packing inst packing =
  match P.validate inst packing with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "invalid packing: %s" msg

let test_validator_accepts () =
  let inst = P.instance ~k:2 ~capacity:10 [ 6; 6; 8 ] in
  let packing = [ [ (0, 6); (1, 4) ]; [ (1, 2); (2, 8) ] ] in
  check_packing inst packing

let test_validator_rejects () =
  let inst = P.instance ~k:2 ~capacity:10 [ 6; 6; 8 ] in
  let over = [ [ (0, 6); (1, 6) ]; [ (2, 8) ] ] in
  Alcotest.(check bool) "overfull rejected" true (Result.is_error (P.validate inst over));
  let cardinality = [ [ (0, 3); (1, 3); (2, 4) ]; [ (0, 3); (1, 3); (2, 4) ] ] in
  Alcotest.(check bool) "cardinality rejected" true
    (Result.is_error (P.validate inst cardinality));
  let missing = [ [ (0, 6); (1, 4) ]; [ (1, 2); (2, 7) ] ] in
  Alcotest.(check bool) "underpacked rejected" true
    (Result.is_error (P.validate inst missing));
  let split_in_bin = [ [ (0, 3); (0, 3) ]; [ (1, 6); (2, 4) ]; [ (2, 4) ] ] in
  Alcotest.(check bool) "split within a bin rejected" true
    (Result.is_error (P.validate inst split_in_bin))

let test_lower_bound () =
  let inst = P.instance ~k:2 ~capacity:10 [ 6; 6; 8 ] in
  Alcotest.(check int) "lb = max(2, 2)" 2 (P.lower_bound inst);
  let inst2 = P.instance ~k:2 ~capacity:100 [ 1; 1; 1; 1; 1 ] in
  Alcotest.(check int) "cardinality-driven lb" 3 (P.lower_bound inst2)

let test_fragments () =
  Alcotest.(check int) "no splits" 0 (P.fragments [ [ (0, 5) ]; [ (1, 5) ] ]);
  Alcotest.(check int) "one split" 1 (P.fragments [ [ (0, 5); (1, 2) ]; [ (1, 3) ] ])

let random_inst rng =
  let k = Rng.int_in rng 1 5 in
  let capacity = Rng.int_in rng 4 60 in
  let n = Rng.int_in rng 1 9 in
  P.instance ~k ~capacity (List.init n (fun _ -> Rng.int_in rng 1 (2 * capacity)))

let for_random ?(count = 300) name f =
  Alcotest.test_case name `Quick (fun () ->
      for seed = 1 to count do
        let rng = Rng.create (seed * 677) in
        let inst = random_inst rng in
        try f inst
        with e ->
          Alcotest.failf "%s: seed %d (k=%d cap=%d sizes=%s): %s" name seed
            inst.P.k inst.P.capacity
            (String.concat "," (List.map string_of_int (Array.to_list inst.P.sizes)))
            (Printexc.to_string e)
      done)

let prop_algorithms_valid inst =
  check_packing inst (A.next_fit inst);
  check_packing inst (A.next_fit_decreasing inst);
  check_packing inst (A.next_fit_increasing inst);
  check_packing inst (A.first_fit inst);
  check_packing inst (A.first_fit_decreasing inst);
  check_packing inst (A.window inst)

let prop_window_vs_exact inst =
  match Exact.Binpack_exact.optimum ~node_limit:400_000 inst with
  | None -> ()
  | Some opt ->
      let win = P.bins_used (A.window inst) in
      let lb = P.lower_bound inst in
      if opt < lb then Alcotest.failf "exact %d below lower bound %d" opt lb;
      if win < opt then Alcotest.failf "window %d beats exact %d (exactness bug)" win opt;
      if inst.P.k >= 2 then begin
        (* Cor 3.9 asymptotic guarantee, with +1 additive slack. *)
        let bound = A.guarantee_window ~k:inst.P.k in
        if float_of_int win > (bound *. float_of_int opt) +. 1.0 +. 1e-9 then
          Alcotest.failf "window %d exceeds (1+1/(k-1))·opt+1 with opt=%d k=%d" win opt
            inst.P.k
      end

let prop_next_fit_vs_exact inst =
  (* NextFit also has a guarantee (2−1/k asymptotic); check generously. *)
  match Exact.Binpack_exact.optimum ~node_limit:400_000 inst with
  | None -> ()
  | Some opt ->
      let nf = P.bins_used (A.next_fit inst) in
      if nf < opt then Alcotest.failf "next_fit %d beats exact %d" nf opt;
      let bound = A.guarantee_next_fit ~k:inst.P.k in
      if float_of_int nf > (bound *. float_of_int opt) +. 2.0 +. 1e-9 then
        Alcotest.failf "next_fit %d far above guarantee (opt=%d, k=%d)" nf opt inst.P.k

let test_exact_known_cases () =
  (* 3 items of 0.6, k=2: LB=2 but opt=3? Capacity 10, sizes 6,6,6: two bins
     hold ≤ 2 items… bins: [6,4][2,6]… wait: bin1={a:6,b:4}, bin2={b:2,c:6}
     total 18 ≤ 20 ✓ → opt 2. *)
  let inst = P.instance ~k:2 ~capacity:10 [ 6; 6; 6 ] in
  Alcotest.(check int) "three 0.6 items, k=2" 2 (Exact.Binpack_exact.optimum_exn inst);
  (* k=1: items cannot share bins: every item of size s needs ⌈s/cap⌉ bins
     — and parts cannot share either, so opt = Σ ⌈s_i/cap⌉. *)
  let inst1 = P.instance ~k:1 ~capacity:10 [ 6; 6; 25 ] in
  Alcotest.(check int) "k=1 separate bins" 5 (Exact.Binpack_exact.optimum_exn inst1);
  (* A single item larger than a bin: must split across ⌈15/10⌉ = 2 bins. *)
  let inst2 = P.instance ~k:3 ~capacity:10 [ 15 ] in
  Alcotest.(check int) "oversize item" 2 (Exact.Binpack_exact.optimum_exn inst2);
  (* Cardinality binds: 5 unit items, k=2 → ⌈5/2⌉ = 3. *)
  let inst3 = P.instance ~k:2 ~capacity:100 [ 1; 1; 1; 1; 1 ] in
  Alcotest.(check int) "cardinality binds" 3 (Exact.Binpack_exact.optimum_exn inst3);
  Alcotest.(check (option int)) "empty" (Some 0)
    (Exact.Binpack_exact.optimum (P.instance ~k:2 ~capacity:10 []))

let test_exact_matches_brute_small () =
  (* Cross-check the normal-form search against simple enumeration for
     whole-item packings on instances where splitting cannot help:
     all sizes equal capacity/2 and k ≥ 2 → opt = ⌈n/2⌉ bins. *)
  for n = 1 to 7 do
    let inst = P.instance ~k:2 ~capacity:10 (List.init n (fun _ -> 5)) in
    Alcotest.(check int)
      (Printf.sprintf "n=%d half-size items" n)
      ((n + 1) / 2)
      (Exact.Binpack_exact.optimum_exn inst)
  done

let test_exact_witness () =
  (* The reconstructed optimal packing is a genuine certificate: it
     validates and uses exactly [optimum] bins. *)
  for seed = 1 to 120 do
    let rng = Rng.create (seed * 1301) in
    let inst = random_inst rng in
    match Exact.Binpack_exact.optimum_packing ~node_limit:400_000 inst with
    | None -> ()
    | Some (opt, packing) ->
        (match P.validate inst packing with
        | Ok () -> ()
        | Error msg ->
            Alcotest.failf "seed %d: witness invalid: %s (k=%d cap=%d sizes=%s)" seed msg
              inst.P.k inst.P.capacity
              (String.concat ","
                 (List.map string_of_int (Array.to_list inst.P.sizes))));
        if P.bins_used packing <> opt then
          Alcotest.failf "seed %d: witness uses %d bins, optimum is %d" seed
            (P.bins_used packing) opt;
        (match Exact.Binpack_exact.optimum ~node_limit:400_000 inst with
        | Some opt' ->
            if opt <> opt' then Alcotest.failf "seed %d: optimum mismatch" seed
        | None -> ())
  done

let test_schedule_packing_roundtrip () =
  (* window packing → unit-size schedule (via Splittable.run) → packing
     (via of_unit_schedule): valid and same bin count. *)
  for seed = 1 to 80 do
    let rng = Rng.create (seed * 1201) in
    let inst = random_inst rng in
    if inst.P.k >= 2 then begin
      let sos_inst =
        Sos.Instance.create ~m:inst.P.k ~scale:inst.P.capacity
          (Array.to_list (Array.map (fun s -> (1, s)) inst.P.sizes))
      in
      let sched = Sos.Splittable.run sos_inst in
      let packing = A.of_unit_schedule sched in
      (match P.validate inst packing with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "seed %d: roundtrip packing invalid: %s" seed msg);
      Alcotest.(check int) "bin count preserved" sched.Sos.Schedule.makespan
        (P.bins_used packing)
    end
  done

let test_window_matches_splittable_run () =
  (* Corollary 3.9 path consistency: window packing bins = makespan of the
     unit-size SoS algorithm on the corresponding instance. *)
  for seed = 1 to 100 do
    let rng = Rng.create (seed * 911) in
    let inst = random_inst rng in
    if inst.P.k >= 2 then begin
      let sos_inst =
        Sos.Instance.create ~m:inst.P.k ~scale:inst.P.capacity
          (Array.to_list (Array.map (fun s -> (1, s)) inst.P.sizes))
      in
      let bins = P.bins_used (A.window inst) in
      let sched = Sos.Splittable.run sos_inst in
      Alcotest.(check int) "bins = makespan" bins sched.Sos.Schedule.makespan
    end
  done

let qcheck_next_fit_never_below_lb =
  Helpers.qcheck "next_fit ≥ lower bound"
    QCheck.(
      pair (int_range 1 4)
        (list_of_size Gen.(int_range 1 10) (int_range 1 30)))
    (fun (k, sizes) ->
      let inst = P.instance ~k ~capacity:20 sizes in
      P.bins_used (A.next_fit inst) >= P.lower_bound inst)

let qcheck_first_fit_sound =
  Helpers.qcheck "first_fit ≥ lower bound and uses no empty bins"
    QCheck.(
      pair (int_range 1 4)
        (list_of_size Gen.(int_range 1 12) (int_range 1 30)))
    (fun (k, sizes) ->
      let inst = P.instance ~k ~capacity:20 sizes in
      let packing = A.first_fit inst in
      P.bins_used packing >= P.lower_bound inst
      && List.for_all (fun bin -> bin <> []) packing)

let suite =
  ( "binpack",
    [
      Alcotest.test_case "validator accepts" `Quick test_validator_accepts;
      Alcotest.test_case "validator rejects" `Quick test_validator_rejects;
      Alcotest.test_case "lower bound" `Quick test_lower_bound;
      Alcotest.test_case "fragments" `Quick test_fragments;
      for_random "all algorithms produce valid packings" prop_algorithms_valid;
      for_random ~count:200 "window vs exact (Cor 3.9)" prop_window_vs_exact;
      for_random ~count:150 "next_fit vs exact" prop_next_fit_vs_exact;
      Alcotest.test_case "exact solver known cases" `Quick test_exact_known_cases;
      Alcotest.test_case "exact solver half-size items" `Quick test_exact_matches_brute_small;
      Alcotest.test_case "exact witness packing" `Quick test_exact_witness;
      Alcotest.test_case "schedule ↔ packing roundtrip" `Quick
        test_schedule_packing_roundtrip;
      Alcotest.test_case "window = splittable makespan" `Quick
        test_window_matches_splittable_run;
      qcheck_next_fit_never_below_lb;
      qcheck_first_fit_sound;
    ] )
