(* Tests for the prelude substrate: PRNG, statistics, tables, ASCII plots. *)

module Rng = Prelude.Rng
module Stats = Prelude.Stats
module Table = Prelude.Table

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xa = Rng.bits64 a and xb = Rng.bits64 b in
  Alcotest.(check bool) "split streams differ" true (xa <> xb)

let test_rng_copy () =
  let a = Rng.create 13 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy replays" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_bounds () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 10 in
    Alcotest.(check bool) "int in range" true (x >= 0 && x < 10);
    let y = Rng.int_in rng 5 9 in
    Alcotest.(check bool) "int_in in range" true (y >= 5 && y <= 9);
    let f = Rng.float rng 2.5 in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 2.5)
  done

let test_rng_uniformity () =
  let rng = Rng.create 99 in
  let buckets = Array.make 10 0 in
  let samples = 100_000 in
  for _ = 1 to samples do
    let x = Rng.int rng 10 in
    buckets.(x) <- buckets.(x) + 1
  done;
  Array.iter
    (fun c ->
      let expected = samples / 10 in
      Alcotest.(check bool) "bucket within 5%" true (abs (c - expected) < expected / 20))
    buckets

let test_rng_shuffle_permutes () =
  let rng = Rng.create 3 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_stats_basic () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean xs);
  Alcotest.(check (float 1e-6)) "stddev" 1.2909944487 (Stats.stddev xs);
  Alcotest.(check (float 1e-9)) "p50" 2.5 (Stats.percentile xs 0.5);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p100" 4.0 (Stats.percentile xs 1.0)

let test_stats_empty_and_singleton () =
  Alcotest.(check (float 0.0)) "mean empty" 0.0 (Stats.mean [||]);
  Alcotest.(check (float 0.0)) "stddev singleton" 0.0 (Stats.stddev [| 5.0 |]);
  Alcotest.check_raises "summarize empty"
    (Invalid_argument "Stats.summarize: empty array") (fun () ->
      ignore (Stats.summarize [||]))

let test_stats_geomean () =
  Alcotest.(check (float 1e-9)) "geometric mean" 2.0
    (Stats.geometric_mean [| 1.0; 2.0; 4.0 |])

let test_stats_summary_order () =
  let xs = [| 9.0; 1.0; 5.0; 3.0; 7.0 |] in
  let s = Stats.summarize xs in
  Alcotest.(check (float 0.0)) "min" 1.0 s.Stats.min;
  Alcotest.(check (float 0.0)) "max" 9.0 s.Stats.max;
  Alcotest.(check (float 0.0)) "p50" 5.0 s.Stats.p50;
  Alcotest.(check int) "count" 5 s.Stats.count

let test_clock_best_of_guard () =
  (* best_of must reject non-positive repetition counts loudly — a k ≤ 0
     would silently return garbage timings otherwise. *)
  Alcotest.check_raises "k = 0 rejected" (Invalid_argument "Clock.best_of: k < 1")
    (fun () -> ignore (Prelude.Clock.best_of ~k:0 (fun () -> ())));
  Alcotest.check_raises "negative k rejected"
    (Invalid_argument "Clock.best_of: k < 1") (fun () ->
      ignore (Prelude.Clock.best_of ~k:(-3) (fun () -> ())));
  let x, t = Prelude.Clock.best_of ~k:1 (fun () -> 41) in
  Alcotest.(check int) "k = 1 still runs" 41 x;
  Alcotest.(check bool) "time non-negative" true (t >= 0.0)

let test_table_renders () =
  let t = Table.create ~title:"demo" [ ("name", Table.Left); ("v", Table.Right) ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_sep t;
  Table.add_row t [ "b"; "22" ];
  let out = Table.render t in
  Alcotest.(check bool) "contains title" true
    (String.length out > 0 && String.sub out 0 2 = "==");
  Alcotest.(check bool) "right-aligned" true
    (let lines = String.split_on_char '\n' out in
     List.exists (fun l -> l = "b     | 22") lines)

let test_table_arity () =
  let t = Table.create [ ("a", Table.Left); ("b", Table.Left) ] in
  Alcotest.check_raises "arity mismatch" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "only one" ])

let test_sparkline () =
  Alcotest.(check string) "empty" "" (Prelude.Ascii_plot.sparkline [||]);
  let s = Prelude.Ascii_plot.sparkline [| 0.0; 1.0 |] in
  Alcotest.(check int) "length" 2 (String.length s);
  Alcotest.(check bool) "low then high" true (s.[0] = '_' && s.[1] = '@')

let test_bars () =
  let out = Prelude.Ascii_plot.bars ~width:10 ~labels:[| "x"; "y" |] [| 1.0; 2.0 |] in
  Alcotest.(check bool) "two lines" true
    (List.length (String.split_on_char '\n' (String.trim out)) = 2)

let qcheck_percentile_monotone =
  Helpers.qcheck "percentile monotone in p"
    QCheck.(pair (array_of_size Gen.(int_range 1 50) (float_range 0.0 100.0))
              (pair (float_range 0.0 1.0) (float_range 0.0 1.0)))
    (fun (xs, (p1, p2)) ->
      let lo = min p1 p2 and hi = max p1 p2 in
      Stats.percentile xs lo <= Stats.percentile xs hi +. 1e-9)

let qcheck_mean_bounds =
  Helpers.qcheck "mean between min and max"
    QCheck.(array_of_size Gen.(int_range 1 50) (float_range (-100.0) 100.0))
    (fun xs ->
      let s = Stats.summarize xs in
      s.Stats.min -. 1e-9 <= s.Stats.mean && s.Stats.mean <= s.Stats.max +. 1e-9)

let suite =
  ( "prelude",
    [
      Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
      Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
      Alcotest.test_case "rng split" `Quick test_rng_split_independent;
      Alcotest.test_case "rng copy" `Quick test_rng_copy;
      Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
      Alcotest.test_case "rng uniformity" `Quick test_rng_uniformity;
      Alcotest.test_case "rng shuffle" `Quick test_rng_shuffle_permutes;
      Alcotest.test_case "stats basic" `Quick test_stats_basic;
      Alcotest.test_case "stats empty/singleton" `Quick test_stats_empty_and_singleton;
      Alcotest.test_case "stats geomean" `Quick test_stats_geomean;
      Alcotest.test_case "stats summary order" `Quick test_stats_summary_order;
      Alcotest.test_case "clock best_of guard" `Quick test_clock_best_of_guard;
      Alcotest.test_case "table renders" `Quick test_table_renders;
      Alcotest.test_case "table arity" `Quick test_table_arity;
      Alcotest.test_case "sparkline" `Quick test_sparkline;
      Alcotest.test_case "bars" `Quick test_bars;
      qcheck_percentile_monotone;
      qcheck_mean_bounds;
    ] )
