(* Tests for the SAS (Section 4) machinery: task classification, the
   Listing 3/4 stream schedulers and their per-task guarantees (Lemmas 4.1
   and 4.2), the Lemma 4.3 lower bounds, and the combined Theorem 4.8
   algorithm. *)

module Rng = Prelude.Rng
open Sas

let test_task_basics () =
  let t = Task.v ~id:0 [ 3; 1; 2 ] in
  Alcotest.(check int) "size" 3 (Task.size t);
  Alcotest.(check int) "total req" 6 (Task.total_req t);
  Alcotest.check_raises "empty task" (Invalid_argument "Task.v: empty task") (fun () ->
      ignore (Task.v ~id:0 []))

let test_classification () =
  (* m = 5, scale = 100: T1 iff |T|·100 < 4·r(T) ⇔ avg req > 25. *)
  let high = Task.v ~id:0 [ 30; 30 ] in
  let low = Task.v ~id:1 [ 20; 20 ] in
  let boundary = Task.v ~id:2 [ 25 ] in
  Alcotest.(check bool) "high" true (Task.is_high high ~m:5 ~scale:100);
  Alcotest.(check bool) "low" false (Task.is_high low ~m:5 ~scale:100);
  Alcotest.(check bool) "boundary goes to T2" false (Task.is_high boundary ~m:5 ~scale:100)

let test_partition () =
  let inst =
    Sas_instance.create ~m:5 ~scale:100 [ [ 30; 30 ]; [ 20; 20 ]; [ 100 ]; [ 1; 1; 1 ] ]
  in
  let t1, t2 = Sas_instance.partition inst in
  Alcotest.(check (list int)) "t1 ids" [ 0; 2 ] (List.map (fun t -> t.Task.id) t1);
  Alcotest.(check (list int)) "t2 ids" [ 1; 3 ] (List.map (fun t -> t.Task.id) t2)

let test_normalize_scale () =
  let inst = Sas_instance.create ~m:6 ~scale:7 [ [ 3 ]; [ 5; 2 ] ] in
  let n = Sas_instance.normalize_scale inst in
  Alcotest.(check int) "divisible by 2(m-1)" 0 (n.Sas_instance.scale mod 10);
  (* ratios preserved *)
  let factor = n.Sas_instance.scale / 7 in
  Alcotest.(check int) "req scaled" (3 * factor)
    n.Sas_instance.tasks.(0).Task.reqs.(0)

let test_stream_single_task () =
  (* One task, 4 jobs of 25/100, m = 4, budget = 100: windows of size
     min(4, ⌊100·3/100⌋+1) = 4 → all 4 jobs in step 1. *)
  let r = Stream.run ~m:4 ~budget:100 [ Task.v ~id:0 [ 25; 25; 25; 25 ] ] in
  Alcotest.(check int) "completed at 1" 1 r.Stream.completions.(0);
  Alcotest.(check int) "makespan" 1 r.Stream.makespan

let test_stream_whole_task_fast_path () =
  (* Two tiny tasks fit together in one step. *)
  let tasks = [ Task.v ~id:0 [ 10; 10 ]; Task.v ~id:1 [ 10 ]; Task.v ~id:2 [ 90; 90 ] ] in
  let r = Stream.run ~m:4 ~budget:100 tasks in
  Alcotest.(check int) "task0 step1" 1 r.Stream.completions.(0);
  Alcotest.(check int) "task1 step1" 1 r.Stream.completions.(1);
  Alcotest.(check bool) "task2 later" true (r.Stream.completions.(2) > 1)

let test_stream_conservation () =
  for seed = 1 to 150 do
    let rng = Rng.create (seed * 17) in
    let m = Rng.int_in rng 2 8 in
    let budget = Rng.int_in rng 10 300 in
    let k = Rng.int_in rng 1 8 in
    let tasks =
      List.init k (fun id ->
          Task.v ~id
            (List.init (Rng.int_in rng 1 10) (fun _ -> Rng.int_in rng 1 (budget * 2))))
    in
    let r = Stream.run ~m ~budget tasks in
    (* The library's own audit must agree... *)
    (match Stream.check ~m ~budget tasks r with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "seed %d: Stream.check: %s" seed msg);
    (* ...and so must this test's independent re-derivation below. *)
    List.iter
      (fun step ->
        let used = List.fold_left (fun acc a -> acc + a.Stream.amount) 0 step in
        if used > budget then Alcotest.failf "seed %d: budget overused (%d>%d)" seed used budget;
        if List.length step > m then
          Alcotest.failf "seed %d: too many jobs in a step" seed)
      r.Stream.steps;
    (* Full work conservation per (task, item). *)
    let expect = Hashtbl.create 16 in
    List.iteri
      (fun pos task ->
        Array.iteri (fun i req -> Hashtbl.replace expect (pos, i) req) task.Task.reqs)
      tasks;
    List.iter
      (List.iter (fun a ->
           let key = (a.Stream.task, a.Stream.item) in
           let left = Hashtbl.find expect key - a.Stream.amount in
           Hashtbl.replace expect key left))
      r.Stream.steps;
    (Hashtbl.iter
       (fun (t, i) left ->
         if left <> 0 then Alcotest.failf "seed %d: task %d item %d left %d" seed t i left)
       expect
    [@sos.allow "R5: order-free universal assertion over all entries; nothing is emitted or digested"]);
    (* Completion times match the last allocation step of each task. *)
    List.iteri
      (fun pos _ ->
        let last = ref 0 in
        List.iteri
          (fun step_idx step ->
            if List.exists (fun a -> a.Stream.task = pos) step then last := step_idx + 1)
          r.Stream.steps;
        if !last <> r.Stream.completions.(pos) then
          Alcotest.failf "seed %d: completion mismatch task %d (%d vs %d)" seed pos !last
            r.Stream.completions.(pos))
      tasks
  done

let test_lemma_4_1 () =
  (* Listing 3 on pure-T1 task sets: f_i ≤ ⌈Σ_{l≤i} r(T_l) / R⌉. *)
  for seed = 1 to 80 do
    let rng = Rng.create (seed * 211) in
    let m = 4 + 2 * (seed mod 5) in
    let scale = Workload.Sos_gen.default_scale in
    let m1 = m / 2 in
    let budget = (m1 - 1) * scale / (m - 1) in
    let tasks = Workload.Sas_gen.pure_t1 rng ~k:(Rng.int_in rng 1 8) ~m ~scale () in
    let sorted = Combined.sort_for_listing3 tasks in
    let r = Combined.run_listing3 ~m:m1 ~budget sorted in
    let bounds = Bounds.listing3_completion_bounds ~budget sorted in
    Array.iteri
      (fun pos f ->
        if f > bounds.(pos) then
          Alcotest.failf "seed %d m=%d: Lemma 4.1 violated at task %d: f=%d bound=%d"
            seed m pos f bounds.(pos))
      r.Stream.completions
  done

let test_lemma_4_2 () =
  (* Listing 4 on pure-T2 task sets: f_i ≤ ⌈Σ_{l≤i} |T_l| / (m'−1)⌉. *)
  for seed = 1 to 80 do
    let rng = Rng.create (seed * 223) in
    let m = 4 + 2 * (seed mod 5) in
    let scale = Workload.Sos_gen.default_scale in
    let m2 = m - (m / 2) in
    let budget = scale / 2 in
    let tasks = Workload.Sas_gen.pure_t2 rng ~k:(Rng.int_in rng 1 8) ~m ~scale () in
    let sorted = Combined.sort_for_listing4 tasks in
    let r = Combined.run_listing4 ~m:m2 ~budget sorted in
    let bounds = Bounds.listing4_completion_bounds ~m:m2 sorted in
    Array.iteri
      (fun pos f ->
        if f > bounds.(pos) then
          Alcotest.failf "seed %d m=%d: Lemma 4.2 violated at task %d: f=%d bound=%d"
            seed m pos f bounds.(pos))
      r.Stream.completions
  done

let test_lemma_4_3_bounds () =
  (* (a): two tasks with r(T) = 1.5 and 0.5 (scale 10: 15 and 5):
     sorted prefix sums 5, 20 → ⌈0.5⌉+⌈2.0⌉ = 1+2 = 3. *)
  let tasks = [ Task.v ~id:0 [ 15 ]; Task.v ~id:1 [ 5 ] ] in
  Alcotest.(check int) "resource bound" 3 (Bounds.resource_order_bound ~scale:10 tasks);
  (* (b): sizes 1 and 3 on m=2: prefixes 1, 4 → ⌈1/2⌉+⌈4/2⌉ = 1+2 = 3. *)
  let tasks2 = [ Task.v ~id:0 [ 1; 1; 1 ]; Task.v ~id:1 [ 1 ] ] in
  Alcotest.(check int) "count bound" 3 (Bounds.count_order_bound ~m:2 tasks2);
  Alcotest.(check int) "trivial k bound" 2
    (Bounds.lower_bound ~m:100 ~scale:1_000_000 tasks2)

let test_combined_valid_and_bounded () =
  for seed = 1 to 60 do
    let rng = Rng.create (seed * 4409) in
    let inst = Workload.Sas_gen.random_instance rng () in
    let report = Combined.run inst in
    (* The merged schedule is resource/processor-feasible. *)
    (match Sos.Schedule.validate ~preemption_ok:true report.Combined.schedule with
    | Ok () -> ()
    | Error v ->
        Alcotest.failf "seed %d: invalid merged schedule at %d: %s" seed v.Sos.Schedule.at_step
          v.Sos.Schedule.reason);
    (* Every completion time is sane and the sum is within the asymptotic
       guarantee with a generous additive term (o(1)·OPT + q-terms). *)
    Array.iter
      (fun f -> if f < 1 then Alcotest.failf "seed %d: zero completion time" seed)
      report.Combined.completions;
    let k = Sas_instance.k inst in
    let bound = Bounds.guarantee ~m:inst.Sas_instance.m in
    let limit =
      (bound *. float_of_int report.Combined.lower_bound) +. float_of_int (2 * k) +. 4.0
    in
    if float_of_int report.Combined.sum_completions > limit then
      Alcotest.failf "seed %d: sum completions %d above %f (lb=%d m=%d k=%d)" seed
        report.Combined.sum_completions limit report.Combined.lower_bound
        inst.Sas_instance.m k
  done

let test_combined_partition_counts () =
  let inst =
    Sas_instance.create ~m:6 ~scale:100 [ [ 90; 90 ]; [ 1; 1; 1; 1 ]; [ 50 ] ]
  in
  let report = Combined.run inst in
  Alcotest.(check int) "t1 count" 2 report.Combined.t1_count;
  Alcotest.(check int) "t2 count" 1 report.Combined.t2_count;
  Alcotest.(check int) "all tasks completed"
    (Sas_instance.k inst)
    (Array.length (Array.of_list (Array.to_list report.Combined.completions)))

let test_stream_minimum_parameters () =
  (* m = 2, budget = 1: everything serializes one unit at a time. *)
  let tasks = [ Task.v ~id:0 [ 3; 2 ]; Task.v ~id:1 [ 1 ] ] in
  let r = Stream.run ~m:2 ~budget:1 tasks in
  (match Stream.check ~m:2 ~budget:1 tasks r with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "check: %s" msg);
  Alcotest.(check int) "makespan = total work" 6 r.Stream.makespan;
  Alcotest.(check int) "task 0 completes at 5" 5 r.Stream.completions.(0);
  Alcotest.(check int) "task 1 completes last" 6 r.Stream.completions.(1)

let test_stream_oversize_job () =
  (* A single job larger than the budget crosses several steps. *)
  let tasks = [ Task.v ~id:0 [ 25 ] ] in
  let r = Stream.run ~m:4 ~budget:10 tasks in
  Alcotest.(check int) "⌈25/10⌉ steps" 3 r.Stream.completions.(0)

let test_combined_smallest_m () =
  (* m = 4 (the minimum) and m = 5 (odd split): both halves get ≥ 2
     processors and positive budgets. *)
  List.iter
    (fun m ->
      let inst =
        Sas_instance.create ~m ~scale:(2 * (m - 1))
          [ [ 1; 1; 1 ]; [ 2 * (m - 1) ]; [ 3; 3 ] ]
      in
      let report = Combined.run inst in
      Array.iter
        (fun f -> Alcotest.(check bool) "positive completion" true (f >= 1))
        report.Combined.completions;
      match Sos.Schedule.validate ~preemption_ok:true report.Combined.schedule with
      | Ok () -> ()
      | Error v -> Alcotest.failf "m=%d: %s" m v.Sos.Schedule.reason)
    [ 4; 5 ]

let test_serial_baseline () =
  for seed = 1 to 40 do
    let rng = Rng.create (seed * 83) in
    let inst = Workload.Sas_gen.random_instance rng () in
    let completions, sum = Serial.run inst in
    (* Completions are positive, monotone in the clock, and the sum is never
       below the Lemma 4.3 lower bound. *)
    Array.iter (fun f -> if f < 1 then Alcotest.failf "seed %d: completion < 1" seed) completions;
    Alcotest.(check int) "sum matches" sum (Array.fold_left ( + ) 0 completions);
    let lb =
      Bounds.lower_bound ~m:inst.Sas_instance.m ~scale:inst.Sas_instance.scale
        (Array.to_list inst.Sas_instance.tasks)
    in
    if sum < lb then Alcotest.failf "seed %d: serial sum %d below LB %d" seed sum lb;
    (* Submission order is also sane. *)
    let _, sum_sub = Serial.run ~order:Serial.Submission inst in
    if sum_sub < lb then Alcotest.failf "seed %d: submission-order sum below LB" seed
  done

let test_flat_sos () =
  let inst = Sas_instance.create ~m:4 ~scale:10 [ [ 3; 7 ]; [ 5 ] ] in
  let flat = Sas_instance.flat_sos inst in
  Alcotest.(check int) "job count" 3 (Sos.Instance.n flat);
  Alcotest.(check bool) "unit sizes" true (Sos.Instance.unit_size flat)

let suite =
  ( "sas",
    [
      Alcotest.test_case "task basics" `Quick test_task_basics;
      Alcotest.test_case "T1/T2 classification" `Quick test_classification;
      Alcotest.test_case "partition" `Quick test_partition;
      Alcotest.test_case "normalize scale" `Quick test_normalize_scale;
      Alcotest.test_case "stream: single task" `Quick test_stream_single_task;
      Alcotest.test_case "stream: whole-task fast path" `Quick
        test_stream_whole_task_fast_path;
      Alcotest.test_case "stream: conservation (random)" `Quick test_stream_conservation;
      Alcotest.test_case "Lemma 4.1 per-task bound" `Quick test_lemma_4_1;
      Alcotest.test_case "Lemma 4.2 per-task bound" `Quick test_lemma_4_2;
      Alcotest.test_case "Lemma 4.3 lower bounds" `Quick test_lemma_4_3_bounds;
      Alcotest.test_case "combined: valid & bounded (random)" `Quick
        test_combined_valid_and_bounded;
      Alcotest.test_case "combined: partition counts" `Quick test_combined_partition_counts;
      Alcotest.test_case "stream: minimum parameters" `Quick test_stream_minimum_parameters;
      Alcotest.test_case "stream: oversize job" `Quick test_stream_oversize_job;
      Alcotest.test_case "combined: smallest m" `Quick test_combined_smallest_m;
      Alcotest.test_case "serial baseline" `Quick test_serial_baseline;
      Alcotest.test_case "flat SoS view" `Quick test_flat_sos;
    ] )
