(* Robustness layer: the failure taxonomy, strict validators, cancel
   tokens, checkpoint journal, seeded chaos injection, and the batch
   engine's retry/deadline/cancel semantics. The central properties are
   (1) malformed input is rejected with the right structured reason,
   never a stringified exception, and (2) every resilience feature
   preserves the batch determinism contract at any domain count.

   $SOS_CHAOS (an integer >= 1, set by the CI chaos leg) scales up the
   batch sizes of the fault-injection tests. *)

module Rng = Prelude.Rng
module F = Robust.Failure
module Batch = Engine.Batch

let intensity =
  match Sys.getenv_opt "SOS_CHAOS" with
  | Some s -> (match int_of_string_opt s with Some v when v >= 1 -> v | _ -> 1)
  | None -> 1

let with_chaos rules f =
  Robust.Chaos.arm_rules ~seed:0x5eed rules;
  Fun.protect ~finally:Robust.Chaos.disarm f

let class_name_of (e : Batch.error) = F.class_name e.failure

(* ------------------------------------------------------------ validators *)

let test_malformed_rejected =
  Helpers.qcheck ~count:300 "strict validators reject malformed instances"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let expect, case = Workload.Malformed.sample (Rng.create (seed + 1)) in
      match Workload.Malformed.run case with
      | Ok _ ->
          QCheck.Test.fail_reportf "accepted %s (expected %s)"
            (Workload.Malformed.describe case)
            (Workload.Malformed.expect_name expect)
      | Error reason ->
          if not (Workload.Malformed.matches expect reason) then
            QCheck.Test.fail_reportf "%s rejected as %S, expected class %s"
              (Workload.Malformed.describe case)
              (F.invalid_to_string reason)
              (Workload.Malformed.expect_name expect)
          else true)

let test_overflow_guard () =
  (* Two jobs of p_j ≈ max_int/2 overflow Σ p_j; the Equation (1) lower
     bound must be a structured Overflow, never silently negative. *)
  let huge = (max_int / 2) + 1 in
  let inst = Sos.Instance.create ~m:4 ~scale:10 [ (huge, 1); (huge, 1) ] in
  (match Sos.Instance.validate inst with
  | Error (F.Overflow _) -> ()
  | Error r -> Alcotest.failf "wrong reason: %s" (F.invalid_to_string r)
  | Ok _ -> Alcotest.fail "validate accepted an overflowing instance");
  (match Sos.Bounds.lower_bound_checked inst with
  | Error (F.Overflow _) -> ()
  | Error r -> Alcotest.failf "wrong reason: %s" (F.invalid_to_string r)
  | Ok lb -> Alcotest.failf "lower_bound_checked returned %d" lb);
  (match Sos.Bounds.lower_bound inst with
  | exception F.Invalid (F.Overflow _) -> ()
  | lb -> Alcotest.failf "lower_bound returned %d instead of raising" lb);
  (* One job whose p_j·r_j wraps is caught per-job by create_checked. *)
  (match Sos.Instance.create_checked ~m:4 ~scale:10 [ (huge, 2) ] with
  | Error (F.Overflow _) -> ()
  | Error r -> Alcotest.failf "wrong reason: %s" (F.invalid_to_string r)
  | Ok _ -> Alcotest.fail "create_checked accepted p_j*r_j overflow");
  (* A merely large but in-range instance still validates and has a
     positive bound. *)
  let ok = Sos.Instance.create ~m:4 ~scale:10 [ (max_int / 4, 1); (1000, 3) ] in
  (match Sos.Instance.validate ok with
  | Ok _ -> ()
  | Error r -> Alcotest.failf "rejected in-range instance: %s" (F.invalid_to_string r));
  Alcotest.(check bool) "in-range bound positive" true (Sos.Bounds.lower_bound ok > 0)

let test_checked_constructors () =
  (match Sos.Instance.of_floats_checked ~m:4 ~scale:100 [ (2, Float.nan) ] with
  | Error (F.Not_finite { job = 0; _ }) -> ()
  | _ -> Alcotest.fail "NaN share not rejected as Not_finite");
  (match Sos.Instance.of_floats_checked ~m:4 ~scale:100 [ (2, 0.5); (1, -3.0) ] with
  | Error (F.Nonpositive_req { job = 1; _ }) -> ()
  | _ -> Alcotest.fail "negative share not rejected as Nonpositive_req");
  (match Sos.Instance.of_string_checked "not an instance" with
  | Error (F.Malformed _) -> ()
  | _ -> Alcotest.fail "garbage text not rejected as Malformed");
  (match Sos.Instance.create_checked ~m:1 ~scale:10 [ (1, 1) ] with
  | Error (F.Too_few_processors { need = 2; _ }) -> ()
  | _ -> Alcotest.fail "m=1 not rejected");
  (match Sos.Instance.create_checked ~window:true ~m:2 ~scale:10 [ (1, 1) ] with
  | Error (F.Too_few_processors { need = 3; _ }) -> ()
  | _ -> Alcotest.fail "m=2 under window not rejected with need=3");
  (match Sos.Instance.create_checked ~m:4 ~scale:0 [ (1, 1) ] with
  | Error (F.Bad_scale 0) -> ()
  | _ -> Alcotest.fail "scale=0 not rejected");
  (* The window check is an entry-point policy, not structural: the same
     m=2 instance is fine without it. *)
  match Sos.Instance.create_checked ~m:2 ~scale:10 [ (1, 1) ] with
  | Ok _ -> ()
  | Error r -> Alcotest.failf "m=2 rejected without window: %s" (F.invalid_to_string r)

(* -------------------------------------------------------------- create3 *)

let test_rng_create3 () =
  let a = Rng.create3 1 2 3 and b = Rng.create3 1 2 3 in
  Alcotest.(check bool) "same triple, same stream" true (Rng.bits64 a = Rng.bits64 b);
  let seen = Hashtbl.create 256 in
  for base = 0 to 4 do
    for idx = 0 to 4 do
      for att = 0 to 4 do
        let v = Rng.bits64 (Rng.create3 base idx att) in
        Alcotest.(check bool)
          (Printf.sprintf "triple (%d,%d,%d) collides" base idx att)
          false (Hashtbl.mem seen v);
        Hashtbl.replace seen v ()
      done
    done
  done

(* ------------------------------------------------------ cancel + context *)

let test_cancel_tokens () =
  let t = Robust.Cancel.create () in
  Alcotest.(check bool) "fresh token not cancelled" false (Robust.Cancel.cancelled t);
  Robust.Cancel.check t;
  Robust.Cancel.cancel t;
  Alcotest.(check bool) "cancelled after cancel" true (Robust.Cancel.cancelled t);
  (match Robust.Cancel.check t with
  | exception F.Cancel_requested -> ()
  | () -> Alcotest.fail "check did not raise after cancel");
  (* Child observes an ancestor's cancellation; cancelling a child leaves
     the parent alone. *)
  let parent = Robust.Cancel.create () in
  let child = Robust.Cancel.create ~parent () in
  Robust.Cancel.cancel parent;
  Alcotest.(check bool) "child sees parent cancel" true (Robust.Cancel.cancelled child);
  let p2 = Robust.Cancel.create () in
  let c2 = Robust.Cancel.create ~parent:p2 () in
  Robust.Cancel.cancel c2;
  Alcotest.(check bool) "parent unaffected by child" false (Robust.Cancel.cancelled p2);
  (* Deadlines are observed by check, with the timeout in the exception. *)
  let d = Robust.Cancel.create ~timeout:0.01 () in
  Robust.Cancel.check d;
  Unix.sleepf 0.02;
  (match Robust.Cancel.check d with
  | exception F.Deadline t -> Alcotest.(check (float 1e-9)) "timeout carried" 0.01 t
  | () -> Alcotest.fail "deadline did not fire");
  match Robust.Cancel.create ~timeout:0.0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "timeout=0 accepted"

let test_context_scope () =
  Alcotest.(check int) "index outside scope" (-1) (Robust.Context.index ());
  Alcotest.(check int) "attempt outside scope" 0 (Robust.Context.attempt ());
  Robust.Context.poll ();
  let cancel = Robust.Cancel.create () in
  let ctx = Robust.Context.make ~index:7 ~attempt:2 ~cancel in
  Robust.Context.with_ctx ctx (fun () ->
      Alcotest.(check int) "index inside" 7 (Robust.Context.index ());
      Alcotest.(check int) "attempt inside" 2 (Robust.Context.attempt ());
      Robust.Context.poll ();
      let inner = Robust.Context.make ~index:9 ~attempt:0 ~cancel:Robust.Cancel.none in
      Robust.Context.with_ctx inner (fun () ->
          Alcotest.(check int) "nested index" 9 (Robust.Context.index ()));
      Alcotest.(check int) "restored after nesting" 7 (Robust.Context.index ());
      Robust.Cancel.cancel cancel;
      match Robust.Context.poll () with
      | exception F.Cancel_requested -> ()
      | () -> Alcotest.fail "poll ignored a cancelled scope");
  Alcotest.(check int) "restored outside" (-1) (Robust.Context.index ())

(* -------------------------------------------------------------- journal *)

let with_temp_journal f =
  let path = Filename.temp_file "sosj" ".journal" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_journal_roundtrip () =
  with_temp_journal @@ fun path ->
  let header = "sosj1 seed=7 algo=window specs=abc" in
  let oc = Robust.Journal.create ~path ~header in
  Robust.Journal.append oc ~index:0 ~payload:"0 ok bimodal makespan=12";
  Robust.Journal.append oc ~index:2 ~payload:"2 error task-exn line 3: boom";
  Out_channel.close oc;
  (match Robust.Journal.load ~path ~header with
  | Ok [ a; b ] ->
      Alcotest.(check int) "first index" 0 a.Robust.Journal.index;
      Alcotest.(check string) "first payload" "0 ok bimodal makespan=12" a.payload;
      Alcotest.(check int) "second index" 2 b.index
  | Ok l -> Alcotest.failf "expected 2 entries, got %d" (List.length l)
  | Error msg -> Alcotest.fail msg);
  (* A different header (other seed/algo/specs) must be refused. *)
  (match Robust.Journal.load ~path ~header:"sosj1 seed=8 algo=window specs=abc" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "header mismatch accepted");
  (* Newlines in payloads would corrupt the line format. *)
  let oc = Robust.Journal.reopen ~path in
  (match Robust.Journal.append oc ~index:3 ~payload:"a\nb" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "newline payload accepted");
  Out_channel.close oc

let test_journal_torn_line () =
  with_temp_journal @@ fun path ->
  let header = "sosj1 seed=1 algo=window specs=x" in
  let oc = Robust.Journal.create ~path ~header in
  Robust.Journal.append oc ~index:0 ~payload:"first";
  Robust.Journal.append oc ~index:1 ~payload:"second";
  Out_channel.close oc;
  (* Simulate a SIGKILL mid-append: a trailing half-entry with no
     newline and a wrong digest. *)
  let oc = Out_channel.open_gen [ Open_append; Open_text ] 0o644 path in
  Out_channel.output_string oc "2 0123456789abcdef t";
  Out_channel.close oc;
  (match Robust.Journal.load ~path ~header with
  | Ok entries ->
      Alcotest.(check (list int)) "torn line skipped" [ 0; 1 ]
        (List.map (fun (e : Robust.Journal.entry) -> e.index) entries)
  | Error msg -> Alcotest.fail msg);
  (* reopen truncates the torn tail, so the next append lands clean. *)
  let oc = Robust.Journal.reopen ~path in
  Robust.Journal.append oc ~index:2 ~payload:"third";
  Out_channel.close oc;
  match Robust.Journal.load ~path ~header with
  | Ok entries ->
      Alcotest.(check (list int)) "appended after torn tail" [ 0; 1; 2 ]
        (List.map (fun (e : Robust.Journal.entry) -> e.index) entries)
  | Error msg -> Alcotest.fail msg

(* ------------------------------------------------------ sharded journal *)

module Sharded = Robust.Journal.Sharded

let with_temp_sharded shards f =
  let base = Filename.temp_file "sosjsh" ".journal" in
  Fun.protect
    ~finally:(fun () ->
      let rm p = try Sys.remove p with Sys_error _ -> () in
      rm base;
      for k = 0 to shards - 1 do
        rm (Printf.sprintf "%s.%d" base k)
      done)
    (fun () -> f base)

let test_sharded_roundtrip () =
  with_temp_sharded 3 @@ fun base ->
  let header = "sosj1 seed=7 algo=fast specs=abc" in
  let j = Sharded.start ~path:base ~shards:3 ~sync_every:4 ~header () in
  Alcotest.(check int) "shards" 3 (Sharded.shards j);
  Alcotest.(check (array string)) "shard paths"
    (Array.init 3 (Printf.sprintf "%s.%d" base))
    (Sharded.paths j);
  for i = 0 to 10 do
    Sharded.append j ~index:i ~payload:(Printf.sprintf "%d ok payload" i)
  done;
  (* sync_every=4 buffers appends; close must flush them all out. *)
  Sharded.close j;
  (match Sharded.resume ~path:base ~shards:3 ~sync_every:4 ~header () with
  | Error msg -> Alcotest.fail msg
  | Ok j ->
      Alcotest.(check int) "completed" 11 (Sharded.completed j);
      for i = 0 to 10 do
        Alcotest.(check bool) (Printf.sprintf "mem %d" i) true (Sharded.mem j i);
        (* replay in increasing index order, across all shards *)
        match Sharded.replay j i with
        | Some p ->
            Alcotest.(check string) "replayed payload" (Printf.sprintf "%d ok payload" i) p
        | None -> Alcotest.failf "no payload for %d" i
      done;
      Alcotest.(check bool) "mem beyond end" false (Sharded.mem j 11);
      Alcotest.(check bool) "replay beyond end" true (Sharded.replay j 11 = None);
      (* Fresh appends on a resumed journal extend it... *)
      Sharded.append j ~index:11 ~payload:"11 ok payload";
      Alcotest.(check bool) "fresh append not in resume bitset" false (Sharded.mem j 11);
      Sharded.close j);
  match Sharded.resume ~path:base ~shards:3 ~header () with
  | Error msg -> Alcotest.fail msg
  | Ok j ->
      Alcotest.(check int) "completed after second run" 12 (Sharded.completed j);
      Sharded.close j

let test_sharded_header_binding () =
  with_temp_sharded 2 @@ fun base ->
  let header = "sosj1 seed=1 algo=fast specs=x" in
  let j = Sharded.start ~path:base ~shards:2 ~header () in
  Sharded.append j ~index:0 ~payload:"zero";
  Sharded.close j;
  (* Another seed must be refused... *)
  (match Sharded.resume ~path:base ~shards:2 ~header:"sosj1 seed=2 algo=fast specs=x" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "header mismatch accepted");
  (* ...and so must another shard count: the per-shard header suffix
     changes, so shard 0 of a 2-shard journal never resumes as 1-shard. *)
  match Sharded.resume ~path:(base ^ ".0") ~shards:1 ~header () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "shard-count mismatch accepted"

let test_sharded_torn_tails () =
  with_temp_sharded 2 @@ fun base ->
  let header = "sosj1 seed=3 algo=fast specs=y" in
  let j = Sharded.start ~path:base ~shards:2 ~header () in
  for i = 0 to 5 do
    Sharded.append j ~index:i ~payload:(Printf.sprintf "out-%d" i)
  done;
  Sharded.close j;
  (* Simulate SIGKILL mid-append on both shards: a half-written entry
     with no newline on shard 0, a wrong-digest line on shard 1. *)
  let scribble path text =
    let oc = Out_channel.open_gen [ Open_append; Open_text ] 0o644 path in
    Out_channel.output_string oc text;
    Out_channel.close oc
  in
  scribble (base ^ ".0") "8 0123456789abcdef tor";
  scribble (base ^ ".1") "9 0123456789abcdef0123456789abcdef bad-digest\n";
  match Sharded.resume ~path:base ~shards:2 ~header () with
  | Error msg -> Alcotest.fail msg
  | Ok j ->
      (* The torn/corrupt lines are dropped by compaction; the six clean
         entries survive and replay in order. *)
      Alcotest.(check int) "completed after torn tails" 6 (Sharded.completed j);
      for i = 0 to 5 do
        Alcotest.(check (option string))
          (Printf.sprintf "replay %d" i)
          (Some (Printf.sprintf "out-%d" i))
          (Sharded.replay j i)
      done;
      Alcotest.(check bool) "torn index not recorded" false (Sharded.mem j 8);
      Sharded.close j;
      (* Compaction rewrote the shard files: resuming again finds exactly
         the same clean state. *)
      (match Sharded.resume ~path:base ~shards:2 ~header () with
      | Ok j2 ->
          Alcotest.(check int) "stable after recompaction" 6 (Sharded.completed j2);
          Sharded.close j2
      | Error msg -> Alcotest.fail msg)

let test_sharded_out_of_order_replay () =
  (* The SIGINT scenario: an interrupted run journals nothing for a
     cancelled index (the gap) while later in-flight indices are
     journalled; the first --resume re-runs the gap and appends it AFTER
     the higher-index entries, leaving the shard index-unsorted. A second
     --resume must still replay every completed index byte-identically —
     the forward cursor must neither lose the gap entry (it sits behind
     the cursor after the overshoot) nor consume the overshot entry. *)
  with_temp_sharded 2 @@ fun base ->
  let header = "sosj1 seed=11 algo=fast specs=z" in
  let payload i = Printf.sprintf "out-%d" i in
  let j = Sharded.start ~path:base ~shards:2 ~header () in
  (* Run 1, interrupted: indices 2 and 5 cancelled (nothing journalled),
     later in-flight indices journalled in emission order. *)
  List.iter (fun i -> Sharded.append j ~index:i ~payload:(payload i)) [ 0; 1; 3; 4; 6; 7 ];
  Sharded.close j;
  (* First resume: gaps re-run and appended after higher indices. *)
  (match Sharded.resume ~path:base ~shards:2 ~header () with
  | Error msg -> Alcotest.fail msg
  | Ok j ->
      Alcotest.(check int) "completed after run 1" 6 (Sharded.completed j);
      List.iter
        (fun i ->
          if Sharded.mem j i then
            Alcotest.(check (option string))
              (Printf.sprintf "first resume replay %d" i)
              (Some (payload i)) (Sharded.replay j i)
          else Sharded.append j ~index:i ~payload:(payload i))
        [ 0; 1; 2; 3; 4; 5; 6; 7 ];
      Sharded.close j);
  (* Second resume: shard 0 is now [0;4;6;2], shard 1 [1;3;7;5]. Every
     index must replay, in ordered-emission order. *)
  match Sharded.resume ~path:base ~shards:2 ~header () with
  | Error msg -> Alcotest.fail msg
  | Ok j ->
      Alcotest.(check int) "completed after gap fill" 8 (Sharded.completed j);
      for i = 0 to 7 do
        Alcotest.(check (option string))
          (Printf.sprintf "second resume replay %d" i)
          (Some (payload i)) (Sharded.replay j i)
      done;
      Sharded.close j

(* ----------------------------------------------------- batch resilience *)

let test_retry_recovers () =
  (* Tasks at the fail indices raise on attempts 0..1 (via the ambient
     context); retries=2 reaches attempt 2 and must produce exactly the
     clean run's results — at every domain count. *)
  let n = 24 in
  let fail_at i = i mod 5 = 1 in
  let tasks =
    Array.init n (fun i () ->
        if fail_at i && Robust.Context.attempt () < 2 then failwith "flaky";
        i * i)
  in
  let clean = Array.init n (fun i -> Ok (i * i)) in
  List.iter
    (fun domains ->
      let got = Batch.map ~domains ~retries:2 tasks in
      Alcotest.(check bool)
        (Printf.sprintf "retried run equals clean run at %d domains" domains)
        true
        (got = clean))
    [ 1; 2; 4 ];
  (* With too few retries the error records every attempt made. *)
  match Batch.map ~domains:2 ~retries:1 tasks with
  | outcomes -> (
      match outcomes.(1) with
      | Error e ->
          Alcotest.(check string) "class" "task-exn" (class_name_of e);
          Alcotest.(check int) "attempts recorded" 2 e.Batch.attempts
      | Ok _ -> Alcotest.fail "expected index 1 to fail with retries=1")

let test_invalid_never_retried () =
  let attempts_seen = Atomic.make 0 in
  let tasks =
    [|
      (fun () ->
        Atomic.incr attempts_seen;
        raise (F.Invalid (F.Bad_scale 0)));
    |]
  in
  match Batch.map ~domains:2 ~retries:5 tasks with
  | [| Error e |] ->
      Alcotest.(check string) "class" "invalid-instance" (class_name_of e);
      Alcotest.(check int) "single attempt" 1 e.Batch.attempts;
      Alcotest.(check int) "task ran once" 1 (Atomic.get attempts_seen)
  | _ -> Alcotest.fail "expected one error"

let test_task_deadline () =
  (* A polling task that outlives its deadline fails with the deadline
     class; one that finishes in time is untouched. *)
  let tasks =
    [|
      (fun () ->
        let stop =
          (Unix.gettimeofday () [@sos.allow "R2: deadline test must outlive real wall-clock time; Prelude.Clock is the unit under test's view, not the harness's"])
          +. 5.0
        in
        while
          (Unix.gettimeofday () [@sos.allow "R2: deadline test must outlive real wall-clock time; Prelude.Clock is the unit under test's view, not the harness's"])
          < stop
        do
          Robust.Context.poll ();
          Unix.sleepf 0.002
        done;
        0);
      (fun () -> 41);
    |]
  in
  match Batch.map ~domains:2 ~task_timeout:0.05 tasks with
  | [| Error e; Ok 41 |] ->
      Alcotest.(check string) "class" "deadline" (class_name_of e);
      Alcotest.(check bool) "deadline is transient" true (F.transient e.Batch.failure)
  | [| a; b |] ->
      Alcotest.failf "unexpected outcomes: %s / %s"
        (match a with Ok v -> string_of_int v | Error e -> class_name_of e)
        (match b with Ok v -> string_of_int v | Error e -> class_name_of e)
  | _ -> Alcotest.fail "wrong arity"

let test_cancelled_batch () =
  (* A token cancelled up front: every task fails Cancelled without its
     body ever running, and the outcome is deterministic. *)
  let ran = Atomic.make 0 in
  let cancel = Robust.Cancel.create () in
  Robust.Cancel.cancel cancel;
  let tasks = Array.init 10 (fun i () -> Atomic.incr ran; i) in
  let outcomes = Batch.map ~domains:3 ~cancel tasks in
  Alcotest.(check int) "no task body ran" 0 (Atomic.get ran);
  Array.iter
    (function
      | Error e -> Alcotest.(check string) "class" "cancelled" (class_name_of e)
      | Ok _ -> Alcotest.fail "task succeeded under a cancelled token")
    outcomes

(* ---------------------------------------------------------------- chaos *)

let test_chaos_parse () =
  (match Robust.Chaos.parse "sos.fast.run@3,19,35:attempts=2; engine.pool.worker~0.25" with
  | Ok [ (s1, Robust.Chaos.Fail_indices { indices = [ 3; 19; 35 ]; attempts = 2 });
         (s2, Robust.Chaos.Fail_prob p) ] ->
      Alcotest.(check string) "site 1" "sos.fast.run" s1;
      Alcotest.(check string) "site 2" "engine.pool.worker" s2;
      Alcotest.(check (float 1e-9)) "prob" 0.25 p
  | Ok _ -> Alcotest.fail "parsed into unexpected rules"
  | Error msg -> Alcotest.fail msg);
  (match Robust.Chaos.parse "sos.fast.step+0.5~0.1" with
  | Ok [ (_, Robust.Chaos.Delay { seconds; prob }) ] ->
      Alcotest.(check (float 1e-9)) "seconds" 0.5 seconds;
      Alcotest.(check (float 1e-9)) "prob" 0.1 prob
  | Ok _ -> Alcotest.fail "parsed into unexpected rules"
  | Error msg -> Alcotest.fail msg);
  List.iter
    (fun bad ->
      match Robust.Chaos.parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted bad spec %S" bad)
    [ "siteonly"; "s@x"; "s~2.0"; "s@1:attempts=0"; "s+abc" ];
  Alcotest.(check bool) "disarmed by default" false (Robust.Chaos.armed ())

let test_chaos_indices_deterministic () =
  (* Index-targeted injection at the batch task site: exactly the listed
     indices fail, identically at every domain count. *)
  let n = 16 * intensity in
  let targets = [ 1; 5; 11 ] in
  with_chaos [ ("engine.batch.task", Robust.Chaos.Fail_indices { indices = targets; attempts = max_int }) ]
  @@ fun () ->
  let tasks = Array.init n (fun i () -> i + 100) in
  let reference = Batch.map ~domains:1 tasks in
  Array.iteri
    (fun i r ->
      match r with
      | Ok v ->
          Alcotest.(check bool) "untargeted ok" false (List.mem i targets);
          Alcotest.(check int) "value" (i + 100) v
      | Error e ->
          Alcotest.(check bool) "targeted error" true (List.mem i targets);
          Alcotest.(check string) "class" "task-exn" (class_name_of e))
    reference;
  List.iter
    (fun domains ->
      let got = Batch.map ~domains tasks in
      let same =
        Array.for_all2
          (fun a b ->
            match (a, b) with
            | Ok x, Ok y -> x = y
            | Error (e1 : Batch.error), Error e2 -> class_name_of e1 = class_name_of e2
            | _ -> false)
          got reference
      in
      Alcotest.(check bool)
        (Printf.sprintf "chaos pattern identical at %d domains" domains)
        true same)
    [ 2; 4 ]

let test_chaos_prob_deterministic () =
  (* Probabilistic in-scope draws are keyed by (seed, site, index,
     attempt, hit) — so the error pattern is a pure function of the
     configuration, not of the domain count. *)
  let n = 32 * intensity in
  let pattern domains =
    with_chaos [ ("engine.batch.task", Robust.Chaos.Fail_prob 0.4) ] @@ fun () ->
    Batch.map ~domains (Array.init n (fun i () -> i))
    |> Array.map (function Ok _ -> 'o' | Error _ -> 'x')
    |> Array.to_seq |> String.of_seq
  in
  let p1 = pattern 1 in
  Alcotest.(check bool) "some injected" true (String.contains p1 'x');
  Alcotest.(check bool) "some survived" true (String.contains p1 'o');
  Alcotest.(check string) "pattern identical at 2 domains" p1 (pattern 2);
  Alcotest.(check string) "pattern identical at 4 domains" p1 (pattern 4)

let test_chaos_retry_recovers () =
  (* attempts=1 injection + one retry: attempt 0 is killed, attempt 1
     succeeds, and the batch equals a clean run. *)
  let n = 12 * intensity in
  let tasks = Array.init n (fun i () -> 3 * i) in
  let clean = Array.init n (fun i -> Ok (3 * i)) in
  with_chaos
    [ ("engine.batch.task",
       Robust.Chaos.Fail_indices { indices = [ 2; 7; 9 ]; attempts = 1 }) ]
  @@ fun () ->
  List.iter
    (fun domains ->
      let got = Batch.map ~domains ~retries:1 tasks in
      Alcotest.(check bool)
        (Printf.sprintf "chaos+retry equals clean at %d domains" domains)
        true (got = clean))
    [ 1; 2; 4 ]

let test_pool_survives_worker_deaths () =
  (* Kill every worker the injector can (the last live worker refuses to
     die): the batch still completes, in order, and the pool survives a
     second batch. *)
  let n = 50 * intensity in
  with_chaos [ ("engine.pool.worker", Robust.Chaos.Fail_prob 1.0) ] @@ fun () ->
  Engine.Pool.with_pool ~domains:4 (fun pool ->
      let out = Batch.map_pool pool (Array.init n (fun i () -> i * 2)) in
      Array.iteri
        (fun i r ->
          Alcotest.(check bool)
            (Printf.sprintf "result %d ok and ordered" i)
            true (r = Ok (i * 2)))
        out;
      let again = Batch.map_pool pool (Array.init 10 (fun i () -> i + 1)) in
      Array.iteri
        (fun i r ->
          Alcotest.(check bool) "pool usable after worker deaths" true (r = Ok (i + 1)))
        again)

let test_pool_down_after_shutdown () =
  let pool = Engine.Pool.create ~domains:2 () in
  let ok = Batch.map_pool pool [| (fun () -> 1) |] in
  Alcotest.(check bool) "live pool works" true (ok = [| Ok 1 |]);
  Engine.Pool.shutdown pool;
  match Batch.map_pool pool [| (fun () -> 2) |] with
  | exception F.Pool_down _ -> ()
  | [| Error e |] when class_name_of e = "pool-crashed" -> ()
  | _ -> Alcotest.fail "submit after shutdown not surfaced as pool-crashed"

(* --- deterministic backoff + supervision --- *)

let test_backoff_policy () =
  let open Robust.Backoff in
  let p = policy ~base:0.01 ~cap:1.0 ~seed:7 () in
  Alcotest.(check bool)
    "deterministic" true
    (delay p ~index:3 ~attempt:2 = delay p ~index:3 ~attempt:2);
  (* equal jitter: attempt a draws from [d/2, d) with d = min cap (base*2^(a-1)) *)
  for attempt = 1 to 8 do
    let ideal = Float.min 1.0 (0.01 *. (2.0 ** float_of_int (attempt - 1))) in
    let d = delay p ~index:0 ~attempt in
    if not (d >= ideal /. 2.0 && d < ideal) then
      Alcotest.failf "attempt %d: delay %g outside [%g, %g)" attempt d (ideal /. 2.0)
        ideal
  done;
  (* the cap holds even for attempt counts that would overflow 2^(a-1) *)
  let d = delay p ~index:0 ~attempt:200 in
  Alcotest.(check bool) "capped at huge attempts" true (d >= 0.5 && d < 1.0);
  let d = delay p ~index:0 ~attempt:10_000 in
  Alcotest.(check bool) "capped at attempt 10000" true (d >= 0.5 && d < 1.0);
  Alcotest.(check bool) "attempt 0 is free" true (delay p ~index:0 ~attempt:0 = 0.0);
  (* per-index jitter decorrelates retry storms *)
  Alcotest.(check bool)
    "indices decorrelated" true
    (List.exists
       (fun i -> delay p ~index:i ~attempt:3 <> delay p ~index:0 ~attempt:3)
       [ 1; 2; 3; 4; 5 ]);
  (* out-of-range parameters clamp instead of raising (R6: no failwith) *)
  let q = policy ~base:(-1.0) ~cap:0.0 ~seed:0 () in
  let d = delay q ~index:0 ~attempt:1 in
  Alcotest.(check bool) "clamped policy stays finite" true (d >= 0.0 && d < 1e-5)

(* Property form of the band above, pushed to attempt counts that
   overflow a naive [1 lsl (attempt - 1)]: for any policy and any
   attempt up to 10000, the delay is finite, deterministic, and inside
   the equal-jitter band [d/2, d) with d = min cap (base * 2^(a-1))
   computed in float arithmetic (where the power overflows to infinity
   and the min saturates at cap). *)
let test_backoff_jitter_band =
  Helpers.qcheck ~count:500 "backoff: equal-jitter band holds to attempt 10000"
    QCheck.(
      quad (int_bound 9999) (int_bound 999) (int_range 1 10_000)
        (pair (float_range 1e-5 0.5) (float_range 0.6 50.0)))
    (fun (seed, index, attempt, (base, cap)) ->
      let p = Robust.Backoff.policy ~base ~cap ~seed () in
      let d = Robust.Backoff.delay p ~index ~attempt in
      let ideal = Float.min cap (base *. (2.0 ** float_of_int (attempt - 1))) in
      Float.is_finite d
      && d >= ideal /. 2.0
      && d < ideal
      && d = Robust.Backoff.delay p ~index ~attempt)

let test_supervise_restarts () =
  let backoff = Robust.Backoff.policy ~base:1e-6 ~seed:1 () in
  (* transient crashes restart up to the budget, then succeed *)
  let calls = ref 0 in
  let out =
    Robust.Supervise.run ~restarts:5 ~backoff (fun () ->
        incr calls;
        if !calls < 3 then failwith "flaky";
        !calls * 10)
  in
  (match out.Robust.Supervise.result with
  | Ok v -> Alcotest.(check int) "value" 30 v
  | Error f -> Alcotest.failf "expected success, got %s" (F.to_string f));
  Alcotest.(check int) "attempts" 3 out.Robust.Supervise.attempts;
  (* budget exhaustion reports the classified failure and every attempt *)
  let out = Robust.Supervise.run ~restarts:1 (fun () -> failwith "always") in
  (match out.Robust.Supervise.result with
  | Error f -> Alcotest.(check string) "class" "task-exn" (F.class_name f)
  | Ok _ -> Alcotest.fail "expected failure");
  Alcotest.(check int) "attempts recorded" 2 out.Robust.Supervise.attempts;
  (* permanent failures never restart *)
  let calls = ref 0 in
  let out =
    Robust.Supervise.run ~restarts:5 (fun () ->
        incr calls;
        raise (F.Invalid (F.Malformed "bad")))
  in
  (match out.Robust.Supervise.result with
  | Error f -> Alcotest.(check string) "class" "invalid-instance" (F.class_name f)
  | Ok _ -> Alcotest.fail "expected invalid");
  Alcotest.(check int) "no restart on invalid" 1 !calls;
  (* on_restart sees each failed attempt, in order *)
  let seen = ref [] in
  let calls = ref 0 in
  ignore
    (Robust.Supervise.run ~restarts:2
       ~on_restart:(fun ~attempt _ -> seen := attempt :: !seen)
       (fun () ->
         incr calls;
         if !calls < 3 then failwith "flaky"))
  ;
  Alcotest.(check (list int)) "restart callbacks" [ 1; 2 ] (List.rev !seen)

let suite =
  ( "robust",
    [
      test_malformed_rejected;
      Alcotest.test_case "Equation (1) overflow guard" `Quick test_overflow_guard;
      Alcotest.test_case "checked constructors" `Quick test_checked_constructors;
      Alcotest.test_case "rng create3" `Quick test_rng_create3;
      Alcotest.test_case "cancel tokens + deadlines" `Quick test_cancel_tokens;
      Alcotest.test_case "ambient context scope" `Quick test_context_scope;
      Alcotest.test_case "journal roundtrip + header binding" `Quick test_journal_roundtrip;
      Alcotest.test_case "journal torn-line recovery" `Quick test_journal_torn_line;
      Alcotest.test_case "sharded journal roundtrip + replay" `Quick test_sharded_roundtrip;
      Alcotest.test_case "sharded journal header binding" `Quick test_sharded_header_binding;
      Alcotest.test_case "sharded journal torn-tail compaction" `Quick test_sharded_torn_tails;
      Alcotest.test_case "sharded journal out-of-order replay" `Quick
        test_sharded_out_of_order_replay;
      Alcotest.test_case "backoff policy: jitter band, cap, determinism" `Quick
        test_backoff_policy;
      test_backoff_jitter_band;
      Alcotest.test_case "supervise restarts transient failures" `Quick
        test_supervise_restarts;
      Alcotest.test_case "retry recovers deterministically" `Quick test_retry_recovers;
      Alcotest.test_case "invalid input never retried" `Quick test_invalid_never_retried;
      Alcotest.test_case "per-task deadline" `Quick test_task_deadline;
      Alcotest.test_case "cancelled batch runs nothing" `Quick test_cancelled_batch;
      Alcotest.test_case "chaos spec grammar" `Quick test_chaos_parse;
      Alcotest.test_case "chaos index targeting deterministic" `Quick test_chaos_indices_deterministic;
      Alcotest.test_case "chaos probabilistic draws deterministic" `Quick test_chaos_prob_deterministic;
      Alcotest.test_case "chaos + retry equals clean run" `Quick test_chaos_retry_recovers;
      Alcotest.test_case "pool survives injected worker deaths" `Quick test_pool_survives_worker_deaths;
      Alcotest.test_case "pool-down after shutdown" `Quick test_pool_down_after_shutdown;
    ] )
