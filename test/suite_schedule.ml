(* Failure-injection tests for the schedule validator: every class of
   constraint violation must be caught, and the reported reason must point
   at the right class. Also covers the export module and the preemptive /
   fixed-assignment schedulers. *)

open Sos
module Rng = Prelude.Rng

(* Jobs (size, req): sorted by req the ids become
   id0 = (p=3, r=2, s=6), id1 = (p=2, r=4, s=8), id2 = (p=1, r=6, s=6). *)
let base_instance () = Instance.create ~m:3 ~scale:10 [ (2, 4); (1, 6); (3, 2) ]

let step allocs = { Schedule.allocs; repeat = 1 }
let alloc job assigned consumed = { Schedule.job; assigned; consumed }

(* A valid handcrafted schedule: job2 occupies a processor with a zero
   share in step 2 before receiving everything in step 3. *)
let good_steps () =
  [
    step [ alloc 0 2 2; alloc 1 4 4 ];
    step [ alloc 0 2 2; alloc 1 4 4; alloc 2 0 0 ];
    step [ alloc 0 2 2; alloc 2 6 6 ];
  ]

let expect_reason substring sched =
  match Schedule.validate sched with
  | Ok () -> Alcotest.failf "expected violation mentioning %S" substring
  | Error v ->
      let contains s sub =
        let n = String.length sub in
        let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      if not (contains v.Schedule.reason substring) then
        Alcotest.failf "wrong violation: got %S, expected mention of %S"
          v.Schedule.reason substring

let test_good_schedule () =
  let inst = base_instance () in
  match Schedule.validate (Schedule.make inst (good_steps ())) with
  | Ok () -> ()
  | Error v -> Alcotest.failf "fixture should be valid: %s" v.Schedule.reason

let valid_fixture () = (base_instance (), good_steps ())

let test_overuse () =
  let inst, steps = valid_fixture () in
  let steps = step [ alloc 0 6 2; alloc 1 5 4 ] :: List.tl steps in
  expect_reason "resource overused" (Schedule.make inst steps)

let test_too_many_jobs () =
  (* Needs n > m: a 2-processor instance with 3 concurrent allocations. *)
  let inst = Instance.create ~m:2 ~scale:10 [ (2, 4); (1, 6); (3, 2) ] in
  let steps = [ step [ alloc 0 2 2; alloc 1 4 4; alloc 2 2 2 ] ] in
  expect_reason "too many jobs" (Schedule.make inst steps)

let test_double_allocation () =
  let inst, steps = valid_fixture () in
  let steps = step [ alloc 0 2 2; alloc 0 2 2 ] :: List.tl steps in
  expect_reason "allocated twice" (Schedule.make inst steps)

let test_unknown_job () =
  let inst, steps = valid_fixture () in
  let steps = step [ alloc 7 1 1 ] :: steps in
  expect_reason "unknown job" (Schedule.make inst steps)

let test_over_consumption_rate () =
  (* consumed beyond min(assigned, r). *)
  let inst, steps = valid_fixture () in
  let steps = step [ alloc 0 2 3 ] :: List.tl steps in
  expect_reason "consumed" (Schedule.make inst steps)

let test_over_consumption_total () =
  let inst, steps = valid_fixture () in
  let steps = steps @ [ step [ alloc 0 2 2 ] ] in
  expect_reason "over-consumed" (Schedule.make inst steps)

let test_under_consumption_midrun () =
  (* A job consuming less than min(assigned, r) without finishing. *)
  let inst, steps = valid_fixture () in
  let steps = step [ alloc 0 2 1; alloc 1 4 4 ] :: List.tl steps in
  expect_reason "under-consumed" (Schedule.make inst steps)

let test_preemption_gap () =
  let inst = Instance.create ~m:2 ~scale:10 [ (2, 4) ] in
  let steps =
    [ step [ alloc 0 4 4 ]; step []; step [ alloc 0 4 4 ] ]
  in
  expect_reason "preempted" (Schedule.make inst steps);
  (* ...but with preemption_ok the same schedule passes. *)
  match Schedule.validate ~preemption_ok:true (Schedule.make inst steps) with
  | Ok () -> ()
  | Error v -> Alcotest.failf "preemption_ok should accept: %s" v.Schedule.reason

let test_unfinished () =
  let inst = Instance.create ~m:2 ~scale:10 [ (2, 4) ] in
  expect_reason "not finished" (Schedule.make inst [ step [ alloc 0 4 4 ] ])

let test_rle_under_consumption () =
  (* Under-consumption inside a repeat > 1 block must be rejected even if
     the totals happen to work out. *)
  let inst = Instance.create ~m:2 ~scale:10 [ (4, 4) ] in
  let bad = [ { Schedule.allocs = [ alloc 0 4 2 ]; repeat = 8 } ] in
  expect_reason "under-consumed" (Schedule.make inst bad);
  let good =
    [ { Schedule.allocs = [ alloc 0 4 4 ]; repeat = 4 } ]
  in
  match Schedule.validate (Schedule.make inst good) with
  | Ok () -> ()
  | Error v -> Alcotest.failf "RLE schedule should be valid: %s" v.Schedule.reason

let test_negative_values () =
  let inst, steps = valid_fixture () in
  expect_reason "negative"
    (Schedule.make inst (step [ alloc 0 (-1) 0 ] :: List.tl steps))

(* --- export --- *)

let test_csv_exports () =
  let inst = Instance.create ~m:3 ~scale:10 [ (2, 3); (1, 8) ] in
  let sched, trace = Listing1.run_traced inst in
  let csv = Export.schedule_to_csv sched in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check string) "header" "step,job,assigned,consumed" (List.hd lines);
  (* one row per allocation per step; total consumption recoverable *)
  let total =
    List.fold_left
      (fun acc line ->
        match String.split_on_char ',' line with
        | [ _; _; _; c ] when c <> "consumed" -> acc + int_of_string c
        | _ -> acc)
      0 lines
  in
  Alcotest.(check int) "consumption adds up" (Instance.total_requirement inst) total;
  let icsv = Export.instance_to_csv inst in
  Alcotest.(check int) "instance rows" 3 (List.length (String.split_on_char '\n' (String.trim icsv)));
  let ucsv = Export.utilization_to_csv sched in
  let ulines = String.split_on_char '\n' (String.trim ucsv) in
  Alcotest.(check string) "utilization header" "t0,len,assigned,consumed,jobs"
    (List.hd ulines);
  (* one row per RLE block, and the block lengths cover the makespan *)
  Alcotest.(check int) "utilization rows"
    (List.length sched.Schedule.steps + 1)
    (List.length ulines);
  let covered =
    List.fold_left
      (fun acc line ->
        match String.split_on_char ',' line with
        | _ :: len :: _ when len <> "len" -> acc + int_of_string len
        | _ -> acc)
      0 ulines
  in
  Alcotest.(check int) "utilization covers makespan" sched.Schedule.makespan covered;
  let rcsv = Export.schedule_to_csv_rle sched in
  Alcotest.(check string) "rle header" "t0,repeat,job,assigned,consumed"
    (List.hd (String.split_on_char '\n' rcsv));
  (* the RLE export carries the same total consumption *)
  let rle_total =
    List.fold_left
      (fun acc line ->
        match String.split_on_char ',' line with
        | [ _; rep; _; _; c ] when c <> "consumed" ->
            acc + (int_of_string rep * int_of_string c)
        | _ -> acc)
      0
      (String.split_on_char '\n' (String.trim rcsv))
  in
  Alcotest.(check int) "rle consumption adds up" (Instance.total_requirement inst)
    rle_total;
  let tcsv = Export.trace_to_csv trace inst in
  Alcotest.(check bool) "trace has rows" true (String.length tcsv > 60)

let test_job_spans () =
  for seed = 1 to 60 do
    let rng = Rng.create (seed * 71) in
    let inst = Workload.Sos_gen.random_instance rng () in
    let sched = Fast.run inst in
    let spans = Schedule.job_spans sched in
    Alcotest.(check int) "every job has a span" (Instance.n inst) (List.length spans);
    (* spans agree with the processor assignment's start times *)
    let starts = Schedule.processor_assignment sched in
    List.iter
      (fun (j, p, t0) ->
        ignore p;
        match List.find_opt (fun (j', _, _) -> j' = j) spans with
        | Some (_, first, last) ->
            if first <> t0 then Alcotest.failf "seed %d: job %d span start mismatch" seed j;
            if last < first then Alcotest.failf "seed %d: job %d inverted span" seed j
        | None -> Alcotest.failf "seed %d: job %d missing span" seed j)
      starts
  done

let test_completion_times () =
  (* Hand-checkable: job0 (s=6, r=2) finishes in step 3; job1 (s=8, r=4) in
     step 2; job2 (s=6, r=6) in step 3. *)
  let inst = base_instance () in
  let sched = Schedule.make inst (good_steps ()) in
  Alcotest.(check (array int)) "completions" [| 3; 2; 3 |]
    (Schedule.completion_times sched);
  Alcotest.(check int) "sum" 8 (Schedule.sum_completion_times sched);
  (* consistency on RLE outputs of the fast solver *)
  for seed = 1 to 60 do
    let rng = Rng.create (seed * 73) in
    let inst = Workload.Sos_gen.random_instance rng () in
    let sched = Fast.run inst in
    let c = Schedule.completion_times sched in
    let c' = Schedule.completion_times (Schedule.expand sched) in
    if c <> c' then Alcotest.failf "seed %d: RLE vs expanded completions differ" seed;
    Array.iter
      (fun f ->
        if f < 1 || f > sched.Schedule.makespan then
          Alcotest.failf "seed %d: completion %d out of range" seed f)
      c;
    (* the makespan is the max completion *)
    Alcotest.(check int) "makespan = max completion" sched.Schedule.makespan
      (Array.fold_left max 0 c)
  done

let test_expand_agreement () =
  for seed = 1 to 80 do
    let rng = Rng.create (seed * 67) in
    let scale = Rng.int_in rng 10 80 in
    let m = Rng.int_in rng 2 6 in
    let specs =
      List.init (Rng.int_in rng 1 10) (fun _ ->
          (Rng.int_in rng 1 200, Rng.int_in rng 1 (scale * 3 / 2)))
    in
    let inst = Instance.create ~m ~scale specs in
    let sched = Fast.run inst in
    let expanded = Schedule.expand sched in
    Alcotest.(check int) "makespan preserved" sched.Schedule.makespan
      expanded.Schedule.makespan;
    (match Schedule.validate expanded with
    | Ok () -> ()
    | Error v ->
        Alcotest.failf "seed %d: expanded schedule invalid at %d: %s" seed
          v.Schedule.at_step v.Schedule.reason);
    if Export.schedule_to_csv sched <> Export.schedule_to_csv expanded then
      Alcotest.failf "seed %d: CSV differs between RLE and expanded form" seed
  done

(* --- RLE-native analytics vs expand-then-compute reference --- *)

(* The old implementations expanded the RLE before computing; the rewritten
   ones fold over the blocks. These properties pin the two down to exact
   agreement on solver outputs (which contain repeat > 1 blocks). *)

let arb_instance =
  QCheck.(
    triple (int_range 2 6) (int_range 10 80)
      (list_of_size
         Gen.(int_range 1 12)
         (pair (int_range 1 300) (int_range 1 120))))

let instance_of (m, scale, specs) =
  Instance.create ~m ~scale (List.map (fun (p, r) -> (p, min r (scale * 3 / 2))) specs)

(* Reference: expand to repeat = 1 blocks and compute per step naively. *)
let ref_per_step sched f =
  let expanded = Schedule.expand sched in
  Array.of_list
    (List.map (fun (st : Schedule.step) -> f st.allocs) expanded.Schedule.steps)

let qcheck_utilization_matches_reference =
  Helpers.qcheck "utilization/jobs profiles ≡ expand-then-compute" arb_instance
    (fun spec ->
      let inst = instance_of spec in
      let sched = Fast.run inst in
      let scale = float_of_int inst.Instance.scale in
      let dense = Schedule.to_dense ~default:0.0 (Schedule.utilization sched) in
      let refd =
        ref_per_step sched (fun allocs ->
            float_of_int
              (List.fold_left (fun acc (a : Schedule.alloc) -> acc + a.consumed) 0 allocs)
            /. scale)
      in
      let densea =
        Schedule.to_dense ~default:0.0 (Schedule.assigned_utilization sched)
      in
      let refa =
        ref_per_step sched (fun allocs ->
            float_of_int
              (List.fold_left (fun acc (a : Schedule.alloc) -> acc + a.assigned) 0 allocs)
            /. scale)
      in
      let densej = Schedule.to_dense ~default:0 (Schedule.jobs_per_step sched) in
      let refj = ref_per_step sched List.length in
      dense = refd && densea = refa && densej = refj)

let qcheck_scalar_analytics_match_reference =
  Helpers.qcheck "completions/waste/spans ≡ expand-then-compute" arb_instance
    (fun spec ->
      let inst = instance_of spec in
      let sched = Fast.run inst in
      let expanded = Schedule.expand sched in
      Schedule.completion_times sched = Schedule.completion_times expanded
      && Schedule.total_waste sched = Schedule.total_waste expanded
      && Schedule.job_spans sched = Schedule.job_spans expanded
      && Schedule.processor_assignment sched = Schedule.processor_assignment expanded)

let qcheck_validate_verdict_agrees =
  (* Corrupt the RLE schedule in assorted ways; the validator must return
     the same verdict on the RLE form and on its expansion. *)
  Helpers.qcheck ~count:100 "validate verdict ≡ on RLE and expanded forms"
    QCheck.(pair arb_instance (int_range 0 4))
    (fun (spec, mutation) ->
      let inst = instance_of spec in
      let sched = Fast.run inst in
      let mutate_alloc (a : Schedule.alloc) =
        match mutation with
        | 0 -> a
        | 1 -> { a with consumed = a.consumed + 1 }
        | 2 -> { a with assigned = max 0 (a.assigned - 1) }
        | 3 -> { a with consumed = max 0 (a.consumed - 1) }
        | _ -> { a with job = a.job + 1 }
      in
      let mutated =
        match sched.Schedule.steps with
        | [] -> sched
        | st :: rest ->
            let st =
              match st.Schedule.allocs with
              | [] -> st
              | a :: others -> { st with Schedule.allocs = mutate_alloc a :: others }
            in
            { sched with Schedule.steps = st :: rest }
      in
      let verdict s = Result.is_ok (Schedule.validate s) in
      verdict mutated = verdict (Schedule.expand mutated))

let test_huge_volume_analytics () =
  (* pmax = 10^7: makespan is in the millions but the solver emits O(n)
     blocks; every analytic below must run off the blocks without ever
     materializing an O(makespan) array. *)
  let rng = Rng.create 909090 in
  let specs =
    List.init 50 (fun _ -> (Rng.int_in rng 1 10_000_000, Rng.int_in rng 1 720720))
  in
  let inst = Instance.create ~m:8 ~scale:720720 specs in
  let sched = Fast.run inst in
  let blocks = List.length sched.Schedule.steps in
  Alcotest.(check bool)
    (Printf.sprintf "huge makespan (%d), few blocks (%d)" sched.Schedule.makespan blocks)
    true
    (sched.Schedule.makespan > 1_000_000 && blocks < 10_000);
  let t0 = (Sys.time () [@sos.allow "R2: CPU-time budget assertion on the harness side; not solver-visible time"]) in
  Helpers.check_valid sched;
  let u = Schedule.utilization sched in
  Alcotest.(check bool) "profile segments ≤ blocks" true (Array.length u <= blocks);
  Alcotest.(check int) "profile covers makespan" sched.Schedule.makespan
    (Schedule.profile_length u);
  let c = Schedule.completion_times sched in
  Alcotest.(check int) "max completion = makespan" sched.Schedule.makespan
    (Array.fold_left max 0 c);
  let j = Schedule.jobs_per_step sched in
  Alcotest.(check bool) "jobs profile segments ≤ blocks" true (Array.length j <= blocks);
  ignore (Schedule.total_waste sched);
  ignore (Schedule.job_spans sched);
  ignore (Schedule.processor_assignment ~validate:false sched);
  let gantt = Schedule.render_gantt ~max_width:80 sched in
  Alcotest.(check bool) "gantt rendered" true (String.length gantt > 80);
  let ucsv = Export.utilization_to_csv sched in
  Alcotest.(check bool) "utilization csv rows ≤ blocks + header" true
    (List.length (String.split_on_char '\n' (String.trim ucsv)) <= blocks + 1);
  let dt = (Sys.time () [@sos.allow "R2: CPU-time budget assertion on the harness side; not solver-visible time"]) -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "analytics proportional to |steps| (%.3fs)" dt)
    true (dt < 5.0)

(* --- preemptive scheduler --- *)

let test_preemptive_valid_and_ge_lb () =
  for seed = 1 to 200 do
    let rng = Rng.create (seed * 53) in
    let inst = Workload.Sos_gen.random_instance rng () in
    let sched = Preemptive.run inst in
    (match Schedule.validate ~preemption_ok:true sched with
    | Ok () -> ()
    | Error v ->
        Alcotest.failf "seed %d: invalid preemptive schedule at %d: %s\n%s" seed
          v.Schedule.at_step v.Schedule.reason (Instance.to_string inst));
    let lb = Bounds.lower_bound inst in
    if sched.Schedule.makespan < lb then
      Alcotest.failf "seed %d: preemptive makespan %d < LB %d" seed
        sched.Schedule.makespan lb
  done

let test_preemptive_not_worse_than_serial () =
  (* LRPT water-filling should never exceed one-job-at-a-time. *)
  let inst = Instance.create ~m:4 ~scale:100 [ (2, 50); (2, 50); (2, 50); (2, 50) ] in
  let sched = Preemptive.run inst in
  Alcotest.(check int) "perfect packing" 4 sched.Schedule.makespan

(* --- fixed assignment --- *)

let test_fixed_assignment_valid () =
  for seed = 1 to 200 do
    let rng = Rng.create (seed * 59) in
    let inst = Workload.Sos_gen.random_instance rng () in
    List.iter
      (fun strategy ->
        let sched = Baselines.Fixed_assignment.run ~strategy inst in
        match Schedule.validate sched with
        | Ok () -> ()
        | Error v ->
            Alcotest.failf "seed %d: invalid fixed-assignment schedule at %d: %s\n%s"
              seed v.Schedule.at_step v.Schedule.reason (Instance.to_string inst))
      [ Baselines.Fixed_assignment.Round_robin; Baselines.Fixed_assignment.By_volume ]
  done

let test_fixed_assignment_queues () =
  let inst = Instance.create ~m:2 ~scale:10 [ (1, 1); (1, 2); (1, 3); (1, 4) ] in
  let queues = Baselines.Fixed_assignment.assign Baselines.Fixed_assignment.Round_robin inst in
  Alcotest.(check (list int)) "proc 0" [ 0; 2 ] queues.(0);
  Alcotest.(check (list int)) "proc 1" [ 1; 3 ] queues.(1)

let test_window_beats_fixed_assignment_usually () =
  (* Joint optimization should win on average. *)
  let wins = ref 0 and total = ref 0 in
  for seed = 1 to 50 do
    let rng = Rng.create (seed * 61) in
    let inst =
      Workload.Sos_gen.generate rng Workload.Sos_gen.bimodal ~n:80 ~m:8 ()
    in
    let w = (Fast.run inst).Schedule.makespan in
    let f = (Baselines.Fixed_assignment.run inst).Schedule.makespan in
    incr total;
    if w <= f then incr wins
  done;
  Alcotest.(check bool)
    (Printf.sprintf "window wins %d/%d" !wins !total)
    true
    (!wins * 10 >= !total * 8)

let suite =
  ( "schedule",
    [
      Alcotest.test_case "fixture sanity" `Quick test_good_schedule;
      Alcotest.test_case "inject: resource overuse" `Quick test_overuse;
      Alcotest.test_case "inject: too many jobs" `Quick test_too_many_jobs;
      Alcotest.test_case "inject: double allocation" `Quick test_double_allocation;
      Alcotest.test_case "inject: unknown job" `Quick test_unknown_job;
      Alcotest.test_case "inject: consumption above rate" `Quick test_over_consumption_rate;
      Alcotest.test_case "inject: total over-consumption" `Quick test_over_consumption_total;
      Alcotest.test_case "inject: mid-run under-consumption" `Quick
        test_under_consumption_midrun;
      Alcotest.test_case "inject: preemption gap" `Quick test_preemption_gap;
      Alcotest.test_case "inject: unfinished job" `Quick test_unfinished;
      Alcotest.test_case "inject: RLE under-consumption" `Quick test_rle_under_consumption;
      Alcotest.test_case "inject: negative values" `Quick test_negative_values;
      Alcotest.test_case "csv exports" `Quick test_csv_exports;
      Alcotest.test_case "RLE expand agreement" `Quick test_expand_agreement;
      qcheck_utilization_matches_reference;
      qcheck_scalar_analytics_match_reference;
      qcheck_validate_verdict_agrees;
      Alcotest.test_case "huge-volume analytics stay RLE-native" `Quick
        test_huge_volume_analytics;
      Alcotest.test_case "job spans" `Quick test_job_spans;
      Alcotest.test_case "completion times" `Quick test_completion_times;
      Alcotest.test_case "preemptive: valid & ≥ LB" `Quick test_preemptive_valid_and_ge_lb;
      Alcotest.test_case "preemptive: perfect packing" `Quick
        test_preemptive_not_worse_than_serial;
      Alcotest.test_case "fixed assignment: valid" `Quick test_fixed_assignment_valid;
      Alcotest.test_case "fixed assignment: queues" `Quick test_fixed_assignment_queues;
      Alcotest.test_case "window beats fixed assignment" `Quick
        test_window_beats_fixed_assignment_usually;
    ] )
