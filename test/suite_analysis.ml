(* Layer 11 — sosgraph, the whole-program analysis passes.

   Where soslint's rules are per-file (suite_lint.ml), sosgraph's passes
   A1-A4 are interprocedural: every fixture below plants its violation at
   least one call-graph edge away from the entry point that makes it a
   violation, so the tests fail if the call graph, the per-module
   resolution, or the reachability closures break — not just the syntactic
   matchers. Same matrix as the lint suite: per pass one violating fixture
   (exact file:line listing, exit 1), one clean fixture exercising the
   interprocedural escape hatch (a callee that polls, an Atomic, a
   taxonomy carrier), and one suppressed via [@sos.allow]. Plus the
   cross-cutting checks: byte-identical double runs on fixtures and on
   the repo itself, the JSON report, the per-pass baseline cycle, and the
   invariant that the repo is clean under its committed baseline. *)

let sosgraph = "../tools/analysis/sosgraph.exe"
let fixtures = "fixtures_analysis"

let run_graph args =
  let ic = Unix.open_process_in (sosgraph ^ " " ^ args) in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let code =
    match Unix.close_process_in ic with
    | Unix.WEXITED n -> n
    | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> -1
  in
  (code, Buffer.contents buf)

let graph_root ?(extra = "") root =
  run_graph (Printf.sprintf "--root %s/%s %s lib bin bench" fixtures root extra)

let summary_line ~files ~functions ~edges ~violations ~suppressed ~sites =
  Printf.sprintf
    "sosgraph: %d files, %d functions, %d edges, %d violations, %d suppressed hits via %d \
     [@sos.allow] sites\n"
    files functions edges violations suppressed sites

(* ------------------------------------------------- per-pass fixtures *)

(* (pass, violating listing, (files, functions, edges) per variant).
   Sizes differ per fixture because the clean variants add the callee
   that provides the escape hatch. *)
let expected =
  [
    ( "a1",
      [
        "lib/sos/fast.ml:3 A1 det-class solver entry Sos.Fast.run is wall-clock/RNG/DLS/env \
         tainted: via Sos.Fast.run -> Sos.Fast.helper -> Sos.Fast.helper2; seed wall-clock \
         Unix.gettimeofday (lib/sos/fast.ml:1)";
      ],
      ((1, 3, 2), (1, 3, 2), (1, 3, 2)) );
    ( "a2",
      [
        "lib/sos/fast.ml:3 A2 while loop in Sos.Fast.spin (reachable from Sos.Fast.run) never \
         reaches Robust.Context.poll/Chaos.point \xe2\x80\x94 un-cancellable";
      ],
      ((1, 2, 1), (1, 3, 3), (1, 2, 1)) );
    ( "a3",
      [
        "lib/sos/cache.ml:1 A3 module-toplevel mutable state Sos.Cache.hits (ref) is used by \
         Sos.Cache.bump, which runs on pool workers (reachable from Engine.Pool.worker): use \
         Atomic, Tls, or an explicit allow";
      ],
      ((2, 3, 2), (2, 3, 2), (2, 3, 2)) );
    ( "a4",
      [
        "lib/sos/packer.ml:1 A4 failwith in Sos.Packer.go is reachable from sosctl \
         (Sosctl.main) but maps to no Robust.Failure class";
      ],
      ((2, 2, 1), (2, 2, 1), (2, 2, 1)) );
  ]

let test_pass_violating pass listing (files, functions, edges) () =
  let code, out = graph_root (pass ^ "_bad") in
  let expected =
    String.concat "" (List.map (fun l -> l ^ "\n") listing)
    ^ summary_line ~files ~functions ~edges ~violations:(List.length listing) ~suppressed:0
        ~sites:0
  in
  Alcotest.(check string) (pass ^ " listing") expected out;
  Alcotest.(check int) (pass ^ " exit") 1 code

let test_pass_clean pass (files, functions, edges) () =
  let code, out = graph_root (pass ^ "_clean") in
  Alcotest.(check string)
    (pass ^ " clean listing")
    (summary_line ~files ~functions ~edges ~violations:0 ~suppressed:0 ~sites:0)
    out;
  Alcotest.(check int) (pass ^ " clean exit") 0 code

let test_pass_allow pass (files, functions, edges) () =
  let code, out = graph_root (pass ^ "_allow") in
  Alcotest.(check string)
    (pass ^ " allow listing")
    (summary_line ~files ~functions ~edges ~violations:0 ~suppressed:1 ~sites:1)
    out;
  Alcotest.(check int) (pass ^ " allow exit") 0 code

(* --------------------------------------------------- cross-cutting *)

let test_deterministic_output () =
  let fixture_args = Printf.sprintf "--root %s/a1_bad lib bin bench" fixtures in
  let code1, out1 = run_graph fixture_args in
  let code2, out2 = run_graph fixture_args in
  Alcotest.(check string) "fixture bytes identical" out1 out2;
  Alcotest.(check int) "fixture exits agree" code1 code2;
  let repo_args =
    "--root .. --exclude-dir test/fixtures_lint --exclude-dir test/fixtures_analysis lib bin \
     bench test"
  in
  let _, repo1 = run_graph repo_args in
  let _, repo2 = run_graph repo_args in
  Alcotest.(check string) "repo scan bytes identical" repo1 repo2

let test_json_report () =
  let path = Filename.temp_file "sosgraph" ".json" in
  let _code, _out = graph_root ~extra:("--json " ^ path) "a4_bad" in
  let ic = open_in_bin path in
  let json = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  let contains needle =
    let nl = String.length needle and jl = String.length json in
    let rec go i = i + nl <= jl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle -> Alcotest.(check bool) ("contains " ^ needle) true (contains needle))
    [
      "\"files_checked\": 2";
      "\"functions\": 2";
      "\"edges\": 1";
      "\"violations\": 1";
      "\"suppressed\": 0";
      "\"allow_sites\": 0";
      "{\"id\": \"A1\", \"name\": \"determinism-taint\", \"violations\": 0, \"suppressed\": 0}";
      "{\"id\": \"A4\", \"name\": \"failure-taxonomy-reachability\", \"violations\": 1, \
       \"suppressed\": 0}";
      "\"file\": \"lib/sos/packer.ml\", \"line\": 1, \"pass\": \"A4\"";
    ];
  let count c = String.fold_left (fun acc x -> if x = c then acc + 1 else acc) 0 json in
  Alcotest.(check int) "balanced braces" (count '{') (count '}');
  Alcotest.(check int) "balanced brackets" (count '[') (count ']');
  Alcotest.(check bool) "ends with newline" true (json.[String.length json - 1] = '\n')

let test_baseline_roundtrip () =
  let path = Filename.temp_file "sosgraph" ".baseline" in
  let code, _ = graph_root ~extra:("--write-baseline " ^ path) "a4_allow" in
  Alcotest.(check int) "write exit" 0 code;
  let ic = open_in path in
  let rows = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string) "per-pass rows" "A1 0\nA2 0\nA3 0\nA4 1\n" rows;
  let code, _ = graph_root ~extra:("--baseline " ^ path) "a4_allow" in
  Alcotest.(check int) "within baseline" 0 code;
  Sys.remove path

let test_baseline_regression () =
  let path = Filename.temp_file "sosgraph" ".baseline" in
  let oc = open_out path in
  output_string oc "A4 0\n";
  close_out oc;
  let code, out = graph_root ~extra:("--baseline " ^ path) "a4_allow" in
  Sys.remove path;
  Alcotest.(check int) "allow-count increase fails" 1 code;
  let mentions =
    String.split_on_char '\n' out
    |> List.exists (fun l ->
           String.length l >= 3 && String.sub l 0 3 = "A4:"
           && String.length l > String.length "A4: 1 suppressed")
  in
  Alcotest.(check bool) "explains the baseline breach" true mentions

(* The repo itself must analyse clean under the committed per-pass
   baseline: this is the invariant CI enforces via `dune build @analyze`,
   re-checked here so `dune runtest` alone also catches a regression. *)
let test_repo_is_clean () =
  let code, out =
    run_graph
      "--root .. --baseline ../tools/analysis/allow_baseline.txt --exclude-dir \
       test/fixtures_lint --exclude-dir test/fixtures_analysis lib bin bench test"
  in
  let lines = String.split_on_char '\n' out in
  let listing =
    List.filter
      (fun l -> l <> "" && not (String.length l >= 9 && String.sub l 0 9 = "sosgraph:"))
      lines
  in
  Alcotest.(check (list string)) "no violations in lib/ bin/ bench/ test/" [] listing;
  Alcotest.(check int) "repo analyses clean" 0 code

let suite =
  let per_pass =
    expected
    |> List.concat_map (fun (pass, listing, (bad, clean, allow)) ->
           [
             Alcotest.test_case (pass ^ " violating fixture") `Quick
               (test_pass_violating pass listing bad);
             Alcotest.test_case (pass ^ " clean fixture") `Quick (test_pass_clean pass clean);
             Alcotest.test_case (pass ^ " suppressed fixture") `Quick
               (test_pass_allow pass allow);
           ])
  in
  ( "analysis",
    per_pass
    @ [
        Alcotest.test_case "output byte-identical across runs" `Quick test_deterministic_output;
        Alcotest.test_case "json report" `Quick test_json_report;
        Alcotest.test_case "baseline roundtrip" `Quick test_baseline_roundtrip;
        Alcotest.test_case "baseline regression rejected" `Quick test_baseline_regression;
        Alcotest.test_case "repo analyses clean" `Quick test_repo_is_clean;
      ] )
