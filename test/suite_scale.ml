(* Large-scale smoke tests: the implementation stays correct and fast at
   sizes two orders of magnitude above the rest of the suite. *)

open Sos
module Rng = Prelude.Rng

let test_fast_large () =
  let rng = Rng.create 424242 in
  let inst =
    Workload.Sos_gen.generate rng Workload.Sos_gen.bimodal ~n:5000 ~m:32 ()
  in
  let t0 = (Sys.time () [@sos.allow "R2: CPU-time budget assertion on the harness side; not solver-visible time"]) in
  let sched = Fast.run inst in
  let dt = (Sys.time () [@sos.allow "R2: CPU-time budget assertion on the harness side; not solver-visible time"]) -. t0 in
  Helpers.check_valid sched;
  let lb = Bounds.lower_bound inst in
  Alcotest.(check bool) "within guarantee" true
    (float_of_int sched.Schedule.makespan
    <= Bounds.guarantee_general ~m:32 *. float_of_int lb);
  Alcotest.(check bool) (Printf.sprintf "fast enough (%.2fs)" dt) true (dt < 20.0)

let test_fast_huge_volumes () =
  let rng = Rng.create 434343 in
  let specs =
    List.init 500 (fun _ -> (Rng.int_in rng 1 1_000_000, Rng.int_in rng 1 720720))
  in
  let inst = Instance.create ~m:16 ~scale:720720 specs in
  let sched, iters = Fast.run_count inst in
  Helpers.check_valid sched;
  Alcotest.(check bool)
    (Printf.sprintf "iterations (%d) independent of volumes (makespan %d)" iters
       sched.Schedule.makespan)
    true
    (iters < 20_000 && sched.Schedule.makespan > 1_000_000)

let test_splittable_large () =
  let rng = Rng.create 454545 in
  let items =
    List.init 3000 (fun i -> { Splittable.id = i; size = Rng.int_in rng 1 1000 })
  in
  let bins = Splittable.pack items ~size:16 ~budget:500 in
  let total =
    List.fold_left
      (fun acc bin -> List.fold_left (fun acc (_, a) -> acc + a) acc bin)
      0 bins
  in
  Alcotest.(check int) "mass conserved"
    (List.fold_left (fun acc it -> acc + it.Splittable.size) 0 items)
    total

let test_sas_large () =
  let rng = Rng.create 464646 in
  let inst = Workload.Sas_gen.generate rng Workload.Sas_gen.cloud_mix ~k:400 ~m:16 () in
  let report = Sas.Combined.run inst in
  (match Sos.Schedule.validate ~preemption_ok:true report.Sas.Combined.schedule with
  | Ok () -> ()
  | Error v -> Alcotest.failf "invalid at %d: %s" v.Sos.Schedule.at_step v.Sos.Schedule.reason);
  let bound = Sas.Bounds.guarantee ~m:16 in
  let ratio = Sas.Combined.ratio report in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.3f within %.3f + o(1)" ratio bound)
    true
    (ratio <= bound +. 0.25)

let test_online_large () =
  let rng = Rng.create 474747 in
  let arrivals =
    List.init 2000 (fun _ ->
        {
          Online.release = Rng.int_in rng 0 500;
          size = Rng.int_in rng 1 8;
          req = Rng.int_in rng 1 10_000;
        })
  in
  let r = Online.run ~m:24 ~scale:10_000 arrivals in
  (match Schedule.validate r.Online.schedule with
  | Ok () -> ()
  | Error v -> Alcotest.failf "invalid at %d: %s" v.Schedule.at_step v.Schedule.reason);
  Alcotest.(check bool) "releases respected" true (Online.respects_releases r arrivals)

let suite =
  ( "scale",
    [
      Alcotest.test_case "fast n=5000" `Slow test_fast_large;
      Alcotest.test_case "fast with 10^6 volumes" `Slow test_fast_huge_volumes;
      Alcotest.test_case "splittable n=3000" `Slow test_splittable_large;
      Alcotest.test_case "sas k=400" `Slow test_sas_large;
      Alcotest.test_case "online n=2000" `Slow test_online_large;
    ] )
