let () =
  Alcotest.run "sharing-is-caring"
    [
      Suite_prelude.suite;
      Suite_instance.suite;
      Suite_window.suite;
      Suite_algorithm.suite;
      Suite_binpack.suite;
      Suite_exact.suite;
      Suite_sas.suite;
      Suite_baselines.suite;
      Suite_workload.suite;
      Suite_specs.suite;
      Suite_schedule.suite;
      Suite_assign.suite;
      Suite_online.suite;
      Suite_corpus.suite;
      Suite_scale.suite;
      Suite_engine.suite;
      Suite_obs.suite;
      Suite_robust.suite;
      Suite_serve.suite;
      Suite_lint.suite;
      Suite_analysis.suite;
    ]
