(* Tests for the online-arrivals extension and the SVG renderer. *)

open Sos
module Rng = Prelude.Rng

let random_arrivals rng =
  let n = Rng.int_in rng 1 25 in
  List.init n (fun _ ->
      {
        Online.release = Rng.int_in rng 0 30;
        size = Rng.int_in rng 1 6;
        req = Rng.int_in rng 1 120;
      })

let test_online_all_at_zero_matches_offline_spirit () =
  (* With all releases 0 the online scheduler is a plain greedy; it must be
     a valid non-preemptive schedule within the general guarantee window. *)
  for seed = 1 to 100 do
    let rng = Rng.create (seed * 101) in
    let arrivals =
      List.init (Rng.int_in rng 1 30) (fun _ ->
          { Online.release = 0; size = Rng.int_in rng 1 6; req = Rng.int_in rng 1 120 })
    in
    let m = Rng.int_in rng 2 8 in
    let r = Online.run ~m ~scale:100 arrivals in
    (match Schedule.validate r.Online.schedule with
    | Ok () -> ()
    | Error v ->
        Alcotest.failf "seed %d: invalid online schedule at %d: %s" seed
          v.Schedule.at_step v.Schedule.reason);
    let lb = Online.lower_bound ~m ~scale:100 arrivals in
    if r.Online.makespan < lb then
      Alcotest.failf "seed %d: online makespan %d < clairvoyant LB %d" seed
        r.Online.makespan lb
  done

let test_online_respects_releases () =
  for seed = 1 to 150 do
    let rng = Rng.create (seed * 103) in
    let arrivals = random_arrivals rng in
    let m = Rng.int_in rng 2 8 in
    let r = Online.run ~m ~scale:100 arrivals in
    if not (Online.respects_releases r arrivals) then
      Alcotest.failf "seed %d: a job started before its release" seed;
    match Schedule.validate r.Online.schedule with
    | Ok () -> ()
    | Error v ->
        Alcotest.failf "seed %d: invalid at %d: %s" seed v.Schedule.at_step
          v.Schedule.reason
  done

let test_online_idle_then_burst () =
  (* One job released at t = 10: the schedule must wait. *)
  let r =
    Online.run ~m:3 ~scale:10 [ { Online.release = 10; size = 2; req = 5 } ]
  in
  Alcotest.(check int) "starts at release" 10 r.Online.start_times.(0);
  Alcotest.(check int) "makespan = 12" 12 r.Online.makespan

let test_online_ratio_reasonable () =
  (* Against the clairvoyant LB the greedy should stay within a small
     constant on Poisson-ish arrivals. *)
  let worst = ref 0.0 in
  for seed = 1 to 60 do
    let rng = Rng.create (seed * 107) in
    let arrivals = random_arrivals rng in
    let r = Online.run ~m:6 ~scale:100 arrivals in
    let lb = Online.lower_bound ~m:6 ~scale:100 arrivals in
    worst := max !worst (float_of_int r.Online.makespan /. float_of_int lb)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "worst online ratio %.3f <= 3.0" !worst)
    true (!worst <= 3.0)

let test_online_empty () =
  let r = Online.run ~m:4 ~scale:10 [] in
  Alcotest.(check int) "empty makespan" 0 r.Online.makespan

(* --- incremental sessions --- *)

let check_same_result ~ctx (incr : Online.result) (scratch : Online.result) =
  Alcotest.(check string)
    (ctx ^ ": instance")
    (Instance.to_string scratch.Online.instance)
    (Instance.to_string incr.Online.instance);
  Alcotest.(check int) (ctx ^ ": makespan") scratch.Online.makespan incr.Online.makespan;
  Alcotest.(check (array int))
    (ctx ^ ": start times")
    scratch.Online.start_times incr.Online.start_times;
  if incr.Online.schedule.Schedule.steps <> scratch.Online.schedule.Schedule.steps
  then Alcotest.failf "%s: step lists differ" ctx

let test_session_matches_scratch () =
  (* The qcheck-style core property: drive a session arrival by arrival,
     solving at random prefixes, and every answer must be byte-identical
     to a from-scratch [Online.run] on the same prefix — whichever of the
     cached / extended / full paths the session picked. *)
  for seed = 1 to 120 do
    let rng = Rng.create (seed * 271) in
    let m = Rng.int_in rng 2 8 in
    let arrivals =
      (* Mix of history-rewriting early releases and frontier-extending
         late ones, so all three solve paths occur across the loop. *)
      List.init (Rng.int_in rng 1 20) (fun i ->
          let release =
            if Rng.int_in rng 0 3 = 0 then Rng.int_in rng 0 5
            else Rng.int_in rng 0 (8 * (i + 1))
          in
          { Online.release; size = Rng.int_in rng 1 5; req = Rng.int_in rng 1 120 })
    in
    let session = Online.Session.create ~m ~scale:100 () in
    List.iteri
      (fun i a ->
        (match Online.Session.add session a with
        | Ok pos -> Alcotest.(check int) "position" i pos
        | Error r ->
            Alcotest.failf "seed %d: unexpected reject: %s" seed
              (Online.Session.reject_message r));
        if Rng.int_in rng 0 2 = 0 then begin
          let prefix = Online.Session.arrivals session in
          check_same_result
            ~ctx:(Printf.sprintf "seed %d prefix %d" seed (i + 1))
            (Online.Session.solve session)
            (Online.run ~m ~scale:100 prefix)
        end)
      arrivals;
    check_same_result
      ~ctx:(Printf.sprintf "seed %d final" seed)
      (Online.Session.solve session)
      (Online.run ~m ~scale:100 arrivals)
  done

let test_session_solve_paths () =
  (* Strictly increasing releases beyond each frontier: after the first
     solve, later solves must take the extend path; repeated solves with
     no new jobs must answer from cache. *)
  let session = Online.Session.create ~m:4 ~scale:100 () in
  let add release =
    match
      Online.Session.add session { Online.release; size = 2; req = 50 }
    with
    | Ok _ -> ()
    | Error r -> Alcotest.failf "reject: %s" (Online.Session.reject_message r)
  in
  add 0;
  ignore (Online.Session.solve session);
  let frontier = (Online.Session.solve session).Online.makespan in
  add (frontier + 5);
  ignore (Online.Session.solve session);
  ignore (Online.Session.solve session);
  add 0;
  (* rewrites history: must fall back to a full re-solve *)
  ignore (Online.Session.solve session);
  let stats = Online.Session.stats session in
  Alcotest.(check int) "full solves" 2 stats.Online.Session.full_solves;
  Alcotest.(check int) "extended solves" 1 stats.Online.Session.extended_solves;
  Alcotest.(check int) "cached hits" 2 stats.Online.Session.cached_hits;
  check_same_result ~ctx:"paths final" (Online.Session.solve session)
    (Online.run ~m:4 ~scale:100 (Online.Session.arrivals session))

let test_session_budgets () =
  let session =
    Online.Session.create ~max_jobs:2 ~max_volume:5 ~m:4 ~scale:100 ()
  in
  let arrival size = { Online.release = 0; size; req = 10 } in
  (match Online.Session.add session (arrival 3) with
  | Ok 0 -> ()
  | _ -> Alcotest.fail "first add should land at position 0");
  (match Online.Session.add session (arrival 3) with
  | Error (Online.Session.Volume_budget { cap = 5; volume = 3 }) -> ()
  | Ok _ -> Alcotest.fail "volume budget not enforced"
  | Error r -> Alcotest.failf "wrong reject: %s" (Online.Session.reject_message r));
  (match Online.Session.add session (arrival 2) with
  | Ok 1 -> ()
  | _ -> Alcotest.fail "fitting job rejected");
  (match Online.Session.add session (arrival 1) with
  | Error (Online.Session.Jobs_budget { cap = 2 }) -> ()
  | Ok _ -> Alcotest.fail "job budget not enforced"
  | Error r -> Alcotest.failf "wrong reject: %s" (Online.Session.reject_message r));
  (match Online.Session.add session { Online.release = -1; size = 1; req = 1 } with
  | Error (Online.Session.Bad_arrival _) -> ()
  | _ -> Alcotest.fail "negative release admitted");
  (* Rejections left the session untouched: still solvable, two jobs. *)
  Alcotest.(check int) "jobs" 2 (Online.Session.jobs session);
  Alcotest.(check int) "volume" 5 (Online.Session.volume session);
  check_same_result ~ctx:"budget final" (Online.Session.solve session)
    (Online.run ~m:4 ~scale:100 (Online.Session.arrivals session))

let test_session_peek_and_dirty () =
  let session = Online.Session.create ~m:4 ~scale:100 () in
  Alcotest.(check bool) "fresh session is dirty" true (Online.Session.dirty session);
  Alcotest.(check bool) "no peek yet" true (Online.Session.peek session = None);
  (match Online.Session.add session { Online.release = 0; size = 2; req = 50 } with
  | Ok _ -> ()
  | Error r -> Alcotest.failf "reject: %s" (Online.Session.reject_message r));
  let r = Online.Session.solve session in
  Alcotest.(check bool) "clean after solve" false (Online.Session.dirty session);
  (match Online.Session.peek session with
  | Some p -> Alcotest.(check int) "peek = last solve" r.Online.makespan p.Online.makespan
  | None -> Alcotest.fail "peek empty after solve");
  (match Online.Session.add session { Online.release = 0; size = 2; req = 50 } with
  | Ok _ -> ()
  | Error r -> Alcotest.failf "reject: %s" (Online.Session.reject_message r));
  Alcotest.(check bool) "dirty after add" true (Online.Session.dirty session);
  (* peek still answers with the stale committed schedule *)
  (match Online.Session.peek session with
  | Some p -> Alcotest.(check int) "stale peek" r.Online.makespan p.Online.makespan
  | None -> Alcotest.fail "peek lost on add")

(* --- SVG --- *)

let test_svg_well_formed () =
  let inst = Instance.create ~m:3 ~scale:10 [ (2, 3); (2, 4); (1, 8); (3, 2) ] in
  let sched = Listing1.run inst in
  let svg = Svg.render ~title:"test" sched in
  let count_sub sub =
    let n = String.length sub and m = String.length svg in
    let rec go i acc =
      if i + n > m then acc
      else go (i + 1) (if String.sub svg i n = sub then acc + 1 else acc)
    in
    go 0 0
  in
  Alcotest.(check int) "one svg root open" 1 (count_sub "<svg ");
  Alcotest.(check int) "one svg root close" 1 (count_sub "</svg>");
  (* one bar per job + m background rows + utilization bars *)
  Alcotest.(check bool) "has job bars" true (count_sub "<title>job" = 4);
  Alcotest.(check bool) "has rects" true (count_sub "<rect" >= 4 + 3);
  Alcotest.(check bool) "mentions title" true (count_sub ">test</text>" = 1)

let test_svg_to_file () =
  let inst = Instance.create ~m:2 ~scale:10 [ (1, 5); (1, 5) ] in
  let sched = Listing1.run inst in
  let path = Filename.temp_file "sos" ".svg" in
  Svg.render_to_file path sched;
  let contents = In_channel.with_open_text path In_channel.input_all in
  Sys.remove path;
  Alcotest.(check bool) "file written" true (String.length contents > 200)

let suite =
  ( "online",
    [
      Alcotest.test_case "all-at-zero validity & LB" `Quick
        test_online_all_at_zero_matches_offline_spirit;
      Alcotest.test_case "releases respected" `Quick test_online_respects_releases;
      Alcotest.test_case "idle then burst" `Quick test_online_idle_then_burst;
      Alcotest.test_case "ratio reasonable" `Quick test_online_ratio_reasonable;
      Alcotest.test_case "empty" `Quick test_online_empty;
      Alcotest.test_case "session matches from-scratch" `Quick
        test_session_matches_scratch;
      Alcotest.test_case "session solve paths" `Quick test_session_solve_paths;
      Alcotest.test_case "session budgets" `Quick test_session_budgets;
      Alcotest.test_case "session peek & dirty" `Quick test_session_peek_and_dirty;
      Alcotest.test_case "svg well-formed" `Quick test_svg_well_formed;
      Alcotest.test_case "svg to file" `Quick test_svg_to_file;
    ] )
