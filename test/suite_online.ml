(* Tests for the online-arrivals extension and the SVG renderer. *)

open Sos
module Rng = Prelude.Rng

let random_arrivals rng =
  let n = Rng.int_in rng 1 25 in
  List.init n (fun _ ->
      {
        Online.release = Rng.int_in rng 0 30;
        size = Rng.int_in rng 1 6;
        req = Rng.int_in rng 1 120;
      })

let test_online_all_at_zero_matches_offline_spirit () =
  (* With all releases 0 the online scheduler is a plain greedy; it must be
     a valid non-preemptive schedule within the general guarantee window. *)
  for seed = 1 to 100 do
    let rng = Rng.create (seed * 101) in
    let arrivals =
      List.init (Rng.int_in rng 1 30) (fun _ ->
          { Online.release = 0; size = Rng.int_in rng 1 6; req = Rng.int_in rng 1 120 })
    in
    let m = Rng.int_in rng 2 8 in
    let r = Online.run ~m ~scale:100 arrivals in
    (match Schedule.validate r.Online.schedule with
    | Ok () -> ()
    | Error v ->
        Alcotest.failf "seed %d: invalid online schedule at %d: %s" seed
          v.Schedule.at_step v.Schedule.reason);
    let lb = Online.lower_bound ~m ~scale:100 arrivals in
    if r.Online.makespan < lb then
      Alcotest.failf "seed %d: online makespan %d < clairvoyant LB %d" seed
        r.Online.makespan lb
  done

let test_online_respects_releases () =
  for seed = 1 to 150 do
    let rng = Rng.create (seed * 103) in
    let arrivals = random_arrivals rng in
    let m = Rng.int_in rng 2 8 in
    let r = Online.run ~m ~scale:100 arrivals in
    if not (Online.respects_releases r arrivals) then
      Alcotest.failf "seed %d: a job started before its release" seed;
    match Schedule.validate r.Online.schedule with
    | Ok () -> ()
    | Error v ->
        Alcotest.failf "seed %d: invalid at %d: %s" seed v.Schedule.at_step
          v.Schedule.reason
  done

let test_online_idle_then_burst () =
  (* One job released at t = 10: the schedule must wait. *)
  let r =
    Online.run ~m:3 ~scale:10 [ { Online.release = 10; size = 2; req = 5 } ]
  in
  Alcotest.(check int) "starts at release" 10 r.Online.start_times.(0);
  Alcotest.(check int) "makespan = 12" 12 r.Online.makespan

let test_online_ratio_reasonable () =
  (* Against the clairvoyant LB the greedy should stay within a small
     constant on Poisson-ish arrivals. *)
  let worst = ref 0.0 in
  for seed = 1 to 60 do
    let rng = Rng.create (seed * 107) in
    let arrivals = random_arrivals rng in
    let r = Online.run ~m:6 ~scale:100 arrivals in
    let lb = Online.lower_bound ~m:6 ~scale:100 arrivals in
    worst := max !worst (float_of_int r.Online.makespan /. float_of_int lb)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "worst online ratio %.3f <= 3.0" !worst)
    true (!worst <= 3.0)

let test_online_empty () =
  let r = Online.run ~m:4 ~scale:10 [] in
  Alcotest.(check int) "empty makespan" 0 r.Online.makespan

(* --- SVG --- *)

let test_svg_well_formed () =
  let inst = Instance.create ~m:3 ~scale:10 [ (2, 3); (2, 4); (1, 8); (3, 2) ] in
  let sched = Listing1.run inst in
  let svg = Svg.render ~title:"test" sched in
  let count_sub sub =
    let n = String.length sub and m = String.length svg in
    let rec go i acc =
      if i + n > m then acc
      else go (i + 1) (if String.sub svg i n = sub then acc + 1 else acc)
    in
    go 0 0
  in
  Alcotest.(check int) "one svg root open" 1 (count_sub "<svg ");
  Alcotest.(check int) "one svg root close" 1 (count_sub "</svg>");
  (* one bar per job + m background rows + utilization bars *)
  Alcotest.(check bool) "has job bars" true (count_sub "<title>job" = 4);
  Alcotest.(check bool) "has rects" true (count_sub "<rect" >= 4 + 3);
  Alcotest.(check bool) "mentions title" true (count_sub ">test</text>" = 1)

let test_svg_to_file () =
  let inst = Instance.create ~m:2 ~scale:10 [ (1, 5); (1, 5) ] in
  let sched = Listing1.run inst in
  let path = Filename.temp_file "sos" ".svg" in
  Svg.render_to_file path sched;
  let contents = In_channel.with_open_text path In_channel.input_all in
  Sys.remove path;
  Alcotest.(check bool) "file written" true (String.length contents > 200)

let suite =
  ( "online",
    [
      Alcotest.test_case "all-at-zero validity & LB" `Quick
        test_online_all_at_zero_matches_offline_spirit;
      Alcotest.test_case "releases respected" `Quick test_online_respects_releases;
      Alcotest.test_case "idle then burst" `Quick test_online_idle_then_burst;
      Alcotest.test_case "ratio reasonable" `Quick test_online_ratio_reasonable;
      Alcotest.test_case "empty" `Quick test_online_empty;
      Alcotest.test_case "svg well-formed" `Quick test_svg_well_formed;
      Alcotest.test_case "svg to file" `Quick test_svg_to_file;
    ] )
