(* fixture: R6 violations — bare failure raising on a hot path *)
let run () = failwith "boom"
let bail () = raise Exit
