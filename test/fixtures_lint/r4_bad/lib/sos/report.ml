(* fixture: R4 violation — stdout write from library code *)
let show x = print_endline x
