(* fixture: R7 clean — explicit float comparators, int polymorphic ok *)
let close a b = Float.equal a b
let eq (a : int) b = a = b
