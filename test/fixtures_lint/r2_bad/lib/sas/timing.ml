(* fixture: R2 violation — wall-clock read outside Prelude.Clock *)
let stamp () = Unix.gettimeofday ()

(* and the alias evasion: [module U = Unix] must not launder the read *)
module U = Unix

let stamp2 () = U.time ()
