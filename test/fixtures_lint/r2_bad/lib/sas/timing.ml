(* fixture: R2 violation — wall-clock read outside Prelude.Clock *)
let stamp () = Unix.gettimeofday ()
