(* fixture: R4 suppressed at the binding *)
let[@sos.allow "R4: fixture — explicit stdout sink"] show x = print_endline x
