(* fixture: R5 suppressed at the expression *)
let dump f tbl = Hashtbl.iter f tbl [@sos.allow "R5: fixture — order-insensitive effect"]
