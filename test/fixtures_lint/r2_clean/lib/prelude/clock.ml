(* fixture: R2 scope — lib/prelude/clock.ml is the chokepoint *)
let now () = Unix.gettimeofday ()
