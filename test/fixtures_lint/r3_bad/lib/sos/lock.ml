(* fixture: R3 violation — Mutex in a library *)
let lock = Mutex.create ()
