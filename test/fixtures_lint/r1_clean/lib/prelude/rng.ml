(* fixture: R1 scope — lib/prelude/rng.ml is the sanctioned wrapper *)
let reseed () = Random.self_init ()
