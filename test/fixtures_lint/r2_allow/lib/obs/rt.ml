(* fixture: R2 suppressed at the binding *)
let[@sos.allow "R2: fixture — runtime-class observability sampling"] stamp () =
  Unix.gettimeofday ()
