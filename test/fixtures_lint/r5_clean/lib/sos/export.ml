(* fixture: R5 clean — point lookups have no iteration order *)
let get tbl k = Hashtbl.find_opt tbl k
