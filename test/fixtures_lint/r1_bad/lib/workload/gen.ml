(* fixture: R1 violation — stdlib Random global state in library code *)
let pick n = Random.int n
