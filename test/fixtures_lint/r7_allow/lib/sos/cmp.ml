(* fixture: R7 suppressed at the binding *)
let[@sos.allow "R7: fixture — operands proven nan-free"] close a b = a = (b *. 1.0)
