(* fixture: R6 suppressed at the expression *)
let check n =
  if n < 0 then invalid_arg "n" [@sos.allow "R6: fixture — argument contract at the entry point"]
