(* fixture: R4 scope — executables own their stdout *)
let show x = print_endline x
