[@@@sos.allow "R1: fixture — floor-level suppression for the whole file"]

let pick n = Random.int n
