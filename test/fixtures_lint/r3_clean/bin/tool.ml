(* fixture: R3 scope — executables may lock *)
let lock = Mutex.create ()
