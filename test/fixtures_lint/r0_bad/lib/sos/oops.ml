[@@@sos.allow "bogus payload with no rule id"]

let unused = 1 [@sos.allow "R1: nothing to suppress here"]
