(* fixture: R7 violations — polymorphic compare on float-bearing operands *)
let close a b = a = (b *. 1.0)
let lo a b = min a (b +. 0.5)
