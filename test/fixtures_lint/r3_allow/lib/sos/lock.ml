(* fixture: R3 suppressed at the expression *)
let lock = Mutex.create () [@sos.allow "R3: fixture — sanctioned blocking primitive"]
