(* fixture: R5 violation — unordered Hashtbl iteration *)
let dump f tbl = Hashtbl.iter f tbl
