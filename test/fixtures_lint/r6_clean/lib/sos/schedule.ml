(* fixture: R6 scope — analytics modules keep the stdlib contract *)
let run () = failwith "boom"
