(* Tests for the comparison baselines: Garey–Graham list scheduling and the
   greedy fair-share scheduler. *)

module Rng = Prelude.Rng
open Sos

let test_list_scheduling_serializes_conflicts () =
  (* Two jobs each needing the whole resource cannot overlap: 2·p steps. *)
  let inst = Instance.create ~m:4 ~scale:10 [ (3, 10); (3, 10) ] in
  let s = Baselines.List_scheduling.run inst in
  Helpers.check_valid s;
  Alcotest.(check int) "serialized" 6 s.Schedule.makespan

let test_list_scheduling_parallelizes () =
  (* Four jobs of 1/4 requirement run together. *)
  let inst = Instance.create ~m:4 ~scale:100 [ (5, 25); (5, 25); (5, 25); (5, 25) ] in
  let s = Baselines.List_scheduling.run inst in
  Helpers.check_valid s;
  Alcotest.(check int) "parallel" 5 s.Schedule.makespan

let test_list_scheduling_oversize_requirement () =
  (* r > scale is clamped: job takes ⌈s/scale⌉ steps alone. *)
  let inst = Instance.create ~m:2 ~scale:10 [ (2, 25) ] in
  let s = Baselines.List_scheduling.run inst in
  Helpers.check_valid s;
  Alcotest.(check int) "clamped duration" 5 s.Schedule.makespan

let test_greedy_fair_shares () =
  (* Two identical full-resource jobs share 50/50 under water-filling:
     each needs 2·p steps; they run concurrently → makespan 2·p. *)
  let inst = Instance.create ~m:2 ~scale:10 [ (3, 10); (3, 10) ] in
  let s = Baselines.Greedy_fair.run inst in
  Helpers.check_valid s;
  Alcotest.(check int) "shared fairly" 6 s.Schedule.makespan

let prop_valid inst =
  List.iter
    (fun sched -> Helpers.check_valid sched)
    [
      Baselines.List_scheduling.run inst;
      Baselines.List_scheduling.run ~order:Baselines.List_scheduling.By_volume_desc inst;
      Baselines.List_scheduling.run ~order:Baselines.List_scheduling.By_total_req_desc inst;
      Baselines.Greedy_fair.run inst;
    ]

let prop_garey_graham_ratio inst =
  (* 3−3/m against the lower bound (the proof compares against the same
     primitives, like Theorem 3.3's). *)
  if Instance.n inst > 0 && inst.Instance.m >= 2 then begin
    let s = Baselines.List_scheduling.run inst in
    let lb = Bounds.lower_bound inst in
    (* Clamping r_j > scale changes the model; restrict to instances the
       original guarantee speaks about. *)
    let clamped =
      List.exists
        (fun i -> (Instance.job inst i).Job.req > inst.Instance.scale)
        (List.init (Instance.n inst) Fun.id)
    in
    if not clamped then begin
      let bound = Baselines.List_scheduling.guarantee ~m:inst.Instance.m in
      let limit = (bound *. float_of_int lb) +. float_of_int lb +. 1.0 in
      (* Generous: the GG bound is against OPT ≥ lb; add slack for small lb. *)
      if float_of_int s.Schedule.makespan > limit then
        Alcotest.failf "list scheduling far above (3-3/m): makespan=%d lb=%d"
          s.Schedule.makespan lb
    end
  end

let test_window_beats_list_on_giant_and_dust () =
  let inst = Workload.Adversarial.giant_and_dust ~m:8 ~dust:200 ~scale:720720 in
  let win = (Fast.run inst).Schedule.makespan in
  let ls = (Baselines.List_scheduling.run inst).Schedule.makespan in
  Alcotest.(check bool)
    (Printf.sprintf "window (%d) ≤ list scheduling (%d)" win ls)
    true (win <= ls)

let test_adversarial_families_valid () =
  let instances =
    [
      Workload.Adversarial.giant_and_dust ~m:4 ~dust:20 ~scale:1000;
      Workload.Adversarial.epsilon_pairs ~pairs:10 ~m:4 ~scale:1000;
      Workload.Adversarial.footnote_fracture ~m:5 ~scale:1000;
      Workload.Adversarial.staircase ~n:12 ~m:4 ~scale:1000;
      Workload.Adversarial.worst_case_ratio_family ~m:5 ~scale:1000;
    ]
  in
  List.iter
    (fun inst ->
      Helpers.check_valid (Fast.run inst);
      Helpers.check_valid (Baselines.List_scheduling.run inst))
    instances

let suite =
  ( "baselines",
    [
      Alcotest.test_case "list scheduling serializes" `Quick
        test_list_scheduling_serializes_conflicts;
      Alcotest.test_case "list scheduling parallelizes" `Quick
        test_list_scheduling_parallelizes;
      Alcotest.test_case "oversize requirement clamped" `Quick
        test_list_scheduling_oversize_requirement;
      Alcotest.test_case "greedy fair shares" `Quick test_greedy_fair_shares;
      Helpers.for_random_instances "baselines produce valid schedules" prop_valid;
      Helpers.for_random_instances ~count:200 "Garey–Graham ratio sanity"
        prop_garey_graham_ratio;
      Alcotest.test_case "window beats list scheduling (giant+dust)" `Quick
        test_window_beats_list_on_giant_and_dust;
      Alcotest.test_case "adversarial families valid" `Quick
        test_adversarial_families_valid;
    ] )
