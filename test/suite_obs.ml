(* Tests for the telemetry layer (lib/obs): counter/timer mechanics, the
   determinism-class split in snapshots, trace export well-formedness, the
   reconciliation of the solver's unit counters with Schedule analytics,
   and the batch-level determinism contract (deterministic snapshot
   byte-identical at any -j). *)

module Metrics = Obs.Metrics
module Trace = Obs.Trace
module Rng = Prelude.Rng

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* Record inside [f] with fresh values; recording is switched off again
   afterwards (the suite must not leave the process-wide flag on). *)
let with_recording f =
  Metrics.reset ();
  Metrics.enable ();
  Fun.protect ~finally:(fun () -> Metrics.disable ()) f

(* A tiny JSON validity checker — values, objects, arrays, strings with
   escapes, numbers, true/false/null — enough to assert the snapshot and
   trace exporters emit well-formed JSON without a json dependency. *)
let json_is_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail () = raise Exit in
  let expect c = if peek () = Some c then advance () else fail () in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let keyword w =
    String.iter (fun c -> if peek () = Some c then advance () else fail ()) w
  in
  let digits () =
    let d = ref 0 in
    let rec go () =
      match peek () with
      | Some '0' .. '9' ->
          incr d;
          advance ();
          go ()
      | _ -> ()
    in
    go ();
    if !d = 0 then fail ()
  in
  let number () =
    if peek () = Some '-' then advance ();
    digits ();
    if peek () = Some '.' then (advance (); digits ());
    match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ()
  in
  let string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail ()
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail ()
              done;
              go ()
          | _ -> fail ())
      | Some _ ->
          advance ();
          go ()
    in
    go ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some ('-' | '0' .. '9') -> number ()
    | Some 't' -> keyword "true"
    | Some 'f' -> keyword "false"
    | Some 'n' -> keyword "null"
    | _ -> fail ()
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else
      let rec members () =
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            members ()
        | Some '}' -> advance ()
        | _ -> fail ()
      in
      members ()
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else
      let rec elems () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            elems ()
        | Some ']' -> advance ()
        | _ -> fail ()
      in
      elems ()
  in
  try
    value ();
    skip_ws ();
    !pos = n
  with Exit -> false

let test_json_checker_sanity () =
  List.iter
    (fun (expected, s) ->
      Alcotest.(check bool) (Printf.sprintf "json %S" s) expected (json_is_valid s))
    [
      (true, "{}");
      (true, "{\"a\": [1, -2.5e3, \"x\\n\", true, null]}");
      (true, "[\n\n  ]");
      (false, "{\"a\": }");
      (false, "[1, 2");
      (false, "{\"a\": 1} trailing");
      (false, "\"unterminated");
    ]

let test_counter_basics () =
  let c = Metrics.counter "test.obs.basic" in
  Metrics.disable ();
  Metrics.reset ();
  Metrics.incr c;
  Metrics.add c 5;
  Alcotest.(check int) "disabled ops are no-ops" 0 (Metrics.value c);
  with_recording (fun () ->
      Metrics.incr c;
      Metrics.add c 41;
      Alcotest.(check int) "incr/add accumulate" 42 (Metrics.value c);
      Alcotest.(check int) "get by name" 42 (Metrics.get "test.obs.basic"));
  Alcotest.(check int) "value retained after disable" 42 (Metrics.value c);
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes, keeps registration" 0
    (Metrics.get "test.obs.basic");
  Alcotest.(check bool) "registration idempotent" true
    (Metrics.counter "test.obs.basic" == c)

let test_registry_errors () =
  ignore (Metrics.counter "test.obs.det");
  ignore (Metrics.timer "test.obs.t");
  Alcotest.check_raises "counter re-registered as runtime"
    (Invalid_argument
       "Obs.Metrics: \"test.obs.det\" already registered with another class")
    (fun () -> ignore (Metrics.runtime_counter "test.obs.det"));
  Alcotest.check_raises "counter re-registered as timer"
    (Invalid_argument "Obs.Metrics: \"test.obs.det\" already registered as a counter")
    (fun () -> ignore (Metrics.timer "test.obs.det"));
  Alcotest.check_raises "timer re-registered as counter"
    (Invalid_argument "Obs.Metrics: \"test.obs.t\" already registered as a timer")
    (fun () -> ignore (Metrics.counter "test.obs.t"));
  Alcotest.check_raises "get unknown name"
    (Invalid_argument "Obs.Metrics.get: unknown counter \"test.obs.nope\"")
    (fun () -> ignore (Metrics.get "test.obs.nope"));
  Alcotest.check_raises "get on a timer"
    (Invalid_argument "Obs.Metrics.get: \"test.obs.t\" is a timer") (fun () ->
      ignore (Metrics.get "test.obs.t"))

let test_record_max () =
  let g = Metrics.runtime_counter "test.obs.hwm" in
  with_recording (fun () ->
      Metrics.record_max g 7;
      Metrics.record_max g 3;
      Metrics.record_max g 11;
      Alcotest.(check int) "high-water mark keeps the max" 11 (Metrics.value g))

let test_timer () =
  let t = Metrics.timer "test.obs.timer" in
  Metrics.reset ();
  Metrics.disable ();
  Alcotest.(check int) "disabled time is just the call" 9
    (Metrics.time t (fun () -> 9));
  with_recording (fun () ->
      Metrics.observe t 0.002;
      Metrics.observe t 0.004;
      (try Metrics.time t (fun () -> failwith "boom") with Failure _ -> ());
      let snap = Metrics.snapshot ~cls:`Runtime () in
      Alcotest.(check bool) "exception still observed (count=3)" true
        (contains snap "test.obs.timer count=3"))

let test_snapshot_classes () =
  let c = Metrics.counter "test.obs.cls_det" in
  let g = Metrics.runtime_counter "test.obs.cls_rt" in
  let t = Metrics.timer "test.obs.cls_timer" in
  with_recording (fun () ->
      Metrics.add c 3;
      Metrics.add g 9;
      Metrics.observe t 0.001);
  let det = Metrics.snapshot ~cls:`Deterministic () in
  let rt = Metrics.snapshot ~cls:`Runtime () in
  let all = Metrics.snapshot () in
  Alcotest.(check bool) "det counter line" true (contains det "test.obs.cls_det 3\n");
  Alcotest.(check bool) "runtime counter excluded from det" false
    (contains det "cls_rt");
  Alcotest.(check bool) "timer excluded from det" false (contains det "cls_timer");
  Alcotest.(check bool) "runtime has the gauge" true
    (contains rt "test.obs.cls_rt 9\n");
  Alcotest.(check bool) "runtime has the timer" true
    (contains rt "test.obs.cls_timer count=1");
  Alcotest.(check bool) "runtime excludes det counters" false (contains rt "cls_det");
  Alcotest.(check bool) "all has every class" true
    (contains all "cls_det" && contains all "cls_rt" && contains all "cls_timer");
  let names =
    String.split_on_char '\n' all
    |> List.filter (fun l -> l <> "")
    |> List.map (fun l -> List.hd (String.split_on_char ' ' l))
  in
  Alcotest.(check bool) "snapshot sorted by name" true
    (List.sort compare names = names)

let test_snapshot_json () =
  let c = Metrics.counter "test.obs.json" in
  with_recording (fun () -> Metrics.add c 17);
  let js = Metrics.snapshot_json () in
  Alcotest.(check bool) "snapshot_json well-formed" true (json_is_valid js);
  Alcotest.(check bool) "counter serialized" true
    (contains js "{\"name\": \"test.obs.json\", \"value\": 17}");
  Alcotest.(check bool) "deterministic snapshot_json well-formed" true
    (json_is_valid (Metrics.snapshot_json ~cls:`Deterministic ()))

let test_trace_export () =
  Trace.start ();
  Fun.protect ~finally:(fun () -> Trace.stop ()) (fun () ->
      Trace.set_thread_name ~tid:3 "domain-3";
      let r =
        Trace.with_span ~tid:3 ~cat:"test"
          ~args:[ ("n", Trace.I 7); ("tag", Trace.S "x\"y\n"); ("f", Trace.F 0.5) ]
          "unit.span"
          (fun () -> 12)
      in
      Alcotest.(check int) "with_span returns the thunk's value" 12 r;
      (try
         Trace.with_span "raising.span" (fun () -> failwith "boom")
       with Failure _ -> ());
      Trace.instant "marker";
      Trace.counter_sample "queue" [ ("depth", 2.0) ]);
  let js = Trace.export () in
  Alcotest.(check bool) "trace export well-formed JSON" true (json_is_valid js);
  Alcotest.(check bool) "has the traceEvents key" true (contains js "\"traceEvents\"");
  Alcotest.(check bool) "complete event recorded" true
    (contains js "\"name\":\"unit.span\"" && contains js "\"ph\":\"X\"");
  Alcotest.(check bool) "span on its track" true (contains js "\"tid\":3");
  Alcotest.(check bool) "raising span still closed" true
    (contains js "\"name\":\"raising.span\"");
  Alcotest.(check bool) "instant event recorded" true (contains js "\"ph\":\"i\"");
  Alcotest.(check bool) "counter event recorded" true (contains js "\"ph\":\"C\"");
  Alcotest.(check bool) "thread name metadata" true
    (contains js "\"thread_name\"" && contains js "\"name\":\"domain-3\"");
  Alcotest.(check bool) "string arg escaped" true (contains js "x\\\"y\\n");
  Trace.reset ();
  let empty = Trace.export () in
  Alcotest.(check bool) "reset drops events" false (contains empty "unit.span");
  Alcotest.(check bool) "empty export still well-formed" true (json_is_valid empty);
  Alcotest.(check int) "inactive with_span is just the call" 5
    (Trace.with_span "ignored" (fun () -> 5))

(* ------------------------------------------------- counter reconciliation *)

(* Solve [inst] with counters on and check that the solver's unit counters
   agree exactly with the Schedule analytics of the very schedule it
   produced — the counters are an independent account of the same events. *)
let reconcile_checks inst =
  Metrics.reset ();
  Metrics.enable ();
  Fun.protect ~finally:(fun () -> Metrics.disable ()) @@ fun () ->
  let sched, iters = Sos.Fast.run_count inst in
  let get = Metrics.get in
  Alcotest.(check int) "one run recorded" 1 (get "sos.fast.runs");
  Alcotest.(check int) "iterations counter = simulated loop count" iters
    (get "sos.fast.iterations");
  Alcotest.(check int) "iterations + skipped_steps = makespan_steps"
    (get "sos.fast.makespan_steps")
    (get "sos.fast.iterations" + get "sos.fast.skipped_steps");
  Alcotest.(check int) "makespan_steps = schedule makespan"
    sched.Sos.Schedule.makespan
    (get "sos.fast.makespan_steps");
  Alcotest.(check int) "blocks = RLE steps emitted"
    (List.length sched.Sos.Schedule.steps)
    (get "sos.fast.blocks");
  Alcotest.(check int) "consumed_units = Σ s_j"
    (Sos.Instance.total_requirement inst)
    (get "sos.fast.consumed_units");
  Alcotest.(check int) "waste_units = Schedule.total_waste"
    (Sos.Schedule.total_waste sched)
    (get "sos.fast.waste_units");
  Alcotest.(check int) "assigned − consumed = waste"
    (get "sos.fast.waste_units")
    (get "sos.fast.assigned_units" - get "sos.fast.consumed_units")

let test_reconcile_pinned () =
  reconcile_checks
    (Sos.Instance.create ~m:3 ~scale:12
       [ (4, 5); (3, 7); (6, 2); (2, 12); (5, 9) ])

let test_reconcile_random () =
  for seed = 1 to 40 do
    let rng = Rng.create (seed * 104729) in
    let inst = Workload.Sos_gen.random_instance rng ~max_n:12 ~max_size:8 () in
    try reconcile_checks inst
    with e ->
      Alcotest.failf "seed %d: %s\ninstance:\n%s" seed (Printexc.to_string e)
        (Sos.Instance.to_string inst)
  done

(* --------------------------------------------- batch snapshot determinism *)

(* Solve the same 64-instance corpus on [domains] workers and return the
   deterministic counter snapshot. Instances derive from (seed, index) via
   the engine's own seeding discipline, so the work — and therefore every
   deterministic counter — is identical at any domain count. *)
let det_snapshot_of_batch ~domains seed =
  Metrics.reset ();
  Metrics.enable ();
  Fun.protect ~finally:(fun () -> Metrics.disable ()) @@ fun () ->
  let tasks =
    Array.init 64 (fun i () ->
        let rng = Rng.create2 seed i in
        let inst = Workload.Sos_gen.random_instance rng ~max_n:8 ~max_m:4 ~max_size:5 () in
        (Sos.Fast.run inst).Sos.Schedule.makespan)
  in
  Array.iter
    (function
      | Ok _ -> ()
      | Error (e : Engine.Batch.error) ->
          Alcotest.failf "task %d failed: %s" e.index e.message)
    (Engine.Batch.map ~domains ~chunk:4 tasks);
  Metrics.snapshot ~cls:`Deterministic ()

let qcheck_batch_snapshot_deterministic =
  Helpers.qcheck ~count:4
    "64-task batch: deterministic snapshot byte-identical at -j 1/2/4"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let s1 = det_snapshot_of_batch ~domains:1 seed in
      let s2 = det_snapshot_of_batch ~domains:2 seed in
      let s4 = det_snapshot_of_batch ~domains:4 seed in
      String.length s1 > 0 && s1 = s2 && s2 = s4)

let suite =
  ( "obs",
    [
      Alcotest.test_case "json checker sanity" `Quick test_json_checker_sanity;
      Alcotest.test_case "counter basics" `Quick test_counter_basics;
      Alcotest.test_case "registry errors" `Quick test_registry_errors;
      Alcotest.test_case "record_max" `Quick test_record_max;
      Alcotest.test_case "timer" `Quick test_timer;
      Alcotest.test_case "snapshot classes" `Quick test_snapshot_classes;
      Alcotest.test_case "snapshot json" `Quick test_snapshot_json;
      Alcotest.test_case "trace export" `Quick test_trace_export;
      Alcotest.test_case "solver counters reconcile (pinned)" `Quick
        test_reconcile_pinned;
      Alcotest.test_case "solver counters reconcile (random)" `Quick
        test_reconcile_random;
      qcheck_batch_snapshot_deterministic;
    ] )
