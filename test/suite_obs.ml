(* Tests for the telemetry layer (lib/obs): counter/timer mechanics, the
   determinism-class split in snapshots, trace export well-formedness, the
   reconciliation of the solver's unit counters with Schedule analytics,
   and the batch-level determinism contract (deterministic snapshot
   byte-identical at any -j). *)

module Metrics = Obs.Metrics
module Trace = Obs.Trace
module Hist = Obs.Hist
module Progress = Obs.Progress
module Snapshot = Obs.Snapshot
module Rng = Prelude.Rng

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* Record inside [f] with fresh values; recording is switched off again
   afterwards (the suite must not leave the process-wide flag on). *)
let with_recording f =
  Metrics.reset ();
  Metrics.enable ();
  Fun.protect ~finally:(fun () -> Metrics.disable ()) f

(* A tiny JSON validity checker — values, objects, arrays, strings with
   escapes, numbers, true/false/null — enough to assert the snapshot and
   trace exporters emit well-formed JSON without a json dependency. *)
let json_is_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail () = raise Exit in
  let expect c = if peek () = Some c then advance () else fail () in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let keyword w =
    String.iter (fun c -> if peek () = Some c then advance () else fail ()) w
  in
  let digits () =
    let d = ref 0 in
    let rec go () =
      match peek () with
      | Some '0' .. '9' ->
          incr d;
          advance ();
          go ()
      | _ -> ()
    in
    go ();
    if !d = 0 then fail ()
  in
  let number () =
    if peek () = Some '-' then advance ();
    digits ();
    if peek () = Some '.' then (advance (); digits ());
    match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ()
  in
  let string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail ()
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail ()
              done;
              go ()
          | _ -> fail ())
      | Some _ ->
          advance ();
          go ()
    in
    go ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some ('-' | '0' .. '9') -> number ()
    | Some 't' -> keyword "true"
    | Some 'f' -> keyword "false"
    | Some 'n' -> keyword "null"
    | _ -> fail ()
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else
      let rec members () =
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            members ()
        | Some '}' -> advance ()
        | _ -> fail ()
      in
      members ()
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else
      let rec elems () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            elems ()
        | Some ']' -> advance ()
        | _ -> fail ()
      in
      elems ()
  in
  try
    value ();
    skip_ws ();
    !pos = n
  with Exit -> false

let test_json_checker_sanity () =
  List.iter
    (fun (expected, s) ->
      Alcotest.(check bool) (Printf.sprintf "json %S" s) expected (json_is_valid s))
    [
      (true, "{}");
      (true, "{\"a\": [1, -2.5e3, \"x\\n\", true, null]}");
      (true, "[\n\n  ]");
      (false, "{\"a\": }");
      (false, "[1, 2");
      (false, "{\"a\": 1} trailing");
      (false, "\"unterminated");
    ]

let test_counter_basics () =
  let c = Metrics.counter "test.obs.basic" in
  Metrics.disable ();
  Metrics.reset ();
  Metrics.incr c;
  Metrics.add c 5;
  Alcotest.(check int) "disabled ops are no-ops" 0 (Metrics.value c);
  with_recording (fun () ->
      Metrics.incr c;
      Metrics.add c 41;
      Alcotest.(check int) "incr/add accumulate" 42 (Metrics.value c);
      Alcotest.(check int) "get by name" 42 (Metrics.get "test.obs.basic"));
  Alcotest.(check int) "value retained after disable" 42 (Metrics.value c);
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes, keeps registration" 0
    (Metrics.get "test.obs.basic");
  Alcotest.(check bool) "registration idempotent" true
    (Metrics.counter "test.obs.basic" == c)

let test_registry_errors () =
  ignore (Metrics.counter "test.obs.det");
  ignore (Metrics.timer "test.obs.t");
  Alcotest.check_raises "counter re-registered as runtime"
    (Invalid_argument
       "Obs.Metrics: \"test.obs.det\" already registered with another class")
    (fun () -> ignore (Metrics.runtime_counter "test.obs.det"));
  Alcotest.check_raises "counter re-registered as timer"
    (Invalid_argument "Obs.Metrics: \"test.obs.det\" already registered as a counter")
    (fun () -> ignore (Metrics.timer "test.obs.det"));
  Alcotest.check_raises "timer re-registered as counter"
    (Invalid_argument "Obs.Metrics: \"test.obs.t\" already registered as a timer")
    (fun () -> ignore (Metrics.counter "test.obs.t"));
  Alcotest.check_raises "get unknown name"
    (Invalid_argument "Obs.Metrics.get: unknown counter \"test.obs.nope\"")
    (fun () -> ignore (Metrics.get "test.obs.nope"));
  Alcotest.check_raises "get on a timer"
    (Invalid_argument "Obs.Metrics.get: \"test.obs.t\" is a timer") (fun () ->
      ignore (Metrics.get "test.obs.t"))

let test_record_max () =
  let g = Metrics.runtime_counter "test.obs.hwm" in
  with_recording (fun () ->
      Metrics.record_max g 7;
      Metrics.record_max g 3;
      Metrics.record_max g 11;
      Alcotest.(check int) "high-water mark keeps the max" 11 (Metrics.value g))

let test_timer () =
  let t = Metrics.timer "test.obs.timer" in
  Metrics.reset ();
  Metrics.disable ();
  Alcotest.(check int) "disabled time is just the call" 9
    (Metrics.time t (fun () -> 9));
  with_recording (fun () ->
      Metrics.observe t 0.002;
      Metrics.observe t 0.004;
      (try Metrics.time t (fun () -> failwith "boom") with Failure _ -> ());
      let snap = Metrics.snapshot ~cls:`Runtime () in
      Alcotest.(check bool) "exception still observed (count=3)" true
        (contains snap "test.obs.timer count=3"))

let test_snapshot_classes () =
  let c = Metrics.counter "test.obs.cls_det" in
  let g = Metrics.runtime_counter "test.obs.cls_rt" in
  let t = Metrics.timer "test.obs.cls_timer" in
  with_recording (fun () ->
      Metrics.add c 3;
      Metrics.add g 9;
      Metrics.observe t 0.001);
  let det = Metrics.snapshot ~cls:`Deterministic () in
  let rt = Metrics.snapshot ~cls:`Runtime () in
  let all = Metrics.snapshot () in
  Alcotest.(check bool) "det counter line" true (contains det "test.obs.cls_det 3\n");
  Alcotest.(check bool) "runtime counter excluded from det" false
    (contains det "cls_rt");
  Alcotest.(check bool) "timer excluded from det" false (contains det "cls_timer");
  Alcotest.(check bool) "runtime has the gauge" true
    (contains rt "test.obs.cls_rt 9\n");
  Alcotest.(check bool) "runtime has the timer" true
    (contains rt "test.obs.cls_timer count=1");
  Alcotest.(check bool) "runtime excludes det counters" false (contains rt "cls_det");
  Alcotest.(check bool) "all has every class" true
    (contains all "cls_det" && contains all "cls_rt" && contains all "cls_timer");
  let names =
    String.split_on_char '\n' all
    |> List.filter (fun l -> l <> "")
    |> List.map (fun l -> List.hd (String.split_on_char ' ' l))
  in
  Alcotest.(check bool) "snapshot sorted by name" true
    (List.sort compare names = names)

let test_snapshot_json () =
  let c = Metrics.counter "test.obs.json" in
  with_recording (fun () -> Metrics.add c 17);
  let js = Metrics.snapshot_json () in
  Alcotest.(check bool) "snapshot_json well-formed" true (json_is_valid js);
  Alcotest.(check bool) "counter serialized with its class" true
    (contains js "{\"name\": \"test.obs.json\", \"class\": \"det\", \"value\": 17}");
  Alcotest.(check bool) "deterministic snapshot_json well-formed" true
    (json_is_valid (Metrics.snapshot_json ~cls:`Deterministic ()))

let test_trace_export () =
  Trace.start ();
  Fun.protect ~finally:(fun () -> Trace.stop ()) (fun () ->
      Trace.set_thread_name ~tid:3 "domain-3";
      let r =
        Trace.with_span ~tid:3 ~cat:"test"
          ~args:[ ("n", Trace.I 7); ("tag", Trace.S "x\"y\n"); ("f", Trace.F 0.5) ]
          "unit.span"
          (fun () -> 12)
      in
      Alcotest.(check int) "with_span returns the thunk's value" 12 r;
      (try
         Trace.with_span "raising.span" (fun () -> failwith "boom")
       with Failure _ -> ());
      Trace.instant "marker";
      Trace.counter_sample "queue" [ ("depth", 2.0) ]);
  let js = Trace.export () in
  Alcotest.(check bool) "trace export well-formed JSON" true (json_is_valid js);
  Alcotest.(check bool) "has the traceEvents key" true (contains js "\"traceEvents\"");
  Alcotest.(check bool) "complete event recorded" true
    (contains js "\"name\":\"unit.span\"" && contains js "\"ph\":\"X\"");
  Alcotest.(check bool) "span on its track" true (contains js "\"tid\":3");
  Alcotest.(check bool) "raising span still closed" true
    (contains js "\"name\":\"raising.span\"");
  Alcotest.(check bool) "instant event recorded" true (contains js "\"ph\":\"i\"");
  Alcotest.(check bool) "counter event recorded" true (contains js "\"ph\":\"C\"");
  Alcotest.(check bool) "thread name metadata" true
    (contains js "\"thread_name\"" && contains js "\"name\":\"domain-3\"");
  Alcotest.(check bool) "string arg escaped" true (contains js "x\\\"y\\n");
  Trace.reset ();
  let empty = Trace.export () in
  Alcotest.(check bool) "reset drops events" false (contains empty "unit.span");
  Alcotest.(check bool) "empty export still well-formed" true (json_is_valid empty);
  Alcotest.(check int) "inactive with_span is just the call" 5
    (Trace.with_span "ignored" (fun () -> 5))

(* ------------------------------------------------------------ histograms *)

let test_hist_basics () =
  let h = Hist.create "test.obs.hist.basic" in
  Metrics.reset ();
  Metrics.disable ();
  Hist.observe h 1.0;
  Alcotest.(check int) "disabled observe is a no-op" 0 (Hist.count h);
  with_recording (fun () ->
      Hist.observe h 0.5;
      Hist.observe_int h 3;
      Hist.observe h 2.0;
      Alcotest.(check int) "count" 3 (Hist.count h);
      Alcotest.(check (float 1e-9)) "max is exact" 3.0 (Hist.max_value h);
      Alcotest.(check (float 1e-9)) "q=1 is the max" 3.0 (Hist.quantile h 1.0));
  Alcotest.(check bool) "registration idempotent" true
    (Hist.create "test.obs.hist.basic" == h);
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Hist.count h);
  Alcotest.(check (float 1e-9)) "empty quantile is 0" 0.0 (Hist.quantile h 0.5)

(* Quantile goldens on a fully known distribution: 1..100 into decade-of-10
   linear buckets puts exactly 10 observations in each, so every quantile
   is the bucket upper bound — except where the exact max clamps it. *)
let test_hist_quantile_golden () =
  let h =
    Hist.create ~bounds:(Hist.linear_bounds ~lo:10.0 ~hi:100.0 ~step:10.0)
      "test.obs.hist.golden"
  in
  Metrics.reset ();
  with_recording (fun () ->
      for v = 1 to 100 do
        Hist.observe_int h v
      done;
      List.iter
        (fun (q, expected) ->
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "p%g" (q *. 100.0))
            expected (Hist.quantile h q))
        [ (0.5, 50.0); (0.9, 90.0); (0.99, 100.0); (1.0, 100.0) ]);
  (* The representative never exceeds the observed max: 3 values far below
     the first bound report the exact max, not the bound. *)
  let tight = Hist.create ~bounds:[| 10.0 |] "test.obs.hist.clamp" in
  with_recording (fun () ->
      List.iter (Hist.observe tight) [ 1.0; 2.0; 2.5 ];
      Alcotest.(check (float 1e-9)) "quantile clamped to max" 2.5
        (Hist.quantile tight 0.5));
  (* Above-range observations land in the overflow bucket, whose
     representative is the exact max. *)
  let ov = Hist.create ~bounds:[| 10.0 |] "test.obs.hist.overflow" in
  with_recording (fun () ->
      Hist.observe ov 1234.5;
      Alcotest.(check (float 1e-9)) "overflow reports the max" 1234.5
        (Hist.quantile ov 0.5);
      Alcotest.(check int) "overflow counted" 1 (Hist.count ov))

(* Merge must commute (lock-free per-domain merge order is scheduling-
   dependent): folding the same three histograms in different orders
   yields identical counts, max, and quantiles. *)
let test_hist_merge () =
  (* with_recording resets the whole registry, so every source must be
     filled inside one recording session. *)
  let a = Hist.create "test.obs.hmerge.a" in
  let b = Hist.create "test.obs.hmerge.b" in
  let c = Hist.create "test.obs.hmerge.c" in
  Metrics.reset ();
  with_recording (fun () ->
      List.iter (Hist.observe a) [ 0.001; 0.002; 0.003 ];
      List.iter (Hist.observe b) [ 5.0; 60.0 ];
      List.iter (Hist.observe c) [ 1e9 (* overflow *) ]);
  let s = Hist.create "test.obs.hmerge.s" in
  let t = Hist.create "test.obs.hmerge.t" in
  Hist.merge_into ~into:s a;
  Hist.merge_into ~into:s b;
  Hist.merge_into ~into:s c;
  Hist.merge_into ~into:t c;
  Hist.merge_into ~into:t b;
  Hist.merge_into ~into:t a;
  let qgrid h =
    (Hist.count h, Hist.max_value h,
     List.map (Hist.quantile h) [ 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ])
  in
  Alcotest.(check bool) "merge order does not matter" true (qgrid s = qgrid t);
  Alcotest.(check int) "merged count is the sum" 6 (Hist.count s);
  Alcotest.(check (float 1e-9)) "merged max" 1e9 (Hist.max_value s)

(* ----------------------------------------------------------- OpenMetrics *)

let test_openmetrics () =
  let c = Metrics.counter "test.obs.om.c" in
  let t = Metrics.timer "test.obs.om.t" in
  let h = Hist.create ~bounds:[| 1.0; 10.0 |] "test.obs.om.h" in
  with_recording (fun () ->
      Metrics.add c 17;
      Metrics.observe t 0.002;
      Metrics.observe t 0.004;
      Hist.observe h 0.5;
      Hist.observe h 3.0;
      Hist.observe h 99.0);
  let om = Metrics.to_openmetrics () in
  Alcotest.(check bool) "counter TYPE line" true
    (contains om "# TYPE test_obs_om_c counter");
  Alcotest.(check bool) "counter sample with class label" true
    (contains om "test_obs_om_c_total{class=\"det\"} 17\n");
  Alcotest.(check bool) "timer exposed as a summary" true
    (contains om "# TYPE test_obs_om_t summary"
    && contains om "test_obs_om_t{class=\"runtime\",quantile=\"0.5\"}"
    && contains om "test_obs_om_t_count{class=\"runtime\"} 2\n");
  Alcotest.(check bool) "histogram TYPE line" true
    (contains om "# TYPE test_obs_om_h histogram");
  Alcotest.(check bool) "cumulative buckets with +Inf" true
    (contains om "test_obs_om_h_bucket{class=\"det\",le=\"1\"} 1\n"
    && contains om "test_obs_om_h_bucket{class=\"det\",le=\"10\"} 2\n"
    && contains om "test_obs_om_h_bucket{class=\"det\",le=\"+Inf\"} 3\n"
    && contains om "test_obs_om_h_count{class=\"det\"} 3\n");
  Alcotest.(check bool) "ends with # EOF" true
    (let n = String.length om in
     n >= 6 && String.sub om (n - 6) 6 = "# EOF\n");
  (* Every non-comment line is `name{labels} value` with a parseable
     value — the shape a Prometheus scraper requires. *)
  String.split_on_char '\n' om
  |> List.iter (fun line ->
         if line <> "" && line.[0] <> '#' then begin
           (match line.[0] with
           | 'a' .. 'z' | 'A' .. 'Z' | '_' -> ()
           | c -> Alcotest.failf "bad metric name start %C in %S" c line);
           match String.rindex_opt line ' ' with
           | None -> Alcotest.failf "no value separator in %S" line
           | Some i -> (
               let v = String.sub line (i + 1) (String.length line - i - 1) in
               match float_of_string_opt v with
               | Some _ -> ()
               | None -> Alcotest.failf "unparseable value %S in %S" v line)
         end);
  (* The deterministic exposition excludes every runtime instrument:
     timers are runtime by construction, so no summary quantiles. *)
  let det = Metrics.to_openmetrics ~cls:`Deterministic () in
  Alcotest.(check bool) "det exposition has no timers" false
    (contains det "quantile=");
  Alcotest.(check bool) "det exposition keeps det hists" true
    (contains det "test_obs_om_h_bucket")

(* -------------------------------------------------------------- progress *)

let test_progress_format () =
  List.iter
    (fun (expected, got) -> Alcotest.(check string) expected expected got)
    [
      ( "progress 250/1000 (25.0%) 125/s err=3 window=7/64 vmhwm=5616kB eta=6s",
        Progress.format_line ~done_:250 ~total:(Some 1000) ~rate:125.4 ~errors:3
          ~window:(Some (7, 64)) ~rss_kb:(Some 5616) ~eta_s:(Some 6.2) );
      ( "progress 42 0/s err=0",
        Progress.format_line ~done_:42 ~total:None ~rate:0.0 ~errors:0 ~window:None
          ~rss_kb:None ~eta_s:None );
      ( "progress done 1000/1000 err=2 elapsed=4.0s avg=250/s",
        Progress.format_final ~done_:1000 ~total:(Some 1000) ~errors:2 ~elapsed_s:4.0 );
      ( "progress done 5 err=0 elapsed=0.0s avg=0/s",
        Progress.format_final ~done_:5 ~total:None ~errors:0 ~elapsed_s:0.0 );
    ]

let test_progress_reporter () =
  let buf = Buffer.create 256 in
  let p =
    Progress.create ~interval:0.0 ~total:10 ~window_cap:64
      ~out:(Buffer.add_string buf) ()
  in
  Progress.tick p ~done_:1 ~errors:0 ~occupancy:3 ();
  Progress.tick p ~done_:2 ~errors:1 ();
  Progress.finish p ~done_:10 ~errors:1;
  Alcotest.(check int) "three lines emitted" 3 (Progress.beats p);
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "buffer holds them" 3 (List.length lines);
  let first = List.nth lines 0 in
  Alcotest.(check bool) "heartbeat shape" true
    (String.length first > 15 && String.sub first 0 15 = "progress 1/10 ("
    && contains first "window=3/64");
  let last = List.nth lines 2 in
  Alcotest.(check bool) "final line shape" true
    (String.length last > 25 && String.sub last 0 25 = "progress done 10/10 err=1");
  (* A long interval rate-limits ticks to silence. *)
  let q = Progress.create ~interval:3600.0 ~out:(Buffer.add_string buf) () in
  Progress.tick q ~done_:1 ~errors:0 ();
  Progress.tick q ~done_:2 ~errors:0 ();
  Alcotest.(check int) "ticks inside the interval are silent" 0 (Progress.beats q)

(* ----------------------------------------------------------- trace rings *)

let test_trace_ring () =
  (* Bounded from the start: 10 events through a 4-slot ring keep the 4
     newest and count 6 drops, reported in the export. *)
  Trace.start ~ring:4 ();
  for i = 1 to 10 do
    Trace.instant (Printf.sprintf "ring.%02d" i)
  done;
  Trace.stop ();
  Alcotest.(check int) "drops counted" 6 (Trace.dropped ());
  let js = Trace.export () in
  Alcotest.(check bool) "bounded export well-formed" true (json_is_valid js);
  Alcotest.(check bool) "newest events kept" true
    (contains js "ring.07" && contains js "ring.08" && contains js "ring.09"
    && contains js "ring.10");
  Alcotest.(check bool) "oldest events gone" false
    (contains js "ring.01" || contains js "ring.06");
  Alcotest.(check bool) "droppedEvents reported" true
    (contains js "\"droppedEvents\":6");
  (* set_ring on a live unbounded buffer trims to the newest K immediately. *)
  Trace.start ();
  for i = 1 to 10 do
    Trace.instant (Printf.sprintf "trim.%02d" i)
  done;
  Trace.set_ring (Some 3);
  Alcotest.(check int) "trim counted as drops" 7 (Trace.dropped ());
  let js = Trace.export () in
  Alcotest.(check bool) "survivors are the newest 3" true
    (contains js "trim.08" && contains js "trim.09" && contains js "trim.10"
    && not (contains js "trim.07"));
  (* Back to unbounded: new events append without dropping. *)
  Trace.set_ring None;
  Trace.instant "after.unbound";
  Trace.stop ();
  Alcotest.(check int) "no further drops" 7 (Trace.dropped ());
  Alcotest.(check bool) "appended event present" true
    (contains (Trace.export ()) "after.unbound");
  Trace.reset ()

let test_trace_flow () =
  Trace.start ();
  Fun.protect ~finally:(fun () -> Trace.stop ()) (fun () ->
      Trace.flow_start ~id:9 "spec";
      Trace.flow_step ~tid:2 ~id:9 "spec";
      Trace.flow_end ~id:9 "spec");
  let js = Trace.export () in
  Alcotest.(check bool) "flow export well-formed" true (json_is_valid js);
  Alcotest.(check bool) "start/step/end phases" true
    (contains js "\"ph\":\"s\"" && contains js "\"ph\":\"t\""
    && contains js "\"ph\":\"f\"");
  Alcotest.(check bool) "shared flow id" true (contains js "\"id\":9");
  Alcotest.(check bool) "binding point on the end event" true
    (contains js "\"bp\":\"e\"");
  Alcotest.(check bool) "step on the worker track" true (contains js "\"tid\":2");
  Trace.reset ()

(* The bounded-trace memory smoke (doc/ROBUSTNESS.md): 200k events through
   a 1024-slot ring must keep the peak heap flat — the delta bound is far
   below the ~50 MB an unbounded buffer of that size would allocate. *)
let test_trace_ring_flat_memory () =
  Gc.full_major ();
  let before = (Gc.quick_stat ()).Gc.top_heap_words in
  Trace.start ~ring:1024 ();
  for i = 0 to 199_999 do
    Trace.flow_start ~id:i "spec"
  done;
  Trace.stop ();
  Alcotest.(check bool) "almost everything dropped" true (Trace.dropped () >= 198_000);
  let after = (Gc.quick_stat ()).Gc.top_heap_words in
  let delta_words = after - before in
  Alcotest.(check bool)
    (Printf.sprintf "peak heap grew %d words (cap 2M)" delta_words)
    true
    (delta_words < 2_000_000);
  Trace.reset ()

(* ------------------------------------------------------ snapshot parsing *)

(* The three renderings of one registry must parse back to the same
   values — this is what makes [sosctl obs-diff] format-agnostic. *)
let test_snapshot_parse () =
  let c = Metrics.counter "test.obs.parse.c" in
  let h = Hist.create "test.obs.parse.h" in
  with_recording (fun () ->
      Metrics.add c 17;
      List.iter (Hist.observe h) [ 1.0; 2.0; 3.0 ]);
  let text = Snapshot.parse (Metrics.snapshot ()) in
  let js = Snapshot.parse (Metrics.snapshot_json ()) in
  let om = Snapshot.parse (Metrics.to_openmetrics ()) in
  let find what es key =
    match List.find_opt (fun e -> e.Snapshot.key = key) es with
    | Some e -> e
    | None -> Alcotest.failf "%s: key %S missing" what key
  in
  Alcotest.(check (float 0.0)) "text counter" 17.0
    (find "text" text "test.obs.parse.c").Snapshot.v;
  Alcotest.(check (float 0.0)) "json counter" 17.0
    (find "json" js "test.obs.parse.c").Snapshot.v;
  Alcotest.(check (option string)) "json carries the class" (Some "det")
    (find "json" js "test.obs.parse.c").Snapshot.cls;
  Alcotest.(check (float 0.0)) "prom counter (sanitized name)" 17.0
    (find "prom" om "test_obs_parse_c_total").Snapshot.v;
  (* Histogram summary keys agree across text and JSON renderings. *)
  List.iter
    (fun k ->
      let tk = (find "text" text ("test.obs.parse.h." ^ k)).Snapshot.v in
      let jk = (find "json" js ("test.obs.parse.h." ^ k)).Snapshot.v in
      Alcotest.(check (float 1e-6)) (Printf.sprintf "hist %s text=json" k) tk jk)
    [ "count"; "p50"; "p90"; "p99"; "max" ];
  Alcotest.(check (float 0.0)) "hist count parsed" 3.0
    (find "text" text "test.obs.parse.h.count").Snapshot.v;
  Alcotest.(check (float 1e-9)) "hist max parsed exactly" 3.0
    (find "text" text "test.obs.parse.h.max").Snapshot.v

(* The OpenMetrics exposition of a histogram is a cumulative bucket
   family terminated by [_bucket{le="+Inf"}]; the parser must treat the
   bucket series as shape (skip it) while still extracting the scalar
   [_count]/[_sum] samples, and the [+Inf] bucket itself must equal the
   total count — the exposition's own internal consistency. *)
let test_snapshot_parse_prom_histogram () =
  let h = Hist.create "test.obs.prom.h" in
  with_recording (fun () -> List.iter (Hist.observe h) [ 0.5; 1.5; 2.5; 1e9 ]);
  let om = Metrics.to_openmetrics () in
  Alcotest.(check bool) "exposition has bucket series" true
    (contains om "test_obs_prom_h_bucket{");
  Alcotest.(check bool) "exposition has the +Inf terminal bucket" true
    (contains om "test_obs_prom_h_bucket{class=\"det\",le=\"+Inf\"} 4");
  let es = Snapshot.parse om in
  Alcotest.(check bool) "bucket series skipped by the parser" true
    (List.for_all (fun e -> not (contains e.Snapshot.key "_bucket")) es);
  let find key =
    match List.find_opt (fun e -> e.Snapshot.key = key) es with
    | Some e -> e
    | None -> Alcotest.failf "prom: key %S missing" key
  in
  let count = find "test_obs_prom_h_count" in
  Alcotest.(check (float 0.0)) "histogram count parsed" 4.0 count.Snapshot.v;
  Alcotest.(check (option string)) "histogram class label parsed" (Some "det")
    count.Snapshot.cls;
  (* The exposition renders floats with %.9g, so the 4.5 below the 1e9
     observation is rounded away in transit; allow for that precision. *)
  Alcotest.(check (float 16.0)) "histogram sum parsed" (0.5 +. 1.5 +. 2.5 +. 1e9)
    (find "test_obs_prom_h_sum").Snapshot.v

(* Timers render as OpenMetrics summaries with quantiles 0.5/0.95/1;
   the quantile series is skipped as shape, the count/sum scalars are
   kept, and everything is runtime-class. *)
let test_snapshot_parse_prom_timer () =
  let t = Metrics.timer "test.obs.prom.t" in
  with_recording (fun () -> List.iter (Metrics.observe t) [ 0.010; 0.020; 0.030 ]);
  let om = Metrics.to_openmetrics () in
  List.iter
    (fun q ->
      Alcotest.(check bool) ("summary has quantile " ^ q) true
        (contains om ("test_obs_prom_t{class=\"runtime\",quantile=\"" ^ q ^ "\"}")))
    [ "0.5"; "0.95"; "1" ];
  let es = Snapshot.parse om in
  Alcotest.(check bool) "quantile series skipped by the parser" true
    (List.for_all (fun e -> e.Snapshot.key <> "test_obs_prom_t") es);
  let find key =
    match List.find_opt (fun e -> e.Snapshot.key = key) es with
    | Some e -> e
    | None -> Alcotest.failf "prom: key %S missing" key
  in
  let count = find "test_obs_prom_t_count" in
  Alcotest.(check (float 0.0)) "timer count parsed" 3.0 count.Snapshot.v;
  Alcotest.(check (option string)) "timer class label parsed" (Some "runtime")
    count.Snapshot.cls;
  Alcotest.(check (float 1e-9)) "timer sum parsed" 0.060 (find "test_obs_prom_t_sum").Snapshot.v

(* Round-trip against the JSON rendering of the same registry: modulo
   name sanitization ([a.b.c] -> [a_b_c_total]/[a_b_c_count]), the prom
   parse and the JSON parse must agree on every scalar they share. *)
let test_snapshot_prom_json_roundtrip () =
  let c = Metrics.counter "test.obs.rt.c" in
  let h = Hist.create "test.obs.rt.h" in
  with_recording (fun () ->
      Metrics.add c 23;
      List.iter (Hist.observe h) [ 1.0; 2.0; 4.0 ]);
  let om = Snapshot.parse (Metrics.to_openmetrics ()) in
  let js = Snapshot.parse (Metrics.snapshot_json ()) in
  let find what es key =
    match List.find_opt (fun e -> e.Snapshot.key = key) es with
    | Some e -> e
    | None -> Alcotest.failf "%s: key %S missing" what key
  in
  Alcotest.(check (float 0.0)) "counter prom = json" (find "json" js "test.obs.rt.c").Snapshot.v
    (find "prom" om "test_obs_rt_c_total").Snapshot.v;
  Alcotest.(check (float 0.0)) "hist count prom = json"
    (find "json" js "test.obs.rt.h.count").Snapshot.v
    (find "prom" om "test_obs_rt_h_count").Snapshot.v;
  Alcotest.(check (option string)) "classes agree"
    (find "json" js "test.obs.rt.c").Snapshot.cls
    (find "prom" om "test_obs_rt_c_total").Snapshot.cls

(* ------------------------------------------------- counter reconciliation *)

(* Solve [inst] with counters on and check that the solver's unit counters
   agree exactly with the Schedule analytics of the very schedule it
   produced — the counters are an independent account of the same events. *)
let reconcile_checks inst =
  Metrics.reset ();
  Metrics.enable ();
  Fun.protect ~finally:(fun () -> Metrics.disable ()) @@ fun () ->
  let sched, iters = Sos.Fast.run_count inst in
  let get = Metrics.get in
  Alcotest.(check int) "one run recorded" 1 (get "sos.fast.runs");
  Alcotest.(check int) "iterations counter = simulated loop count" iters
    (get "sos.fast.iterations");
  Alcotest.(check int) "iterations + skipped_steps = makespan_steps"
    (get "sos.fast.makespan_steps")
    (get "sos.fast.iterations" + get "sos.fast.skipped_steps");
  Alcotest.(check int) "makespan_steps = schedule makespan"
    sched.Sos.Schedule.makespan
    (get "sos.fast.makespan_steps");
  Alcotest.(check int) "blocks = RLE steps emitted"
    (List.length sched.Sos.Schedule.steps)
    (get "sos.fast.blocks");
  Alcotest.(check int) "consumed_units = Σ s_j"
    (Sos.Instance.total_requirement inst)
    (get "sos.fast.consumed_units");
  Alcotest.(check int) "waste_units = Schedule.total_waste"
    (Sos.Schedule.total_waste sched)
    (get "sos.fast.waste_units");
  Alcotest.(check int) "assigned − consumed = waste"
    (get "sos.fast.waste_units")
    (get "sos.fast.assigned_units" - get "sos.fast.consumed_units")

let test_reconcile_pinned () =
  reconcile_checks
    (Sos.Instance.create ~m:3 ~scale:12
       [ (4, 5); (3, 7); (6, 2); (2, 12); (5, 9) ])

let test_reconcile_random () =
  for seed = 1 to 40 do
    let rng = Rng.create (seed * 104729) in
    let inst = Workload.Sos_gen.random_instance rng ~max_n:12 ~max_size:8 () in
    try reconcile_checks inst
    with e ->
      Alcotest.failf "seed %d: %s\ninstance:\n%s" seed (Printexc.to_string e)
        (Sos.Instance.to_string inst)
  done

(* --------------------------------------------- batch snapshot determinism *)

(* Solve the same 64-instance corpus on [domains] workers and return the
   deterministic counter snapshot. Instances derive from (seed, index) via
   the engine's own seeding discipline, so the work — and therefore every
   deterministic counter — is identical at any domain count. *)
let det_snapshot_of_batch ~domains seed =
  Metrics.reset ();
  Metrics.enable ();
  Fun.protect ~finally:(fun () -> Metrics.disable ()) @@ fun () ->
  let tasks =
    Array.init 64 (fun i () ->
        let rng = Rng.create2 seed i in
        let inst = Workload.Sos_gen.random_instance rng ~max_n:8 ~max_m:4 ~max_size:5 () in
        let sched = Sos.Fast.run inst in
        (* Rating the makespan feeds the deterministic ratio histogram, so
           the byte-identity property below covers histogram buckets and
           quantiles, not just counters. *)
        ignore (Sos.Bounds.theorem_3_3_bound inst ~makespan:sched.Sos.Schedule.makespan);
        sched.Sos.Schedule.makespan)
  in
  Array.iter
    (function
      | Ok _ -> ()
      | Error (e : Engine.Batch.error) ->
          Alcotest.failf "task %d failed: %s" e.index e.message)
    (Engine.Batch.map ~domains ~chunk:4 tasks);
  Metrics.snapshot ~cls:`Deterministic ()

let qcheck_batch_snapshot_deterministic =
  Helpers.qcheck ~count:4
    "64-task batch: deterministic snapshot byte-identical at -j 1/2/4"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let s1 = det_snapshot_of_batch ~domains:1 seed in
      let s2 = det_snapshot_of_batch ~domains:2 seed in
      let s4 = det_snapshot_of_batch ~domains:4 seed in
      String.length s1 > 0
      && contains s1 "sos.bounds.ratio"
      && contains s1 "sos.fast.iterations_per_run"
      && s1 = s2 && s2 = s4)

let suite =
  ( "obs",
    [
      Alcotest.test_case "json checker sanity" `Quick test_json_checker_sanity;
      Alcotest.test_case "counter basics" `Quick test_counter_basics;
      Alcotest.test_case "registry errors" `Quick test_registry_errors;
      Alcotest.test_case "record_max" `Quick test_record_max;
      Alcotest.test_case "timer" `Quick test_timer;
      Alcotest.test_case "snapshot classes" `Quick test_snapshot_classes;
      Alcotest.test_case "snapshot json" `Quick test_snapshot_json;
      Alcotest.test_case "trace export" `Quick test_trace_export;
      Alcotest.test_case "hist basics" `Quick test_hist_basics;
      Alcotest.test_case "hist quantile goldens" `Quick test_hist_quantile_golden;
      Alcotest.test_case "hist merge commutes" `Quick test_hist_merge;
      Alcotest.test_case "openmetrics exposition" `Quick test_openmetrics;
      Alcotest.test_case "progress format goldens" `Quick test_progress_format;
      Alcotest.test_case "progress reporter" `Quick test_progress_reporter;
      Alcotest.test_case "trace ring bounded" `Quick test_trace_ring;
      Alcotest.test_case "trace flow events" `Quick test_trace_flow;
      Alcotest.test_case "trace ring flat memory" `Quick test_trace_ring_flat_memory;
      Alcotest.test_case "snapshot parse roundtrip" `Quick test_snapshot_parse;
      Alcotest.test_case "snapshot prom histogram (+Inf bucket)" `Quick
        test_snapshot_parse_prom_histogram;
      Alcotest.test_case "snapshot prom timer quantiles" `Quick test_snapshot_parse_prom_timer;
      Alcotest.test_case "snapshot prom/json round-trip" `Quick
        test_snapshot_prom_json_roundtrip;
      Alcotest.test_case "solver counters reconcile (pinned)" `Quick
        test_reconcile_pinned;
      Alcotest.test_case "solver counters reconcile (random)" `Quick
        test_reconcile_random;
      qcheck_batch_snapshot_deterministic;
    ] )
