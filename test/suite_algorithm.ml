(* End-to-end tests of the approximation algorithm: Listing 1, the fast
   solver, and the unit-size (splittable) variant, against the guarantees of
   Theorem 3.3 and the structural lemmas. *)

open Sos
module Rng = Prelude.Rng

let test_single_job () =
  (* One job, r = 30/10 > scale: it can use at most the full resource per
     step → p·r/scale … with r > scale progress is scale/r per step:
     s = 4*30 = 120, consumes ≤ 10/step? No: consumption per step is
     min(assigned, r) = 10 (the full resource). 120/10 = 12 steps. *)
  let inst = Instance.create ~m:3 ~scale:10 [ (4, 30) ] in
  let s = Listing1.run ~check:true inst in
  Helpers.check_valid s;
  Alcotest.(check int) "makespan" 12 s.Schedule.makespan

let test_full_requirement_single () =
  (* r = scale: job gets everything, finishes in exactly p steps. *)
  let inst = Instance.create ~m:2 ~scale:10 [ (5, 10) ] in
  let s = Listing1.run ~check:true inst in
  Alcotest.(check int) "makespan = p" 5 s.Schedule.makespan

let test_two_tiny_jobs_parallel () =
  (* m = 3 (window size 2): two tiny jobs run together. *)
  let inst = Instance.create ~m:3 ~scale:10 [ (2, 1); (2, 1) ] in
  let s = Listing1.run ~check:true inst in
  Helpers.check_valid s;
  Alcotest.(check int) "parallel finish" 2 s.Schedule.makespan

let test_empty_instance () =
  let inst = Instance.create ~m:4 ~scale:10 [] in
  let s = Listing1.run inst in
  Alcotest.(check int) "empty" 0 s.Schedule.makespan

let test_known_optimal_fill () =
  (* Jobs exactly fill the resource: 4 unit-size jobs of r = scale/4 with
     m = 5 ≥ 5 → all four run each step at full requirement; p = 3 → 3 steps. *)
  let inst = Instance.create ~m:5 ~scale:100 [ (3, 25); (3, 25); (3, 25); (3, 25) ] in
  let s = Listing1.run ~check:true inst in
  Helpers.check_valid s;
  Alcotest.(check int) "resource-tight optimum" 3 s.Schedule.makespan

let variants = [ `Fixed; `Literal ]

let expand (s : Schedule.t) =
  List.concat_map
    (fun (st : Schedule.step) ->
      List.init st.repeat (fun _ ->
          List.map (fun (a : Schedule.alloc) -> (a.job, a.assigned, a.consumed)) st.allocs))
    s.steps

let prop_valid inst =
  List.iter
    (fun variant -> Helpers.check_valid (Listing1.run ~check:true ~variant inst))
    variants

let prop_fast_equivalent inst =
  List.iter
    (fun variant ->
      let s1 = Listing1.run ~check:true ~variant inst in
      let s2 = Fast.run ~variant inst in
      if s1.Schedule.makespan <> s2.Schedule.makespan then
        Alcotest.failf "makespan mismatch: listing1=%d fast=%d" s1.Schedule.makespan
          s2.Schedule.makespan;
      if expand s1 <> expand s2 then Alcotest.fail "expanded schedules differ";
      Helpers.check_valid s2)
    variants

let prop_theorem_3_3 inst =
  let m = inst.Instance.m in
  if m >= 3 && Instance.n inst > 0 then begin
    let lb = Bounds.lower_bound inst in
    let bound = Bounds.guarantee_general ~m in
    let limit = int_of_float (ceil (bound *. float_of_int lb)) in
    List.iter
      (fun variant ->
        let s = Fast.run ~variant inst in
        if s.Schedule.makespan > limit then
          Alcotest.failf "ratio violated: makespan=%d lb=%d bound=%.4f"
            s.Schedule.makespan lb bound)
      variants
  end

let prop_unit_size_theorem inst =
  let m = inst.Instance.m in
  if m >= 3 && Instance.n inst > 0 then begin
    let s = Listing1.run inst in
    let lb = Bounds.lower_bound inst in
    let bound = Bounds.guarantee_unit ~m in
    let limit = int_of_float (ceil (bound *. float_of_int lb)) + 1 in
    if s.Schedule.makespan > limit then
      Alcotest.failf "unit-size bound violated: makespan=%d lb=%d" s.Schedule.makespan lb
  end

let prop_lemma_3_8 inst =
  (* Border flags are monotone: once the window touches the left (right)
     border it stays there. *)
  let _, trace = Listing1.run_traced inst in
  let rec check seen_left seen_right = function
    | [] -> ()
    | (info : Listing1.step_info) :: rest ->
        if seen_left && not info.at_left_border then
          Alcotest.failf "left border lost at t=%d" info.time;
        if seen_right && not info.at_right_border then
          Alcotest.failf "right border lost at t=%d" info.time;
        check (seen_left || info.at_left_border)
          (seen_right || info.at_right_border)
          rest
  in
  check false false trace

let prop_observation_3_2 inst =
  (* The per-step accounting dichotomy behind Theorem 3.3 (Observation 3.2
     / the algorithmic intuition): every step either gives at least |W|−1
     window jobs their full requirement (or finishes them), or distributes
     the full resource. The single-fracture half of Observation 3.2 is
     asserted by ~check. *)
  let budget = inst.Instance.scale in
  let sched, trace = Listing1.run_traced ~check:true inst in
  let steps = Array.of_list sched.Schedule.steps in
  List.iteri
    (fun idx (info : Listing1.step_info) ->
      let allocs = steps.(idx).Schedule.allocs in
      let satisfied =
        List.length
          (List.filter
             (fun (a : Schedule.alloc) ->
               a.consumed = (Instance.job inst a.job).Job.req
               || List.mem a.job info.finished)
             allocs)
      in
      let consumed = List.fold_left (fun acc (a : Schedule.alloc) -> acc + a.consumed) 0 allocs in
      let w = List.length info.window in
      if satisfied < w - 1 && consumed < budget then
        Alcotest.failf
          "step %d: neither %d/%d jobs at full requirement nor full resource (%d/%d)"
          info.time satisfied w consumed budget)
    trace

let prop_evolved_windows_stay_windows inst =
  (* After arbitrary prefixes of the execution, the computed window still
     satisfies Definition 3.1 (a)–(d) and effective maximality. *)
  let st = State.create inst in
  let size = inst.Instance.m - 1 and budget = inst.Instance.scale in
  let carried = ref Window.empty in
  let steps = ref 0 in
  while (not (State.all_finished st)) && !steps < 50 do
    incr steps;
    let w = Window.compute st !carried ~size ~budget in
    if not (Window.is_window st w ~budget) then
      Alcotest.failf "step %d: computed set is not a window" !steps;
    if not (Window.is_effectively_maximal st w ~k:size ~budget) then
      Alcotest.failf "step %d: not effectively maximal" !steps;
    let outcome = Assign.compute st w ~budget ~extra:true in
    let finished = Assign.apply st outcome in
    let survivors = Window.prune st outcome.Assign.window in
    List.iter (State.unlink st) finished;
    carried := survivors;
    State.tick st
  done

let prop_extra_job_invariant inst =
  (* The case-2 extra job (reserved m-th processor) may only be started in a
     step that also finishes a job — the leftover exists precisely because
     the fractured job ι ran out (Section 3.1's discussion); and it always
     belongs to a Case_partial step. *)
  let _, trace = Listing1.run_traced inst in
  List.iter
    (fun (info : Listing1.step_info) ->
      match info.extra with
      | None -> ()
      | Some x ->
          if info.case <> Assign.Case_partial then
            Alcotest.failf "step %d: extra job in a case-1 step" info.time;
          if info.finished = [] then
            Alcotest.failf "step %d: extra job %d started but nothing finished"
              info.time x)
    trace

let prop_splittable inst =
  if Instance.unit_size inst then begin
    let s = Splittable.run inst in
    Helpers.check_valid ~preemption_ok:true s;
    let m = inst.Instance.m in
    let lb = Bounds.lower_bound inst in
    let bound = Bounds.guarantee_unit_modified ~m in
    let limit = int_of_float (ceil (bound *. float_of_int lb)) + 1 in
    if s.Schedule.makespan > limit then
      Alcotest.failf "splittable bound violated: makespan=%d lb=%d m=%d"
        s.Schedule.makespan lb m
  end

let prop_splittable_nonpreemptive inst =
  if Instance.unit_size inst then begin
    let s = Splittable.run_nonpreemptive inst in
    (* genuinely non-preemptive: the strict validator must pass *)
    Helpers.check_valid s;
    let m = inst.Instance.m in
    let lb = Bounds.lower_bound inst in
    let bound = Bounds.guarantee_unit_modified ~m in
    let limit = int_of_float (ceil (bound *. float_of_int lb)) + 1 in
    if s.Schedule.makespan > limit then
      Alcotest.failf "non-preemptive m-maximal bound violated: makespan=%d lb=%d m=%d"
        s.Schedule.makespan lb m
  end

let unit_instance rng =
  let scale = Rng.int_in rng 5 200 in
  let m = Rng.int_in rng 2 9 in
  let n = Rng.int_in rng 1 50 in
  let specs = List.init n (fun _ -> (1, Rng.int_in rng 1 (scale * 2))) in
  Instance.create ~m ~scale specs

let for_unit_instances ?(count = 300) name f =
  Alcotest.test_case name `Quick (fun () ->
      for seed = 1 to count do
        let rng = Rng.create (seed * 104729) in
        let inst = unit_instance rng in
        try f inst
        with e ->
          Alcotest.failf "%s: seed %d: %s\n%s" name seed (Printexc.to_string e)
            (Instance.to_string inst)
      done)

(* Large processing volumes: exercises the step-skipping path hard. *)
let big_volume_instance rng =
  let scale = Rng.int_in rng 10 100 in
  let m = Rng.int_in rng 2 6 in
  let n = Rng.int_in rng 1 10 in
  let specs =
    List.init n (fun _ -> (Rng.int_in rng 1 10_000, Rng.int_in rng 1 (scale + (scale / 2))))
  in
  Instance.create ~m ~scale specs

let test_fast_on_big_volumes () =
  for seed = 1 to 60 do
    let rng = Rng.create (seed * 31337) in
    let inst = big_volume_instance rng in
    let s = Fast.run inst in
    (try Helpers.check_valid s
     with e ->
       Alcotest.failf "big volume seed %d: %s\n%s" seed (Printexc.to_string e)
         (Instance.to_string inst));
    (* The fast path must actually compress: far fewer iterations than steps. *)
    let _, iters = Fast.run_count inst in
    if s.Schedule.makespan > 1000 && iters * 20 > s.Schedule.makespan then
      Alcotest.failf "fast solver did not compress: %d iters for makespan %d" iters
        s.Schedule.makespan
  done

let test_fast_equiv_medium_volumes () =
  (* Direct Listing1 comparison needs expandable makespans. *)
  for seed = 1 to 150 do
    let rng = Rng.create (seed * 2741) in
    let scale = Rng.int_in rng 5 60 in
    let m = Rng.int_in rng 2 6 in
    let n = Rng.int_in rng 1 12 in
    let specs =
      List.init n (fun _ -> (Rng.int_in rng 1 60, Rng.int_in rng 1 (scale * 3 / 2)))
    in
    let inst = Instance.create ~m ~scale specs in
    try prop_fast_equivalent inst
    with e ->
      Alcotest.failf "seed %d: %s\n%s" seed (Printexc.to_string e)
        (Instance.to_string inst)
  done

let test_fast_equiv_qevent_stress () =
  (* Deterministic instances engineered so the remainder receiver's q-value
     cycles hit 0 mid-run (the congruence cap of the skip rule): prime-ish
     scales with requirement mixes sharing factors, large volumes. *)
  let cases =
    [
      (3, 7, [ (50, 3); (60, 5); (40, 6) ]);
      (3, 7, [ (100, 2); (100, 5); (100, 7) ]);
      (4, 11, [ (80, 3); (80, 4); (80, 6); (70, 9) ]);
      (3, 12, [ (90, 8); (90, 5); (33, 12) ]);
      (4, 9, [ (64, 2); (64, 2); (64, 7); (10, 9) ]);
      (5, 13, [ (55, 3); (55, 3); (55, 4); (55, 6); (55, 11) ]);
      (2, 5, [ (70, 2); (70, 3) ]);
      (3, 6, [ (77, 4); (77, 4); (77, 5) ]);
    ]
  in
  List.iter
    (fun (m, scale, specs) ->
      let inst = Instance.create ~m ~scale specs in
      try prop_fast_equivalent inst
      with e ->
        Alcotest.failf "m=%d scale=%d: %s\n%s" m scale (Printexc.to_string e)
          (Instance.to_string inst))
    cases

(* Iteration-count goldens for the event-driven solver: the number of
   simulated loop iterations on pinned instances, both window variants.
   These pin the predictive-skip behaviour exactly — a change that costs
   (or saves) even one event shows up here long before it moves wall
   clock. Refresh deliberately if the skip rule is extended. *)
let test_fast_iteration_goldens () =
  let check name inst ~fixed ~literal =
    let s_fix, it_fix = Fast.run_count ~variant:`Fixed inst in
    let s_lit, it_lit = Fast.run_count ~variant:`Literal inst in
    Helpers.check_valid s_fix;
    Helpers.check_valid s_lit;
    Alcotest.(check int) (name ^ ": fixed iterations") fixed it_fix;
    Alcotest.(check int) (name ^ ": literal iterations") literal it_lit
  in
  check "pinned-m3"
    (Instance.create ~m:3 ~scale:12 [ (4, 5); (3, 7); (6, 2); (2, 12); (5, 9) ])
    ~fixed:6 ~literal:6;
  check "pinned-m4"
    (Instance.create ~m:4 ~scale:10
       [ (2, 3); (5, 4); (1, 10); (3, 6); (4, 2); (2, 8); (6, 5) ])
    ~fixed:8 ~literal:8;
  let rng = Rng.create 424242 in
  check "bimodal-n60"
    (Workload.Sos_gen.generate rng Workload.Sos_gen.bimodal ~n:60 ~m:8 ())
    ~fixed:50 ~literal:48

(* The perf gate's T7b volume-scaling shapes (same seed recipe as
   bench/exp_perf.ml's make_instance): the simulated iteration count must
   stay linear in n with a small constant. Makespans here are 10^7–10^8
   steps, so a lost skip blows past 2n immediately — long before the
   solver's 16n + 64 hard backstop would trip. *)
let gate_instance ~n ~m ~pmax seed =
  let rng = Rng.create (0xCA51E + seed) in
  let scale = 720720 in
  let specs =
    List.init n (fun _ -> (Rng.int_in rng 1 pmax, Rng.int_in rng 1 scale))
  in
  Instance.create ~m ~scale specs

let test_fast_iterations_linear () =
  List.iter
    (fun (n, pmax) ->
      let inst = gate_instance ~n ~m:8 ~pmax (7 * n * pmax) in
      List.iter
        (fun variant ->
          let sched, iters = Fast.run_count ~variant inst in
          if iters > 2 * n then
            Alcotest.failf "t7b n=%d pmax=%d: %d iterations > 2n (makespan %d)" n
              pmax iters sched.Schedule.makespan)
        variants)
    [ (50, 10_000_000); (800, 100_000); (3200, 100_000) ]

let test_makespan_at_least_lb () =
  for seed = 1 to 200 do
    let rng = Rng.create (seed * 13) in
    let inst = Workload.Sos_gen.random_instance rng () in
    let s = Fast.run inst in
    let lb = Bounds.lower_bound inst in
    if s.Schedule.makespan < lb then
      Alcotest.failf "makespan %d below lower bound %d (seed %d)\n%s"
        s.Schedule.makespan lb seed (Instance.to_string inst)
  done

let test_splittable_pack_structure () =
  let items = [ { Splittable.id = 0; size = 60 }; { id = 1; size = 60 }; { id = 2; size = 60 } ]
  in
  let bins = Splittable.pack items ~size:2 ~budget:100 in
  (* Every bin except possibly the last is full or has k parts; all mass packed. *)
  let total =
    List.fold_left
      (fun acc bin -> List.fold_left (fun acc (_, a) -> acc + a) acc bin)
      0 bins
  in
  Alcotest.(check int) "all packed" 180 total;
  List.iter
    (fun bin ->
      let sum = List.fold_left (fun acc (_, a) -> acc + a) 0 bin in
      Alcotest.(check bool) "bin within capacity" true (sum <= 100);
      Alcotest.(check bool) "cardinality" true (List.length bin <= 2))
    bins;
  (* LB = max(⌈1.8⌉, ⌈3/2⌉) = 2; the algorithm may use at most 3 bins here. *)
  Alcotest.(check bool) "bin count within guarantee" true (List.length bins <= 3)

(* Reproduction finding (see Window.is_effectively_maximal): a distilled
   instance on which the literal Listing 2 produces a step whose window has
   fewer than m−1 jobs, unfinished jobs to its left, and r(W) ≥ 1 — i.e.
   strict (m−1)-maximality (Lemma 3.7 as stated) fails, while the weakened
   invariant (and the Theorem 3.3 ratio) still holds. *)
let test_lemma_3_7_stall () =
  (* m = 7, scale = 127. Small jobs finish out of a full window while the
     large max survives, leaving the carried window overfull. *)
  let specs =
    [ (2, 6); (4, 6); (4, 14); (3, 14); (6, 30); (8, 31); (7, 33); (8, 52); (7, 52);
      (8, 56); (8, 63); (7, 64); (1, 70); (3, 76); (1, 81); (4, 86); (1, 88); (4, 90);
      (5, 97); (2, 101); (8, 103); (6, 106); (1, 106); (3, 108); (2, 110); (7, 114);
      (6, 117); (3, 121); (3, 124); (5, 129); (8, 137); (6, 143); (3, 148) ]
  in
  let inst = Instance.create ~m:7 ~scale:127 specs in
  (* Both variants must run cleanly under the weakened (effective) check... *)
  let s_lit = Listing1.run ~check:true ~variant:`Literal inst in
  let s_fix = Listing1.run ~check:true ~variant:`Fixed inst in
  Helpers.check_valid s_lit;
  Helpers.check_valid s_fix;
  (* ...and under the literal GrowWindowLeft, strict Lemma 3.7 must actually
     fail somewhere: replay the algorithm asserting strict maximality. *)
  let strict_violations variant =
    let st = State.create inst in
    let size = inst.Instance.m - 1 and budget = inst.Instance.scale in
    let carried = ref Window.empty in
    let violations = ref 0 in
    while not (State.all_finished st) do
      let w = Window.compute ~variant st !carried ~size ~budget in
      if not (Window.is_k_maximal st w ~k:size ~budget) then incr violations;
      let outcome = Assign.compute st w ~budget ~extra:true in
      let finished = Assign.apply st outcome in
      let survivors = Window.prune st outcome.Assign.window in
      List.iter (State.unlink st) finished;
      carried := survivors;
      State.tick st
    done;
    !violations
  in
  Alcotest.(check bool) "strict Lemma 3.7 violated under literal Listing 2" true
    (strict_violations `Literal > 0);
  Alcotest.(check int) "fixed GrowWindowLeft restores Lemma 3.7 here" 0
    (strict_violations `Fixed);
  (* The guarantee of Theorem 3.3 holds for both variants. *)
  let lb = Bounds.lower_bound inst in
  let bound = Bounds.guarantee_general ~m:7 in
  List.iter
    (fun (s : Schedule.t) ->
      Alcotest.(check bool) "ratio within guarantee" true
        (float_of_int s.Schedule.makespan <= (bound *. float_of_int lb) +. 1e-9))
    [ s_lit; s_fix ]

let test_gantt_renders () =
  let inst = Instance.create ~m:3 ~scale:10 [ (2, 3); (2, 4); (1, 8); (3, 2) ] in
  let s = Listing1.run inst in
  let g = Schedule.render_gantt s in
  Alcotest.(check bool) "has rows" true (List.length (String.split_on_char '\n' g) >= 3)

let test_processor_assignment () =
  let inst = Instance.create ~m:3 ~scale:10 [ (2, 3); (2, 4); (1, 8); (3, 2) ] in
  let s = Listing1.run inst in
  let assignment = Schedule.processor_assignment s in
  Alcotest.(check int) "every job placed" (Instance.n inst) (List.length assignment);
  List.iter
    (fun (_, p, _) ->
      Alcotest.(check bool) "processor in range" true (p >= 0 && p < 3))
    assignment

let test_utilization_profile () =
  let inst = Instance.create ~m:4 ~scale:100 [ (2, 50); (2, 50); (2, 50) ] in
  let s = Listing1.run inst in
  let u = Schedule.utilization s in
  Alcotest.(check int) "covers makespan" s.Schedule.makespan (Schedule.profile_length u);
  Array.iter
    (fun (_, _, x) -> Alcotest.(check bool) "≤ 1" true (x <= 1.0 +. 1e-9))
    u;
  let dense = Schedule.to_dense ~default:0.0 u in
  Alcotest.(check int) "dense length = makespan" s.Schedule.makespan (Array.length dense);
  let capped = Schedule.to_dense ~cap:2 ~default:0.0 u in
  Alcotest.(check int) "cap truncates" (min 2 s.Schedule.makespan) (Array.length capped)

let suite =
  ( "algorithm",
    [
      Alcotest.test_case "single big-requirement job" `Quick test_single_job;
      Alcotest.test_case "full-requirement job" `Quick test_full_requirement_single;
      Alcotest.test_case "tiny jobs in parallel" `Quick test_two_tiny_jobs_parallel;
      Alcotest.test_case "empty instance" `Quick test_empty_instance;
      Alcotest.test_case "resource-tight optimum" `Quick test_known_optimal_fill;
      Helpers.for_random_instances "schedule validity (random)" prop_valid;
      Helpers.for_random_instances "window maximality every step (Lemma 3.7)"
        (fun inst -> ignore (Listing1.run ~check:true inst));
      Helpers.for_random_instances "fast ≡ listing1 (random)" prop_fast_equivalent;
      Helpers.for_random_instances ~count:400 "Theorem 3.3 ratio (random)" prop_theorem_3_3;
      Helpers.for_random_instances "Lemma 3.8 border monotonicity" prop_lemma_3_8;
      Helpers.for_random_instances "Observation 3.2 accounting dichotomy"
        prop_observation_3_2;
      Helpers.for_random_instances "evolved windows stay windows"
        prop_evolved_windows_stay_windows;
      Helpers.for_random_instances "extra-job invariant" prop_extra_job_invariant;
      for_unit_instances "unit-size Theorem 3.3 bound" prop_unit_size_theorem;
      for_unit_instances "splittable variant bound (Cor 3.9)" prop_splittable;
      for_unit_instances "non-preemptive m-maximal variant" prop_splittable_nonpreemptive;
      Alcotest.test_case "fast on big volumes" `Quick test_fast_on_big_volumes;
      Alcotest.test_case "fast ≡ listing1 (q-event stress)" `Quick
        test_fast_equiv_qevent_stress;
      Alcotest.test_case "fast ≡ listing1 (medium volumes)" `Quick
        test_fast_equiv_medium_volumes;
      Alcotest.test_case "fast iteration goldens" `Quick test_fast_iteration_goldens;
      Alcotest.test_case "fast iterations ≤ 2n (t7b shapes)" `Quick
        test_fast_iterations_linear;
      Alcotest.test_case "makespan ≥ lower bound" `Quick test_makespan_at_least_lb;
      Alcotest.test_case "splittable pack structure" `Quick test_splittable_pack_structure;
      Alcotest.test_case "Lemma 3.7 stall (reproduction finding)" `Quick
        test_lemma_3_7_stall;
      Alcotest.test_case "gantt renders" `Quick test_gantt_renders;
      Alcotest.test_case "processor assignment" `Quick test_processor_assignment;
      Alcotest.test_case "utilization profile" `Quick test_utilization_profile;
    ] )
