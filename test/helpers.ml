(* Shared helpers for the test suites. *)

module Rng = Prelude.Rng

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    ~rand:
      (Random.State.make [| 0x5eed |]
      [@sos.allow "R1: fixed-seed qcheck driver state, reproducible by construction"]
      [@sos.allow
        "A1: the literal seed makes the qcheck stream identical run to run; no wall-clock or \
         ambient entropy is involved"])
    (QCheck.Test.make ~count ~name gen prop)

(* Run [f] on [count] seeded random instances; the seed is reported on
   failure so a counterexample can be replayed. *)
let for_random_instances ?(count = 300) ?max_n ?max_m ?max_size ?scale name f =
  Alcotest.test_case name `Quick (fun () ->
      for seed = 1 to count do
        let rng = Rng.create (seed * 7919) in
        let inst = Workload.Sos_gen.random_instance rng ?max_n ?max_m ?max_size ?scale () in
        try f inst
        with e ->
          Alcotest.failf "%s: seed %d: %s\ninstance:\n%s" name seed
            (Printexc.to_string e) (Sos.Instance.to_string inst)
      done)

(* Substring check for asserting on diagnostic messages. *)
let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let check_valid ?preemption_ok sched =
  match Sos.Schedule.validate ?preemption_ok sched with
  | Ok () -> ()
  | Error v -> Alcotest.failf "invalid schedule at step %d: %s" v.at_step v.reason

let instance_of_reqs ~m ~scale reqs =
  Sos.Instance.create ~m ~scale (List.map (fun r -> (1, r)) reqs)
