(* Tests for Sos.Job, Sos.Instance and Sos.Bounds. *)

open Sos

let test_job_smart_constructor () =
  Alcotest.check_raises "size 0" (Invalid_argument "Job.v: size must be positive")
    (fun () -> ignore (Job.v ~id:0 ~size:0 ~req:1));
  Alcotest.check_raises "req 0" (Invalid_argument "Job.v: req must be positive")
    (fun () -> ignore (Job.v ~id:0 ~size:1 ~req:0));
  let j = Job.v ~id:3 ~size:4 ~req:5 in
  Alcotest.(check int) "s = p*r" 20 (Job.s j)

let test_instance_sorting () =
  let inst = Instance.create ~m:3 ~scale:100 [ (1, 70); (2, 10); (1, 40) ] in
  Alcotest.(check int) "n" 3 (Instance.n inst);
  Alcotest.(check (list int)) "sorted requirements" [ 10; 40; 70 ]
    (List.init 3 (fun i -> (Instance.job inst i).Job.req));
  Alcotest.(check (array int)) "original positions" [| 1; 2; 0 |] inst.Instance.original

let test_instance_ids_relabelled () =
  let inst = Instance.create ~m:2 ~scale:10 [ (1, 9); (1, 1) ] in
  Alcotest.(check (list int)) "ids are sorted positions" [ 0; 1 ]
    (List.init 2 (fun i -> (Instance.job inst i).Job.id))

let test_instance_validation () =
  Alcotest.check_raises "m < 2" (Invalid_argument "Instance.create: need m >= 2")
    (fun () -> ignore (Instance.create ~m:1 ~scale:10 []));
  Alcotest.check_raises "scale < 1" (Invalid_argument "Instance.create: need scale >= 1")
    (fun () -> ignore (Instance.create ~m:2 ~scale:0 []))

let test_instance_aggregates () =
  let inst = Instance.create ~m:4 ~scale:100 [ (2, 30); (3, 50) ] in
  Alcotest.(check int) "total volume" 5 (Instance.total_volume inst);
  Alcotest.(check int) "total requirement" 210 (Instance.total_requirement inst);
  Alcotest.(check int) "sum req" 80 (Instance.sum_req inst);
  Alcotest.(check int) "max size" 3 (Instance.max_size inst);
  Alcotest.(check bool) "not unit" false (Instance.unit_size inst)

let test_instance_rescale () =
  let inst = Instance.create ~m:3 ~scale:10 [ (2, 3); (1, 7) ] in
  let r = Instance.rescale inst 6 in
  Alcotest.(check int) "scale" 60 r.Instance.scale;
  Alcotest.(check (list int)) "reqs scaled" [ 18; 42 ]
    (List.init 2 (fun i -> (Instance.job r i).Job.req));
  Alcotest.(check int) "lower bound unchanged" (Bounds.lower_bound inst)
    (Bounds.lower_bound r)

let test_instance_roundtrip () =
  let inst = Instance.create ~m:5 ~scale:720720 [ (3, 100); (1, 720720); (7, 5) ] in
  let inst' = Instance.of_string (Instance.to_string inst) in
  Alcotest.(check int) "m" inst.Instance.m inst'.Instance.m;
  Alcotest.(check int) "scale" inst.Instance.scale inst'.Instance.scale;
  Alcotest.(check bool) "jobs equal" true
    (Array.for_all2 Job.equal inst.Instance.jobs inst'.Instance.jobs);
  Alcotest.(check (array int)) "original equal" inst.Instance.original inst'.Instance.original

let test_of_floats () =
  let inst = Instance.of_floats ~m:2 ~scale:1000 [ (1, 0.5); (1, 1e-9); (1, 0.2501) ] in
  Alcotest.(check (list int)) "quantized (sorted)" [ 1; 250; 500 ]
    (List.init 3 (fun i -> (Instance.job inst i).Job.req))

let test_bounds_example () =
  (* 3 machines, scale 10. Jobs: (p=2,r=6),(p=1,r=9),(p=4,r=1).
     Σs = 12+9+4 = 25 → ⌈25/10⌉ = 3; Σp = 7 → ⌈7/3⌉ = 3; max p = 4. LB = 4. *)
  let inst = Instance.create ~m:3 ~scale:10 [ (2, 6); (1, 9); (4, 1) ] in
  Alcotest.(check int) "resource bound" 3 (Bounds.resource_bound inst);
  Alcotest.(check int) "volume bound" 3 (Bounds.volume_bound inst);
  Alcotest.(check int) "longest job" 4 (Bounds.longest_job_bound inst);
  Alcotest.(check int) "lower bound" 4 (Bounds.lower_bound inst)

let test_bounds_empty () =
  let inst = Instance.create ~m:2 ~scale:10 [] in
  Alcotest.(check int) "lb empty" 0 (Bounds.lower_bound inst)

let test_guarantees () =
  Alcotest.(check (float 1e-9)) "general m=3" 3.0 (Bounds.guarantee_general ~m:3);
  Alcotest.(check (float 1e-9)) "general m=4" 2.5 (Bounds.guarantee_general ~m:4);
  Alcotest.(check (float 1e-9)) "unit m=4" 2.0 (Bounds.guarantee_unit ~m:4);
  Alcotest.(check (float 1e-9)) "unit modified m=2" 2.0 (Bounds.guarantee_unit_modified ~m:2);
  Alcotest.(check (float 1e-9)) "unit modified m=11" 1.1 (Bounds.guarantee_unit_modified ~m:11)

let qcheck_sorted_after_create =
  Helpers.qcheck "instance always sorted by requirement"
    QCheck.(list_of_size Gen.(int_range 1 30) (pair (int_range 1 9) (int_range 1 50)))
    (fun specs ->
      let inst = Instance.create ~m:3 ~scale:20 specs in
      let ok = ref true in
      for i = 0 to Instance.n inst - 2 do
        if (Instance.job inst i).Job.req > (Instance.job inst (i + 1)).Job.req then
          ok := false
      done;
      !ok)

let qcheck_roundtrip =
  Helpers.qcheck "serialization round-trip (arbitrary instances)"
    QCheck.(
      pair (int_range 2 9)
        (list_of_size Gen.(int_range 0 25) (pair (int_range 1 50) (int_range 1 400))))
    (fun (m, specs) ->
      let inst = Instance.create ~m ~scale:123 specs in
      let inst' = Instance.of_string (Instance.to_string inst) in
      Instance.to_string inst = Instance.to_string inst')

let qcheck_lb_monotone_under_addition =
  Helpers.qcheck "lower bound monotone when jobs are added"
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 15) (pair (int_range 1 9) (int_range 1 40)))
        (pair (int_range 1 9) (int_range 1 40)))
    (fun (specs, extra) ->
      let inst = Instance.create ~m:4 ~scale:20 specs in
      let inst' = Instance.create ~m:4 ~scale:20 (extra :: specs) in
      Bounds.lower_bound inst' >= Bounds.lower_bound inst)

let qcheck_lb_le_trivial_schedule =
  (* Any valid schedule's makespan is at least the lower bound; the trivial
     one-job-per-step schedule has makespan Σ ⌈s_j / min(r_j, scale)⌉·…;
     cheaper check: lower bound is at most Σ_j p_j · max(1, ⌈r_j/scale⌉). *)
  Helpers.qcheck "lower bound sanity"
    QCheck.(list_of_size Gen.(int_range 1 20) (pair (int_range 1 5) (int_range 1 40)))
    (fun specs ->
      let inst = Instance.create ~m:2 ~scale:10 specs in
      let upper =
        List.fold_left
          (fun acc (p, r) -> acc + (p * (((r - 1) / 10) + 1)))
          0 specs
      in
      Bounds.lower_bound inst <= upper)

let suite =
  ( "instance",
    [
      Alcotest.test_case "job smart constructor" `Quick test_job_smart_constructor;
      Alcotest.test_case "sorting" `Quick test_instance_sorting;
      Alcotest.test_case "id relabelling" `Quick test_instance_ids_relabelled;
      Alcotest.test_case "validation" `Quick test_instance_validation;
      Alcotest.test_case "aggregates" `Quick test_instance_aggregates;
      Alcotest.test_case "rescale" `Quick test_instance_rescale;
      Alcotest.test_case "serialization roundtrip" `Quick test_instance_roundtrip;
      Alcotest.test_case "of_floats" `Quick test_of_floats;
      Alcotest.test_case "bounds example" `Quick test_bounds_example;
      Alcotest.test_case "bounds empty" `Quick test_bounds_empty;
      Alcotest.test_case "guarantee formulas" `Quick test_guarantees;
      qcheck_sorted_after_create;
      qcheck_roundtrip;
      qcheck_lb_monotone_under_addition;
      qcheck_lb_le_trivial_schedule;
    ] )
