(* Tests for the 3-Partition machinery and the Theorem 2.1 hardness
   reduction: the reduction's YES/NO gap is verified against the exact bin
   packing solver, exhaustively on small instances. *)

module TP = Exact.Three_partition
module BE = Exact.Binpack_exact
module Rng = Prelude.Rng

let test_create_validation () =
  Alcotest.(check bool) "well-formed accepted" true
    (match TP.create [ 26; 35; 39 ] with _ -> true);
  Alcotest.check_raises "wrong count"
    (Invalid_argument "Three_partition.create: need 3q elements") (fun () ->
      ignore (TP.create [ 1; 2 ]));
  (* 3 elements with an element outside (target/4, target/2). *)
  Alcotest.check_raises "range violated"
    (Invalid_argument "Three_partition.create: element outside (target/4, target/2)")
    (fun () -> ignore (TP.create [ 10; 10; 80 ]))

let test_solvable_basic () =
  let yes = TP.create [ 26; 35; 39; 30; 30; 40 ] in
  Alcotest.(check bool) "solvable yes" true (TP.solvable yes);
  (* q=2, target=100; triples must sum to 100 each: {26,35,39},{26,35,39}
     works, so shuffle to a NO case: elements where no split exists.
     {30,30,45,26,35,34}: sum 200, target 100. Triples summing 100:
     30+30+40? no 40. 30+26+44? no. 30+35+35? only one 35. 30+26+35=91 no…
     45+26+30 = 101, 45+26+35=106, 45+30+30=105, 45+34+26=105, 45+35+30=110,
     45+34+30=109, 45+34+35=114, 45+35+26=106 — no triple with 45 sums to
     100 ⇒ NO. *)
  let no = TP.create [ 30; 30; 45; 26; 35; 34 ] in
  Alcotest.(check bool) "solvable no" false (TP.solvable no)

let test_random_yes_solvable () =
  for seed = 1 to 40 do
    let rng = Rng.create (seed * 37) in
    let t = TP.random_yes rng ~q:(1 + (seed mod 4)) ~target:60 in
    Alcotest.(check bool) "random YES is solvable" true (TP.solvable t)
  done

let test_reduction_gap () =
  (* Exhaustively: the bin packing optimum is q iff 3-Partition is
     solvable; otherwise it is ≥ q+1. *)
  let cases =
    [
      TP.create [ 26; 35; 39; 30; 30; 40 ];
      TP.create [ 30; 30; 45; 26; 35; 34 ];
      TP.create [ 27; 38; 35; 28; 33; 39 ];
      TP.create [ 33; 33; 34 ];
      TP.create [ 26; 37; 37 ];
    ]
  in
  List.iter
    (fun t ->
      let opt = BE.optimum_exn ~node_limit:3_000_000 (TP.to_binpack t) in
      let yes = TP.solvable t in
      let q = TP.yes_gap t in
      if yes then Alcotest.(check int) "YES packs into q bins" q opt
      else
        Alcotest.(check bool)
          (Printf.sprintf "NO needs > %d bins (got %d)" q opt)
          true (opt > q))
    cases

let test_reduction_random_yes () =
  for seed = 1 to 12 do
    let rng = Rng.create (seed * 53) in
    let t = TP.random_yes rng ~q:2 ~target:40 in
    let opt = BE.optimum_exn ~node_limit:3_000_000 (TP.to_binpack t) in
    Alcotest.(check int) "random YES optimum = q" (TP.yes_gap t) opt
  done

let test_to_sos_consistency () =
  let t = TP.create [ 26; 35; 39; 30; 30; 40 ] in
  let sos = TP.to_sos t in
  Alcotest.(check int) "m = 3" 3 sos.Sos.Instance.m;
  Alcotest.(check bool) "unit sizes" true (Sos.Instance.unit_size sos);
  (* The window algorithm (a valid preemptive schedule) must take at least
     the packing optimum = q steps on a YES instance, and the exact solver
     run through the SoS view must agree with the binpack view. *)
  let via_sos = BE.unit_sos_optimum ~node_limit:3_000_000 sos in
  let via_bp = BE.optimum ~node_limit:3_000_000 (TP.to_binpack t) in
  Alcotest.(check (option int)) "two views agree" via_bp via_sos

let test_k2_reduction_gap () =
  (* The cardinality-2 gadget, verified against the exact solver. *)
  let cases =
    [
      TP.create [ 26; 35; 39; 30; 30; 40 ];
      TP.create [ 30; 30; 45; 26; 35; 34 ];
      TP.create [ 27; 38; 35; 28; 33; 39 ];
      TP.create [ 33; 33; 34 ];
    ]
  in
  List.iter
    (fun t ->
      let opt = BE.optimum_exn ~node_limit:6_000_000 (TP.to_binpack_k2 t) in
      let gap = TP.k2_gap t in
      if TP.solvable t then
        Alcotest.(check int) "k2: YES packs into 2q bins" gap opt
      else
        Alcotest.(check bool)
          (Printf.sprintf "k2: NO needs > %d bins (got %d)" gap opt)
          true (opt > gap))
    cases

let test_k2_reduction_random_yes () =
  for seed = 1 to 8 do
    let rng = Rng.create (seed * 71) in
    let t = TP.random_yes rng ~q:2 ~target:36 in
    let opt = BE.optimum_exn ~node_limit:6_000_000 (TP.to_binpack_k2 t) in
    Alcotest.(check int) "k2 random YES optimum = 2q" (TP.k2_gap t) opt
  done

let test_window_on_reduction () =
  (* On YES instances the window algorithm achieves ≤ (1+1/(m−1))·q + 1. *)
  for seed = 1 to 10 do
    let rng = Rng.create (seed * 97) in
    let t = TP.random_yes rng ~q:3 ~target:40 in
    let sched = Sos.Splittable.run (TP.to_sos t) in
    let q = TP.yes_gap t in
    let bound = (1.0 +. (1.0 /. 2.0)) *. float_of_int q +. 1.0 in
    Alcotest.(check bool) "window within corollary bound" true
      (float_of_int sched.Sos.Schedule.makespan <= bound +. 1e-9)
  done

let suite =
  ( "exact",
    [
      Alcotest.test_case "3-partition validation" `Quick test_create_validation;
      Alcotest.test_case "3-partition solvable" `Quick test_solvable_basic;
      Alcotest.test_case "random YES instances solvable" `Quick test_random_yes_solvable;
      Alcotest.test_case "reduction YES/NO gap (Thm 2.1)" `Quick test_reduction_gap;
      Alcotest.test_case "reduction on random YES" `Quick test_reduction_random_yes;
      Alcotest.test_case "k=2 reduction gap (full-version Thm 2.1)" `Quick
        test_k2_reduction_gap;
      Alcotest.test_case "k=2 reduction on random YES" `Quick test_k2_reduction_random_yes;
      Alcotest.test_case "SoS view of reduction" `Quick test_to_sos_consistency;
      Alcotest.test_case "window algorithm on reductions" `Quick test_window_on_reduction;
    ] )
