(* Direct unit tests of the per-step assignment (Assign) against the
   documented case split of Listing 1, of the splittable one-step engine,
   and of the number-theory helpers that power the step-skipping solver. *)

open Sos
module Numth = Prelude.Numth

let mk ?(m = 4) reqs_sizes =
  State.create (Instance.create ~m ~scale:100 reqs_sizes)

let allocs_of outcome =
  List.map
    (fun (a : Schedule.alloc) -> (a.job, a.assigned, a.consumed))
    outcome.Assign.allocs

(* --- case 1: r(W∖F) ≥ budget --- *)

let test_case1_no_fracture () =
  (* reqs 40,50,60: window {0,1,2}: r(W) = 150 ≥ 100 → case 1.
     jobs 0,1 get full; max gets min(100−90, r=60) = 10. *)
  let st = mk [ (2, 40); (2, 50); (2, 60) ] in
  let w = Window.of_members st [ 0; 1; 2 ] in
  let o = Assign.compute st w ~budget:100 ~extra:true in
  Alcotest.(check bool) "case 1" true (o.Assign.case = Assign.Case_full);
  Alcotest.(check (list (triple int int int))) "allocations"
    [ (0, 40, 40); (1, 50, 50); (2, 10, 10) ]
    (allocs_of o);
  Alcotest.(check (option int)) "no extra" None o.Assign.extra

let test_case1_unfractures_iota () =
  (* Fracture job 0 (q = 15), keep r(W∖{0}) = 50+60 = 110 ≥ 100 → case 1:
     ι receives exactly q, max the leftover. *)
  let st = mk [ (2, 40); (2, 50); (2, 60) ] in
  State.consume st 0 25;
  (* s0 = 80−25 = 55 → q = 55 mod 40 = 15 *)
  let w = Window.of_members st [ 0; 1; 2 ] in
  let o = Assign.compute st w ~budget:100 ~extra:true in
  Alcotest.(check bool) "case 1" true (o.Assign.case = Assign.Case_full);
  Alcotest.(check (list (triple int int int))) "ι gets q, max the rest"
    [ (0, 15, 15); (1, 50, 50); (2, 35, 35) ]
    (allocs_of o);
  (* Applying the step leaves job 0 unfractured. *)
  let _ = Assign.apply st o in
  Alcotest.(check bool) "ι unfractured" false (State.fractured st 0);
  Alcotest.(check bool) "max fractured now" true (State.fractured st 2)

let test_case2_full_requirements () =
  (* reqs 10,20,30 → r(W) = 60 < 100 → case 2, no fracture: everyone gets
     the full requirement, leftover 40 starts the extra job (req 50). *)
  let st = mk ~m:5 [ (2, 10); (2, 20); (2, 30); (2, 50) ] in
  let w = Window.of_members st [ 0; 1; 2 ] in
  let o = Assign.compute st w ~budget:100 ~extra:true in
  Alcotest.(check bool) "case 2" true (o.Assign.case = Assign.Case_partial);
  Alcotest.(check (option int)) "extra started" (Some 3) o.Assign.extra;
  Alcotest.(check (list (triple int int int))) "allocations"
    [ (0, 10, 10); (1, 20, 20); (2, 30, 30); (3, 40, 40) ]
    (allocs_of o);
  Alcotest.(check (list int)) "window extended" [ 0; 1; 2; 3 ]
    (Window.members st o.Assign.window)

let test_case2_no_extra_when_disabled () =
  let st = mk ~m:5 [ (2, 10); (2, 20); (2, 30); (2, 50) ] in
  let w = Window.of_members st [ 0; 1; 2 ] in
  let o = Assign.compute st w ~budget:100 ~extra:false in
  Alcotest.(check (option int)) "no extra" None o.Assign.extra;
  Alcotest.(check int) "three allocations" 3 (List.length o.Assign.allocs)

let test_case2_iota_capped () =
  (* Fractured ι with tiny remainder: it gets min(gap, s, r). *)
  let st = mk [ (1, 30); (1, 40); (2, 90) ] in
  (* job 2: s = 180; consume 175 → s = 5, q = 5 (fractured). *)
  State.consume st 2 175;
  let w = Window.of_members st [ 0; 1; 2 ] in
  (* r(W∖F) = 70 < 100 → case 2: jobs 0,1 full; ι gets min(30, 5, 90) = 5;
     leftover 25 exists but R_t(W) = ∅ → no extra. *)
  let o = Assign.compute st w ~budget:100 ~extra:true in
  Alcotest.(check (list (triple int int int))) "allocations"
    [ (0, 30, 30); (1, 40, 40); (2, 5, 5) ]
    (allocs_of o);
  Alcotest.(check (option int)) "no job to the right" None o.Assign.extra

let test_single_fractured_job_alone () =
  let st = mk [ (3, 120) ] in
  State.consume st 0 110;
  (* s = 250, q = 250 mod 120 = 10? 3*120 = 360 − 110 = 250; 250 mod 120 = 10 ✓ *)
  let w = Window.of_members st [ 0 ] in
  let o = Assign.compute st w ~budget:100 ~extra:true in
  (* case 2 (r(W∖F) = 0): ι gets min(100, 250, 120) = 100. *)
  Alcotest.(check (list (triple int int int))) "whole budget" [ (0, 100, 100) ] (allocs_of o)

let test_two_fractured_rejected () =
  let st = mk [ (2, 40); (2, 50) ] in
  State.consume st 0 5;
  State.consume st 1 7;
  let w = Window.of_members st [ 0; 1 ] in
  Alcotest.check_raises "invariant guarded"
    (Invalid_argument "Assign.compute: more than one fractured job in window")
    (fun () -> ignore (Assign.compute st w ~budget:100 ~extra:true))

(* --- splittable one-step engine --- *)

let test_splittable_step_finishes_prefix () =
  let items = [ { Splittable.id = 0; size = 30 }; { id = 1; size = 40 }; { id = 2; size = 50 } ] in
  let allocs, rest = Splittable.step items ~size:3 ~budget:100 in
  Alcotest.(check (list (pair int int))) "all but last finish, last split"
    [ (0, 30); (1, 40); (2, 30) ]
    allocs;
  Alcotest.(check (list (pair int int))) "remainder reinserted"
    [ (2, 20) ]
    (List.map (fun it -> (it.Splittable.id, it.Splittable.size)) rest)

let test_splittable_step_slides () =
  (* size 2, budget 100, items 10,20,80: grow → {10,20} (r=30 < 100, size
     cap); slide → {20,80} (r=100 ≥ 100 stop): 20 finishes, 80 gets 80. *)
  let items = [ { Splittable.id = 0; size = 10 }; { id = 1; size = 20 }; { id = 2; size = 80 } ] in
  let allocs, rest = Splittable.step items ~size:2 ~budget:100 in
  Alcotest.(check (list (pair int int))) "slid window processed"
    [ (1, 20); (2, 80) ]
    allocs;
  Alcotest.(check (list (pair int int))) "skipped item remains"
    [ (0, 10) ]
    (List.map (fun it -> (it.Splittable.id, it.Splittable.size)) rest)

let test_splittable_step_degenerate () =
  let items = [ { Splittable.id = 0; size = 10 } ] in
  Alcotest.(check bool) "budget 0 no-op" true (Splittable.step items ~size:2 ~budget:0 = ([], items));
  Alcotest.(check bool) "size 0 no-op" true (Splittable.step items ~size:0 ~budget:5 = ([], items));
  Alcotest.(check bool) "empty no-op" true (Splittable.step [] ~size:2 ~budget:5 = ([], []))

let qcheck_splittable_conservation =
  Helpers.qcheck "splittable pack conserves mass and respects bins"
    QCheck.(
      pair (int_range 1 5)
        (list_of_size Gen.(int_range 1 15) (int_range 1 50)))
    (fun (k, sizes) ->
      let items = List.mapi (fun i size -> { Splittable.id = i; size }) sizes in
      let bins = Splittable.pack items ~size:k ~budget:20 in
      let total =
        List.fold_left
          (fun acc bin -> List.fold_left (fun acc (_, a) -> acc + a) acc bin)
          0 bins
      in
      total = List.fold_left ( + ) 0 sizes
      && List.for_all
           (fun bin ->
             List.length bin <= k
             && List.fold_left (fun acc (_, a) -> acc + a) 0 bin <= 20)
           bins)

(* --- number theory --- *)

let test_egcd () =
  List.iter
    (fun (a, b) ->
      let g, x, y = Numth.egcd a b in
      Alcotest.(check int) (Printf.sprintf "bezout %d %d" a b) g ((a * x) + (b * y));
      Alcotest.(check int) "gcd" g (Numth.gcd a b))
    [ (12, 18); (35, 64); (1, 1); (0, 7); (100, 100); (17, 289) ]

let test_congruence_brute () =
  (* Cross-check against brute force for all small (c, q, r). *)
  for r = 1 to 25 do
    for c = 0 to 30 do
      for q = 0 to r - 1 do
        let brute =
          let rec go i = if i > r then None else if i * c mod r = q then Some i else go (i + 1) in
          go 1
        in
        let fast = Numth.min_congruence_solution ~c ~q ~r in
        if brute <> fast then
          Alcotest.failf "congruence mismatch c=%d q=%d r=%d: brute=%s fast=%s" c q r
            (match brute with Some i -> string_of_int i | None -> "-")
            (match fast with Some i -> string_of_int i | None -> "-")
      done
    done
  done

let test_ceil_div () =
  Alcotest.(check int) "7/2" 4 (Numth.ceil_div 7 2);
  Alcotest.(check int) "8/2" 4 (Numth.ceil_div 8 2);
  Alcotest.(check int) "0/5" 0 (Numth.ceil_div 0 5);
  Alcotest.(check int) "neg" 0 (Numth.ceil_div (-3) 5)

let suite =
  ( "assign",
    [
      Alcotest.test_case "case 1: no fracture" `Quick test_case1_no_fracture;
      Alcotest.test_case "case 1: un-fracture swap" `Quick test_case1_unfractures_iota;
      Alcotest.test_case "case 2: full requirements + extra" `Quick
        test_case2_full_requirements;
      Alcotest.test_case "case 2: extra disabled" `Quick test_case2_no_extra_when_disabled;
      Alcotest.test_case "case 2: ι capped by remaining" `Quick test_case2_iota_capped;
      Alcotest.test_case "single fractured job" `Quick test_single_fractured_job_alone;
      Alcotest.test_case "two fractured rejected" `Quick test_two_fractured_rejected;
      Alcotest.test_case "splittable step: prefix" `Quick test_splittable_step_finishes_prefix;
      Alcotest.test_case "splittable step: slides" `Quick test_splittable_step_slides;
      Alcotest.test_case "splittable step: degenerate" `Quick test_splittable_step_degenerate;
      qcheck_splittable_conservation;
      Alcotest.test_case "egcd/bezout" `Quick test_egcd;
      Alcotest.test_case "congruence vs brute force" `Quick test_congruence_brute;
      Alcotest.test_case "ceil_div" `Quick test_ceil_div;
    ] )
