(* Layer 10 — soslint, the repo-invariant static-analysis pass.

   Each rule R1-R7 is exercised against three fixture mini-repos under
   test/fixtures_lint/: one violating (exact file:line rule output and
   exit 1), one clean (exit 0, and for most rules the clean fixture
   doubles as a scope test — the same construct placed where the rule
   does not apply), and one suppressed via [@sos.allow] (exit 0 with the
   suppression counted). On top of the per-rule matrix: the R0
   allow-syntax checks (malformed payload, unused allow), byte-identical
   output across consecutive runs, the JSON summary, and the committed
   allowlist baseline mechanism. *)

let soslint = "../tools/lint/soslint.exe"
let fixtures = "fixtures_lint"

(* Run soslint and capture (exit code, stdout). Stderr is left alone:
   on the fixture corpus the linter writes nothing there, and an
   unexpected parse error would surface as a bad exit code anyway. *)
let run_lint args =
  let ic = Unix.open_process_in (soslint ^ " " ^ args) in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let code =
    match Unix.close_process_in ic with
    | Unix.WEXITED n -> n
    | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> -1
  in
  (code, Buffer.contents buf)

let lint_root ?(extra = "") root = run_lint (Printf.sprintf "--root %s/%s %s" fixtures root extra)

let summary_line ~files ~violations ~suppressed ~sites =
  Printf.sprintf "soslint: %d files, %d violations, %d suppressed hits via %d [@sos.allow] sites\n"
    files violations suppressed sites

(* ------------------------------------------------- per-rule fixtures *)

(* (rule, violating-fixture listing). The clean and allow fixtures are
   derived from the rule id. *)
let expected_violations =
  [
    ( "r1",
      [ "lib/workload/gen.ml:2 R1 stdlib Random is global mutable state; use Prelude.Rng (seeded, splittable)" ] );
    ( "r2",
      [
        "lib/sas/timing.ml:2 R2 Unix.gettimeofday: wall-clock reads go through Prelude.Clock only";
        "lib/sas/timing.ml:7 R2 Unix.time: wall-clock reads go through Prelude.Clock only (via \
         module alias U)";
      ] );
    ("r3", [ "lib/sos/lock.ml:2 R3 Mutex.create: libraries are Atomic-only (deterministic, 4.14-safe)" ]);
    ("r4", [ "lib/sos/report.ml:2 R4 print_endline: stdout belongs to sosctl results, not library code" ]);
    ( "r5",
      [ "lib/sos/export.ml:2 R5 Hashtbl.iter: iteration order is unspecified; sort keys before any emission/digest" ] );
    ( "r6",
      [
        "lib/sos/fast.ml:2 R6 failwith: hot paths raise Robust.Failure carriers (or Failure.internal_error)";
        "lib/sos/fast.ml:3 R6 raise Exit: hot paths raise Robust.Failure carriers";
      ] );
    ( "r7",
      [
        "lib/sos/cmp.ml:2 R7 polymorphic = on a float-bearing expression; use Float.equal/Float.compare";
        "lib/sos/cmp.ml:3 R7 polymorphic min on a float-bearing expression; use Float.equal/Float.compare";
      ] );
  ]

let test_rule_violating rule listing () =
  let code, out = lint_root (rule ^ "_bad") in
  let expected =
    String.concat "" (List.map (fun l -> l ^ "\n") listing)
    ^ summary_line ~files:1 ~violations:(List.length listing) ~suppressed:0 ~sites:0
  in
  Alcotest.(check string) (rule ^ " listing") expected out;
  Alcotest.(check int) (rule ^ " exit") 1 code

let test_rule_clean rule () =
  let code, out = lint_root (rule ^ "_clean") in
  Alcotest.(check string)
    (rule ^ " clean listing")
    (summary_line ~files:1 ~violations:0 ~suppressed:0 ~sites:0)
    out;
  Alcotest.(check int) (rule ^ " clean exit") 0 code

let test_rule_allow rule () =
  let code, out = lint_root (rule ^ "_allow") in
  Alcotest.(check string)
    (rule ^ " allow listing")
    (summary_line ~files:1 ~violations:0 ~suppressed:1 ~sites:1)
    out;
  Alcotest.(check int) (rule ^ " allow exit") 0 code

(* --------------------------------------------------- cross-cutting *)

let test_allow_syntax () =
  let code, out = lint_root "r0_bad" in
  let expected =
    "lib/sos/oops.ml:1 R0 malformed [@sos.allow]: missing ':' \xe2\x80\x94 expected \"Rn: reason\"\n"
    ^ "lib/sos/oops.ml:3 R0 unused [@sos.allow \"R1: ...\"]: it suppresses no hit\n"
    ^ summary_line ~files:1 ~violations:2 ~suppressed:0 ~sites:1
  in
  Alcotest.(check string) "r0 listing" expected out;
  Alcotest.(check int) "r0 exit" 1 code

(* The acceptance bar for a lint tool that gates CI: two consecutive runs
   produce byte-identical output — both on a violating fixture and on the
   full repo scan. *)
let test_deterministic_output () =
  let fixture_args = Printf.sprintf "--root %s/r7_bad" fixtures in
  let code1, out1 = run_lint fixture_args in
  let code2, out2 = run_lint fixture_args in
  Alcotest.(check string) "fixture bytes identical" out1 out2;
  Alcotest.(check int) "fixture exits agree" code1 code2;
  let repo_args =
    "--root .. --exclude lib/engine/pool.ml --exclude lib/robust/tls.ml --exclude-dir \
     test/fixtures_lint --exclude-dir test/fixtures_analysis lib bin bench test"
  in
  let _, repo1 = run_lint repo_args in
  let _, repo2 = run_lint repo_args in
  Alcotest.(check string) "repo scan bytes identical" repo1 repo2

let test_json_summary () =
  let path = Filename.temp_file "soslint" ".json" in
  let _code, _out = lint_root ~extra:("--json " ^ path) "r6_bad" in
  let ic = open_in_bin path in
  let json = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  let contains needle =
    let nl = String.length needle and jl = String.length json in
    let rec go i = i + nl <= jl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle -> Alcotest.(check bool) ("contains " ^ needle) true (contains needle))
    [
      "\"files_checked\": 1";
      "\"violations\": 2";
      "\"suppressed\": 0";
      "\"allow_sites\": 0";
      "{\"id\": \"R6\", \"name\": \"failure-taxonomy\", \"violations\": 2, \"suppressed\": 0}";
      "\"file\": \"lib/sos/fast.ml\", \"line\": 2, \"rule\": \"R6\"";
    ];
  (* structurally sane: balanced braces/brackets, trailing newline *)
  let count c = String.fold_left (fun acc x -> if x = c then acc + 1 else acc) 0 json in
  Alcotest.(check int) "balanced braces" (count '{') (count '}');
  Alcotest.(check int) "balanced brackets" (count '[') (count ']');
  Alcotest.(check bool) "ends with newline" true (json.[String.length json - 1] = '\n')

let test_baseline_roundtrip () =
  let path = Filename.temp_file "soslint" ".baseline" in
  (* 1 suppressed R1 hit in r1_allow: writing then checking must pass. *)
  let code, _ = lint_root ~extra:("--write-baseline " ^ path) "r1_allow" in
  Alcotest.(check int) "write exit" 0 code;
  let ic = open_in path in
  let first = input_line ic in
  close_in ic;
  Alcotest.(check string) "baseline row" "R1 1" first;
  let code, _ = lint_root ~extra:("--baseline " ^ path) "r1_allow" in
  Alcotest.(check int) "within baseline" 0 code;
  Sys.remove path

let test_baseline_regression () =
  let path = Filename.temp_file "soslint" ".baseline" in
  let oc = open_out path in
  output_string oc "R1 0\n";
  close_out oc;
  let code, out = lint_root ~extra:("--baseline " ^ path) "r1_allow" in
  Sys.remove path;
  Alcotest.(check int) "allow-count increase fails" 1 code;
  let mentions =
    String.split_on_char '\n' out
    |> List.exists (fun l ->
           String.length l >= 3 && String.sub l 0 3 = "R1:"
           && String.length l > String.length "R1: 1 suppressed")
  in
  Alcotest.(check bool) "explains the baseline breach" true mentions

(* The repo itself must lint clean — including the test suites, minus the
   fixture mini-repos that violate rules on purpose: this is the invariant
   CI enforces via `dune build @lint`, re-checked here from the build tree
   so `dune runtest` alone also catches a violation. pool.ml/tls.ml are
   build-time copies of already-linted sources. *)
let test_repo_is_clean () =
  let code, out =
    run_lint
      "--root .. --baseline ../tools/lint/allow_baseline.txt --exclude lib/engine/pool.ml \
       --exclude lib/robust/tls.ml --exclude-dir test/fixtures_lint --exclude-dir \
       test/fixtures_analysis lib bin bench test"
  in
  let lines = String.split_on_char '\n' out in
  let listing = List.filter (fun l -> l <> "" && not (String.length l >= 8 && String.sub l 0 8 = "soslint:")) lines in
  Alcotest.(check (list string)) "no violations in lib/ bin/ bench/" [] listing;
  Alcotest.(check int) "repo lints clean" 0 code

let suite =
  let per_rule =
    expected_violations
    |> List.concat_map (fun (rule, listing) ->
           [
             Alcotest.test_case (rule ^ " violating fixture") `Quick
               (test_rule_violating rule listing);
             Alcotest.test_case (rule ^ " clean fixture") `Quick (test_rule_clean rule);
             Alcotest.test_case (rule ^ " suppressed fixture") `Quick (test_rule_allow rule);
           ])
  in
  ( "lint",
    per_rule
    @ [
        Alcotest.test_case "allow syntax policed (R0)" `Quick test_allow_syntax;
        Alcotest.test_case "output byte-identical across runs" `Quick test_deterministic_output;
        Alcotest.test_case "json summary" `Quick test_json_summary;
        Alcotest.test_case "baseline roundtrip" `Quick test_baseline_roundtrip;
        Alcotest.test_case "baseline regression rejected" `Quick test_baseline_regression;
        Alcotest.test_case "repo lints clean" `Quick test_repo_is_clean;
      ] )
