(* Golden regression tests over the fixed corpus: algorithm outputs on these
   instances are pinned so that any behavioural change is caught. The pinned
   makespans were produced by this implementation and hand-checked against
   the lower bounds / exact optima where available. *)

open Sos
module Corpus = Workload.Corpus

let run_all entry =
  let inst = entry.Corpus.instance in
  [
    ("window", (Fast.run inst).Schedule.makespan);
    ("literal", (Fast.run ~variant:`Literal inst).Schedule.makespan);
    ("naive", (Ablation.run_naive_fracture inst).Schedule.makespan);
    ("list-sched", (Baselines.List_scheduling.run inst).Schedule.makespan);
  ]

let test_corpus_validity () =
  List.iter
    (fun entry ->
      let inst = entry.Corpus.instance in
      List.iter
        (fun sched -> Helpers.check_valid sched)
        [
          Fast.run inst; Fast.run ~variant:`Literal inst;
          Ablation.run_naive_fracture inst; Ablation.run_no_move inst;
          Baselines.List_scheduling.run inst; Baselines.Greedy_fair.run inst;
        ])
    Corpus.all

let test_exact_opt_entries () =
  List.iter
    (fun entry ->
      match entry.Corpus.exact_opt with
      | None -> ()
      | Some opt ->
          let inst = entry.Corpus.instance in
          let lb = Bounds.lower_bound inst in
          if lb > opt then
            Alcotest.failf "%s: recorded optimum %d below LB %d" entry.Corpus.name opt lb;
          (* window algorithm can never beat the (preemptive) optimum *)
          let w = (Fast.run inst).Schedule.makespan in
          if w < opt then
            Alcotest.failf "%s: window %d beats recorded optimum %d" entry.Corpus.name w
              opt;
          (* and for the unit-size entries the exact solver agrees *)
          if Instance.unit_size inst then begin
            match Exact.Binpack_exact.unit_sos_optimum ~node_limit:3_000_000 inst with
            | Some solver_opt ->
                Alcotest.(check int)
                  (entry.Corpus.name ^ ": solver matches recorded optimum")
                  opt solver_opt
            | None -> Alcotest.failf "%s: solver exceeded limit" entry.Corpus.name
          end)
    Corpus.all

let test_three_tight_golden () =
  let ms = run_all Corpus.three_tight in
  Alcotest.(check int) "window optimal" 5 (List.assoc "window" ms);
  Alcotest.(check int) "list-sched optimal here too" 5 (List.assoc "list-sched" ms)

let test_giant_dust_golden () =
  let ms = run_all Corpus.giant_dust in
  Alcotest.(check int) "window" 68 (List.assoc "window" ms);
  Alcotest.(check int) "literal stalls" 93 (List.assoc "literal" ms);
  Alcotest.(check int) "list-sched" 89 (List.assoc "list-sched" ms)

let test_eps_pairs_golden () =
  let ms = run_all Corpus.eps_pairs in
  Alcotest.(check int) "window hits LB" 60 (List.assoc "window" ms);
  Alcotest.(check int) "naive wastes half" 90 (List.assoc "naive" ms)

let test_corpus_lookup () =
  Alcotest.(check bool) "find existing" true (Corpus.find "giant-dust" <> None);
  Alcotest.(check bool) "find missing" true (Corpus.find "nope" = None);
  Alcotest.(check int) "six entries" 6 (List.length Corpus.all)

let test_determinism () =
  (* Same instance, same algorithm → byte-identical schedules. *)
  List.iter
    (fun entry ->
      let inst = entry.Corpus.instance in
      let a = Export.schedule_to_csv (Fast.run inst) in
      let b = Export.schedule_to_csv (Fast.run inst) in
      if a <> b then Alcotest.failf "%s: nondeterministic schedule" entry.Corpus.name)
    Corpus.all

let suite =
  ( "corpus",
    [
      Alcotest.test_case "all algorithms valid on corpus" `Quick test_corpus_validity;
      Alcotest.test_case "recorded optima consistent" `Quick test_exact_opt_entries;
      Alcotest.test_case "golden: three-tight" `Quick test_three_tight_golden;
      Alcotest.test_case "golden: giant-dust" `Quick test_giant_dust_golden;
      Alcotest.test_case "golden: eps-pairs" `Quick test_eps_pairs_golden;
      Alcotest.test_case "lookup" `Quick test_corpus_lookup;
      Alcotest.test_case "determinism" `Quick test_determinism;
    ] )
