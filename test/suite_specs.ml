(* Workload.Specs: the streaming spec-corpus reader/writer behind
   `sosctl batch --stream`. The central properties are (1) the binary
   encoding round-trips through the text form record-for-record — same
   canonical stream, same digest — so a converted corpus replays
   byte-identically, and (2) malformed input (bad text specs, torn
   trailing binary records) becomes a [Bad] record, never an exception. *)

module Specs = Workload.Specs

let with_temp_file suffix f =
  let path = Filename.temp_file "sosspec" suffix in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let payload = Alcotest.testable (fun ppf p ->
    Format.pp_print_string ppf
      (match (p : Specs.payload) with
      | Gen { family; n; m; scale } ->
          Printf.sprintf "Gen(%s,%d,%d,%s)" family n m
            (match scale with None -> "-" | Some s -> string_of_int s)
      | File p -> "File(" ^ p ^ ")"
      | Bad msg -> "Bad(" ^ msg ^ ")"))
  ( = )

let test_parse_line () =
  Alcotest.check payload "plain gen"
    (Specs.Gen { family = "bimodal"; n = 10; m = 4; scale = None })
    (Specs.parse_line "bimodal 10 4");
  Alcotest.check payload "gen with scale"
    (Specs.Gen { family = "uniform-small"; n = 3; m = 2; scale = Some 50 })
    (Specs.parse_line "uniform-small 3 2 50");
  Alcotest.check payload "file spec" (Specs.File "path/to/inst")
    (Specs.parse_line "@path/to/inst");
  (* The exact historical diagnostics, pinned by the CI acceptance smoke. *)
  Alcotest.check payload "bad n"
    (Specs.Bad "bad n \"zero\" in spec \"bimodal zero 4\"")
    (Specs.parse_line "bimodal zero 4");
  Alcotest.check payload "n < 1"
    (Specs.Bad "bad n \"0\" in spec \"bimodal 0 4\"")
    (Specs.parse_line "bimodal 0 4");
  Alcotest.check payload "bad scale"
    (Specs.Bad "bad scale \"x\" in spec \"bimodal 2 4 x\"")
    (Specs.parse_line "bimodal 2 4 x");
  Alcotest.check payload "trailing fields"
    (Specs.Bad "trailing fields in spec \"bimodal 2 4 5 6\"")
    (Specs.parse_line "bimodal 2 4 5 6");
  Alcotest.check payload "too few fields"
    (Specs.Bad "bad spec \"bimodal\" (want: <family> <n> <m> [scale], or @<file>)")
    (Specs.parse_line "bimodal")

let read_all src =
  let rec go acc =
    match Specs.read src with None -> List.rev acc | Some r -> go (r :: acc)
  in
  go []

let test_text_reader () =
  with_temp_file ".specs" @@ fun path ->
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc
        "# a comment\nbimodal 10 4\n\n  uniform-small 3 2 50  \n@inst.txt\nnope\n");
  match Specs.open_path path with
  | Error msg -> Alcotest.fail msg
  | Ok src ->
      Alcotest.(check bool) "text detected" false (Specs.is_binary src);
      let rs = read_all src in
      Specs.close src;
      (* recno is the 1-based *physical* line number: comments and blanks
         are skipped but still counted, so diagnostics are locatable. *)
      Alcotest.(check (list int)) "physical line numbers" [ 2; 4; 5; 6 ]
        (List.map (fun (r : Specs.record) -> r.recno) rs);
      Alcotest.(check (list string)) "canonical forms"
        [ "bimodal 10 4"; "uniform-small 3 2 50"; "@inst.txt"; "nope" ]
        (List.map Specs.canonical rs);
      match List.map (fun (r : Specs.record) -> r.payload) rs with
      | [ Specs.Gen _; Specs.Gen { scale = Some 50; _ }; Specs.File "inst.txt"; Specs.Bad _ ]
        -> ()
      | _ -> Alcotest.fail "unexpected payloads"

let test_binary_round_trip () =
  with_temp_file ".specs" @@ fun text ->
  with_temp_file ".bin" @@ fun bin ->
  let families = Specs.family_names () in
  Alcotest.(check bool) "families non-empty" true (List.length families > 0);
  Out_channel.with_open_text text (fun oc ->
      List.iteri
        (fun i f -> Printf.fprintf oc "%s %d %d%s\n" f (i + 1) (i + 2)
            (if i mod 2 = 0 then "" else Printf.sprintf " %d" (10 * (i + 1))))
        families);
  (match Specs.convert_to_binary ~src:text ~dst:bin with
  | Ok n -> Alcotest.(check int) "converted count" (List.length families) n
  | Error msg -> Alcotest.fail msg);
  (match Specs.open_path bin with
  | Error msg -> Alcotest.fail msg
  | Ok src ->
      Alcotest.(check bool) "binary autodetected" true (Specs.is_binary src);
      let rs = read_all src in
      Specs.close src;
      (* Binary recnos are record ordinals. *)
      Alcotest.(check (list int)) "record ordinals"
        (List.init (List.length families) (fun i -> i + 1))
        (List.map (fun (r : Specs.record) -> r.recno) rs);
      List.iteri
        (fun i (r : Specs.record) ->
          match r.payload with
          | Specs.Gen { family; n; m; scale } ->
              Alcotest.(check string) "family survives" (List.nth families i) family;
              Alcotest.(check int) "n survives" (i + 1) n;
              Alcotest.(check int) "m survives" (i + 2) m;
              Alcotest.(check (option int)) "scale survives"
                (if i mod 2 = 0 then None else Some (10 * (i + 1)))
                scale
          | _ -> Alcotest.failf "record %d not Gen" r.recno)
        rs);
  (* The digest is over the canonical record stream, so a corpus and its
     binary conversion digest identically — the property that lets a
     checkpoint journal written against one resume against the other. *)
  match (Specs.digest_of_path text, Specs.digest_of_path bin) with
  | Ok dt, Ok db -> Alcotest.(check string) "text and binary digests equal" dt db
  | Error msg, _ | _, Error msg -> Alcotest.fail msg

let test_binary_torn_record () =
  with_temp_file ".bin" @@ fun bin ->
  Out_channel.with_open_bin bin (fun oc ->
      let w = Specs.Writer.create oc in
      (match Specs.Writer.add w ~family:"bimodal" ~n:5 ~m:3 () with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg);
      match Specs.Writer.add w ~family:"nope" ~n:1 ~m:1 () with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "unknown family accepted by Writer");
  (* SIGKILL mid-write: chop the file mid-record. The reader must surface
     one Bad record and stop, never raise. *)
  let full = In_channel.with_open_bin bin In_channel.input_all in
  Out_channel.with_open_bin bin (fun oc ->
      Out_channel.output_string oc (String.sub full 0 (String.length full - 7)));
  match Specs.open_path bin with
  | Error msg -> Alcotest.fail msg
  | Ok src -> (
      (match read_all src with
      | [ r ] -> (
          match r.payload with
          | Specs.Bad msg ->
              Alcotest.(check bool) "diagnostic names the record" true
                (Helpers.contains msg "truncated record 1")
          | _ -> Alcotest.fail "torn record not Bad")
      | rs -> Alcotest.failf "expected 1 record, got %d" (List.length rs));
      Specs.close src)

let test_convert_rejects_unconvertible () =
  with_temp_file ".specs" @@ fun text ->
  with_temp_file ".bin" @@ fun bin ->
  Out_channel.with_open_text text (fun oc ->
      Out_channel.output_string oc "bimodal 4 4\n@some/file\n");
  (match Specs.convert_to_binary ~src:text ~dst:bin with
  | Error msg ->
      Alcotest.(check bool) "error names record 2" true (Helpers.contains msg "record 2")
  | Ok _ -> Alcotest.fail "@FILE spec converted to binary");
  Out_channel.with_open_text text (fun oc ->
      Out_channel.output_string oc "bimodal 4\n");
  match Specs.convert_to_binary ~src:text ~dst:bin with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed spec converted to binary"

let test_digest_chunk_invariance () =
  (* The chained digest folds in fixed 1024-record blocks, so it only
     depends on the record stream — feed the same lines in one-by-one and
     the hex matches a second independent pass. *)
  let lines = List.init 2500 (Printf.sprintf "bimodal %d 4") in
  let d1 =
    let st = Specs.digest_create () in
    List.iter (Specs.digest_line st) lines;
    Specs.digest_finish st
  in
  let d2 =
    let st = Specs.digest_create () in
    List.iter (Specs.digest_line st) lines;
    Specs.digest_finish st
  in
  Alcotest.(check string) "digest deterministic" d1 d2;
  let d3 =
    let st = Specs.digest_create () in
    List.iter (Specs.digest_line st) (List.tl lines);
    Specs.digest_finish st
  in
  Alcotest.(check bool) "digest sensitive to the stream" true (d1 <> d3)

let suite =
  ( "specs",
    [
      Alcotest.test_case "parse_line grammar + diagnostics" `Quick test_parse_line;
      Alcotest.test_case "text reader: comments, blanks, recno" `Quick test_text_reader;
      Alcotest.test_case "binary round-trip + digest equality" `Quick test_binary_round_trip;
      Alcotest.test_case "torn binary record becomes Bad" `Quick test_binary_torn_record;
      Alcotest.test_case "convert rejects @FILE and malformed" `Quick test_convert_rejects_unconvertible;
      Alcotest.test_case "streaming digest invariance" `Quick test_digest_chunk_invariance;
    ] )
