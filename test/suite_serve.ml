(* The scheduling service: protocol parse/canonical laws, per-tenant
   sessions with admission control driven end-to-end over real channel
   pairs, deadline degradation to last-good schedules, write-ahead-log
   resume byte-identity (including tamper detection), and graceful
   drain. Replies are checked byte-for-byte — the transcript IS the
   service's contract. *)

module P = Serve.Protocol
module S = Serve.Server

let check_lines name expected got =
  Alcotest.(check (list string)) name expected got

(* Drive one [S.serve] call over temp-file channel pairs and return the
   reply lines. The server object survives the call, so a test can
   inspect counters or drive it again (the socket transport does). *)
let run_lines ?should_drain ?should_abort srv lines =
  let inp = Filename.temp_file "serve" ".in" in
  let outp = Filename.temp_file "serve" ".out" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove inp with Sys_error _ -> ());
      try Sys.remove outp with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_text inp (fun oc ->
          List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) lines);
      Engine.Pool.with_pool ~domains:2 (fun pool ->
          In_channel.with_open_text inp (fun input ->
              Out_channel.with_open_text outp (fun output ->
                  S.serve srv ~pool ~input ~output ?should_drain ?should_abort ())));
      let text = In_channel.with_open_text outp In_channel.input_all in
      String.split_on_char '\n' text |> List.filter (fun l -> l <> ""))

let with_server ?(cfg = S.default) f =
  match S.create cfg with
  | Error msg -> Alcotest.failf "Server.create: %s" msg
  | Ok srv -> f srv

let drive ?cfg ?should_drain ?should_abort lines =
  with_server ?cfg (fun srv ->
      let replies = run_lines ?should_drain ?should_abort srv lines in
      (replies, S.finish srv))

(* --- protocol --- *)

let test_protocol_parse () =
  let ok line = match P.parse line with Ok c -> c | Error e -> Alcotest.failf "parse %S: %s" line e in
  let err line =
    match P.parse line with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "parse %S should have failed" line
  in
  (* defaults fill in, repeated blanks are tolerated, canonical is normalized *)
  Alcotest.(check string) "open defaults" "open a m=4 scale=100" (P.canonical (ok "  open   a "));
  Alcotest.(check string) "open kvs" "open a m=3 scale=7" (P.canonical (ok "open a scale=7 m=3"));
  Alcotest.(check string) "submit" "submit t-1 5 2 30" (P.canonical (ok "submit t-1 5 2 30"));
  (* deadline is excluded from the canonical form: it tunes solve time,
     never reply bytes, so a resumed run may change it freely *)
  Alcotest.(check string)
    "deadline dropped" "query a job=2"
    (P.canonical (ok "query a job=2 deadline=0.5"));
  Alcotest.(check string) "query bare" "query a" (P.canonical (ok "query a deadline=1"));
  List.iter err
    [
      ""; "open"; "open bad name!"; "open a m=1"; "open a m=x"; "open a m=2 m=3";
      "open a scle=5"; (String.concat "" [ "open "; String.make 65 'x' ]);
      "submit a 1 2"; "submit a 1 2 x"; "query a job=-1"; "query a deadline=0";
      "query a deadline=nope"; "close a extra"; "stats now"; "frobnicate a";
    ]

(* --- end-to-end session flow --- *)

let test_serve_session_flow () =
  let replies, s =
    drive
      [
        "open t m=2 scale=100";
        "submit t 0 2 50";
        "submit t 0 3 60";
        "query t";
        "query t job=1";
        "query t";
        "close t";
        "stats";
        "nonsense";
        "query ghost";
        "open t2";
        "open t2";
      ]
  in
  check_lines "session flow transcript"
    [
      "0 ok open tenant=t m=2 scale=100";
      "1 ok submit tenant=t job=0";
      "2 ok submit tenant=t job=1";
      "3 ok schedule tenant=t jobs=2 makespan=5 lb=3";
      "4 ok job tenant=t job=1 start=2";
      "5 ok schedule tenant=t jobs=2 makespan=5 lb=3";
      "6 ok close tenant=t jobs=2";
      "7 ok stats sessions=0 jobs=0 volume=0 draining=0";
      "8 error parse unknown command \"nonsense\"";
      "9 error no-session tenant ghost";
      "10 ok open tenant=t2 m=4 scale=100";
      "11 error exists tenant t2 already open";
    ]
    replies;
  Alcotest.(check int) "requests" 12 s.S.requests;
  Alcotest.(check int) "errors" 3 s.S.errors;
  Alcotest.(check int) "open sessions" 1 s.S.sessions;
  Alcotest.(check int) "exit code" 0 s.S.exit_code

let test_serve_invalid_submit () =
  let replies, s = drive [ "open t"; "submit t -1 2 50"; "submit t 0 2 50"; "query t" ] in
  (match replies with
  | [ _; bad; ok_sub; ok_q ] ->
      Alcotest.(check bool)
        "negative release is a structured invalid reply" true
        (String.length bad > 8 && String.sub bad 0 8 = "1 error " );
      Alcotest.(check bool) "invalid class named" true
        (Helpers.contains bad "invalid");
      Alcotest.(check string) "session unharmed" "2 ok submit tenant=t job=0" ok_sub;
      Alcotest.(check string) "query works" "3 ok schedule tenant=t jobs=1 makespan=2 lb=2" ok_q
  | _ -> Alcotest.failf "expected 4 replies, got %d" (List.length replies));
  Alcotest.(check int) "exit code" 0 s.S.exit_code

(* --- admission control / overload shedding --- *)

let test_serve_overload () =
  let cfg = { S.default with S.max_sessions = 2; max_jobs = 3; max_volume = 10 } in
  let replies, s =
    drive ~cfg
      [
        "open a"; "open b"; "open c";
        "submit a 0 1 10"; "submit a 0 8 10";
        "submit a 0 5 10"; (* volume 1+8=9, +5 > 10 *)
        "submit a 0 1 10"; (* volume fits exactly: admitted *)
        "submit a 0 1 10"; (* job budget (3) is now full *)
        "query a";
      ]
  in
  check_lines "overload transcript"
    [
      "0 ok open tenant=a m=4 scale=100";
      "1 ok open tenant=b m=4 scale=100";
      "2 overload sessions cap=2";
      "3 ok submit tenant=a job=0";
      "4 ok submit tenant=a job=1";
      "5 overload volume tenant=a cap=10 held=9";
      "6 ok submit tenant=a job=2";
      "7 overload jobs tenant=a cap=3";
      "8 ok schedule tenant=a jobs=3 makespan=8 lb=8";
    ]
    replies;
  Alcotest.(check int) "overloads counted" 3 s.S.overloads;
  Alcotest.(check int) "shed requests are not errors" 0 s.S.errors;
  Alcotest.(check int) "exit code" 0 s.S.exit_code

(* --- deadline degradation --- *)

let test_serve_deadline_degrades () =
  (* The config deadline is hopeless (1ns); a per-request deadline=100
     override lets the first query land a good schedule, after which
     deadline-struck queries degrade to it, marked stale. A tenant with
     no last-good schedule gets a structured deadline error instead. *)
  let cfg = { S.default with S.deadline = Some 1e-9 } in
  let replies, s =
    drive ~cfg
      [
        "open t m=2";
        "submit t 0 2 50";
        "query t deadline=100";
        "submit t 0 3 60";
        "query t";
        "query t job=0";
        "open u";
        "submit u 0 2 50";
        "query u";
      ]
  in
  check_lines "deadline transcript"
    [
      "0 ok open tenant=t m=2 scale=100";
      "1 ok submit tenant=t job=0";
      "2 ok schedule tenant=t jobs=1 makespan=2 lb=2";
      "3 ok submit tenant=t job=1";
      "4 stale schedule tenant=t jobs=1 makespan=2";
      "5 stale job tenant=t job=0 start=0";
      "6 ok open tenant=u m=4 scale=100";
      "7 ok submit tenant=u job=0";
      "8 error deadline task exceeded its 1e-09s deadline";
    ]
    replies;
  Alcotest.(check int) "stale replies" 2 s.S.stale;
  Alcotest.(check int) "deadline error" 1 s.S.errors;
  Alcotest.(check int) "exit code" 0 s.S.exit_code

(* --- graceful drain --- *)

let test_serve_drain () =
  let replies, s =
    drive
      [
        "open t"; "submit t 0 2 50"; "drain";
        "open u"; "submit t 1 1 10"; (* mutations shed while draining *)
        "query t"; "stats"; "close t"; (* reads and closes still answered *)
      ]
  in
  check_lines "drain transcript"
    [
      "0 ok open tenant=t m=4 scale=100";
      "1 ok submit tenant=t job=0";
      "2 ok drain";
      "3 reject draining";
      "4 reject draining";
      "5 ok schedule tenant=t jobs=1 makespan=2 lb=2";
      "6 ok stats sessions=1 jobs=1 volume=2 draining=1";
      "7 ok close tenant=t jobs=1";
    ]
    replies;
  Alcotest.(check int) "drained exit is clean" 0 s.S.exit_code

let test_serve_drain_flag_and_abort () =
  (* The caller's should_drain (SIGTERM in sosctl) has the same effect as
     the drain request; should_abort stops at a request boundary with
     exit code 130, leaving later requests unanswered. *)
  let replies, s =
    drive
      ~should_drain:(fun () -> true)
      [ "open t"; "query missing"; "drain" ]
  in
  check_lines "drain flag"
    [ "0 reject draining"; "1 error no-session tenant missing"; "2 ok drain" ]
    replies;
  Alcotest.(check int) "drain exit" 0 s.S.exit_code;
  let handled = ref 0 in
  let replies, s =
    drive
      ~should_abort:(fun () ->
        incr handled;
        !handled > 2)
      [ "open t"; "open u"; "open v" ]
  in
  Alcotest.(check bool) "abort truncates the transcript" true (List.length replies < 3);
  Alcotest.(check int) "abort exit" 130 s.S.exit_code

(* --- WAL resume --- *)

let with_temp_wal shards f =
  let base = Filename.temp_file "servewal" ".j" in
  Fun.protect
    ~finally:(fun () ->
      let rm p = try Sys.remove p with Sys_error _ -> () in
      rm base;
      for k = 0 to shards - 1 do
        rm (Printf.sprintf "%s.%d" base k)
      done)
    (fun () -> f base)

let resume_requests =
  [
    "open t m=2 scale=100";
    "submit t 0 2 50";
    "query t";
    "submit t 5 3 60";
    "query t job=1";
    "stats";
    "close t";
  ]

let test_serve_resume_byte_identity () =
  let shards = 2 in
  with_temp_wal shards @@ fun wal ->
  let cfg = { S.default with S.checkpoint = Some wal; shards } in
  let first, s1 = drive ~cfg resume_requests in
  Alcotest.(check int) "first run clean" 0 s1.S.exit_code;
  (* resume over the same re-driven input: every reply is answered
     verbatim from the log, nothing is re-solved, bytes are identical *)
  let cfg = { cfg with S.resume = true } in
  let second, s2 = drive ~cfg resume_requests in
  check_lines "byte-identical transcript" first second;
  Alcotest.(check int) "everything replayed" (List.length resume_requests) s2.S.replayed;
  Alcotest.(check int) "resume exit" 0 s2.S.exit_code;
  (* state transitions were re-applied, not just echoed: the session table
     reflects the close at the end of the journalled stream *)
  Alcotest.(check int) "sessions after resume" 0 s2.S.sessions

let test_serve_resume_tamper_detected () =
  let shards = 1 in
  with_temp_wal shards @@ fun wal ->
  let cfg = { S.default with S.checkpoint = Some wal; shards } in
  let _, s1 = drive ~cfg resume_requests in
  Alcotest.(check int) "first run clean" 0 s1.S.exit_code;
  (* re-drive with request 1 altered: the journalled digest no longer
     matches, and answering with the old reply would be a lie — fail stop *)
  let tampered =
    List.mapi (fun i l -> if i = 1 then "submit t 0 9 50" else l) resume_requests
  in
  let cfg = { cfg with S.resume = true } in
  let replies, s2 = drive ~cfg tampered in
  (match replies with
  | first :: second :: rest ->
      Alcotest.(check string) "index 0 replays" "0 ok open tenant=t m=2 scale=100" first;
      Alcotest.(check bool) "mismatch reported" true
        (Helpers.contains second "resume-mismatch");
      Alcotest.(check (list string)) "served nothing after the mismatch" [] rest
  | _ -> Alcotest.fail "expected exactly two replies");
  Alcotest.(check int) "fail-stop exit code" 4 s2.S.exit_code

let test_serve_resume_header_binding () =
  with_temp_wal 1 @@ fun wal ->
  let cfg = { S.default with S.checkpoint = Some wal } in
  let _, s1 = drive ~cfg [ "open t" ] in
  Alcotest.(check int) "first run clean" 0 s1.S.exit_code;
  (* the WAL header binds the admission caps: resuming under different
     caps would replay replies another admission policy produced *)
  let cfg = { cfg with S.resume = true; max_sessions = 7 } in
  match S.create cfg with
  | Error _ -> ()
  | Ok srv ->
      ignore (S.finish srv);
      Alcotest.fail "resume under different caps must be refused"

let suite =
  ( "serve",
    [
      Alcotest.test_case "protocol parse + canonical" `Quick test_protocol_parse;
      Alcotest.test_case "session flow transcript" `Quick test_serve_session_flow;
      Alcotest.test_case "invalid submit is structured + survivable" `Quick
        test_serve_invalid_submit;
      Alcotest.test_case "overload shedding" `Quick test_serve_overload;
      Alcotest.test_case "deadline degrades to last-good" `Quick
        test_serve_deadline_degrades;
      Alcotest.test_case "graceful drain" `Quick test_serve_drain;
      Alcotest.test_case "drain flag + abort boundary" `Quick
        test_serve_drain_flag_and_abort;
      Alcotest.test_case "WAL resume byte-identity" `Quick test_serve_resume_byte_identity;
      Alcotest.test_case "WAL tamper fail-stop" `Quick test_serve_resume_tamper_detected;
      Alcotest.test_case "WAL header binds admission caps" `Quick
        test_serve_resume_header_binding;
    ] )
