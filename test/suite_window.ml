(* Tests for Sos.State and Sos.Window (Definition 3.1 / Listing 2). *)

open Sos

let mk reqs = State.create (Helpers.instance_of_reqs ~m:4 ~scale:100 reqs)

let test_state_initial () =
  let st = mk [ 10; 20; 30 ] in
  Alcotest.(check int) "remaining" 3 (State.remaining_count st);
  Alcotest.(check (option int)) "head" (Some 0) (State.head st);
  Alcotest.(check (list int)) "remaining jobs" [ 0; 1; 2 ] (State.remaining_jobs st);
  Alcotest.(check bool) "nothing started" false (State.started st 1);
  Alcotest.(check bool) "nothing fractured" false (State.fractured st 2)

let test_state_consume_and_fracture () =
  let st = mk [ 10; 20; 30 ] in
  State.consume st 1 5;
  Alcotest.(check bool) "started" true (State.started st 1);
  Alcotest.(check bool) "fractured" true (State.fractured st 1);
  Alcotest.(check int) "q" 15 (State.q st 1);
  State.consume st 1 15;
  Alcotest.(check bool) "finished" true (State.finished st 1);
  Alcotest.(check bool) "finished not fractured" false (State.fractured st 1)

let test_state_consume_guards () =
  let st = mk [ 10 ] in
  Alcotest.check_raises "negative" (Invalid_argument "State.consume: negative amount")
    (fun () -> State.consume st 0 (-1));
  Alcotest.check_raises "too much"
    (Invalid_argument "State.consume: amount exceeds remaining") (fun () ->
      State.consume st 0 11)

let test_state_unlink () =
  let st = mk [ 10; 20; 30 ] in
  Alcotest.check_raises "unlink unfinished"
    (Invalid_argument "State.unlink: job not finished") (fun () -> State.unlink st 1);
  State.consume st 1 20;
  State.unlink st 1;
  Alcotest.(check (list int)) "list skips unlinked" [ 0; 2 ] (State.remaining_jobs st);
  Alcotest.(check (option int)) "next of 0" (Some 2) (State.next_remaining st 0);
  Alcotest.(check (option int)) "prev of 2" (Some 0) (State.prev_remaining st 2);
  State.consume st 0 10;
  State.unlink st 0;
  Alcotest.(check (option int)) "head advances" (Some 2) (State.head st)

let test_state_copy_isolated () =
  let st = mk [ 10; 20 ] in
  let st' = State.copy st in
  State.consume st 0 5;
  Alcotest.(check int) "copy unaffected" 10 (State.s st' 0)

let test_window_neighbors () =
  let st = mk [ 10; 20; 30; 40 ] in
  let w = Window.of_members st [ 1; 2 ] in
  Alcotest.(check (option int)) "left neighbor" (Some 0) (Window.left_neighbor st w);
  Alcotest.(check (option int)) "right neighbor" (Some 3) (Window.right_neighbor st w);
  Alcotest.(check (option int)) "empty right = head" (Some 0)
    (Window.right_neighbor st Window.empty);
  Alcotest.(check (option int)) "empty left = none" None
    (Window.left_neighbor st Window.empty)

let test_window_of_members_guards () =
  let st = mk [ 10; 20; 30 ] in
  Alcotest.check_raises "non-consecutive"
    (Invalid_argument "Window.of_members: not consecutive remaining jobs") (fun () ->
      ignore (Window.of_members st [ 0; 2 ]))

let test_window_add_drop () =
  let st = mk [ 10; 20; 30; 40 ] in
  let w = Window.of_members st [ 1 ] in
  let w = Window.add_left st w in
  let w = Window.add_right st w in
  Alcotest.(check (list int)) "members" [ 0; 1; 2 ] (Window.members st w);
  Alcotest.(check int) "rsum" 60 (Window.rsum w);
  let w = Window.drop_left st w in
  Alcotest.(check (list int)) "after drop" [ 1; 2 ] (Window.members st w);
  Alcotest.(check int) "rsum after drop" 50 (Window.rsum w)

let test_grow_right_budget () =
  (* budget 100: grows until r(W) >= 100. reqs 10,20,30,40: after 10+20+30 = 60
     < 100, adds 40 → 100, stops. *)
  let st = mk [ 10; 20; 30; 40 ] in
  let w = Window.grow_right st Window.empty ~size:10 ~budget:100 in
  Alcotest.(check (list int)) "grow right all" [ 0; 1; 2; 3 ] (Window.members st w);
  let w2 = Window.grow_right st Window.empty ~size:2 ~budget:100 in
  Alcotest.(check (list int)) "size limit" [ 0; 1 ] (Window.members st w2);
  let w3 = Window.grow_right st Window.empty ~size:10 ~budget:25 in
  Alcotest.(check (list int)) "budget limit" [ 0; 1 ] (Window.members st w3)

let test_grow_left () =
  let st = mk [ 10; 20; 30; 40 ] in
  let w = Window.of_members st [ 3 ] in
  let w = Window.grow_left st w ~size:3 ~budget:1000 in
  Alcotest.(check (list int)) "grow left to size" [ 1; 2; 3 ] (Window.members st w)

let test_move_right () =
  let st = mk [ 10; 20; 30; 40 ] in
  (* window {0,1} rsum 30 < 35 → slide: drop 0 add 2 → {1,2} rsum 50 ≥ 35 stop *)
  let w = Window.of_members st [ 0; 1 ] in
  let w = Window.move_right st w ~budget:35 in
  Alcotest.(check (list int)) "slid once" [ 1; 2 ] (Window.members st w)

let test_move_right_blocked_by_started () =
  let st = mk [ 10; 20; 30; 40 ] in
  State.consume st 0 3;
  let w = Window.of_members st [ 0; 1 ] in
  let w = Window.move_right st w ~budget:35 in
  Alcotest.(check (list int)) "no slide past started" [ 0; 1 ] (Window.members st w)

let test_prune () =
  let st = mk [ 10; 20; 30 ] in
  let w = Window.of_members st [ 0; 1; 2 ] in
  State.consume st 1 20;
  let w' = Window.prune st w in
  (* prune's result describes the window after the finished jobs are
     unlinked; members must be read after State.unlink. *)
  State.unlink st 1;
  Alcotest.(check (list int)) "pruned interior" [ 0; 2 ] (Window.members st w');
  Alcotest.(check int) "rsum recomputed" 40 (Window.rsum w');
  Alcotest.(check int) "count recomputed" 2 (Window.count w')

let test_is_window_properties () =
  let st = mk [ 10; 20; 30; 90 ] in
  let w = Window.of_members st [ 0; 1; 2 ] in
  Alcotest.(check bool) "valid window" true (Window.is_window st w ~budget:100);
  (* (b): r(W∖{max}) must stay below the budget *)
  let wb = Window.of_members st [ 1; 2; 3 ] in
  Alcotest.(check bool) "violates (b)" false (Window.is_window st wb ~budget:40);
  (* (d): started job outside the window *)
  State.consume st 3 1;
  Alcotest.(check bool) "violates (d)" false (Window.is_window st w ~budget:100)

let test_is_window_fracture_limit () =
  let st = mk [ 10; 20; 30 ] in
  State.consume st 0 5;
  State.consume st 1 5;
  let w = Window.of_members st [ 0; 1; 2 ] in
  Alcotest.(check bool) "two fractured jobs violate (c)" false
    (Window.is_window st w ~budget:100)

let test_k_maximal () =
  let st = mk [ 10; 20; 30; 40 ] in
  let w = Window.compute st Window.empty ~size:3 ~budget:100 in
  Alcotest.(check bool) "compute yields k-maximal" true
    (Window.is_k_maximal st w ~k:3 ~budget:100);
  (* A window of size < k away from the left border is not maximal. *)
  let w' = Window.of_members st [ 1; 2 ] in
  Alcotest.(check bool) "interior small window not maximal" false
    (Window.is_k_maximal st w' ~k:3 ~budget:100)

let qcheck_compute_maximal =
  Helpers.qcheck ~count:300 "compute yields k-maximal windows on fresh states"
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 25) (int_range 1 120))
        (pair (int_range 1 6) (int_range 10 150)))
    (fun (reqs, (k, budget)) ->
      let st = mk reqs in
      let w = Window.compute st Window.empty ~size:k ~budget in
      Window.is_k_maximal st w ~k ~budget)

let suite =
  ( "window",
    [
      Alcotest.test_case "state initial" `Quick test_state_initial;
      Alcotest.test_case "consume/fracture" `Quick test_state_consume_and_fracture;
      Alcotest.test_case "consume guards" `Quick test_state_consume_guards;
      Alcotest.test_case "unlink" `Quick test_state_unlink;
      Alcotest.test_case "copy isolation" `Quick test_state_copy_isolated;
      Alcotest.test_case "neighbors" `Quick test_window_neighbors;
      Alcotest.test_case "of_members guards" `Quick test_window_of_members_guards;
      Alcotest.test_case "add/drop" `Quick test_window_add_drop;
      Alcotest.test_case "grow right" `Quick test_grow_right_budget;
      Alcotest.test_case "grow left" `Quick test_grow_left;
      Alcotest.test_case "move right" `Quick test_move_right;
      Alcotest.test_case "move right blocked" `Quick test_move_right_blocked_by_started;
      Alcotest.test_case "prune" `Quick test_prune;
      Alcotest.test_case "is_window properties" `Quick test_is_window_properties;
      Alcotest.test_case "fracture limit (c)" `Quick test_is_window_fracture_limit;
      Alcotest.test_case "k-maximal" `Quick test_k_maximal;
      qcheck_compute_maximal;
    ] )
